module indexmerge

go 1.22
