// Merge-search competition test for IndexMerge awareness: a merged
// index should be recommended only when it actually beats the
// IndexMerge (RID-union) plan over its parents. An optimizer that
// cannot see union plans undervalues narrow parent indexes and merges
// them away; the union-aware optimizer keeps them.
package indexmerge

import (
	"math/rand"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

func unionMergeDB(t *testing.T) *engine.Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
		{Name: "more", Type: value.String, Width: 120},
	})); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 30000; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewString("p"),
			value.NewString("q"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	return db
}

// TestUnionCompetitionChangesMergeRecommendation runs the same merge
// search twice over a workload dominated by one OR query whose best
// plan is IndexUnion over two narrow single-column parents. With
// DisableIndexUnion the parents look worthless (the query scans either
// way), so merging them into one composite is free and the search takes
// the merge. With union plans enabled the merge would destroy the
// second arm's leading column and blow the 10% cost constraint, so the
// search must refuse it — the recommendation changes purely because the
// optimizer can see the IndexMerge plan of the parents.
func TestUnionCompetitionChangesMergeRecommendation(t *testing.T) {
	db := unionMergeDB(t)
	stmt, err := ParseSelect("SELECT payload FROM wide WHERE (a = 7 OR b = 13)")
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		t.Fatal(err)
	}
	w := &Workload{}
	w.Add(stmt, 1)

	ia, err := NewIndexDef(db, "", "wide", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := NewIndexDef(db, "", "wide", []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	defs := []IndexDef{ia, ib}

	run := func(disableUnion bool) *MergeResult {
		t.Helper()
		m, err := NewMerger(db, w)
		if err != nil {
			t.Fatal(err)
		}
		m.Optimizer().DisableIndexUnion = disableUnion
		res, err := m.MergeDefs(defs, MergeOptions{CostConstraint: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	aware := run(false)
	blind := run(true)

	if len(blind.Steps) == 0 || blind.Final.Len() != 1 {
		t.Errorf("union-blind search should merge the parents: %d steps, %d final indexes",
			len(blind.Steps), blind.Final.Len())
	}
	if len(aware.Steps) != 0 || aware.Final.Len() != 2 {
		t.Errorf("union-aware search should keep both parents: %d steps, %d final indexes\n%s",
			len(aware.Steps), aware.Final.Len(), aware.Report())
	}
	// The awareness is exactly the cheap union plan: under the same
	// initial configuration the aware optimizer's workload cost must be
	// well below the blind (scan-bound) one.
	if aware.InitialCost >= blind.InitialCost {
		t.Errorf("union plan did not reduce initial workload cost: aware %v, blind %v",
			aware.InitialCost, blind.InitialCost)
	}
}
