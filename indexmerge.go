// Package indexmerge is a Go reproduction of "Index Merging"
// (Chaudhuri & Narasayya, ICDE 1999): given a set of indexes tuned for
// individual queries, derive a merged set with much lower storage and
// maintenance cost while bounding the workload cost increase.
//
// The package is a facade over the internal engine. A typical session:
//
//	db := indexmerge.NewDatabase()
//	... create tables, load rows, db.AnalyzeAll() ...
//	w, _ := indexmerge.ParseWorkload(file, db.Schema())
//	m, _ := indexmerge.NewMerger(db, w)
//	res, _ := m.Merge(indexmerge.MergeOptions{CostConstraint: 0.10})
//	fmt.Println(res.Report())
//
// The heavy lifting lives in internal packages: internal/core holds
// the paper's algorithms (MergePair, Greedy/Exhaustive search, cost
// evaluation strategies); internal/optimizer is a cost-based query
// optimizer with what-if index support; internal/storage provides
// page-accounted heaps and B+-trees.
package indexmerge

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"indexmerge/internal/advisor"
	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
	"indexmerge/internal/wscale"
)

// Re-exported core types. The aliases give examples and downstream
// users one import path for the public surface.
type (
	// Database is an in-memory database instance with heap tables,
	// B+-tree indexes, statistics and what-if support.
	Database = engine.Database
	// Table describes a relation.
	Table = catalog.Table
	// Column describes one attribute.
	Column = catalog.Column
	// IndexDef identifies an index: table + ordered key columns.
	IndexDef = catalog.IndexDef
	// Workload is a set of queries with frequencies.
	Workload = sql.Workload
	// SelectStmt is a parsed query.
	SelectStmt = sql.SelectStmt
	// Value is a typed scalar.
	Value = value.Value
	// Row is a tuple of values.
	Row = value.Row
	// Optimizer is the cost-based what-if optimizer.
	Optimizer = optimizer.Optimizer
	// Plan is an optimized physical plan with cost and index usage.
	Plan = optimizer.Plan
	// Configuration is a set of indexes under merging, with parent
	// tracking.
	Configuration = core.Configuration
	// SearchResult reports a merging run.
	SearchResult = core.SearchResult
	// Advisor tunes indexes for individual queries.
	Advisor = advisor.Advisor
	// SearchProgress is a point-in-time snapshot of a running search,
	// delivered to MergeOptions.Progress.
	SearchProgress = core.Progress
	// CostCache is a shareable, optionally size-bounded what-if cost
	// cache; see NewCostCache and MergeOptions.CostCache.
	CostCache = costcache.Cache
	// PreparedWorkload is a workload resolved once against the
	// database's statistics (per-query descriptors the optimizer's
	// prepared fast paths consume); see Merger.PreparedWorkload and
	// MergeOptions.Prepared.
	PreparedWorkload = optimizer.PreparedWorkload
	// CostBreaker is the circuit breaker the resilient costing path
	// consults; see MergeOptions.Resilience.
	CostBreaker = core.Breaker
	// CompressedWorkload is a workload clustered into constant-abstracted
	// templates with its per-(template, atom) cost table — the
	// CompressedOptimizerCost model's working state. Build once per
	// (workload, statistics) pair and share across runs; see
	// Merger.CompressedWorkload and MergeOptions.Compressed.
	CompressedWorkload = wscale.Prepared
	// WorkerPool is a set of what-if worker endpoints for distributed
	// costing; see NewWorkerPool and (*WorkerPool).Bind.
	WorkerPool = distrib.Pool
	// WorkerBinding is a worker pool bound to one registered workload;
	// see MergeOptions.Workers.
	WorkerBinding = distrib.Binding
)

// NewWorkerPool builds a distributed-costing pool over what-if worker
// base URLs ("http://host:port", cmd/idxmergew processes serving the
// same database). Bind a workload with (*WorkerPool).Bind and pass
// the binding via MergeOptions.Workers.
func NewWorkerPool(urls []string) *WorkerPool {
	return distrib.NewPool(urls, distrib.Options{})
}

// NewCostCache builds a what-if cost cache that can be shared across
// merging runs via MergeOptions.CostCache. maxEntries bounds the
// number of cached per-query costs (<= 0 means unbounded); long-lived
// processes should set a bound. See also (*CostCache).Reset.
func NewCostCache(maxEntries int) *CostCache {
	return costcache.NewBounded(0, maxEntries)
}

// Value constructors, re-exported.
var (
	NewInt    = value.NewInt
	NewFloat  = value.NewFloat
	NewString = value.NewString
	NewDate   = value.NewDate
	NewNull   = value.NewNull
)

// Column type kinds, re-exported for schema construction.
const (
	IntKind    = value.Int
	FloatKind  = value.Float
	StringKind = value.String
	DateKind   = value.Date
)

// NewDatabase creates an empty database.
func NewDatabase() *Database { return engine.NewDatabase() }

// NewTable builds a table descriptor.
func NewTable(name string, cols []Column) (*Table, error) { return catalog.NewTable(name, cols) }

// NewIndexDef validates and builds an index definition.
func NewIndexDef(db *Database, name, table string, columns []string) (IndexDef, error) {
	return catalog.NewIndexDef(db.Schema(), name, table, columns)
}

// NewOptimizer creates a cost-based optimizer over the database.
func NewOptimizer(db *Database) *Optimizer { return optimizer.New(db) }

// NewAdvisor creates a per-query index advisor.
func NewAdvisor(db *Database, opt *Optimizer) *Advisor { return advisor.New(db, opt) }

// ParseSelect parses one SELECT statement (unresolved).
func ParseSelect(text string) (*SelectStmt, error) { return sql.ParseSelect(text) }

// ParseWorkload reads a workload file (one query per line, optional
// "freq|" prefix, -- comments) and resolves it against the schema.
func ParseWorkload(r io.Reader, db *Database) (*Workload, error) {
	return sql.ParseWorkload(r, db.Schema())
}

// MergePairKind selects the pairwise merge procedure (§3.3).
type MergePairKind int

const (
	// MergePairCost uses cost and index-usage information (Figure 2) —
	// the paper's recommended procedure.
	MergePairCost MergePairKind = iota
	// MergePairSyntactic uses only parsed workload information (Figure 3).
	MergePairSyntactic
	// MergePairExhaustive tries all column permutations per pair —
	// exponential; a quality upper bound.
	MergePairExhaustive
)

// SearchKind selects the search strategy (§3.4).
type SearchKind int

const (
	// GreedySearch is the paper's Figure 4 algorithm.
	GreedySearch SearchKind = iota
	// ExhaustiveSearch enumerates all minimal merged configurations.
	ExhaustiveSearch
)

// CostModelKind selects the cost-evaluation strategy (§3.5).
type CostModelKind int

const (
	// OptimizerCost uses optimizer-estimated costs over what-if
	// configurations — the paper's recommended strategy.
	OptimizerCost CostModelKind = iota
	// NoCost uses the syntactic width thresholds f and p only.
	NoCost
	// PrefilteredOptimizerCost vetoes candidates with a cheap external
	// model before invoking the optimizer (§3.5.3).
	PrefilteredOptimizerCost
	// CompressedOptimizerCost uses optimizer-estimated costs over the
	// workload compressed into constant-abstracted templates (CoPhy-style
	// decomposition): candidates are priced per template from a
	// (template, atomic-configuration) cost table, with delta evaluation
	// against the search's current configuration and admissible
	// lower-bound pruning. Recommendations match OptimizerCost (exact
	// per-member costing, no representative approximation) while scaling
	// to workloads of tens of thousands of statements.
	CompressedOptimizerCost
)

// MergeOptions configures a merging run.
type MergeOptions struct {
	// CostConstraint is the tolerated fractional workload cost increase
	// (e.g. 0.10 for the paper's 10%). Used by OptimizerCost models.
	CostConstraint float64
	// MergePair selects the pairwise merge procedure.
	MergePair MergePairKind
	// Search selects the search strategy.
	Search SearchKind
	// CostModel selects the constraint evaluation strategy.
	CostModel CostModelKind
	// NoCostF / NoCostP are the No-Cost model thresholds (defaults:
	// the paper's best-performing f=0.60, p=0.25).
	NoCostF, NoCostP float64
	// Parallelism bounds concurrent candidate costing during the
	// search: candidate merges of one search step are constraint-
	// checked in a bounded worker pool, backed by a thread-safe
	// what-if cost cache. <= 1 (the default) runs fully serially.
	// Results are identical for any value — see core.GreedyOptions
	// and core.ExhaustiveOptions.
	Parallelism int
	// Progress, when non-nil, receives point-in-time search snapshots
	// (accepted steps, bytes saved so far, evaluations consumed). It is
	// called synchronously from the searching goroutine and must be
	// cheap.
	Progress func(SearchProgress)
	// CostCache, when non-nil, supplies a shared what-if cost cache so
	// repeated runs (or a service running many jobs over one database)
	// reuse per-query costs. When one cache serves runs over different
	// workloads, set CacheNamespace to a distinct value per workload —
	// cache keys embed only a query's position within its workload.
	CostCache *CostCache
	// CacheNamespace disambiguates CostCache keys across workloads.
	CacheNamespace string
	// Prepared, when non-nil, supplies the merger's workload already
	// prepared against the database's current statistics (the advisor
	// service prepares once at workload registration and reuses across
	// jobs). When nil, the merger prepares lazily and caches the
	// result. Results are byte-identical either way.
	Prepared *PreparedWorkload
	// Compressed, when non-nil, supplies the workload already compressed
	// and paired with a (template, atom) cost table (the advisor service
	// compresses once at workload registration and reuses the table
	// across jobs). Only consulted by the CompressedOptimizerCost model;
	// when nil, the merger compresses lazily and caches the result.
	Compressed *CompressedWorkload
	// Workers, when non-nil, offloads cache-missed what-if costings to
	// a bound pool of stateless worker processes (cmd/idxmergew),
	// batched per search wave. Results are byte-identical at any worker
	// count — remote costs install through the exact same cache and
	// counter paths as local evaluation — and any worker failure falls
	// back to local costing, so a run never fails because of the pool.
	// Build with NewWorkerPool and bind the workload with
	// (*WorkerPool).Bind.
	Workers *WorkerBinding
	// Resilience, when non-nil, hardens optimizer-backed costing:
	// transient failures are retried with backoff, permanent failures
	// trip a circuit breaker and degrade decisions to the external
	// analytic model (§3.5.2) instead of failing the search — the
	// result then carries Degraded. Ignored by the No-Cost model
	// (which never consults a cost function).
	Resilience *ResilienceOptions
}

// ResilienceOptions configures the fault-tolerant costing path; the
// zero value selects the defaults documented on core.ResilientChecker
// (2 retries, 2ms initial backoff, no per-attempt deadline).
type ResilienceOptions struct {
	// MaxRetries bounds transient retries per constraint check
	// (default 2; negative disables retries).
	MaxRetries int
	// Backoff is the first retry's delay, doubling per retry
	// (default 2ms).
	Backoff time.Duration
	// AttemptTimeout, when positive, deadlines each costing attempt;
	// overruns are retried like transient faults.
	AttemptTimeout time.Duration
	// Breaker, when non-nil, shares a circuit breaker across runs (the
	// advisor service keeps one per session). When nil each run gets a
	// private breaker.
	Breaker *CostBreaker
	// NoDegraded disables the external-model fallback: exhausted
	// retries then fail the search with a typed error instead of
	// degrading.
	NoDegraded bool
}

// Merger runs index merging for one database + workload.
type Merger struct {
	db  *Database
	w   *Workload
	opt *Optimizer

	prepMu   sync.Mutex
	prepared *PreparedWorkload
	prepVer  uint64

	compMu     sync.Mutex
	compressed *CompressedWorkload
	compVer    uint64
}

// NewMerger builds a merger. The database should have statistics
// (AnalyzeAll) so the optimizer can cost hypothetical indexes.
func NewMerger(db *Database, w *Workload) (*Merger, error) {
	if w == nil || w.Len() == 0 {
		return nil, fmt.Errorf("indexmerge: empty workload")
	}
	return &Merger{db: db, w: w, opt: optimizer.New(db)}, nil
}

// Optimizer exposes the merger's optimizer (for cost inspection).
func (m *Merger) Optimizer() *Optimizer { return m.opt }

// PreparedWorkload returns the merger's workload prepared against the
// database's current statistics, preparing on first use and
// re-preparing automatically after the statistics are rebuilt
// (Analyze bumps the database's stats version, which invalidates
// prepared selectivities).
func (m *Merger) PreparedWorkload() (*PreparedWorkload, error) {
	m.prepMu.Lock()
	defer m.prepMu.Unlock()
	ver := m.db.StatsVersion()
	if m.prepared == nil || m.prepVer != ver {
		pw, err := m.opt.PrepareWorkload(m.w)
		if err != nil {
			return nil, err
		}
		m.prepared = pw
		m.prepVer = ver
	}
	return m.prepared, nil
}

// CompressedWorkload returns the merger's workload compressed into
// templates and paired with an empty-on-first-use cost table, built
// lazily and rebuilt after the database's statistics change (the cost
// table memoizes stats-dependent costs, so it cannot outlive them).
func (m *Merger) CompressedWorkload() (*CompressedWorkload, error) {
	pw, err := m.PreparedWorkload()
	if err != nil {
		return nil, err
	}
	m.compMu.Lock()
	defer m.compMu.Unlock()
	ver := m.db.StatsVersion()
	if m.compressed == nil || m.compVer != ver || m.compressed.PW != pw {
		cp, err := wscale.Prepare(wscale.Compress(m.w), pw, m.opt, 0)
		if err != nil {
			return nil, err
		}
		m.compressed = cp
		m.compVer = ver
	}
	return m.compressed, nil
}

// compressedFor resolves the compressed workload for a run: the
// caller's (validated against this merger's workload) or the lazily
// cached one.
func (m *Merger) compressedFor(opts *MergeOptions) (*CompressedWorkload, error) {
	if opts != nil && opts.Compressed != nil && len(opts.Compressed.C.W.Queries) == m.w.Len() {
		return opts.Compressed, nil
	}
	return m.CompressedWorkload()
}

// preparedFor resolves the prepared workload for a run: the caller's
// (validated against this merger's workload) or the lazily cached one.
func (m *Merger) preparedFor(opts *MergeOptions) (*PreparedWorkload, error) {
	if opts != nil && opts.Prepared != nil && len(opts.Prepared.Queries) == m.w.Len() {
		return opts.Prepared, nil
	}
	return m.PreparedWorkload()
}

// MergeResult is a merging run's outcome plus context for reporting.
type MergeResult struct {
	*core.SearchResult
	// InitialCost and FinalCost are Cost(W, C) before and after.
	InitialCost float64
	FinalCost   float64
	// Bound is the cost upper bound U (0 for the No-Cost model).
	Bound float64
	// Degraded reports that at least one constraint decision (or the
	// final cost estimate) was served by the external analytic model
	// because the optimizer-backed path kept failing: the result is
	// best-effort and carries no optimizer cost guarantee. Always
	// false without MergeOptions.Resilience.
	Degraded bool
	// Retries counts transient costing failures the resilient path
	// absorbed (0 without Resilience).
	Retries int64
	// DegradedChecks counts constraint decisions served by the
	// external model (0 without Resilience).
	DegradedChecks int64
	// PanicsRecovered counts costing panics converted to typed errors
	// (0 without Resilience).
	PanicsRecovered int64
	// Templates and DedupRatio describe the workload compression a
	// CompressedOptimizerCost run searched over (0 for other models).
	Templates  int
	DedupRatio float64
	// CostTableHits / CostTableMisses count (template, atom) cost-table
	// lookups during this run; a high hit rate is where the compressed
	// model's speed comes from (0 for other models).
	CostTableHits   int64
	CostTableMisses int64
	// PrunedChecks counts candidates the compressed model rejected via
	// its admissible lower bound, without exact costing (0 for other
	// models).
	PrunedChecks int64
	// RemoteBatches / RemoteItems count costing batches and items
	// (per-query costs or template atoms) served by the worker pool;
	// RemoteFallbacks counts batches that failed remotely and were
	// transparently re-costed locally. All 0 without
	// MergeOptions.Workers. These describe where work ran, not what it
	// produced — every other field is identical at any worker count.
	RemoteBatches   int64
	RemoteItems     int64
	RemoteFallbacks int64
}

// CostIncrease is the fractional workload cost growth.
func (r *MergeResult) CostIncrease() float64 {
	if r.InitialCost == 0 {
		return 0
	}
	return r.FinalCost/r.InitialCost - 1
}

// Report renders a human-readable summary.
func (r *MergeResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "indexes:  %d -> %d\n", r.Initial.Len(), r.Final.Len())
	fmt.Fprintf(&b, "storage:  %d -> %d bytes (%.1f%% saved)\n", r.InitialBytes, r.FinalBytes, 100*r.StorageReduction())
	fmt.Fprintf(&b, "cost:     %.2f -> %.2f (%+.1f%%, bound %.2f)\n", r.InitialCost, r.FinalCost, 100*r.CostIncrease(), r.Bound)
	if r.Templates > 0 {
		fmt.Fprintf(&b, "compress: %d templates (%.1fx dedup), cost table %d hits / %d misses, %d pruned\n",
			r.Templates, r.DedupRatio, r.CostTableHits, r.CostTableMisses, r.PrunedChecks)
	}
	if r.RemoteBatches > 0 || r.RemoteFallbacks > 0 {
		fmt.Fprintf(&b, "distrib:  %d remote batches (%d items), %d local fallbacks\n",
			r.RemoteBatches, r.RemoteItems, r.RemoteFallbacks)
	}
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  merged %s + %s -> %s\n", s.ParentA, s.ParentB, s.Result)
	}
	for _, ix := range r.Final.Indexes {
		fmt.Fprintf(&b, "  final: %s\n", ix)
	}
	return b.String()
}

// MergeDefs runs Storage-Minimal Index Merging over the given initial
// index definitions.
func (m *Merger) MergeDefs(initialDefs []IndexDef, opts MergeOptions) (*MergeResult, error) {
	return m.MergeDefsContext(context.Background(), initialDefs, opts)
}

// MergeDefsContext is MergeDefs under a context: a long search stops
// promptly when ctx is canceled and returns ctx.Err().
func (m *Merger) MergeDefsContext(ctx context.Context, initialDefs []IndexDef, opts MergeOptions) (*MergeResult, error) {
	initial := core.NewConfiguration(initialDefs)
	return m.merge(ctx, initial, opts)
}

// Merge runs merging using the database's materialized indexes as the
// initial configuration.
func (m *Merger) Merge(opts MergeOptions) (*MergeResult, error) {
	return m.MergeContext(context.Background(), opts)
}

// MergeContext is Merge under a context: a long search stops promptly
// when ctx is canceled and returns ctx.Err().
func (m *Merger) MergeContext(ctx context.Context, opts MergeOptions) (*MergeResult, error) {
	var defs []IndexDef
	for _, ix := range m.db.Indexes() {
		defs = append(defs, ix.Def())
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("indexmerge: no indexes to merge; create indexes or use MergeDefs")
	}
	return m.MergeDefsContext(ctx, defs, opts)
}

func (m *Merger) merge(ctx context.Context, initial *core.Configuration, opts MergeOptions) (*MergeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &MergeResult{}
	pw, err := m.preparedFor(&opts)
	if err != nil {
		return nil, err
	}
	// Pre-search costing (the baseline and seek-cost attribution) rides
	// the same retry budget as constraint checks. It cannot degrade: the
	// external fallback is calibrated against this very baseline, so a
	// persistent failure here is surfaced as the typed error.
	baseCost, err := resilientEval(opts.Resilience, out, func() (float64, error) {
		return m.opt.WorkloadCostPrepared(pw, optimizer.Configuration(initial.Defs()))
	})
	if err != nil {
		return nil, err
	}
	if opts.CostConstraint <= 0 {
		opts.CostConstraint = 0.10
	}
	if opts.NoCostF <= 0 {
		opts.NoCostF = 0.60
	}
	if opts.NoCostP <= 0 {
		opts.NoCostP = 0.25
	}

	// MergePair procedure.
	var mp core.MergePair
	switch opts.MergePair {
	case MergePairSyntactic:
		mp = &core.MergePairSyntactic{Freq: core.LeadingColumnFrequencies(m.w)}
	case MergePairExhaustive:
		mp = &core.MergePairExhaustive{Server: m.opt, W: m.w, Base: initial, Prepared: pw}
	default:
		seek, err := resilientEval(opts.Resilience, out, func() (*core.SeekCosts, error) {
			return core.ComputeSeekCostsPrepared(m.opt, pw, initial)
		})
		if err != nil {
			return nil, err
		}
		mp = &core.MergePairCost{Seek: seek}
	}

	// Cost evaluation strategy.
	var check core.ConstraintChecker
	var bound float64
	var resilient *core.ResilientChecker
	var ext *core.ExternalCostModel
	var compressed *CompressedWorkload
	var compChecker *wscale.Checker
	var optChecker *core.OptimizerChecker
	var compHits0, compMisses0 int64
	var compRB0, compRI0, compRF0 int64
	// Interface-typed remote so a nil binding stays a nil interface.
	var remote wscale.RemoteCoster
	if opts.Workers != nil {
		remote = opts.Workers
	}
	switch opts.CostModel {
	case NoCost:
		check = &core.NoCostChecker{F: opts.NoCostF, P: opts.NoCostP, Tables: m.db}
	case CompressedOptimizerCost:
		compressed, err = m.compressedFor(&opts)
		if err != nil {
			return nil, err
		}
		compRB0, compRI0, compRF0 = compressed.RemoteStats()
		// The constraint bound derives from the decomposed baseline (the
		// template-order total), keeping the checker's delta totals and U
		// on the same summation; it differs from baseCost only in the
		// last ulp.
		compBase, err := resilientEval(opts.Resilience, out, func() (float64, error) {
			return compressed.WorkloadCostRemoteContext(ctx, initial, remote)
		})
		if err != nil {
			return nil, err
		}
		compChecker = wscale.NewChecker(compressed, compBase, opts.CostConstraint)
		compChecker.Parallelism = opts.Parallelism
		compChecker.Remote = remote
		check = compChecker
		bound = compChecker.U
		compHits0, compMisses0, _ = compressed.TableStats()
		if opts.Resilience != nil {
			ext = &core.ExternalCostModel{Meta: m.db, W: m.w}
			ext.SetBaseline(initial)
			resilient = opts.Resilience.wrap(compChecker, ext, opts.CostConstraint)
			check = resilient
		}
	case PrefilteredOptimizerCost:
		inner := core.NewOptimizerChecker(m.opt, m.w, baseCost, opts.CostConstraint)
		inner.Parallelism = opts.Parallelism
		inner.Cache = opts.CostCache
		inner.KeyNamespace = opts.CacheNamespace
		inner.Prepared = pw
		if opts.Workers != nil {
			inner.Batch = opts.Workers
		}
		optChecker = inner
		ext = &core.ExternalCostModel{Meta: m.db, W: m.w}
		ext.SetBaseline(initial)
		pre := &core.PrefilteredChecker{External: ext, Inner: inner, SlackPct: opts.CostConstraint}
		check = pre
		bound = inner.U
		if opts.Resilience != nil {
			resilient = opts.Resilience.wrap(pre, ext, opts.CostConstraint)
			check = resilient
		}
	default:
		inner := core.NewOptimizerChecker(m.opt, m.w, baseCost, opts.CostConstraint)
		inner.Parallelism = opts.Parallelism
		inner.Cache = opts.CostCache
		inner.KeyNamespace = opts.CacheNamespace
		inner.Prepared = pw
		if opts.Workers != nil {
			inner.Batch = opts.Workers
		}
		optChecker = inner
		check = inner
		bound = inner.U
		if opts.Resilience != nil {
			ext = &core.ExternalCostModel{Meta: m.db, W: m.w}
			ext.SetBaseline(initial)
			resilient = opts.Resilience.wrap(inner, ext, opts.CostConstraint)
			check = resilient
		}
	}

	// Search strategy.
	var res *core.SearchResult
	if opts.Search == ExhaustiveSearch {
		res, err = core.ExhaustiveContext(ctx, initial, mp, check, m.db, core.ExhaustiveOptions{Parallelism: opts.Parallelism, Progress: opts.Progress})
	} else {
		res, err = core.GreedyContext(ctx, initial, mp, check, m.db, core.GreedyOptions{Parallelism: opts.Parallelism, Progress: opts.Progress})
	}
	if err != nil {
		return nil, err
	}

	out.SearchResult = res
	out.InitialCost = baseCost
	out.Bound = bound
	if compressed != nil {
		out.Templates = len(compressed.C.Templates)
		out.DedupRatio = compressed.C.DedupRatio()
		hits, misses, _ := compressed.TableStats()
		out.CostTableHits = hits - compHits0
		out.CostTableMisses = misses - compMisses0
		out.PrunedChecks = compChecker.PrunedChecks()
		// Deltas: the Prepared (and its remote counters) may be shared
		// across runs by the advisor service.
		rb, ri, rf := compressed.RemoteStats()
		out.RemoteBatches = rb - compRB0
		out.RemoteItems = ri - compRI0
		out.RemoteFallbacks = rf - compRF0
	}
	if optChecker != nil {
		out.RemoteBatches, out.RemoteItems, out.RemoteFallbacks = optChecker.RemoteStats()
	}
	if resilient != nil {
		out.Degraded = out.Degraded || resilient.Degraded()
		out.Retries += resilient.Retries()
		out.DegradedChecks += resilient.DegradedChecks()
		out.PanicsRecovered += resilient.PanicsRecovered()
	}
	finalCost, err := m.finalCostResilient(pw, res.Final, opts.Resilience, ext, baseCost, out)
	if err != nil {
		return nil, err
	}
	out.FinalCost = finalCost
	return out, nil
}

// finalCostResilient computes Cost(W, C_final). Without resilience it
// is a plain prepared workload costing. With resilience, transient
// failures are retried with the configured budget; if the optimizer
// stays unavailable (and degraded mode is allowed), the final cost is
// estimated by scaling the optimizer baseline with the external
// model's relative change — baseCost × ext(final)/ext(initial) — and
// the result is flagged Degraded.
func (m *Merger) finalCostResilient(pw *PreparedWorkload, final *core.Configuration, ro *ResilienceOptions, ext *core.ExternalCostModel, baseCost float64, out *MergeResult) (float64, error) {
	cfg := optimizer.Configuration(final.Defs())
	if ro == nil {
		return m.opt.WorkloadCostPrepared(pw, cfg)
	}
	c, err := resilientEval(ro, out, func() (float64, error) {
		return m.opt.WorkloadCostPrepared(pw, cfg)
	})
	if err == nil {
		return c, nil
	}
	if !ro.NoDegraded && ext != nil && ext.BaselineCost() > 0 {
		out.Degraded = true
		out.DegradedChecks++
		return baseCost * ext.WorkloadCost(final) / ext.BaselineCost(), nil
	}
	return 0, err
}

// resilientEval runs one costing computation under the resilience
// policy: panics become *core.PanicError, transient failures are
// retried with exponential backoff up to the configured budget, and
// the result's Retries/PanicsRecovered counters account for what was
// absorbed. With ro == nil it is a transparent call — panics and
// errors propagate exactly as before.
func resilientEval[T any](ro *ResilienceOptions, out *MergeResult, fn func() (T, error)) (T, error) {
	if ro == nil {
		return fn()
	}
	maxRetries := ro.MaxRetries
	if maxRetries == 0 {
		maxRetries = 2
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := ro.Backoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	attemptOnce := func() (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &core.PanicError{Value: r}
				out.PanicsRecovered++
			}
		}()
		return fn()
	}
	var zero T
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		v, err := attemptOnce()
		if err == nil {
			return v, nil
		}
		lastErr = err
		if !core.IsTransient(err) {
			break
		}
		if attempt < maxRetries {
			out.Retries++
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return zero, lastErr
}

// wrap builds the core checker for one run from the options.
func (ro *ResilienceOptions) wrap(inner interface {
	core.ConstraintChecker
	core.ContextChecker
}, ext *core.ExternalCostModel, slackPct float64) *core.ResilientChecker {
	rc := &core.ResilientChecker{
		Inner:          inner,
		SlackPct:       slackPct,
		MaxRetries:     ro.MaxRetries,
		Backoff:        ro.Backoff,
		AttemptTimeout: ro.AttemptTimeout,
		Breaker:        ro.Breaker,
	}
	if !ro.NoDegraded {
		rc.External = ext
	}
	if rc.Breaker == nil {
		rc.Breaker = &core.Breaker{}
	}
	return rc
}

// DualResult reports a Cost-Minimal (dual) merging run.
type DualResult struct {
	*core.CostMinimalResult
}

// Report renders a human-readable summary.
func (r *DualResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "indexes:  %d -> %d\n", r.Initial.Len(), r.Final.Len())
	fmt.Fprintf(&b, "storage:  %d -> %d bytes (%.1f%% saved, budget met: %v)\n",
		r.InitialBytes, r.FinalBytes, 100*r.StorageReduction(), r.MetBudget)
	fmt.Fprintf(&b, "cost:     %.2f -> %.2f (%+.1f%%)\n", r.InitialCost, r.FinalCost,
		100*(r.FinalCost/r.InitialCost-1))
	for _, ix := range r.Final.Indexes {
		fmt.Fprintf(&b, "  final: %s\n", ix)
	}
	return b.String()
}

// MergeDual solves the paper's dual formulation (Cost-Minimal Index
// Merging, §3.1): minimize workload cost subject to a storage budget
// in bytes. The paper states the dual but leaves it unexplored; this
// is an extension.
func (m *Merger) MergeDual(initialDefs []IndexDef, storageBudget int64) (*DualResult, error) {
	return m.MergeDualContext(context.Background(), initialDefs, storageBudget)
}

// MergeDualContext is MergeDual under a context; cancellation stops
// the search promptly and returns ctx.Err().
func (m *Merger) MergeDualContext(ctx context.Context, initialDefs []IndexDef, storageBudget int64) (*DualResult, error) {
	initial := core.NewConfiguration(initialDefs)
	pw, err := m.PreparedWorkload()
	if err != nil {
		return nil, err
	}
	baseCost, err := m.opt.WorkloadCostPrepared(pw, optimizer.Configuration(initialDefs))
	if err != nil {
		return nil, err
	}
	seek, err := core.ComputeSeekCostsPrepared(m.opt, pw, initial)
	if err != nil {
		return nil, err
	}
	coster := core.NewOptimizerChecker(m.opt, m.w, baseCost, 0)
	coster.Prepared = pw
	res, err := core.CostMinimalContext(ctx, initial, &core.MergePairCost{Seek: seek}, coster, m.db, storageBudget)
	if err != nil {
		return nil, err
	}
	return &DualResult{CostMinimalResult: res}, nil
}

// TuneWorkload recommends per-query indexes for every workload query
// and unions them — the baseline whose storage blow-up merging fixes.
func (m *Merger) TuneWorkload() ([]IndexDef, error) {
	return m.TuneWorkloadContext(context.Background())
}

// TuneWorkloadContext is TuneWorkload under a context; cancellation
// surfaces as ctx.Err().
func (m *Merger) TuneWorkloadContext(ctx context.Context) ([]IndexDef, error) {
	return advisor.New(m.db, m.opt).TuneWorkloadContext(ctx, m.w)
}

// TuneTemplates tunes one representative query per compressed template
// and unions the recommendations — TuneWorkload at template
// granularity, the natural initial-configuration builder for workloads
// large enough to need compression.
func (m *Merger) TuneTemplates() ([]IndexDef, error) {
	return m.TuneTemplatesContext(context.Background())
}

// TuneTemplatesContext is TuneTemplates under a context; cancellation
// surfaces as ctx.Err().
func (m *Merger) TuneTemplatesContext(ctx context.Context) ([]IndexDef, error) {
	cw, err := m.CompressedWorkload()
	if err != nil {
		return nil, err
	}
	return advisor.New(m.db, m.opt).TuneTemplatesContext(ctx, m.w, cw.C.Representatives())
}

// WorkloadCost returns Cost(W, C) for an arbitrary configuration,
// through the prepared fast path (totals are bit-identical to the
// unprepared computation).
func (m *Merger) WorkloadCost(defs []IndexDef) (float64, error) {
	pw, err := m.PreparedWorkload()
	if err != nil {
		return 0, err
	}
	return m.opt.WorkloadCostPrepared(pw, optimizer.Configuration(defs))
}
