// Command dbgen builds one of the experimental databases, prints a
// schema/size summary, and optionally writes generated workload files
// (the paper's projection-only and complex classes) for later use with
// idxmerge -workload.
//
// Usage:
//
//	dbgen -db synthetic2 [-scale 1.0] [-seed 1]
//	      [-projection proj.sql] [-complex complex.sql] [-queries 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
	"indexmerge/internal/workload"
)

func main() {
	dbName := flag.String("db", "tpcd", "database: tpcd | synthetic1 | synthetic2")
	scale := flag.Float64("scale", 1.0, "database scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	projPath := flag.String("projection", "", "write a projection-only workload to this file")
	complexPath := flag.String("complex", "", "write a complex workload to this file")
	variantsPath := flag.String("tpcd-variants", "", "write a QGEN-style parameterized TPC-D workload to this file (tpcd only)")
	queries := flag.Int("queries", 30, "queries per written workload")
	savePath := flag.String("save", "", "write a database snapshot (load with imsql/idxmerge -db file:PATH)")
	flag.Parse()

	var db *engine.Database
	var err error
	switch *dbName {
	case "tpcd":
		db, err = datagen.BuildTPCD(datagen.ScaledTPCD(*scale), *seed)
	case "synthetic1":
		spec := datagen.Synthetic1Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * *scale)
		spec.Seed += *seed
		db, err = datagen.BuildSynthetic(spec)
	case "synthetic2":
		spec := datagen.Synthetic2Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * *scale)
		spec.Seed += *seed
		db, err = datagen.BuildSynthetic(spec)
	default:
		err = fmt.Errorf("unknown database %q", *dbName)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("database %s (scale %.2f, seed %d)\n", *dbName, *scale, *seed)
	fmt.Printf("%-12s %10s %8s %10s %10s\n", "table", "rows", "cols", "row bytes", "heap MB")
	var total int64
	for _, t := range db.Schema().Tables() {
		h, err := db.Heap(t.Name)
		if err != nil {
			fatal(err)
		}
		total += h.Bytes()
		fmt.Printf("%-12s %10d %8d %10d %10.2f\n", t.Name, h.RowCount(), len(t.Columns), t.RowWidth(), storage.BytesToMB(h.Bytes()))
	}
	fmt.Printf("total data: %.2f MB\n", storage.BytesToMB(total))

	writeWL := func(path string, class workload.Class, label string) {
		if path == "" {
			return
		}
		w, err := workload.Generate(db, workload.Options{Class: class, Queries: *queries, Seed: *seed + 11})
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sql.WriteWorkload(f, w); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d %s queries to %s\n", w.Len(), label, path)
	}
	writeWL(*projPath, workload.ProjectionOnly, "projection-only")
	writeWL(*complexPath, workload.Complex, "complex")

	if *savePath != "" {
		if err := db.SaveSnapshotFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote database snapshot to %s\n", *savePath)
	}

	if *variantsPath != "" {
		if *dbName != "tpcd" {
			fatal(fmt.Errorf("-tpcd-variants requires -db tpcd"))
		}
		w, err := datagen.TPCDWorkloadVariants(db.Schema(), *queries, *seed+17)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*variantsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sql.WriteWorkload(f, w.Compress()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d parameterized TPC-D queries (compressed from %d) to %s\n", w.Compress().Len(), w.Len(), *variantsPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbgen:", err)
	os.Exit(1)
}
