// Command idxmerged is the index-merging advisor service: a
// long-running HTTP JSON API over the same engine cmd/idxmerge drives
// in batch. It manages named sessions (schema + generated data +
// analyzed statistics), registers workloads, answers synchronous
// what-if costing requests, and runs tune/merge searches as
// asynchronous, cancellable jobs on a bounded worker pool, exposing
// Prometheus-style metrics on /metrics.
//
// Usage:
//
//	idxmerged [-addr :7781] [-workers 2] [-queue 8] [-cache 1048576]
//	          [-drain-timeout 30s] [-journal path] [-faults rules]
//	          [-cost-workers http://host:7791,http://host:7792] [-pprof]
//	          [-retune-period 0] [-window-max 32] [-decay 0.5]
//	          [-min-weight 0.25] [-min-improvement 0.05] [-rollback-ratio 2]
//	          [-quota-sessions 0] [-quota-jobs 0] [-quota-ingest-rate 0]
//	          [-quota-ingest-burst 0] [-quota-memory 0] [-memory-budget 0]
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and
// running jobs get -drain-timeout to finish, then are canceled.
//
// With -journal, state-changing requests are appended (fsynced) to a
// JSONL journal and replayed on the next start: sessions and
// workloads are rebuilt deterministically and jobs interrupted by a
// crash reappear as failed with an explicit recovery reason. -faults
// installs deterministic fault-injection rules (see internal/faults)
// for chaos testing.
//
// The -retune-period/-window-*/-min-*/-rollback-ratio flags set the
// server-level defaults for continuous sessions (created with a
// "continuous" block): streaming ingestion on
// POST /v1/sessions/{name}/ingest, periodic background re-tuning, and
// auto-apply/rollback of recommendations behind cost guardrails. A
// session's own continuous spec overrides each default field by field.
//
// The -quota-* flags set per-tenant admission limits (tenants are
// identified by the X-Tenant header or the session creation request's
// tenant field; zero = unlimited): live sessions, queued+running jobs,
// ingest statements per second (token bucket), and byte-accounted
// memory (windows + cost tables + caches). -memory-budget is the
// GLOBAL accounted-memory budget that drives the brownout degradation
// ladder alongside job-queue pressure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"indexmerge/internal/faults"
	"indexmerge/internal/server"
	"indexmerge/internal/server/quota"
)

func main() {
	addr := flag.String("addr", ":7781", "listen address")
	workers := flag.Int("workers", 2, "job worker pool size (jobs on distinct sessions run in parallel)")
	queue := flag.Int("queue", 8, "pending job queue capacity (submissions beyond it get 429)")
	cacheMax := flag.Int("cache", 1<<20, "per-session what-if cost cache bound, entries (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight jobs")
	journalPath := flag.String("journal", "", "session/job journal file (empty = no durability)")
	faultRules := flag.String("faults", "", "fault-injection rules, semicolon-separated (chaos testing)")
	costWorkers := flag.String("cost-workers", "", "comma-separated what-if worker base URLs (idxmergew); merge jobs batch costings to the pool, falling back locally on failure")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	retunePeriod := flag.Duration("retune-period", 0, "continuous sessions: background re-tune period (0 = manual retune only)")
	windowMax := flag.Int("window-max", 0, "continuous sessions: member reservoir bound per template (0 = built-in 32)")
	decay := flag.Float64("decay", 0, "continuous sessions: per-cycle template weight decay factor (0 = built-in 0.5)")
	minWeight := flag.Float64("min-weight", 0, "continuous sessions: drop templates decayed below this weight (0 = built-in 0.25)")
	minImprovement := flag.Float64("min-improvement", 0, "continuous sessions: estimated improvement a recommendation must clear to auto-apply (0 = built-in 0.05)")
	rollbackRatio := flag.Float64("rollback-ratio", 0, "continuous sessions: roll back when observed/estimated cost exceeds this ratio (0 = built-in 2.0)")
	quotaSessions := flag.Int("quota-sessions", 0, "per-tenant live session limit (0 = unlimited)")
	quotaJobs := flag.Int("quota-jobs", 0, "per-tenant queued+running job limit (0 = unlimited)")
	quotaIngestRate := flag.Float64("quota-ingest-rate", 0, "per-tenant ingest statements/sec token-bucket rate (0 = unlimited)")
	quotaIngestBurst := flag.Float64("quota-ingest-burst", 0, "per-tenant ingest token-bucket burst (0 = same as rate)")
	quotaMemory := flag.Int64("quota-memory", 0, "per-tenant accounted-memory budget, bytes (0 = unlimited)")
	memoryBudget := flag.Int64("memory-budget", 0, "global accounted-memory budget driving the brownout ladder, bytes (0 = queue pressure only)")
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *faultRules != "" {
		rules, err := faults.ParseRules(*faultRules)
		if err != nil {
			log.Error("bad -faults", "error", err)
			os.Exit(2)
		}
		faults.Install(rules...)
		log.Warn("fault injection armed", "rules", len(rules))
	}
	cfg := server.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheMaxEntries: *cacheMax,
		Logger:          log,
		JournalPath:     *journalPath,
		Continuous: server.ContinuousSpec{
			RetunePeriodMS: int(retunePeriod.Milliseconds()),
			WindowMax:      *windowMax,
			Decay:          *decay,
			MinWeight:      *minWeight,
			MinImprovement: *minImprovement,
			RollbackRatio:  *rollbackRatio,
		},
		Quota: quota.Limits{
			MaxSessions:  *quotaSessions,
			MaxJobs:      *quotaJobs,
			IngestPerSec: *quotaIngestRate,
			IngestBurst:  *quotaIngestBurst,
			MemoryBytes:  *quotaMemory,
		},
		MemoryBudgetBytes: *memoryBudget,
	}
	if *costWorkers != "" {
		cfg.CostWorkers = strings.Split(*costWorkers, ",")
		log.Info("distributed costing enabled", "cost_workers", len(cfg.CostWorkers))
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Error("startup", "error", err)
		os.Exit(1)
	}
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris and stuck-client protection: bound how long a
		// request may take to arrive and how long idle keep-alives
		// hang around. No WriteTimeout — job submission is async, so
		// responses are small and fast, but /metrics under load should
		// not be cut off mid-body.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("idxmerged listening", "addr", *addr, "workers", *workers, "queue", *queue)

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. port in use).
		log.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	log.Info("shutting down", "drain_timeout", drainTimeout.String())

	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := srv.Drain(sctx); err != nil {
		log.Warn("jobs canceled at drain deadline", "error", err)
		fmt.Fprintln(os.Stderr, "idxmerged: drain deadline hit; remaining jobs canceled")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve", "error", err)
		os.Exit(1)
	}
	log.Info("idxmerged stopped")
}
