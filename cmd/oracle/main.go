// Command oracle runs the differential correctness harness: for each
// selected database it generates a workload, computes reference
// answers with the naive evaluator, runs the merge search, and diffs
// executed plans against the reference under the empty, initial,
// visited, final and pair-merged configurations, checking the
// metamorphic invariants along the way.
//
// Usage:
//
//	oracle [-db tpcd,synthetic2] [-scale 0.1] [-seed 1] [-queries 12]
//	       [-n 8] [-visited 5] [-json] [-repro-dir DIR]
//
// The exit status is 0 only if every sweep is clean. With -repro-dir,
// each violation is minimized and written there as a replayable
// .repro file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"indexmerge/internal/oracle"
	"indexmerge/internal/workload"
)

func main() {
	dbList := flag.String("db", "tpcd,synthetic2", "comma-separated databases: tpcd | synthetic1 | synthetic2")
	scale := flag.Float64("scale", 0.1, "database scale factor")
	seed := flag.Int64("seed", 1, "random seed (workload generation, initial configuration, sampling)")
	queries := flag.Int("queries", 12, "generated workload size per database")
	n := flag.Int("n", 8, "initial configuration size")
	visited := flag.Int("visited", 5, "max visited search configurations to execute differentially")
	jsonOut := flag.Bool("json", false, "emit the reports as a JSON array on stdout")
	reproDir := flag.String("repro-dir", "", "write a minimized .repro file per violation into this directory")
	flag.Parse()

	var reports []*oracle.Report
	failed := false
	for _, name := range strings.Split(*dbList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		rep, err := sweepOne(name, *scale, *seed, *queries, *n, *visited, *reproDir, *jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: %s: %v\n", name, err)
			os.Exit(2)
		}
		reports = append(reports, rep)
		if !rep.Ok() {
			failed = true
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func sweepOne(name string, scale float64, seed int64, queries, n, visited int, reproDir string, jsonOut bool) (*oracle.Report, error) {
	db, err := oracle.BuildDB(name, scale, seed)
	if err != nil {
		return nil, err
	}
	// Disjunctions on: the sweep exercises the IndexUnion access paths
	// alongside conjunctive plans.
	w, err := workload.Generate(db, workload.Options{Class: workload.Complex, Disjunctions: true, Queries: queries, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("generate workload: %w", err)
	}
	rep, err := oracle.Sweep(name, db, w, oracle.SweepOptions{
		Seed:           seed,
		InitialIndexes: n,
		MaxVisited:     visited,
	})
	if err != nil {
		return nil, err
	}
	if !jsonOut {
		fmt.Printf("%-12s queries=%d configs=%d checks=%d visited=%d merge-steps=%d violations=%d\n",
			name, rep.Queries, rep.Configs, rep.Checks, rep.VisitedSampled, rep.MergeSteps, len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
	if reproDir != "" && len(rep.Violations) > 0 {
		if err := writeRepros(name, scale, seed, reproDir, rep.Violations); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// writeRepros minimizes each violation's configuration and writes one
// replayable repro file per violation.
func writeRepros(dbName string, scale float64, seed int64, dir string, vs []oracle.Violation) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, v := range vs {
		r := oracle.NewRepro(dbName, scale, seed, v)
		min, err := oracle.Minimize(r)
		if err != nil {
			// Minimization is best effort; keep the unminimized repro.
			min = r
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-%d.repro", dbName, v.Kind, i))
		if err := os.WriteFile(path, min.Marshal(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "oracle: wrote %s\n", path)
	}
	return nil
}
