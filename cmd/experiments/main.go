// Command experiments regenerates every table and figure from the
// paper's evaluation (§4) and the introduction's motivating numbers,
// printing the same rows/series the paper reports.
//
// Usage:
//
//	experiments [-scale 1.0] [-queries 30] [-seed 1] [-only fig5,fig7] [-skip ablations]
//
// Figures use the paper's parameters by default: N=5 with a 10% cost
// constraint for Figures 5-7; N in {5,10,15,20,25,30} with a 20%
// constraint and 1% batch inserts for Figure 8.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"indexmerge/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "database scale factor (1.0 = default sizes)")
	queries := flag.Int("queries", 30, "queries per generated workload")
	seed := flag.Int64("seed", 1, "random seed for data and workloads")
	only := flag.String("only", "", "comma-separated subset: intro,fig5,fig6,fig7,fig8,ablations,compression,dual")
	projection := flag.Bool("projection", false, "use the projection-only workload class for Figures 5-7")
	fig8ns := flag.String("fig8n", "5,10,15,20,25,30", "comma-separated initial index counts for Figure 8")
	parallel := flag.Int("parallel", 1, "concurrent candidate costings per search step (0 = GOMAXPROCS); figures are identical for any value")
	flag.Parse()

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	enabled := func(name string) bool { return len(want) == 0 || want[name] }

	fmt.Printf("Index Merging (ICDE 1999) — experiment harness (scale=%.2f, queries=%d, seed=%d, parallel=%d)\n\n", *scale, *queries, *seed, *parallel)
	labs, err := experiments.StandardLabs(experiments.LabOptions{Scale: *scale, WorkloadQueries: *queries, Seed: *seed, Parallelism: *parallel})
	if err != nil {
		fatal(err)
	}

	if enabled("intro") {
		tpcd := labs[0]
		q13, err := experiments.RunIntroQ1Q3(tpcd)
		if err != nil {
			fatal(err)
		}
		experiments.RenderIntroQ1Q3(os.Stdout, q13)
		fmt.Println()
		t17, err := experiments.RunIntroTPCD17(tpcd, 0.10)
		if err != nil {
			fatal(err)
		}
		experiments.RenderIntroTPCD17(os.Stdout, t17)
		fmt.Println()
	}

	if enabled("fig5") || enabled("fig6") {
		rows, err := experiments.RunSearchComparisonOpt(labs, experiments.FigureOptions{N: experiments.Fig5N, Constraint: experiments.Fig5Constraint, Projection: *projection})
		if err != nil {
			fatal(err)
		}
		experiments.RenderSearchComparison(os.Stdout, rows)
		fmt.Println()
	}

	if enabled("fig7") {
		rows, err := experiments.RunMergePairComparisonOpt(labs, experiments.FigureOptions{N: experiments.Fig5N, Constraint: experiments.Fig5Constraint, Projection: *projection})
		if err != nil {
			fatal(err)
		}
		experiments.RenderMergePairComparison(os.Stdout, rows)
		fmt.Println()
	}

	if enabled("fig8") {
		var ns []int
		for _, s := range strings.Split(*fig8ns, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err == nil && n > 0 {
				ns = append(ns, n)
			}
		}
		rows, err := experiments.RunMaintenanceComparison(labs, ns, experiments.Fig8Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderMaintenanceComparison(os.Stdout, rows)
		fmt.Println()
	}

	if enabled("ablations") {
		prefix, err := experiments.RunAblationPrefixChoice(labs, experiments.Fig5N, experiments.Fig5Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, "Ablation — MergePair-Cost prefix choice (baseline: higher Seek-Cost leads; variant: reversed)", prefix)
		fmt.Println()

		order, err := experiments.RunAblationGreedyOrder(labs, experiments.Fig5N, experiments.Fig5Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, "Ablation — Greedy inner-loop order (baseline: storage reduction desc; variant: width growth asc)", order)
		fmt.Println()

		pre, err := experiments.RunAblationPrefilter(labs, experiments.Fig5N, experiments.Fig5Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, "Ablation — external-cost pre-filter (extra = optimizer invocations)", pre)
		fmt.Println()

		inter, err := experiments.RunAblationIntersection(labs, experiments.Fig5N, experiments.Fig5Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAblation(os.Stdout, "Ablation — index-intersection access paths (baseline: on; variant: off)", inter)
		fmt.Println()
	}

	if enabled("compression") {
		rows, err := experiments.RunWorkloadCompression(labs, experiments.Fig5N, 10, experiments.Fig5Constraint)
		if err != nil {
			fatal(err)
		}
		experiments.RenderCompression(os.Stdout, rows)
		fmt.Println()
	}

	if enabled("dual") {
		rows, err := experiments.RunCostMinimal(labs, 10, []float64{0.8, 0.6, 0.4})
		if err != nil {
			fatal(err)
		}
		experiments.RenderCostMinimal(os.Stdout, rows)
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
