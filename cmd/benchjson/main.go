// Command benchjson runs the prepared-workload costing benchmarks —
// Greedy candidate costing with and without the prepared fast path,
// the same comparison as BenchmarkPreparedGreedy* in bench_test.go —
// and writes the results as machine-readable JSON (BENCH_optimizer.json
// at the repository root is a checked-in run). Both variants must
// produce the identical final configuration, storage and
// cost-evaluation count; the command fails otherwise.
//
// With -workload, it instead runs the large-workload compression
// benchmark (BENCH_workload.json): a zipf-duplicated multi-thousand-
// statement workload merged once under the plain per-query
// OptimizerChecker and once under the wscale template/atom cost-table
// checker. Both variants must reach the same final configuration (or
// provably equal cost) — the compression is exact — and the report
// records the wall-clock speedup.
//
// With -distrib, it runs the distributed costing benchmark
// (BENCH_distrib.json): the same 10k-statement greedy merge under the
// per-query prepared checker, once single-process and once with its
// cache-miss waves sharded over a pool of in-process what-if workers,
// with a simulated per-optimizer-call round trip injected at the
// optimizer costing point (internal/faults ModeLatency) so the win of
// overlapping worker streams is measurable on a single-CPU host. Both
// runs must reach the identical final configuration — distribution
// must leave no trace in results.
//
// With -overload, it runs the multi-tenant isolation benchmark
// (BENCH_overload.json): one in-process idxmerged with per-tenant
// quotas and a global memory budget serves a quiet tenant's
// synchronous costing while a noisy tenant storms ingest, re-tunes
// and cross-tenant requests. The report records the quiet tenant's
// P50/P99 latency with and without the neighbor, the noisy traffic's
// shed rate, and the peak accounted memory against the budget; any
// cross-tenant request that is not rejected fails the run.
//
// Usage:
//
//	benchjson [-scale 0.5] [-queries 30] [-seed 1] [-o BENCH_optimizer.json]
//	benchjson -workload [-statements 10000] [-o BENCH_workload.json]
//	benchjson -distrib [-distrib-workers 4] [-rtt 200us] [-o BENCH_distrib.json]
//	benchjson -overload [-requests 200] [-o BENCH_overload.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/experiments"
	"indexmerge/internal/faults"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
	"indexmerge/internal/workload"
	"indexmerge/internal/wscale"
)

// envInfo records where a checked-in benchmark ran, so numbers are
// interpretable later (satellite: every BENCH_*.json carries it).
type envInfo struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	CostWorkers int    `json:"cost_workers"`
}

func captureEnv(costWorkers int) envInfo {
	return envInfo{
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CostWorkers: costWorkers,
	}
}

// benchCase is one (database, initial-configuration-size) scenario.
type benchCase struct {
	name string
	lab  func(opt experiments.LabOptions) (*experiments.Lab, error)
	n    int
}

// variantResult is the measured outcome of one costing variant.
type variantResult struct {
	NsPerOp        int64  `json:"ns_per_op"`
	AllocsPerOp    int64  `json:"allocs_per_op"`
	BytesPerOp     int64  `json:"bytes_per_op"`
	OptimizerCalls int64  `json:"optimizer_calls"`
	FinalBytes     int64  `json:"final_bytes"`
	Iterations     int    `json:"iterations"`
	Signature      string `json:"-"`
	CostEvals      int64  `json:"-"`
}

// caseResult pairs the two variants with their speedup ratios.
type caseResult struct {
	Case           string        `json:"case"`
	InitialIndexes int           `json:"initial_indexes"`
	Queries        int           `json:"queries"`
	Unprepared     variantResult `json:"unprepared"`
	Prepared       variantResult `json:"prepared"`
	NsRatio        float64       `json:"ns_ratio"`
	AllocsRatio    float64       `json:"allocs_ratio"`
}

// unionResult is the union-vs-single-index execution microbenchmark:
// the same OR query run through the IndexUnion plan and through the
// best plan available without union paths (a full scan — a single
// index cannot serve a disjunction).
type unionResult struct {
	Rows          int     `json:"rows"`
	Query         string  `json:"query"`
	UnionNsPerOp  int64   `json:"union_ns_per_op"`
	UnionPlanCost float64 `json:"union_plan_cost"`
	ScanNsPerOp   int64   `json:"scan_ns_per_op"`
	ScanPlanCost  float64 `json:"scan_plan_cost"`
	ResultRows    int     `json:"result_rows"`
	NsRatio       float64 `json:"ns_ratio"`
}

func main() {
	scale := flag.Float64("scale", 0.5, "database scale factor")
	queries := flag.Int("queries", 30, "queries per generated workload")
	seed := flag.Int64("seed", 1, "random seed for data and workloads")
	out := flag.String("o", "", "output file (default stdout)")
	workloadMode := flag.Bool("workload", false, "run the large-workload compression benchmark instead")
	statements := flag.Int("statements", 10000, "total statement count (weighted) for -workload and -distrib")
	initialN := flag.Int("initial", 30, "initial configuration size for -workload and -distrib")
	distribMode := flag.Bool("distrib", false, "run the distributed costing benchmark instead")
	distribWorkers := flag.Int("distrib-workers", 4, "what-if worker count for -distrib")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "simulated per-optimizer-call round trip for -distrib")
	overloadMode := flag.Bool("overload", false, "run the multi-tenant noisy-neighbor benchmark instead")
	requests := flag.Int("requests", 200, "quiet-tenant request count per phase for -overload")
	flag.Parse()

	if *workloadMode {
		rep, err := runWorkloadBench(*scale, *seed, *statements, *initialN)
		if err != nil {
			fatal(err)
		}
		writeReport(rep, *out)
		return
	}
	if *distribMode {
		rep, err := runDistribBench(*scale, *seed, *statements, *initialN, *distribWorkers, *rtt)
		if err != nil {
			fatal(err)
		}
		writeReport(rep, *out)
		return
	}
	if *overloadMode {
		rep, err := runOverloadBench(*seed, *requests)
		if err != nil {
			fatal(err)
		}
		writeReport(rep, *out)
		return
	}

	cases := []benchCase{
		{name: "greedy-synthetic2", lab: experiments.NewSynthetic2Lab, n: 20},
		{name: "greedy-tpcd", lab: experiments.NewTPCDLab, n: 10},
	}

	report := struct {
		Benchmark  string       `json:"benchmark"`
		Env        envInfo      `json:"env"`
		Scale      float64      `json:"scale"`
		Seed       int64        `json:"seed"`
		Cases      []caseResult `json:"cases"`
		IndexUnion unionResult  `json:"index_union"`
	}{Benchmark: "prepared-workload greedy candidate costing", Env: captureEnv(0), Scale: *scale, Seed: *seed}

	for _, bc := range cases {
		cr, err := runCase(bc, experiments.LabOptions{Scale: *scale, WorkloadQueries: *queries, Seed: *seed})
		if err != nil {
			fatal(fmt.Errorf("%s: %w", bc.name, err))
		}
		report.Cases = append(report.Cases, cr)
	}
	ur, err := runUnionCase(*seed)
	if err != nil {
		fatal(fmt.Errorf("index-union: %w", err))
	}
	report.IndexUnion = ur

	writeReport(report, *out)
}

// writeReport marshals a report to the output file (or stdout).
func writeReport(report any, out string) {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// workloadVariant is one timed end-to-end merge over the large
// workload: base costing plus the full greedy search (and, for the
// compressed variant, template clustering and cost-table construction —
// everything a cold run pays).
type workloadVariant struct {
	Seconds        float64 `json:"seconds"`
	OptimizerCalls int64   `json:"optimizer_calls"`
	CostEvals      int64   `json:"cost_evaluations"`
	FinalIndexes   int     `json:"final_indexes"`
	signature      string
	finalDefs      []catalog.IndexDef
}

// workloadReport is the -workload benchmark result
// (BENCH_workload.json is a checked-in run).
type workloadReport struct {
	Benchmark           string          `json:"benchmark"`
	Env                 envInfo         `json:"env"`
	Scale               float64         `json:"scale"`
	Seed                int64           `json:"seed"`
	Statements          int             `json:"statements"` // weighted (log size)
	Entries             int             `json:"entries"`    // distinct after exact-text folding
	Templates           int             `json:"templates"`
	DedupRatio          float64         `json:"dedup_ratio"`
	InitialIndexes      int             `json:"initial_indexes"`
	Uncompressed        workloadVariant `json:"uncompressed"`
	Compressed          workloadVariant `json:"compressed"`
	Speedup             float64         `json:"speedup"`
	OptimizerCallRatio  float64         `json:"optimizer_call_ratio"`
	CostTableHits       int64           `json:"cost_table_hits"`
	CostTableMisses     int64           `json:"cost_table_misses"`
	PrunedChecks        int64           `json:"pruned_checks"`
	StorageReductionPct float64         `json:"storage_reduction_pct"`
}

// runWorkloadBench merges a zipf-duplicated workload of ~statements
// total statements once per costing variant and verifies they agree.
func runWorkloadBench(scale float64, seed int64, statements, initialN int) (workloadReport, error) {
	const baseQueries = 25
	lab, err := experiments.NewSynthetic2Lab(experiments.LabOptions{
		Scale: scale, WorkloadQueries: baseQueries, Seed: seed,
	})
	if err != nil {
		return workloadReport{}, err
	}
	dup := statements - baseQueries
	if dup < 0 {
		dup = 0
	}
	w, err := workload.Generate(lab.DB, workload.Options{
		Class: workload.Complex, Disjunctions: true,
		Queries: baseQueries, Duplication: dup, Seed: seed + 11,
	})
	if err != nil {
		return workloadReport{}, err
	}
	defs, err := lab.InitialConfiguration(w, initialN)
	if err != nil {
		return workloadReport{}, err
	}
	initial := core.NewConfiguration(defs)
	pw, err := lab.Opt.PrepareWorkload(w)
	if err != nil {
		return workloadReport{}, err
	}
	seek, err := core.ComputeSeekCostsPrepared(lab.Opt, pw, initial)
	if err != nil {
		return workloadReport{}, err
	}
	const slack = 0.10

	// Uncompressed: the per-query prepared checker — every constraint
	// check re-costs all distinct statements.
	startU := time.Now()
	baseU, err := lab.Opt.WorkloadCostPrepared(pw, optimizer.Configuration(defs))
	if err != nil {
		return workloadReport{}, err
	}
	plain := core.NewOptimizerChecker(lab.Opt, w, baseU, slack)
	plain.Prepared = pw
	resU, err := core.GreedyWithOptions(initial, &core.MergePairCost{Seek: seek}, plain, lab.DB, core.GreedyOptions{})
	if err != nil {
		return workloadReport{}, err
	}
	uncomp := workloadVariant{
		Seconds:        time.Since(startU).Seconds(),
		OptimizerCalls: resU.OptimizerCalls,
		CostEvals:      resU.CostEvaluations,
		FinalIndexes:   resU.Final.Len(),
		signature:      resU.Final.Signature(),
		finalDefs:      resU.Final.Defs(),
	}

	// Compressed: cluster into templates, build the (template, atom)
	// cost table, search with delta evaluation and lower-bound pruning.
	// Clustering and table construction are inside the timed region — a
	// cold run pays them too.
	startC := time.Now()
	c := wscale.Compress(w)
	p, err := wscale.Prepare(c, pw, lab.Opt, 0)
	if err != nil {
		return workloadReport{}, err
	}
	baseC, err := p.WorkloadCost(initial)
	if err != nil {
		return workloadReport{}, err
	}
	chk := wscale.NewChecker(p, baseC, slack)
	resC, err := core.GreedyWithOptions(initial, &core.MergePairCost{Seek: seek}, chk, lab.DB, core.GreedyOptions{})
	if err != nil {
		return workloadReport{}, err
	}
	comp := workloadVariant{
		Seconds:        time.Since(startC).Seconds(),
		OptimizerCalls: resC.OptimizerCalls,
		CostEvals:      resC.CostEvaluations,
		FinalIndexes:   resC.Final.Len(),
		signature:      resC.Final.Signature(),
		finalDefs:      resC.Final.Defs(),
	}

	// Parity: identical final configuration, or (when a last-ulp total
	// flips a borderline acceptance) provably equal workload cost.
	if uncomp.signature != comp.signature {
		cu, err := lab.Opt.WorkloadCostPrepared(pw, optimizer.Configuration(uncomp.finalDefs))
		if err != nil {
			return workloadReport{}, err
		}
		cc, err := lab.Opt.WorkloadCostPrepared(pw, optimizer.Configuration(comp.finalDefs))
		if err != nil {
			return workloadReport{}, err
		}
		if math.Abs(cu-cc) > 1e-9*math.Max(1, math.Abs(cu)) {
			return workloadReport{}, fmt.Errorf("compressed final configuration diverged: %s (cost %v) vs %s (cost %v)",
				uncomp.signature, cu, comp.signature, cc)
		}
	}

	hits, misses, _ := p.TableStats()
	rep := workloadReport{
		Benchmark:           "template-compressed merge over a zipf-duplicated workload",
		Env:                 captureEnv(0),
		Scale:               scale,
		Seed:                seed,
		Statements:          int(c.TotalFreq()),
		Entries:             c.Statements(),
		Templates:           len(c.Templates),
		DedupRatio:          round2(c.DedupRatio()),
		InitialIndexes:      len(defs),
		Uncompressed:        uncomp,
		Compressed:          comp,
		CostTableHits:       hits,
		CostTableMisses:     misses,
		PrunedChecks:        chk.PrunedChecks(),
		StorageReductionPct: round2(100 * resC.StorageReduction()),
	}
	if comp.Seconds > 0 {
		rep.Speedup = round2(uncomp.Seconds / comp.Seconds)
	}
	if comp.OptimizerCalls > 0 {
		rep.OptimizerCallRatio = round2(float64(uncomp.OptimizerCalls) / float64(comp.OptimizerCalls))
	}
	return rep, nil
}

// distribVariant is one timed end-to-end merge of the distributed
// benchmark: table construction, baseline costing and the full greedy
// search, all under the injected per-optimizer-call round trip.
type distribVariant struct {
	Seconds         float64 `json:"seconds"`
	OptimizerCalls  int64   `json:"optimizer_calls"`
	CostEvals       int64   `json:"cost_evaluations"`
	FinalIndexes    int     `json:"final_indexes"`
	RemoteBatches   int64   `json:"remote_batches"`
	RemoteItems     int64   `json:"remote_items"`
	RemoteFallbacks int64   `json:"remote_fallbacks"`
	signature       string
	finalBytes      int64
}

// distribReport is the -distrib benchmark result (BENCH_distrib.json
// is a checked-in run).
type distribReport struct {
	Benchmark          string         `json:"benchmark"`
	Env                envInfo        `json:"env"`
	Scale              float64        `json:"scale"`
	Seed               int64          `json:"seed"`
	Statements         int            `json:"statements"`
	Entries            int            `json:"entries"`
	Templates          int            `json:"templates"`
	InitialIndexes     int            `json:"initial_indexes"`
	Workers            int            `json:"workers"`
	SimulatedRTTMicros float64        `json:"simulated_rtt_micros"`
	Note               string         `json:"note"`
	SingleProcess      distribVariant `json:"single_process"`
	Distributed        distribVariant `json:"distributed"`
	Speedup            float64        `json:"speedup"`
	IdenticalFinal     bool           `json:"identical_final_configuration"`
}

// runDistribBench merges the 10k-statement workload under the
// per-query prepared checker once single-process and once over a pool
// of in-process what-if workers (forks of one frozen snapshot, served
// over loopback HTTP).
// A deterministic latency fault at the optimizer costing point
// simulates the round trip a real remote optimizer call pays; the
// distributed run overlaps those stalls across worker streams. The
// fault is armed only around the timed merges, and both runs must
// reach the identical final configuration.
func runDistribBench(scale float64, seed int64, statements, initialN, workers int, rtt time.Duration) (distribReport, error) {
	const baseQueries = 25
	lab, err := experiments.NewSynthetic2Lab(experiments.LabOptions{
		Scale: scale, WorkloadQueries: baseQueries, Seed: seed,
	})
	if err != nil {
		return distribReport{}, err
	}
	dup := statements - baseQueries
	if dup < 0 {
		dup = 0
	}
	w, err := workload.Generate(lab.DB, workload.Options{
		Class: workload.Complex, Disjunctions: true,
		Queries: baseQueries, Duplication: dup, Seed: seed + 11,
	})
	if err != nil {
		return distribReport{}, err
	}
	defs, err := lab.InitialConfiguration(w, initialN)
	if err != nil {
		return distribReport{}, err
	}
	initial := core.NewConfiguration(defs)
	pw, err := lab.Opt.PrepareWorkload(w)
	if err != nil {
		return distribReport{}, err
	}
	seek, err := core.ComputeSeekCostsPrepared(lab.Opt, pw, initial)
	if err != nil {
		return distribReport{}, err
	}
	c := wscale.Compress(w)
	const slack = 0.10

	// The baseline workload cost is computed once, untimed and without
	// the injected round trip: both variants start from the identical
	// float and the timed region is exactly the search.
	base, err := lab.Opt.WorkloadCostPrepared(pw, optimizer.Configuration(defs))
	if err != nil {
		return distribReport{}, err
	}

	// Worker fleet: forks of one frozen snapshot behind loopback HTTP,
	// the same worker cmd/idxmergew serves.
	snap := lab.DB.Snapshot()
	urls := make([]string, workers)
	servers := make([]*httptest.Server, workers)
	for i := range urls {
		servers[i] = httptest.NewServer(distrib.NewWorker(snap.Fork()).Handler())
		urls[i] = servers[i].URL
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	pool := distrib.NewPool(urls, distrib.Options{})
	binding, err := pool.Bind(context.Background(), "bench", lab.DB.Fingerprint(), w, len(c.Templates))
	if err != nil {
		return distribReport{}, err
	}

	// run executes one cold greedy search — fresh per-query what-if
	// cache — with the RTT fault armed for exactly that window. The
	// remote unit is a single query costing, so every cache-miss wave
	// shards cleanly across workers.
	run := func(batch core.BatchCostServer) (distribVariant, error) {
		faults.Install(faults.Rule{
			ID: "bench-rtt", Point: faults.OptimizerCost,
			Mode: faults.ModeLatency, Latency: rtt,
		})
		defer faults.Reset()
		start := time.Now()
		chk := core.NewOptimizerChecker(lab.Opt, w, base, slack)
		chk.Prepared = pw
		chk.Batch = batch
		res, err := core.GreedyWithOptions(initial, &core.MergePairCost{Seek: seek}, chk, lab.DB, core.GreedyOptions{})
		if err != nil {
			return distribVariant{}, err
		}
		sec := time.Since(start).Seconds()
		rb, ri, rf := chk.RemoteStats()
		return distribVariant{
			Seconds:         sec,
			OptimizerCalls:  res.OptimizerCalls,
			CostEvals:       res.CostEvaluations,
			FinalIndexes:    res.Final.Len(),
			RemoteBatches:   rb,
			RemoteItems:     ri,
			RemoteFallbacks: rf,
			signature:       res.Final.Signature(),
			finalBytes:      res.FinalBytes,
		}, nil
	}

	single, err := run(nil)
	if err != nil {
		return distribReport{}, fmt.Errorf("single-process run: %w", err)
	}
	dist, err := run(binding)
	if err != nil {
		return distribReport{}, fmt.Errorf("distributed run: %w", err)
	}

	// The acceptance contract: distribution must be invisible in
	// results. Identical signature, storage, and counter accounting.
	if single.signature != dist.signature || single.finalBytes != dist.finalBytes {
		return distribReport{}, fmt.Errorf("distributed final configuration diverged: %s (%d bytes) vs %s (%d bytes)",
			single.signature, single.finalBytes, dist.signature, dist.finalBytes)
	}
	if single.OptimizerCalls != dist.OptimizerCalls || single.CostEvals != dist.CostEvals {
		return distribReport{}, fmt.Errorf("distributed counters diverged: %d/%d optimizer calls, %d/%d cost evaluations",
			single.OptimizerCalls, dist.OptimizerCalls, single.CostEvals, dist.CostEvals)
	}
	if dist.RemoteFallbacks > 0 {
		return distribReport{}, fmt.Errorf("distributed run fell back locally %d times; benchmark would be mismeasured", dist.RemoteFallbacks)
	}

	rep := distribReport{
		Benchmark:          "distributed what-if costing over stateless snapshot workers",
		Env:                captureEnv(workers),
		Scale:              scale,
		Seed:               seed,
		Statements:         int(c.TotalFreq()),
		Entries:            c.Statements(),
		Templates:          len(c.Templates),
		InitialIndexes:     len(defs),
		Workers:            workers,
		SimulatedRTTMicros: float64(rtt.Microseconds()),
		Note: "workers are in-process HTTP servers over copy-on-write snapshot forks; the per-optimizer-call " +
			"round trip is injected deterministically (internal/faults ModeLatency) and paid wherever the call runs, " +
			"so on this single-CPU host the speedup measures overlapping worker streams, not CPU parallelism",
		SingleProcess:  single,
		Distributed:    dist,
		IdenticalFinal: true,
	}
	if dist.Seconds > 0 {
		rep.Speedup = round2(single.Seconds / dist.Seconds)
	}
	return rep, nil
}

// runCase benchmarks both costing variants over one lab (each
// auto-scaled by testing.Benchmark to about a second) and checks they
// searched identically.
func runCase(bc benchCase, opt experiments.LabOptions) (caseResult, error) {
	lab, err := bc.lab(opt)
	if err != nil {
		return caseResult{}, err
	}
	defs, err := lab.InitialConfiguration(lab.Complex, bc.n)
	if err != nil {
		return caseResult{}, err
	}
	initial := core.NewConfiguration(defs)
	base, err := lab.WorkloadCost(lab.Complex, defs)
	if err != nil {
		return caseResult{}, err
	}
	pw, err := lab.Opt.PrepareWorkload(lab.Complex)
	if err != nil {
		return caseResult{}, err
	}
	seek, err := core.ComputeSeekCostsPrepared(lab.Opt, pw, initial)
	if err != nil {
		return caseResult{}, err
	}
	mp := &core.MergePairCost{Seek: seek}

	run := func(prepared bool) (variantResult, error) {
		var res *core.SearchResult
		var runErr error
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh checker per iteration: cold what-if cache, serial
				// costing, exactly as in bench_test.go.
				check := core.NewOptimizerChecker(lab.Opt, lab.Complex, base, 0.10)
				if prepared {
					check.Prepared = pw
				}
				res, runErr = core.GreedyWithOptions(initial, mp, check, lab.DB, core.GreedyOptions{})
				if runErr != nil {
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return variantResult{}, runErr
		}
		return variantResult{
			NsPerOp:        br.NsPerOp(),
			AllocsPerOp:    br.AllocsPerOp(),
			BytesPerOp:     br.AllocedBytesPerOp(),
			OptimizerCalls: res.OptimizerCalls,
			FinalBytes:     res.FinalBytes,
			Iterations:     br.N,
			Signature:      res.Final.Signature(),
			CostEvals:      res.CostEvaluations,
		}, nil
	}

	unprep, err := run(false)
	if err != nil {
		return caseResult{}, err
	}
	prep, err := run(true)
	if err != nil {
		return caseResult{}, err
	}
	if unprep.Signature != prep.Signature {
		return caseResult{}, fmt.Errorf("prepared final configuration differs from unprepared")
	}
	if unprep.FinalBytes != prep.FinalBytes {
		return caseResult{}, fmt.Errorf("prepared final storage %d differs from unprepared %d", prep.FinalBytes, unprep.FinalBytes)
	}
	if unprep.CostEvals != prep.CostEvals {
		return caseResult{}, fmt.Errorf("prepared cost-evaluation count %d differs from unprepared %d", prep.CostEvals, unprep.CostEvals)
	}
	cr := caseResult{
		Case:           bc.name,
		InitialIndexes: bc.n,
		Queries:        opt.WorkloadQueries,
		Unprepared:     unprep,
		Prepared:       prep,
	}
	if prep.NsPerOp > 0 {
		cr.NsRatio = round2(float64(unprep.NsPerOp) / float64(prep.NsPerOp))
	}
	if prep.AllocsPerOp > 0 {
		cr.AllocsRatio = round2(float64(unprep.AllocsPerOp) / float64(prep.AllocsPerOp))
	}
	return cr, nil
}

// runUnionCase measures an OR query end to end under the IndexUnion
// plan and under the scan fallback the same optimizer picks with union
// paths disabled. Both runs must return the same number of rows; the
// ratio is the executed win of merging RID sets over reading the heap.
func runUnionCase(seed int64) (unionResult, error) {
	const rows = 30000
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
		{Name: "more", Type: value.String, Width: 120},
	})); err != nil {
		return unionResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewString("p"),
			value.NewString("q"),
		}); err != nil {
			return unionResult{}, err
		}
	}
	db.AnalyzeAll()
	ia, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"a"})
	if err != nil {
		return unionResult{}, err
	}
	ib, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"b"})
	if err != nil {
		return unionResult{}, err
	}
	defs := []catalog.IndexDef{ia, ib}
	if err := db.Materialize(defs); err != nil {
		return unionResult{}, err
	}
	cfg := optimizer.Configuration(defs)

	const query = "SELECT payload FROM wide WHERE (a = 7 OR b = 13)"
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return unionResult{}, err
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		return unionResult{}, err
	}

	o := optimizer.New(db)
	unionPlan, err := o.Optimize(stmt, cfg)
	if err != nil {
		return unionResult{}, err
	}
	o.DisableIndexUnion = true
	scanPlan, err := o.Optimize(stmt, cfg)
	if err != nil {
		return unionResult{}, err
	}

	measure := func(plan *optimizer.Plan) (int64, int, error) {
		var got *exec.Result
		var runErr error
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, runErr = exec.Run(db, plan)
				if runErr != nil {
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return 0, 0, runErr
		}
		return br.NsPerOp(), len(got.Rows), nil
	}
	unionNs, unionRows, err := measure(unionPlan)
	if err != nil {
		return unionResult{}, err
	}
	scanNs, scanRows, err := measure(scanPlan)
	if err != nil {
		return unionResult{}, err
	}
	if unionRows != scanRows {
		return unionResult{}, fmt.Errorf("union plan returned %d rows, scan plan %d", unionRows, scanRows)
	}
	ur := unionResult{
		Rows:          rows,
		Query:         query,
		UnionNsPerOp:  unionNs,
		UnionPlanCost: unionPlan.Cost,
		ScanNsPerOp:   scanNs,
		ScanPlanCost:  scanPlan.Cost,
		ResultRows:    unionRows,
	}
	if unionNs > 0 {
		ur.NsRatio = round2(float64(scanNs) / float64(unionNs))
	}
	return ur, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
