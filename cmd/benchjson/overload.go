package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indexmerge/internal/server"
	"indexmerge/internal/server/quota"
)

// The -overload benchmark (BENCH_overload.json is a checked-in run):
// one in-process idxmerged with per-tenant quotas and a global memory
// budget serves a well-behaved "quiet" tenant while a "noisy" tenant
// storms it with ingest batches, re-tune submissions and cross-tenant
// costing attempts. The report is the isolation story in numbers: the
// quiet tenant's synchronous-costing latency distribution with and
// without the neighbor, how much of the noisy traffic admission
// control shed, and the peak accounted memory against the budget.

// overloadPhase is the quiet tenant's latency distribution over one
// measurement phase (successful requests only; shed requests are
// counted separately).
type overloadPhase struct {
	Requests   int     `json:"requests"`
	Shed       int     `json:"shed"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	MeanMicros float64 `json:"mean_micros"`
}

// overloadReport is the -overload benchmark result.
type overloadReport struct {
	Benchmark string  `json:"benchmark"`
	Env       envInfo `json:"env"`
	Seed      int64   `json:"seed"`

	// The admission configuration under test.
	QuotaSessions     int     `json:"quota_sessions"`
	QuotaJobs         int     `json:"quota_jobs"`
	QuotaIngestPerSec float64 `json:"quota_ingest_per_sec"`
	QuotaMemoryBytes  int64   `json:"quota_memory_bytes"`
	MemoryBudgetBytes int64   `json:"memory_budget_bytes"`

	QuietAlone     overloadPhase `json:"quiet_alone"`
	QuietWithNoisy overloadPhase `json:"quiet_with_noisy"`
	// P99Ratio is the quiet tenant's P99 under the storm over its P99
	// alone — the isolation headline (1.0 = perfect isolation).
	P99Ratio float64 `json:"p99_ratio"`

	// The noisy tenant's fate. ShedRate is shed/attempts across its
	// ingest batches (token-bucket rate quota plus brownout shedding).
	NoisyIngestAttempts int64   `json:"noisy_ingest_attempts"`
	NoisyIngestShed     int64   `json:"noisy_ingest_shed"`
	ShedRate            float64 `json:"shed_rate"`
	NoisyRetuneRejected int64   `json:"noisy_retune_rejected"`

	// Cross-tenant requests must all bounce with 403 tenant_mismatch.
	CrossTenantAttempts  int64 `json:"cross_tenant_attempts"`
	CrossTenantForbidden int64 `json:"cross_tenant_forbidden"`

	// Peak accounted memory observed while the storm ran, against the
	// configured budget; the ladder must hold the line.
	PeakAccountedBytes int64 `json:"peak_accounted_bytes"`
	PeakWithinBudget   bool  `json:"peak_within_budget"`
	MaxBrownoutStage   int   `json:"max_brownout_stage"`

	// Total sheds by reason|tenant, scraped from /metrics at the end.
	ShedTotals map[string]int64 `json:"shed_totals"`

	Note string `json:"note"`
}

// obClient is a minimal JSON client with tenant identity.
type obClient struct {
	base string
	hc   *http.Client
}

func (c *obClient) post(tenant, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (c *obClient) getText(path string) (string, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// metricValues parses the hand-rolled Prometheus exposition into
// name{labels} -> value.
func metricValues(text string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

func pctMicros(d []time.Duration, p float64) float64 {
	if len(d) == 0 {
		return 0
	}
	i := int(p * float64(len(d)-1))
	return round2(float64(d[i].Nanoseconds()) / 1e3)
}

func phaseStats(lat []time.Duration, shed int) overloadPhase {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	ph := overloadPhase{
		Requests:  len(lat) + shed,
		Shed:      shed,
		P50Micros: pctMicros(lat, 0.50),
		P99Micros: pctMicros(lat, 0.99),
	}
	if len(lat) > 0 {
		ph.MeanMicros = round2(float64(sum.Nanoseconds()) / float64(len(lat)) / 1e3)
	}
	return ph
}

// runOverloadBench measures tenant isolation under a noisy neighbor.
func runOverloadBench(seed int64, requests int) (overloadReport, error) {
	const (
		ingestRate = 200.0
		// The per-tenant memory quota caps the noisy tenant's ingest
		// footprint far below the global brownout thresholds; the global
		// budget leaves headroom above it (admitted retune jobs grow
		// caches past the admission-time quota until brownout eviction
		// reins them in), so the ladder stays a backstop here and the
		// quiet tenant's phase is never brownout-shed.
		memoryQuota  = int64(1 << 20)
		memoryBudget = int64(16 << 20)
		maxSessions  = 4
		maxJobs      = 2
	)
	srv, err := server.New(server.Config{
		Workers:         2,
		QueueCap:        8,
		CacheMaxEntries: 1 << 20,
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
		Quota: quota.Limits{
			MaxSessions:  maxSessions,
			MaxJobs:      maxJobs,
			IngestPerSec: ingestRate,
			IngestBurst:  ingestRate,
			MemoryBytes:  memoryQuota,
		},
		MemoryBudgetBytes: memoryBudget,
	})
	if err != nil {
		return overloadReport{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	c := &obClient{base: ts.URL, hc: ts.Client()}

	// The quiet tenant: a plain session with a registered workload it
	// costs synchronously — the latency-sensitive path under test.
	if code, err := c.post("quiet", "/v1/sessions", map[string]any{
		"name": "quiet", "tenant": "quiet", "db": "synthetic1", "scale": 0.25, "seed": seed,
	}, nil); err != nil || code != http.StatusCreated {
		return overloadReport{}, fmt.Errorf("create quiet session: code %d err %v", code, err)
	}
	if code, err := c.post("quiet", "/v1/sessions/quiet/workloads", map[string]any{
		"name": "w", "generate": map[string]any{"class": "complex", "queries": 12, "seed": 12},
	}, nil); err != nil || code != http.StatusCreated {
		return overloadReport{}, fmt.Errorf("register quiet workload: code %d err %v", code, err)
	}
	costBody := server.CostRequest{Workload: "w"}
	costOnce := func() (time.Duration, int, error) {
		start := time.Now()
		code, err := c.post("quiet", "/v1/sessions/quiet/cost", costBody, nil)
		return time.Since(start), code, err
	}
	measure := func(n int) (lat []time.Duration, shed int, err error) {
		for i := 0; i < n; i++ {
			d, code, err := costOnce()
			if err != nil {
				return nil, 0, err
			}
			switch code {
			case http.StatusOK:
				lat = append(lat, d)
			case http.StatusTooManyRequests:
				shed++
			default:
				return nil, 0, fmt.Errorf("quiet cost: unexpected status %d", code)
			}
		}
		return lat, shed, nil
	}

	for i := 0; i < 5; i++ { // warm caches before either phase is timed
		if _, _, err := costOnce(); err != nil {
			return overloadReport{}, err
		}
	}
	aloneLat, aloneShed, err := measure(requests)
	if err != nil {
		return overloadReport{}, err
	}

	// The noisy tenant: a continuous session stormed from three angles.
	if code, err := c.post("noisy", "/v1/sessions", map[string]any{
		"name": "noisy", "tenant": "noisy", "db": "synthetic1", "scale": 0.25, "seed": seed,
		"continuous": map[string]any{"seed": 9},
	}, nil); err != nil || code != http.StatusCreated {
		return overloadReport{}, fmt.Errorf("create noisy session: code %d err %v", code, err)
	}

	var (
		ingestAttempts, ingestShed    atomic.Int64
		retuneRejected                atomic.Int64
		crossAttempts, crossForbidden atomic.Int64
		peakBytes                     atomic.Int64
		maxStage                      atomic.Int64
		stop                          = make(chan struct{})
		wg                            sync.WaitGroup
	)
	storm := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f(i)
			}
		}()
	}
	// Ingest storm: generated batches far beyond the token-bucket rate.
	storm(func(i int) {
		var resp server.IngestResponse
		ingestAttempts.Add(1)
		code, err := c.post("noisy", "/v1/sessions/noisy/ingest", map[string]any{
			"generate": map[string]any{"class": "complex", "queries": 20, "seed": seed + int64(i)},
		}, &resp)
		if err != nil || code == http.StatusTooManyRequests || resp.Shed {
			ingestShed.Add(1)
		}
	})
	// Re-tune storm: job-quota and queue pressure.
	storm(func(int) {
		code, err := c.post("noisy", "/v1/sessions/noisy/retune", nil, nil)
		if err == nil && code != http.StatusAccepted {
			retuneRejected.Add(1)
		}
	})
	// Cross-tenant attack: the noisy tenant costing against the quiet
	// tenant's session. Every attempt must bounce.
	storm(func(int) {
		crossAttempts.Add(1)
		code, err := c.post("noisy", "/v1/sessions/quiet/cost", costBody, nil)
		if err == nil && code == http.StatusForbidden {
			crossForbidden.Add(1)
		}
	})
	// Pressure poller: peak accounted bytes and the highest brownout
	// stage the ladder reached.
	storm(func(int) {
		text, err := c.getText("/metrics")
		if err != nil {
			return
		}
		mv := metricValues(text)
		if b := int64(mv["idxmerged_accounted_bytes"]); b > peakBytes.Load() {
			peakBytes.Store(b)
		}
		if st := int64(mv["idxmerged_brownout_stage"]); st > maxStage.Load() {
			maxStage.Store(st)
		}
		time.Sleep(2 * time.Millisecond)
	})

	time.Sleep(100 * time.Millisecond) // let the storm ramp past the ingest burst
	stormLat, stormShed, err := measure(requests)
	close(stop)
	wg.Wait()
	if err != nil {
		return overloadReport{}, err
	}

	finalText, err := c.getText("/metrics")
	if err != nil {
		return overloadReport{}, err
	}
	shedTotals := make(map[string]int64)
	for name, v := range metricValues(finalText) {
		if rest, ok := strings.CutPrefix(name, `idxmerged_shed_total{`); ok {
			shedTotals[strings.TrimSuffix(rest, "}")] = int64(v)
		}
	}

	rep := overloadReport{
		Benchmark:            "quiet-tenant latency under a noisy neighbor with quotas and brownout",
		Env:                  captureEnv(0),
		Seed:                 seed,
		QuotaSessions:        maxSessions,
		QuotaJobs:            maxJobs,
		QuotaIngestPerSec:    ingestRate,
		QuotaMemoryBytes:     memoryQuota,
		MemoryBudgetBytes:    memoryBudget,
		QuietAlone:           phaseStats(aloneLat, aloneShed),
		QuietWithNoisy:       phaseStats(stormLat, stormShed),
		NoisyIngestAttempts:  ingestAttempts.Load(),
		NoisyIngestShed:      ingestShed.Load(),
		NoisyRetuneRejected:  retuneRejected.Load(),
		CrossTenantAttempts:  crossAttempts.Load(),
		CrossTenantForbidden: crossForbidden.Load(),
		PeakAccountedBytes:   peakBytes.Load(),
		PeakWithinBudget:     peakBytes.Load() <= memoryBudget,
		MaxBrownoutStage:     int(maxStage.Load()),
		ShedTotals:           shedTotals,
		Note: "one in-process idxmerged; the noisy tenant storms ingest, re-tunes and cross-tenant costing " +
			"while the quiet tenant's synchronous costing is timed; admission control (per-tenant token-bucket " +
			"ingest quota, job and memory quotas, tenant identity) and the brownout ladder absorb the abuse; " +
			"on a single-CPU host the residual latency delta is CPU contention with the noisy tenant's " +
			"admitted, quota-bounded work (its running re-tune job), not queueing collapse",
	}
	if rep.QuietAlone.P99Micros > 0 {
		rep.P99Ratio = round2(rep.QuietWithNoisy.P99Micros / rep.QuietAlone.P99Micros)
	}
	if rep.NoisyIngestAttempts > 0 {
		rep.ShedRate = round2(float64(rep.NoisyIngestShed) / float64(rep.NoisyIngestAttempts))
	}
	if rep.CrossTenantForbidden != rep.CrossTenantAttempts {
		return overloadReport{}, fmt.Errorf("tenant isolation breached: %d of %d cross-tenant requests were not rejected",
			rep.CrossTenantAttempts-rep.CrossTenantForbidden, rep.CrossTenantAttempts)
	}
	return rep, nil
}
