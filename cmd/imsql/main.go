// Command imsql is an interactive SQL shell over the indexmerge
// engine: run queries and DML, inspect plans (EXPLAIN), create and
// drop indexes, tune queries with the advisor, and run index merging —
// all against one of the built-in databases or an empty one.
//
// Usage:
//
//	imsql [-db tpcd|synthetic1|synthetic2|empty] [-scale 1.0] [-seed 1] [-q]
//
// Statements end at end of line. Meta commands:
//
//	\d [table]            list tables / describe one
//	\indexes              list materialized indexes
//	\create t(a,b,...)    create an index
//	\drop t(a,b,...)      drop an index
//	\analyze              rebuild statistics
//	\explain SELECT ...   show the plan without running it
//	\cost SELECT ...      optimizer-estimated cost only
//	\tune SELECT ...      advisor recommendations for one query
//	\merge [pct]          merge the materialized indexes (default 10%)
//	\help                 this text
//	\q                    quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"indexmerge"
	"indexmerge/internal/advisor"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
)

func main() {
	dbName := flag.String("db", "tpcd", "database: tpcd | synthetic1 | synthetic2 | empty")
	scale := flag.Float64("scale", 1.0, "database scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	quiet := flag.Bool("q", false, "no prompt (script mode)")
	flag.Parse()

	db, err := buildDatabase(*dbName, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imsql:", err)
		os.Exit(1)
	}
	sh := &shell{db: db, opt: optimizer.New(db), out: os.Stdout, quiet: *quiet}
	sh.adv = advisor.New(db, sh.opt)
	if !*quiet {
		fmt.Printf("imsql — %s at scale %.2f (%.1f MB data). \\help for commands.\n",
			*dbName, *scale, float64(db.DataBytes())/(1<<20))
	}
	sh.repl(bufio.NewScanner(os.Stdin))
}

func buildDatabase(name string, scale float64, seed int64) (*engine.Database, error) {
	if strings.HasPrefix(name, "file:") {
		return engine.LoadSnapshotFile(strings.TrimPrefix(name, "file:"))
	}
	switch name {
	case "empty":
		return engine.NewDatabase(), nil
	case "tpcd":
		return datagen.BuildTPCD(datagen.ScaledTPCD(scale), seed)
	case "synthetic1":
		spec := datagen.Synthetic1Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		return datagen.BuildSynthetic(spec)
	case "synthetic2":
		spec := datagen.Synthetic2Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		return datagen.BuildSynthetic(spec)
	}
	return nil, fmt.Errorf("unknown database %q", name)
}

type shell struct {
	historyW sql.Workload
	db       *engine.Database
	opt      *optimizer.Optimizer
	adv      *advisor.Advisor
	out      *os.File
	quiet    bool
}

func (sh *shell) repl(in *bufio.Scanner) {
	in.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for {
		if !sh.quiet {
			fmt.Fprint(sh.out, "imsql> ")
		}
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !sh.meta(line) {
				return
			}
			continue
		}
		sh.statement(line)
	}
}

// meta handles backslash commands; returns false to quit.
func (sh *shell) meta(line string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\help":
		fmt.Fprint(sh.out, helpText)
	case "\\d":
		sh.describe(rest)
	case "\\indexes":
		sh.listIndexes()
	case "\\create":
		sh.createIndex(rest)
	case "\\drop":
		if err := sh.db.DropIndex(rest); err != nil {
			sh.errorf("%v", err)
		} else {
			fmt.Fprintln(sh.out, "dropped", rest)
		}
	case "\\analyze":
		start := time.Now()
		sh.db.AnalyzeAll()
		fmt.Fprintf(sh.out, "analyzed all tables in %v\n", time.Since(start).Round(time.Millisecond))
	case "\\explain":
		sh.explain(rest, false)
	case "\\cost":
		sh.explain(rest, true)
	case "\\tune":
		sh.tune(rest)
	case "\\merge":
		sh.merge(rest)
	default:
		sh.errorf("unknown command %s (\\help for help)", cmd)
	}
	return true
}

const helpText = `  \d [table]            list tables / describe one
  \indexes              list materialized indexes
  \create t(a,b,...)    create an index
  \drop t(a,b,...)      drop an index by its key
  \analyze              rebuild statistics
  \explain SELECT ...   show the plan without running it
  \cost SELECT ...      optimizer-estimated cost only
  \tune SELECT ...      advisor recommendations for one query
  \merge [pct]          merge the materialized indexes (default 10)
  \q                    quit
`

func (sh *shell) errorf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, "error: "+format+"\n", args...)
}

func (sh *shell) describe(table string) {
	if table == "" {
		fmt.Fprintf(sh.out, "%-14s %8s %6s %10s\n", "table", "rows", "cols", "MB")
		for _, t := range sh.db.Schema().Tables() {
			h, err := sh.db.Heap(t.Name)
			if err != nil {
				continue
			}
			fmt.Fprintf(sh.out, "%-14s %8d %6d %10.2f\n", t.Name, h.RowCount(), len(t.Columns), storage.BytesToMB(h.Bytes()))
		}
		return
	}
	t, ok := sh.db.Schema().Table(table)
	if !ok {
		sh.errorf("unknown table %q", table)
		return
	}
	for _, c := range t.Columns {
		extra := ""
		if ts := sh.db.TableStats(table); ts != nil {
			if cs := ts.Column(c.Name); cs != nil {
				extra = fmt.Sprintf("  ndv≈%.0f", cs.Distinct)
			}
		}
		fmt.Fprintf(sh.out, "  %-20s %-8s width=%d%s\n", c.Name, c.Type, c.Width, extra)
	}
}

func (sh *shell) listIndexes() {
	ixs := sh.db.Indexes()
	if len(ixs) == 0 {
		fmt.Fprintln(sh.out, "no indexes")
		return
	}
	for _, ix := range ixs {
		fmt.Fprintf(sh.out, "  %-60s %8.2f MB  height=%d\n", ix.Def().Key(), storage.BytesToMB(ix.Bytes()), ix.Height())
	}
}

// parseIndexSpec parses "table(col1,col2)".
func parseIndexSpec(spec string) (string, []string, error) {
	open := strings.Index(spec, "(")
	if open <= 0 || !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("expected table(col1,col2,...), got %q", spec)
	}
	table := strings.TrimSpace(spec[:open])
	var cols []string
	for _, c := range strings.Split(spec[open+1:len(spec)-1], ",") {
		if c = strings.TrimSpace(c); c != "" {
			cols = append(cols, c)
		}
	}
	return table, cols, nil
}

func (sh *shell) createIndex(spec string) {
	table, cols, err := parseIndexSpec(spec)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	def, err := indexmerge.NewIndexDef(sh.db, "", table, cols)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	start := time.Now()
	ix, err := sh.db.CreateIndex(def)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	fmt.Fprintf(sh.out, "created %s (%.2f MB) in %v\n", def.Key(), storage.BytesToMB(ix.Bytes()), time.Since(start).Round(time.Millisecond))
}

func (sh *shell) currentConfig() optimizer.Configuration {
	var cfg optimizer.Configuration
	for _, ix := range sh.db.Indexes() {
		cfg = append(cfg, ix.Def())
	}
	return cfg
}

func (sh *shell) parseSelect(src string) (*sql.SelectStmt, bool) {
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		sh.errorf("%v", err)
		return nil, false
	}
	if err := stmt.Resolve(sh.db.Schema()); err != nil {
		sh.errorf("%v", err)
		return nil, false
	}
	return stmt, true
}

func (sh *shell) explain(src string, costOnly bool) {
	stmt, ok := sh.parseSelect(src)
	if !ok {
		return
	}
	plan, err := sh.opt.Optimize(stmt, sh.currentConfig())
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	if costOnly {
		fmt.Fprintf(sh.out, "estimated cost: %.2f\n", plan.Cost)
		return
	}
	fmt.Fprint(sh.out, plan.Explain())
}

func (sh *shell) tune(src string) {
	stmt, ok := sh.parseSelect(src)
	if !ok {
		return
	}
	defs, err := sh.adv.TuneQuery(stmt)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	if len(defs) == 0 {
		fmt.Fprintln(sh.out, "no index improves this query")
		return
	}
	before, _ := sh.opt.Cost(stmt, sh.currentConfig())
	after, _ := sh.opt.Cost(stmt, optimizer.Configuration(defs))
	for _, d := range defs {
		fmt.Fprintf(sh.out, "  recommend %s (%.2f MB est.)\n", d.Key(), storage.BytesToMB(sh.db.EstimateIndexBytes(d)))
	}
	fmt.Fprintf(sh.out, "  estimated cost %.2f -> %.2f\n", before, after)
}

func (sh *shell) merge(arg string) {
	pct := 10.0
	if arg != "" {
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p <= 0 {
			sh.errorf("bad percentage %q", arg)
			return
		}
		pct = p
	}
	cfg := sh.currentConfig()
	if len(cfg) < 2 {
		sh.errorf("need at least two materialized indexes to merge (\\create some first)")
		return
	}
	// Workload: the advisor needs queries; the shell keeps a history of
	// every successfully executed SELECT.
	if sh.historyW.Len() == 0 {
		sh.errorf("no query history yet; run some SELECTs so merging has a workload")
		return
	}
	m, err := indexmerge.NewMerger(sh.db, &sh.historyW)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	res, err := m.Merge(indexmerge.MergeOptions{CostConstraint: pct / 100})
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	fmt.Fprint(sh.out, res.Report())
	if err := sh.db.Materialize(res.Final.Defs()); err != nil {
		sh.errorf("materializing merged configuration: %v", err)
		return
	}
	fmt.Fprintln(sh.out, "materialized the merged configuration")
}

func (sh *shell) statement(line string) {
	stmt, err := sql.Parse(line)
	if err != nil {
		sh.errorf("%v", err)
		return
	}
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		if err := s.Resolve(sh.db.Schema()); err != nil {
			sh.errorf("%v", err)
			return
		}
		start := time.Now()
		plan, err := sh.opt.Optimize(s, sh.currentConfig())
		if err != nil {
			sh.errorf("%v", err)
			return
		}
		res, err := exec.Run(sh.db, plan)
		if err != nil {
			sh.errorf("%v", err)
			return
		}
		sh.printResult(res)
		fmt.Fprintf(sh.out, "(%d rows, %v, est. cost %.2f)\n", len(res.Rows), time.Since(start).Round(time.Microsecond), plan.Cost)
		sh.historyW.Add(s, 1)
	case *sql.DeleteStmt:
		if err := s.Resolve(sh.db.Schema()); err != nil {
			sh.errorf("%v", err)
			return
		}
		n, err := exec.Exec(sh.db, s)
		if err != nil {
			sh.errorf("%v", err)
			return
		}
		fmt.Fprintf(sh.out, "deleted %d rows\n", n)
	case *sql.InsertStmt:
		n, err := exec.Exec(sh.db, s)
		if err != nil {
			sh.errorf("%v", err)
			return
		}
		fmt.Fprintf(sh.out, "inserted %d rows\n", n)
	}
}

const maxDisplayRows = 25

func (sh *shell) printResult(res *exec.Result) {
	fmt.Fprintln(sh.out, strings.Join(res.Columns, " | "))
	for i, r := range res.Rows {
		if i == maxDisplayRows {
			fmt.Fprintf(sh.out, "... (%d more rows)\n", len(res.Rows)-maxDisplayRows)
			return
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		fmt.Fprintln(sh.out, strings.Join(parts, " | "))
	}
}
