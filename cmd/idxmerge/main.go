// Command idxmerge runs index merging against one of the built-in
// experimental databases and a workload, mirroring the client utility
// the paper implemented against SQL Server 7.0 (§4.1).
//
// Usage:
//
//	idxmerge -db tpcd [-workload queries.sql] [-n 10] [-constraint 0.10]
//	         [-mergepair cost|syntactic|exhaustive] [-search greedy|exhaustive]
//	         [-costmodel opt|nocost|prefilter|compressed] [-explain] [-json]
//
// Without -workload, a complex workload is generated (RAGS-style).
// The initial configuration comes from per-query tuning unless -n is 0,
// in which case the whole workload is tuned query by query.
//
// With -json, the final result is printed to stdout as the same JSON
// structure the idxmerged service serves for its jobs, and search
// progress snapshots stream to stderr as JSON lines. Ctrl-C (SIGINT)
// or SIGTERM cancels the search cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"indexmerge"
	"indexmerge/internal/advisor"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/faults"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/server"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

func main() {
	dbName := flag.String("db", "tpcd", "database: tpcd | synthetic1 | synthetic2")
	scale := flag.Float64("scale", 1.0, "database scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	workloadPath := flag.String("workload", "", "workload file (one SELECT per line); default: generated complex workload")
	queries := flag.Int("queries", 30, "generated workload size when -workload is not given")
	duplication := flag.Int("duplication", 0, "append this many zipf-skewed constant-varied duplicates to the generated workload (log-like workloads for -costmodel compressed)")
	disjunctions := flag.Bool("disjunctions", false, "add OR/IN predicates to generated queries")
	n := flag.Int("n", 10, "initial configuration size (0 = tune every workload query)")
	constraint := flag.Float64("constraint", 0.10, "cost constraint (fractional workload cost increase bound)")
	mergePair := flag.String("mergepair", "cost", "merge procedure: cost | syntactic | exhaustive")
	search := flag.String("search", "greedy", "search strategy: greedy | exhaustive")
	costModel := flag.String("costmodel", "opt", "cost evaluation: opt | nocost | prefilter | compressed (template cost tables; exact)")
	explain := flag.Bool("explain", false, "print per-query plans under the final configuration")
	dualBudget := flag.Float64("dual", 0, "solve the Cost-Minimal dual instead: storage budget as a fraction of the initial configuration (e.g. 0.5)")
	parallel := flag.Int("parallel", 1, "concurrent candidate costings per search step (0 = GOMAXPROCS); results are identical for any value")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout (the idxmerged job-result schema) and progress JSON lines on stderr")
	resilient := flag.Bool("resilient", false, "retry transient costing faults and degrade to the analytic model on persistent optimizer failure (results carry a degraded flag)")
	workers := flag.String("workers", "", "comma-separated what-if worker base URLs (idxmergew processes serving the same -db/-scale/-seed database); cache-missed costings are batched to the pool; results are byte-identical at any worker count")
	faultRules := flag.String("faults", "", "deterministic fault-injection rules, semicolon-separated (chaos testing; see internal/faults)")
	flag.Parse()

	if *faultRules != "" {
		rules, err := faults.ParseRules(*faultRules)
		if err != nil {
			fatal(err)
		}
		faults.Install(rules...)
		fmt.Fprintf(os.Stderr, "idxmerge: fault injection armed (%d rules)\n", len(rules))
	}

	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	// Ctrl-C / SIGTERM cancels the search cleanly mid-step.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	human := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}

	db, err := datagen.BuildNamed(*dbName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	w, err := loadWorkload(db, *workloadPath, *queries, *seed, *duplication, *disjunctions)
	if err != nil {
		fatal(err)
	}
	human("database %s: %d tables, %.1f MB data; workload: %d queries\n",
		*dbName, len(db.Schema().Tables()), float64(db.DataBytes())/(1<<20), w.Len())

	m, err := indexmerge.NewMerger(db, w)
	if err != nil {
		fatal(err)
	}
	compressed := *costModel == "compressed"
	templates := 0
	if compressed {
		cw, err := m.CompressedWorkload()
		if err != nil {
			fatal(err)
		}
		templates = len(cw.C.Templates)
		human("%s\n", cw.C)
	}

	// Bind the worker pool before searching so incompatible workers
	// (wrong database, wrong parse) fail loudly here rather than
	// silently falling back mid-run. Failures after this point degrade
	// to local costing.
	var binding *indexmerge.WorkerBinding
	if *workers != "" {
		pool := indexmerge.NewWorkerPool(strings.Split(*workers, ","))
		binding, err = pool.Bind(ctx, "cli", db.Fingerprint(), w, templates)
		if err != nil {
			fatal(fmt.Errorf("bind worker pool: %w", err))
		}
		human("worker pool: %d workers bound\n", pool.Size())
	}

	// Initial configuration. Under -costmodel compressed, whole-workload
	// tuning (-n 0) runs at template granularity: one representative per
	// fingerprint class.
	var defs []indexmerge.IndexDef
	switch {
	case *n > 0:
		adv := advisor.New(db, m.Optimizer())
		adv.Parallelism = *parallel
		defs, err = advisor.BuildInitialConfigurationContext(ctx, adv, w, *n, *seed)
	case compressed:
		defs, err = m.TuneTemplatesContext(ctx)
	default:
		defs, err = m.TuneWorkloadContext(ctx)
	}
	if err != nil {
		fatal(err)
	}
	if len(defs) == 0 {
		fatal(fmt.Errorf("no initial indexes recommended; nothing to merge"))
	}
	human("\ninitial configuration (%d indexes):\n", len(defs))
	for _, d := range defs {
		human("  %s  (%.2f MB est.)\n", d, float64(db.EstimateIndexBytes(d))/(1<<20))
	}

	if *dualBudget > 0 {
		budget := int64(float64(db.ConfigurationBytes(defs)) * *dualBudget)
		res, err := m.MergeDualContext(ctx, defs, budget)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(server.NewDualResultPayload(res))
			return
		}
		fmt.Printf("\ncost-minimal dual result (budget %.0f%% of initial):\n%s",
			*dualBudget*100, res.Report())
		return
	}

	opts := indexmerge.MergeOptions{CostConstraint: *constraint, Parallelism: *parallel, Workers: binding}
	if *resilient {
		opts.Resilience = &indexmerge.ResilienceOptions{}
	}
	switch *mergePair {
	case "syntactic":
		opts.MergePair = indexmerge.MergePairSyntactic
	case "exhaustive":
		opts.MergePair = indexmerge.MergePairExhaustive
	}
	if *search == "exhaustive" {
		opts.Search = indexmerge.ExhaustiveSearch
	}
	switch *costModel {
	case "nocost":
		opts.CostModel = indexmerge.NoCost
	case "prefilter":
		opts.CostModel = indexmerge.PrefilteredOptimizerCost
	case "compressed":
		opts.CostModel = indexmerge.CompressedOptimizerCost
	}
	if *jsonOut {
		// Stream progress snapshots as JSON lines on stderr — the same
		// struct idxmerged serves while a job runs.
		enc := json.NewEncoder(os.Stderr)
		opts.Progress = func(p indexmerge.SearchProgress) {
			_ = enc.Encode(server.NewProgressPayload(p))
		}
	}

	res, err := m.MergeDefsContext(ctx, defs, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(server.NewMergeResultPayload(res))
	} else {
		fmt.Printf("\nmerge result (%s / %s / %s, constraint %.0f%%):\n%s",
			*mergePair, *search, *costModel, *constraint*100, res.Report())
		if res.Degraded {
			fmt.Printf("WARNING: degraded result — optimizer costing failed persistently; "+
				"decisions fell back to the analytic cost model (retries=%d, degraded_checks=%d)\n",
				res.Retries, res.DegradedChecks)
		}
	}

	if *explain && !*jsonOut {
		fmt.Println("\nper-query plans under the final configuration:")
		cfg := optimizer.Configuration(res.Final.Defs())
		pw, err := m.PreparedWorkload()
		if err != nil {
			fatal(err)
		}
		for i, q := range w.Queries {
			plan, err := m.Optimizer().OptimizePrepared(pw.Queries[i], cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- Q%d: %s\n%s\n", i+1, q.Stmt, plan.Explain())
		}
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func loadWorkload(db *engine.Database, path string, queries int, seed int64, duplication int, disjunctions bool) (*sql.Workload, error) {
	if path == "" {
		return workload.Generate(db, workload.Options{
			Class: workload.Complex, Queries: queries, Seed: seed + 11,
			Duplication: duplication, Disjunctions: disjunctions,
		})
	}
	if path == "tpcd17" {
		return datagen.TPCDWorkload(db.Schema())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sql.ParseWorkload(f, db.Schema())
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "idxmerge: canceled")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "idxmerge:", err)
	os.Exit(1)
}
