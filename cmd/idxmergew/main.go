// Command idxmergew is a stateless what-if costing worker: it builds
// (or loads) a database snapshot once, freezes it copy-on-write, and
// serves batched cost RPCs over HTTP for a coordinating idxmerge /
// idxmerged process (see internal/distrib). Several workers pointed at
// the same -db/-scale/-seed spec form a pool; the coordinator verifies
// each worker's database fingerprint before dispatching, so a
// mismatched worker can never contribute wrong costs.
//
// Usage:
//
//	idxmergew [-addr :7791] [-db tpcd] [-scale 1.0] [-seed 1]
//	          [-faults rules] [-pprof]
//
// -db accepts the same specs as idxmerge: tpcd | synthetic1 |
// synthetic2 | file:PATH. -faults installs deterministic
// fault-injection rules (e.g. latency on optimizer.cost to emulate a
// slow commercial optimizer). SIGINT/SIGTERM shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"indexmerge/internal/datagen"
	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
	"indexmerge/internal/faults"
)

func main() {
	addr := flag.String("addr", ":7791", "listen address")
	dbName := flag.String("db", "tpcd", "database spec: tpcd | synthetic1 | synthetic2 | file:PATH (must match the coordinator's)")
	scale := flag.Float64("scale", 1.0, "database scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	faultRules := flag.String("faults", "", "fault-injection rules, semicolon-separated (chaos testing; see internal/faults)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *faultRules != "" {
		rules, err := faults.ParseRules(*faultRules)
		if err != nil {
			log.Error("bad -faults", "error", err)
			os.Exit(2)
		}
		faults.Install(rules...)
		log.Warn("fault injection armed", "rules", len(rules))
	}

	db, err := datagen.BuildNamed(*dbName, *scale, *seed)
	if err != nil {
		log.Error("build database", "db", *dbName, "error", err)
		os.Exit(1)
	}
	// Freeze copy-on-write: the worker costs against an immutable view,
	// so concurrent batches need no locking and the fingerprint the
	// coordinator verified stays true for the process lifetime.
	snap := db.Snapshot()
	wk := distrib.NewWorker(snap.DB())

	mux := http.NewServeMux()
	mux.Handle("/", wk.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// No ReadTimeout: cost batches arrive as one body, but a
		// latency-faulted worker (chaos tests) can hold requests longer
		// than any fixed bound; the coordinator enforces its own RPC
		// timeout and hedges stragglers.
		IdleTimeout: 2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("idxmergew listening", "addr", *addr, "db", *dbName,
		"fingerprint", engine.FingerprintString(wk.Fingerprint()),
		"data_bytes", snap.DB().DataBytes())

	select {
	case err := <-errc:
		log.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve", "error", err)
		os.Exit(1)
	}
	log.Info("idxmergew stopped")
}
