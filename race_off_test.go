//go:build !race

package indexmerge

const raceEnabled = false
