// Recommendation-parity tests for the compressed cost model: on every
// reference database, a greedy merge priced through the (template,
// atom) cost table must arrive at the same final configuration as the
// plain per-query OptimizerCost model — or, when a last-ulp total flips
// a borderline acceptance, at a configuration of equal workload cost.
// The compression is exact (atoms sum every member's CostPrepared, no
// representative approximation), so anything else is a bug.
package indexmerge

import (
	"math"
	"testing"

	"indexmerge/internal/experiments"
	"indexmerge/internal/workload"
)

func TestCompressedMergeParity(t *testing.T) {
	labs, err := experiments.StandardLabs(experiments.LabOptions{Scale: 0.25, WorkloadQueries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lab := range labs {
		// Two workload flavors per database: duplicated complex queries,
		// and a disjunction-bearing variant so IndexUnion arms flow
		// through the relevance test and the cost table.
		flavors := []struct {
			name string
			opt  workload.Options
		}{
			{"dup", workload.Options{Class: workload.Complex, Queries: 10, Duplication: 40, Seed: 3}},
			{"disjunct", workload.Options{Class: workload.Complex, Disjunctions: true, Queries: 10, Duplication: 40, Seed: 9}},
		}
		for _, f := range flavors {
			w, err := workload.Generate(lab.DB, f.opt)
			if err != nil {
				t.Fatalf("%s/%s: generate: %v", lab.Name, f.name, err)
			}
			defs, err := lab.InitialConfiguration(w, 8)
			if err != nil {
				t.Fatalf("%s/%s: initial: %v", lab.Name, f.name, err)
			}
			if len(defs) < 4 {
				t.Fatalf("%s/%s: initial configuration too small (%d)", lab.Name, f.name, len(defs))
			}
			m, err := NewMerger(lab.DB, w)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := m.MergeDefs(defs, MergeOptions{CostConstraint: 0.10})
			if err != nil {
				t.Fatalf("%s/%s: plain merge: %v", lab.Name, f.name, err)
			}
			comp, err := m.MergeDefs(defs, MergeOptions{CostConstraint: 0.10, CostModel: CompressedOptimizerCost})
			if err != nil {
				t.Fatalf("%s/%s: compressed merge: %v", lab.Name, f.name, err)
			}

			if comp.Templates == 0 || comp.DedupRatio <= 1 {
				t.Errorf("%s/%s: compression stats missing: %d templates, %.2fx dedup",
					lab.Name, f.name, comp.Templates, comp.DedupRatio)
			}
			if comp.CostTableHits+comp.CostTableMisses == 0 {
				t.Errorf("%s/%s: compressed run never consulted the cost table", lab.Name, f.name)
			}

			if plain.Final.Signature() == comp.Final.Signature() {
				continue
			}
			pc, err := m.WorkloadCost(plain.Final.Defs())
			if err != nil {
				t.Fatal(err)
			}
			cc, err := m.WorkloadCost(comp.Final.Defs())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pc-cc) > 1e-9*math.Max(1, math.Abs(pc)) {
				t.Errorf("%s/%s: final configurations diverge:\n plain      %s (cost %v)\n compressed %s (cost %v)",
					lab.Name, f.name, plain.Final.Signature(), pc, comp.Final.Signature(), cc)
			}
		}
	}
}

// TestCompressedMergeResilience: the compressed checker must compose
// with the resilient wrapper (SetBase forwarding) — a healthy run under
// Resilience is identical to one without.
func TestCompressedMergeResilience(t *testing.T) {
	lab, err := experiments.NewSynthetic1Lab(experiments.LabOptions{Scale: 0.25, WorkloadQueries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(lab.DB, workload.Options{
		Class: workload.Complex, Queries: 10, Duplication: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defs, err := lab.InitialConfiguration(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(lab.DB, w)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := m.MergeDefs(defs, MergeOptions{CostConstraint: 0.10, CostModel: CompressedOptimizerCost})
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := m.MergeDefs(defs, MergeOptions{
		CostConstraint: 0.10, CostModel: CompressedOptimizerCost,
		Resilience: &ResilienceOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Final.Signature() != hardened.Final.Signature() {
		t.Errorf("resilient compressed run diverged:\n bare     %s\n hardened %s",
			bare.Final.Signature(), hardened.Final.Signature())
	}
	if hardened.Degraded || hardened.Retries != 0 {
		t.Errorf("healthy run reported degradation: degraded=%v retries=%d", hardened.Degraded, hardened.Retries)
	}
}
