// Distributed-costing integration tests: real Greedy/Exhaustive
// searches with what-if costing sharded over in-process HTTP workers
// (httptest servers running the same distrib.Worker that cmd/idxmergew
// serves), asserting the tentpole contract:
//
//   - results are byte-identical at any worker count (0, 1, 4): same
//     final configuration, same float costs bit for bit, same
//     evaluation and cache counters;
//   - every worker failure mode — 5xx, dropped connections, RPC
//     timeouts, malformed responses, coordinator-side injected faults —
//     degrades to local costing without changing any of that;
//   - straggling workers are hedged, not waited for.
package indexmerge

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"indexmerge/internal/datagen"
	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
	"indexmerge/internal/faults"
)

// mergeKey collapses every payload-visible field of a result into one
// comparable string. Float fields compare by bit pattern: the wire
// protocol must round-trip them exactly, not approximately.
func mergeKey(r *MergeResult) string {
	return fmt.Sprintf("init=%s final=%s steps=%v ib=%d fb=%d ce=%d oc=%d cx=%d ic=%016x fc=%016x bound=%016x tmpl=%d th=%d tm=%d pruned=%d deg=%v",
		r.Initial.Signature(), r.Final.Signature(), r.Steps,
		r.InitialBytes, r.FinalBytes,
		r.CostEvaluations, r.OptimizerCalls, r.ConfigsExplored,
		math.Float64bits(r.InitialCost), math.Float64bits(r.FinalCost), math.Float64bits(r.Bound),
		r.Templates, r.CostTableHits, r.CostTableMisses, r.PrunedChecks, r.Degraded)
}

// startWorkerPool spins n in-process workers over forks of the frozen
// snapshot and returns a pool over their URLs. wrap, when non-nil,
// decorates every worker's handler (failure injection).
func startWorkerPool(t *testing.T, snap *engine.Snapshot, n int, wrap func(http.Handler) http.Handler, opts distrib.Options) *distrib.Pool {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		h := http.Handler(distrib.NewWorker(snap.Fork()).Handler())
		if wrap != nil {
			h = wrap(h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return distrib.NewPool(urls, opts)
}

// distribMerge runs one merge on a fresh Merger (private cost caches,
// so remote batches actually happen) with the given binding.
func distribMerge(t *testing.T, db *Database, w *Workload, defs []IndexDef, opts MergeOptions, b *WorkerBinding) *MergeResult {
	t.Helper()
	m, err := NewMerger(db, w)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = b
	res, err := m.MergeDefs(defs, opts)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return res
}

// bindTemplates computes the template count a compressed-model bind
// should verify (0 for other models skips the check).
func bindTemplates(t *testing.T, db *Database, w *Workload, opts MergeOptions) int {
	t.Helper()
	if opts.CostModel != CompressedOptimizerCost {
		return 0
	}
	m, err := NewMerger(db, w)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := m.CompressedWorkload()
	if err != nil {
		t.Fatal(err)
	}
	return len(cw.C.Templates)
}

func TestDistributedMergeByteIdentical(t *testing.T) {
	db, w, _, defs := mergerFixture(t)
	snap := db.Snapshot()
	// Greedy over the full candidate set runs ~150 costing waves (each
	// one a batched RPC); exhaustive search bounds out after the first
	// wave on this fixture, which still pins down the baseline path.
	cases := []struct {
		name string
		defs []IndexDef
		opts MergeOptions
	}{
		{"greedy-opt", defs, MergeOptions{CostConstraint: 0.10}},
		{"greedy-compressed", defs, MergeOptions{CostConstraint: 0.10, CostModel: CompressedOptimizerCost}},
		{"exhaustive-opt", defs[:5], MergeOptions{CostConstraint: 0.10, Search: ExhaustiveSearch}},
		{"exhaustive-compressed", defs[:5], MergeOptions{CostConstraint: 0.10, Search: ExhaustiveSearch, CostModel: CompressedOptimizerCost}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local := distribMerge(t, db, w, tc.defs, tc.opts, nil)
			if local.RemoteBatches != 0 || local.RemoteItems != 0 {
				t.Fatalf("local run reports remote activity: %d batches, %d items",
					local.RemoteBatches, local.RemoteItems)
			}
			want := mergeKey(local)
			templates := bindTemplates(t, db, w, tc.opts)
			for _, workers := range []int{1, 4} {
				pool := startWorkerPool(t, snap, workers, nil, distrib.Options{})
				b, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, templates)
				if err != nil {
					t.Fatalf("bind %d workers: %v", workers, err)
				}
				res := distribMerge(t, db, w, tc.defs, tc.opts, b)
				if got := mergeKey(res); got != want {
					t.Errorf("%d workers diverged from local run:\nlocal  %s\nremote %s", workers, want, got)
				}
				if res.RemoteBatches == 0 || res.RemoteItems == 0 {
					t.Errorf("%d workers: no remote costing happened (batches=%d items=%d)",
						workers, res.RemoteBatches, res.RemoteItems)
				}
				if res.RemoteFallbacks != 0 {
					t.Errorf("%d workers: unexpected fallbacks: %d", workers, res.RemoteFallbacks)
				}
				st := pool.PoolStats()
				if st.Items == 0 || st.RPCErrors != 0 {
					t.Errorf("%d workers: pool stats %+v", workers, st)
				}
			}
		})
	}
}

// failFirstN decorates a handler to fail its first n /v1/cost requests
// in mode: "500" answers an error status, "drop" severs the TCP
// connection mid-request, "short" answers a well-formed response with
// too few costs, "garbage" answers non-JSON bytes, "slow" stalls
// longer than the pool's RPC timeout.
func failFirstN(n int64, mode string) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		var seen atomic.Int64
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/cost" || seen.Add(1) > n {
				next.ServeHTTP(w, r)
				return
			}
			switch mode {
			case "500":
				http.Error(w, "injected worker failure", http.StatusInternalServerError)
			case "drop":
				conn, _, err := http.NewResponseController(w).Hijack()
				if err == nil {
					conn.Close()
				}
			case "short":
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprint(w, `{"query_costs":[1],"atom_costs":[1]}`)
			case "garbage":
				fmt.Fprint(w, "not json at all")
			case "slow":
				time.Sleep(250 * time.Millisecond)
				next.ServeHTTP(w, r)
			}
		})
	}
}

func TestDistributedMergeWorkerFailuresAreInvisible(t *testing.T) {
	db, w, _, defs := mergerFixture(t)
	snap := db.Snapshot()

	for _, model := range []struct {
		name string
		opts MergeOptions
	}{
		{"opt", MergeOptions{CostConstraint: 0.10}},
		{"compressed", MergeOptions{CostConstraint: 0.10, CostModel: CompressedOptimizerCost}},
	} {
		t.Run(model.name, func(t *testing.T) {
			want := mergeKey(distribMerge(t, db, w, defs, model.opts, nil))
			templates := bindTemplates(t, db, w, model.opts)
			// A near-zero cooldown lets benched workers rejoin mid-search
			// (compressed runs finish in ~10ms), so the run exercises
			// fail → all-local → recover → remote again.
			popts := distrib.Options{Cooldown: time.Millisecond}
			for _, mode := range []string{"500", "drop", "short", "garbage"} {
				t.Run(mode, func(t *testing.T) {
					pool := startWorkerPool(t, snap, 2, failFirstN(2, mode), popts)
					b, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, templates)
					if err != nil {
						t.Fatalf("bind: %v", err)
					}
					res := distribMerge(t, db, w, defs, model.opts, b)
					if got := mergeKey(res); got != want {
						t.Errorf("result changed under %s failures:\nwant %s\ngot  %s", mode, want, got)
					}
					if res.RemoteFallbacks == 0 {
						t.Errorf("%s: expected local fallbacks, got none (batches=%d)", mode, res.RemoteBatches)
					}
					if res.RemoteBatches == 0 {
						t.Errorf("%s: expected remote costing after recovery, got none (fallbacks=%d)", mode, res.RemoteFallbacks)
					}
				})
			}
		})
	}
}

func TestDistributedMergeRPCTimeout(t *testing.T) {
	db, w, _, defs := mergerFixture(t)
	snap := db.Snapshot()
	// The looser constraint keeps the wave count modest (~25): only the
	// first wave pays the RPC timeout — it benches both workers for the
	// rest of the run (hour-long cooldown), so later waves fall back
	// instantly on ErrNoWorkers.
	opts := MergeOptions{CostConstraint: 0.50}
	want := mergeKey(distribMerge(t, db, w, defs, opts, nil))

	// Every RPC times out (50ms budget vs 250ms stall, hedging off):
	// the entire search must complete through local fallback.
	pool := startWorkerPool(t, snap, 2, failFirstN(1<<30, "slow"),
		distrib.Options{Timeout: 50 * time.Millisecond, HedgeAfter: -1, Cooldown: time.Hour})
	b, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, 0)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	res := distribMerge(t, db, w, defs, opts, b)
	if got := mergeKey(res); got != want {
		t.Errorf("result changed under RPC timeouts:\nwant %s\ngot  %s", want, got)
	}
	if res.RemoteFallbacks == 0 {
		t.Error("expected every batch to fall back locally")
	}
	if res.RemoteBatches != 0 {
		t.Errorf("no batch should have succeeded remotely, got %d", res.RemoteBatches)
	}
}

func TestDistributedMergeInjectedRPCFaults(t *testing.T) {
	db, w, _, defs := mergerFixture(t)
	snap := db.Snapshot()
	opts := MergeOptions{CostConstraint: 0.10}
	want := mergeKey(distribMerge(t, db, w, defs, opts, nil))

	// Coordinator-side chaos: the distrib.rpc injection point fires in
	// Pool.scatter before any dispatch, failing whole batches windowed
	// across the search.
	faults.Install(
		faults.Rule{ID: "rpc-early", Point: faults.DistribRPC, Mode: faults.ModeError, After: 1, Count: 2},
		faults.Rule{ID: "rpc-late", Point: faults.DistribRPC, Mode: faults.ModeError, After: 8, Count: 3},
	)
	defer faults.Reset()

	pool := startWorkerPool(t, snap, 2, nil, distrib.Options{})
	b, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, 0)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	res := distribMerge(t, db, w, defs, opts, b)
	if got := mergeKey(res); got != want {
		t.Errorf("result changed under injected RPC faults:\nwant %s\ngot  %s", want, got)
	}
	if res.RemoteFallbacks == 0 {
		t.Error("expected injected faults to force local fallbacks")
	}
	if res.RemoteBatches == 0 {
		t.Error("expected batches outside the fault windows to run remotely")
	}
}

func TestDistributedMergeHedgesStragglers(t *testing.T) {
	db, w, _, defs := mergerFixture(t)
	snap := db.Snapshot()
	opts := MergeOptions{CostConstraint: 0.50}
	want := mergeKey(distribMerge(t, db, w, defs, opts, nil))

	// Worker 0 stalls its first five cost requests; worker 1 is
	// healthy. With a short hedge delay the pool re-dispatches the
	// straggling chunks to the healthy worker instead of waiting out
	// the stall — the slow answers arrive late and are discarded.
	var workerIdx, slowCalls atomic.Int64
	slowFirst := func(next http.Handler) http.Handler {
		if workerIdx.Add(1) > 1 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cost" && slowCalls.Add(1) <= 5 {
				time.Sleep(150 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}
	pool := startWorkerPool(t, snap, 2, slowFirst, distrib.Options{HedgeAfter: 10 * time.Millisecond})
	b, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, 0)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	res := distribMerge(t, db, w, defs, opts, b)
	if got := mergeKey(res); got != want {
		t.Errorf("result changed under hedging:\nwant %s\ngot  %s", want, got)
	}
	if st := pool.PoolStats(); st.Hedges == 0 {
		t.Errorf("expected straggler hedges, pool stats %+v", st)
	}
}

func TestWorkerPoolRejectsWrongDatabase(t *testing.T) {
	db, w, _, _ := mergerFixture(t)
	// A worker over a different database must be benched at fingerprint
	// verification, never costed against.
	wrongDB, err := datagen.BuildNamed("synthetic1", 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(distrib.NewWorker(wrongDB.Snapshot().Fork()).Handler())
	defer srv.Close()
	pool := distrib.NewPool([]string{srv.URL}, distrib.Options{})
	if _, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, 0); err == nil {
		t.Fatal("bind accepted a worker with a mismatched database fingerprint")
	}
	if st := pool.PoolStats(); st.Healthy != 0 {
		t.Errorf("mismatched worker not benched: %+v", st)
	}
}

func TestWorkerPoolBindUnreachable(t *testing.T) {
	db, w, _, _ := mergerFixture(t)
	// A closed port: Bind must fail (the CLI surfaces this loudly).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	pool := distrib.NewPool([]string{"http://" + addr}, distrib.Options{Timeout: time.Second})
	if _, err := pool.Bind(context.Background(), "t", db.Fingerprint(), w, 0); err == nil {
		t.Fatal("bind succeeded against an unreachable worker")
	}
}
