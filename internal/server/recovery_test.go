package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indexmerge/internal/faults"
)

// ---- journal unit tests --------------------------------------------

func TestJournalRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	events := []journalEvent{
		{T: evSession, Session: &CreateSessionRequest{Name: "s", DB: "tpcd", Scale: 0.1, Seed: 7}},
		{T: evWorkload, SessionName: "s", Workload: &RegisterWorkloadRequest{Name: "w", SQL: "SELECT 1"}},
		{T: evJob, JobID: "job-1", Kind: "merge", SessionName: "s", WorkloadName: "w"},
		{T: evJobEnd, JobID: "job-1", State: string(JobDone)},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i, ev := range got {
		if ev.T != events[i].T {
			t.Errorf("event %d type = %q, want %q", i, ev.T, events[i].T)
		}
		if ev.At.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	if got[0].Session == nil || got[0].Session.Name != "s" || got[0].Session.Seed != 7 {
		t.Errorf("session event lost its request: %+v", got[0].Session)
	}
	if got[1].Workload == nil || got[1].Workload.SQL != "SELECT 1" {
		t.Errorf("workload event lost its request: %+v", got[1].Workload)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	events, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || events != nil {
		t.Fatalf("ReadJournal(missing) = (%v, %v), want (nil, nil)", events, err)
	}
}

func TestJournalTornFinalLineSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	valid, _ := json.Marshal(journalEvent{T: evSession, At: time.Now(), Session: &CreateSessionRequest{Name: "s"}})
	content := string(valid) + "\n" + `{"t":"job","job_id":"job-1","ki` // crash mid-write
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(events) != 1 || events[0].T != evSession {
		t.Fatalf("events = %+v, want the one valid session event", events)
	}
}

func TestJournalCorruptionMidFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	valid, _ := json.Marshal(journalEvent{T: evSession, At: time.Now(), Session: &CreateSessionRequest{Name: "s"}})
	content := "GARBAGE NOT JSON\n" + string(valid) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Fatal("malformed line followed by valid events must error, not silently drop state")
	}
}

func TestJournalAppendAfterCloseLatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(journalEvent{T: evSession}); err == nil {
		t.Fatal("append to a closed journal must error")
	}
	// And stay broken.
	if err := j.Append(journalEvent{T: evSession}); err == nil {
		t.Fatal("latched journal accepted a later append")
	}
}

// ---- journal versioning --------------------------------------------

// TestJournalMixedVersionReplay: a journal holding pre-versioning
// (v absent = 0) records followed by current v2 records replays both —
// old journals keep working after the schema grew.
func TestJournalMixedVersionReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	// Two version-0 lines, written by a binary that predates the
	// version field.
	v0 := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	content := v0(map[string]any{
		"t": evSession, "session": map[string]any{"name": "old", "db": fixtureDB(t)},
	}) + "\n" + v0(map[string]any{
		"t": evWorkload, "session_name": "old",
		"workload": map[string]any{"name": "w", "sql": fixtureSQL},
	}) + "\n"
	if err := os.WriteFile(journal, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Current-version continuous records appended after the old ones.
	j, err := OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []journalEvent{
		{T: evSession, Session: &CreateSessionRequest{Name: "live", DB: fixtureDB(t),
			Continuous: &ContinuousSpec{Seed: 1}}},
		{T: evIngest, SessionName: "live", Ingest: &IngestRequest{SQL: fixtureSQL}, Batch: 1},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	h := newTestServer(t, Config{JournalPath: journal})
	var wls []WorkloadInfo
	h.mustCall(t, "GET", "/v1/sessions/old/workloads", nil, &wls, http.StatusOK)
	if len(wls) != 1 || wls[0].Name != "w" {
		t.Fatalf("v0 session's workloads = %+v, want [w]", wls)
	}
	if ci := h.continuousInfo(t, "live"); ci.WindowWeight != 5 {
		t.Fatalf("v2 ingest not replayed: %+v", ci)
	}
}

// TestJournalFutureVersionRejected: a record stamped by a newer binary
// fails replay loudly instead of being half-understood.
func TestJournalFutureVersionRejected(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	line := `{"t":"session","v":99,"session":{"name":"s","db":"tpcd"}}` + "\n"
	if err := os.WriteFile(journal, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{JournalPath: journal})
	if err == nil || !strings.Contains(err.Error(), "newer than this binary") {
		t.Fatalf("future-version journal: err = %v, want a version refusal", err)
	}
}

// TestRecoveryUnknownEventFailsLoudly: an event type this binary does
// not know is a state transition it cannot reconstruct; startup must
// refuse, not silently replay a partial history.
func TestRecoveryUnknownEventFailsLoudly(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	valid, _ := json.Marshal(journalEvent{T: evSession, At: time.Now(),
		Session: &CreateSessionRequest{Name: "s", DB: fixtureDB(t)}})
	content := string(valid) + "\n" + `{"t":"frobnicate","v":2,"session_name":"s"}` + "\n"
	if err := os.WriteFile(journal, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{JournalPath: journal})
	if err == nil || !strings.Contains(err.Error(), `unknown event type "frobnicate"`) {
		t.Fatalf("unknown-event journal: err = %v, want a loud refusal", err)
	}
}

// TestRecoveryApplyCrashOrderings hand-crafts the two journals a
// SIGKILL between an apply decision and its fsync can leave behind.
// If the apply record made it to disk, replay restores exactly that
// configuration; if not, the server comes back without it and the
// next cycle re-derives an apply — both orderings converge to an
// applied configuration instead of wedging.
func TestRecoveryApplyCrashOrderings(t *testing.T) {
	applied := []IndexDefPayload{
		{Table: "fact", Columns: []string{"d", "m1", "m2"}},
		{Table: "fact", Columns: []string{"k", "m3"}},
	}
	base := []journalEvent{
		{T: evSession, Session: &CreateSessionRequest{Name: "live", DB: fixtureDB(t),
			Continuous: &ContinuousSpec{Seed: 5}}},
		{T: evIngest, SessionName: "live", Ingest: &IngestRequest{SQL: fixtureSQL}, Batch: 1},
		{T: evAge, SessionName: "live", Generation: 1},
	}
	applyEv := journalEvent{T: evApply, SessionName: "live", Indexes: applied, Est: 3.5, Weight: 2.5}

	write := func(events []journalEvent) string {
		path := filepath.Join(t.TempDir(), "state.jsonl")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if err := j.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return path
	}

	// Ordering A: the apply record was fsynced before the kill.
	h := newTestServer(t, Config{JournalPath: write(append(append([]journalEvent{}, base...), applyEv))})
	ci := h.continuousInfo(t, "live")
	if ci.Applies != 1 || ci.AppliedEst != 3.5 || len(ci.Applied) != len(applied) {
		t.Fatalf("replayed apply = %+v, want the journaled configuration", ci)
	}
	for i := range applied {
		if ci.Applied[i].Table != applied[i].Table ||
			strings.Join(ci.Applied[i].Columns, ",") != strings.Join(applied[i].Columns, ",") {
			t.Fatalf("replayed applied[%d] = %+v, want %+v", i, ci.Applied[i], applied[i])
		}
	}
	// The replayed skip hash matches the replayed window: an unchanged
	// window does not re-search.
	if _, res := h.retune(t, "live"); !res.Skipped {
		t.Fatalf("retune after exact replay = %+v, want skipped", res)
	}

	// Ordering B: killed before the apply record hit disk. The server
	// comes back pre-apply, and the next cycle re-derives and applies.
	h2 := newTestServer(t, Config{JournalPath: write(base)})
	if ci := h2.continuousInfo(t, "live"); ci.Applies != 0 || len(ci.Applied) != 0 {
		t.Fatalf("lost-apply replay = %+v, want no applied configuration", ci)
	}
	if _, res := h2.retune(t, "live"); !res.Applied {
		t.Fatalf("retune after lost apply = %+v, want a fresh apply", res)
	}
	if ci := h2.continuousInfo(t, "live"); ci.Applies != 1 || len(ci.Applied) == 0 {
		t.Fatalf("post-recovery info = %+v, want one applied configuration", ci)
	}
}

// ---- restart recovery ----------------------------------------------

// TestRestartRecovery is the full crash/restart cycle: a journaled
// server accumulates state, a second server replays the same journal
// (as after a SIGKILL), and the pre-crash sessions, workloads and
// terminal jobs are all visible again with job-ID continuity.
func TestRestartRecovery(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")

	h1 := newTestServer(t, Config{JournalPath: journal})
	h1.newSession(t, "prod")
	id := h1.submitJob(t, "prod")
	st := h1.waitTerminal(t, id)
	if st.State != string(JobDone) {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	// Simulate the crash: abandon h1 (its Cleanup drains later) and
	// start a fresh server over the same journal.
	h2 := newTestServer(t, Config{JournalPath: journal})

	var sessions []SessionInfo
	h2.mustCall(t, "GET", "/v1/sessions", nil, &sessions, http.StatusOK)
	if len(sessions) != 1 || sessions[0].Name != "prod" {
		t.Fatalf("recovered sessions = %+v, want [prod]", sessions)
	}
	var wls []WorkloadInfo
	h2.mustCall(t, "GET", "/v1/sessions/prod/workloads", nil, &wls, http.StatusOK)
	if len(wls) != 1 || wls[0].Name != "w" {
		t.Fatalf("recovered workloads = %+v, want [w]", wls)
	}

	// The finished job is pollable with its terminal state and flagged
	// as recovered.
	var rst JobStatus
	h2.mustCall(t, "GET", "/v1/jobs/"+id, nil, &rst, http.StatusOK)
	if rst.State != string(JobDone) {
		t.Errorf("recovered job state = %s, want done", rst.State)
	}
	if !rst.Recovered {
		t.Error("recovered job not flagged Recovered")
	}

	// Job IDs must not collide with pre-crash IDs.
	id2 := h2.submitJob(t, "prod")
	if id2 == id {
		t.Fatalf("post-restart job reused pre-crash ID %s", id)
	}
	if h2.waitTerminal(t, id2).State != string(JobDone) {
		t.Error("post-restart job failed")
	}

	// Recovery metrics.
	metrics := h2.metricsText(t)
	for _, want := range []string{
		"idxmerged_recovered_sessions_total 1",
		"idxmerged_recovered_jobs_total 1",
		"idxmerged_recovered_interrupted_jobs_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRestartRecoveryInterruptedJob hand-crafts the journal of a
// server killed mid-job: the job event has no terminal event, so the
// restarted server must surface it as failed with the recovery reason.
func TestRestartRecoveryInterruptedJob(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	j, err := OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []journalEvent{
		{T: evSession, Session: &CreateSessionRequest{Name: "prod", DB: fixtureDB(t)}},
		{T: evWorkload, SessionName: "prod", Workload: &RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}},
		{T: evJob, JobID: "job-7", Kind: "merge", SessionName: "prod", WorkloadName: "w"},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	h := newTestServer(t, Config{JournalPath: journal})
	var st JobStatus
	h.mustCall(t, "GET", "/v1/jobs/job-7", nil, &st, http.StatusOK)
	if st.State != string(JobFailed) {
		t.Errorf("interrupted job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "interrupted by server restart") {
		t.Errorf("interrupted job error = %q, want a recovery reason", st.Error)
	}
	if !st.Recovered {
		t.Error("interrupted job not flagged Recovered")
	}
	// ID floor: the next submitted job must be numbered past job-7.
	id := h.submitJob(t, "prod")
	if n, ok := parseJobID(id); !ok || n <= 7 {
		t.Errorf("post-recovery job ID %s does not clear the recovered floor", id)
	}
	if !strings.Contains(h.metricsText(t), "idxmerged_recovered_interrupted_jobs_total 1") {
		t.Error("interrupted-recovery metric not incremented")
	}
}

// TestRecoveryDeletedSessionStaysDeleted: a session created and later
// deleted pre-crash must not resurrect.
func TestRecoveryDeletedSessionStaysDeleted(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	h1 := newTestServer(t, Config{JournalPath: journal})
	h1.newSession(t, "gone")
	h1.newSession(t, "kept")
	h1.mustCall(t, "DELETE", "/v1/sessions/gone", nil, nil, http.StatusOK)

	h2 := newTestServer(t, Config{JournalPath: journal})
	var sessions []SessionInfo
	h2.mustCall(t, "GET", "/v1/sessions", nil, &sessions, http.StatusOK)
	if len(sessions) != 1 || sessions[0].Name != "kept" {
		t.Fatalf("recovered sessions = %+v, want [kept]", sessions)
	}
}

// ---- panic containment ---------------------------------------------

func TestHandlerPanicReturns500(t *testing.T) {
	h := newTestServer(t, Config{})
	h.srv.handle("GET /test/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	resp, err := http.Get(h.ts.URL + "/test/panic")
	if err != nil {
		t.Fatalf("request after handler panic: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	// The process survives: the next request works.
	resp2, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d, want 200", resp2.StatusCode)
	}
	if !strings.Contains(h.metricsText(t), "idxmerged_handler_panics_total 1") {
		t.Error("handler panic metric not incremented")
	}
}

func TestWorkerPanicFailsJobNotProcess(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")
	sess, ok := h.srv.reg.Get("s")
	if !ok {
		t.Fatal("session missing")
	}
	job, err := h.srv.jobs.Submit("merge", sess, "w", SubmitOpts{}, func(ctx context.Context, j *Job) (*JobResult, error) {
		panic("worker kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	st := h.waitTerminal(t, job.id)
	if st.State != string(JobFailed) {
		t.Fatalf("panicked job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "job panicked") || !strings.Contains(st.Error, "worker kaboom") {
		t.Errorf("panicked job error = %q, want panic message with stack", st.Error)
	}
	// Pool still alive: a real job completes afterwards.
	id := h.submitJob(t, "s")
	if got := h.waitTerminal(t, id).State; got != string(JobDone) {
		t.Errorf("job after worker panic = %s, want done", got)
	}
	if !strings.Contains(h.metricsText(t), "idxmerged_worker_panics_total 1") {
		t.Error("worker panic metric not incremented")
	}
}

// TestJobFaultInjectionDegraded drives the whole server stack under a
// permanent optimizer outage: the default-resilient job completes
// degraded instead of failing, and says so in its status and metrics.
func TestJobFaultInjectionDegraded(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "count")
	h.newSession(t, "chaos")

	// Measure the job's total optimizer calls on an identical session.
	counter := faults.Install(faults.Rule{ID: "jcount", Point: faults.OptimizerCost, Mode: faults.ModeLatency})
	id := h.submitJob(t, "count")
	if st := h.waitTerminal(t, id); st.State != string(JobDone) {
		t.Fatalf("counting job: %s (%s)", st.State, st.Error)
	}
	total := faults.Fired(counter[0].ID)
	faults.Reset()
	if total < 20 {
		t.Fatalf("fixture too small: %d optimizer calls", total)
	}

	faults.Install(faults.Rule{
		ID: "joutage", Point: faults.OptimizerCost, Mode: faults.ModeError, After: total / 2,
	})
	defer faults.Reset()

	id = h.submitJob(t, "chaos")
	st := h.waitTerminal(t, id)
	if st.State != string(JobDone) {
		t.Fatalf("resilient job under outage = %s (%s), want done degraded", st.State, st.Error)
	}
	if !st.Degraded {
		t.Fatal("job status not flagged degraded")
	}
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, &res, http.StatusOK)
	if res.Merge == nil || !res.Merge.Degraded {
		t.Error("result payload not flagged degraded")
	}
	metrics := h.metricsText(t)
	if !strings.Contains(metrics, "idxmerged_jobs_degraded_total 1") {
		t.Error("degraded-jobs metric not incremented")
	}
	if !strings.Contains(metrics, "idxmerged_costing_degraded_total") {
		t.Error("degraded-costings metric missing")
	}
}

// TestJobFaultInjectionTransient: transient faults inside a job are
// absorbed silently — job succeeds, not degraded, retries surfaced in
// metrics.
func TestJobFaultInjectionTransient(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")
	installed := faults.Install(faults.Rule{
		ID: "jt", Point: faults.OptimizerCost, Mode: faults.ModeError, Transient: true, After: 8, Count: 2,
	})
	defer faults.Reset()

	id := h.submitJob(t, "s")
	st := h.waitTerminal(t, id)
	if st.State != string(JobDone) {
		t.Fatalf("job under transient faults = %s (%s)", st.State, st.Error)
	}
	if st.Degraded {
		t.Error("transient faults must not degrade the job")
	}
	if faults.Fired(installed[0].ID) == 0 {
		t.Fatal("fault never fired")
	}
	if !strings.Contains(h.metricsText(t), "idxmerged_costing_retries_total") {
		t.Error("retries metric missing")
	}
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, &res, http.StatusOK)
	if res.Merge == nil || res.Merge.Retries == 0 {
		t.Error("result payload did not surface the absorbed retries")
	}
}

// TestRequestBodyLimit: oversized JSON bodies are rejected, not
// buffered.
func TestRequestBodyLimit(t *testing.T) {
	h := newTestServer(t, Config{})
	huge := strings.Repeat("x", maxBodyBytes+1024)
	code := h.call(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "big", DB: huge}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized body status = %d, want 400", code)
	}
}

// metricsText fetches /metrics as text.
func (h *testServer) metricsText(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
