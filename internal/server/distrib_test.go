package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
)

// startFixtureWorkers spins n distrib workers over forks of the test
// fixture snapshot — the same database file sessions are created from,
// so fingerprints agree with the coordinator's.
func startFixtureWorkers(t *testing.T, n int) []string {
	t.Helper()
	db, err := engine.LoadSnapshotFile(strings.TrimPrefix(fixtureDB(t), "file:"))
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(distrib.NewWorker(snap.Fork()).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestDistributedJobMatchesLocalJob is the payload-level determinism
// check: the same merge job run on a worker-pool-backed server and on
// a plain one must serialize to byte-identical JSON (modulo elapsed
// time), because remote costing must leave no trace in results.
func TestDistributedJobMatchesLocalJob(t *testing.T) {
	local := newTestServer(t, Config{})
	dist := newTestServer(t, Config{CostWorkers: startFixtureWorkers(t, 2)})

	for _, model := range []string{"", "compressed"} {
		name := model
		if name == "" {
			name = "opt"
		}
		t.Run(name, func(t *testing.T) {
			payloads := make([]json.RawMessage, 2)
			for i, h := range []*testServer{local, dist} {
				sess := fmt.Sprintf("s-%s-%d", name, i)
				h.newSession(t, sess)
				var resp SubmitJobResponse
				h.mustCall(t, "POST", "/v1/sessions/"+sess+"/jobs", SubmitJobRequest{
					Workload: "w",
					Initial:  &InitialSpec{Indexes: fixtureIndexes},
					Options:  JobOptions{Constraint: 0.3, CostModel: model},
				}, &resp, http.StatusAccepted)
				st := h.waitTerminal(t, resp.ID)
				if st.State != string(JobDone) {
					t.Fatalf("server %d: job state %s (error %q)", i, st.State, st.Error)
				}
				var res JobResult
				h.mustCall(t, "GET", "/v1/jobs/"+resp.ID+"/result", nil, &res, http.StatusOK)
				res.Merge.ElapsedSeconds = 0
				b, err := json.Marshal(res.Merge)
				if err != nil {
					t.Fatal(err)
				}
				payloads[i] = b
			}
			if !bytes.Equal(payloads[0], payloads[1]) {
				t.Errorf("distributed job payload diverged from local:\nlocal %s\ndist  %s", payloads[0], payloads[1])
			}
		})
	}

	// The pool must actually have been used, and its activity must show
	// up in /metrics — on the coordinator, never in job payloads.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	dist.srv.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{"idxmerged_pool_workers 2", "idxmerged_pool_workers_healthy 2"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "idxmerged_remote_batches_total 0\n") {
		t.Error("metrics report zero remote batches; worker pool was never used")
	}
	if st := dist.srv.pool.PoolStats(); st.Batches == 0 || st.RPCErrors != 0 {
		t.Errorf("pool stats %+v: expected clean remote batches", st)
	}
}

// TestSessionsShareSnapshotUnderConcurrency pins the snapshot-cache
// contract: sessions created from the same database spec share one
// frozen snapshot (build once, fork per session), and concurrent jobs
// and costings on those forks are race-free and deterministic. Run
// with -race.
func TestSessionsShareSnapshotUnderConcurrency(t *testing.T) {
	h := newTestServer(t, Config{Workers: 4, QueueCap: 64})

	// First session builds and freezes the snapshot...
	h.newSession(t, "s0")
	if n := h.srv.reg.SnapshotReuses(); n != 0 {
		t.Fatalf("first session reported %d snapshot reuses", n)
	}
	// ...the rest fork it concurrently.
	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.newSession(t, fmt.Sprintf("s%d", i))
		}(i)
	}
	wg.Wait()
	if n := h.srv.reg.SnapshotReuses(); n != 3 {
		t.Errorf("snapshot reuses = %d, want 3", n)
	}

	// Concurrent sync costings and merge jobs across all four sessions:
	// four forks of one snapshot costed and searched at once.
	results := make([]JobStatus, 4)
	payloads := make([]json.RawMessage, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", i)
			var cr CostResponse
			h.mustCall(t, "POST", "/v1/sessions/"+sess+"/cost",
				CostRequest{Workload: "w", Indexes: fixtureIndexes}, &cr, http.StatusOK)
			id := h.submitJob(t, sess)
			results[i] = h.waitTerminal(t, id)
			var res JobResult
			h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, &res, http.StatusOK)
			if res.Merge != nil {
				res.Merge.ElapsedSeconds = 0
				payloads[i], _ = json.Marshal(res.Merge)
			}
		}(i)
	}
	wg.Wait()
	for i, st := range results {
		if st.State != string(JobDone) {
			t.Fatalf("session s%d: job state %s (error %q)", i, st.State, st.Error)
		}
	}
	// Shared snapshot, independent forks: every session computes the
	// byte-identical recommendation.
	for i := 1; i < 4; i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Errorf("session s%d diverged:\n s0 %s\n s%d %s", i, payloads[0], i, payloads[i])
		}
	}
}
