package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"indexmerge"
	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

// ---- fixture -------------------------------------------------------

// fixtureSQL is the test workload: five queries over a fact/dim pair
// with known index overlap (two fact indexes share the d prefix).
const fixtureSQL = `SELECT d, m1 FROM fact WHERE d BETWEEN DATE(100) AND DATE(110)
SELECT d, m2 FROM fact WHERE d BETWEEN DATE(200) AND DATE(215)
SELECT k, m3 FROM fact WHERE k = 17
SELECT tag, m1 FROM fact WHERE tag = 'red'
SELECT name, m1 FROM fact, dim WHERE fact.k = dim.k AND dim.k = 3`

// fixtureIndexes is an initial configuration with mergeable overlap.
var fixtureIndexes = []IndexDefPayload{
	{Table: "fact", Columns: []string{"d", "m1"}},
	{Table: "fact", Columns: []string{"d", "m2"}},
	{Table: "fact", Columns: []string{"k", "m3"}},
	{Table: "fact", Columns: []string{"tag", "m1"}},
	{Table: "dim", Columns: []string{"k", "name"}},
}

var (
	fixtureOnce sync.Once
	fixturePath string // "file:..." DB spec for CreateSessionRequest
	fixtureErr  error
)

// fixtureDB builds a small analyzed database once, snapshots it, and
// returns the file: spec sessions are created from.
func fixtureDB(t *testing.T) string {
	t.Helper()
	fixtureOnce.Do(func() {
		db := engine.NewDatabase()
		if fixtureErr = db.CreateTable(catalog.MustNewTable("fact", []catalog.Column{
			{Name: "d", Type: value.Date},
			{Name: "k", Type: value.Int},
			{Name: "m1", Type: value.Float},
			{Name: "m2", Type: value.Float},
			{Name: "m3", Type: value.Float},
			{Name: "tag", Type: value.String, Width: 6},
			{Name: "pad", Type: value.String, Width: 60},
		})); fixtureErr != nil {
			return
		}
		if fixtureErr = db.CreateTable(catalog.MustNewTable("dim", []catalog.Column{
			{Name: "k", Type: value.Int},
			{Name: "name", Type: value.String, Width: 12},
		})); fixtureErr != nil {
			return
		}
		rng := rand.New(rand.NewSource(21))
		tags := []string{"red", "green", "blue", "black"}
		for i := 0; i < 200; i++ {
			db.Insert("dim", value.Row{value.NewInt(int64(i)), value.NewString("name")})
		}
		for i := 0; i < 10000; i++ {
			db.Insert("fact", value.Row{
				value.NewDate(rng.Int63n(1000)),
				value.NewInt(rng.Int63n(200)),
				value.NewFloat(rng.Float64()),
				value.NewFloat(rng.Float64()),
				value.NewFloat(rng.Float64()),
				value.NewString(tags[rng.Intn(4)]),
				value.NewString("padding"),
			})
		}
		db.AnalyzeAll()
		dir, err := os.MkdirTemp("", "idxmerged-test")
		if err != nil {
			fixtureErr = err
			return
		}
		path := filepath.Join(dir, "fixture.snap")
		if fixtureErr = db.SaveSnapshotFile(path); fixtureErr == nil {
			fixturePath = "file:" + path
		}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixturePath
}

// directMerge runs the same merge the server executes, through the
// same facade, on a separately loaded copy of the fixture — the
// batch-CLI reference a job result must match byte for byte.
func directMerge(t *testing.T, opts indexmerge.MergeOptions) MergeResultPayload {
	t.Helper()
	db, err := engine.LoadSnapshotFile(strings.TrimPrefix(fixturePath, "file:"))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sql.ParseWorkload(strings.NewReader(fixtureSQL), db.Schema())
	if err != nil {
		t.Fatal(err)
	}
	m, err := indexmerge.NewMerger(db, w)
	if err != nil {
		t.Fatal(err)
	}
	defs := make([]catalog.IndexDef, len(fixtureIndexes))
	for i, p := range fixtureIndexes {
		if defs[i], err = catalog.NewIndexDef(db.Schema(), p.Name, p.Table, p.Columns); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.MergeDefs(defs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewMergeResultPayload(res)
}

// ---- harness -------------------------------------------------------

type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &testServer{srv: srv, ts: ts}
}

// call issues a JSON request and decodes the response into out (when
// non-nil), returning the HTTP status.
func (h *testServer) call(t *testing.T, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		if s, ok := body.(string); ok {
			rd = strings.NewReader(s)
		} else {
			b, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(b)
		}
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

// mustCall is call with a required status.
func (h *testServer) mustCall(t *testing.T, method, path string, body, out any, want int) {
	t.Helper()
	if got := h.call(t, method, path, body, out); got != want {
		t.Fatalf("%s %s: status %d, want %d", method, path, got, want)
	}
}

// newSession creates a fixture-backed session with a registered
// workload named "w".
func (h *testServer) newSession(t *testing.T, name string) {
	t.Helper()
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: name, DB: fixtureDB(t)}, nil, http.StatusCreated)
	h.mustCall(t, "POST", "/v1/sessions/"+name+"/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusCreated)
}

// submitJob submits a merge job over the canonical fixture initial
// configuration and returns the job ID.
func (h *testServer) submitJob(t *testing.T, session string) string {
	t.Helper()
	var resp SubmitJobResponse
	h.mustCall(t, "POST", "/v1/sessions/"+session+"/jobs", SubmitJobRequest{
		Workload: "w",
		Initial:  &InitialSpec{Indexes: fixtureIndexes},
		Options:  JobOptions{Constraint: 0.3},
	}, &resp, http.StatusAccepted)
	return resp.ID
}

// waitTerminal polls a job until it leaves queued/running.
func (h *testServer) waitTerminal(t *testing.T, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		h.mustCall(t, "GET", "/v1/jobs/"+id, nil, &st, http.StatusOK)
		if JobState(st.State).terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobStatus{}
}

// ---- tests ---------------------------------------------------------

func TestSessionLifecycle(t *testing.T) {
	h := newTestServer(t, Config{})
	db := fixtureDB(t)

	var info SessionInfo
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s1", DB: db}, &info, http.StatusCreated)
	if info.Name != "s1" || info.Tables != 2 || info.DataBytes <= 0 {
		t.Fatalf("session info = %+v", info)
	}
	// Duplicate name conflicts; invalid inputs are 400s.
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s1", DB: db}, nil, http.StatusConflict)
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "bad name!", DB: db}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s2", DB: "nope"}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions", `{"name": `, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions", `{"name": "x", "db": "tpcd", "bogus": 1}`, nil, http.StatusBadRequest)

	var list []SessionInfo
	h.mustCall(t, "GET", "/v1/sessions", nil, &list, http.StatusOK)
	if len(list) != 1 || list[0].Name != "s1" {
		t.Fatalf("list = %+v", list)
	}
	h.mustCall(t, "GET", "/v1/sessions/s1", nil, &info, http.StatusOK)
	h.mustCall(t, "GET", "/v1/sessions/nope", nil, nil, http.StatusNotFound)

	h.mustCall(t, "DELETE", "/v1/sessions/s1", nil, nil, http.StatusOK)
	h.mustCall(t, "GET", "/v1/sessions/s1", nil, nil, http.StatusNotFound)
	h.mustCall(t, "DELETE", "/v1/sessions/s1", nil, nil, http.StatusNotFound)
}

func TestWorkloadsAndSyncCost(t *testing.T) {
	h := newTestServer(t, Config{})
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s", DB: fixtureDB(t)}, nil, http.StatusCreated)

	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusCreated)
	// Workload names are single-assignment (cache-namespace contract).
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusConflict)
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "bad", SQL: "SELECT nope FROM nowhere"}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "both", SQL: "x", Generate: &GenerateSpec{}}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "neither"}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "badclass", Generate: &GenerateSpec{Class: "zig"}}, nil, http.StatusBadRequest)

	var wls []WorkloadInfo
	h.mustCall(t, "GET", "/v1/sessions/s/workloads", nil, &wls, http.StatusOK)
	if len(wls) != 1 || wls[0].Name != "w" || wls[0].Queries != 5 {
		t.Fatalf("workloads = %+v", wls)
	}

	// Synchronous what-if costing: more indexes can only help.
	var bare, indexed CostResponse
	h.mustCall(t, "POST", "/v1/sessions/s/cost",
		CostRequest{Workload: "w"}, &bare, http.StatusOK)
	h.mustCall(t, "POST", "/v1/sessions/s/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, &indexed, http.StatusOK)
	if bare.Cost <= 0 || indexed.Cost <= 0 || indexed.Cost > bare.Cost {
		t.Fatalf("costs: bare %v, indexed %v", bare.Cost, indexed.Cost)
	}
	h.mustCall(t, "POST", "/v1/sessions/s/cost",
		CostRequest{Workload: "nope"}, nil, http.StatusNotFound)
	h.mustCall(t, "POST", "/v1/sessions/s/cost",
		CostRequest{Workload: "w", Indexes: []IndexDefPayload{{Table: "fact", Columns: []string{"ghost"}}}},
		nil, http.StatusBadRequest)
}

func TestJobValidation(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")

	bad := []SubmitJobRequest{
		{Kind: "explode", Workload: "w"},
		{Workload: "w", Options: JobOptions{MergePair: "zig"}},
		{Workload: "w", Options: JobOptions{Search: "zag"}},
		{Workload: "w", Options: JobOptions{CostModel: "zog"}},
		{Workload: "w", Options: JobOptions{DualBudgetFrac: 1.5}},
		{Workload: "w", Initial: &InitialSpec{Indexes: []IndexDefPayload{{Table: "ghost", Columns: []string{"x"}}}}},
	}
	for i, req := range bad {
		if got := h.call(t, "POST", "/v1/sessions/s/jobs", req, nil); got != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400", i, got)
		}
	}
	h.mustCall(t, "POST", "/v1/sessions/s/jobs", SubmitJobRequest{Workload: "nope"}, nil, http.StatusNotFound)
	h.mustCall(t, "POST", "/v1/sessions/s/jobs", `{"kind":`, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/nope/jobs", SubmitJobRequest{Workload: "w"}, nil, http.StatusNotFound)

	h.mustCall(t, "GET", "/v1/jobs/nope", nil, nil, http.StatusNotFound)
	h.mustCall(t, "POST", "/v1/jobs/nope/cancel", nil, nil, http.StatusNotFound)
	h.mustCall(t, "GET", "/v1/jobs/nope/result", nil, nil, http.StatusNotFound)
}

// TestMergeJobMatchesDirectRun is the tentpole acceptance check: a
// merge job through the HTTP API returns the byte-identical result of
// the same merge through the facade (what cmd/idxmerge -json prints),
// modulo wall-clock elapsed time.
func TestMergeJobMatchesDirectRun(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")

	id := h.submitJob(t, "s")
	st := h.waitTerminal(t, id)
	if st.State != string(JobDone) {
		t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
	}
	if st.Progress.Steps == 0 || st.Progress.SavedBytes <= 0 {
		t.Fatalf("job progress %+v: expected accepted merge steps", st.Progress)
	}
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, &res, http.StatusOK)
	if res.State != string(JobDone) || res.Merge == nil {
		t.Fatalf("result = %+v", res)
	}

	want := directMerge(t, indexmerge.MergeOptions{CostConstraint: 0.3})
	got := *res.Merge
	got.ElapsedSeconds, want.ElapsedSeconds = 0, 0
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("server job diverged from direct run:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
	if len(want.Steps) == 0 {
		t.Error("fixture merge accepted no steps; test has no teeth")
	}
}

// TestJobsOneSessionSerialized submits two jobs to one session on a
// two-worker pool and verifies their running intervals do not overlap
// (the session lock serializes them) while both complete.
func TestJobsOneSessionSerialized(t *testing.T) {
	h := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	h.newSession(t, "s")

	id1 := h.submitJob(t, "s")
	id2 := h.submitJob(t, "s")
	st1 := h.waitTerminal(t, id1)
	st2 := h.waitTerminal(t, id2)
	if st1.State != string(JobDone) || st2.State != string(JobDone) {
		t.Fatalf("states = %s / %s, want done/done", st1.State, st2.State)
	}
	overlap := st1.StartedAt.Before(*st2.FinishedAt) && st2.StartedAt.Before(*st1.FinishedAt)
	if overlap {
		t.Errorf("jobs on one session ran concurrently: [%v, %v] and [%v, %v]",
			st1.StartedAt, st1.FinishedAt, st2.StartedAt, st2.FinishedAt)
	}

	var all []JobStatus
	h.mustCall(t, "GET", "/v1/jobs", nil, &all, http.StatusOK)
	if len(all) != 2 || all[0].ID != id1 || all[1].ID != id2 {
		t.Errorf("job list = %+v", all)
	}
}

// gateHook wires a progress hook that signals (once) when a job has
// consumed at least one evaluation and then blocks the search until
// released — making "cancel while mid-search" deterministic.
func gateHook(srv *Server) (signaled <-chan string, release func()) {
	sig := make(chan string, 1)
	gate := make(chan struct{})
	var once, relOnce sync.Once
	srv.jobs.progressHook = func(id string, p ProgressPayload) {
		if p.CostEvaluations > 0 {
			once.Do(func() { sig <- id })
			<-gate
		}
	}
	return sig, func() { relOnce.Do(func() { close(gate) }) }
}

// TestCancelMidSearch cancels a running merge job and verifies it
// terminates as canceled having consumed strictly fewer cost
// evaluations than a full run — and that the session stays usable:
// the rerun completes and matches the direct result.
func TestCancelMidSearch(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	sig, release := gateHook(h.srv)
	defer release()
	h.newSession(t, "s")

	full := directMerge(t, indexmerge.MergeOptions{CostConstraint: 0.3})
	if full.CostEvaluations < 2 {
		t.Fatalf("fixture too small: %d evaluations", full.CostEvaluations)
	}

	id := h.submitJob(t, "s")
	select {
	case got := <-sig:
		if got != id {
			t.Fatalf("progress from job %s, want %s", got, id)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never reported progress")
	}
	var st JobStatus
	h.mustCall(t, "GET", "/v1/jobs/"+id, nil, &st, http.StatusOK)
	if st.State != string(JobRunning) {
		t.Fatalf("state %s while gated, want running", st.State)
	}
	// Result is unavailable while running.
	h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, nil, http.StatusConflict)

	h.mustCall(t, "POST", "/v1/jobs/"+id+"/cancel", nil, nil, http.StatusAccepted)
	release()
	st = h.waitTerminal(t, id)
	if st.State != string(JobCanceled) {
		t.Fatalf("state %s after cancel, want canceled", st.State)
	}
	if st.Progress.CostEvaluations == 0 || st.Progress.CostEvaluations >= full.CostEvaluations {
		t.Errorf("canceled job consumed %d evaluations, want in [1, %d)",
			st.Progress.CostEvaluations, full.CostEvaluations)
	}

	// The session is reusable after cancellation; the rerun's final
	// configuration matches the direct run (counters may differ — the
	// session cache is warm from the canceled attempt).
	id2 := h.submitJob(t, "s")
	st2 := h.waitTerminal(t, id2)
	if st2.State != string(JobDone) {
		t.Fatalf("rerun state %s (error %q), want done", st2.State, st2.Error)
	}
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+id2+"/result", nil, &res, http.StatusOK)
	got := *res.Merge
	got.ElapsedSeconds, got.OptimizerCalls = 0, 0
	want := full
	want.ElapsedSeconds, want.OptimizerCalls = 0, 0
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("rerun diverged from direct run:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// TestBackpressure fills the 1-worker, 1-slot queue and verifies the
// third submission bounces with 429, queued jobs cancel instantly,
// and the gated first job still completes.
func TestBackpressure(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	sig, release := gateHook(h.srv)
	defer release()
	h.newSession(t, "s")

	id1 := h.submitJob(t, "s")
	select {
	case <-sig: // job-1 is running and parked on the gate
	case <-time.After(30 * time.Second):
		t.Fatal("job-1 never reported progress")
	}
	id2 := h.submitJob(t, "s") // fills the queue slot

	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions/s/jobs", SubmitJobRequest{
		Workload: "w",
		Initial:  &InitialSpec{Indexes: fixtureIndexes},
	}, &errResp, http.StatusTooManyRequests)
	if !strings.Contains(errResp.Error, "queue full") {
		t.Errorf("429 body = %+v", errResp)
	}

	// A queued job cancels immediately, without waiting for a worker.
	var st JobStatus
	h.mustCall(t, "POST", "/v1/jobs/"+id2+"/cancel", nil, &st, http.StatusAccepted)
	if st.State != string(JobCanceled) {
		t.Errorf("queued job state after cancel = %s, want canceled", st.State)
	}

	release()
	if st := h.waitTerminal(t, id1); st.State != string(JobDone) {
		t.Errorf("job-1 state %s (error %q), want done", st.State, st.Error)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	h.mustCall(t, "POST", "/v1/sessions/s/jobs", SubmitJobRequest{
		Workload: "w",
		Initial:  &InitialSpec{Indexes: fixtureIndexes},
	}, nil, http.StatusServiceUnavailable)
}

func TestMetricsEndpoint(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")
	id := h.submitJob(t, "s")
	h.waitTerminal(t, id)

	resp, err := h.ts.Client().Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, series := range []string{
		`idxmerged_http_requests_total{route="POST /v1/sessions",code="201"} 1`,
		`idxmerged_jobs_total{state="done"} 1`,
		"idxmerged_jobs_submitted_total 1",
		"idxmerged_sessions 1",
		`idxmerged_costcache_entries{session="s"}`,
		"idxmerged_optimizer_calls_total",
		"idxmerged_search_seconds_bucket",
		`idxmerged_search_seconds_bucket{le="+Inf"} 1`,
		"idxmerged_http_request_seconds_count",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}

// TestParallelClients is the -race smoke: N clients hammer sessions,
// workloads, jobs, cancels and metrics concurrently.
func TestParallelClients(t *testing.T) {
	h := newTestServer(t, Config{Workers: 4, QueueCap: 64})
	db := fixtureDB(t)
	for i := 0; i < 3; i++ {
		h.newSession(t, fmt.Sprintf("s%d", i))
	}

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", c%3)
			// Racing duplicate creates: exactly 409 or 201.
			if code := h.call(t, "POST", "/v1/sessions",
				CreateSessionRequest{Name: sess, DB: db}, nil); code != http.StatusConflict {
				t.Errorf("duplicate create returned %d", code)
			}
			var resp SubmitJobResponse
			code := h.call(t, "POST", "/v1/sessions/"+sess+"/jobs", SubmitJobRequest{
				Workload: "w",
				Initial:  &InitialSpec{Indexes: fixtureIndexes},
				Options:  JobOptions{Constraint: 0.3, Parallelism: 2},
			}, &resp)
			if code != http.StatusAccepted && code != http.StatusTooManyRequests {
				t.Errorf("submit returned %d", code)
				return
			}
			if code == http.StatusAccepted {
				if c%2 == 0 {
					h.call(t, "POST", "/v1/jobs/"+resp.ID+"/cancel", nil, nil)
				}
				h.waitTerminal(t, resp.ID)
			}
			h.call(t, "GET", "/v1/jobs", nil, nil)
			h.call(t, "GET", "/v1/sessions", nil, nil)
			if _, err := h.ts.Client().Get(h.ts.URL + "/metrics"); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()

	// Every job must have reached a terminal state with a coherent
	// status; canceled-or-done is client-race dependent, failed is not.
	var all []JobStatus
	h.mustCall(t, "GET", "/v1/jobs", nil, &all, http.StatusOK)
	for _, st := range all {
		if st.State == string(JobFailed) {
			t.Errorf("job %s failed: %s", st.ID, st.Error)
		}
	}
}

// TestCancelAfterCompletionReportsDone pins the cancel/complete
// interplay: cancelling a job that already finished must report the
// actual terminal state (done), not cancelled, and must not disturb
// the recorded progress or timestamps.
func TestCancelAfterCompletionReportsDone(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")
	id := h.submitJob(t, "s")
	done := h.waitTerminal(t, id)
	if done.State != string(JobDone) {
		t.Fatalf("job finished %s, want done", done.State)
	}

	var st JobStatus
	h.mustCall(t, "POST", "/v1/jobs/"+id+"/cancel", nil, &st, http.StatusAccepted)
	if st.State != string(JobDone) {
		t.Fatalf("cancel of a completed job reported %s, want done", st.State)
	}
	h.mustCall(t, "GET", "/v1/jobs/"+id, nil, &st, http.StatusOK)
	if st.State != string(JobDone) || st.Error != "" {
		t.Fatalf("status after late cancel = %s (%q), want done", st.State, st.Error)
	}
	if st.Progress != done.Progress {
		t.Errorf("progress changed after late cancel: %+v -> %+v", done.Progress, st.Progress)
	}
	if st.FinishedAt == nil || !st.FinishedAt.Equal(*done.FinishedAt) {
		t.Errorf("finishedAt changed after late cancel: %v -> %v", done.FinishedAt, st.FinishedAt)
	}
	// The terminal result is still the done payload.
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+id+"/result", nil, &res, http.StatusOK)
	if res.State != string(JobDone) || res.Merge == nil {
		t.Fatalf("result after late cancel = %+v", res)
	}
}

// TestCanceledQueuedJobNeverResurrects reproduces the job-status race:
// a second worker blocks in the session-lock wait while job1 runs;
// job2 is canceled in that window (terminal, metrics counted); then
// job1 finishes and frees the lock. acquire's select may still hand
// the lock to the canceled job — before the fix the worker then
// overwrote the terminal state with "running" (status regression) and
// finished the job a second time (double-counted metrics). The
// canceled job must stay canceled, never report running or a start
// time, and count exactly once in the canceled metric.
func TestCanceledQueuedJobNeverResurrects(t *testing.T) {
	for i := 0; i < 5; i++ {
		t.Run(fmt.Sprintf("round-%d", i), func(t *testing.T) {
			h := newTestServer(t, Config{Workers: 2, QueueCap: 8})
			sig, release := gateHook(h.srv)
			defer release()
			h.newSession(t, "s")

			id1 := h.submitJob(t, "s")
			select {
			case <-sig:
			case <-time.After(30 * time.Second):
				t.Fatal("job1 never reported progress")
			}
			// job1 is running and holds the session lock; job2's worker
			// will block inside acquire.
			id2 := h.submitJob(t, "s")
			time.Sleep(20 * time.Millisecond) // let worker 2 reach acquire
			var st JobStatus
			h.mustCall(t, "POST", "/v1/jobs/"+id2+"/cancel", nil, &st, http.StatusAccepted)
			if st.State != string(JobCanceled) {
				t.Fatalf("cancel reported %s, want canceled", st.State)
			}

			release()
			if st1 := h.waitTerminal(t, id1); st1.State != string(JobDone) {
				t.Fatalf("job1 finished %s, want done", st1.State)
			}
			// The session lock is now free; give the blocked worker time
			// to (wrongly) take it. job2 must remain canceled throughout.
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				h.mustCall(t, "GET", "/v1/jobs/"+id2, nil, &st, http.StatusOK)
				if st.State != string(JobCanceled) {
					t.Fatalf("canceled job resurrected to %s", st.State)
				}
				if st.StartedAt != nil {
					t.Fatalf("canceled job acquired a start time: %v", st.StartedAt)
				}
				time.Sleep(10 * time.Millisecond)
			}

			resp, err := h.ts.Client().Get(h.ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			text := string(body)
			if !strings.Contains(text, `idxmerged_jobs_total{state="canceled"} 1`) {
				t.Errorf("canceled metric != 1 (double-counted terminal transition):\n%s",
					grepLines(text, "idxmerged_jobs_total"))
			}
			if !strings.Contains(text, `idxmerged_jobs_total{state="done"} 1`) {
				t.Errorf("done metric != 1:\n%s", grepLines(text, "idxmerged_jobs_total"))
			}
		})
	}
}

// grepLines returns the lines of text containing substr.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestRunJobDoesNotResurrectJobCanceledDuringAcquire pins the exact
// interleaving behind the resurrection race deterministically: a job
// reaches a terminal state while its worker is parked in
// Session.acquire waiting for the session lock, and the lock then
// frees up. acquire's select can take the lock even though the job is
// already finished; runJob must notice and bail instead of flipping
// the job back to running.
func TestRunJobDoesNotResurrectJobCanceledDuringAcquire(t *testing.T) {
	m := &Manager{
		metrics: NewMetrics(),
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		jobs:    make(map[string]*Job),
	}
	sess := &Session{name: "s", lock: make(chan struct{}, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ran := make(chan struct{}, 1)
	j := &Job{
		id:      "job-x",
		kind:    "merge",
		session: sess,
		ctx:     ctx,
		cancel:  cancel,
		run: func(context.Context, *Job) (*JobResult, error) {
			ran <- struct{}{}
			return &JobResult{}, nil
		},
		state:     JobQueued,
		createdAt: time.Now(),
	}

	// Another job holds the session lock, so runJob parks in acquire.
	sess.lock <- struct{}{}
	go func() {
		// While the worker waits: the job reaches a terminal state
		// (as Manager.Cancel's queued branch does), then the lock owner
		// releases. Not canceling ctx forces acquire to take the lock —
		// the worst-case resolution of acquire's select race.
		time.Sleep(20 * time.Millisecond)
		j.mu.Lock()
		now := time.Now()
		j.state = JobCanceled
		j.errMsg = context.Canceled.Error()
		j.finishedAt = &now
		j.mu.Unlock()
		sess.release()
	}()

	m.runJob(j)

	select {
	case <-ran:
		t.Fatal("resurrected: run executed after the job was canceled")
	default:
	}
	st := j.Status()
	if st.State != string(JobCanceled) {
		t.Fatalf("state = %q, want %q", st.State, JobCanceled)
	}
	if st.StartedAt != nil {
		t.Fatalf("StartedAt = %v, want nil (job never ran)", st.StartedAt)
	}
	// The session lock must have been released on the bail-out path.
	if !sess.tryAcquire() {
		t.Fatal("session lock leaked by the terminal-state bail-out")
	}
	sess.release()
}

// TestCompressedJobMatchesDirectRun: a merge job under costmodel
// "compressed" must return the byte-identical payload of the same
// compressed merge through the facade (modulo wall clock), and its
// final configuration must equal the plain cost model's — the
// compression is exact. Compression stats surface at registration, in
// the job status mirror, and in /metrics.
func TestCompressedJobMatchesDirectRun(t *testing.T) {
	h := newTestServer(t, Config{})
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s", DB: fixtureDB(t)}, nil, http.StatusCreated)

	// Two constant-varied duplicates of fixture queries: 7 entries in 5
	// templates.
	dupSQL := fixtureSQL +
		"\nSELECT d, m1 FROM fact WHERE d BETWEEN DATE(300) AND DATE(320)" +
		"\nSELECT k, m3 FROM fact WHERE k = 99"
	var info WorkloadInfo
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: dupSQL}, &info, http.StatusCreated)
	if info.Queries != 7 || info.Templates != 5 {
		t.Fatalf("registration info = %+v, want 7 queries in 5 templates", info)
	}
	if got, want := info.DedupRatio, 7.0/5.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("dedup ratio = %v, want %v", got, want)
	}

	submit := func(costmodel string) MergeResultPayload {
		t.Helper()
		var resp SubmitJobResponse
		h.mustCall(t, "POST", "/v1/sessions/s/jobs", SubmitJobRequest{
			Workload: "w",
			Initial:  &InitialSpec{Indexes: fixtureIndexes},
			Options:  JobOptions{Constraint: 0.3, CostModel: costmodel},
		}, &resp, http.StatusAccepted)
		st := h.waitTerminal(t, resp.ID)
		if st.State != string(JobDone) {
			t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
		}
		if costmodel == "compressed" {
			// The status mirrors the compression stats for pollers.
			if st.Templates != 5 || st.DedupRatio <= 1 {
				t.Errorf("status compression mirror missing: %+v", st)
			}
		}
		var res JobResult
		h.mustCall(t, "GET", "/v1/jobs/"+resp.ID+"/result", nil, &res, http.StatusOK)
		if res.Merge == nil {
			t.Fatalf("result = %+v", res)
		}
		return *res.Merge
	}

	plain := submit("")
	comp := submit("compressed")
	if comp.Templates != 5 || comp.DedupRatio <= 1 || comp.CostTableHits+comp.CostTableMisses == 0 {
		t.Errorf("compressed payload stats missing: templates=%d dedup=%v hits=%d misses=%d",
			comp.Templates, comp.DedupRatio, comp.CostTableHits, comp.CostTableMisses)
	}
	gotFinal, _ := json.Marshal(comp.Final)
	wantFinal, _ := json.Marshal(plain.Final)
	if !bytes.Equal(gotFinal, wantFinal) {
		t.Errorf("compressed final diverged from plain:\n got: %s\nwant: %s", gotFinal, wantFinal)
	}

	// The second compressed run hits the registration-shared cost table:
	// the search re-prices atoms already in the table from memory.
	again := submit("compressed")
	if again.CostTableMisses != 0 || again.CostTableHits == 0 {
		t.Errorf("repeat run: hits=%d misses=%d, want all hits", again.CostTableHits, again.CostTableMisses)
	}

	// /metrics exposes the per-session compression series.
	req, _ := http.NewRequest("GET", h.ts.URL+"/metrics", nil)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		`idxmerged_workload_templates{session="s"} 5`,
		`idxmerged_costtable_entries{session="s"}`,
		`idxmerged_costtable_hits_total{session="s"}`,
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// TestGeneratedDuplicationCompresses: a generated workload with
// Duplication produces constant-varied duplicates that cluster into
// fewer templates than entries.
func TestGeneratedDuplicationCompresses(t *testing.T) {
	h := newTestServer(t, Config{})
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s", DB: fixtureDB(t)}, nil, http.StatusCreated)
	var info WorkloadInfo
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "gen", Generate: &GenerateSpec{Queries: 5, Seed: 11, Duplication: 40}},
		&info, http.StatusCreated)
	if info.Queries <= 5 {
		t.Fatalf("duplication produced no extra entries: %+v", info)
	}
	if info.Templates == 0 || info.DedupRatio <= 1 {
		t.Fatalf("duplicated workload did not compress: %+v", info)
	}
}

// TestWorkloadReplaceInvalidatesCostState: re-registering a workload
// name with Replace rebinds it to new queries and atomically
// invalidates every cost derived from the old ones — a job over the
// replaced workload recomputes (cost-table misses > 0) and matches a
// fresh session registered with the new queries from the start.
func TestWorkloadReplaceInvalidatesCostState(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "a")

	submit := func(session string) MergeResultPayload {
		var sub SubmitJobResponse
		h.mustCall(t, "POST", "/v1/sessions/"+session+"/jobs", SubmitJobRequest{
			Workload: "w",
			Initial:  &InitialSpec{Indexes: fixtureIndexes},
			Options:  JobOptions{Constraint: 0.3, CostModel: "compressed"},
		}, &sub, http.StatusAccepted)
		st := h.waitTerminal(t, sub.ID)
		if st.State != string(JobDone) {
			t.Fatalf("job %s = %s (%s), want done", sub.ID, st.State, st.Error)
		}
		var res JobResult
		h.mustCall(t, "GET", "/v1/jobs/"+sub.ID+"/result", nil, &res, http.StatusOK)
		if res.Merge == nil {
			t.Fatalf("job %s returned no merge payload", sub.ID)
		}
		return *res.Merge
	}

	if first := submit("a"); first.CostTableMisses == 0 {
		t.Fatal("first job hit no cost table; the fixture has no teeth")
	}

	// Rebind "w" to different queries. Without Replace this is a 409.
	h.mustCall(t, "POST", "/v1/sessions/a/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: driftSQL}, nil, http.StatusConflict)
	var info WorkloadInfo
	h.mustCall(t, "POST", "/v1/sessions/a/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: driftSQL, Replace: true}, &info, http.StatusCreated)
	if info.Queries != 4 {
		t.Fatalf("replaced workload info = %+v, want the 4 drift queries", info)
	}

	second := submit("a")
	if second.CostTableMisses == 0 {
		t.Fatal("job over the replaced workload was costed entirely from stale state")
	}

	// Reference: a fresh session whose "w" held the new queries from
	// the start must produce the byte-identical payload.
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "b", DB: fixtureDB(t)}, nil, http.StatusCreated)
	h.mustCall(t, "POST", "/v1/sessions/b/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: driftSQL}, nil, http.StatusCreated)
	fresh := submit("b")
	second.ElapsedSeconds, fresh.ElapsedSeconds = 0, 0
	gotJSON, _ := json.Marshal(second)
	wantJSON, _ := json.Marshal(fresh)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("replaced-workload job diverged from fresh session:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// TestSnapshotRefcountChurn: sessions over the same spec share one
// frozen snapshot, deleting the last holder evicts it, and repeated
// create/delete churn never accumulates resident snapshots.
func TestSnapshotRefcountChurn(t *testing.T) {
	h := newTestServer(t, Config{})
	db := fixtureDB(t)
	reg := h.srv.reg
	if n := reg.ResidentSnapshots(); n != 0 {
		t.Fatalf("fresh registry holds %d snapshots", n)
	}
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s1", DB: db}, nil, http.StatusCreated)
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "s2", DB: db}, nil, http.StatusCreated)
	if n := reg.ResidentSnapshots(); n != 1 {
		t.Fatalf("two same-spec sessions hold %d snapshots, want 1 shared", n)
	}
	if reg.SnapshotReuses() == 0 {
		t.Error("second same-spec session did not reuse the snapshot")
	}
	h.mustCall(t, "DELETE", "/v1/sessions/s1", nil, nil, http.StatusOK)
	if n := reg.ResidentSnapshots(); n != 1 {
		t.Fatalf("snapshot evicted while still referenced (resident %d)", n)
	}
	h.mustCall(t, "DELETE", "/v1/sessions/s2", nil, nil, http.StatusOK)
	if n := reg.ResidentSnapshots(); n != 0 {
		t.Fatalf("%d snapshots leaked after the last holder was deleted", n)
	}

	for i := 0; i < 8; i++ {
		h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{Name: "churn", DB: db}, nil, http.StatusCreated)
		if n := reg.ResidentSnapshots(); n != 1 {
			t.Fatalf("cycle %d: resident %d, want 1", i, n)
		}
		h.mustCall(t, "DELETE", "/v1/sessions/churn", nil, nil, http.StatusOK)
		if n := reg.ResidentSnapshots(); n != 0 {
			t.Fatalf("cycle %d: resident %d after delete, want 0", i, n)
		}
	}
}
