// Package quota implements per-tenant admission control for the
// advisor daemon: bounded live sessions, bounded queued+running jobs,
// a token-bucket rate limit on ingest statements, and a byte-accounted
// memory budget. The controller is pure accounting — it holds no
// references into sessions or jobs, so the server can rebuild its
// state exactly during journal replay by re-driving the same
// acquire/release sequence the original process performed.
//
// Every limit defaults to zero, meaning unlimited: a daemon started
// without -quota-* flags behaves exactly as before.
package quota

import (
	"fmt"
	"math"
	"sync"
	"time"

	"indexmerge/internal/faults"
)

// Limits configures per-tenant ceilings. Zero values mean unlimited.
type Limits struct {
	// MaxSessions bounds live (non-deleted) sessions per tenant.
	MaxSessions int
	// MaxJobs bounds queued+running jobs per tenant.
	MaxJobs int
	// IngestPerSec refills the per-tenant ingest token bucket at this
	// many statements per second.
	IngestPerSec float64
	// IngestBurst caps the bucket (defaults to IngestPerSec when unset
	// but rate-limited).
	IngestBurst float64
	// MemoryBytes bounds a tenant's byte-accounted footprint (windows,
	// cost tables, cost caches).
	MemoryBytes int64
}

// Verdict is one admission decision. A non-OK verdict carries the
// machine-readable fields the HTTP layer serializes into the 429 body:
// the quota that tripped, its limit, the tenant's current usage, and
// how long the caller should wait before retrying.
type Verdict struct {
	OK         bool
	Code       string // stable error code, e.g. "quota_sessions"
	Quota      string // human name of the quota dimension
	Limit      int64
	Current    int64
	RetryAfter time.Duration
}

func allow() Verdict { return Verdict{OK: true} }

// Usage is a point-in-time snapshot of one tenant's accounting, for
// metrics and status payloads.
type Usage struct {
	Tenant   string
	Sessions int
	Jobs     int
	// IngestShed counts statements rejected by the rate limiter.
	IngestShed int64
}

// tenant is one tenant's live accounting.
type tenant struct {
	sessions   int
	jobs       int
	tokens     float64
	last       time.Time
	ingestShed int64
}

// Controller tracks per-tenant usage against Limits. Safe for
// concurrent use. The zero value is not usable; call NewController.
type Controller struct {
	limits Limits
	now    func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenant
}

// NewController builds a controller over the given limits.
func NewController(l Limits) *Controller {
	if l.IngestPerSec > 0 && l.IngestBurst <= 0 {
		l.IngestBurst = l.IngestPerSec
	}
	return &Controller{
		limits:  l,
		now:     time.Now,
		tenants: make(map[string]*tenant),
	}
}

// SetClock overrides the controller's time source (tests only).
func (c *Controller) SetClock(now func() time.Time) { c.now = now }

// Limits returns the configured ceilings.
func (c *Controller) Limits() Limits { return c.limits }

func (c *Controller) tenantLocked(name string) *tenant {
	t := c.tenants[name]
	if t == nil {
		t = &tenant{tokens: c.limits.IngestBurst, last: c.now()}
		c.tenants[name] = t
	}
	return t
}

// shed converts an injected fault into a deterministic rejection: the
// chaos suite arms quota.admit / quota.memory with an error rule and
// every admission decision (or memory check) sheds.
func faultShed(p faults.Point, code, quota string) (Verdict, bool) {
	if err := faults.Inject(p); err != nil {
		return Verdict{
			Code:       code,
			Quota:      quota,
			RetryAfter: time.Second,
		}, true
	}
	return Verdict{}, false
}

// AcquireSession admits one new session for tenant, or explains why
// not. A successful acquire must be paired with ReleaseSession.
func (c *Controller) AcquireSession(name string) Verdict {
	if v, shed := faultShed(faults.QuotaAdmit, "quota_shed", "sessions"); shed {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantLocked(name)
	if c.limits.MaxSessions > 0 && t.sessions >= c.limits.MaxSessions {
		return Verdict{
			Code:       "quota_sessions",
			Quota:      "sessions",
			Limit:      int64(c.limits.MaxSessions),
			Current:    int64(t.sessions),
			RetryAfter: time.Second,
		}
	}
	t.sessions++
	return allow()
}

// ReleaseSession returns one session slot.
func (c *Controller) ReleaseSession(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.tenants[name]; t != nil && t.sessions > 0 {
		t.sessions--
	}
}

// AcquireJob admits one queued-or-running job for tenant. A successful
// acquire must be paired with exactly one ReleaseJob when the job
// reaches a terminal state.
func (c *Controller) AcquireJob(name string) Verdict {
	if v, shed := faultShed(faults.QuotaAdmit, "quota_shed", "jobs"); shed {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantLocked(name)
	if c.limits.MaxJobs > 0 && t.jobs >= c.limits.MaxJobs {
		return Verdict{
			Code:       "quota_jobs",
			Quota:      "jobs",
			Limit:      int64(c.limits.MaxJobs),
			Current:    int64(t.jobs),
			RetryAfter: time.Second,
		}
	}
	t.jobs++
	return allow()
}

// ReleaseJob returns one job slot.
func (c *Controller) ReleaseJob(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.tenants[name]; t != nil && t.jobs > 0 {
		t.jobs--
	}
}

// AllowIngest asks for n statements' worth of ingest tokens. On
// rejection, RetryAfter is the time until the bucket refills enough to
// admit the batch (capped at one minute so a batch larger than the
// burst still gets a finite hint).
func (c *Controller) AllowIngest(name string, n int) Verdict {
	if v, shed := faultShed(faults.QuotaAdmit, "quota_shed", "ingest"); shed {
		return v
	}
	if c.limits.IngestPerSec <= 0 {
		return allow()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenantLocked(name)
	now := c.now()
	t.tokens += now.Sub(t.last).Seconds() * c.limits.IngestPerSec
	if t.tokens > c.limits.IngestBurst {
		t.tokens = c.limits.IngestBurst
	}
	t.last = now
	need := float64(n)
	if t.tokens >= need {
		t.tokens -= need
		return allow()
	}
	t.ingestShed += int64(n)
	wait := (need - t.tokens) / c.limits.IngestPerSec
	retry := time.Duration(math.Ceil(wait)) * time.Second
	if retry > time.Minute {
		retry = time.Minute
	}
	if retry < time.Second {
		retry = time.Second
	}
	return Verdict{
		Code:       "quota_ingest_rate",
		Quota:      "ingest_rate",
		Limit:      int64(c.limits.IngestPerSec),
		Current:    int64(n),
		RetryAfter: retry,
	}
}

// RecordIngestShed charges n shed statements to a tenant's ingest-shed
// counter without consuming tokens — used when a batch is admitted by
// the rate limiter but then shed by the brownout ladder.
func (c *Controller) RecordIngestShed(name string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenantLocked(name).ingestShed += int64(n)
}

// CheckMemory verifies that a tenant currently holding current
// accounted bytes may grow. The caller supplies the measurement (the
// controller holds no session references); the check rejects once the
// tenant is at or over budget.
func (c *Controller) CheckMemory(name string, current int64) Verdict {
	if v, shed := faultShed(faults.QuotaMemory, "quota_memory", "memory_bytes"); shed {
		return v
	}
	if c.limits.MemoryBytes <= 0 || current < c.limits.MemoryBytes {
		return allow()
	}
	return Verdict{
		Code:       "quota_memory",
		Quota:      "memory_bytes",
		Limit:      c.limits.MemoryBytes,
		Current:    current,
		RetryAfter: time.Second,
	}
}

// UsageAll snapshots every tenant the controller has seen, sorted by
// nothing in particular; callers sort for stable output.
func (c *Controller) UsageAll() []Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Usage, 0, len(c.tenants))
	for name, t := range c.tenants {
		out = append(out, Usage{
			Tenant:     name,
			Sessions:   t.sessions,
			Jobs:       t.jobs,
			IngestShed: t.ingestShed,
		})
	}
	return out
}

// UsageFor snapshots one tenant (zero Usage if never seen).
func (c *Controller) UsageFor(name string) Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := Usage{Tenant: name}
	if t := c.tenants[name]; t != nil {
		u.Sessions = t.sessions
		u.Jobs = t.jobs
		u.IngestShed = t.ingestShed
	}
	return u
}

// String renders a verdict for logs.
func (v Verdict) String() string {
	if v.OK {
		return "ok"
	}
	return fmt.Sprintf("%s: limit=%d current=%d retry_after=%s",
		v.Code, v.Limit, v.Current, v.RetryAfter)
}
