package quota

import (
	"testing"
	"time"

	"indexmerge/internal/faults"
)

func TestSessionQuota(t *testing.T) {
	c := NewController(Limits{MaxSessions: 2})
	if v := c.AcquireSession("a"); !v.OK {
		t.Fatalf("first acquire rejected: %v", v)
	}
	if v := c.AcquireSession("a"); !v.OK {
		t.Fatalf("second acquire rejected: %v", v)
	}
	v := c.AcquireSession("a")
	if v.OK {
		t.Fatal("third acquire admitted past limit")
	}
	if v.Code != "quota_sessions" || v.Limit != 2 || v.Current != 2 {
		t.Fatalf("bad verdict: %+v", v)
	}
	if v.RetryAfter <= 0 {
		t.Fatal("rejection carries no Retry-After")
	}
	// Other tenants are unaffected.
	if v := c.AcquireSession("b"); !v.OK {
		t.Fatalf("tenant b rejected by tenant a's usage: %v", v)
	}
	c.ReleaseSession("a")
	if v := c.AcquireSession("a"); !v.OK {
		t.Fatalf("acquire after release rejected: %v", v)
	}
	// Release below zero must not underflow.
	c.ReleaseSession("never-seen")
	if u := c.UsageFor("never-seen"); u.Sessions != 0 {
		t.Fatalf("underflow: %+v", u)
	}
}

func TestJobQuota(t *testing.T) {
	c := NewController(Limits{MaxJobs: 1})
	if v := c.AcquireJob("a"); !v.OK {
		t.Fatalf("acquire rejected: %v", v)
	}
	if v := c.AcquireJob("a"); v.OK {
		t.Fatal("second job admitted past limit")
	} else if v.Code != "quota_jobs" {
		t.Fatalf("bad code: %+v", v)
	}
	c.ReleaseJob("a")
	if v := c.AcquireJob("a"); !v.OK {
		t.Fatalf("acquire after release rejected: %v", v)
	}
}

func TestIngestTokenBucket(t *testing.T) {
	c := NewController(Limits{IngestPerSec: 10, IngestBurst: 10})
	now := time.Unix(0, 0)
	c.SetClock(func() time.Time { return now })

	if v := c.AllowIngest("a", 10); !v.OK {
		t.Fatalf("burst rejected: %v", v)
	}
	v := c.AllowIngest("a", 5)
	if v.OK {
		t.Fatal("empty bucket admitted")
	}
	if v.Code != "quota_ingest_rate" || v.RetryAfter < time.Second {
		t.Fatalf("bad verdict: %+v", v)
	}
	// Half a second refills 5 tokens.
	now = now.Add(500 * time.Millisecond)
	if v := c.AllowIngest("a", 5); !v.OK {
		t.Fatalf("refilled bucket rejected: %v", v)
	}
	// Refill caps at the burst.
	now = now.Add(time.Hour)
	if v := c.AllowIngest("a", 11); v.OK {
		t.Fatal("admitted more than burst after long idle")
	}
	if u := c.UsageFor("a"); u.IngestShed != 16 {
		t.Fatalf("ingest shed count = %d, want 16", u.IngestShed)
	}
	// Unlimited controller always admits.
	free := NewController(Limits{})
	if v := free.AllowIngest("a", 1<<20); !v.OK {
		t.Fatalf("unlimited rejected: %v", v)
	}
}

func TestMemoryCheck(t *testing.T) {
	c := NewController(Limits{MemoryBytes: 1000})
	if v := c.CheckMemory("a", 999); !v.OK {
		t.Fatalf("under budget rejected: %v", v)
	}
	v := c.CheckMemory("a", 1000)
	if v.OK {
		t.Fatal("at budget admitted")
	}
	if v.Code != "quota_memory" || v.Limit != 1000 || v.Current != 1000 {
		t.Fatalf("bad verdict: %+v", v)
	}
	if v := NewController(Limits{}).CheckMemory("a", 1<<40); !v.OK {
		t.Fatal("unlimited memory rejected")
	}
}

func TestFaultInjection(t *testing.T) {
	defer faults.Reset()
	rules, err := faults.ParseRules("point=quota.admit,mode=error,count=1;point=quota.memory,mode=error,count=1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(rules...)

	c := NewController(Limits{})
	v := c.AcquireSession("a")
	if v.OK {
		t.Fatal("armed quota.admit did not shed")
	}
	if v.Code != "quota_shed" {
		t.Fatalf("bad code: %+v", v)
	}
	// count=1 exhausted: next admission passes.
	if v := c.AcquireSession("a"); !v.OK {
		t.Fatalf("exhausted rule still shedding: %v", v)
	}
	if v := c.CheckMemory("a", 0); v.OK {
		t.Fatal("armed quota.memory did not reject")
	} else if v.Code != "quota_memory" {
		t.Fatalf("bad code: %+v", v)
	}
}
