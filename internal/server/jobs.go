package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is a job's lifecycle state.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker (or the session lock).
	JobQueued JobState = "queued"
	// JobRunning: a worker holds the session lock and is searching.
	JobRunning JobState = "running"
	// JobDone: finished successfully; the result is retrievable.
	JobDone JobState = "done"
	// JobFailed: finished with an error other than cancellation.
	JobFailed JobState = "failed"
	// JobCanceled: canceled by the client (or server drain) before
	// completing. The session remains usable.
	JobCanceled JobState = "canceled"
	// JobDeadlineExceeded: the job's own timeout (JobOptions.TimeoutMS
	// or a propagated request deadline) expired before the search
	// finished. Distinct from canceled so clients can tell "I stopped
	// it" from "it ran out of time". The session remains usable and the
	// job's quota slot is freed.
	JobDeadlineExceeded JobState = "deadline_exceeded"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled || s == JobDeadlineExceeded
}

// Submission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull signals backpressure (429).
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining means the server is shutting down (503).
	ErrDraining = errors.New("server draining, not accepting jobs")
)

// Job is one asynchronous tune/merge run against a session.
type Job struct {
	id   string
	kind string
	// session is nil for jobs recovered from the journal (they are
	// terminal and never touch a worker); sessionName is always set
	// and is what Status reports.
	session     *Session
	sessionName string
	workload    string
	tenant      string

	ctx    context.Context
	cancel context.CancelFunc
	// timed marks a job running under its own deadline, so a
	// context.DeadlineExceeded maps to deadline_exceeded rather than
	// canceled.
	timed bool
	// release returns the job's tenant quota slot; releaseOnce guards it
	// so every terminal path (worker finish, queued cancel, drain) frees
	// the slot exactly once.
	release func()
	relOnce sync.Once

	// run executes the search. It must honor ctx.
	run func(ctx context.Context, j *Job) (*JobResult, error)

	mu       sync.Mutex
	state    JobState
	errMsg   string
	progress ProgressPayload
	allocs   int64 // process-wide Mallocs delta across the run; approximate
	result   *JobResult
	degraded bool // result carries the Degraded flag
	// Compression stats mirrored from a compressed-costmodel merge
	// result so pollers see them without fetching the payload.
	templates     int
	dedupRatio    float64
	costTableHits int64
	applied       bool // retune result auto-applied its recommendation
	recovered     bool // restored from the journal, not run by this process
	createdAt     time.Time
	startedAt     *time.Time
	finishedAt    *time.Time
}

// releaseOnce frees the job's quota slot (if any) exactly once.
func (j *Job) releaseOnce() {
	j.relOnce.Do(func() {
		if j.release != nil {
			j.release()
		}
	})
}

// setProgress publishes a search progress snapshot for polling.
// Progress is monotone: snapshots arriving after the job reached a
// terminal state, or reporting less work than already published, are
// dropped — a poller must never observe progress moving backwards.
func (j *Job) setProgress(p ProgressPayload) {
	j.mu.Lock()
	if j.state.terminal() ||
		p.CostEvaluations < j.progress.CostEvaluations ||
		p.Steps < j.progress.Steps {
		j.mu.Unlock()
		return
	}
	j.progress = p
	j.mu.Unlock()
}

// Status snapshots the job's pollable state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:            j.id,
		Kind:          j.kind,
		Session:       j.sessionName,
		Workload:      j.workload,
		Tenant:        j.tenant,
		State:         string(j.state),
		Error:         j.errMsg,
		Progress:      j.progress,
		Allocs:        j.allocs,
		CreatedAt:     j.createdAt,
		StartedAt:     j.startedAt,
		FinishedAt:    j.finishedAt,
		Degraded:      j.degraded,
		Recovered:     j.recovered,
		Templates:     j.templates,
		DedupRatio:    j.dedupRatio,
		CostTableHits: j.costTableHits,
		Applied:       j.applied,
	}
}

// Result returns the terminal payload, or ok=false while the job is
// still queued or running.
func (j *Job) Result() (*JobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		return nil, false
	}
	if j.result != nil {
		return j.result, true
	}
	return &JobResult{ID: j.id, State: string(j.state)}, true
}

// finish transitions to a terminal state exactly once.
func (j *Job) finish(state JobState, errMsg string, result *JobResult) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	now := time.Now()
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finishedAt = &now
	return true
}

// Manager owns the bounded worker pool and the job registry. Jobs on
// distinct sessions run in parallel (up to the worker count); jobs on
// one session are serialized by the session lock.
type Manager struct {
	queue    chan *Job
	queueCap int
	metrics  *Metrics
	log      *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool

	nextID atomic.Int64
	wg     sync.WaitGroup

	baseCtx   context.Context
	cancelAll context.CancelFunc

	// progressHook, when non-nil, is invoked synchronously after every
	// progress snapshot. Tests use it to pace searches deterministically.
	progressHook func(jobID string, p ProgressPayload)

	// onEnd, when non-nil, is invoked once per job after it reaches a
	// terminal state; the server journals the transition there.
	onEnd func(st JobStatus)
}

// NewManager starts workers goroutines consuming a queue of queueCap
// pending jobs. Submissions beyond running+queued capacity are
// rejected with ErrQueueFull.
func NewManager(workers, queueCap int, metrics *Metrics, log *slog.Logger) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if log == nil {
		log = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		queue:     make(chan *Job, queueCap),
		queueCap:  queueCap,
		metrics:   metrics,
		log:       log,
		jobs:      make(map[string]*Job),
		baseCtx:   ctx,
		cancelAll: cancel,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// SubmitOpts carries per-job admission metadata.
type SubmitOpts struct {
	// Tenant is surfaced in status payloads and metrics labels.
	Tenant string
	// Timeout, when positive, bounds the job's total queued+running
	// lifetime; expiry terminates the job with state deadline_exceeded.
	Timeout time.Duration
	// Release frees the tenant's job quota slot. The manager calls it
	// exactly once: when the job reaches a terminal state, or
	// immediately if submission is rejected.
	Release func()
}

// Submit registers and enqueues a job. kind and run are trusted (the
// handler validated the request already). On rejection opts.Release
// (if set) is invoked before returning.
func (m *Manager) Submit(kind string, sess *Session, workloadName string, opts SubmitOpts,
	run func(ctx context.Context, j *Job) (*JobResult, error)) (*Job, error) {

	var jctx context.Context
	var jcancel context.CancelFunc
	if opts.Timeout > 0 {
		jctx, jcancel = context.WithTimeout(m.baseCtx, opts.Timeout)
	} else {
		jctx, jcancel = context.WithCancel(m.baseCtx)
	}
	j := &Job{
		id:          fmt.Sprintf("job-%d", m.nextID.Add(1)),
		kind:        kind,
		session:     sess,
		sessionName: sess.name,
		workload:    workloadName,
		tenant:      opts.Tenant,
		ctx:         jctx,
		cancel:      jcancel,
		timed:       opts.Timeout > 0,
		release:     opts.Release,
		run:         run,
		state:       JobQueued,
		createdAt:   time.Now(),
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		jcancel()
		j.releaseOnce()
		return nil, ErrDraining
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
		m.metrics.jobsSubmitted.Add(1)
		return j, nil
	default:
		m.mu.Unlock()
		jcancel()
		j.releaseOnce()
		m.metrics.jobsRejected.Add(1)
		return nil, ErrQueueFull
	}
}

// QueueDepth reports how many jobs are waiting for a worker, and the
// queue's capacity — the queue-pressure inputs to the brownout ladder.
func (m *Manager) QueueDepth() (queued, cap int) {
	return len(m.queue), m.queueCap
}

// Get looks up a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job's status in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation. A queued job transitions to canceled
// immediately; a running job's context is canceled and the search
// stops at its next cancellation point. Canceling a terminal job is a
// no-op. Returns the post-cancel status.
func (m *Manager) Cancel(id string) (JobStatus, bool) {
	j, ok := m.Get(id)
	if !ok {
		return JobStatus{}, false
	}
	j.cancel()
	j.mu.Lock()
	if j.state == JobQueued {
		// Finish immediately; the worker skips it when it drains off
		// the queue. A running job is finished by its worker once the
		// search observes the canceled context.
		now := time.Now()
		j.state = JobCanceled
		j.errMsg = context.Canceled.Error()
		j.finishedAt = &now
		j.mu.Unlock()
		j.releaseOnce()
		m.metrics.observeJobEnd(JobCanceled, 0, 0, 0)
		if m.onEnd != nil {
			m.onEnd(j.Status())
		}
	} else {
		j.mu.Unlock()
	}
	return j.Status(), true
}

// Gauges counts non-terminal jobs for the metrics scrape.
func (m *Manager) Gauges() JobGauges {
	var g JobGauges
	for _, st := range m.List() {
		switch JobState(st.State) {
		case JobQueued:
			g.Queued++
		case JobRunning:
			g.Running++
		}
	}
	return g
}

// Drain stops accepting jobs, then waits for queued+running jobs to
// finish. If ctx expires first, every remaining job is canceled and
// Drain waits for the (now fast) wind-down before returning ctx's
// error.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.queue)
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.cancelAll()
		<-done
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// abortState maps a context error to the job's terminal state: a timed
// job whose own deadline expired is deadline_exceeded; everything else
// (client cancel, server drain) is canceled.
func (j *Job) abortState(err error) JobState {
	if j.timed && errors.Is(err, context.DeadlineExceeded) {
		return JobDeadlineExceeded
	}
	return JobCanceled
}

func (m *Manager) runJob(j *Job) {
	// Every exit path frees the job's quota slot (idempotent; Cancel may
	// have released a queued job already).
	defer j.releaseOnce()

	// Skip jobs canceled while queued.
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	// Serialize per session: wait for the session lock, abandoning the
	// wait if the job is canceled (or its deadline expires) first.
	if err := j.session.acquire(j.ctx); err != nil {
		state := j.abortState(err)
		if j.finish(state, err.Error(), nil) {
			m.metrics.observeJobEnd(state, 0, 0, 0)
			if m.onEnd != nil {
				m.onEnd(j.Status())
			}
		}
		m.log.Info("job aborted while queued", "job", j.id,
			"session", j.session.name, "state", string(state))
		return
	}
	defer j.session.release()

	if j.session.deleted.Load() {
		if j.finish(JobFailed, "session deleted", nil) {
			m.metrics.observeJobEnd(JobFailed, 0, 0, 0)
		}
		return
	}

	// Transition Queued → Running under the lock, and only if the job
	// is still live. Cancel may have finished the job while this worker
	// waited for the session lock (acquire can win its select even with
	// a canceled context); overwriting that terminal state here would
	// resurrect a canceled job — state regressing to "running", a
	// second terminal transition, and double-counted metrics.
	now := time.Now()
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.startedAt = &now
	j.mu.Unlock()
	m.log.Info("job started", "job", j.id, "kind", j.kind,
		"session", j.session.name, "workload", j.workload)

	// Bracket the run with allocation counters. The delta is process-
	// wide (concurrent jobs and HTTP requests inflate it), so it is an
	// approximate efficiency signal rather than an exact attribution.
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	result, err := m.safeRun(j)
	elapsed := time.Since(now).Seconds()

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	allocs := int64(msAfter.Mallocs - msBefore.Mallocs)
	j.mu.Lock()
	j.allocs = allocs
	j.mu.Unlock()

	var state JobState
	switch {
	case err == nil:
		state = JobDone
		result.ID = j.id
		result.State = string(JobDone)
		if mp := result.Merge; mp != nil {
			j.mu.Lock()
			j.degraded = mp.Degraded
			j.templates = mp.Templates
			j.dedupRatio = mp.DedupRatio
			j.costTableHits = mp.CostTableHits
			j.mu.Unlock()
			m.metrics.costingRetries.Add(mp.Retries)
			m.metrics.costingDegraded.Add(mp.DegradedChecks)
			m.metrics.costingPanics.Add(mp.PanicsRecovered)
			if mp.Degraded {
				m.metrics.degradedJobs.Add(1)
			}
		}
		if rp := result.Retune; rp != nil {
			j.mu.Lock()
			j.applied = rp.Applied
			j.mu.Unlock()
		}
		j.finish(JobDone, "", result)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = j.abortState(err)
		j.finish(state, err.Error(), nil)
	default:
		state = JobFailed
		j.finish(JobFailed, err.Error(), nil)
	}

	st := j.Status()
	m.metrics.observeJobEnd(state, elapsed, st.Progress.OptimizerCalls, st.Progress.CostEvaluations)
	m.metrics.jobAllocs.Add(allocs)
	if m.onEnd != nil {
		m.onEnd(st)
	}
	m.log.Info("job finished", "job", j.id, "state", string(state),
		"elapsed_s", elapsed, "steps", st.Progress.Steps,
		"saved_bytes", st.Progress.SavedBytes, "error", st.Error)
}

// safeRun executes the job closure, converting a panic into an error
// so one poisoned search marks its job failed (with the stack in the
// error) instead of killing the worker — and with it the process.
func (m *Manager) safeRun(j *Job) (result *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.metrics.workerPanics.Add(1)
			stack := debug.Stack()
			m.log.Error("job panicked", "job", j.id, "panic", fmt.Sprint(r))
			result, err = nil, fmt.Errorf("job panicked: %v\n%s", r, stack)
		}
	}()
	return j.run(j.ctx, j)
}

// RecoverJob restores a terminal job record from the journal: it is
// pollable (status, result stub) but was not run by this process. The
// numeric suffix of its ID raises the ID floor so post-restart jobs
// can never collide with pre-crash ones.
func (m *Manager) RecoverJob(id, kind, sessionName, workloadName string, state JobState, errMsg string, createdAt time.Time) {
	if !state.terminal() {
		state = JobFailed
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	now := time.Now()
	if createdAt.IsZero() {
		createdAt = now
	}
	j := &Job{
		id:          id,
		kind:        kind,
		sessionName: sessionName,
		workload:    workloadName,
		ctx:         ctx,
		cancel:      cancel,
		state:       state,
		errMsg:      errMsg,
		recovered:   true,
		createdAt:   createdAt,
		finishedAt:  &now,
	}
	m.mu.Lock()
	if _, ok := m.jobs[id]; !ok {
		m.jobs[id] = j
		m.order = append(m.order, id)
	}
	m.mu.Unlock()
	if n, ok := parseJobID(id); ok {
		for {
			cur := m.nextID.Load()
			if n <= cur || m.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
}

// parseJobID extracts the numeric suffix of a "job-N" ID.
func parseJobID(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
