package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"indexmerge"
	"indexmerge/internal/advisor"
	"indexmerge/internal/catalog"
	"indexmerge/internal/distrib"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/server/quota"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

// Config tunes a Server.
type Config struct {
	// Workers is the job worker pool size (default 2). Jobs on distinct
	// sessions run in parallel up to this bound.
	Workers int
	// QueueCap bounds pending jobs (default 8); submissions beyond it
	// get 429.
	QueueCap int
	// CacheMaxEntries bounds each session's what-if cost cache
	// (default 1 << 20 entries; <= 0 means unbounded).
	CacheMaxEntries int
	// Logger receives structured request and job logs (default
	// slog.Default()).
	Logger *slog.Logger
	// JournalPath, when non-empty, enables the durable session/job
	// journal: state-changing requests are appended (fsynced) to this
	// JSONL file, and on startup the file is replayed — sessions and
	// workloads are rebuilt deterministically, terminal jobs reappear
	// as pollable records, and jobs interrupted by a crash are marked
	// failed with an explicit recovery reason.
	JournalPath string
	// CostWorkers lists what-if worker base URLs (cmd/idxmergew
	// processes serving the same database specs as this server's
	// sessions). When set, merge jobs batch cache-missed costings to
	// the pool; results are byte-identical at any worker count and any
	// worker failure falls back to local costing.
	CostWorkers []string
	// Continuous holds the server-level defaults for continuous
	// sessions (flag-configurable); a session's own spec overrides them
	// field by field.
	Continuous ContinuousSpec
	// Quota sets per-tenant admission limits (zero fields = unlimited).
	Quota quota.Limits
	// MemoryBudgetBytes is the GLOBAL byte-accounted memory budget
	// (windows + cost tables + cost caches, summed over every session)
	// that drives the brownout ladder: pressure >= 75% of it shrinks
	// windows and evicts cold cost state, >= 90% forces compressed
	// costing and sheds ingest/retunes, >= 97% rejects new work.
	// <= 0 disables memory-driven brownout (queue pressure still
	// applies).
	MemoryBudgetBytes int64
}

// Server is the idxmerged HTTP API: sessions, workloads, synchronous
// what-if costing, and asynchronous tune/merge jobs.
type Server struct {
	reg     *Registry
	jobs    *Manager
	metrics *Metrics
	log     *slog.Logger
	mux     *http.ServeMux
	journal *Journal
	pool    *distrib.Pool // nil without Config.CostWorkers

	// memBudget is the global accounted-memory budget behind the
	// brownout ladder (<= 0 = no memory pressure); stage is the
	// currently active brownout stage (0 = healthy), recomputed at
	// every admission point.
	memBudget int64
	stage     atomic.Int32
}

// New assembles a server and starts its worker pool. With a journal
// configured, the existing journal (if any) is replayed before the
// server accepts traffic, then kept open for appending; a journal
// that cannot be opened or replayed fails construction.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 8
	}
	if cfg.CacheMaxEntries == 0 {
		cfg.CacheMaxEntries = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	var pool *distrib.Pool
	if len(cfg.CostWorkers) > 0 {
		pool = distrib.NewPool(cfg.CostWorkers, distrib.Options{})
	}
	s := &Server{
		reg:       NewRegistry(cfg.CacheMaxEntries, pool, cfg.Continuous, quota.NewController(cfg.Quota)),
		metrics:   NewMetrics(),
		log:       cfg.Logger,
		mux:       http.NewServeMux(),
		pool:      pool,
		memBudget: cfg.MemoryBudgetBytes,
	}
	s.jobs = NewManager(cfg.Workers, cfg.QueueCap, s.metrics, s.log)

	if cfg.JournalPath != "" {
		if err := s.recoverFromJournal(cfg.JournalPath); err != nil {
			return nil, err
		}
		jr, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jr
		s.jobs.onEnd = func(st JobStatus) {
			s.journalAppend(journalEvent{T: evJobEnd, JobID: st.ID, State: st.State, Error: st.Error})
		}
	}

	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /v1/sessions", s.handleCreateSession)
	s.handle("GET /v1/sessions", s.handleListSessions)
	s.handle("GET /v1/sessions/{name}", s.handleGetSession)
	s.handle("DELETE /v1/sessions/{name}", s.handleDeleteSession)
	s.handle("POST /v1/sessions/{name}/workloads", s.handleRegisterWorkload)
	s.handle("GET /v1/sessions/{name}/workloads", s.handleListWorkloads)
	s.handle("POST /v1/sessions/{name}/cost", s.handleCost)
	s.handle("POST /v1/sessions/{name}/ingest", s.handleIngest)
	s.handle("POST /v1/sessions/{name}/retune", s.handleRetune)
	s.handle("POST /v1/sessions/{name}/jobs", s.handleSubmitJob)
	s.handle("GET /v1/jobs", s.handleListJobs)
	s.handle("GET /v1/jobs/{id}", s.handleGetJob)
	s.handle("POST /v1/jobs/{id}/cancel", s.handleCancelJob)
	s.handle("GET /v1/jobs/{id}/result", s.handleJobResult)
	return s, nil
}

// journalAppend writes one event, logging (not failing) on error:
// losing durability degrades a future recovery, not this request.
func (s *Server) journalAppend(ev journalEvent) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(ev); err != nil {
		s.log.Error("journal append failed", "event", ev.T, "err", err)
	}
}

// recoverFromJournal rebuilds registry and job state from a previous
// process's journal. Sessions are recreated deterministically from
// their creation requests, workloads re-parsed or re-generated, and
// job records restored: jobs with a terminal event reappear as-is
// (result payloads are not journaled; their result endpoint serves a
// state stub), jobs without one are marked failed with a recovery
// reason. Replayed state is not re-journaled — the file already
// contains it.
func (s *Server) recoverFromJournal(path string) error {
	events, err := ReadJournal(path)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return nil
	}
	type jobRec struct {
		ev  journalEvent
		end *journalEvent
	}
	jobs := make(map[string]*jobRec)
	var jobOrder []string
	var sessions, workloads int
	// contSession resolves the continuous session an event targets;
	// missing sessions (creation failed on replay) are logged and
	// skipped, matching workload replay.
	contSession := func(ev journalEvent) *Session {
		sess, ok := s.reg.Get(ev.SessionName)
		if !ok || sess.cont == nil {
			s.log.Error("journal replay: continuous event for missing session",
				"event", ev.T, "session", ev.SessionName)
			return nil
		}
		return sess
	}
	for _, ev := range events {
		switch ev.T {
		case evSession:
			if ev.Session == nil {
				continue
			}
			if _, err := s.reg.Create(*ev.Session); err != nil {
				if !errors.Is(err, ErrSessionExists) {
					s.log.Error("journal replay: recreate session failed",
						"session", ev.Session.Name, "err", err)
				}
				continue
			}
			sessions++
		case evSessionDeleted:
			_ = s.reg.Delete(ev.SessionName)
		case evWorkload:
			if ev.Workload == nil {
				continue
			}
			sess, ok := s.reg.Get(ev.SessionName)
			if !ok {
				continue
			}
			wl, err := buildWorkload(sess, ev.Workload.SQL, ev.Workload.Generate)
			if err != nil {
				s.log.Error("journal replay: rebuild workload failed",
					"session", ev.SessionName, "workload", ev.Workload.Name, "err", err)
				continue
			}
			if err := sess.RegisterWorkload(ev.Workload.Name, wl, ev.Workload.Replace); err != nil {
				if !errors.Is(err, ErrWorkloadExists) {
					s.log.Error("journal replay: register workload failed",
						"session", ev.SessionName, "workload", ev.Workload.Name, "err", err)
				}
				continue
			}
			workloads++
		case evJob:
			if ev.JobID == "" {
				continue
			}
			if _, ok := jobs[ev.JobID]; !ok {
				jobs[ev.JobID] = &jobRec{ev: ev}
				jobOrder = append(jobOrder, ev.JobID)
			}
		case evJobEnd:
			if r, ok := jobs[ev.JobID]; ok {
				end := ev
				r.end = &end
			}
		case evIngest:
			sess := contSession(ev)
			if sess == nil || ev.Ingest == nil {
				continue
			}
			// Re-parse and re-fold: the window's seeded reservoir makes
			// this reproduce the exact pre-crash member sets. The
			// observed-cost guardrail is NOT re-run — its outcomes are
			// separate journal events.
			items, err := prepareIngest(sess, *ev.Ingest)
			if err != nil {
				s.log.Error("journal replay: rebuild ingest batch failed",
					"session", ev.SessionName, "batch", ev.Batch, "err", err)
				continue
			}
			sess.cont.window.Ingest(items)
		case evAge:
			if sess := contSession(ev); sess != nil {
				sess.cont.window.Age()
			}
		case evShrink:
			// Replay the brownout window shrink at the same point in the
			// fold sequence it happened live, so the seeded reservoirs
			// walk the identical sampling path afterwards.
			if sess := contSession(ev); sess != nil {
				sess.cont.window.Shrink(ev.Bound)
			}
		case evApply:
			sess := contSession(ev)
			if sess == nil {
				continue
			}
			defs, err := resolveDefs(sess, ev.Indexes)
			if err != nil {
				s.log.Error("journal replay: resolve applied indexes failed",
					"session", ev.SessionName, "err", err)
				continue
			}
			c := sess.cont
			h := c.window.FingerprintHash()
			c.mu.Lock()
			c.prevApplied = c.applied
			c.applied = &appliedConfig{defs: defs, est: ev.Est, at: ev.At}
			c.lastFPHash = h
			c.mu.Unlock()
			c.applies.Add(1)
		case evRollback:
			sess := contSession(ev)
			if sess == nil {
				continue
			}
			c := sess.cont
			var restored *appliedConfig
			if len(ev.Indexes) > 0 {
				defs, err := resolveDefs(sess, ev.Indexes)
				if err != nil {
					s.log.Error("journal replay: resolve rollback indexes failed",
						"session", ev.SessionName, "err", err)
					continue
				}
				restored = &appliedConfig{defs: defs, est: ev.Est, at: ev.At}
			}
			c.mu.Lock()
			c.applied = restored
			c.prevApplied = nil
			c.lastFPHash = 0
			c.lastRatio = ev.Ratio
			c.mu.Unlock()
			c.rollbacks.Add(1)
		default:
			// An event type this binary does not know is a state
			// transition it cannot reconstruct; replaying around it would
			// silently resurrect a different history than the one the
			// journal acknowledged.
			return fmt.Errorf("journal %s: unknown event type %q (record version %d, binary supports %d); refusing partial replay",
				path, ev.T, ev.V, journalVersion)
		}
	}
	interrupted := 0
	for _, id := range jobOrder {
		r := jobs[id]
		state := JobFailed
		errMsg := "interrupted by server restart; recovered from journal"
		if r.end != nil {
			state = JobState(r.end.State)
			errMsg = r.end.Error
		} else {
			interrupted++
		}
		s.jobs.RecoverJob(id, r.ev.Kind, r.ev.SessionName, r.ev.WorkloadName, state, errMsg, r.ev.At)
	}
	s.metrics.recoveredSessions.Add(int64(sessions))
	s.metrics.recoveredJobs.Add(int64(len(jobOrder)))
	s.metrics.recoveredInterrupted.Add(int64(interrupted))
	// Recovered continuous sessions resume their background re-tuners.
	for _, sess := range s.reg.List() {
		s.startContinuous(sess)
	}
	s.log.Info("journal replayed", "path", path, "sessions", sessions,
		"workloads", workloads, "jobs", len(jobOrder), "interrupted", interrupted)
	return nil
}

// Handler returns the root handler (request logging + metrics wrap
// every route).
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for in-flight ones; see
// Manager.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// handle registers a route, wrapping it with request logging and
// per-route metrics. pattern is a Go 1.22 "METHOD /path/{wildcard}"
// mux pattern, also used as the metrics route label.
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				// A panicking handler answers 500 (when nothing was
				// written yet) and the process keeps serving.
				s.metrics.handlerPanics.Add(1)
				s.log.Error("handler panicked", "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError, "internal error")
				}
			}
			elapsed := time.Since(start)
			s.metrics.observeRequest(pattern, rec.code, elapsed.Seconds())
			if pattern != "GET /healthz" && pattern != "GET /metrics" {
				s.log.Info("request", "method", r.Method, "path", r.URL.Path,
					"status", rec.code, "elapsed_ms", float64(elapsed.Microseconds())/1000)
			}
		}()
		fn(rec, r)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps JSON request bodies (1 MiB); larger bodies fail
// decoding with a *http.MaxBytesError instead of buffering unbounded
// client input.
const maxBodyBytes = 1 << 20

// decodeJSON parses a request body strictly: unknown fields, trailing
// garbage and oversized bodies are 400s, surfacing client mistakes
// early.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return errors.New("unexpected data after JSON body")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	gauges := make([]SessionGauges, len(sessions))
	for i, sess := range sessions {
		gauges[i] = sess.gauges()
	}
	var pg *PoolGauges
	if s.pool != nil {
		st := s.pool.PoolStats()
		pg = &PoolGauges{
			Workers: st.Workers, Healthy: st.Healthy, Batches: st.Batches,
			Items: st.Items, RPCs: st.RPCs, RPCErrors: st.RPCErrors, Hedges: st.Hedges,
		}
	}
	og := &OverloadGauges{
		BrownoutStage:  int(s.stage.Load()),
		AccountedBytes: s.reg.totalBytes(),
		MemoryBudget:   s.memBudget,
		Tenants:        s.reg.tenantGauges(),
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Write(w, s.jobs.Gauges(), gauges, pg, og, s.reg.SnapshotReuses(), s.reg.ResidentSnapshots())
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	// Resolve tenant identity before anything is journaled, so replay
	// sees the same owner the live decision used.
	if claimed := requestTenant(r); claimed != "" {
		if req.Tenant == "" {
			req.Tenant = claimed
		} else if req.Tenant != claimed {
			writeErr(w, http.StatusBadRequest,
				"tenant mismatch: body says %q, X-Tenant header says %q", req.Tenant, claimed)
			return
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if stage := s.evalBrownout(); stage >= 3 {
		s.writeBrownout(w, tenant, stage, "session creation")
		return
	}
	sess, err := s.reg.Create(req)
	var qe *quotaError
	switch {
	case errors.As(err, &qe):
		s.writeQuotaErr(w, qe.tenant, qe.v)
	case errors.Is(err, ErrSessionExists):
		writeErr(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
	default:
		s.journalAppend(journalEvent{T: evSession, Session: &req})
		s.startContinuous(sess)
		writeJSON(w, http.StatusCreated, sess.Info())
	}
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	out := make([]SessionInfo, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.Info()
	}
	writeJSON(w, http.StatusOK, out)
}

// session resolves the {name} path wildcard, writing a 404 on miss.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	sess, ok := s.reg.Get(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "session %q not found", r.PathValue("name"))
		return nil, false
	}
	return sess, true
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.reg.Get(r.PathValue("name")); ok && !s.checkTenant(w, r, sess) {
		return
	}
	err := s.reg.Delete(r.PathValue("name"))
	switch {
	case errors.Is(err, ErrSessionNotFound):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrSessionBusy):
		writeErr(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		s.journalAppend(journalEvent{T: evSessionDeleted, SessionName: r.PathValue("name")})
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	}
}

func (s *Server) handleRegisterWorkload(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if !s.checkTenant(w, r, sess) {
		return
	}
	if stage := s.evalBrownout(); stage >= 3 {
		s.writeBrownout(w, sess.tenant, stage, "workload registration")
		return
	}
	if v := s.reg.Quota().CheckMemory(sess.tenant, s.reg.tenantBytes(sess.tenant)); !v.OK {
		s.writeQuotaErr(w, sess.tenant, v)
		return
	}
	var req RegisterWorkloadRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if !validName(req.Name) {
		writeErr(w, http.StatusBadRequest, "invalid workload name %q (want [A-Za-z0-9_-]{1,64})", req.Name)
		return
	}
	wl, err := buildWorkload(sess, req.SQL, req.Generate)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sess.RegisterWorkload(req.Name, wl, req.Replace); err != nil {
		if errors.Is(err, ErrWorkloadExists) {
			writeErr(w, http.StatusConflict, "%v", err)
		} else {
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.journalAppend(journalEvent{T: evWorkload, SessionName: sess.name, Workload: &req})
	info := WorkloadInfo{Name: req.Name, Queries: wl.Len()}
	if rw, ok := sess.workloadEntry(req.Name); ok && rw.compressed != nil {
		info.Templates = len(rw.compressed.C.Templates)
		info.DedupRatio = rw.compressed.C.DedupRatio()
	}
	writeJSON(w, http.StatusCreated, info)
}

// buildWorkload materializes a batch of statements against a session:
// parsing inline SQL or generating from a spec. Shared by workload
// registration, ingest batches and journal replay, so a replayed
// batch is built by the exact code path that built the original.
func buildWorkload(sess *Session, sqlText string, gen *GenerateSpec) (*sql.Workload, error) {
	if (sqlText == "") == (gen == nil) {
		return nil, errors.New("exactly one of sql or generate is required")
	}
	var wl *sql.Workload
	var err error
	if sqlText != "" {
		wl, err = sql.ParseWorkload(strings.NewReader(sqlText), sess.db.Schema())
		if err != nil {
			return nil, fmt.Errorf("parse workload: %w", err)
		}
	} else {
		spec := *gen
		if spec.Queries <= 0 {
			spec.Queries = 30
		}
		class := workload.Complex
		switch spec.Class {
		case "", "complex":
		case "projection":
			class = workload.ProjectionOnly
		default:
			return nil, fmt.Errorf("unknown workload class %q (want complex or projection)", spec.Class)
		}
		wl, err = workload.Generate(sess.db, workload.Options{
			Class: class, Queries: spec.Queries, Seed: spec.Seed,
			Duplication: spec.Duplication, Disjunctions: spec.Disjunctions,
		})
		if err != nil {
			return nil, fmt.Errorf("generate workload: %w", err)
		}
	}
	if wl.Len() == 0 {
		return nil, errors.New("workload is empty")
	}
	return wl, nil
}

func (s *Server) handleListWorkloads(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.session(w, r); ok {
		writeJSON(w, http.StatusOK, sess.WorkloadInfos())
	}
}

// resolveDefs validates wire index definitions against the session's
// schema.
func resolveDefs(sess *Session, payloads []IndexDefPayload) ([]catalog.IndexDef, error) {
	defs := make([]catalog.IndexDef, len(payloads))
	for i, p := range payloads {
		def, err := catalog.NewIndexDef(sess.db.Schema(), p.Name, p.Table, p.Columns)
		if err != nil {
			return nil, fmt.Errorf("index %d: %w", i, err)
		}
		defs[i] = def
	}
	return defs, nil
}

// handleCost answers a synchronous what-if costing request: the
// optimizer-estimated Cost(W, C) for an arbitrary configuration. It
// runs concurrently with jobs — the costing read path is safe to
// share and the request does not take the session's job slot.
func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if !s.checkTenant(w, r, sess) {
		return
	}
	// Sync costing is the first load shed: it is cheap for the client
	// to retry and every call burns optimizer CPU the job queue needs.
	if stage := s.evalBrownout(); stage >= 1 {
		s.writeBrownout(w, sess.tenant, stage, "synchronous costing")
		return
	}
	var req CostRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	rw, ok := sess.workloadEntry(req.Workload)
	if !ok {
		writeErr(w, http.StatusNotFound, "workload %q not found", req.Workload)
		return
	}
	defs, err := resolveDefs(sess, req.Indexes)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Cost through the descriptors prepared at registration: no AST
	// re-walk or histogram probing per request, identical totals — the
	// per-query loop mirrors optimizer.WorkloadCostPrepared exactly,
	// with a cancellation check between queries so an abandoned request
	// (client disconnect) stops burning optimizer calls mid-workload.
	ctx := r.Context()
	o := optimizer.New(sess.db)
	cfg := optimizer.Configuration(defs)
	total, costed := 0.0, 0
	for i, q := range rw.prepared.W.Queries {
		if ctx.Err() != nil {
			s.metrics.requestsAbandoned.Add(1)
			s.log.Info("cost request abandoned by client", "session", sess.name,
				"workload", req.Workload, "costed", costed, "of", len(rw.prepared.W.Queries))
			writeErr(w, statusClientClosedRequest, "client closed request")
			return
		}
		c, err := o.CostPrepared(rw.prepared.Queries[i], cfg)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "cost: %v", err)
			return
		}
		total += c * q.Freq
		costed++
	}
	sess.preparedReuse.Add(1)
	s.metrics.optimizerCalls.Add(int64(len(rw.w.Queries)))
	writeJSON(w, http.StatusOK, CostResponse{Cost: total})
}

// statusClientClosedRequest is the nginx-convention status for a
// request abandoned by its client before the response was written;
// nothing standard fits (the client is gone either way).
const statusClientClosedRequest = 499

// handleIngest streams one statement batch into a continuous
// session's workload window. The whole batch parses and prepares
// before anything folds (a bad batch is a clean 400, nothing
// mutated); the fold is journaled; then the observed-cost guardrail
// runs against the applied configuration.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if !s.checkTenant(w, r, sess) {
		return
	}
	if sess.cont == nil {
		writeErr(w, http.StatusBadRequest, "session %q is not continuous (create it with a continuous block)", sess.name)
		return
	}
	var req IngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	items, err := prepareIngest(sess, req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission: the per-tenant statement-rate bucket and memory budget
	// gate the fold. Rate is charged per statement, not per batch, so a
	// tenant cannot dodge its quota by batching harder.
	if v := s.reg.Quota().AllowIngest(sess.tenant, len(items)); !v.OK {
		s.writeQuotaErr(w, sess.tenant, v)
		return
	}
	if v := s.reg.Quota().CheckMemory(sess.tenant, s.reg.tenantBytes(sess.tenant)); !v.OK {
		s.writeQuotaErr(w, sess.tenant, v)
		return
	}
	// Stage >= 2 sheds the fold but NOT the guardrail: the batch's
	// observed costs still feed rollback protection (a 200 with
	// shed=true, nothing journaled).
	shed := s.evalBrownout() >= 2
	if shed {
		s.metrics.observeShed("brownout_ingest", sess.tenant)
	}
	writeJSON(w, http.StatusOK, s.contIngest(sess, req, items, shed))
}

// handleRetune submits one on-demand re-tune cycle (the same cycle
// the background ticker runs) as an asynchronous job.
func (s *Server) handleRetune(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if !s.checkTenant(w, r, sess) {
		return
	}
	if sess.cont == nil {
		writeErr(w, http.StatusBadRequest, "session %q is not continuous (create it with a continuous block)", sess.name)
		return
	}
	job, err := s.submitRetune(sess)
	var be *brownoutError
	var qe *quotaError
	switch {
	case errors.As(err, &be):
		s.writeBrownout(w, sess.tenant, be.stage, be.what)
	case errors.As(err, &qe):
		s.writeQuotaErr(w, qe.tenant, qe.v)
	case errors.Is(err, ErrQueueFull):
		s.writeQueueFull(w, sess.tenant, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, SubmitJobResponse{ID: job.id, State: string(JobQueued)})
	}
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	if !s.checkTenant(w, r, sess) {
		return
	}
	stage := s.evalBrownout()
	if stage >= 3 {
		s.writeBrownout(w, sess.tenant, stage, "job submission")
		return
	}
	var req SubmitJobRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = "merge"
	}
	if kind != "merge" && kind != "tune" {
		writeErr(w, http.StatusBadRequest, "unknown job kind %q (want merge or tune)", kind)
		return
	}
	rw, ok := sess.workloadEntry(req.Workload)
	if !ok {
		writeErr(w, http.StatusNotFound, "workload %q not found", req.Workload)
		return
	}
	// Stage >= 2 forces the compressed cost model on jobs that would run
	// the full optimizer model. Compressed costing is exact with
	// recommendation parity, so results stay byte-identical — the
	// brownout trades optimizer calls, not quality.
	if stage >= 2 && (req.Options.CostModel == "" || req.Options.CostModel == "opt") {
		req.Options.CostModel = "compressed"
	}
	opts, err := buildMergeOptions(req.Options)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Validate any explicit initial configuration now so the client
	// gets a 400 instead of a failed job.
	var explicitDefs []catalog.IndexDef
	initial := InitialSpec{N: 10}
	if req.Initial != nil {
		initial = *req.Initial
		if len(initial.Indexes) > 0 {
			explicitDefs, err = resolveDefs(sess, initial.Indexes)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}

	// Job quota: acquired here, released exactly once from whichever
	// terminal path the job takes (completion, failure, cancel, deadline,
	// or queue rejection below — Submit releases on its own error paths).
	if v := s.reg.Quota().AcquireJob(sess.tenant); !v.OK {
		s.writeQuotaErr(w, sess.tenant, v)
		return
	}
	run := s.buildJobRun(kind, sess, req.Workload, rw, initial, explicitDefs, opts, req.Options.DualBudgetFrac)
	tenant := sess.tenant
	job, err := s.jobs.Submit(kind, sess, req.Workload, SubmitOpts{
		Tenant:  tenant,
		Timeout: jobTimeout(r, req.Options.TimeoutMS),
		Release: func() { s.reg.Quota().ReleaseJob(tenant) },
	}, run)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeQueueFull(w, sess.tenant, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		s.journalAppend(journalEvent{T: evJob, JobID: job.id, Kind: kind,
			SessionName: sess.name, WorkloadName: req.Workload})
		writeJSON(w, http.StatusAccepted, SubmitJobResponse{ID: job.id, State: string(JobQueued)})
	}
}

func buildMergeOptions(o JobOptions) (indexmerge.MergeOptions, error) {
	opts := indexmerge.MergeOptions{
		CostConstraint: o.Constraint,
		NoCostF:        o.NoCostF,
		NoCostP:        o.NoCostP,
		Parallelism:    o.Parallelism,
	}
	switch o.MergePair {
	case "", "cost":
	case "syntactic":
		opts.MergePair = indexmerge.MergePairSyntactic
	case "exhaustive":
		opts.MergePair = indexmerge.MergePairExhaustive
	default:
		return opts, fmt.Errorf("unknown mergepair %q (want cost, syntactic or exhaustive)", o.MergePair)
	}
	switch o.Search {
	case "", "greedy":
	case "exhaustive":
		opts.Search = indexmerge.ExhaustiveSearch
	default:
		return opts, fmt.Errorf("unknown search %q (want greedy or exhaustive)", o.Search)
	}
	switch o.CostModel {
	case "", "opt":
	case "nocost":
		opts.CostModel = indexmerge.NoCost
	case "prefilter":
		opts.CostModel = indexmerge.PrefilteredOptimizerCost
	case "compressed":
		opts.CostModel = indexmerge.CompressedOptimizerCost
	default:
		return opts, fmt.Errorf("unknown costmodel %q (want opt, nocost, prefilter or compressed)", o.CostModel)
	}
	if o.DualBudgetFrac < 0 || o.DualBudgetFrac >= 1 {
		if o.DualBudgetFrac != 0 {
			return opts, fmt.Errorf("dual_budget_frac %v out of range (0, 1)", o.DualBudgetFrac)
		}
	}
	// Jobs run resilient by default ({"resilience": {"disable": true}}
	// opts out): transient costing faults are retried, and a persistent
	// optimizer outage degrades to the analytic model rather than
	// failing the job. Fault-free searches are unaffected — decisions
	// and results are bit-identical to the non-resilient path.
	if o.Resilience == nil || !o.Resilience.Disable {
		ro := &indexmerge.ResilienceOptions{}
		if r := o.Resilience; r != nil {
			ro.MaxRetries = r.MaxRetries
			ro.Backoff = time.Duration(r.BackoffMS) * time.Millisecond
			ro.AttemptTimeout = time.Duration(r.AttemptTimeoutMS) * time.Millisecond
			ro.NoDegraded = r.NoDegraded
		}
		opts.Resilience = ro
	}
	return opts, nil
}

// buildJobRun assembles the closure a worker executes: the exact same
// facade calls the batch CLI makes, so a server job and a cmd/idxmerge
// run over identical inputs produce byte-identical results. The
// session's shared cost cache (namespaced by workload) carries what-if
// costs across the session's jobs, and merge jobs reuse the workload's
// registration-time prepared descriptors (prepared once per session,
// shared across jobs; the prepared path is bit-identical).
func (s *Server) buildJobRun(kind string, sess *Session, workloadName string, rw *registeredWorkload,
	initial InitialSpec, explicitDefs []catalog.IndexDef, opts indexmerge.MergeOptions,
	dualFrac float64) func(ctx context.Context, j *Job) (*JobResult, error) {

	wl := rw.w
	return func(ctx context.Context, j *Job) (*JobResult, error) {
		m, err := indexmerge.NewMerger(sess.db, wl)
		if err != nil {
			return nil, err
		}

		// Under the compressed cost model, workload-wide tuning runs at
		// template granularity: one representative per fingerprint class
		// instead of every statement.
		useTemplates := opts.CostModel == indexmerge.CompressedOptimizerCost && rw.compressed != nil

		if kind == "tune" {
			var defs []catalog.IndexDef
			if useTemplates {
				defs, err = m.TuneTemplatesContext(ctx)
			} else {
				defs, err = m.TuneWorkloadContext(ctx)
			}
			if err != nil {
				return nil, err
			}
			return &JobResult{Tune: &TuneResultPayload{
				Indexes:    NewIndexDefPayloads(defs),
				TotalBytes: sess.db.ConfigurationBytes(defs),
			}}, nil
		}

		// Initial configuration: explicit defs, or per-query tuning
		// (§4.2.3) exactly as cmd/idxmerge builds it.
		defs := explicitDefs
		if defs == nil {
			if initial.N > 0 {
				adv := advisor.New(sess.db, m.Optimizer())
				adv.Parallelism = opts.Parallelism
				defs, err = advisor.BuildInitialConfigurationContext(ctx, adv, wl, initial.N, initial.Seed)
			} else if useTemplates {
				defs, err = m.TuneTemplatesContext(ctx)
			} else {
				defs, err = m.TuneWorkloadContext(ctx)
			}
			if err != nil {
				return nil, err
			}
		}
		if len(defs) == 0 {
			return nil, errors.New("no initial indexes recommended; nothing to merge")
		}

		if dualFrac > 0 {
			budget := int64(float64(sess.db.ConfigurationBytes(defs)) * dualFrac)
			res, err := m.MergeDualContext(ctx, defs, budget)
			if err != nil {
				return nil, err
			}
			p := NewDualResultPayload(res)
			return &JobResult{Merge: &p}, nil
		}

		opts.Progress = func(p indexmerge.SearchProgress) {
			pp := NewProgressPayload(p)
			j.setProgress(pp)
			if s.jobs.progressHook != nil {
				s.jobs.progressHook(j.id, pp)
			}
		}
		opts.CostCache = sess.cache
		// Namespace by registration, not name: after a replace, a job
		// that captured the old registration keeps its own namespace and
		// can never be served costs computed for the new queries (or
		// vice versa).
		opts.CacheNamespace = rw.ns
		opts.Prepared = rw.prepared
		// Reuse the registration-time compressed form (templates + cost
		// table): the table's entries persist across the session's jobs,
		// so a repeat merge prices mostly from memory.
		opts.Compressed = rw.compressed
		sess.preparedReuse.Add(1)
		if opts.Resilience != nil {
			// One breaker per session: repeated costing failures in any
			// job open it for the whole session until the cooldown probe
			// succeeds.
			opts.Resilience.Breaker = sess.breaker
		}
		// Distributed costing: bound once per (session, workload). The
		// result payload carries no remote counters — it is byte-
		// identical at any worker count — so remote activity is
		// aggregated into /metrics instead.
		opts.Workers = sess.bindWorkers(ctx, workloadName, rw, s.log)

		res, err := m.MergeDefsContext(ctx, defs, opts)
		if err != nil {
			return nil, err
		}
		s.metrics.remoteBatches.Add(res.RemoteBatches)
		s.metrics.remoteItems.Add(res.RemoteItems)
		s.metrics.remoteFallbacks.Add(res.RemoteFallbacks)
		p := NewMergeResultPayload(res)
		return &JobResult{Merge: &p}, nil
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "job %q not found", r.PathValue("id"))
		return
	}
	res, done := j.Result()
	if !done {
		writeErr(w, http.StatusConflict, "job %s is %s; result not available yet", j.id, j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
