package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indexmerge/internal/core"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/datagen"
	"indexmerge/internal/distrib"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/server/quota"
	"indexmerge/internal/sql"
	"indexmerge/internal/wscale"
)

// DefaultTenant owns sessions created with no tenant named — existing
// clients keep working and share one accounting bucket.
const DefaultTenant = "default"

// quotaError carries a non-OK admission verdict as an error so
// handlers can serialize the machine-readable rejection body.
type quotaError struct {
	tenant string
	v      quota.Verdict
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %q rejected: %s", e.tenant, e.v.String())
}

// Registry errors, mapped to HTTP statuses by the handlers.
var (
	ErrSessionExists    = errors.New("session already exists")
	ErrSessionNotFound  = errors.New("session not found")
	ErrSessionBusy      = errors.New("session has a running job")
	ErrWorkloadExists   = errors.New("workload already registered")
	ErrWorkloadNotFound = errors.New("workload not found")
)

// Session is a named database instance (schema + generated data +
// analyzed statistics) that jobs and costing requests run against.
//
// Concurrency: the database is built and analyzed once at creation and
// never mutated afterwards, so its read path (optimization, what-if
// costing) is safe to share. Search jobs are serialized per session by
// the cap-1 lock channel; jobs on different sessions run in parallel.
// The shared cost cache carries what-if costs across a session's jobs,
// namespaced per workload.
type Session struct {
	name      string
	tenant    string
	dbName    string
	db        *engine.Database
	fp        uint64 // database fingerprint, captured at creation
	pool      *distrib.Pool
	cache     *costcache.Cache
	createdAt time.Time
	deleted   atomic.Bool

	// breaker is the session's costing circuit breaker, shared by every
	// job on the session so consecutive failures in one job protect the
	// next (and a recovered optimizer recloses it for all).
	breaker *core.Breaker

	// lock serializes search jobs on this session. Cap 1: holding a
	// token in the channel means a job is running.
	lock chan struct{}

	// preparedReuse counts reuses of registration-time prepared
	// workloads (costing requests and jobs that skipped re-preparation).
	preparedReuse atomic.Int64

	// tableMax bounds each registered workload's (template, atom) cost
	// table (same bound as the session cost cache; <= 0 unbounded).
	tableMax int

	// snapKey is the snapshot-cache key this session holds a reference
	// on; Registry.Delete releases it so fully-abandoned snapshots are
	// evicted.
	snapKey string

	// cont is the continuous-advising state (nil for request/response
	// sessions).
	cont *continuous

	mu        sync.Mutex
	regSeq    int // registrations performed; namespaces cache keys per binding
	workloads map[string]*registeredWorkload
}

// registeredWorkload pairs a workload with its prepared descriptors
// and its compressed (template-clustered) form, built once at
// registration against the session's (immutable) statistics and reused
// by every costing request and job thereafter. Journal replay rebuilds
// workloads through this same path, so recovered sessions re-derive
// the compression automatically.
type registeredWorkload struct {
	w          *sql.Workload
	prepared   *optimizer.PreparedWorkload
	compressed *wscale.Prepared

	// ns is the workload's cost-cache namespace: the name plus a
	// per-registration sequence number, so re-registering a name can
	// never serve what-if costs computed for the previous queries —
	// even to a job that raced the replacement.
	ns string

	// binding is the workload's lazily-created worker-pool binding
	// (nil without a pool, or after a failed bind — the bind is
	// attempted once; jobs then cost locally).
	bindOnce sync.Once
	binding  *distrib.Binding
}

// bindWorkers returns the workload's worker-pool binding, binding on
// first use. The binding is named session/workload so one pool serves
// many sessions without name collisions. A failed bind is logged once
// and never retried: jobs on this workload then run with local
// costing, which is byte-identical anyway.
func (s *Session) bindWorkers(ctx context.Context, name string, rw *registeredWorkload, log *slog.Logger) *distrib.Binding {
	if s.pool == nil {
		return nil
	}
	rw.bindOnce.Do(func() {
		templates := 0
		if rw.compressed != nil {
			templates = len(rw.compressed.C.Templates)
		}
		b, err := s.pool.Bind(ctx, s.name+"/"+name, s.fp, rw.w, templates)
		if err != nil {
			if log != nil {
				log.Warn("worker pool bind failed; jobs will cost locally",
					"session", s.name, "workload", name, "err", err)
			}
			return
		}
		rw.binding = b
	})
	return rw.binding
}

// acquire takes the session's job slot, abandoning the wait when ctx
// is canceled.
func (s *Session) acquire(ctx context.Context) error {
	select {
	case s.lock <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes the job slot without blocking.
func (s *Session) tryAcquire() bool {
	select {
	case s.lock <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Session) release() { <-s.lock }

// RegisterWorkload adds a named workload, preparing its queries once
// against the session's statistics; registration fails if any query
// cannot be prepared. A duplicate name is rejected unless replace is
// set, in which case the name is atomically rebound: the new queries
// get freshly-built prepared descriptors and a fresh (template, atom)
// cost table, the shared what-if cache is reset (its keys are
// namespaced, but a reset reclaims the dead entries), and the cache
// namespace rolls over so nothing costed for the old queries can ever
// answer for the new ones. Jobs already running keep the registration
// they captured at submit — old queries with old costs, internally
// consistent.
func (s *Session) RegisterWorkload(name string, w *sql.Workload, replace bool) error {
	pw, err := optimizer.PrepareWorkload(w, s.db)
	if err != nil {
		return fmt.Errorf("prepare workload: %w", err)
	}
	// Compress once at registration: template clustering and the
	// (template, atom) cost table are then shared by every job and
	// costing request on this workload for the session's lifetime.
	cp, err := wscale.Prepare(wscale.Compress(w), pw, optimizer.New(s.db), s.tableMax)
	if err != nil {
		return fmt.Errorf("compress workload: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workloads[name]; ok {
		if !replace {
			return ErrWorkloadExists
		}
		s.cache.Reset()
	}
	s.regSeq++
	s.workloads[name] = &registeredWorkload{
		w: w, prepared: pw, compressed: cp,
		ns: fmt.Sprintf("%s@%d", name, s.regSeq),
	}
	return nil
}

// Workload looks up a registered workload.
func (s *Session) Workload(name string) (*sql.Workload, bool) {
	rw, ok := s.workloadEntry(name)
	if !ok {
		return nil, false
	}
	return rw.w, true
}

// workloadEntry looks up a registered workload with its prepared form.
func (s *Session) workloadEntry(name string) (*registeredWorkload, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rw, ok := s.workloads[name]
	return rw, ok
}

// WorkloadInfos lists registered workloads sorted by name.
func (s *Session) WorkloadInfos() []WorkloadInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkloadInfo, 0, len(s.workloads))
	for name, rw := range s.workloads {
		wi := WorkloadInfo{Name: name, Queries: rw.w.Len()}
		if rw.compressed != nil {
			wi.Templates = len(rw.compressed.C.Templates)
			wi.DedupRatio = rw.compressed.C.DedupRatio()
		}
		out = append(out, wi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info describes the session.
func (s *Session) Info() SessionInfo {
	infos := s.WorkloadInfos()
	names := make([]string, len(infos))
	for i, wi := range infos {
		names[i] = wi.Name
	}
	prepared := 0
	s.mu.Lock()
	for _, rw := range s.workloads {
		prepared += len(rw.prepared.Queries)
	}
	s.mu.Unlock()
	info := SessionInfo{
		Name:            s.name,
		Tenant:          s.tenant,
		AccountedBytes:  s.accountedBytes(),
		DB:              s.dbName,
		Tables:          len(s.db.Schema().Tables()),
		DataBytes:       s.db.DataBytes(),
		Workloads:       names,
		CacheLen:        s.cache.Len(),
		PreparedQueries: prepared,
		PreparedReuse:   s.preparedReuse.Load(),
		CreatedAt:       s.createdAt,
	}
	if s.cont != nil {
		info.Continuous = s.cont.info()
	}
	return info
}

// accountedBytes is the session's byte-accounted memory footprint:
// the shared what-if cost cache, each registered workload's
// (template, atom) cost table, and — for continuous sessions — the
// windowed cost table plus the workload window itself. This is the
// figure tenant memory budgets and the global brownout pressure are
// computed over.
func (s *Session) accountedBytes() int64 {
	total := s.cache.Bytes()
	s.mu.Lock()
	for _, rw := range s.workloads {
		if rw.compressed != nil {
			total += rw.compressed.TableBytes()
		}
	}
	s.mu.Unlock()
	if s.cont != nil {
		total += s.cont.bytes()
	}
	return total
}

// gauges snapshots the session's cache counters for the metrics scrape.
func (s *Session) gauges() SessionGauges {
	hits, misses, _ := s.cache.Stats()
	g := SessionGauges{
		Name:               s.name,
		CacheEntries:       s.cache.Len(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvictions:     s.cache.Evictions(),
		PreparedReuse:      s.preparedReuse.Load(),
		BreakerState:       s.breaker.State().String(),
		BreakerTransitions: s.breaker.Transitions(),
	}
	s.mu.Lock()
	for _, rw := range s.workloads {
		if rw.compressed == nil {
			continue
		}
		g.Templates += len(rw.compressed.C.Templates)
		th, tm, _ := rw.compressed.TableStats()
		g.CostTableEntries += rw.compressed.TableLen()
		g.CostTableHits += th
		g.CostTableMisses += tm
	}
	s.mu.Unlock()
	if s.cont != nil {
		ci := s.cont.info()
		g.Continuous = true
		g.WindowTemplates = ci.WindowTemplates
		g.WindowMembers = ci.WindowMembers
		g.WindowWeight = ci.WindowWeight
		g.WindowGeneration = ci.Generation
		g.AppliedIndexes = len(ci.Applied)
		g.ObservedRatio = ci.LastObservedRatio
		g.ContApplies = ci.Applies
		g.ContRollbacks = ci.Rollbacks
	}
	return g
}

// Registry holds the server's sessions.
type Registry struct {
	mu           sync.Mutex
	sessions     map[string]*Session
	building     map[string]bool   // names reserved while their DB builds
	cacheMax     int               // per-session cost cache bound (entries)
	pool         *distrib.Pool     // shared what-if worker pool (nil = local costing)
	contDefaults ContinuousSpec    // server-level continuous-mode defaults
	quota        *quota.Controller // per-tenant admission control
	snaps        snapshotCache
}

// NewRegistry creates an empty registry. cacheMax bounds each
// session's cost cache (<= 0 means unbounded); pool, when non-nil, is
// the shared what-if worker pool sessions bind workloads against;
// contDefaults fills unset fields of session continuous specs; qc is
// the per-tenant admission controller (never nil in a Server).
func NewRegistry(cacheMax int, pool *distrib.Pool, contDefaults ContinuousSpec, qc *quota.Controller) *Registry {
	if qc == nil {
		qc = quota.NewController(quota.Limits{})
	}
	return &Registry{
		sessions:     make(map[string]*Session),
		building:     make(map[string]bool),
		cacheMax:     cacheMax,
		pool:         pool,
		contDefaults: contDefaults,
		quota:        qc,
	}
}

// Quota exposes the registry's admission controller.
func (r *Registry) Quota() *quota.Controller { return r.quota }

// tenantBytes sums accounted memory across one tenant's live sessions.
func (r *Registry) tenantBytes(tenant string) int64 {
	var total int64
	for _, s := range r.List() {
		if s.tenant == tenant {
			total += s.accountedBytes()
		}
	}
	return total
}

// totalBytes sums accounted memory across every live session — the
// global brownout pressure numerator.
func (r *Registry) totalBytes() int64 {
	var total int64
	for _, s := range r.List() {
		total += s.accountedBytes()
	}
	return total
}

// tenantGauges assembles the per-tenant metrics snapshot: quota usage
// from the controller joined with per-session byte accounting.
func (r *Registry) tenantGauges() []TenantGauges {
	bytes := make(map[string]int64)
	for _, s := range r.List() {
		bytes[s.tenant] += s.accountedBytes()
	}
	usage := r.quota.UsageAll()
	sort.Slice(usage, func(i, j int) bool { return usage[i].Tenant < usage[j].Tenant })
	out := make([]TenantGauges, len(usage))
	for i, u := range usage {
		out[i] = TenantGauges{
			Tenant:     u.Tenant,
			Sessions:   u.Sessions,
			Jobs:       u.Jobs,
			Bytes:      bytes[u.Tenant],
			IngestShed: u.IngestShed,
		}
	}
	return out
}

// snapshotCache dedupes session database construction: the first
// session over a given spec builds (or loads) the database and freezes
// it copy-on-write; every later session over the same spec gets a
// cheap Fork of that one frozen snapshot — map headers are copied,
// rows, statistics and index payloads are shared. Forks isolate index
// DDL, so sessions cannot observe each other. File-backed specs key on
// (path, size, mtime) so replacing the snapshot file invalidates the
// cached build.
//
// Entries are refcounted by the sessions forked from them: fork takes
// a reference, Registry.Delete releases it, and an entry whose count
// reaches zero is evicted — session churn cannot grow the resident
// snapshot set beyond the live sessions' distinct specs.
type snapshotCache struct {
	mu      sync.Mutex
	entries map[string]*snapEntry
	reuses  atomic.Int64
}

// snapEntry is one frozen snapshot plus the number of live sessions
// forked from it.
type snapEntry struct {
	snap *engine.Snapshot
	refs int
}

func snapshotKey(name string, scale float64, seed int64) (string, error) {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		fi, err := os.Stat(path)
		if err != nil {
			return "", fmt.Errorf("stat snapshot %q: %w", path, err)
		}
		return fmt.Sprintf("file:%s|%d|%d", path, fi.Size(), fi.ModTime().UnixNano()), nil
	}
	return fmt.Sprintf("%s|%g|%d", name, scale, seed), nil
}

// fork returns a private copy-on-write database for one session,
// building the underlying snapshot if this spec has not been seen. The
// returned key identifies the snapshot reference the caller now holds;
// pass it to release when the session is deleted.
func (c *snapshotCache) fork(name string, scale float64, seed int64) (*engine.Database, string, error) {
	key, err := snapshotKey(name, scale, seed)
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*snapEntry)
	}
	if e := c.entries[key]; e != nil {
		e.refs++
		c.mu.Unlock()
		c.reuses.Add(1)
		return e.snap.Fork(), key, nil
	}
	c.mu.Unlock()
	db, err := datagen.BuildNamed(name, scale, seed)
	if err != nil {
		return nil, "", err
	}
	snap := db.Snapshot()
	c.mu.Lock()
	// A concurrent build of the same spec may have won; both snapshots
	// are identical (deterministic build), keep the first.
	e := c.entries[key]
	if e != nil {
		c.reuses.Add(1)
	} else {
		e = &snapEntry{snap: snap}
		c.entries[key] = e
	}
	e.refs++
	snap = e.snap
	c.mu.Unlock()
	return snap.Fork(), key, nil
}

// release drops one session's reference on a snapshot, evicting the
// entry when no live session forks from it anymore.
func (c *snapshotCache) release(key string) {
	if key == "" {
		return
	}
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		e.refs--
		if e.refs <= 0 {
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
}

// resident counts cached snapshots currently held by live sessions.
func (c *snapshotCache) resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SnapshotReuses counts sessions served from an already-built cached
// snapshot instead of rebuilding their database.
func (r *Registry) SnapshotReuses() int64 { return r.snaps.reuses.Load() }

// ResidentSnapshots counts frozen snapshots still referenced by live
// sessions — churn through create/delete must not grow this.
func (r *Registry) ResidentSnapshots() int { return r.snaps.resident() }

func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Create builds a session's database (outside the registry lock —
// generation takes seconds at scale) and registers it. The name is
// reserved for the duration of the build so two concurrent creates
// cannot race.
func (r *Registry) Create(req CreateSessionRequest) (*Session, error) {
	if !validName(req.Name) {
		return nil, fmt.Errorf("invalid session name %q (want [A-Za-z0-9_-]{1,64})", req.Name)
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !validName(tenant) {
		return nil, fmt.Errorf("invalid tenant %q (want [A-Za-z0-9_-]{1,64})", tenant)
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1.0
	}

	r.mu.Lock()
	if _, ok := r.sessions[req.Name]; ok || r.building[req.Name] {
		r.mu.Unlock()
		return nil, ErrSessionExists
	}
	r.building[req.Name] = true
	r.mu.Unlock()

	// Admit before the (expensive) database build, so an over-quota
	// tenant cannot burn seconds of build CPU just to be rejected.
	// Acquire/release exactly brackets a session's life: journal replay
	// re-drives this same path, rebuilding the accounting.
	if v := r.quota.AcquireSession(tenant); !v.OK {
		r.mu.Lock()
		delete(r.building, req.Name)
		r.mu.Unlock()
		return nil, &quotaError{tenant: tenant, v: v}
	}

	// Sessions over the same (db, scale, seed) share one frozen
	// snapshot and differ only in their private index-DDL maps; the
	// build cost (seconds at scale) is paid once per spec.
	db, snapKey, err := r.snaps.fork(req.DB, scale, req.Seed)

	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.building, req.Name)
	if err != nil {
		r.quota.ReleaseSession(tenant)
		return nil, err
	}
	s := &Session{
		name:      req.Name,
		tenant:    tenant,
		dbName:    req.DB,
		db:        db,
		fp:        db.Fingerprint(),
		pool:      r.pool,
		cache:     costcache.NewBounded(0, r.cacheMax),
		tableMax:  r.cacheMax,
		breaker:   &core.Breaker{},
		createdAt: time.Now(),
		snapKey:   snapKey,
		lock:      make(chan struct{}, 1),
		workloads: make(map[string]*registeredWorkload),
	}
	if req.Continuous != nil {
		s.cont = newContinuous(mergeContinuousSpec(*req.Continuous, r.contDefaults), r.cacheMax)
	}
	r.sessions[req.Name] = s
	return s, nil
}

// Get looks up a session.
func (r *Registry) Get(name string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[name]
	return s, ok
}

// List returns sessions sorted by name.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Delete removes a session. A session with a running job is busy
// (ErrSessionBusy); jobs still queued against a deleted session fail
// with "session deleted" when a worker picks them up.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[name]
	if !ok {
		return ErrSessionNotFound
	}
	if !s.tryAcquire() {
		return ErrSessionBusy
	}
	// Mark deleted before releasing the slot: already-queued jobs then
	// acquire, observe the flag and fail fast instead of searching.
	s.deleted.Store(true)
	s.cache.Reset()
	if s.cont != nil {
		s.cont.stopTicker()
	}
	s.release()
	delete(r.sessions, name)
	r.snaps.release(s.snapKey)
	r.quota.ReleaseSession(s.tenant)
	return nil
}
