// Package server implements idxmerged, a long-running index-merging
// advisor service: an HTTP JSON API that manages named sessions
// (schema + generated data + analyzed statistics), registers
// workloads, answers synchronous what-if costing requests, and runs
// tune/merge searches as asynchronous, cancellable jobs on a bounded
// worker pool — the continuously-available counterpart of the batch
// cmd/idxmerge client, in the spirit of interactive what-if advisors
// and always-on index management services over live workloads.
package server

import (
	"time"

	"indexmerge"
	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
)

// IndexDefPayload is the wire form of an index definition.
type IndexDefPayload struct {
	Name    string   `json:"name,omitempty"`
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// NewIndexDefPayloads converts catalog definitions to wire form.
func NewIndexDefPayloads(defs []catalog.IndexDef) []IndexDefPayload {
	out := make([]IndexDefPayload, len(defs))
	for i, d := range defs {
		out[i] = IndexDefPayload{Name: d.Name, Table: d.Table, Columns: append([]string(nil), d.Columns...)}
	}
	return out
}

// MergeStepPayload is the wire form of one accepted merge step.
type MergeStepPayload struct {
	ParentA     string `json:"parent_a"`
	ParentB     string `json:"parent_b"`
	Result      string `json:"result"`
	BytesBefore int64  `json:"bytes_before"`
	BytesAfter  int64  `json:"bytes_after"`
}

// ProgressPayload is the wire form of a search progress snapshot. It
// is served while a job runs and embedded in terminal job status, and
// cmd/idxmerge -json streams the same struct.
type ProgressPayload struct {
	Steps           int   `json:"steps"`
	ConfigsExplored int64 `json:"configs_explored"`
	CostEvaluations int64 `json:"cost_evaluations"`
	OptimizerCalls  int64 `json:"optimizer_calls"`
	InitialBytes    int64 `json:"initial_bytes"`
	CurrentBytes    int64 `json:"current_bytes"`
	SavedBytes      int64 `json:"saved_bytes"`
}

// NewProgressPayload converts a core progress snapshot to wire form.
func NewProgressPayload(p core.Progress) ProgressPayload {
	return ProgressPayload{
		Steps:           p.Steps,
		ConfigsExplored: p.ConfigsExplored,
		CostEvaluations: p.CostEvaluations,
		OptimizerCalls:  p.OptimizerCalls,
		InitialBytes:    p.InitialBytes,
		CurrentBytes:    p.CurrentBytes,
		SavedBytes:      p.SavedBytes(),
	}
}

// MergeResultPayload is the wire form of a completed merging run —
// one schema shared by the service's job results and the batch CLI's
// -json output.
type MergeResultPayload struct {
	Initial             []IndexDefPayload  `json:"initial"`
	Final               []IndexDefPayload  `json:"final"`
	Steps               []MergeStepPayload `json:"steps,omitempty"`
	InitialBytes        int64              `json:"initial_bytes"`
	FinalBytes          int64              `json:"final_bytes"`
	StorageReductionPct float64            `json:"storage_reduction_pct"`
	InitialCost         float64            `json:"initial_cost"`
	FinalCost           float64            `json:"final_cost"`
	CostIncreasePct     float64            `json:"cost_increase_pct"`
	Bound               float64            `json:"bound,omitempty"`
	MetBudget           *bool              `json:"met_budget,omitempty"` // Cost-Minimal dual only
	CostEvaluations     int64              `json:"cost_evaluations"`
	OptimizerCalls      int64              `json:"optimizer_calls"`
	ConfigsExplored     int64              `json:"configs_explored"`
	ElapsedSeconds      float64            `json:"elapsed_seconds"`
	// Degraded marks a best-effort result: at least one constraint
	// decision (or the final cost) came from the external analytic
	// model because the optimizer-backed costing path kept failing.
	// All four fields are zero on a healthy run, so results from the
	// resilient and plain paths are byte-identical when no fault fires.
	Degraded        bool  `json:"degraded,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	DegradedChecks  int64 `json:"degraded_checks,omitempty"`
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	// Compression fields are set only by costmodel "compressed" runs
	// (all zero otherwise, keeping plain-run payloads byte-identical):
	// template count and dedup ratio of the compressed workload, this
	// run's (template, atom) cost-table traffic, and the constraint
	// checks rejected by the admissible lower bound without any exact
	// costing.
	Templates       int     `json:"templates,omitempty"`
	DedupRatio      float64 `json:"dedup_ratio,omitempty"`
	CostTableHits   int64   `json:"cost_table_hits,omitempty"`
	CostTableMisses int64   `json:"cost_table_misses,omitempty"`
	PrunedChecks    int64   `json:"pruned_checks,omitempty"`
}

func newSearchPayload(res *core.SearchResult) MergeResultPayload {
	steps := make([]MergeStepPayload, len(res.Steps))
	for i, s := range res.Steps {
		steps[i] = MergeStepPayload{
			ParentA:     s.ParentA,
			ParentB:     s.ParentB,
			Result:      s.Result,
			BytesBefore: s.BytesBefore,
			BytesAfter:  s.BytesAfter,
		}
	}
	return MergeResultPayload{
		Initial:             NewIndexDefPayloads(res.Initial.Defs()),
		Final:               NewIndexDefPayloads(res.Final.Defs()),
		Steps:               steps,
		InitialBytes:        res.InitialBytes,
		FinalBytes:          res.FinalBytes,
		StorageReductionPct: 100 * res.StorageReduction(),
		CostEvaluations:     res.CostEvaluations,
		OptimizerCalls:      res.OptimizerCalls,
		ConfigsExplored:     res.ConfigsExplored,
		ElapsedSeconds:      res.Elapsed.Seconds(),
	}
}

// NewMergeResultPayload converts a facade merge result to wire form.
func NewMergeResultPayload(res *indexmerge.MergeResult) MergeResultPayload {
	p := newSearchPayload(res.SearchResult)
	p.InitialCost = res.InitialCost
	p.FinalCost = res.FinalCost
	p.CostIncreasePct = 100 * res.CostIncrease()
	p.Bound = res.Bound
	p.Degraded = res.Degraded
	p.Retries = res.Retries
	p.DegradedChecks = res.DegradedChecks
	p.PanicsRecovered = res.PanicsRecovered
	p.Templates = res.Templates
	p.DedupRatio = res.DedupRatio
	p.CostTableHits = res.CostTableHits
	p.CostTableMisses = res.CostTableMisses
	p.PrunedChecks = res.PrunedChecks
	return p
}

// NewDualResultPayload converts a Cost-Minimal dual result to wire form.
func NewDualResultPayload(res *indexmerge.DualResult) MergeResultPayload {
	p := newSearchPayload(&res.SearchResult)
	p.InitialCost = res.InitialCost
	p.FinalCost = res.FinalCost
	if res.InitialCost != 0 {
		p.CostIncreasePct = 100 * (res.FinalCost/res.InitialCost - 1)
	}
	met := res.MetBudget
	p.MetBudget = &met
	return p
}

// TuneResultPayload is the wire form of a workload-tuning job result.
type TuneResultPayload struct {
	Indexes    []IndexDefPayload `json:"indexes"`
	TotalBytes int64             `json:"total_bytes"`
}

// CreateSessionRequest creates a named session over one of the
// built-in experimental databases (or a snapshot file).
type CreateSessionRequest struct {
	Name string `json:"name"`
	// Tenant names the owning tenant for quota accounting and metrics
	// (default "default"). The X-Tenant request header sets it when the
	// body leaves it empty; when both are present they must agree.
	Tenant string `json:"tenant,omitempty"`
	// DB is tpcd | synthetic1 | synthetic2 | file:PATH.
	DB    string  `json:"db"`
	Scale float64 `json:"scale,omitempty"` // default 1.0
	Seed  int64   `json:"seed,omitempty"`
	// Continuous opts the session into continuous advising: streaming
	// ingestion, workload aging and auto-apply/rollback. Zero fields
	// inherit the server's flag-level defaults.
	Continuous *ContinuousSpec `json:"continuous,omitempty"`
}

// ContinuousSpec tunes a continuous session's control loop. Zero
// fields fall back to the server defaults, then to the documented
// built-ins.
type ContinuousSpec struct {
	// RetunePeriodMS runs the background re-tuner this often; 0 means
	// manual cycles only (POST /v1/sessions/{name}/retune).
	RetunePeriodMS int `json:"retune_period_ms,omitempty"`
	// WindowMax bounds each template's member reservoir (default 32).
	WindowMax int `json:"window_max,omitempty"`
	// Decay multiplies template weights each aging round (default 0.5).
	Decay float64 `json:"decay,omitempty"`
	// MinWeight drops templates whose decayed weight falls below it
	// (default 0.25).
	MinWeight float64 `json:"min_weight,omitempty"`
	// MinImprovement is the auto-apply guardrail: the estimated
	// fractional improvement over the session's current configuration a
	// recommendation must clear (default 0.05).
	MinImprovement float64 `json:"min_improvement,omitempty"`
	// RollbackRatio rolls the applied configuration back when a batch's
	// observed/estimated per-weight cost ratio exceeds it (default 2.0).
	RollbackRatio float64 `json:"rollback_ratio,omitempty"`
	// Constraint is the re-tuner's merge cost slack (default 0.10).
	Constraint float64 `json:"constraint,omitempty"`
	// Seed seeds the window's reservoir sampler (deterministic replay).
	Seed int64 `json:"seed,omitempty"`
}

// IngestRequest streams one batch of statements into a continuous
// session's workload window: inline SQL (one query per line, optional
// "freq|" prefix) or a generation spec.
type IngestRequest struct {
	SQL      string        `json:"sql,omitempty"`
	Generate *GenerateSpec `json:"generate,omitempty"`
}

// IngestResponse acknowledges a folded batch and reports the window
// plus the observed-cost feedback the batch contributed.
type IngestResponse struct {
	Batch           int64   `json:"batch"`
	Statements      int     `json:"statements"`
	WindowTemplates int     `json:"window_templates"`
	WindowWeight    float64 `json:"window_weight"`
	Generation      int64   `json:"generation"`
	// ObservedRatio is this batch's observed/estimated per-weight cost
	// under the applied configuration (0 when nothing is applied).
	ObservedRatio float64 `json:"observed_ratio,omitempty"`
	// RolledBack reports that this batch's ratio breached the guardrail
	// and the applied configuration was rolled back.
	RolledBack bool `json:"rolled_back,omitempty"`
	// Shed reports that brownout stage >= 2 dropped the batch before it
	// reached the window: nothing was folded or journaled, but the
	// observed-cost guardrail still ran (rollback protection stays live
	// under overload), so ObservedRatio/RolledBack remain meaningful.
	Shed bool `json:"shed,omitempty"`
}

// ContinuousInfo is the continuous loop's pollable state, embedded in
// SessionInfo.
type ContinuousInfo struct {
	WindowTemplates int     `json:"window_templates"`
	WindowMembers   int     `json:"window_members"`
	WindowWeight    float64 `json:"window_weight"`
	Generation      int64   `json:"generation"`
	Batches         int64   `json:"batches"`
	Statements      int64   `json:"statements"`
	Applies         int64   `json:"applies"`
	Rollbacks       int64   `json:"rollbacks"`
	Retunes         int64   `json:"retunes"`
	RetuneSkips     int64   `json:"retune_skips"`
	// Applied is the auto-applied configuration (empty when none), and
	// AppliedEst its estimated per-weight cost at apply time.
	Applied           []IndexDefPayload `json:"applied,omitempty"`
	AppliedEst        float64           `json:"applied_est,omitempty"`
	LastObservedRatio float64           `json:"last_observed_ratio,omitempty"`
}

// RetuneResultPayload is a retune job's terminal payload: what the
// cycle decided and the window it decided over.
type RetuneResultPayload struct {
	// Skipped means the cycle ran no search: the window was empty or
	// its template fingerprint set was unchanged since the last search.
	Skipped bool `json:"skipped,omitempty"`
	// Applied means the recommendation cleared the improvement
	// guardrail and is now the session's applied configuration.
	Applied         bool              `json:"applied,omitempty"`
	Improvement     float64           `json:"improvement,omitempty"`
	EstCost         float64           `json:"est_cost,omitempty"`     // window cost under the recommendation
	CurrentCost     float64           `json:"current_cost,omitempty"` // window cost under the pre-cycle configuration
	Indexes         []IndexDefPayload `json:"indexes,omitempty"`
	WindowTemplates int               `json:"window_templates,omitempty"`
	Generation      int64             `json:"generation,omitempty"`
	Dropped         int               `json:"dropped,omitempty"` // templates aged out this cycle
}

// SessionInfo describes a session.
type SessionInfo struct {
	Name string `json:"name"`
	// Tenant is the owning tenant for quota accounting.
	Tenant string `json:"tenant,omitempty"`
	// AccountedBytes is the session's byte-accounted memory footprint
	// (cost cache + workload cost tables + continuous window), the
	// basis for the tenant memory budget.
	AccountedBytes int64    `json:"accounted_bytes,omitempty"`
	DB             string   `json:"db"`
	Tables         int      `json:"tables"`
	DataBytes      int64    `json:"data_bytes"`
	Workloads      []string `json:"workloads"`
	CacheLen       int      `json:"cache_entries"`
	// PreparedQueries is the total number of query descriptors prepared
	// at workload registration; PreparedReuse counts the costing
	// requests and jobs that reused them instead of re-walking ASTs.
	PreparedQueries int       `json:"prepared_queries"`
	PreparedReuse   int64     `json:"prepared_reuse"`
	CreatedAt       time.Time `json:"created_at"`
	// Continuous reports the control-loop state of a continuous
	// session (nil for request/response sessions).
	Continuous *ContinuousInfo `json:"continuous,omitempty"`
}

// RegisterWorkloadRequest registers a named workload with a session:
// either inline SQL (one query per line, optional "freq|" prefix) or
// a generation spec.
type RegisterWorkloadRequest struct {
	Name     string        `json:"name"`
	SQL      string        `json:"sql,omitempty"`
	Generate *GenerateSpec `json:"generate,omitempty"`
	// Replace rebinds an existing name to these queries. The workload
	// is re-prepared and re-compressed from scratch and every cost
	// derived from the old queries is invalidated atomically with the
	// swap; without it a duplicate name is a 409.
	Replace bool `json:"replace,omitempty"`
}

// GenerateSpec generates a stochastic workload (RAGS-style).
type GenerateSpec struct {
	// Class is complex (default) or projection.
	Class   string `json:"class,omitempty"`
	Queries int    `json:"queries,omitempty"` // default 30
	Seed    int64  `json:"seed,omitempty"`
	// Duplication appends this many zipf-skewed constant-varied
	// duplicates of the base queries — a log-like workload for
	// exercising template compression.
	Duplication int `json:"duplication,omitempty"`
	// Disjunctions adds OR/IN predicates to complex-class queries.
	Disjunctions bool `json:"disjunctions,omitempty"`
}

// WorkloadInfo describes a registered workload.
type WorkloadInfo struct {
	Name    string `json:"name"`
	Queries int    `json:"queries"`
	// Templates and DedupRatio describe the registration-time
	// compression: fingerprint-equivalence classes and distinct
	// statements per class.
	Templates  int     `json:"templates,omitempty"`
	DedupRatio float64 `json:"dedup_ratio,omitempty"`
}

// CostRequest asks for the synchronous optimizer-estimated workload
// cost Cost(W, C) of an arbitrary index configuration.
type CostRequest struct {
	Workload string            `json:"workload"`
	Indexes  []IndexDefPayload `json:"indexes"`
}

// CostResponse carries Cost(W, C).
type CostResponse struct {
	Cost float64 `json:"cost"`
}

// InitialSpec selects a job's initial index configuration: explicit
// definitions, or per-query tuning (N > 0 draws random queries until N
// distinct indexes accumulate; N == 0 tunes every workload query).
type InitialSpec struct {
	N       int               `json:"n,omitempty"`
	Seed    int64             `json:"seed,omitempty"`
	Indexes []IndexDefPayload `json:"indexes,omitempty"`
}

// JobOptions mirrors the batch CLI's merging knobs.
type JobOptions struct {
	Constraint float64 `json:"constraint,omitempty"` // default 0.10
	// MergePair is cost (default) | syntactic | exhaustive.
	MergePair string `json:"mergepair,omitempty"`
	// Search is greedy (default) | exhaustive.
	Search string `json:"search,omitempty"`
	// CostModel is opt (default) | nocost | prefilter | compressed.
	// "compressed" prices constraint checks through the registered
	// workload's (template, atom) cost table (exact; recommendation
	// parity with opt) instead of per-query costing.
	CostModel string  `json:"costmodel,omitempty"`
	NoCostF   float64 `json:"nocost_f,omitempty"`
	NoCostP   float64 `json:"nocost_p,omitempty"`
	// Parallelism bounds concurrent candidate costings within the job.
	Parallelism int `json:"parallelism,omitempty"`
	// DualBudgetFrac, when > 0, solves the Cost-Minimal dual instead
	// with a storage budget of this fraction of the initial bytes.
	DualBudgetFrac float64 `json:"dual_budget_frac,omitempty"`
	// Resilience tunes the fault-tolerant costing path. Jobs run with
	// resilience ON by default (retries, per-session breaker, degraded
	// fallback); set {"disable": true} to fail fast instead.
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
	// TimeoutMS bounds the job's total queued+running lifetime; expiry
	// terminates it with state "deadline_exceeded" and frees its quota
	// slot. 0 means no per-job deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ResilienceSpec is the wire form of indexmerge.ResilienceOptions.
// Zero fields select the documented defaults.
type ResilienceSpec struct {
	Disable          bool `json:"disable,omitempty"`
	MaxRetries       int  `json:"max_retries,omitempty"`
	BackoffMS        int  `json:"backoff_ms,omitempty"`
	AttemptTimeoutMS int  `json:"attempt_timeout_ms,omitempty"`
	// NoDegraded disables the external-model fallback: persistent
	// costing failures then fail the job instead of degrading it.
	NoDegraded bool `json:"no_degraded,omitempty"`
}

// SubmitJobRequest submits an asynchronous job against a session.
type SubmitJobRequest struct {
	// Kind is merge (default) or tune.
	Kind     string       `json:"kind,omitempty"`
	Workload string       `json:"workload"`
	Initial  *InitialSpec `json:"initial,omitempty"`
	Options  JobOptions   `json:"options"`
}

// JobStatus is the pollable state of a job.
type JobStatus struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Session  string          `json:"session"`
	Workload string          `json:"workload"`
	Tenant   string          `json:"tenant,omitempty"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Progress ProgressPayload `json:"progress"`
	// Allocs is the heap-allocation count (runtime Mallocs delta)
	// observed across the job's run. It is process-wide, so concurrent
	// jobs and requests inflate it — an approximate efficiency signal,
	// not an exact per-job measurement.
	Allocs     int64      `json:"allocs,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Degraded mirrors the result payload's Degraded flag so pollers
	// see best-effort outcomes without fetching the result.
	Degraded bool `json:"degraded,omitempty"`
	// Recovered marks a job restored from the journal after a restart
	// rather than run by this process.
	Recovered bool `json:"recovered,omitempty"`
	// Compression stats, mirrored from the result payload of a
	// compressed-costmodel merge (zero otherwise).
	Templates     int     `json:"templates,omitempty"`
	DedupRatio    float64 `json:"dedup_ratio,omitempty"`
	CostTableHits int64   `json:"cost_table_hits,omitempty"`
	// Applied mirrors a retune job's auto-apply outcome so pollers see
	// it without fetching the result payload.
	Applied bool `json:"applied,omitempty"`
}

// JobResult is a terminal job's payload.
type JobResult struct {
	ID     string               `json:"id"`
	State  string               `json:"state"`
	Merge  *MergeResultPayload  `json:"merge,omitempty"`
	Tune   *TuneResultPayload   `json:"tune,omitempty"`
	Retune *RetuneResultPayload `json:"retune,omitempty"`
}

// SubmitJobResponse acknowledges an accepted job.
type SubmitJobResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// ErrorResponse is the uniform error body. Rejections from admission
// control (429/403) additionally carry the machine-readable fields:
// a stable code, the tenant and quota dimension that tripped, the
// configured limit and the tenant's current usage, and the suggested
// retry delay mirrored from the Retry-After header.
type ErrorResponse struct {
	Error         string `json:"error"`
	Code          string `json:"code,omitempty"`
	Tenant        string `json:"tenant,omitempty"`
	Quota         string `json:"quota,omitempty"`
	Limit         int64  `json:"limit,omitempty"`
	Current       int64  `json:"current,omitempty"`
	RetryAfterSec int64  `json:"retry_after_sec,omitempty"`
}
