package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Journal event types. The journal is an append-only JSONL file: one
// self-describing event per line, fsynced per append, replayed in
// order at startup. Session databases are deterministic functions of
// (db, scale, seed) and workloads of their SQL/generation spec, so
// replaying the creation events rebuilds the exact pre-crash state;
// job searches are NOT re-run — a job with no terminal event is
// recovered as failed with an explicit recovery reason.
const (
	evSession        = "session"
	evSessionDeleted = "session_deleted"
	evWorkload       = "workload"
	evJob            = "job"
	evJobEnd         = "job_end"
	// Continuous-mode events (journal version 2).
	evIngest   = "ingest"
	evAge      = "age"
	evApply    = "apply"
	evRollback = "rollback"
	// evShrink (journal version 3): a brownout shrank a session's
	// continuous window reservoirs. Replayed before later ingests so the
	// seeded reservoir takes the same sampling path it took live —
	// without it, replay would rebuild a different window than the one
	// the process acknowledged.
	evShrink = "shrink"
)

// journalVersion is the schema version stamped on every appended
// record. Version history:
//
//	0 (absent) — the original session/workload/job events; still read.
//	2 — adds the continuous-mode events (ingest/age/apply/rollback)
//	    and the explicit version field itself.
//	3 — adds the brownout shrink event (and tenant fields on session
//	    creation requests, which ride along inside the journaled
//	    request payloads).
//
// Replay accepts records at or below this version and refuses newer
// ones loudly — a journal written by a future binary is not something
// to guess at.
const journalVersion = 3

// journalEvent is one journal line. Exactly the fields for its type
// are set; unknown fields within a known version are ignored on
// replay, but an unknown event TYPE fails recovery loudly (see
// recoverFromJournal) — silently dropping state transitions would
// replay a different history than the one acknowledged.
type journalEvent struct {
	T  string    `json:"t"`
	V  int       `json:"v,omitempty"` // schema version (0 = pre-versioned)
	At time.Time `json:"at"`

	// evSession: the full creation request (deterministic rebuild).
	Session *CreateSessionRequest `json:"session,omitempty"`
	// evSessionDeleted / evWorkload / evJob / continuous events: owning
	// session name.
	SessionName string `json:"session_name,omitempty"`
	// evWorkload: the full registration request.
	Workload *RegisterWorkloadRequest `json:"workload,omitempty"`
	// evJob / evJobEnd.
	JobID string `json:"job_id,omitempty"`
	// evJob.
	Kind         string `json:"kind,omitempty"`
	WorkloadName string `json:"workload_name,omitempty"`
	// evJobEnd.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	// evIngest: the batch's full request — replay re-parses and re-folds
	// it, and the seeded reservoir reproduces the exact window.
	Ingest *IngestRequest `json:"ingest,omitempty"`
	// evIngest: the batch sequence number (replay sanity check).
	Batch int64 `json:"batch,omitempty"`
	// evAge: the decay generation after aging.
	Generation int64 `json:"generation,omitempty"`
	// evApply / evRollback: the configuration now applied (empty on a
	// rollback to no indexes) and its estimated per-weight cost.
	Indexes []IndexDefPayload `json:"indexes,omitempty"`
	Est     float64           `json:"est,omitempty"`
	// evApply: the window weight the estimate was computed over.
	Weight float64 `json:"weight,omitempty"`
	// evRollback: the observed/estimated ratio that tripped the
	// guardrail.
	Ratio float64 `json:"ratio,omitempty"`
	// evShrink: the new per-template reservoir bound.
	Bound int `json:"bound,omitempty"`
}

// Journal is the durable session/job log. Appends are serialized and
// fsynced so an acknowledged state change survives SIGKILL; a torn
// final line (crash mid-write) is tolerated and skipped on replay.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	err error // first append failure; later appends are dropped
}

// OpenJournal opens (creating if needed) the journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append writes one event durably. The first I/O failure latches: the
// journal goes read-only-broken rather than interleaving partial
// lines, and the error is returned (callers log it; the server keeps
// serving — losing durability degrades recovery, not availability).
func (j *Journal) Append(ev journalEvent) error {
	if j == nil {
		return nil
	}
	if ev.At.IsZero() {
		ev.At = time.Now().UTC()
	}
	ev.V = journalVersion
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.err = err
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.err = err
		return err
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal parses a journal file into events. Tolerant by design:
// a missing file is an empty journal; a malformed or truncated FINAL
// line (the torn write of a crash) is skipped; a malformed line
// followed by valid events is corruption and errors out.
func ReadJournal(path string) ([]journalEvent, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var events []journalEvent
	var badLine int // 1-based line number of first malformed line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev journalEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			if badLine == 0 {
				badLine = line
			}
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf("journal %s: malformed line %d followed by valid events", path, badLine)
		}
		if ev.V > journalVersion {
			return nil, fmt.Errorf("journal %s: line %d has version %d, newer than this binary's %d",
				path, line, ev.V, journalVersion)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return events, nil
}
