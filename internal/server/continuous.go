package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"indexmerge"
	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/faults"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/wscale"
)

// continuous is a session's online-advising state: the sliding
// workload window statements stream into, the persistent windowed
// (template, atom) cost table that carries member-cost sums across
// re-tune cycles, and the applied-configuration guardrail loop.
//
// Lifecycle: created with the session when the creation request opts
// in, its ticker (if a period is configured) started once the creation
// is journaled, stopped at session deletion.
type continuous struct {
	spec   ContinuousSpec // normalized: every field has its default applied
	window *wscale.Window
	// table is the windowed cost table shared by every re-tune cycle.
	// Keys carry the template fingerprint and reservoir epoch (see
	// wscale.PrepareWindowed), so entries survive weight-only changes
	// and invalidate exactly when a member set changes.
	table *costcache.Cache

	mu          sync.Mutex
	applied     *appliedConfig // auto-applied configuration (nil = none)
	prevApplied *appliedConfig // what a guardrail rollback restores
	lastFPHash  uint64         // window fingerprint set at the last search
	lastRatio   float64        // last batch's observed/estimated ratio

	applies     atomic.Int64
	rollbacks   atomic.Int64
	retunes     atomic.Int64
	retuneSkips atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
}

// appliedConfig is one auto-applied recommendation and the estimate
// the guardrail judges observed costs against.
type appliedConfig struct {
	defs []catalog.IndexDef
	// est is the estimated per-weight window cost under defs at apply
	// time (FinalCost / TotalWeight) — the denominator of the
	// observed/estimated guardrail ratio.
	est float64
	at  time.Time
}

// Built-in continuous-mode defaults (the last fallback after the
// session spec and the server flags).
const (
	defaultMinImprovement = 0.05
	defaultRollbackRatio  = 2.0
	defaultConstraint     = 0.10
)

// mergeContinuousSpec overlays a session's spec on the server
// defaults: each zero field inherits the server's value.
func mergeContinuousSpec(spec, defaults ContinuousSpec) ContinuousSpec {
	if spec.RetunePeriodMS == 0 {
		spec.RetunePeriodMS = defaults.RetunePeriodMS
	}
	if spec.WindowMax == 0 {
		spec.WindowMax = defaults.WindowMax
	}
	if spec.Decay == 0 {
		spec.Decay = defaults.Decay
	}
	if spec.MinWeight == 0 {
		spec.MinWeight = defaults.MinWeight
	}
	if spec.MinImprovement == 0 {
		spec.MinImprovement = defaults.MinImprovement
	}
	if spec.RollbackRatio == 0 {
		spec.RollbackRatio = defaults.RollbackRatio
	}
	if spec.Constraint == 0 {
		spec.Constraint = defaults.Constraint
	}
	if spec.Seed == 0 {
		spec.Seed = defaults.Seed
	}
	return spec
}

// newContinuous builds the continuous state for one session. tableMax
// bounds the windowed cost table (<= 0 unbounded), matching the
// session's cache bound.
func newContinuous(spec ContinuousSpec, tableMax int) *continuous {
	if spec.MinImprovement <= 0 {
		spec.MinImprovement = defaultMinImprovement
	}
	if spec.RollbackRatio <= 0 {
		spec.RollbackRatio = defaultRollbackRatio
	}
	if spec.Constraint <= 0 {
		spec.Constraint = defaultConstraint
	}
	return &continuous{
		spec: spec,
		window: wscale.NewWindow(wscale.WindowConfig{
			MaxPerTemplate: spec.WindowMax,
			Decay:          spec.Decay,
			MinWeight:      spec.MinWeight,
			Seed:           spec.Seed,
		}),
		table: costcache.NewBounded(0, tableMax),
		stop:  make(chan struct{}),
	}
}

// stopTicker shuts the background re-tuner down (idempotent).
func (c *continuous) stopTicker() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// bytes is the loop's accounted footprint: the windowed cost table
// plus the workload window's resident members.
func (c *continuous) bytes() int64 {
	return c.table.Bytes() + c.window.Bytes()
}

// info snapshots the loop for SessionInfo.
func (c *continuous) info() *ContinuousInfo {
	st := c.window.Stats()
	ci := &ContinuousInfo{
		WindowTemplates: st.Templates,
		WindowMembers:   st.Members,
		WindowWeight:    st.Weight,
		Generation:      st.Generation,
		Batches:         st.Batches,
		Statements:      st.Statements,
		Applies:         c.applies.Load(),
		Rollbacks:       c.rollbacks.Load(),
		Retunes:         c.retunes.Load(),
		RetuneSkips:     c.retuneSkips.Load(),
	}
	c.mu.Lock()
	if c.applied != nil {
		ci.Applied = NewIndexDefPayloads(c.applied.defs)
		ci.AppliedEst = c.applied.est
	}
	ci.LastObservedRatio = c.lastRatio
	c.mu.Unlock()
	return ci
}

// prepareIngest parses and prepares an ingest batch without mutating
// anything: every statement must prepare cleanly before any of the
// batch folds into the window, so a bad batch is a clean 400.
func prepareIngest(sess *Session, req IngestRequest) ([]wscale.IngestItem, error) {
	wl, err := buildWorkload(sess, req.SQL, req.Generate)
	if err != nil {
		return nil, err
	}
	o := optimizer.New(sess.db)
	items := make([]wscale.IngestItem, len(wl.Queries))
	for i, q := range wl.Queries {
		pq, err := o.PrepareQuery(q.Stmt)
		if err != nil {
			return nil, err
		}
		items[i] = wscale.IngestItem{Stmt: q.Stmt, PQ: pq, Freq: q.Freq}
	}
	return items, nil
}

// contIngest folds one prepared batch into a session's window,
// journals it, and runs the observed-cost guardrail: the batch is
// costed under the applied configuration, the observed/estimated
// per-weight ratio is compared against the rollback threshold, and a
// breach rolls the applied configuration back (journaled before the
// in-memory swap, so replay reconstructs the same decision).
// Under brownout stage >= 2 (shed=true) the fold itself is skipped —
// nothing enters the window, nothing is journaled — but the guardrail
// still observes the batch, because rollback protection is the one
// thing overload must not disable.
func (s *Server) contIngest(sess *Session, req IngestRequest, items []wscale.IngestItem, shed bool) IngestResponse {
	c := sess.cont
	var resp IngestResponse
	if shed {
		st := c.window.Stats()
		resp = IngestResponse{
			Shed:            true,
			Statements:      len(items),
			WindowTemplates: st.Templates,
			WindowWeight:    st.Weight,
			Generation:      st.Generation,
		}
		s.reg.Quota().RecordIngestShed(sess.tenant, len(items))
	} else {
		batch := c.window.Ingest(items)
		s.journalAppend(journalEvent{T: evIngest, SessionName: sess.name, Ingest: &req, Batch: batch})

		st := c.window.Stats()
		resp = IngestResponse{
			Batch:           batch,
			Statements:      len(items),
			WindowTemplates: st.Templates,
			WindowWeight:    st.Weight,
			Generation:      st.Generation,
		}
		s.metrics.ingestBatches.Add(1)
		s.metrics.ingestStatements.Add(int64(len(items)))
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.applied == nil || c.applied.est <= 0 {
		return resp
	}
	// Observe: the batch's actual per-weight cost under the applied
	// configuration. The faults hook lets chaos tests and CI inflate
	// the observation deterministically to force a rollback.
	o := optimizer.New(sess.db)
	cfg := optimizer.Configuration(c.applied.defs)
	sum, wsum := 0.0, 0.0
	for _, it := range items {
		cost, err := o.CostPrepared(it.PQ, cfg)
		if err != nil {
			s.log.Warn("continuous observe costing failed; skipping guardrail for batch",
				"session", sess.name, "batch", resp.Batch, "err", err)
			return resp
		}
		f := it.Freq
		if f <= 0 {
			f = 1
		}
		sum += cost * f
		wsum += f
	}
	if wsum <= 0 {
		return resp
	}
	sum *= faults.Factor(faults.ContinuousObserve)
	ratio := (sum / wsum) / c.applied.est
	c.lastRatio = ratio
	resp.ObservedRatio = ratio
	if ratio <= c.spec.RollbackRatio {
		return resp
	}
	// Guardrail breach: restore the previous configuration. Journal
	// first (WAL ordering) with the full restored state so replay needs
	// no inference.
	restored := c.prevApplied
	ev := journalEvent{T: evRollback, SessionName: sess.name, Ratio: ratio}
	if restored != nil {
		ev.Indexes = NewIndexDefPayloads(restored.defs)
		ev.Est = restored.est
	}
	s.journalAppend(ev)
	c.applied = restored
	c.prevApplied = nil
	c.lastFPHash = 0 // force the next re-tune cycle to search again
	c.rollbacks.Add(1)
	s.metrics.contRollbacks.Add(1)
	resp.RolledBack = true
	s.log.Info("continuous rollback", "session", sess.name, "batch", resp.Batch, "ratio", ratio)
	return resp
}

// submitRetune queues one re-tune cycle on the session's job slot,
// journaling it like any other job. Re-tunes are admitted below user
// jobs on the shed ladder: brownout stage >= 2 refuses them, and they
// consume the tenant's job quota like any other job.
func (s *Server) submitRetune(sess *Session) (*Job, error) {
	if sess.cont == nil {
		return nil, errors.New("session is not continuous")
	}
	if stage := s.evalBrownout(); stage >= 2 {
		return nil, &brownoutError{stage: stage, what: "re-tune cycle"}
	}
	if v := s.reg.Quota().AcquireJob(sess.tenant); !v.OK {
		return nil, &quotaError{tenant: sess.tenant, v: v}
	}
	tenant := sess.tenant
	job, err := s.jobs.Submit("retune", sess, windowWorkloadName, SubmitOpts{
		Tenant:  tenant,
		Release: func() { s.reg.Quota().ReleaseJob(tenant) },
	}, s.buildRetuneRun(sess))
	if err != nil {
		return nil, err
	}
	s.journalAppend(journalEvent{T: evJob, JobID: job.id, Kind: "retune",
		SessionName: sess.name, WorkloadName: windowWorkloadName})
	return job, nil
}

// windowWorkloadName labels retune jobs in job listings; it is not a
// registrable name (validName rejects '~'), so it can never collide
// with a client workload.
const windowWorkloadName = "~window"

// buildRetuneRun assembles one re-tune cycle: age the window, skip if
// its template fingerprint set is unchanged since the last search,
// otherwise snapshot it, run the same tune+merge machinery batch jobs
// use (priced through the session's persistent windowed cost table),
// and auto-apply the recommendation when it clears the improvement
// guardrail.
func (s *Server) buildRetuneRun(sess *Session) func(ctx context.Context, j *Job) (*JobResult, error) {
	c := sess.cont
	return func(ctx context.Context, j *Job) (*JobResult, error) {
		gen, dropped := c.window.Age()
		s.journalAppend(journalEvent{T: evAge, SessionName: sess.name, Generation: gen})

		st := c.window.Stats()
		if st.Templates == 0 {
			c.retuneSkips.Add(1)
			s.metrics.contRetuneSkips.Add(1)
			return &JobResult{Retune: &RetuneResultPayload{Skipped: true, Generation: gen, Dropped: dropped}}, nil
		}
		h := c.window.FingerprintHash()
		c.mu.Lock()
		unchanged := h == c.lastFPHash
		c.mu.Unlock()
		if unchanged {
			// Same query shapes as the last search: weights alone cannot
			// introduce new candidate indexes, so the previous decision
			// stands.
			c.retuneSkips.Add(1)
			s.metrics.contRetuneSkips.Add(1)
			return &JobResult{Retune: &RetuneResultPayload{
				Skipped: true, WindowTemplates: st.Templates, Generation: gen, Dropped: dropped,
			}}, nil
		}

		snap := c.window.Snapshot()
		wp, err := wscale.PrepareWindowed(snap, optimizer.New(sess.db), c.table)
		if err != nil {
			return nil, err
		}
		m, err := indexmerge.NewMerger(sess.db, snap.W)
		if err != nil {
			return nil, err
		}
		c.retunes.Add(1)
		s.metrics.contRetunes.Add(1)

		res := &RetuneResultPayload{WindowTemplates: st.Templates, Generation: gen, Dropped: dropped}
		defs, err := m.TuneTemplatesContext(ctx)
		if err != nil {
			return nil, err
		}
		if len(defs) == 0 {
			// Nothing recommendable for this window; remember its shape so
			// the next identical window skips.
			c.mu.Lock()
			c.lastFPHash = h
			c.mu.Unlock()
			return &JobResult{Retune: res}, nil
		}

		opts := indexmerge.MergeOptions{
			CostConstraint: c.spec.Constraint,
			CostModel:      indexmerge.CompressedOptimizerCost,
			Compressed:     wp,
			Prepared:       snap.PW,
			Resilience:     &indexmerge.ResilienceOptions{Breaker: sess.breaker},
			Progress: func(p indexmerge.SearchProgress) {
				pp := NewProgressPayload(p)
				j.setProgress(pp)
				if s.jobs.progressHook != nil {
					s.jobs.progressHook(j.id, pp)
				}
			},
		}
		mres, err := m.MergeDefsContext(ctx, defs, opts)
		if err != nil {
			return nil, err
		}
		newDefs := mres.Final.Defs()
		newCost := mres.FinalCost

		// Current cost: the same window priced under the configuration
		// the session is actually running (the applied one, or no
		// indexes) — same cost table, same units, so the improvement
		// fraction compares like with like.
		c.mu.Lock()
		var curDefs []catalog.IndexDef
		if c.applied != nil {
			curDefs = c.applied.defs
		}
		c.mu.Unlock()
		curCost, err := wp.WorkloadCostContext(ctx, core.NewConfiguration(curDefs))
		if err != nil {
			return nil, err
		}

		res.EstCost = newCost
		res.CurrentCost = curCost
		res.Indexes = NewIndexDefPayloads(newDefs)
		if curCost > 0 {
			res.Improvement = 1 - newCost/curCost
		}

		if res.Improvement >= c.spec.MinImprovement && snap.TotalWeight > 0 {
			est := newCost / snap.TotalWeight
			s.journalAppend(journalEvent{T: evApply, SessionName: sess.name,
				Indexes: res.Indexes, Est: est, Weight: snap.TotalWeight})
			c.mu.Lock()
			c.prevApplied = c.applied
			c.applied = &appliedConfig{defs: newDefs, est: est, at: time.Now()}
			c.lastFPHash = h
			c.mu.Unlock()
			c.applies.Add(1)
			s.metrics.contApplies.Add(1)
			res.Applied = true
			s.log.Info("continuous apply", "session", sess.name,
				"indexes", len(newDefs), "improvement", res.Improvement)
		} else {
			c.mu.Lock()
			c.lastFPHash = h
			c.mu.Unlock()
		}
		return &JobResult{Retune: res}, nil
	}
}

// startContinuous launches the session's background re-tuner if a
// period is configured. The goroutine exits when the session is
// deleted. Cycles are submitted through the normal job queue — the
// session's cap-1 lock serializes them against client jobs, and
// unchanged-window cycles cost one fingerprint hash.
func (s *Server) startContinuous(sess *Session) {
	c := sess.cont
	if c == nil || c.spec.RetunePeriodMS <= 0 {
		return
	}
	period := time.Duration(c.spec.RetunePeriodMS) * time.Millisecond
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if _, err := s.submitRetune(sess); err != nil {
					s.log.Warn("continuous retune submit failed", "session", sess.name, "err", err)
				}
			}
		}
	}()
}
