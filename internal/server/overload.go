package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"indexmerge/internal/faults"
	"indexmerge/internal/server/quota"
)

// The brownout ladder. Global pressure is the worse of two ratios —
// accounted memory over the configured budget, and queued jobs over
// the queue capacity — multiplied by the brownout.stage fault factor
// (chaos tests force the ladder deterministically through it). Each
// stage keeps everything the previous one does and sheds more, in
// strict priority order: synchronous costing is the cheapest work to
// refuse, user-submitted tune/merge jobs the most valuable to keep.
//
//	stage 1 (>= 75%): shed sync costing; shrink continuous windows to
//	  brownoutWindowMax members per template and evict cold cost-table
//	  and cost-cache entries until memory is back under the stage-1
//	  threshold.
//	stage 2 (>= 90%): also shed ingest folds (the observed-cost
//	  guardrail still runs — rollback protection must survive
//	  overload), shed re-tune cycles, and force compressed costing on
//	  new jobs (exact, recommendation parity; just cheaper).
//	stage 3 (>= 97%): also reject new sessions, workloads and
//	  user-submitted jobs. Applied-configuration guardrails stay live.
const (
	brownoutStage1 = 0.75
	brownoutStage2 = 0.90
	brownoutStage3 = 0.97
	// brownoutWindowMax is the absolute reservoir bound stage >= 1
	// shrinks continuous windows to. Absolute (not relative) so
	// repeated evaluations are idempotent.
	brownoutWindowMax = 8
	// evictChunk is how many cold entries each eviction round drops
	// from each cache/table while memory is over the stage-1 line.
	evictChunk = 256
)

// brownoutError reports work refused by the ladder; handlers map it to
// a 429 with Retry-After.
type brownoutError struct {
	stage int
	what  string
}

func (e *brownoutError) Error() string {
	return fmt.Sprintf("brownout stage %d: shedding %s", e.stage, e.what)
}

// evalBrownout recomputes global pressure and returns the active
// stage, journaling window shrinks and evicting cold state on the way
// up. Called at every admission point — the ladder reacts within one
// request of pressure changing.
func (s *Server) evalBrownout() int {
	var memRatio float64
	if s.memBudget > 0 {
		memRatio = float64(s.reg.totalBytes()) / float64(s.memBudget)
	}
	queued, qcap := s.jobs.QueueDepth()
	queueRatio := float64(queued) / float64(qcap)
	factor := faults.Factor(faults.BrownoutStage)
	memRatio *= factor
	queueRatio *= factor

	stageOf := func(p float64) int {
		switch {
		case p >= brownoutStage3:
			return 3
		case p >= brownoutStage2:
			return 2
		case p >= brownoutStage1:
			return 1
		}
		return 0
	}
	// Queue pressure saturates at stage 2: a full queue already has its
	// own structured rejection (queue_full, per-submission), so stage 3
	// — refusing sessions and workloads too — is reserved for memory
	// exhaustion, the one pressure that admission alone cannot relieve.
	stage := stageOf(memRatio)
	qs := stageOf(queueRatio)
	if qs > 2 {
		qs = 2
	}
	if qs > stage {
		stage = qs
	}
	pressure := memRatio
	if queueRatio > pressure {
		pressure = queueRatio
	}
	prev := int(s.stage.Swap(int32(stage)))
	if stage != prev {
		s.metrics.brownoutTransitions.Add(1)
		s.log.Info("brownout stage change", "from", prev, "to", stage,
			"pressure", pressure, "mem_ratio", memRatio, "queue_ratio", queueRatio)
	}
	if stage >= 1 {
		s.shedColdState()
	}
	return stage
}

// shedColdState is the stage-1 action: clamp continuous windows to
// the brownout reservoir bound (journaled WAL-first so replay drives
// the seeded reservoirs down the same sampling paths), then evict
// cold cost-cache and cost-table entries until accounted memory is
// back under the stage-1 threshold. Idempotent: windows already at
// the bound and memory already under the line are left alone.
func (s *Server) shedColdState() {
	sessions := s.reg.List()
	for _, sess := range sessions {
		if sess.cont == nil || sess.cont.window.MaxPerTemplate() <= brownoutWindowMax {
			continue
		}
		s.journalAppend(journalEvent{T: evShrink, SessionName: sess.name, Bound: brownoutWindowMax})
		dropped := sess.cont.window.Shrink(brownoutWindowMax)
		s.log.Info("brownout window shrink", "session", sess.name,
			"bound", brownoutWindowMax, "members_dropped", dropped)
	}
	if s.memBudget <= 0 {
		return
	}
	target := int64(float64(s.memBudget) * brownoutStage1)
	// Bounded rounds: each round drops up to evictChunk entries per
	// cache per session; stop once under target or nothing evictable
	// remains (unbounded caches keep no order and never evict).
	for round := 0; round < 1024; round++ {
		if s.reg.totalBytes() <= target {
			return
		}
		dropped := 0
		for _, sess := range sessions {
			dropped += sess.evictCold(evictChunk)
		}
		if dropped == 0 {
			return
		}
	}
}

// evictCold drops up to n of the oldest entries from each of the
// session's cost stores: the shared what-if cache, every registered
// workload's (template, atom) cost table, and the continuous windowed
// table. Returns how many entries went.
func (s *Session) evictCold(n int) int {
	dropped := s.cache.EvictOldest(n)
	s.mu.Lock()
	rws := make([]*registeredWorkload, 0, len(s.workloads))
	for _, rw := range s.workloads {
		rws = append(rws, rw)
	}
	s.mu.Unlock()
	for _, rw := range rws {
		if rw.compressed != nil {
			dropped += rw.compressed.TableEvictOldest(n)
		}
	}
	if s.cont != nil {
		dropped += s.cont.table.EvictOldest(n)
	}
	return dropped
}

// requestTenant reads the caller's tenant claim from the X-Tenant
// header ("" when absent — an unclaimed request acts on any session).
func requestTenant(r *http.Request) string { return r.Header.Get("X-Tenant") }

// checkTenant enforces tenant identity on session-scoped routes: a
// request that claims a tenant must claim the session's owner.
// Requests with no X-Tenant header pass (existing single-tenant
// clients keep working).
func (s *Server) checkTenant(w http.ResponseWriter, r *http.Request, sess *Session) bool {
	claimed := requestTenant(r)
	if claimed == "" || claimed == sess.tenant {
		return true
	}
	s.metrics.observeShed("tenant_mismatch", claimed)
	writeJSON(w, http.StatusForbidden, ErrorResponse{
		Error:  fmt.Sprintf("session %q belongs to tenant %q, not %q", sess.name, sess.tenant, claimed),
		Code:   "tenant_mismatch",
		Tenant: claimed,
	})
	return false
}

// writeQuotaErr serializes a non-OK admission verdict: Retry-After on
// 429s, plus the machine-readable body (code, tenant, quota, limit,
// current).
func (s *Server) writeQuotaErr(w http.ResponseWriter, tenant string, v quota.Verdict) {
	retry := int64(v.RetryAfter / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
	s.metrics.observeShed(v.Code, tenant)
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:         (&quotaError{tenant: tenant, v: v}).Error(),
		Code:          v.Code,
		Tenant:        tenant,
		Quota:         v.Quota,
		Limit:         v.Limit,
		Current:       v.Current,
		RetryAfterSec: retry,
	})
}

// writeQueueFull serializes the global queue-full rejection with the
// same machine-readable shape as quota rejections (previously a bare
// 429).
func (s *Server) writeQueueFull(w http.ResponseWriter, tenant string, err error) {
	queued, qcap := s.jobs.QueueDepth()
	w.Header().Set("Retry-After", "1")
	s.metrics.observeShed("queue_full", tenant)
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:         err.Error(),
		Code:          "queue_full",
		Tenant:        tenant,
		Quota:         "job_queue",
		Limit:         int64(qcap),
		Current:       int64(queued),
		RetryAfterSec: 1,
	})
}

// writeBrownout serializes a brownout rejection (Current carries the
// active stage).
func (s *Server) writeBrownout(w http.ResponseWriter, tenant string, stage int, what string) {
	w.Header().Set("Retry-After", "1")
	s.metrics.observeShed("brownout", tenant)
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:         (&brownoutError{stage: stage, what: what}).Error(),
		Code:          "brownout",
		Tenant:        tenant,
		Quota:         "brownout_stage",
		Current:       int64(stage),
		RetryAfterSec: 1,
	})
}

// jobTimeout resolves a job's deadline: the per-job timeout option,
// tightened by the HTTP request's own deadline when the serving stack
// set one — the tighter of the two wins, so a request admitted under
// a server-side deadline cannot park a job that outlives it.
func jobTimeout(r *http.Request, timeoutMS int) time.Duration {
	timeout := time.Duration(timeoutMS) * time.Millisecond
	if dl, ok := r.Context().Deadline(); ok {
		if until := time.Until(dl); timeout <= 0 || until < timeout {
			timeout = until
		}
	}
	if timeout < 0 {
		timeout = time.Millisecond
	}
	return timeout
}
