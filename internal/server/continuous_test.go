package server

import (
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"indexmerge/internal/faults"
)

// driftSQL is a second workload with query shapes absent from
// fixtureSQL: new projection/predicate combinations the configuration
// applied for the fixture window cannot serve well.
const driftSQL = `SELECT m2, m3 FROM fact WHERE k = 42
SELECT tag, m3 FROM fact WHERE tag = 'green'
SELECT d, m3 FROM fact WHERE d BETWEEN DATE(300) AND DATE(340)
SELECT name FROM dim WHERE k = 9`

// newContinuousSession creates a fixture-backed continuous session
// with manual re-tune cycles (no background ticker) and a fixed
// reservoir seed.
func (h *testServer) newContinuousSession(t *testing.T, name string, seed int64) {
	t.Helper()
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{
		Name: name, DB: fixtureDB(t),
		Continuous: &ContinuousSpec{Seed: seed},
	}, nil, http.StatusCreated)
}

// ingest streams SQL into a continuous session.
func (h *testServer) ingest(t *testing.T, session, sqlText string) IngestResponse {
	t.Helper()
	var resp IngestResponse
	h.mustCall(t, "POST", "/v1/sessions/"+session+"/ingest",
		IngestRequest{SQL: sqlText}, &resp, http.StatusOK)
	return resp
}

// retune runs one on-demand re-tune cycle to completion and returns
// its result payload.
func (h *testServer) retune(t *testing.T, session string) (JobStatus, *RetuneResultPayload) {
	t.Helper()
	var sub SubmitJobResponse
	h.mustCall(t, "POST", "/v1/sessions/"+session+"/retune", nil, &sub, http.StatusAccepted)
	st := h.waitTerminal(t, sub.ID)
	if st.State != string(JobDone) {
		t.Fatalf("retune job %s = %s (%s), want done", sub.ID, st.State, st.Error)
	}
	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+sub.ID+"/result", nil, &res, http.StatusOK)
	if res.Retune == nil {
		t.Fatalf("retune job %s returned no retune payload: %+v", sub.ID, res)
	}
	return st, res.Retune
}

// continuousInfo fetches a session's continuous control-loop state.
func (h *testServer) continuousInfo(t *testing.T, session string) *ContinuousInfo {
	t.Helper()
	var info SessionInfo
	h.mustCall(t, "GET", "/v1/sessions/"+session, nil, &info, http.StatusOK)
	if info.Continuous == nil {
		t.Fatalf("session %s has no continuous info", session)
	}
	return info.Continuous
}

// TestContinuousIngestRetuneApply drives the core loop: statements
// stream in, a re-tune cycle searches the window and auto-applies its
// recommendation, an unchanged window skips the next search, and a
// drifted window triggers a fresh search that re-applies.
func TestContinuousIngestRetuneApply(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newContinuousSession(t, "live", 11)

	// Ingest on a non-continuous session is a clean 400, as is a batch
	// that does not parse.
	h.newSession(t, "batch")
	h.mustCall(t, "POST", "/v1/sessions/batch/ingest",
		IngestRequest{SQL: fixtureSQL}, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/batch/retune", nil, nil, http.StatusBadRequest)
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: "SELECT nope FROM nowhere"}, nil, http.StatusBadRequest)

	resp := h.ingest(t, "live", fixtureSQL)
	if resp.Statements != 5 || resp.WindowTemplates == 0 || resp.WindowWeight != 5 {
		t.Fatalf("ingest response = %+v", resp)
	}

	// First cycle: the window is new, so the search runs and the
	// recommendation clears the improvement guardrail over the empty
	// configuration.
	st, res := h.retune(t, "live")
	if res.Skipped || !res.Applied {
		t.Fatalf("first retune = %+v, want a search that applied", res)
	}
	if !st.Applied {
		t.Error("job status does not mirror the apply")
	}
	if len(res.Indexes) == 0 || res.Improvement < 0.05 {
		t.Fatalf("applied result = %+v, want indexes and >= 5%% improvement", res)
	}
	ci := h.continuousInfo(t, "live")
	if ci.Applies != 1 || len(ci.Applied) == 0 || ci.AppliedEst <= 0 {
		t.Fatalf("continuous info after apply = %+v", ci)
	}

	// Unchanged window: the template fingerprint set is the same, so
	// the cycle skips without searching.
	_, res = h.retune(t, "live")
	if !res.Skipped {
		t.Fatalf("retune over unchanged window = %+v, want skipped", res)
	}
	if ci = h.continuousInfo(t, "live"); ci.RetuneSkips != 1 || ci.Retunes != 1 {
		t.Fatalf("skip not counted: %+v", ci)
	}

	// Drift: new query shapes arrive, the fingerprint set changes, and
	// the next cycle searches again and re-applies for the new mix.
	h.ingest(t, "live", driftSQL)
	_, res = h.retune(t, "live")
	if res.Skipped {
		t.Fatalf("retune over drifted window = %+v, want a fresh search", res)
	}
	if !res.Applied {
		t.Fatalf("drifted window did not re-apply: %+v", res)
	}
	ci = h.continuousInfo(t, "live")
	if ci.Applies != 2 || ci.Retunes != 2 {
		t.Fatalf("continuous info after drift = %+v", ci)
	}

	metrics := h.metricsText(t)
	for _, want := range []string{
		"idxmerged_ingest_batches_total 2",
		"idxmerged_ingest_statements_total 9",
		"idxmerged_applies_total 2",
		"idxmerged_retunes_total 2",
		"idxmerged_retune_skips_total 1",
		`idxmerged_window_templates{session="live"}`,
		`idxmerged_applied_indexes{session="live"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestContinuousGuardrailRollback forces a mis-estimate: a scale fault
// at the observation point inflates one batch's observed cost, the
// observed/estimated ratio breaches the threshold, and the applied
// configuration rolls back — after which the next cycle searches again
// (the skip hash is cleared) and re-applies.
func TestContinuousGuardrailRollback(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newContinuousSession(t, "guard", 3)
	h.ingest(t, "guard", fixtureSQL)
	if _, res := h.retune(t, "guard"); !res.Applied {
		t.Fatalf("setup retune did not apply: %+v", res)
	}

	// A clean batch observes close to the estimate: no rollback.
	resp := h.ingest(t, "guard", fixtureSQL)
	if resp.RolledBack {
		t.Fatalf("clean batch rolled back: %+v", resp)
	}
	if resp.ObservedRatio <= 0 || resp.ObservedRatio > 2 {
		t.Fatalf("clean batch observed ratio %v, want ~1", resp.ObservedRatio)
	}

	// One poisoned observation: the next batch's measured cost is
	// inflated 100x, breaching the default 2.0 rollback ratio.
	installed := faults.Install(faults.Rule{
		ID: "obs", Point: faults.ContinuousObserve, Mode: faults.ModeScale, Scale: 100, Count: 1,
	})
	defer faults.Reset()
	resp = h.ingest(t, "guard", fixtureSQL)
	if faults.Fired(installed[0].ID) != 1 {
		t.Fatal("observation fault never fired")
	}
	if !resp.RolledBack || resp.ObservedRatio <= 2 {
		t.Fatalf("poisoned batch = %+v, want rollback with ratio > 2", resp)
	}
	ci := h.continuousInfo(t, "guard")
	if ci.Rollbacks != 1 || len(ci.Applied) != 0 {
		t.Fatalf("info after rollback = %+v, want no applied configuration", ci)
	}

	// The rollback cleared the skip hash: the same window re-searches
	// and (with the fault window exhausted) re-applies.
	_, res := h.retune(t, "guard")
	if res.Skipped || !res.Applied {
		t.Fatalf("retune after rollback = %+v, want fresh apply", res)
	}
	ci = h.continuousInfo(t, "guard")
	if ci.Applies != 2 || len(ci.Applied) == 0 {
		t.Fatalf("info after re-apply = %+v", ci)
	}
}

// TestContinuousChaosFaults injects a what-if optimizer outage into
// the live loop: the observe guardrail degrades to a no-op (the batch
// still folds), a re-tune cycle under the outage fails as a job
// without wedging the session, and the first healthy cycle recovers.
func TestContinuousChaosFaults(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newContinuousSession(t, "chaos", 7)
	h.ingest(t, "chaos", fixtureSQL)
	if _, res := h.retune(t, "chaos"); !res.Applied {
		t.Fatalf("setup retune did not apply: %+v", res)
	}

	// Permanent costing outage. The guardrail cannot observe, so the
	// batch folds with no ratio and no rollback.
	faults.Install(faults.Rule{Point: faults.OptimizerCost, Mode: faults.ModeError})
	defer faults.Reset()
	resp := h.ingest(t, "chaos", fixtureSQL)
	if resp.RolledBack || resp.ObservedRatio != 0 {
		t.Fatalf("ingest under outage = %+v, want fold without guardrail", resp)
	}
	if ci := h.continuousInfo(t, "chaos"); ci.Rollbacks != 0 || len(ci.Applied) == 0 {
		t.Fatalf("outage must not change the applied configuration: %+v", ci)
	}

	// A re-tune cycle needs the optimizer; under the drifted window it
	// fails as a job, leaving the session and its applied state intact.
	h.ingest(t, "chaos", driftSQL)
	var sub SubmitJobResponse
	h.mustCall(t, "POST", "/v1/sessions/chaos/retune", nil, &sub, http.StatusAccepted)
	if st := h.waitTerminal(t, sub.ID); st.State != string(JobFailed) {
		t.Fatalf("retune under permanent outage = %s (%s), want failed", st.State, st.Error)
	}
	if ci := h.continuousInfo(t, "chaos"); len(ci.Applied) == 0 {
		t.Fatalf("failed cycle must not clear the applied configuration: %+v", ci)
	}

	// Outage over: the loop recovers on the next cycle.
	faults.Reset()
	if _, res := h.retune(t, "chaos"); res.Skipped {
		t.Fatalf("healthy retune after outage = %+v, want a search", res)
	}
	if resp := h.ingest(t, "chaos", fixtureSQL); resp.ObservedRatio <= 0 {
		t.Fatalf("guardrail did not resume after outage: %+v", resp)
	}
}

// TestContinuousJournalReplay is the crash/restart cycle for the
// continuous loop: a journaled server ingests, applies, rolls back and
// re-applies; a second server replaying the same journal reconstructs
// the identical window (seeded reservoir) and the identical applied
// configuration and counters, and keeps serving the loop.
func TestContinuousJournalReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "state.jsonl")
	h1 := newTestServer(t, Config{JournalPath: journal})
	h1.newContinuousSession(t, "live", 5)
	h1.ingest(t, "live", fixtureSQL)
	if _, res := h1.retune(t, "live"); !res.Applied {
		t.Fatalf("setup retune did not apply: %+v", res)
	}
	faults.Install(faults.Rule{
		Point: faults.ContinuousObserve, Mode: faults.ModeScale, Scale: 100, Count: 1,
	})
	resp := h1.ingest(t, "live", fixtureSQL)
	faults.Reset()
	if !resp.RolledBack {
		t.Fatalf("poisoned batch did not roll back: %+v", resp)
	}
	h1.ingest(t, "live", driftSQL)
	if _, res := h1.retune(t, "live"); !res.Applied {
		t.Fatalf("re-apply retune did not apply: %+v", res)
	}
	want := h1.continuousInfo(t, "live")

	// The replayed server must converge to the same state.
	h2 := newTestServer(t, Config{JournalPath: journal})
	got := h2.continuousInfo(t, "live")
	if got.Applies != want.Applies || got.Rollbacks != want.Rollbacks {
		t.Fatalf("replayed counters = %d applies / %d rollbacks, want %d / %d",
			got.Applies, got.Rollbacks, want.Applies, want.Rollbacks)
	}
	if got.WindowTemplates != want.WindowTemplates || got.WindowMembers != want.WindowMembers ||
		got.Generation != want.Generation {
		t.Fatalf("replayed window = %+v, want %+v", got, want)
	}
	if math.Abs(got.WindowWeight-want.WindowWeight) > 1e-9 {
		t.Fatalf("replayed window weight %v, want %v", got.WindowWeight, want.WindowWeight)
	}
	if len(got.Applied) != len(want.Applied) {
		t.Fatalf("replayed applied = %+v, want %+v", got.Applied, want.Applied)
	}
	for i := range want.Applied {
		g, w := got.Applied[i], want.Applied[i]
		if g.Table != w.Table || strings.Join(g.Columns, ",") != strings.Join(w.Columns, ",") {
			t.Fatalf("replayed applied[%d] = %+v, want %+v", i, g, w)
		}
	}
	if got.AppliedEst != want.AppliedEst {
		t.Fatalf("replayed applied est %v, want %v", got.AppliedEst, want.AppliedEst)
	}

	// The loop survives the restart: unchanged window skips, and
	// ingestion keeps folding.
	if _, res := h2.retune(t, "live"); !res.Skipped {
		t.Fatalf("post-replay retune over unchanged window = %+v, want skipped", res)
	}
	if resp := h2.ingest(t, "live", fixtureSQL); resp.RolledBack {
		t.Fatalf("post-replay clean ingest rolled back: %+v", resp)
	}
}
