package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"indexmerge/internal/faults"
	"indexmerge/internal/server/quota"
)

// callAs is call with an X-Tenant header attached.
func (h *testServer) callAs(t *testing.T, tenant, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

// sameTemplateSQL builds n statements that fingerprint to one template
// (literals differ), so a window accumulates n reservoir members.
func sameTemplateSQL(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "SELECT k, m3 FROM fact WHERE k = %d\n", i+1)
	}
	return sb.String()
}

// TestTenantIdentity covers tenant resolution and enforcement: the
// creation request records the owner (header or body), session-scoped
// routes reject a mismatched claim with a machine-readable 403, and
// unclaimed requests keep working (single-tenant compatibility).
func TestTenantIdentity(t *testing.T) {
	h := newTestServer(t, Config{})
	db := fixtureDB(t)

	var info SessionInfo
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a", DB: db, Tenant: "alice"}, &info, http.StatusCreated)
	if info.Tenant != "alice" {
		t.Fatalf("session tenant = %q, want alice", info.Tenant)
	}
	h.mustCall(t, "POST", "/v1/sessions/a/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusCreated)

	// Header sets the tenant when the body leaves it empty; a
	// disagreement between the two is a 400.
	if code := h.callAs(t, "bob", "POST", "/v1/sessions",
		CreateSessionRequest{Name: "b", DB: db}, &info); code != http.StatusCreated {
		t.Fatalf("header-tenant create status = %d", code)
	}
	if info.Tenant != "bob" {
		t.Fatalf("header-set tenant = %q, want bob", info.Tenant)
	}
	if code := h.callAs(t, "bob", "POST", "/v1/sessions",
		CreateSessionRequest{Name: "c", DB: db, Tenant: "alice"}, nil); code != http.StatusBadRequest {
		t.Fatalf("conflicting tenant claim status = %d, want 400", code)
	}

	// A claimed tenant must own the session it touches.
	var errResp ErrorResponse
	if code := h.callAs(t, "bob", "POST", "/v1/sessions/a/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, &errResp); code != http.StatusForbidden {
		t.Fatalf("cross-tenant cost status = %d, want 403", code)
	}
	if errResp.Code != "tenant_mismatch" || errResp.Tenant != "bob" {
		t.Errorf("403 body = %+v, want code=tenant_mismatch tenant=bob", errResp)
	}
	if code := h.callAs(t, "bob", "DELETE", "/v1/sessions/a", nil, nil); code != http.StatusForbidden {
		t.Fatalf("cross-tenant delete status = %d, want 403", code)
	}

	// The owner, and unclaimed requests, both pass.
	h.mustCall(t, "POST", "/v1/sessions/a/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, nil, http.StatusOK)
	if code := h.callAs(t, "alice", "POST", "/v1/sessions/a/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, nil); code != http.StatusOK {
		t.Fatalf("owner cost status = %d, want 200", code)
	}
}

// TestSessionQuotaHTTP exercises the per-tenant session ceiling over
// HTTP: the 429 carries Retry-After plus the structured body, other
// tenants are unaffected, and deleting a session frees the slot.
func TestSessionQuotaHTTP(t *testing.T) {
	h := newTestServer(t, Config{Quota: quota.Limits{MaxSessions: 1}})
	db := fixtureDB(t)

	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "t1a", DB: db, Tenant: "t1"}, nil, http.StatusCreated)

	req, _ := http.NewRequest("POST", h.ts.URL+"/v1/sessions",
		strings.NewReader(fmt.Sprintf(`{"name":"t1b","db":%q,"tenant":"t1"}`, db)))
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	var errResp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatal(err)
	}
	if errResp.Code != "quota_sessions" || errResp.Tenant != "t1" ||
		errResp.Limit != 1 || errResp.Current != 1 || errResp.RetryAfterSec < 1 {
		t.Errorf("429 body = %+v", errResp)
	}

	// A different tenant is not starved by t1's usage.
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "t2a", DB: db, Tenant: "t2"}, nil, http.StatusCreated)

	// Deleting t1's session frees the slot.
	h.mustCall(t, "DELETE", "/v1/sessions/t1a", nil, nil, http.StatusOK)
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "t1b", DB: db, Tenant: "t1"}, nil, http.StatusCreated)
}

// TestIngestRateQuota: the token bucket admits a burst, rejects the
// next batch with a refill-derived Retry-After, and counts the shed
// statements.
func TestIngestRateQuota(t *testing.T) {
	h := newTestServer(t, Config{Quota: quota.Limits{IngestPerSec: 1, IngestBurst: 5}})
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{
		Name: "live", DB: fixtureDB(t), Continuous: &ContinuousSpec{Seed: 5},
	}, nil, http.StatusCreated)

	// fixtureSQL is 5 statements: exactly the burst.
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: fixtureSQL}, nil, http.StatusOK)
	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: fixtureSQL}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "quota_ingest_rate" || errResp.RetryAfterSec < 1 {
		t.Errorf("rate-limited ingest body = %+v", errResp)
	}
	if u := h.srv.reg.Quota().UsageFor(DefaultTenant); u.IngestShed != 5 {
		t.Errorf("ingest shed count = %d, want 5", u.IngestShed)
	}
}

// TestMemoryQuota: once a tenant's accounted bytes reach its budget,
// further ingest is rejected with the structured 429.
func TestMemoryQuota(t *testing.T) {
	h := newTestServer(t, Config{Quota: quota.Limits{MemoryBytes: 1}})
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{
		Name: "live", DB: fixtureDB(t), Continuous: &ContinuousSpec{Seed: 5},
	}, nil, http.StatusCreated)

	// First batch folds (the tenant holds 0 accounted bytes); the next
	// one finds the tenant over its 1-byte budget.
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: fixtureSQL}, nil, http.StatusOK)
	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: fixtureSQL}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "quota_memory" || errResp.Limit != 1 || errResp.Current <= 0 {
		t.Errorf("over-memory ingest body = %+v", errResp)
	}
}

// TestQuotaFaultPoints: the chaos hooks convert armed rules into
// deterministic rejections at both admission points.
func TestQuotaFaultPoints(t *testing.T) {
	h := newTestServer(t, Config{})
	db := fixtureDB(t)

	rules, err := faults.ParseRules("point=quota.admit,mode=error,count=1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(rules...)
	defer faults.Reset()
	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "s", DB: db}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "quota_shed" {
		t.Errorf("quota.admit shed body = %+v", errResp)
	}
	// The rule's one-shot window is spent: the retry is admitted.
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "s", DB: db}, nil, http.StatusCreated)

	faults.Reset()
	rules, err = faults.ParseRules("point=quota.memory,mode=error,count=1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Install(rules...)
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "quota_memory" {
		t.Errorf("quota.memory shed body = %+v", errResp)
	}
	h.mustCall(t, "POST", "/v1/sessions/s/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusCreated)
}

// TestJobDeadline is the deadline acceptance check: a job submitted
// with a 50ms timeout against an artificially slow optimizer ends in
// state deadline_exceeded, frees its quota slot, and leaves the
// session usable.
func TestJobDeadline(t *testing.T) {
	h := newTestServer(t, Config{Quota: quota.Limits{MaxJobs: 1}})
	h.newSession(t, "s")

	faults.Install(faults.Rule{Point: faults.OptimizerCost, Mode: faults.ModeLatency, Latency: 20 * time.Millisecond})
	var resp SubmitJobResponse
	h.mustCall(t, "POST", "/v1/sessions/s/jobs", SubmitJobRequest{
		Workload: "w",
		Initial:  &InitialSpec{Indexes: fixtureIndexes},
		Options:  JobOptions{Constraint: 0.3, TimeoutMS: 50},
	}, &resp, http.StatusAccepted)
	st := h.waitTerminal(t, resp.ID)
	faults.Reset()
	if st.State != string(JobDeadlineExceeded) {
		t.Fatalf("timed-out job state = %s (error %q), want deadline_exceeded", st.State, st.Error)
	}
	if st.Tenant != DefaultTenant {
		t.Errorf("job tenant = %q, want %q", st.Tenant, DefaultTenant)
	}

	// The quota slot is back (MaxJobs is 1) and the session still works:
	// an untimed rerun completes.
	id := h.submitJob(t, "s")
	if st := h.waitTerminal(t, id); st.State != string(JobDone) {
		t.Fatalf("post-deadline rerun state = %s (error %q), want done", st.State, st.Error)
	}
	if !strings.Contains(h.metricsText(t), "idxmerged_deadline_exceeded_total 1") {
		t.Error("deadline_exceeded counter not in /metrics")
	}
}

// TestCostAbandoned: a synchronous costing request whose client goes
// away stops mid-workload instead of burning the remaining optimizer
// calls, and is counted.
func TestCostAbandoned(t *testing.T) {
	h := newTestServer(t, Config{})
	h.newSession(t, "s")

	faults.Install(faults.Rule{Point: faults.OptimizerCost, Mode: faults.ModeLatency, Latency: 30 * time.Millisecond})
	defer faults.Reset()

	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(CostRequest{Workload: "w", Indexes: fixtureIndexes})
	req, err := http.NewRequestWithContext(ctx, "POST", h.ts.URL+"/v1/sessions/s/cost", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := h.ts.Client().Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("abandoned cost request unexpectedly completed: %d", resp.StatusCode)
	}

	// The handler notices the disconnect at its next between-queries
	// check; give it a moment, then the counter must read 1.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(h.metricsText(t), "idxmerged_requests_abandoned_total 1") {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("idxmerged_requests_abandoned_total never reached 1")
}

// measureIngestBytes runs the canonical ladder fixture (continuous
// session + workload + one 20-member single-template batch) on a
// throwaway server and reports the session's accounted bytes. The
// accounting is deterministic (seeded reservoir, fixed entry sizes),
// so ladder tests can size budgets relative to it.
func measureIngestBytes(t *testing.T) int64 {
	t.Helper()
	h := newTestServer(t, Config{})
	setupLadderSession(t, h)
	var info SessionInfo
	h.mustCall(t, "GET", "/v1/sessions/live", nil, &info, http.StatusOK)
	if info.AccountedBytes <= 0 {
		t.Fatalf("fixture accounted bytes = %d, want > 0", info.AccountedBytes)
	}
	return info.AccountedBytes
}

func setupLadderSession(t *testing.T, h *testServer) {
	t.Helper()
	h.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{
		Name: "live", DB: fixtureDB(t), Continuous: &ContinuousSpec{Seed: 9},
	}, nil, http.StatusCreated)
	h.mustCall(t, "POST", "/v1/sessions/live/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil, http.StatusCreated)
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: sameTemplateSQL(20)}, nil, http.StatusOK)
}

// TestBrownoutStage1 drives real memory pressure to ~80% of budget:
// synchronous costing sheds with a 429, the continuous window is
// shrunk to the brownout bound, and — pressure relieved — the next
// costing request is served again.
func TestBrownoutStage1(t *testing.T) {
	bytes0 := measureIngestBytes(t)
	h := newTestServer(t, Config{MemoryBudgetBytes: bytes0 * 100 / 80}) // ratio ≈ 0.80
	setupLadderSession(t, h)

	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions/live/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "brownout" || errResp.Current != 1 {
		t.Fatalf("stage-1 cost shed body = %+v", errResp)
	}
	var info SessionInfo
	h.mustCall(t, "GET", "/v1/sessions/live", nil, &info, http.StatusOK)
	if info.Continuous == nil || info.Continuous.WindowMembers > 8 {
		t.Fatalf("post-shed window members = %+v, want <= 8", info.Continuous)
	}
	if info.AccountedBytes >= bytes0 {
		t.Fatalf("post-shed bytes = %d, want < %d", info.AccountedBytes, bytes0)
	}
	// Shedding brought pressure back under stage 1: costing serves again.
	h.mustCall(t, "POST", "/v1/sessions/live/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, nil, http.StatusOK)
	text := h.metricsText(t)
	if !strings.Contains(text, "idxmerged_brownout_transitions_total") ||
		!strings.Contains(text, `idxmerged_shed_total{reason="brownout"`) {
		t.Error("brownout series missing from /metrics")
	}
}

// TestBrownoutStage2 at ~91% of budget: re-tune cycles are refused
// with the ladder's 429 while the shed also relieves the pressure.
func TestBrownoutStage2(t *testing.T) {
	bytes0 := measureIngestBytes(t)
	h := newTestServer(t, Config{MemoryBudgetBytes: bytes0 * 100 / 91}) // ratio ≈ 0.91
	setupLadderSession(t, h)

	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions/live/retune", nil, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "brownout" || errResp.Current != 2 {
		t.Fatalf("stage-2 retune shed body = %+v", errResp)
	}
	// Shedding recovered the ladder: ingest folds normally again.
	var ing IngestResponse
	h.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: fixtureSQL}, &ing, http.StatusOK)
	if ing.Shed {
		t.Fatalf("post-recovery ingest still shed: %+v", ing)
	}
}

// TestBrownoutStage3 at 100% of budget: new sessions, workloads and
// jobs are refused while shedding drives accounted memory back under
// the stage-1 line — never above budget.
func TestBrownoutStage3(t *testing.T) {
	bytes0 := measureIngestBytes(t)
	h := newTestServer(t, Config{MemoryBudgetBytes: bytes0}) // ratio = 1.0
	setupLadderSession(t, h)

	var errResp ErrorResponse
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "late", DB: fixtureDB(t)}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "brownout" || errResp.Current != 3 || errResp.RetryAfterSec != 1 {
		t.Fatalf("stage-3 create shed body = %+v", errResp)
	}
	if got := h.srv.reg.totalBytes(); got > bytes0 {
		t.Fatalf("accounted bytes %d above budget %d after stage-3 shed", got, bytes0)
	}
	// Pressure relieved by the shed: the ladder steps back down and the
	// same request is admitted.
	h.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "late", DB: fixtureDB(t)}, nil, http.StatusCreated)
}

// TestGuardrailSurvivesShed pins the stage-2 contract: a shed ingest
// batch folds nothing, but its observed costs still feed the rollback
// guardrail — overload cannot disable rollback protection.
func TestGuardrailSurvivesShed(t *testing.T) {
	h := newTestServer(t, Config{MemoryBudgetBytes: 1 << 30})
	h.newContinuousSession(t, "guard", 3)
	h.ingest(t, "guard", fixtureSQL)
	var jr SubmitJobResponse
	h.mustCall(t, "POST", "/v1/sessions/guard/retune", nil, &jr, http.StatusAccepted)
	if st := h.waitTerminal(t, jr.ID); st.State != string(JobDone) || !st.Applied {
		t.Fatalf("retune state=%s applied=%v (error %q); need an applied config", st.State, st.Applied, st.Error)
	}

	// Force the ladder to stage >= 2 (scale fault on brownout.stage) and
	// a guardrail breach (scale fault on the observation) in one batch.
	faults.Install(
		faults.Rule{Point: faults.BrownoutStage, Mode: faults.ModeScale, Scale: 1e9},
		faults.Rule{Point: faults.ContinuousObserve, Mode: faults.ModeScale, Scale: 100, Count: 1},
	)
	defer faults.Reset()
	var resp IngestResponse
	h.mustCall(t, "POST", "/v1/sessions/guard/ingest",
		IngestRequest{SQL: fixtureSQL}, &resp, http.StatusOK)
	if !resp.Shed {
		t.Fatalf("stage-forced ingest was not shed: %+v", resp)
	}
	if !resp.RolledBack {
		t.Fatalf("guardrail did not fire on shed batch: %+v", resp)
	}
	info := h.continuousInfo(t, "guard")
	if info.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", info.Rollbacks)
	}
}

// TestQueueFullStructured upgrades the pre-existing bare queue-full
// 429: Retry-After plus code/quota/limit/current in the body.
func TestQueueFullStructured(t *testing.T) {
	h := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	sig, release := gateHook(h.srv)
	defer release()
	h.newSession(t, "s")

	id1 := h.submitJob(t, "s")
	select {
	case <-sig:
	case <-time.After(30 * time.Second):
		t.Fatal("job-1 never reported progress")
	}
	h.submitJob(t, "s") // fills the queue slot

	body, _ := json.Marshal(SubmitJobRequest{Workload: "w", Initial: &InitialSpec{Indexes: fixtureIndexes}})
	resp, err := h.ts.Client().Post(h.ts.URL+"/v1/sessions/s/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	var errResp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil {
		t.Fatal(err)
	}
	if errResp.Code != "queue_full" || errResp.Quota != "job_queue" ||
		errResp.Limit != 1 || errResp.Current != 1 || !strings.Contains(errResp.Error, "queue full") {
		t.Errorf("queue-full body = %+v", errResp)
	}
	release()
	h.waitTerminal(t, id1)
}

// TestNoisyNeighborIsolation is the isolation acceptance check: a
// hostile tenant hammering ingest, job submission and cross-tenant
// access cannot change another tenant's recommendation bytes, and the
// storm's shed shows up in per-tenant accounting. Run with -race.
func TestNoisyNeighborIsolation(t *testing.T) {
	// Baseline: the quiet tenant's merge on an idle server.
	quiet := newTestServer(t, Config{})
	quiet.newSession(t, "quiet")
	baseID := quiet.submitJob(t, "quiet")
	if st := quiet.waitTerminal(t, baseID); st.State != string(JobDone) {
		t.Fatalf("baseline job state = %s (%s)", st.State, st.Error)
	}
	var baseRes JobResult
	quiet.mustCall(t, "GET", "/v1/jobs/"+baseID+"/result", nil, &baseRes, http.StatusOK)

	// Contended server: tight quotas, a global budget, and a noisy
	// tenant doing its worst from three goroutines.
	h := newTestServer(t, Config{
		Workers:  2,
		QueueCap: 4,
		Quota: quota.Limits{
			MaxSessions: 2, MaxJobs: 1,
			IngestPerSec: 50, IngestBurst: 50,
		},
		MemoryBudgetBytes: 1 << 20,
	})
	if code := h.callAs(t, "quiet", "POST", "/v1/sessions",
		CreateSessionRequest{Name: "quiet", DB: fixtureDB(t)}, nil); code != http.StatusCreated {
		t.Fatalf("quiet session create status = %d", code)
	}
	if code := h.callAs(t, "quiet", "POST", "/v1/sessions/quiet/workloads",
		RegisterWorkloadRequest{Name: "w", SQL: fixtureSQL}, nil); code != http.StatusCreated {
		t.Fatalf("quiet workload register status = %d", code)
	}
	if code := h.callAs(t, "noisy", "POST", "/v1/sessions", CreateSessionRequest{
		Name: "noisy", DB: fixtureDB(t), Continuous: &ContinuousSpec{Seed: 1},
	}, nil); code != http.StatusCreated {
		t.Fatalf("noisy session create status = %d", code)
	}

	// rawPost avoids t.* helpers (these run off the test goroutine).
	rawPost := func(tenant, path string, payload any) int {
		b, _ := json.Marshal(payload)
		req, err := http.NewRequest("POST", h.ts.URL+path, bytes.NewReader(b))
		if err != nil {
			return 0
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := h.ts.Client().Do(req)
		if err != nil {
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var crossOK, crossForbidden, ingestShed int
	wg.Add(3)
	go func() { // ingest storm: rate quota sheds most of it
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rawPost("noisy", "/v1/sessions/noisy/ingest", IngestRequest{SQL: fixtureSQL}) == http.StatusTooManyRequests {
				ingestShed++
			}
		}
	}()
	go func() { // job storm against its own session (MaxJobs 1)
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rawPost("noisy", "/v1/sessions/noisy/retune", nil)
		}
	}()
	go func() { // cross-tenant attack on the quiet session
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rawPost("noisy", "/v1/sessions/quiet/cost", CostRequest{Workload: "w", Indexes: fixtureIndexes}) {
			case http.StatusOK:
				crossOK++
			case http.StatusForbidden:
				crossForbidden++
			}
		}
	}()

	// The quiet tenant's merge, mid-storm.
	var sub SubmitJobResponse
	if code := h.callAs(t, "quiet", "POST", "/v1/sessions/quiet/jobs", SubmitJobRequest{
		Workload: "w",
		Initial:  &InitialSpec{Indexes: fixtureIndexes},
		Options:  JobOptions{Constraint: 0.3},
	}, &sub); code != http.StatusAccepted {
		t.Fatalf("quiet job submit status = %d", code)
	}
	st := h.waitTerminal(t, sub.ID)
	close(stop)
	wg.Wait()
	if st.State != string(JobDone) {
		t.Fatalf("quiet job state = %s (%s), want done", st.State, st.Error)
	}

	var res JobResult
	h.mustCall(t, "GET", "/v1/jobs/"+sub.ID+"/result", nil, &res, http.StatusOK)
	if res.Merge == nil || baseRes.Merge == nil {
		t.Fatal("missing merge payloads")
	}
	got, want := *res.Merge, *baseRes.Merge
	got.ElapsedSeconds, want.ElapsedSeconds = 0, 0
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("noisy neighbor changed the quiet tenant's recommendation bytes:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}

	if crossOK != 0 {
		t.Errorf("%d cross-tenant requests served, want 0", crossOK)
	}
	if crossForbidden == 0 {
		t.Error("no cross-tenant request observed; attack goroutine never ran")
	}
	if got := h.srv.reg.totalBytes(); got > 1<<20 {
		t.Errorf("accounted bytes %d above the 1MiB budget", got)
	}
	text := h.metricsText(t)
	if !strings.Contains(text, `tenant="noisy"`) || !strings.Contains(text, `tenant="quiet"`) {
		t.Error("per-tenant gauges missing from /metrics")
	}
	if ingestShed > 0 && !strings.Contains(text, `idxmerged_shed_total{reason="quota_ingest_rate",tenant="noisy"}`) {
		t.Error("ingest-rate shed counter missing from /metrics")
	}
}

// TestQuotaRestartAccounting is the crash-ordering check: after a
// restart, journal replay re-drives the same acquire/release sequence
// and rebuilds per-tenant session, job and memory accounting exactly.
func TestQuotaRestartAccounting(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	cfg := Config{JournalPath: journal, Quota: quota.Limits{MaxSessions: 2}}
	db := fixtureDB(t)

	h1 := newTestServer(t, cfg)
	h1.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a1", DB: db, Tenant: "alice"}, nil, http.StatusCreated)
	h1.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a2", DB: db, Tenant: "alice"}, nil, http.StatusCreated)
	h1.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a3", DB: db, Tenant: "alice"}, nil, http.StatusTooManyRequests)
	h1.mustCall(t, "DELETE", "/v1/sessions/a1", nil, nil, http.StatusOK)
	h1.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a3", DB: db, Tenant: "alice"}, nil, http.StatusCreated)
	h1.mustCall(t, "POST", "/v1/sessions", CreateSessionRequest{
		Name: "b1", DB: db, Tenant: "bob", Continuous: &ContinuousSpec{Seed: 4},
	}, nil, http.StatusCreated)
	h1.mustCall(t, "POST", "/v1/sessions/b1/ingest",
		IngestRequest{SQL: sameTemplateSQL(12)}, nil, http.StatusOK)
	var before SessionInfo
	h1.mustCall(t, "GET", "/v1/sessions/b1", nil, &before, http.StatusOK)

	// "Crash": abandon h1 (its journal is fsynced per event — whatever
	// was acknowledged is on disk) and replay into a fresh server.
	h2 := newTestServer(t, cfg)
	if u := h2.srv.reg.Quota().UsageFor("alice"); u.Sessions != 2 {
		t.Fatalf("replayed alice sessions = %d, want 2", u.Sessions)
	}
	if u := h2.srv.reg.Quota().UsageFor("bob"); u.Sessions != 1 {
		t.Fatalf("replayed bob sessions = %d, want 1", u.Sessions)
	}
	if u := h2.srv.reg.Quota().UsageFor("alice"); u.Jobs != 0 {
		t.Fatalf("replayed alice jobs = %d, want 0", u.Jobs)
	}
	// Memory accounting replays byte-exactly (seeded reservoirs).
	var after SessionInfo
	h2.mustCall(t, "GET", "/v1/sessions/b1", nil, &after, http.StatusOK)
	if after.AccountedBytes != before.AccountedBytes || after.Tenant != "bob" {
		t.Fatalf("replayed b1 = %d bytes tenant %q, want %d bytes tenant bob",
			after.AccountedBytes, after.Tenant, before.AccountedBytes)
	}
	// The rebuilt accounting still enforces: alice is at her limit.
	var errResp ErrorResponse
	h2.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a4", DB: db, Tenant: "alice"}, &errResp, http.StatusTooManyRequests)
	if errResp.Code != "quota_sessions" {
		t.Fatalf("post-replay over-quota body = %+v", errResp)
	}
	h2.mustCall(t, "DELETE", "/v1/sessions/a2", nil, nil, http.StatusOK)
	h2.mustCall(t, "POST", "/v1/sessions",
		CreateSessionRequest{Name: "a4", DB: db, Tenant: "alice"}, nil, http.StatusCreated)
}

// TestBrownoutShrinkReplay: a journaled brownout shrink replays at the
// same point in the fold sequence, so post-shrink ingest sampling —
// and therefore the window's accounted bytes — replay byte-exactly.
func TestBrownoutShrinkReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	bytes0 := measureIngestBytes(t)
	cfg := Config{JournalPath: journal, MemoryBudgetBytes: bytes0 * 100 / 80}

	h1 := newTestServer(t, cfg)
	setupLadderSession(t, h1)
	// Trip stage 1 (shrink journaled), then keep folding post-shrink.
	h1.mustCall(t, "POST", "/v1/sessions/live/cost",
		CostRequest{Workload: "w", Indexes: fixtureIndexes}, nil, http.StatusTooManyRequests)
	h1.mustCall(t, "POST", "/v1/sessions/live/ingest",
		IngestRequest{SQL: sameTemplateSQL(6)}, nil, http.StatusOK)
	var before SessionInfo
	h1.mustCall(t, "GET", "/v1/sessions/live", nil, &before, http.StatusOK)

	h2 := newTestServer(t, cfg)
	var after SessionInfo
	h2.mustCall(t, "GET", "/v1/sessions/live", nil, &after, http.StatusOK)
	if after.AccountedBytes != before.AccountedBytes {
		t.Fatalf("replayed bytes = %d, want %d", after.AccountedBytes, before.AccountedBytes)
	}
	if after.Continuous == nil || before.Continuous == nil ||
		after.Continuous.WindowMembers != before.Continuous.WindowMembers {
		t.Fatalf("replayed window = %+v, want %+v", after.Continuous, before.Continuous)
	}
}
