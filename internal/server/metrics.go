package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// histogram is a fixed-bucket latency histogram with Prometheus
// cumulative-bucket semantics. Safe for concurrent observation.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// write emits the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name string) {
	h.writeLabeled(w, name, "")
}

// writeLabeled emits the histogram with an extra label set (e.g.
// `route="GET /healthz"`) merged into every series.
func (h *histogram) writeLabeled(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count)
	}
}

// Metrics aggregates service-level observability counters, exposed in
// Prometheus text format on /metrics. Everything is hand-rolled — the
// container deliberately takes no dependencies.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "route|code" -> count
	jobs     map[string]int64 // terminal state -> count
	shed     map[string]int64 // "reason|tenant" -> requests shed by admission control

	jobsSubmitted atomic.Int64
	jobsRejected  atomic.Int64 // backpressure 429s

	optimizerCalls  atomic.Int64 // summed over finished jobs + sync costings
	costEvaluations atomic.Int64
	jobAllocs       atomic.Int64 // Mallocs deltas summed over finished jobs (approximate)

	// Distributed-costing counters, summed over finished jobs: batches
	// and items served by the worker pool, and batches that fell back
	// to local costing.
	remoteBatches   atomic.Int64
	remoteItems     atomic.Int64
	remoteFallbacks atomic.Int64

	// Continuous-mode counters: ingested batches/statements and the
	// control loop's applies, rollbacks and re-tune cycles.
	ingestBatches    atomic.Int64
	ingestStatements atomic.Int64
	contApplies      atomic.Int64
	contRollbacks    atomic.Int64
	contRetunes      atomic.Int64
	contRetuneSkips  atomic.Int64

	// Robustness counters (fault-injection, degraded mode, recovery).
	costingRetries       atomic.Int64 // transient costing failures retried
	costingDegraded      atomic.Int64 // constraint decisions served by the external model
	costingPanics        atomic.Int64 // costing panics converted to typed errors
	degradedJobs         atomic.Int64 // jobs whose result carries Degraded
	handlerPanics        atomic.Int64 // HTTP handler panics recovered
	workerPanics         atomic.Int64 // job worker panics recovered (job -> failed)
	recoveredSessions    atomic.Int64 // sessions rebuilt from the journal at startup
	recoveredJobs        atomic.Int64 // job records restored from the journal
	recoveredInterrupted atomic.Int64 // recovered jobs that were non-terminal at crash

	// Tenancy / overload counters.
	requestsAbandoned   atomic.Int64 // sync costings stopped by client disconnect
	deadlineExceeded    atomic.Int64 // jobs terminated by their own deadline
	brownoutTransitions atomic.Int64 // brownout ladder stage changes

	searchSeconds *histogram
	httpSeconds   *histogram
	routeSeconds  map[string]*histogram // per-endpoint latency, keyed by route pattern
}

// httpBounds are the latency buckets shared by the aggregate and the
// per-endpoint HTTP histograms.
var httpBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:      make(map[string]int64),
		jobs:          make(map[string]int64),
		shed:          make(map[string]int64),
		searchSeconds: newHistogram([]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}),
		httpSeconds:   newHistogram(httpBounds),
		routeSeconds:  make(map[string]*histogram),
	}
}

func (m *Metrics) observeRequest(route string, code int, seconds float64) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	rh := m.routeSeconds[route]
	if rh == nil {
		rh = newHistogram(httpBounds)
		m.routeSeconds[route] = rh
	}
	m.mu.Unlock()
	m.httpSeconds.observe(seconds)
	rh.observe(seconds)
}

func (m *Metrics) observeJobEnd(state JobState, seconds float64, optimizerCalls, costEvaluations int64) {
	m.mu.Lock()
	m.jobs[string(state)]++
	m.mu.Unlock()
	if state == JobDeadlineExceeded {
		m.deadlineExceeded.Add(1)
	}
	m.searchSeconds.observe(seconds)
	m.optimizerCalls.Add(optimizerCalls)
	m.costEvaluations.Add(costEvaluations)
}

// observeShed counts one admission-control rejection, labeled by the
// quota/brownout reason and the tenant it hit.
func (m *Metrics) observeShed(reason, tenant string) {
	m.mu.Lock()
	m.shed[reason+"|"+tenant]++
	m.mu.Unlock()
}

// SessionGauges is a point-in-time per-session snapshot gathered at
// scrape time.
type SessionGauges struct {
	Name           string
	CacheEntries   int
	CacheHits      int64
	CacheMisses    int64
	CacheDedups    int64
	CacheEvictions int64
	PreparedReuse  int64
	// Compression counters, summed over the session's registered
	// workloads: template count, and the (template, atom) cost tables'
	// size and hit/miss totals.
	Templates        int
	CostTableEntries int
	CostTableHits    int64
	CostTableMisses  int64
	// Breaker snapshots the session's costing circuit breaker.
	BreakerState       string
	BreakerTransitions int64
	// Continuous-loop gauges (zero for request/response sessions;
	// Continuous gates the per-session series).
	Continuous       bool
	WindowTemplates  int
	WindowMembers    int
	WindowWeight     float64
	WindowGeneration int64
	AppliedIndexes   int
	ObservedRatio    float64
	ContApplies      int64
	ContRollbacks    int64
}

// JobGauges is a point-in-time snapshot of non-terminal job states.
type JobGauges struct {
	Queued  int
	Running int
}

// TenantGauges is a point-in-time per-tenant snapshot gathered at
// scrape time.
type TenantGauges struct {
	Tenant     string
	Sessions   int
	Jobs       int
	Bytes      int64 // accounted memory across the tenant's sessions
	IngestShed int64 // statements rejected by the ingest rate limiter
}

// OverloadGauges snapshots the admission/brownout state for the
// metrics scrape (nil = the section is omitted).
type OverloadGauges struct {
	BrownoutStage  int
	AccountedBytes int64
	MemoryBudget   int64
	Tenants        []TenantGauges
}

// PoolGauges snapshots the distributed-costing worker pool for the
// metrics scrape (nil pool = the section is omitted).
type PoolGauges struct {
	Workers   int
	Healthy   int
	Batches   int64
	Items     int64
	RPCs      int64
	RPCErrors int64
	Hedges    int64
}

// Write emits every series. Gauges are gathered by the caller at
// scrape time (sessions, the job manager and the worker pool own that
// state).
func (m *Metrics) Write(w io.Writer, jg JobGauges, sessions []SessionGauges, pool *PoolGauges, og *OverloadGauges, snapshotReuses int64, residentSnapshots int) {
	fmt.Fprintln(w, "# TYPE idxmerged_http_requests_total counter")
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Strings(reqKeys)
	for _, k := range reqKeys {
		route, code := k, ""
		for i := len(k) - 1; i >= 0; i-- {
			if k[i] == '|' {
				route, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "idxmerged_http_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}
	jobKeys := make([]string, 0, len(m.jobs))
	for k := range m.jobs {
		jobKeys = append(jobKeys, k)
	}
	sort.Strings(jobKeys)
	fmt.Fprintln(w, "# TYPE idxmerged_jobs_total counter")
	for _, k := range jobKeys {
		fmt.Fprintf(w, "idxmerged_jobs_total{state=%q} %d\n", k, m.jobs[k])
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# TYPE idxmerged_jobs_submitted_total counter")
	fmt.Fprintf(w, "idxmerged_jobs_submitted_total %d\n", m.jobsSubmitted.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_jobs_rejected_total counter")
	fmt.Fprintf(w, "idxmerged_jobs_rejected_total %d\n", m.jobsRejected.Load())

	fmt.Fprintln(w, "# TYPE idxmerged_jobs_active gauge")
	fmt.Fprintf(w, "idxmerged_jobs_active{state=\"queued\"} %d\n", jg.Queued)
	fmt.Fprintf(w, "idxmerged_jobs_active{state=\"running\"} %d\n", jg.Running)

	fmt.Fprintln(w, "# TYPE idxmerged_optimizer_calls_total counter")
	fmt.Fprintf(w, "idxmerged_optimizer_calls_total %d\n", m.optimizerCalls.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_cost_evaluations_total counter")
	fmt.Fprintf(w, "idxmerged_cost_evaluations_total %d\n", m.costEvaluations.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_job_allocs_total counter")
	fmt.Fprintf(w, "idxmerged_job_allocs_total %d\n", m.jobAllocs.Load())

	fmt.Fprintln(w, "# TYPE idxmerged_costing_retries_total counter")
	fmt.Fprintf(w, "idxmerged_costing_retries_total %d\n", m.costingRetries.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_costing_degraded_total counter")
	fmt.Fprintf(w, "idxmerged_costing_degraded_total %d\n", m.costingDegraded.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_costing_panics_recovered_total counter")
	fmt.Fprintf(w, "idxmerged_costing_panics_recovered_total %d\n", m.costingPanics.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_jobs_degraded_total counter")
	fmt.Fprintf(w, "idxmerged_jobs_degraded_total %d\n", m.degradedJobs.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_handler_panics_total counter")
	fmt.Fprintf(w, "idxmerged_handler_panics_total %d\n", m.handlerPanics.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_worker_panics_total counter")
	fmt.Fprintf(w, "idxmerged_worker_panics_total %d\n", m.workerPanics.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_recovered_sessions_total counter")
	fmt.Fprintf(w, "idxmerged_recovered_sessions_total %d\n", m.recoveredSessions.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_recovered_jobs_total counter")
	fmt.Fprintf(w, "idxmerged_recovered_jobs_total %d\n", m.recoveredJobs.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_recovered_interrupted_jobs_total counter")
	fmt.Fprintf(w, "idxmerged_recovered_interrupted_jobs_total %d\n", m.recoveredInterrupted.Load())

	fmt.Fprintln(w, "# TYPE idxmerged_sessions gauge")
	fmt.Fprintf(w, "idxmerged_sessions %d\n", len(sessions))
	fmt.Fprintln(w, "# TYPE idxmerged_costcache_entries gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_costcache_hits_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_costcache_misses_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_costcache_evictions_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_prepared_reuse_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_workload_templates gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_costtable_entries gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_costtable_hits_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_costtable_misses_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_breaker_state gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_breaker_transitions_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_window_templates gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_window_members gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_window_weight gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_window_generation gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_applied_indexes gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_observed_ratio gauge")
	fmt.Fprintln(w, "# TYPE idxmerged_session_applies_total counter")
	fmt.Fprintln(w, "# TYPE idxmerged_session_rollbacks_total counter")
	for _, s := range sessions {
		fmt.Fprintf(w, "idxmerged_costcache_entries{session=%q} %d\n", s.Name, s.CacheEntries)
		fmt.Fprintf(w, "idxmerged_costcache_hits_total{session=%q} %d\n", s.Name, s.CacheHits)
		fmt.Fprintf(w, "idxmerged_costcache_misses_total{session=%q} %d\n", s.Name, s.CacheMisses)
		fmt.Fprintf(w, "idxmerged_costcache_evictions_total{session=%q} %d\n", s.Name, s.CacheEvictions)
		fmt.Fprintf(w, "idxmerged_prepared_reuse_total{session=%q} %d\n", s.Name, s.PreparedReuse)
		fmt.Fprintf(w, "idxmerged_workload_templates{session=%q} %d\n", s.Name, s.Templates)
		fmt.Fprintf(w, "idxmerged_costtable_entries{session=%q} %d\n", s.Name, s.CostTableEntries)
		fmt.Fprintf(w, "idxmerged_costtable_hits_total{session=%q} %d\n", s.Name, s.CostTableHits)
		fmt.Fprintf(w, "idxmerged_costtable_misses_total{session=%q} %d\n", s.Name, s.CostTableMisses)
		fmt.Fprintf(w, "idxmerged_breaker_state{session=%q,state=%q} 1\n", s.Name, s.BreakerState)
		fmt.Fprintf(w, "idxmerged_breaker_transitions_total{session=%q} %d\n", s.Name, s.BreakerTransitions)
		if s.Continuous {
			fmt.Fprintf(w, "idxmerged_window_templates{session=%q} %d\n", s.Name, s.WindowTemplates)
			fmt.Fprintf(w, "idxmerged_window_members{session=%q} %d\n", s.Name, s.WindowMembers)
			fmt.Fprintf(w, "idxmerged_window_weight{session=%q} %g\n", s.Name, s.WindowWeight)
			fmt.Fprintf(w, "idxmerged_window_generation{session=%q} %d\n", s.Name, s.WindowGeneration)
			fmt.Fprintf(w, "idxmerged_applied_indexes{session=%q} %d\n", s.Name, s.AppliedIndexes)
			fmt.Fprintf(w, "idxmerged_observed_ratio{session=%q} %g\n", s.Name, s.ObservedRatio)
			fmt.Fprintf(w, "idxmerged_session_applies_total{session=%q} %d\n", s.Name, s.ContApplies)
			fmt.Fprintf(w, "idxmerged_session_rollbacks_total{session=%q} %d\n", s.Name, s.ContRollbacks)
		}
	}

	fmt.Fprintln(w, "# TYPE idxmerged_snapshot_reuses_total counter")
	fmt.Fprintf(w, "idxmerged_snapshot_reuses_total %d\n", snapshotReuses)
	fmt.Fprintln(w, "# TYPE idxmerged_snapshots_resident gauge")
	fmt.Fprintf(w, "idxmerged_snapshots_resident %d\n", residentSnapshots)

	fmt.Fprintln(w, "# TYPE idxmerged_ingest_batches_total counter")
	fmt.Fprintf(w, "idxmerged_ingest_batches_total %d\n", m.ingestBatches.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_ingest_statements_total counter")
	fmt.Fprintf(w, "idxmerged_ingest_statements_total %d\n", m.ingestStatements.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_applies_total counter")
	fmt.Fprintf(w, "idxmerged_applies_total %d\n", m.contApplies.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_rollbacks_total counter")
	fmt.Fprintf(w, "idxmerged_rollbacks_total %d\n", m.contRollbacks.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_retunes_total counter")
	fmt.Fprintf(w, "idxmerged_retunes_total %d\n", m.contRetunes.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_retune_skips_total counter")
	fmt.Fprintf(w, "idxmerged_retune_skips_total %d\n", m.contRetuneSkips.Load())

	fmt.Fprintln(w, "# TYPE idxmerged_requests_abandoned_total counter")
	fmt.Fprintf(w, "idxmerged_requests_abandoned_total %d\n", m.requestsAbandoned.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_deadline_exceeded_total counter")
	fmt.Fprintf(w, "idxmerged_deadline_exceeded_total %d\n", m.deadlineExceeded.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_shed_total counter")
	m.mu.Lock()
	shedKeys := make([]string, 0, len(m.shed))
	for k := range m.shed {
		shedKeys = append(shedKeys, k)
	}
	sort.Strings(shedKeys)
	for _, k := range shedKeys {
		reason, tenant := k, ""
		for i := len(k) - 1; i >= 0; i-- {
			if k[i] == '|' {
				reason, tenant = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "idxmerged_shed_total{reason=%q,tenant=%q} %d\n", reason, tenant, m.shed[k])
	}
	m.mu.Unlock()
	fmt.Fprintln(w, "# TYPE idxmerged_brownout_transitions_total counter")
	fmt.Fprintf(w, "idxmerged_brownout_transitions_total %d\n", m.brownoutTransitions.Load())
	if og != nil {
		fmt.Fprintln(w, "# TYPE idxmerged_brownout_stage gauge")
		fmt.Fprintf(w, "idxmerged_brownout_stage %d\n", og.BrownoutStage)
		fmt.Fprintln(w, "# TYPE idxmerged_accounted_bytes gauge")
		fmt.Fprintf(w, "idxmerged_accounted_bytes %d\n", og.AccountedBytes)
		fmt.Fprintln(w, "# TYPE idxmerged_memory_budget_bytes gauge")
		fmt.Fprintf(w, "idxmerged_memory_budget_bytes %d\n", og.MemoryBudget)
		fmt.Fprintln(w, "# TYPE idxmerged_tenant_sessions gauge")
		fmt.Fprintln(w, "# TYPE idxmerged_tenant_jobs gauge")
		fmt.Fprintln(w, "# TYPE idxmerged_tenant_bytes gauge")
		fmt.Fprintln(w, "# TYPE idxmerged_tenant_ingest_shed_total counter")
		for _, t := range og.Tenants {
			fmt.Fprintf(w, "idxmerged_tenant_sessions{tenant=%q} %d\n", t.Tenant, t.Sessions)
			fmt.Fprintf(w, "idxmerged_tenant_jobs{tenant=%q} %d\n", t.Tenant, t.Jobs)
			fmt.Fprintf(w, "idxmerged_tenant_bytes{tenant=%q} %d\n", t.Tenant, t.Bytes)
			fmt.Fprintf(w, "idxmerged_tenant_ingest_shed_total{tenant=%q} %d\n", t.Tenant, t.IngestShed)
		}
	}

	fmt.Fprintln(w, "# TYPE idxmerged_remote_batches_total counter")
	fmt.Fprintf(w, "idxmerged_remote_batches_total %d\n", m.remoteBatches.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_remote_items_total counter")
	fmt.Fprintf(w, "idxmerged_remote_items_total %d\n", m.remoteItems.Load())
	fmt.Fprintln(w, "# TYPE idxmerged_remote_fallbacks_total counter")
	fmt.Fprintf(w, "idxmerged_remote_fallbacks_total %d\n", m.remoteFallbacks.Load())
	if pool != nil {
		fmt.Fprintln(w, "# TYPE idxmerged_pool_workers gauge")
		fmt.Fprintf(w, "idxmerged_pool_workers %d\n", pool.Workers)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_workers_healthy gauge")
		fmt.Fprintf(w, "idxmerged_pool_workers_healthy %d\n", pool.Healthy)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_batches_total counter")
		fmt.Fprintf(w, "idxmerged_pool_batches_total %d\n", pool.Batches)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_items_total counter")
		fmt.Fprintf(w, "idxmerged_pool_items_total %d\n", pool.Items)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_rpcs_total counter")
		fmt.Fprintf(w, "idxmerged_pool_rpcs_total %d\n", pool.RPCs)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_rpc_errors_total counter")
		fmt.Fprintf(w, "idxmerged_pool_rpc_errors_total %d\n", pool.RPCErrors)
		fmt.Fprintln(w, "# TYPE idxmerged_pool_hedges_total counter")
		fmt.Fprintf(w, "idxmerged_pool_hedges_total %d\n", pool.Hedges)
	}

	fmt.Fprintln(w, "# TYPE idxmerged_search_seconds histogram")
	m.searchSeconds.write(w, "idxmerged_search_seconds")
	fmt.Fprintln(w, "# TYPE idxmerged_http_request_seconds histogram")
	m.httpSeconds.write(w, "idxmerged_http_request_seconds")
	fmt.Fprintln(w, "# TYPE idxmerged_http_route_seconds histogram")
	m.mu.Lock()
	routes := make([]string, 0, len(m.routeSeconds))
	for r := range m.routeSeconds {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	hists := make([]*histogram, len(routes))
	for i, r := range routes {
		hists[i] = m.routeSeconds[r]
	}
	m.mu.Unlock()
	for i, r := range routes {
		hists[i].writeLabeled(w, "idxmerged_http_route_seconds", fmt.Sprintf("route=%q", r))
	}
}
