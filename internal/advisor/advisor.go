// Package advisor implements per-query index tuning in the style of
// the Index Tuning Wizard [CNITW98, CN97]: for one query it proposes
// candidate indexes from the query's predicates, join, grouping,
// ordering and projection columns, evaluates them with optimizer-
// estimated costs over hypothetical configurations, and recommends the
// winning set. The paper builds its *initial configurations* exactly
// this way (§4.2.3): tune randomly drawn queries one at a time and
// union the recommendations — the query-at-a-time methodology whose
// storage explosion index merging then repairs.
package advisor

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"indexmerge/internal/catalog"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// Advisor recommends indexes for individual queries.
type Advisor struct {
	Meta catalog.SchemaHolder
	Opt  *optimizer.Optimizer

	// Parallelism bounds concurrent candidate costing in TuneQuery.
	// <= 1 (the default) costs candidates serially. Recommendations
	// are identical for any value: all candidates are costed against
	// the same already-chosen set, then the winner is picked in
	// candidate order.
	Parallelism int
}

// New creates an advisor over the database's metadata and an optimizer.
func New(meta catalog.SchemaHolder, opt *optimizer.Optimizer) *Advisor {
	return &Advisor{Meta: meta, Opt: opt}
}

// TuneQuery recommends a set of indexes (at most one per referenced
// table) minimizing the query's optimizer-estimated cost. Only indexes
// that actually lower the cost below the no-index plan are returned.
func (a *Advisor) TuneQuery(stmt *sql.SelectStmt) ([]catalog.IndexDef, error) {
	return a.TuneQueryContext(context.Background(), stmt)
}

// TuneQueryContext is TuneQuery under a context: cancellation is
// observed between candidate costings and surfaces as ctx.Err().
// The query is prepared once; every candidate configuration is then
// costed through the allocation-free prepared fast path (costs are
// bit-identical to unprepared optimization).
func (a *Advisor) TuneQueryContext(ctx context.Context, stmt *sql.SelectStmt) ([]catalog.IndexDef, error) {
	pq, err := a.Opt.PrepareQuery(stmt)
	if err != nil {
		return nil, err
	}
	baseCost, err := a.Opt.CostPrepared(pq, nil)
	if err != nil {
		return nil, err
	}
	var chosen []catalog.IndexDef
	bestCost := baseCost

	// Greedily add one index per table, largest tables first — their
	// access dominates the plan cost.
	tables := stmt.TablesReferenced()
	sort.SliceStable(tables, func(i, j int) bool {
		return a.tableRows(tables[i]) > a.tableRows(tables[j])
	})
	for _, tname := range tables {
		cands := a.candidatesFor(stmt, tname)
		costs, err := a.costCandidates(ctx, pq, chosen, cands)
		if err != nil {
			return nil, err
		}
		// Pick in candidate order so the recommendation is identical
		// to a serial sweep regardless of Parallelism.
		var bestCand *catalog.IndexDef
		for i := range cands {
			if costs[i] < bestCost {
				bestCost = costs[i]
				bestCand = &cands[i]
			}
		}
		if bestCand != nil {
			chosen = append(chosen, *bestCand)
		}
	}
	return chosen, nil
}

// costCandidates costs every candidate added on top of the chosen set,
// concurrently when Parallelism > 1. Every candidate is costed against
// the same base, so costs are independent of evaluation order.
func (a *Advisor) costCandidates(ctx context.Context, pq *optimizer.PreparedQuery, chosen, cands []catalog.IndexDef) ([]float64, error) {
	costs := make([]float64, len(cands))
	eval := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg := optimizer.Configuration(append(append([]catalog.IndexDef{}, chosen...), cands[i]))
		cost, err := a.Opt.CostPrepared(pq, cfg)
		if err != nil {
			return err
		}
		costs[i] = cost
		return nil
	}
	if a.Parallelism <= 1 || len(cands) <= 1 {
		for i := range cands {
			if err := eval(i); err != nil {
				return nil, err
			}
		}
		return costs, nil
	}
	workers := a.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	errs := make([]error, len(cands))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				errs[i] = eval(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return costs, nil
}

func (a *Advisor) tableRows(name string) int64 {
	type rowCounter interface{ TableRowCount(string) int64 }
	if rc, ok := a.Meta.(rowCounter); ok {
		return rc.TableRowCount(name)
	}
	return 0
}

// candidatesFor derives candidate indexes for one table of a query.
// The candidate shapes mirror the wizard's: selective seek prefixes
// (equality columns first, then one range column), optionally widened
// to covering; pure covering column slices ordered for grouping or
// ordering; and join-column seeds for index nested-loop joins.
func (a *Advisor) candidatesFor(stmt *sql.SelectStmt, tname string) []catalog.IndexDef {
	sc := a.Meta.Schema()
	t, ok := sc.Table(tname)
	if !ok {
		return nil
	}
	var eqCols, rngCols []string
	seenEq := map[string]bool{}
	seenRng := map[string]bool{}
	for _, p := range stmt.PredicatesOn(tname) {
		switch {
		case p.Op.IsEquality() && !seenEq[p.Col.Column]:
			seenEq[p.Col.Column] = true
			eqCols = append(eqCols, p.Col.Column)
		case p.Op.IsRange() && !seenRng[p.Col.Column]:
			seenRng[p.Col.Column] = true
			rngCols = append(rngCols, p.Col.Column)
		}
	}
	joinCols := stmt.JoinColumnsOf(tname)
	var groupCols []string
	for _, g := range stmt.GroupBy {
		if g.Table == tname {
			groupCols = append(groupCols, g.Column)
		}
	}
	var orderCols []string
	for _, o := range stmt.OrderBy {
		if o.Col.Table == tname && !o.Desc {
			orderCols = append(orderCols, o.Col.Column)
		}
	}
	allCols := stmt.ColumnsOf(tname)

	appendDistinct := func(dst []string, cols ...string) []string {
		seen := make(map[string]bool, len(dst))
		for _, c := range dst {
			seen[c] = true
		}
		for _, c := range cols {
			if !seen[c] {
				seen[c] = true
				dst = append(dst, c)
			}
		}
		return dst
	}

	var shapes [][]string
	if len(eqCols) > 0 {
		shapes = append(shapes, append([]string(nil), eqCols...))
	}
	if len(eqCols)+len(rngCols) > 0 && len(rngCols) > 0 {
		shapes = append(shapes, appendDistinct(append([]string(nil), eqCols...), rngCols[0]))
	}
	// Seek shapes widened to covering.
	if len(eqCols)+len(rngCols) > 0 {
		seek := append([]string(nil), eqCols...)
		if len(rngCols) > 0 {
			seek = appendDistinct(seek, rngCols[0])
		}
		shapes = append(shapes, appendDistinct(seek, allCols...))
	}
	// Covering slices led by grouping / ordering / join columns.
	if len(groupCols) > 0 {
		shapes = append(shapes, appendDistinct(append([]string(nil), groupCols...), allCols...))
	}
	if len(orderCols) > 0 {
		shapes = append(shapes, appendDistinct(append([]string(nil), orderCols...), allCols...))
	}
	if len(joinCols) > 0 {
		shapes = append(shapes, append([]string(nil), joinCols...))
		shapes = append(shapes, appendDistinct(append([]string(nil), joinCols...), allCols...))
	}
	// Plain covering slice in referenced order.
	if len(allCols) > 0 {
		shapes = append(shapes, append([]string(nil), allCols...))
	}

	var out []catalog.IndexDef
	seen := make(map[string]bool)
	for _, cols := range shapes {
		if len(cols) == 0 || len(cols) > len(t.Columns) {
			continue
		}
		def, err := catalog.NewIndexDef(sc, "", tname, cols)
		if err != nil {
			continue
		}
		if !seen[def.Key()] {
			seen[def.Key()] = true
			out = append(out, def)
		}
	}
	return out
}

// BuildInitialConfiguration reproduces §4.2.3: repeatedly draw a
// random query from the workload, tune it in isolation, and accumulate
// the recommended indexes until the configuration holds n distinct
// indexes (or the draw budget runs out).
func BuildInitialConfiguration(a *Advisor, w *sql.Workload, n int, seed int64) ([]catalog.IndexDef, error) {
	return BuildInitialConfigurationContext(context.Background(), a, w, n, seed)
}

// BuildInitialConfigurationContext is BuildInitialConfiguration under
// a context; cancellation surfaces as ctx.Err().
func BuildInitialConfigurationContext(ctx context.Context, a *Advisor, w *sql.Workload, n int, seed int64) ([]catalog.IndexDef, error) {
	rng := rand.New(rand.NewSource(seed))
	var defs []catalog.IndexDef
	seen := make(map[string]bool)
	maxDraws := 20 * n
	if maxDraws < 100 {
		maxDraws = 100
	}
	for draws := 0; len(defs) < n && draws < maxDraws; draws++ {
		q := w.Queries[rng.Intn(len(w.Queries))]
		recs, err := a.TuneQueryContext(ctx, q.Stmt)
		if err != nil {
			return nil, err
		}
		for _, def := range recs {
			if len(defs) >= n {
				break
			}
			if !seen[def.Key()] {
				seen[def.Key()] = true
				defs = append(defs, def)
			}
		}
	}
	return defs, nil
}

// TuneWorkload tunes every query in the workload and unions the
// recommendations — the "tune each query individually" baseline from
// the paper's introduction (storage ≈ 5× data on TPC-D).
func (a *Advisor) TuneWorkload(w *sql.Workload) ([]catalog.IndexDef, error) {
	return a.TuneWorkloadContext(context.Background(), w)
}

// TuneWorkloadContext is TuneWorkload under a context; cancellation is
// observed between candidate costings and surfaces as ctx.Err().
func (a *Advisor) TuneWorkloadContext(ctx context.Context, w *sql.Workload) ([]catalog.IndexDef, error) {
	var defs []catalog.IndexDef
	seen := make(map[string]bool)
	for _, q := range w.Queries {
		recs, err := a.TuneQueryContext(ctx, q.Stmt)
		if err != nil {
			return nil, err
		}
		for _, def := range recs {
			if !seen[def.Key()] {
				seen[def.Key()] = true
				defs = append(defs, def)
			}
		}
	}
	return defs, nil
}

// TuneTemplates tunes one representative query per template of a
// compressed workload and unions the recommendations — TuneWorkload at
// template granularity. reps lists one workload position per template
// (wscale.Compressed.Representatives). Candidate index shapes depend
// only on a query's columns and operators, which every member of a
// template shares, so the candidate sets are identical across members;
// only the constants used to *cost* them differ. On workloads whose
// duplicates are exact (folded by sql.Workload.Add) the result equals
// TuneWorkload's; across constant-varied members it is the standard
// representative approximation.
func (a *Advisor) TuneTemplates(w *sql.Workload, reps []int) ([]catalog.IndexDef, error) {
	return a.TuneTemplatesContext(context.Background(), w, reps)
}

// TuneTemplatesContext is TuneTemplates under a context; cancellation
// is observed between candidate costings and surfaces as ctx.Err().
func (a *Advisor) TuneTemplatesContext(ctx context.Context, w *sql.Workload, reps []int) ([]catalog.IndexDef, error) {
	var defs []catalog.IndexDef
	seen := make(map[string]bool)
	for _, qi := range reps {
		recs, err := a.TuneQueryContext(ctx, w.Queries[qi].Stmt)
		if err != nil {
			return nil, err
		}
		for _, def := range recs {
			if !seen[def.Key()] {
				seen[def.Key()] = true
				defs = append(defs, def)
			}
		}
	}
	return defs, nil
}
