package advisor

import (
	"fmt"
	"math/rand"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
	"indexmerge/internal/wscale"
)

func advisorFixture(t testing.TB) (*engine.Database, *Advisor) {
	t.Helper()
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("events", []catalog.Column{
		{Name: "id", Type: value.Int},
		{Name: "kind", Type: value.String, Width: 8},
		{Name: "ts", Type: value.Date},
		{Name: "val", Type: value.Float},
		{Name: "blob", Type: value.String, Width: 80},
	})); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(catalog.MustNewTable("kinds", []catalog.Column{
		{Name: "kind", Type: value.String, Width: 8},
		{Name: "desc", Type: value.String, Width: 20},
	})); err != nil {
		t.Fatal(err)
	}
	kinds := []string{"click", "view", "buy", "scroll"}
	for _, k := range kinds {
		db.Insert("kinds", value.Row{value.NewString(k), value.NewString("desc")})
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		db.Insert("events", value.Row{
			value.NewInt(int64(i)),
			value.NewString(kinds[rng.Intn(len(kinds))]),
			value.NewDate(rng.Int63n(365)),
			value.NewFloat(rng.Float64()),
			value.NewString("blob"),
		})
	}
	db.AnalyzeAll()
	opt := optimizer.New(db)
	return db, New(db, opt)
}

func q(t testing.TB, db *engine.Database, src string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestTuneSelectiveQueryGetsSeekIndex(t *testing.T) {
	db, adv := advisorFixture(t)
	stmt := q(t, db, "SELECT id, val FROM events WHERE id = 42")
	defs, err := adv.TuneQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) == 0 {
		t.Fatal("no recommendation for a selective query")
	}
	d := defs[0]
	if d.Table != "events" || d.Columns[0] != "id" {
		t.Errorf("recommended %s, want id-leading index on events", d)
	}
	// The recommendation must actually improve the plan.
	cost0, _ := adv.Opt.Cost(stmt, nil)
	cost1, _ := adv.Opt.Cost(stmt, optimizer.Configuration(defs))
	if cost1 >= cost0 {
		t.Errorf("recommendation does not help: %v -> %v", cost0, cost1)
	}
}

func TestTuneProjectionQueryGetsCoveringIndex(t *testing.T) {
	db, adv := advisorFixture(t)
	stmt := q(t, db, "SELECT kind, val FROM events")
	defs, err := adv.TuneQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) == 0 {
		t.Fatal("no recommendation for a projection query")
	}
	if !defs[0].CoversColumns([]string{"kind", "val"}) {
		t.Errorf("recommended %s is not covering", defs[0])
	}
}

func TestTuneUnhelpfulQueryRecommendsNothing(t *testing.T) {
	db, adv := advisorFixture(t)
	// Selecting every column with no predicate: no index can beat the
	// heap scan (any covering index is as wide as the table).
	stmt := q(t, db, "SELECT id, kind, ts, val, blob FROM events")
	defs, err := adv.TuneQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 0 {
		t.Errorf("recommended %v for an unindexable query", defs)
	}
}

func TestTuneJoinQueryConsidersJoinColumns(t *testing.T) {
	db, adv := advisorFixture(t)
	stmt := q(t, db, `SELECT desc, val FROM events, kinds
		WHERE events.kind = kinds.kind AND kinds.kind = 'buy'`)
	defs, err := adv.TuneQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range defs {
		if d.Table == "events" && d.Columns[0] == "kind" {
			found = true
		}
	}
	if !found {
		t.Errorf("no kind-leading index on events recommended: %v", defs)
	}
}

func TestBuildInitialConfiguration(t *testing.T) {
	db, adv := advisorFixture(t)
	w := &sql.Workload{}
	w.Add(q(t, db, "SELECT id, val FROM events WHERE id = 1"), 1)
	w.Add(q(t, db, "SELECT ts, val FROM events WHERE ts = DATE(5)"), 1)
	w.Add(q(t, db, "SELECT kind, val FROM events WHERE kind = 'buy'"), 1)

	defs, err := BuildInitialConfiguration(adv, w, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 3 {
		t.Errorf("initial configuration has %d indexes, want 3", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.Key()] {
			t.Errorf("duplicate index %s", d)
		}
		seen[d.Key()] = true
	}
}

// TestTuneTemplatesMatchesTuneWorkload: on a workload whose duplicates
// differ only in constants, tuning one representative per template must
// union to the same recommendation as tuning every query — candidate
// shapes depend only on columns and operators.
func TestTuneTemplatesMatchesTuneWorkload(t *testing.T) {
	db, adv := advisorFixture(t)
	w := &sql.Workload{}
	for i := 0; i < 6; i++ {
		w.Add(q(t, db, fmt.Sprintf("SELECT id, val FROM events WHERE id = %d", i)), 1)
		w.Add(q(t, db, fmt.Sprintf("SELECT ts, val FROM events WHERE ts >= DATE(%d)", 300+i)), 1)
	}
	c := wscale.Compress(w)
	if len(c.Templates) != 2 {
		t.Fatalf("expected 2 templates, got %d", len(c.Templates))
	}
	plain, err := adv.TuneWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := adv.TuneTemplates(w, c.Representatives())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(compressed) {
		t.Fatalf("TuneTemplates returned %d defs, TuneWorkload %d", len(compressed), len(plain))
	}
	for i := range plain {
		if plain[i].Key() != compressed[i].Key() {
			t.Errorf("def %d: %s (templates) != %s (workload)", i, compressed[i], plain[i])
		}
	}
}

func TestTuneWorkloadUnionsRecommendations(t *testing.T) {
	db, adv := advisorFixture(t)
	w := &sql.Workload{}
	w.Add(q(t, db, "SELECT id, val FROM events WHERE id = 1"), 1)
	w.Add(q(t, db, "SELECT id, val FROM events WHERE id = 2"), 1) // same shape
	w.Add(q(t, db, "SELECT ts, val FROM events WHERE ts >= DATE(300)"), 1)
	defs, err := adv.TuneWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) < 2 {
		t.Errorf("expected at least 2 distinct indexes, got %v", defs)
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.Key()] {
			t.Errorf("TuneWorkload returned duplicate %s", d)
		}
		seen[d.Key()] = true
	}
}
