package wscale

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// WindowConfig tunes a sliding workload window.
type WindowConfig struct {
	// MaxPerTemplate bounds the member reservoir kept per template
	// (default 32). Statements beyond the bound are reservoir-sampled:
	// every distinct statement a template has seen is equally likely to
	// be resident, so the members stay an unbiased constant sample of
	// the template's traffic.
	MaxPerTemplate int
	// Decay multiplies every template weight on Age (default 0.5).
	Decay float64
	// MinWeight drops templates whose decayed weight falls below it
	// (default 0.25) — stale query shapes age out of the window.
	MinWeight float64
	// Seed seeds the reservoir generator. Replaying the same ingest
	// sequence against the same seed reproduces the exact window state,
	// which is what makes journal replay deterministic.
	Seed int64
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.MaxPerTemplate <= 0 {
		c.MaxPerTemplate = 32
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.MinWeight <= 0 {
		c.MinWeight = 0.25
	}
	return c
}

// IngestItem is one statement offered to the window: the resolved
// statement, its prepared descriptor (built by the caller against the
// advisor's statistics — the window never touches the optimizer), and
// its log frequency.
type IngestItem struct {
	Stmt *sql.SelectStmt
	PQ   *optimizer.PreparedQuery
	Freq float64
}

// winMember is one resident statement of a template's reservoir.
type winMember struct {
	text string
	stmt *sql.SelectStmt
	pq   *optimizer.PreparedQuery
}

// winTemplate is one fingerprint class resident in the window.
type winTemplate struct {
	fp      string
	weight  float64
	seen    int64 // distinct statements offered to the reservoir
	epoch   int64 // bumped whenever the member set changes
	members []winMember
	texts   map[string]int // member canonical text -> members index
}

// Window is a bounded sliding view of a streaming workload: statements
// fold into fingerprint templates as they arrive, each template keeps a
// reservoir-sampled set of member statements (prepared once, at fold
// time), and Age applies exponential decay so shapes that stop
// appearing fall out. Snapshot assembles the window into the
// (workload, compressed, prepared) triple the merge machinery consumes
// — in O(templates + members), with no re-preparation and no
// recompression from scratch.
//
// Safe for concurrent use; Ingest, Age and Snapshot serialize on one
// mutex.
type Window struct {
	mu         sync.Mutex
	cfg        WindowConfig
	rng        *rand.Rand
	templates  map[string]*winTemplate
	order      []string // fingerprints, first-seen order
	generation int64    // Age calls survived
	batches    int64
	statements int64 // statements folded (counting duplicates)
}

// NewWindow builds an empty window.
func NewWindow(cfg WindowConfig) *Window {
	cfg = cfg.withDefaults()
	return &Window{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		templates: make(map[string]*winTemplate),
	}
}

// Ingest folds one batch into the window: weights always accumulate;
// the member reservoir admits a statement whose canonical text is new
// to its template with probability MaxPerTemplate/seen (classic
// reservoir sampling over distinct statements). Returns the batch
// number (1-based).
func (w *Window) Ingest(items []IngestItem) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, it := range items {
		freq := it.Freq
		if freq <= 0 {
			freq = 1
		}
		fp := it.Stmt.Fingerprint()
		t := w.templates[fp]
		if t == nil {
			t = &winTemplate{fp: fp, texts: make(map[string]int)}
			w.templates[fp] = t
			w.order = append(w.order, fp)
		}
		t.weight += freq
		w.statements++
		text := it.Stmt.String()
		if _, ok := t.texts[text]; ok {
			continue // duplicate text: weight bump only, reservoir untouched
		}
		t.seen++
		m := winMember{text: text, stmt: it.Stmt, pq: it.PQ}
		if len(t.members) < w.cfg.MaxPerTemplate {
			t.texts[text] = len(t.members)
			t.members = append(t.members, m)
			t.epoch++
			continue
		}
		if j := w.rng.Int63n(t.seen); j < int64(w.cfg.MaxPerTemplate) {
			delete(t.texts, t.members[j].text)
			t.members[j] = m
			t.texts[text] = int(j)
			t.epoch++
		}
	}
	w.batches++
	return w.batches
}

// Age decays every template weight by the configured factor and drops
// templates below the minimum weight. Returns the new generation and
// how many templates aged out.
func (w *Window) Age() (generation int64, dropped int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := w.order[:0]
	for _, fp := range w.order {
		t := w.templates[fp]
		t.weight *= w.cfg.Decay
		if t.weight < w.cfg.MinWeight {
			delete(w.templates, fp)
			dropped++
			continue
		}
		keep = append(keep, fp)
	}
	w.order = keep
	w.generation++
	return w.generation, dropped
}

// FingerprintHash digests the window's template fingerprint SET
// (order-independent): the re-tuner skips a cycle when the hash is
// unchanged, since weights alone cannot introduce new access paths.
func (w *Window) FingerprintHash() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	fps := append([]string(nil), w.order...)
	sort.Strings(fps)
	h := fnv.New64a()
	for _, fp := range fps {
		h.Write([]byte(fp))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// WindowStats is a point-in-time summary for status and metrics.
type WindowStats struct {
	Templates  int
	Members    int
	Weight     float64
	Generation int64
	Batches    int64
	Statements int64
	// Bytes is the window's approximate resident footprint (member
	// texts plus fixed per-member and per-template overheads) — the
	// accounting basis for memory budgets.
	Bytes int64
}

// memberBytes and templateBytes are the fixed per-member/per-template
// overhead estimates behind Bytes: statement AST, prepared descriptor
// and map slots for a member; fingerprint, weight and bookkeeping for
// a template. Coarse by design — the quota subsystem needs a stable
// basis, not heap-exact numbers.
const (
	memberBytes   = 256
	templateBytes = 128
)

// Stats summarizes the window.
func (w *Window) Stats() WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WindowStats{
		Templates:  len(w.order),
		Generation: w.generation,
		Batches:    w.batches,
		Statements: w.statements,
	}
	for _, fp := range w.order {
		t := w.templates[fp]
		st.Members += len(t.members)
		st.Weight += t.weight
		st.Bytes += int64(len(fp)) + templateBytes
		for _, m := range t.members {
			st.Bytes += int64(len(m.text)) + memberBytes
		}
	}
	return st
}

// Bytes reports the window's approximate resident footprint; see
// WindowStats.Bytes.
func (w *Window) Bytes() int64 { return w.Stats().Bytes }

// MaxPerTemplate reports the current reservoir bound. The server
// consults it before journaling a shrink so no-op shrinks are not
// recorded.
func (w *Window) MaxPerTemplate() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg.MaxPerTemplate
}

// Shrink truncates every template's member reservoir to maxPerTemplate
// and lowers the window's bound so future ingests hold the smaller
// reservoirs. Truncation keeps the first members (the reservoir is an
// unbiased sample, so any subset is too) and bumps the epoch of every
// template it touches — cost-table entries summed over the old member
// sets invalidate exactly. Returns how many members were dropped. The
// brownout ladder calls this under memory pressure; a maxPerTemplate
// at or above the current bound is a no-op.
func (w *Window) Shrink(maxPerTemplate int) (dropped int) {
	if maxPerTemplate < 1 {
		maxPerTemplate = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if maxPerTemplate >= w.cfg.MaxPerTemplate {
		return 0
	}
	w.cfg.MaxPerTemplate = maxPerTemplate
	for _, fp := range w.order {
		t := w.templates[fp]
		if len(t.members) <= maxPerTemplate {
			continue
		}
		for _, m := range t.members[maxPerTemplate:] {
			delete(t.texts, m.text)
			dropped++
		}
		t.members = t.members[:maxPerTemplate]
		t.epoch++
	}
	return dropped
}

// WindowSnapshot is a frozen view of the window ready for costing: the
// assembled workload (member frequencies sum to the template weight),
// its compressed form, the prepared descriptors reused from fold time,
// and the per-template key prefixes and scale factors that let a
// persistent cost table survive weight changes across snapshots (see
// PrepareWindowed).
type WindowSnapshot struct {
	W  *sql.Workload
	C  *Compressed
	PW *optimizer.PreparedWorkload
	// TplKeys are per-template cost-table namespaces, stable across
	// snapshots: a fingerprint digest plus the reservoir epoch, so an
	// entry stays valid exactly as long as the member set it summed.
	TplKeys []string
	// Scales are the per-template weight/members factors applied to the
	// table's unweighted member-cost sums at read time.
	Scales      []float64
	TotalWeight float64
	Generation  int64
}

// Snapshot freezes the window for one re-tune cycle. Each template
// contributes its reservoir members at frequency weight/len(members),
// so the snapshot's total frequency equals the window's decayed weight
// while costing touches only resident members.
func (w *Window) Snapshot() *WindowSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := &WindowSnapshot{Generation: w.generation}
	var queries []sql.WorkloadQuery
	var pqs []*optimizer.PreparedQuery
	for _, fp := range w.order {
		t := w.templates[fp]
		if len(t.members) == 0 {
			continue
		}
		scale := t.weight / float64(len(t.members))
		for _, m := range t.members {
			queries = append(queries, sql.WorkloadQuery{Stmt: m.stmt, Freq: scale})
			pqs = append(pqs, m.pq)
		}
		h := fnv.New64a()
		h.Write([]byte(fp))
		snap.TplKeys = append(snap.TplKeys,
			"f"+strconv.FormatUint(h.Sum64(), 16)+"e"+strconv.FormatInt(t.epoch, 10))
		snap.Scales = append(snap.Scales, scale)
		snap.TotalWeight += t.weight
	}
	snap.W = &sql.Workload{Queries: queries}
	snap.PW = &optimizer.PreparedWorkload{W: snap.W, Queries: pqs}
	snap.C = Compress(snap.W)
	return snap
}
