package wscale

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"indexmerge/internal/core"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/experiments"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

// windowRig is a lab plus a generated workload prepared for ingestion.
type windowRig struct {
	lab   *experiments.Lab
	w     *sql.Workload
	items []IngestItem
	cfg   *core.Configuration
}

func newWindowRig(t *testing.T, queries, duplication int) *windowRig {
	t.Helper()
	lab, err := experiments.NewSynthetic2Lab(experiments.LabOptions{Scale: 0.25, WorkloadQueries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(lab.DB, workload.Options{
		Class: workload.Complex, Queries: queries, Duplication: duplication, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]IngestItem, len(w.Queries))
	for i, q := range w.Queries {
		pq, err := optimizer.PrepareQuery(q.Stmt, lab.DB)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = IngestItem{Stmt: q.Stmt, PQ: pq, Freq: q.Freq}
	}
	defs, err := lab.InitialConfiguration(w, 6)
	if err != nil {
		t.Fatal(err)
	}
	return &windowRig{lab: lab, w: w, items: items, cfg: core.NewConfiguration(defs)}
}

// TestWindowReservoirBound checks the reservoir invariants: members
// never exceed the bound, duplicate texts bump weight without touching
// the reservoir, total weight equals total ingested frequency, and the
// same ingest sequence against the same seed reproduces the exact
// member sets.
func TestWindowReservoirBound(t *testing.T) {
	r := newWindowRig(t, 8, 120)
	const maxPer = 5
	mk := func() *Window {
		return NewWindow(WindowConfig{MaxPerTemplate: maxPer, Seed: 42})
	}
	w1, w2 := mk(), mk()
	var totalFreq float64
	for i := 0; i < len(r.items); i += 16 {
		end := i + 16
		if end > len(r.items) {
			end = len(r.items)
		}
		w1.Ingest(r.items[i:end])
		w2.Ingest(r.items[i:end])
		for _, it := range r.items[i:end] {
			totalFreq += it.Freq
		}
	}
	st := w1.Stats()
	if st.Templates == 0 {
		t.Fatal("no templates after ingest")
	}
	if math.Abs(st.Weight-totalFreq) > 1e-9 {
		t.Fatalf("window weight %v != ingested frequency %v", st.Weight, totalFreq)
	}
	for fp, tpl := range w1.templates {
		if len(tpl.members) > maxPer {
			t.Fatalf("template %q holds %d members, bound %d", fp, len(tpl.members), maxPer)
		}
		if len(tpl.texts) != len(tpl.members) {
			t.Fatalf("template %q: texts index %d != members %d", fp, len(tpl.texts), len(tpl.members))
		}
		for text, i := range tpl.texts {
			if tpl.members[i].text != text {
				t.Fatalf("template %q: texts index points at wrong member", fp)
			}
		}
	}
	// Same seed, same sequence -> identical reservoirs.
	if w1.FingerprintHash() != w2.FingerprintHash() {
		t.Fatal("same ingest sequence produced different fingerprint sets")
	}
	for fp, t1 := range w1.templates {
		t2 := w2.templates[fp]
		if t2 == nil || len(t1.members) != len(t2.members) || t1.epoch != t2.epoch {
			t.Fatalf("template %q: reservoirs diverged under identical seeds", fp)
		}
		for i := range t1.members {
			if t1.members[i].text != t2.members[i].text {
				t.Fatalf("template %q member %d: %q != %q", fp, i, t1.members[i].text, t2.members[i].text)
			}
		}
	}
}

// TestWindowAge checks exponential decay and min-weight eviction.
func TestWindowAge(t *testing.T) {
	r := newWindowRig(t, 6, 0)
	w := NewWindow(WindowConfig{Decay: 0.5, MinWeight: 0.25, Seed: 1})
	w.Ingest(r.items)
	before := w.Stats()
	if before.Templates == 0 {
		t.Fatal("no templates")
	}
	gen, dropped := w.Age()
	if gen != 1 || dropped != 0 {
		t.Fatalf("first age: gen=%d dropped=%d, want 1, 0", gen, dropped)
	}
	after := w.Stats()
	if math.Abs(after.Weight-before.Weight/2) > 1e-9 {
		t.Fatalf("decayed weight %v, want %v", after.Weight, before.Weight/2)
	}
	// Repeated decay must eventually age every template out.
	for i := 0; i < 16 && w.Stats().Templates > 0; i++ {
		w.Age()
	}
	if st := w.Stats(); st.Templates != 0 {
		t.Fatalf("%d templates survived full decay", st.Templates)
	}
	if h := w.FingerprintHash(); h != NewWindow(WindowConfig{}).FingerprintHash() {
		t.Fatal("empty window hash != fresh window hash")
	}
}

// TestWindowSnapshotCosting is the windowed-costing invariant: a
// snapshot's decomposed workload cost must match the direct sum of
// member costs scaled by weight/members, and a second snapshot over an
// unchanged window must cost entirely from the shared table (zero new
// misses) even after weight-only changes.
func TestWindowSnapshotCosting(t *testing.T) {
	r := newWindowRig(t, 8, 40)
	// Roomy reservoir: every distinct text is resident, so re-ingesting
	// the same batch below is a pure weight change (a tight reservoir
	// would treat previously evicted texts as new and resample).
	w := NewWindow(WindowConfig{MaxPerTemplate: 64, Seed: 9})
	w.Ingest(r.items)

	table := costcache.NewBounded(0, 0)
	snap := w.Snapshot()
	if len(snap.TplKeys) != len(snap.C.Templates) || len(snap.Scales) != len(snap.C.Templates) {
		t.Fatalf("snapshot keys/scales (%d/%d) != templates %d",
			len(snap.TplKeys), len(snap.Scales), len(snap.C.Templates))
	}
	var wantWeight float64
	for _, tpl := range w.templates {
		wantWeight += tpl.weight
	}
	if math.Abs(snap.TotalWeight-wantWeight) > 1e-9 {
		t.Fatalf("snapshot weight %v != window weight %v", snap.TotalWeight, wantWeight)
	}

	p, err := PrepareWindowed(snap, r.lab.Opt, table)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.WorkloadCost(r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Direct reference: every snapshot member costed under the full
	// configuration at its snapshot frequency.
	cfgDefs := optimizer.Configuration(r.cfg.Defs())
	want := 0.0
	for i, q := range snap.W.Queries {
		c, err := r.lab.Opt.CostPrepared(snap.PW.Queries[i], cfgDefs)
		if err != nil {
			t.Fatal(err)
		}
		want += c * q.Freq
	}
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("windowed cost %v != direct member sum %v", got, want)
	}

	_, missesAfterFirst, _ := table.Stats()

	// Weight-only change: re-ingest the same statements (duplicate
	// texts bump weights, reservoir untouched). Entries keyed by
	// (fingerprint, epoch) must all survive.
	w.Ingest(r.items)
	snap2 := w.Snapshot()
	p2, err := PrepareWindowed(snap2, r.lab.Opt, table)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := p2.WorkloadCost(r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterSecond, _ := table.Stats()
	if missesAfterSecond != missesAfterFirst {
		t.Fatalf("unchanged member sets recosted: misses %d -> %d", missesAfterFirst, missesAfterSecond)
	}
	if math.Abs(got2-2*got) > 1e-6*math.Max(1, got) {
		t.Fatalf("doubled weights: cost %v, want %v", got2, 2*got)
	}
}

// TestWindowEpochInvalidation checks that a member-set change bumps
// only that template's epoch, invalidating exactly its table entries.
func TestWindowEpochInvalidation(t *testing.T) {
	r := newWindowRig(t, 8, 40)
	w := NewWindow(WindowConfig{MaxPerTemplate: 64, Seed: 9})
	w.Ingest(r.items)
	snap := w.Snapshot()
	epochs := make(map[string]int64, len(w.order))
	for _, fp := range w.order {
		epochs[fp] = w.templates[fp].epoch
	}

	// New canonical texts within existing fingerprint classes: with a
	// roomy reservoir they are admitted directly, bumping exactly the
	// affected template's epoch. Feed one at a time and stop at the
	// first admission, so only ONE template may change.
	varied := variedBatch(t, r)
	changed := 0
	for _, it := range varied {
		w.Ingest([]IngestItem{it})
		changed = 0
		for _, fp := range w.order {
			if w.templates[fp].epoch != epochs[fp] {
				changed++
			}
		}
		if changed > 0 {
			break
		}
	}
	if changed == 0 {
		t.Fatal("varied batch changed no reservoir (test fixture too small)")
	}
	if changed != 1 {
		t.Fatalf("%d template epochs changed from one admitted statement", changed)
	}
	snap2 := w.Snapshot()
	diff := 0
	for i := range snap.TplKeys {
		if i < len(snap2.TplKeys) && snap.TplKeys[i] != snap2.TplKeys[i] {
			diff++
		}
	}
	if diff != changed {
		t.Fatalf("%d table key prefixes changed for %d epoch bumps", diff, changed)
	}
}

// variedBatch re-parses the rig's statements with one constant nudged,
// producing new canonical texts within existing fingerprint classes.
func variedBatch(t *testing.T, r *windowRig) []IngestItem {
	t.Helper()
	var items []IngestItem
	for _, q := range r.w.Queries {
		text := q.Stmt.String()
		// Nudge the first integer literal; skip statements without one.
		nudged := nudgeFirstInt(text)
		if nudged == text {
			continue
		}
		wl, err := sql.ParseWorkload(strings.NewReader(nudged), r.lab.DB.Schema())
		if err != nil || wl.Len() == 0 {
			continue
		}
		st := wl.Queries[0].Stmt
		if st.Fingerprint() != q.Stmt.Fingerprint() {
			continue
		}
		pq, err := optimizer.PrepareQuery(st, r.lab.DB)
		if err != nil {
			continue
		}
		items = append(items, IngestItem{Stmt: st, PQ: pq, Freq: 1})
	}
	if len(items) == 0 {
		t.Skip("no statements could be varied")
	}
	return items
}

// nudgeFirstInt increments the first standalone integer in s.
func nudgeFirstInt(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' && (i == 0 || !isWordByte(s[i-1])) {
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j < len(s) && s[j] == '.' {
				continue // float; keep looking
			}
			var n int64
			fmt.Sscanf(s[i:j], "%d", &n)
			return s[:i] + fmt.Sprintf("%d", n+1) + s[j:]
		}
	}
	return s
}

func isWordByte(b byte) bool {
	return b == '_' || b == '.' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// TestWindowBytesAndShrink covers the byte accounting and the brownout
// shrink: Bytes matches the Stats sum, Shrink clamps the reservoir
// bound (dropping the tail members and bumping epochs), repeated and
// looser shrinks are no-ops, and a shrink at the same point in two
// identically-seeded ingest sequences keeps the reservoirs identical —
// the property journal replay of brownout shrinks relies on.
func TestWindowBytesAndShrink(t *testing.T) {
	r := newWindowRig(t, 8, 120)
	mk := func() *Window {
		return NewWindow(WindowConfig{MaxPerTemplate: 12, Seed: 42})
	}
	w := mk()
	half := len(r.items) / 2
	w.Ingest(r.items[:half])
	if got, want := w.Bytes(), w.Stats().Bytes; got != want || got <= 0 {
		t.Fatalf("Bytes = %d, Stats.Bytes = %d; want equal and positive", got, want)
	}
	before := w.Stats()
	epochs := make(map[string]int64)
	oversized := make(map[string]bool)
	for fp, tpl := range w.templates {
		epochs[fp] = tpl.epoch
		oversized[fp] = len(tpl.members) > 4
	}

	dropped := w.Shrink(4)
	if w.MaxPerTemplate() != 4 {
		t.Fatalf("MaxPerTemplate after Shrink = %d, want 4", w.MaxPerTemplate())
	}
	after := w.Stats()
	if dropped != before.Members-after.Members {
		t.Fatalf("dropped = %d, members went %d -> %d", dropped, before.Members, after.Members)
	}
	if after.Bytes >= before.Bytes && dropped > 0 {
		t.Fatalf("bytes did not shrink: %d -> %d (dropped %d)", before.Bytes, after.Bytes, dropped)
	}
	if w.Bytes() != after.Bytes {
		t.Fatalf("Bytes = %d, Stats.Bytes = %d after shrink", w.Bytes(), after.Bytes)
	}
	for fp, tpl := range w.templates {
		if len(tpl.members) > 4 {
			t.Fatalf("template %q holds %d members after Shrink(4)", fp, len(tpl.members))
		}
		if len(tpl.texts) != len(tpl.members) {
			t.Fatalf("template %q: texts index out of sync after shrink", fp)
		}
		// Epochs bump exactly for the templates that lost members, so
		// their stale cost-table entries invalidate and the rest survive.
		bumped := tpl.epoch != epochs[fp]
		if bumped != oversized[fp] {
			t.Fatalf("template %q: epoch bumped=%v, lost members=%v", fp, bumped, oversized[fp])
		}
	}
	// Idempotent, and a looser bound is a no-op.
	if d := w.Shrink(4); d != 0 {
		t.Fatalf("repeat Shrink dropped %d", d)
	}
	if d := w.Shrink(12); d != 0 || w.MaxPerTemplate() != 4 {
		t.Fatalf("loosening Shrink dropped %d, bound %d; want no-op", d, w.MaxPerTemplate())
	}

	// Replay determinism: same seed, same sequence with the shrink at
	// the same point -> identical reservoirs afterwards.
	a, b := mk(), mk()
	a.Ingest(r.items[:half])
	b.Ingest(r.items[:half])
	a.Shrink(4)
	b.Shrink(4)
	a.Ingest(r.items[half:])
	b.Ingest(r.items[half:])
	if a.FingerprintHash() != b.FingerprintHash() || a.Bytes() != b.Bytes() {
		t.Fatal("shrink-interleaved ingest diverged under identical seeds")
	}
	for fp, t1 := range a.templates {
		t2 := b.templates[fp]
		if t2 == nil || len(t1.members) != len(t2.members) || t1.epoch != t2.epoch {
			t.Fatalf("template %q diverged after shrink replay", fp)
		}
		for i := range t1.members {
			if t1.members[i].text != t2.members[i].text {
				t.Fatalf("template %q member %d diverged after shrink replay", fp, i)
			}
		}
	}
}
