package wscale

import (
	"context"
	"sync"
	"sync/atomic"

	"indexmerge/internal/core"
)

// Checker is the decomposition-aware cost constraint (Cost(W, C') ≤ U)
// over a compressed workload: candidates are priced as per-template
// deltas against the search's current configuration, served from the
// (template, atom) cost table, with an admissible lower bound that
// fast-rejects hopeless candidates before any exact costing. It plugs
// into core.Greedy / core.Exhaustive beside OptimizerChecker and
// composes with core.ResilientChecker (which forwards SetBase).
//
// Safe for concurrent Accepts calls — the searches' parallel waves rely
// on it. SetBase is called by the search goroutine between waves, never
// concurrently with Accepts.
type Checker struct {
	P *Prepared
	U float64 // absolute workload-cost upper bound

	// Parallelism bounds concurrent CostPrepared member sweeps when
	// filling cost-table misses. <= 1 is serial.
	Parallelism int

	// Remote, when non-nil, batches cost-table misses to a pool of
	// what-if worker processes instead of sweeping members locally.
	// Totals, table contents and counters are byte-identical either
	// way, and any remote failure falls back to the local sweep, so
	// the search result never depends on the worker count. Set before
	// the first evaluation.
	Remote RemoteCoster

	mu          sync.Mutex
	pendingBase *core.Configuration
	bs          *baseState

	evals       atomic.Int64
	deltaChecks atomic.Int64
	fullChecks  atomic.Int64
	pruned      atomic.Int64
	optCalls    atomic.Int64
}

var (
	_ core.ConstraintChecker    = (*Checker)(nil)
	_ core.ContextChecker       = (*Checker)(nil)
	_ core.OptimizerCallCounter = (*Checker)(nil)
)

// baseState is the lazily-computed per-template costing of the search's
// current configuration. Costs are exact and summed in template order.
type baseState struct {
	cfg   *core.Configuration
	ptrs  map[*core.Index]bool
	costs []float64
	total float64
}

// NewChecker builds a checker with U = baseCost × (1 + slackPct).
// baseCost should be p.WorkloadCost for the initial configuration;
// slackPct is the paper's cost-constraint percentage (e.g. 0.10).
func NewChecker(p *Prepared, baseCost, slackPct float64) *Checker {
	return &Checker{P: p, U: baseCost * (1 + slackPct)}
}

// Description implements core.ConstraintChecker.
func (c *Checker) Description() string { return "Cost-Opt-Compressed" }

// Evaluations implements core.ConstraintChecker.
func (c *Checker) Evaluations() int64 { return c.evals.Load() }

// OptimizerCalls implements core.OptimizerCallCounter: the CostPrepared
// invocations this checker issued to fill cost-table misses. Table hits
// never count.
func (c *Checker) OptimizerCalls() int64 { return c.optCalls.Load() }

// DeltaChecks counts constraint checks served by the delta path
// (base-derived candidate, unaffected templates reused).
func (c *Checker) DeltaChecks() int64 { return c.deltaChecks.Load() }

// FullChecks counts constraint checks that fell back to full
// decomposed costing (no base set, or a candidate not one merge away
// from the current base — Exhaustive's stale sibling batches).
func (c *Checker) FullChecks() int64 { return c.fullChecks.Load() }

// PrunedChecks counts candidates rejected by the admissible lower
// bound without exact costing of every affected template.
func (c *Checker) PrunedChecks() int64 { return c.pruned.Load() }

// SetBase implements the searches' baseAware hook: it records the
// current configuration; per-template base costs are computed lazily on
// the first constraint check so costing errors surface through Accepts
// (where resilient wrappers can retry them) instead of being lost.
func (c *Checker) SetBase(cfg *core.Configuration) {
	c.mu.Lock()
	c.pendingBase = cfg
	c.mu.Unlock()
}

// ensureBase returns the costed base state for the pending base,
// computing it on first use. Returns nil with no error when no base has
// been set (the checker then prices every candidate in full).
func (c *Checker) ensureBase(ctx context.Context) (*baseState, error) {
	c.mu.Lock()
	pb, bs := c.pendingBase, c.bs
	c.mu.Unlock()
	if pb == nil {
		return nil, nil
	}
	if bs != nil && bs.cfg == pb {
		return bs, nil
	}
	// Concurrent first checks of one wave may both compute the base;
	// the cost table deduplicates the underlying member sweeps and both
	// arrive at identical state.
	costs, total, err := c.P.templateCosts(ctx, pb, c.Parallelism, &c.optCalls, c.Remote)
	if err != nil {
		return nil, err
	}
	ptrs := make(map[*core.Index]bool, pb.Len())
	for _, ix := range pb.Indexes {
		ptrs[ix] = true
	}
	bs = &baseState{cfg: pb, ptrs: ptrs, costs: costs, total: total}
	c.mu.Lock()
	c.bs = bs
	c.mu.Unlock()
	return bs, nil
}

// derivedFromBase reports whether cfg is exactly one ReplacePair(a, b, m)
// away from the base: every index but one is a base pointer, the one
// fresh index carries m's definition key (ReplacePair builds a new
// *Index when the merge collapses with an existing duplicate), a and b
// are base members absent from cfg, and the length dropped by 1 (plain
// replace) or 2 (duplicate collapse).
func derivedFromBase(bs *baseState, cfg *core.Configuration, m, a, b *core.Index) bool {
	d := bs.cfg.Len() - cfg.Len()
	if d != 1 && d != 2 {
		return false
	}
	if !bs.ptrs[a] || !bs.ptrs[b] {
		return false
	}
	fresh := 0
	for _, ix := range cfg.Indexes {
		if ix == a || ix == b {
			return false
		}
		if bs.ptrs[ix] {
			continue
		}
		if ix.Key() != m.Key() {
			return false
		}
		fresh++
	}
	return fresh == 1
}

// Accepts implements core.ConstraintChecker.
func (c *Checker) Accepts(cfg *core.Configuration, m, a, b *core.Index) (bool, error) {
	return c.AcceptsContext(context.Background(), cfg, m, a, b)
}

// AcceptsContext implements core.ContextChecker. With a base set and a
// base-derived candidate it prices only the affected templates — those
// for which a, b or m is relevant (all share m's table; an irrelevant
// index contributes no access path, so every other template's atom, and
// hence cost, is unchanged) — and reuses the base's per-template costs
// for the rest. Before exact costing it sums exact-where-known with the
// admissible lower bound for uncached atoms: if even that optimistic
// total exceeds U the candidate is rejected without touching the
// optimizer. Accepts are always decided on exact costs, and totals sum
// in template order, so the delta and full paths agree bit for bit.
func (c *Checker) AcceptsContext(ctx context.Context, cfg *core.Configuration, m, a, b *core.Index) (bool, error) {
	c.evals.Add(1)
	bs, err := c.ensureBase(ctx)
	if err != nil {
		return false, err
	}
	if bs == nil || m == nil || a == nil || b == nil || !derivedFromBase(bs, cfg, m, a, b) {
		c.fullChecks.Add(1)
		_, total, err := c.P.templateCosts(ctx, cfg, c.Parallelism, &c.optCalls, c.Remote)
		if err != nil {
			return false, err
		}
		return total <= c.U, nil
	}
	c.deltaChecks.Add(1)

	n := len(c.P.C.Templates)
	costs := make([]float64, n)
	copy(costs, bs.costs)
	var misses []pendingAtom
	lbSum := 0.0
	for ti := 0; ti < n; ti++ {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if !(c.P.Relevant(ti, a) || c.P.Relevant(ti, b) || c.P.Relevant(ti, m)) {
			lbSum += costs[ti]
			continue
		}
		key, defs, keys := c.P.atom(ti, cfg)
		if v, ok := c.P.tableGet(ti, key); ok {
			costs[ti] = v
			lbSum += v
			continue
		}
		misses = append(misses, pendingAtom{ti: ti, key: key, defs: defs, keys: keys})
		lbSum += c.P.lowerBound(ti, keys)
	}
	if len(misses) > 0 {
		if lbSum > c.U {
			// Every miss's true cost is at least its bound, so the exact
			// total can only be higher — reject without costing.
			c.pruned.Add(1)
			return false, nil
		}
		if err := c.P.fillMisses(ctx, misses, costs, c.Parallelism, &c.optCalls, c.Remote); err != nil {
			return false, err
		}
	}
	total := 0.0
	for _, v := range costs {
		total += v
	}
	return total <= c.U, nil
}
