// Package wscale scales the merge advisor to large workloads by
// CoPhy-style decomposition (PAPERS.md): the workload cost
// Cost(W, C) = Σ_templates Freq(t) · Cost(t, atom(t, C)) factors into
// per-template terms that depend only on the template's *atomic
// configuration* — the small per-table subset of C's indexes that can
// contribute an access path to the template's queries. Queries are
// clustered into templates by constant-abstracted fingerprint, atoms
// are bounded by the relevant-index prefilter from
// internal/optimizer/prepared.go, and a per-(template, atom) cost
// table memoizes exact CostPrepared sums — so pricing a candidate
// configuration during search is a handful of table lookups instead of
// one optimization per workload statement.
package wscale

import (
	"fmt"

	"indexmerge/internal/sql"
)

// Template is one fingerprint-equivalence class of workload queries:
// identical canonical SQL once literal constants are abstracted to
// '?'. Members share tables, columns and operators, hence relevant
// index sets, access-path shapes and atoms — only their constants (and
// so their individual costs) differ, which is why the cost table sums
// exact member costs instead of extrapolating a representative.
type Template struct {
	// Fingerprint is the constant-abstracted canonical SQL.
	Fingerprint string
	// Members are positions in the source workload, first-seen order.
	Members []int
	// Freq is the summed frequency of all members.
	Freq float64
	// Tables are the distinct tables the template references, FROM
	// order.
	Tables []string
}

// Compressed is a workload clustered into weighted templates.
type Compressed struct {
	// W is the source workload (entries are already text-deduplicated
	// by sql.Workload.Add; templates cluster across differing
	// constants).
	W *sql.Workload
	// Templates lists the fingerprint classes in first-seen order.
	Templates []*Template
}

// Compress clusters the workload's queries into templates by
// fingerprint.
func Compress(w *sql.Workload) *Compressed {
	c := &Compressed{W: w}
	byFp := make(map[string]int)
	for i, q := range w.Queries {
		fp := q.Stmt.Fingerprint()
		if ti, ok := byFp[fp]; ok {
			t := c.Templates[ti]
			t.Members = append(t.Members, i)
			t.Freq += q.Freq
			continue
		}
		byFp[fp] = len(c.Templates)
		c.Templates = append(c.Templates, &Template{
			Fingerprint: fp,
			Members:     []int{i},
			Freq:        q.Freq,
			Tables:      q.Stmt.TablesReferenced(),
		})
	}
	return c
}

// Representatives returns one workload position per template (the
// first member), in template order — the inputs to
// advisor.TuneTemplates.
func (c *Compressed) Representatives() []int {
	reps := make([]int, len(c.Templates))
	for i, t := range c.Templates {
		reps[i] = t.Members[0]
	}
	return reps
}

// Statements returns the number of distinct workload entries.
func (c *Compressed) Statements() int { return len(c.W.Queries) }

// TotalFreq returns the summed statement frequency — the log size the
// workload represents, counting folded duplicates.
func (c *Compressed) TotalFreq() float64 { return c.W.TotalFreq() }

// DedupRatio returns distinct entries per template — the compression
// the constant abstraction achieves on top of exact-text folding.
func (c *Compressed) DedupRatio() float64 {
	if len(c.Templates) == 0 {
		return 0
	}
	return float64(len(c.W.Queries)) / float64(len(c.Templates))
}

// String summarizes the compression.
func (c *Compressed) String() string {
	return fmt.Sprintf("wscale: %d statements (%.0f weighted) in %d templates (%.1fx)",
		c.Statements(), c.TotalFreq(), len(c.Templates), c.DedupRatio())
}
