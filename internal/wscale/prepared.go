package wscale

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/optimizer"
)

// CostServer prices one prepared query under a configuration;
// optimizer.Optimizer satisfies it.
type CostServer interface {
	CostPrepared(pq *optimizer.PreparedQuery, cfg optimizer.Configuration) (float64, error)
}

// Cache-key separators, mirroring core's checker keys: '\x1f' joins
// index keys inside an atom, '\x1d' separates the template namespace
// prefix. Neither occurs in table or column names.
const (
	keySepIndex = "\x1f"
	keySepNS    = "\x1d"
)

// maxBoundEntries caps the per-template list of exactly-costed atoms
// kept for lower-bound pruning; older entries are overwritten
// ring-style.
const maxBoundEntries = 16

// boundEntry is one exactly costed atom: its sorted index keys and
// cost. By cost monotonicity (adding indexes only adds access paths,
// and cost is a min over paths), any atom whose index set is a SUBSET
// of an entry's costs at least the entry's cost — an admissible lower
// bound for atoms not yet in the table.
type boundEntry struct {
	keys []string
	cost float64
}

// Prepared is a compressed workload ready for decomposed costing: the
// templates, the source workload's prepared descriptors, a relevance
// memo, the per-(template, atom) cost table, and the pruning bounds.
// Build once per (workload, statistics) pair — sessions build it at
// workload registration — and share across any number of concurrent
// searches.
type Prepared struct {
	C  *Compressed
	PW *optimizer.PreparedWorkload

	srv   CostServer
	table *costcache.Cache

	// Window mode (PrepareWindowed): tplKeys replace the positional
	// "t<i>" cache-key namespaces with fingerprint+epoch prefixes that
	// stay stable across window snapshots, and scales multiply the
	// table's unweighted member-cost sums by the template's current
	// weight/members factor at read time — so ingestion and decay
	// change costs without invalidating a single entry. Both nil in
	// registration mode, whose keys and entries stay byte-identical.
	tplKeys []string
	scales  []float64

	mu     sync.RWMutex
	rel    map[relKey]bool
	bounds [][]boundEntry // per template, ring-capped
	nextBE []int          // per template, next ring slot

	optCalls atomic.Int64

	remoteBatches   atomic.Int64 // batched RPCs dispatched to workers
	remoteAtoms     atomic.Int64 // atoms costed remotely
	remoteFallbacks atomic.Int64 // batches that fell back to local sweeps
}

// relKey memoizes template-index relevance by definition key, which is
// stable across searches (each search wraps defs in fresh *core.Index
// values).
type relKey struct {
	t   int
	def string
}

// Prepare pairs a compressed workload with its prepared descriptors
// and an empty cost table. maxEntries bounds the cost table's size
// (<= 0 means unbounded); srv prices members on table misses.
func Prepare(c *Compressed, pw *optimizer.PreparedWorkload, srv CostServer, maxEntries int) (*Prepared, error) {
	if len(pw.Queries) != len(c.W.Queries) {
		return nil, fmt.Errorf("wscale: prepared workload has %d queries, compressed workload %d",
			len(pw.Queries), len(c.W.Queries))
	}
	return &Prepared{
		C:      c,
		PW:     pw,
		srv:    srv,
		table:  costcache.NewBounded(0, maxEntries),
		rel:    make(map[relKey]bool),
		bounds: make([][]boundEntry, len(c.Templates)),
		nextBE: make([]int, len(c.Templates)),
	}, nil
}

// PrepareWindowed pairs a window snapshot with a PERSISTENT cost table
// shared across snapshots: entries are keyed by the snapshot's
// fingerprint+epoch template prefixes and store unweighted member-cost
// sums, scaled by the template's current weight at read time. A
// re-tune over a drifted window therefore re-prices only templates
// whose member set changed (epoch bump) or that it has never seen —
// everything else is a table hit, no matter how the weights moved.
// Remote (worker-pool) filling is not supported in window mode; the
// caller must not set a RemoteCoster.
func PrepareWindowed(snap *WindowSnapshot, srv CostServer, table *costcache.Cache) (*Prepared, error) {
	if len(snap.PW.Queries) != len(snap.W.Queries) {
		return nil, fmt.Errorf("wscale: window snapshot has %d prepared queries, %d workload entries",
			len(snap.PW.Queries), len(snap.W.Queries))
	}
	if len(snap.TplKeys) != len(snap.C.Templates) || len(snap.Scales) != len(snap.C.Templates) {
		return nil, fmt.Errorf("wscale: window snapshot has %d templates, %d keys, %d scales",
			len(snap.C.Templates), len(snap.TplKeys), len(snap.Scales))
	}
	if table == nil {
		table = costcache.NewBounded(0, 0)
	}
	return &Prepared{
		C:       snap.C,
		PW:      snap.PW,
		srv:     srv,
		table:   table,
		tplKeys: snap.TplKeys,
		scales:  snap.Scales,
		rel:     make(map[relKey]bool),
		bounds:  make([][]boundEntry, len(snap.C.Templates)),
		nextBE:  make([]int, len(snap.C.Templates)),
	}, nil
}

// scale returns the template's read-time multiplier (1 in registration
// mode, whose entries are already weighted).
func (p *Prepared) scale(ti int) float64 {
	if p.scales == nil {
		return 1
	}
	return p.scales[ti]
}

// tableGet reads a (template, atom) entry, applying the window-mode
// scale. All cost-table reads go through here (or costAtom) so the two
// modes cannot mix units.
func (p *Prepared) tableGet(ti int, key string) (float64, bool) {
	v, ok := p.table.Get(key)
	if !ok {
		return 0, false
	}
	return v * p.scale(ti), true
}

// TableStats returns the cost table's hit/miss/dedup counters.
func (p *Prepared) TableStats() (hits, misses, dedups int64) { return p.table.Stats() }

// TableLen returns the number of cached (template, atom) entries.
func (p *Prepared) TableLen() int { return p.table.Len() }

// TableBytes returns the cost table's approximate resident footprint
// (see costcache.Bytes) — the accounting basis for memory budgets.
func (p *Prepared) TableBytes() int64 { return p.table.Bytes() }

// TableEvictOldest sheds up to n of the table's oldest entries (see
// costcache.EvictOldest); the brownout ladder uses it under memory
// pressure.
func (p *Prepared) TableEvictOldest(n int) int { return p.table.EvictOldest(n) }

// OptimizerCalls counts CostPrepared invocations made to fill the
// table.
func (p *Prepared) OptimizerCalls() int64 { return p.optCalls.Load() }

// Relevant reports (and memoizes) whether the index can contribute any
// access path to the template's queries. All members share the
// fingerprint — the same tables, columns and operators — so relevance
// is a template property, computed on the first member's descriptor.
func (p *Prepared) Relevant(ti int, ix *core.Index) bool {
	k := relKey{t: ti, def: ix.Key()}
	p.mu.RLock()
	v, ok := p.rel[k]
	p.mu.RUnlock()
	if ok {
		return v
	}
	pq := p.PW.Queries[p.C.Templates[ti].Members[0]]
	v = pq.IndexRelevant(ix.Def.Table, ix.Def.Columns)
	p.mu.Lock()
	p.rel[k] = v
	p.mu.Unlock()
	return v
}

// atom computes the template's atomic configuration under cfg: the
// relevant indexes in sorted-key order (cost is a min over access
// paths, so index order cannot change it — sorting makes the cache key
// canonical). Returns the cache key, the defs to cost against, and the
// sorted index keys for bound pruning.
func (p *Prepared) atom(ti int, cfg *core.Configuration) (key string, defs []catalog.IndexDef, keys []string) {
	t := p.C.Templates[ti]
	var sel []*core.Index
	for _, ix := range cfg.Indexes {
		onTable := false
		for _, tb := range t.Tables {
			if ix.Def.Table == tb {
				onTable = true
				break
			}
		}
		if onTable && p.Relevant(ti, ix) {
			sel = append(sel, ix)
		}
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Key() < sel[j].Key() })
	keys = make([]string, len(sel))
	defs = make([]catalog.IndexDef, len(sel))
	var b strings.Builder
	if p.tplKeys != nil {
		b.WriteString(p.tplKeys[ti])
	} else {
		b.WriteString("t")
		b.WriteString(strconv.Itoa(ti))
	}
	b.WriteString(keySepNS)
	for i, ix := range sel {
		keys[i] = ix.Key()
		defs[i] = ix.Def
		b.WriteString(keys[i])
		b.WriteString(keySepIndex)
	}
	return b.String(), defs, keys
}

// costAtom returns the template's weighted exact cost under the atom,
// from the table or by summing Freq × CostPrepared over every member.
// Exactness: an index outside the atom contributes no access path to
// any member (optimizer.PreparedQuery.IndexRelevant), so the sum
// equals the members' costs under the full configuration. In window
// mode the table entry is the UNWEIGHTED member-cost sum and the
// template's scale is applied on the way out, so the entry survives
// any later weight change.
func (p *Prepared) costAtom(ctx context.Context, ti int, key string, defs []catalog.IndexDef, keys []string, calls *atomic.Int64) (float64, error) {
	if v, ok := p.tableGet(ti, key); ok {
		return v, nil
	}
	v, err := p.table.Do(key, func() (float64, error) {
		t := p.C.Templates[ti]
		cfg := optimizer.Configuration(defs)
		var sum float64
		for _, mi := range t.Members {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			c, err := p.srv.CostPrepared(p.PW.Queries[mi], cfg)
			if err != nil {
				return 0, err
			}
			p.optCalls.Add(1)
			if calls != nil {
				calls.Add(1)
			}
			if p.scales != nil {
				sum += c
			} else {
				sum += c * p.C.W.Queries[mi].Freq
			}
		}
		return sum, nil
	})
	if err != nil {
		return 0, err
	}
	v *= p.scale(ti)
	p.recordBound(ti, keys, v)
	return v, nil
}

// recordBound remembers an exactly costed atom for lower-bound
// pruning.
func (p *Prepared) recordBound(ti int, keys []string, cost float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.bounds[ti] {
		if stringSlicesEqual(e.keys, keys) {
			return
		}
	}
	e := boundEntry{keys: append([]string(nil), keys...), cost: cost}
	if len(p.bounds[ti]) < maxBoundEntries {
		p.bounds[ti] = append(p.bounds[ti], e)
		return
	}
	p.bounds[ti][p.nextBE[ti]%maxBoundEntries] = e
	p.nextBE[ti]++
}

// lowerBound returns an admissible lower bound for the atom's cost: the
// maximum recorded cost among exactly costed SUPERSETS of its index
// set (a subset of a configuration can never cost less than the
// configuration), or 0 when no superset has been costed. The bound
// inherits the degenerate caveat of the intersection arm cap
// (maxIntersectArms) — see DESIGN.md §12 — which is why pruning only
// ever fast-rejects; accepts are always exact.
func (p *Prepared) lowerBound(ti int, keys []string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	lb := 0.0
	for _, e := range p.bounds[ti] {
		if e.cost > lb && isSubset(keys, e.keys) {
			lb = e.cost
		}
	}
	return lb
}

// isSubset reports sub ⊆ super for sorted string slices.
func isSubset(sub, super []string) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
		j++
	}
	return true
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WorkloadCost prices the whole workload under cfg by decomposition.
// Totals sum in template order, so the delta and full paths of the
// checker agree bit for bit; they can differ from the workload-order
// summation of optimizer.WorkloadCostPrepared in the last ulp.
func (p *Prepared) WorkloadCost(cfg *core.Configuration) (float64, error) {
	return p.WorkloadCostContext(context.Background(), cfg)
}

// WorkloadCostContext is WorkloadCost under a context.
func (p *Prepared) WorkloadCostContext(ctx context.Context, cfg *core.Configuration) (float64, error) {
	return p.WorkloadCostRemoteContext(ctx, cfg, nil)
}

// WorkloadCostRemoteContext is WorkloadCostContext with cost-table
// misses batched to a worker pool (identical totals; local fallback
// on any failure).
func (p *Prepared) WorkloadCostRemoteContext(ctx context.Context, cfg *core.Configuration, remote RemoteCoster) (float64, error) {
	_, total, err := p.templateCosts(ctx, cfg, 1, nil, remote)
	return total, err
}

// templateCosts prices every template under cfg, filling table misses
// remotely (when remote is non-nil) or with up to parallelism
// concurrent member sweeps, and returns the per-template costs plus
// their template-order sum.
func (p *Prepared) templateCosts(ctx context.Context, cfg *core.Configuration, parallelism int, calls *atomic.Int64, remote RemoteCoster) ([]float64, float64, error) {
	n := len(p.C.Templates)
	costs := make([]float64, n)
	var misses []pendingAtom
	for ti := 0; ti < n; ti++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		key, defs, keys := p.atom(ti, cfg)
		if v, ok := p.tableGet(ti, key); ok {
			costs[ti] = v
			continue
		}
		misses = append(misses, pendingAtom{ti: ti, key: key, defs: defs, keys: keys})
	}
	if err := p.fillMisses(ctx, misses, costs, parallelism, calls, remote); err != nil {
		return nil, 0, err
	}
	total := 0.0
	for _, c := range costs {
		total += c
	}
	return costs, total, nil
}

// pendingAtom is one uncached (template, atom) pair awaiting exact
// costing.
type pendingAtom struct {
	ti   int
	key  string
	defs []catalog.IndexDef
	keys []string
}

// RemoteAtom is one (template, atomic-configuration) pair shipped to
// a what-if worker pool for exact costing.
type RemoteAtom struct {
	Template int
	Defs     []catalog.IndexDef
}

// RemoteCoster prices a batch of template atoms in a single round
// trip — the coordinator→worker-pool contract for distributed
// cost-table filling (internal/distrib provides the implementation).
// Each returned cost must be the exact member sum Σ Freq ×
// CostPrepared the local sweep would produce, bit for bit;
// implementations in doubt return an error and the caller sweeps
// locally.
type RemoteCoster interface {
	CostTemplateBatch(ctx context.Context, atoms []RemoteAtom) ([]float64, error)
}

// fillMissesRemote installs every pending atom from one batched
// worker-pool call, through the same cost-table Do path — and with
// the same optimizer-call accounting (one per template member) — as
// the local sweep, so table contents and counters stay byte-identical
// to a local run. Returns false, with costs untouched, on any RPC
// error, short response, or non-finite cost.
func (p *Prepared) fillMissesRemote(ctx context.Context, misses []pendingAtom, costs []float64, calls *atomic.Int64, remote RemoteCoster) bool {
	atoms := make([]RemoteAtom, len(misses))
	for i, m := range misses {
		atoms[i] = RemoteAtom{Template: m.ti, Defs: m.defs}
	}
	vals, err := remote.CostTemplateBatch(ctx, atoms)
	if err != nil || len(vals) != len(misses) {
		return false
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for i, m := range misses {
		m := m
		v, err := p.table.Do(m.key, func() (float64, error) {
			n := int64(len(p.C.Templates[m.ti].Members))
			p.optCalls.Add(n)
			if calls != nil {
				calls.Add(n)
			}
			return vals[i], nil
		})
		if err != nil {
			return false
		}
		costs[m.ti] = v
		p.recordBound(m.ti, m.keys, v)
	}
	return true
}

// RemoteStats reports distributed cost-table activity: batched RPCs
// dispatched, atoms costed remotely, and batches that fell back to
// the local member sweep.
func (p *Prepared) RemoteStats() (batches, atoms, fallbacks int64) {
	return p.remoteBatches.Load(), p.remoteAtoms.Load(), p.remoteFallbacks.Load()
}

// fillMisses computes the pending atoms exactly — in one batched
// worker-pool round trip when remote is non-nil (falling back locally
// on any failure), otherwise with up to parallelism concurrent member
// sweeps.
func (p *Prepared) fillMisses(ctx context.Context, misses []pendingAtom, costs []float64, parallelism int, calls *atomic.Int64, remote RemoteCoster) error {
	if len(misses) == 0 {
		return nil
	}
	if p.scales != nil {
		// Window mode stores unweighted sums; the remote protocol ships
		// weighted ones. Local sweeps only.
		remote = nil
	}
	if remote != nil {
		if p.fillMissesRemote(ctx, misses, costs, calls, remote) {
			p.remoteBatches.Add(1)
			p.remoteAtoms.Add(int64(len(misses)))
			return nil
		}
		p.remoteFallbacks.Add(1)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	eval := func(i int) error {
		m := misses[i]
		v, err := p.costAtom(ctx, m.ti, m.key, m.defs, m.keys, calls)
		if err != nil {
			return err
		}
		costs[m.ti] = v
		return nil
	}
	if parallelism <= 1 || len(misses) == 1 {
		for i := range misses {
			if err := eval(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := parallelism
	if workers > len(misses) {
		workers = len(misses)
	}
	errs := make([]error, len(misses))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(misses) {
					return
				}
				errs[i] = eval(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
