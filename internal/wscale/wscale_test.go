package wscale

import (
	"math"
	"testing"

	"indexmerge/internal/core"
	"indexmerge/internal/experiments"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

// testRig bundles one lab with a duplicated, disjunction-bearing
// workload compressed and prepared for decomposed costing.
type testRig struct {
	lab *experiments.Lab
	w   *sql.Workload
	c   *Compressed
	pw  *optimizer.PreparedWorkload
	p   *Prepared
	cfg *core.Configuration
}

func newTestRig(t *testing.T, duplication int) *testRig {
	t.Helper()
	lab, err := experiments.NewSynthetic2Lab(experiments.LabOptions{Scale: 0.25, WorkloadQueries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Disjunctions exercise the union access paths (whose arms are
	// exempt from the seek-lead prefilter and must still land in the
	// relevance test); Duplication exercises template folding.
	w, err := workload.Generate(lab.DB, workload.Options{
		Class: workload.Complex, Disjunctions: true,
		Queries: 10, Duplication: duplication, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Compress(w)
	pw, err := lab.Opt.PrepareWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(c, pw, lab.Opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := lab.InitialConfiguration(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) < 4 {
		t.Fatalf("initial configuration too small: %d indexes", len(defs))
	}
	return &testRig{lab: lab, w: w, c: c, pw: pw, p: p, cfg: core.NewConfiguration(defs)}
}

// TestCompressClusters checks the clustering invariants: members share
// their template's fingerprint, every workload entry lands in exactly
// one template, frequencies sum, and duplication actually compresses.
func TestCompressClusters(t *testing.T) {
	r := newTestRig(t, 60)
	c := r.c
	if len(c.Templates) == 0 {
		t.Fatal("no templates")
	}
	if len(c.Templates) >= c.Statements() {
		t.Fatalf("duplication did not compress: %d templates for %d statements",
			len(c.Templates), c.Statements())
	}
	seen := make(map[int]bool)
	var freq float64
	for _, tpl := range c.Templates {
		if len(tpl.Members) == 0 {
			t.Fatalf("template %q has no members", tpl.Fingerprint)
		}
		for _, mi := range tpl.Members {
			if seen[mi] {
				t.Fatalf("query %d in two templates", mi)
			}
			seen[mi] = true
			if fp := c.W.Queries[mi].Stmt.Fingerprint(); fp != tpl.Fingerprint {
				t.Fatalf("member %d fingerprint %q != template %q", mi, fp, tpl.Fingerprint)
			}
		}
		freq += tpl.Freq
	}
	if len(seen) != c.Statements() {
		t.Fatalf("%d of %d statements clustered", len(seen), c.Statements())
	}
	if math.Abs(freq-c.TotalFreq()) > 1e-9 {
		t.Fatalf("template freq sum %v != workload total %v", freq, c.TotalFreq())
	}
	if c.DedupRatio() <= 1 {
		t.Fatalf("dedup ratio %v not > 1 on duplicated workload", c.DedupRatio())
	}
}

// TestAtomCostExactness is the subsystem's load-bearing invariant: a
// member's cost under its template's atomic configuration must equal —
// as float bits, not within a tolerance — its cost under the full
// configuration. Checked across shrinking configurations, since the
// search only ever removes indexes from the initial one.
func TestAtomCostExactness(t *testing.T) {
	r := newTestRig(t, 40)
	full := r.cfg.Indexes
	variants := [][]*core.Index{
		full,
		full[:len(full)/2],
		nil, // empty configuration
	}
	// Every other index: exercises atoms that drop interior members.
	var alt []*core.Index
	for i, ix := range full {
		if i%2 == 0 {
			alt = append(alt, ix)
		}
	}
	variants = append(variants, alt)
	for vi, ixs := range variants {
		cfg := &core.Configuration{Indexes: ixs}
		fullDefs := optimizer.Configuration(cfg.Defs())
		for ti, tpl := range r.c.Templates {
			_, defs, _ := r.p.atom(ti, cfg)
			atomCfg := optimizer.Configuration(defs)
			for _, mi := range tpl.Members {
				atomCost, err := r.lab.Opt.CostPrepared(r.pw.Queries[mi], atomCfg)
				if err != nil {
					t.Fatalf("variant %d template %d member %d: atom: %v", vi, ti, mi, err)
				}
				fullCost, err := r.lab.Opt.CostPrepared(r.pw.Queries[mi], fullDefs)
				if err != nil {
					t.Fatalf("variant %d template %d member %d: full: %v", vi, ti, mi, err)
				}
				if math.Float64bits(atomCost) != math.Float64bits(fullCost) {
					t.Errorf("variant %d template %d member %d: atom cost %v != full cost %v (atom %d of %d indexes)",
						vi, ti, mi, atomCost, fullCost, len(defs), len(ixs))
				}
			}
		}
	}
}

// TestWorkloadCostMatchesUncompressed compares the decomposed total
// against optimizer.WorkloadCostPrepared. Summation order differs
// (template order vs workload order) so equality is within a relative
// tolerance, not bit-exact.
func TestWorkloadCostMatchesUncompressed(t *testing.T) {
	r := newTestRig(t, 40)
	for _, ixs := range [][]*core.Index{r.cfg.Indexes, r.cfg.Indexes[:3], nil} {
		cfg := &core.Configuration{Indexes: ixs}
		got, err := r.p.WorkloadCost(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.lab.Opt.WorkloadCostPrepared(r.pw, optimizer.Configuration(cfg.Defs()))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%d indexes: decomposed cost %v != prepared cost %v", len(ixs), got, want)
		}
	}
	// The second sweep over the same configurations must be pure table
	// hits: no new optimizer calls.
	calls := r.p.OptimizerCalls()
	for _, ixs := range [][]*core.Index{r.cfg.Indexes, r.cfg.Indexes[:3], nil} {
		if _, err := r.p.WorkloadCost(&core.Configuration{Indexes: ixs}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.p.OptimizerCalls(); got != calls {
		t.Errorf("repeat costing issued %d optimizer calls; want 0", got-calls)
	}
	hits, _, _ := r.p.TableStats()
	if hits == 0 {
		t.Error("no cost-table hits after repeat costing")
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		sub, super []string
		want       bool
	}{
		{nil, nil, true},
		{nil, []string{"a"}, true},
		{[]string{"a"}, nil, false},
		{[]string{"a", "c"}, []string{"a", "b", "c"}, true},
		{[]string{"a", "d"}, []string{"a", "b", "c"}, false},
		{[]string{"a", "a"}, []string{"a", "b"}, false}, // sorted-unique input assumed
		{[]string{"b"}, []string{"a", "b", "c"}, true},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.sub, c.super); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

// TestLowerBoundAdmissible: after exact costing of a configuration and
// its sub-configurations, the recorded bound for any smaller atom never
// exceeds that atom's exact cost (cost is monotone non-increasing in
// the index set).
func TestLowerBoundAdmissible(t *testing.T) {
	r := newTestRig(t, 20)
	// Cost the full configuration first so its atoms are recorded as
	// bound entries (supersets of every later atom).
	if _, err := r.p.WorkloadCost(r.cfg); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= r.cfg.Len(); cut++ {
		cfg := &core.Configuration{Indexes: r.cfg.Indexes[:cut]}
		for ti := range r.c.Templates {
			key, defs, keys := r.p.atom(ti, cfg)
			lb := r.p.lowerBound(ti, keys)
			exact, err := r.p.costAtom(t.Context(), ti, key, defs, keys, nil)
			if err != nil {
				t.Fatal(err)
			}
			if lb > exact {
				t.Errorf("cut %d template %d: lower bound %v exceeds exact cost %v", cut, ti, lb, exact)
			}
		}
	}
}

// TestCheckerDeltaMatchesFull drives the delta path through every
// candidate merge of the initial configuration and proves its total is
// bit-identical to the full decomposed costing: with U set to the
// candidate's exact cost the delta check must accept, and with U one
// ulp below it must reject.
func TestCheckerDeltaMatchesFull(t *testing.T) {
	r := newTestRig(t, 30)
	seek, err := core.ComputeSeekCostsPrepared(r.lab.Opt, r.pw, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp := &core.MergePairCost{Seek: seek}
	chk := NewChecker(r.p, 0, 0)
	chk.SetBase(r.cfg)
	for _, pair := range r.cfg.PairsByTable() {
		a, b := pair[0], pair[1]
		m, err := mp.Merge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		next := r.cfg.ReplacePair(a, b, m)
		exact, err := r.p.WorkloadCost(next)
		if err != nil {
			t.Fatal(err)
		}
		deltas := chk.DeltaChecks()

		chk.U = exact
		ok, err := chk.Accepts(next, m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("merge %s+%s: rejected at U == exact cost %v (delta total differs from full)", a.Key(), b.Key(), exact)
		}
		chk.U = math.Nextafter(exact, 0)
		ok, err = chk.Accepts(next, m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("merge %s+%s: accepted at U just below exact cost %v", a.Key(), b.Key(), exact)
		}
		if chk.DeltaChecks() != deltas+2 {
			t.Fatalf("merge %s+%s: checks did not take the delta path (%d -> %d)",
				a.Key(), b.Key(), deltas, chk.DeltaChecks())
		}
	}
	if chk.FullChecks() != 0 {
		t.Errorf("%d checks fell back to full costing; all candidates were base-derived", chk.FullChecks())
	}
}

// TestCheckerPrunesWithoutCosting: once the base is costed, its atoms
// bound every candidate's atoms from below, so with U far beneath the
// base cost a candidate must be rejected by the bound alone — no
// optimizer calls.
func TestCheckerPrunesWithoutCosting(t *testing.T) {
	r := newTestRig(t, 30)
	base, err := r.p.WorkloadCost(r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	seek, err := core.ComputeSeekCostsPrepared(r.lab.Opt, r.pw, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp := &core.MergePairCost{Seek: seek}
	chk := &Checker{P: r.p, U: base / 2}
	chk.SetBase(r.cfg)

	pair := r.cfg.PairsByTable()[0]
	a, b := pair[0], pair[1]
	m, err := mp.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	next := r.cfg.ReplacePair(a, b, m)
	calls := r.p.OptimizerCalls()
	ok, err := chk.Accepts(next, m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted a candidate with U at half the base cost")
	}
	if chk.PrunedChecks() != 1 {
		t.Fatalf("PrunedChecks = %d, want 1", chk.PrunedChecks())
	}
	if got := r.p.OptimizerCalls(); got != calls {
		t.Errorf("pruned check issued %d optimizer calls; want 0", got-calls)
	}
}

// TestCheckerStaleBaseFallsBack: a candidate that is not one merge away
// from the current base (Exhaustive's later sibling batches after a
// subtree re-based the checker) must be priced in full, and still
// correctly.
func TestCheckerStaleBaseFallsBack(t *testing.T) {
	r := newTestRig(t, 30)
	seek, err := core.ComputeSeekCostsPrepared(r.lab.Opt, r.pw, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp := &core.MergePairCost{Seek: seek}
	pairs := r.cfg.PairsByTable()
	if len(pairs) < 2 {
		t.Skip("not enough merge pairs")
	}
	// Candidate built against r.cfg...
	a, b := pairs[0][0], pairs[0][1]
	m, err := mp.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	next := r.cfg.ReplacePair(a, b, m)
	// ...but the checker was re-based to a different configuration.
	other := r.cfg.ReplacePair(pairs[1][0], pairs[1][1], mustMerge(t, mp, pairs[1][0], pairs[1][1]))
	exact, err := r.p.WorkloadCost(next)
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(r.p, 0, 0)
	chk.SetBase(other)
	chk.U = exact
	ok, err := chk.Accepts(next, m, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("stale-base full costing rejected at U == exact cost")
	}
	if chk.FullChecks() != 1 {
		t.Errorf("FullChecks = %d, want 1 (stale base must fall back)", chk.FullChecks())
	}
	if chk.DeltaChecks() != 0 {
		t.Errorf("DeltaChecks = %d, want 0", chk.DeltaChecks())
	}
}

func mustMerge(t *testing.T, mp core.MergePair, a, b *core.Index) *core.Index {
	t.Helper()
	m, err := mp.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckerGreedyMatchesOptimizerChecker runs the same greedy search
// under the uncompressed OptimizerChecker and the decomposed Checker:
// on a workload with duplicated templates both must arrive at the same
// final configuration (or provably equal cost), with the compressed run
// issuing strictly fewer optimizer calls.
func TestCheckerGreedyMatchesOptimizerChecker(t *testing.T) {
	r := newTestRig(t, 40)
	seek, err := core.ComputeSeekCostsPrepared(r.lab.Opt, r.pw, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseCost, err := r.lab.Opt.WorkloadCostPrepared(r.pw, optimizer.Configuration(r.cfg.Defs()))
	if err != nil {
		t.Fatal(err)
	}
	slack := 0.15

	plain := core.NewOptimizerChecker(r.lab.Opt, r.w, baseCost, slack)
	plain.Prepared = r.pw
	resPlain, err := core.Greedy(r.cfg, &core.MergePairCost{Seek: seek}, plain, r.lab.DB)
	if err != nil {
		t.Fatal(err)
	}

	compBase, err := r.p.WorkloadCost(r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := NewChecker(r.p, compBase, slack)
	resComp, err := core.Greedy(r.cfg, &core.MergePairCost{Seek: seek}, comp, r.lab.DB)
	if err != nil {
		t.Fatal(err)
	}

	if resPlain.Final.Signature() != resComp.Final.Signature() {
		// Last-ulp differences in the two checkers' totals can flip a
		// borderline acceptance; the runs then still must agree on cost.
		pc, err := r.lab.Opt.WorkloadCostPrepared(r.pw, optimizer.Configuration(resPlain.Final.Defs()))
		if err != nil {
			t.Fatal(err)
		}
		cc, err := r.lab.Opt.WorkloadCostPrepared(r.pw, optimizer.Configuration(resComp.Final.Defs()))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pc-cc) > 1e-9*math.Max(1, math.Abs(pc)) {
			t.Errorf("final configurations diverge:\n plain %s (cost %v)\n compressed %s (cost %v)",
				resPlain.Final.Signature(), pc, resComp.Final.Signature(), cc)
		}
	}
	if comp.OptimizerCalls() >= plain.OptimizerCalls() {
		t.Errorf("compressed search issued %d optimizer calls, uncompressed %d — no savings",
			comp.OptimizerCalls(), plain.OptimizerCalls())
	}
	t.Logf("greedy parity: %d vs %d optimizer calls (%.1fx), %d templates for %d statements",
		comp.OptimizerCalls(), plain.OptimizerCalls(),
		float64(plain.OptimizerCalls())/math.Max(1, float64(comp.OptimizerCalls())),
		len(r.c.Templates), r.c.Statements())
}
