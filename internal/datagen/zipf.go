// Package datagen generates the paper's three experimental databases —
// TPC-D (scaled), Synthetic1, and Synthetic2 — with Zipfian column
// distributions, plus batch-insert row generators for the maintenance
// experiments. Everything is seeded and deterministic.
package datagen

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws integers in [1, n] with probability proportional to
// 1/rank^theta. theta = 0 degenerates to uniform; the paper draws
// theta from {0,1,2,3,4} per column ("0 implies uniform distribution,
// whereas 4 is highly skewed data").
type Zipf struct {
	n   int
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a generator over [1, n] with skew theta.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, rng: rng}
	if theta <= 0 {
		return z // uniform fast path, no CDF needed
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next draws one value in [1, n].
func (z *Zipf) Next() int {
	if z.cdf == nil {
		return 1 + z.rng.Intn(z.n)
	}
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i + 1
}

// N returns the domain size.
func (z *Zipf) N() int { return z.n }
