package datagen

import (
	"fmt"

	"indexmerge/internal/catalog"
	"indexmerge/internal/sql"
)

// tpcdQueryTexts are the 17 TPC-D benchmark queries, simplified into
// the engine's single-block SQL dialect. The simplification keeps each
// query's table set, predicate columns, grouping/ordering columns and
// projected columns — the signals index selection and index merging
// react to — while dropping subqueries and arithmetic the engine does
// not model. Date literals are day numbers within the generator's
// 1992–1998 domain.
var tpcdQueryTexts = []string{
	// Q1: pricing summary report.
	`SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), SUM(l_tax), COUNT(*)
	 FROM lineitem WHERE l_shipdate <= DATE(10340)
	 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
	// Q2: minimum cost supplier.
	`SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation
	 WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND p_size = 15
	 ORDER BY s_acctbal DESC`,
	// Q3: shipping priority.
	`SELECT l_orderkey, SUM(l_extendedprice), o_orderdate, o_shippriority FROM customer, orders, lineitem
	 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
	 AND o_orderdate < DATE(8490) AND l_shipdate > DATE(8490)
	 GROUP BY l_orderkey, o_orderdate, o_shippriority`,
	// Q4: order priority checking.
	`SELECT o_orderpriority, COUNT(*) FROM orders
	 WHERE o_orderdate >= DATE(8582) AND o_orderdate < DATE(8674)
	 GROUP BY o_orderpriority ORDER BY o_orderpriority`,
	// Q5: local supplier volume.
	`SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation
	 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
	 AND s_nationkey = n_nationkey AND o_orderdate >= DATE(8401) AND o_orderdate < DATE(8766)
	 GROUP BY n_name`,
	// Q6: forecasting revenue change.
	`SELECT SUM(l_extendedprice) FROM lineitem
	 WHERE l_shipdate >= DATE(8401) AND l_shipdate < DATE(8766)
	 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,
	// Q7: volume shipping.
	`SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, nation
	 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
	 AND l_shipdate BETWEEN DATE(9132) AND DATE(9862)
	 GROUP BY n_name`,
	// Q8: national market share.
	`SELECT o_orderdate, SUM(l_extendedprice) FROM part, lineitem, orders
	 WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey AND p_type = 'STANDARD ANODIZED'
	 GROUP BY o_orderdate`,
	// Q9: product type profit.
	`SELECT n_name, SUM(l_extendedprice), SUM(l_discount) FROM part, supplier, lineitem, nation
	 WHERE s_suppkey = l_suppkey AND p_partkey = l_partkey AND s_nationkey = n_nationkey
	 AND p_brand = 'Brand#22'
	 GROUP BY n_name`,
	// Q10: returned item reporting.
	`SELECT c_custkey, c_name, SUM(l_extendedprice), c_acctbal FROM customer, orders, lineitem
	 WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
	 AND o_orderdate >= DATE(8674) AND o_orderdate < DATE(8766) AND l_returnflag = 'R'
	 GROUP BY c_custkey, c_name, c_acctbal`,
	// Q11: important stock identification.
	`SELECT ps_partkey, SUM(ps_supplycost) FROM partsupp, supplier, nation
	 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION_07'
	 GROUP BY ps_partkey`,
	// Q12: shipping modes and order priority.
	`SELECT l_shipmode, COUNT(*) FROM orders, lineitem
	 WHERE o_orderkey = l_orderkey AND l_shipmode = 'MAIL'
	 AND l_receiptdate >= DATE(8401) AND l_receiptdate < DATE(8766)
	 GROUP BY l_shipmode`,
	// Q13: customer distribution.
	`SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey ORDER BY c_nationkey`,
	// Q14: promotion effect.
	`SELECT SUM(l_extendedprice), SUM(l_discount) FROM lineitem, part
	 WHERE l_partkey = p_partkey AND l_shipdate >= DATE(8853) AND l_shipdate < DATE(8883)`,
	// Q15: top supplier.
	`SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem
	 WHERE l_shipdate >= DATE(8947) AND l_shipdate < DATE(9038)
	 GROUP BY l_suppkey ORDER BY l_suppkey`,
	// Q16: parts/supplier relationship.
	`SELECT p_brand, p_type, p_size, COUNT(ps_suppkey) FROM partsupp, part
	 WHERE p_partkey = ps_partkey AND p_size = 9
	 GROUP BY p_brand, p_type, p_size ORDER BY p_brand`,
	// Q17: small-quantity-order revenue.
	`SELECT AVG(l_extendedprice) FROM lineitem, part
	 WHERE p_partkey = l_partkey AND p_brand = 'Brand#33' AND p_container = 'MED CASE' AND l_quantity < 5`,
}

// TPCDWorkload parses and resolves the 17-query TPC-D workload against
// the schema.
func TPCDWorkload(sc *catalog.Schema) (*sql.Workload, error) {
	w := &sql.Workload{}
	for i, text := range tpcdQueryTexts {
		stmt, err := sql.ParseSelect(text)
		if err != nil {
			return nil, fmt.Errorf("tpcd q%d: %w", i+1, err)
		}
		if err := stmt.Resolve(sc); err != nil {
			return nil, fmt.Errorf("tpcd q%d: %w", i+1, err)
		}
		w.Add(stmt, 1)
	}
	return w, nil
}

// TPCDQueryCount is the number of benchmark queries.
const TPCDQueryCount = 17
