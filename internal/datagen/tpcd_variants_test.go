package datagen

import (
	"testing"

	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

func TestTPCDWorkloadVariants(t *testing.T) {
	db, err := BuildTPCD(ScaledTPCD(0.05), 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TPCDWorkloadVariants(db.Schema(), 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 60 {
		t.Fatalf("generated %d queries", w.Len())
	}

	// Variants must be structurally valid and literals stay in domain.
	for i, q := range w.Queries {
		if err := q.Stmt.Resolve(db.Schema()); err != nil {
			t.Fatalf("q%d invalid: %v\nsql: %s", i, err, q.Stmt)
		}
		for _, p := range q.Stmt.Where {
			check := func(v value.Value) {
				switch v.Kind() {
				case value.Date:
					if v.Int() < TPCDDateLo || v.Int() > TPCDDateHi {
						t.Errorf("q%d: date %v outside domain", i, v)
					}
				case value.String:
					if domain, ok := stringDomains[p.Col.Column]; ok {
						found := false
						for _, d := range domain {
							if d == v.Str() {
								found = true
								break
							}
						}
						if !found {
							t.Errorf("q%d: %s = %v not in domain", i, p.Col.Column, v)
						}
					}
				}
			}
			if p.Op == sql.OpBetween {
				check(p.Lo)
				check(p.Hi)
				if p.Lo.Compare(p.Hi) > 0 {
					t.Errorf("q%d: inverted BETWEEN %v..%v", i, p.Lo, p.Hi)
				}
			} else {
				check(p.Val)
			}
		}
	}

	// Parameter substitution must actually vary the queries.
	distinct := map[string]bool{}
	for _, q := range w.Queries {
		distinct[q.Stmt.String()] = true
	}
	if len(distinct) < 30 {
		t.Errorf("only %d distinct variants out of 60", len(distinct))
	}

	// Compression collapses exact duplicates with adjusted frequency.
	compressed := w.Compress()
	if compressed.Len() > w.Len() {
		t.Error("compression grew the workload")
	}
	var totalFreq float64
	for _, q := range compressed.Queries {
		totalFreq += q.Freq
	}
	if totalFreq != 60 {
		t.Errorf("total frequency %v, want 60", totalFreq)
	}
}

func TestTPCDVariantsDeterministic(t *testing.T) {
	db, err := BuildTPCD(ScaledTPCD(0.05), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TPCDWorkloadVariants(db.Schema(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TPCDWorkloadVariants(db.Schema(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Queries {
		if a.Queries[i].Stmt.String() != b.Queries[i].Stmt.String() {
			t.Fatalf("variant %d differs across same-seed runs", i)
		}
	}
}
