package datagen

import (
	"math"
	"math/rand"
	"testing"

	"indexmerge/internal/value"
)

func TestZipfUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 0)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 1 || v > 100 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Uniform: each cell ≈ 1000, allow ±35%.
	for v := 1; v <= 100; v++ {
		if counts[v] < 650 || counts[v] > 1350 {
			t.Errorf("uniform cell %d count %d far from 1000", v, counts[v])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1000, 1)
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 1 dominates rank 10 roughly 10:1 at theta=1.
	r1, r10 := float64(counts[1]), float64(counts[10])
	if r10 == 0 {
		t.Fatal("rank 10 never drawn")
	}
	ratio := r1 / r10
	if ratio < 5 || ratio > 20 {
		t.Errorf("rank1/rank10 = %.1f, want ≈10", ratio)
	}
	// Higher theta concentrates more.
	z4 := NewZipf(rng, 1000, 4)
	first := 0
	for i := 0; i < 10000; i++ {
		if z4.Next() == 1 {
			first++
		}
	}
	if float64(first)/10000 < 0.85 {
		t.Errorf("theta=4 rank-1 share %.2f, want ≳0.9", float64(first)/10000)
	}
}

func TestZipfDegenerateDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 0, 2) // clamped to 1
	if z.N() != 1 {
		t.Errorf("N = %d", z.N())
	}
	if z.Next() != 1 {
		t.Error("single-value domain must draw 1")
	}
}

func TestBuildTPCDShape(t *testing.T) {
	scale := ScaledTPCD(0.1)
	db, err := BuildTPCD(scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantTables := []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
	names := db.Schema().TableNames()
	if len(names) != len(wantTables) {
		t.Fatalf("tables: %v", names)
	}
	for _, w := range wantTables {
		if _, ok := db.Schema().Table(w); !ok {
			t.Errorf("missing table %q", w)
		}
	}
	if got := db.TableRowCount("lineitem"); got != int64(scale.Lineitem) {
		t.Errorf("lineitem rows = %d, want %d", got, scale.Lineitem)
	}
	// lineitem has the benchmark's 16 columns.
	li, _ := db.Schema().Table("lineitem")
	if len(li.Columns) != 16 {
		t.Errorf("lineitem columns = %d", len(li.Columns))
	}
	// Statistics exist and dates span the domain.
	ts := db.TableStats("lineitem")
	if ts == nil {
		t.Fatal("no stats")
	}
	cs := ts.Column("l_shipdate")
	if cs.Min.Int() < TPCDDateLo || cs.Max.Int() > TPCDDateHi {
		t.Errorf("shipdate range [%v, %v] outside domain", cs.Min, cs.Max)
	}
}

func TestBuildTPCDDeterministic(t *testing.T) {
	a, err := BuildTPCD(ScaledTPCD(0.05), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTPCD(ScaledTPCD(0.05), 9)
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.Heap("lineitem")
	hb, _ := b.Heap("lineitem")
	if ha.RowCount() != hb.RowCount() {
		t.Fatal("row counts differ")
	}
	ra, _ := ha.Get(0)
	rb, _ := hb.Get(0)
	for i := range ra {
		if ra[i].Compare(rb[i]) != 0 {
			t.Fatalf("same seed produced different data at column %d: %v vs %v", i, ra[i], rb[i])
		}
	}
}

func TestTPCDWorkloadResolves(t *testing.T) {
	db, err := BuildTPCD(ScaledTPCD(0.05), 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TPCDWorkload(db.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 17 {
		t.Errorf("TPC-D workload has %d queries, want 17", w.Len())
	}
	// Every query resolved: all column refs qualified.
	for i, q := range w.Queries {
		for _, it := range q.Stmt.Select {
			if it.Agg != 2 /* AggCountStar */ && it.Col.Column != "" && it.Col.Table == "" {
				t.Errorf("q%d: unresolved column %v", i+1, it.Col)
			}
		}
	}
	// Q1 groups by returnflag/linestatus like the benchmark.
	q1 := w.Queries[0].Stmt
	if len(q1.GroupBy) != 2 || q1.GroupBy[0].Column != "l_returnflag" {
		t.Errorf("Q1 group by: %v", q1.GroupBy)
	}
}

func TestBuildSyntheticShape(t *testing.T) {
	spec := Synthetic1Spec()
	spec.RowsPer = 500
	db, err := BuildSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	tables := db.Schema().Tables()
	if len(tables) != 5 {
		t.Fatalf("Synthetic1 tables = %d", len(tables))
	}
	// Column counts run 5..25 across tables.
	if len(tables[0].Columns) != 5 {
		t.Errorf("t1 columns = %d, want 5", len(tables[0].Columns))
	}
	if len(tables[4].Columns) != 25 {
		t.Errorf("t5 columns = %d, want 25", len(tables[4].Columns))
	}
	for _, tab := range tables {
		if db.TableRowCount(tab.Name) != 500 {
			t.Errorf("%s rows = %d", tab.Name, db.TableRowCount(tab.Name))
		}
		// Column widths bounded by the paper's 4..128 B.
		for _, c := range tab.Columns {
			if c.Width < 4 || c.Width > 128 {
				t.Errorf("%s.%s width %d outside [4,128]", tab.Name, c.Name, c.Width)
			}
		}
	}

	spec2 := Synthetic2Spec()
	spec2.RowsPer = 200
	db2, err := BuildSynthetic(spec2)
	if err != nil {
		t.Fatal(err)
	}
	tables2 := db2.Schema().Tables()
	if len(tables2) != 10 {
		t.Fatalf("Synthetic2 tables = %d", len(tables2))
	}
	if len(tables2[9].Columns) != 45 {
		t.Errorf("t10 columns = %d, want 45", len(tables2[9].Columns))
	}
}

func TestSyntheticInsertRows(t *testing.T) {
	spec := Synthetic1Spec()
	spec.RowsPer = 300
	db, err := BuildSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SyntheticInsertRows(db, "t2", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	tab, _ := db.Schema().Table("t2")
	for _, r := range rows {
		if len(r) != len(tab.Columns) {
			t.Fatalf("row arity %d", len(r))
		}
		for i, v := range r {
			if v.Kind() != tab.Columns[i].Type {
				t.Errorf("column %d kind %v, want %v", i, v.Kind(), tab.Columns[i].Type)
			}
		}
		// Row must actually insert.
		if err := db.Insert("t2", r); err != nil {
			t.Fatalf("generated row rejected: %v", err)
		}
	}
	if _, err := SyntheticInsertRows(db, "missing", 1, 1); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestGenRowHelpers(t *testing.T) {
	scale := DefaultTPCDScale()
	rng := rand.New(rand.NewSource(4))
	lr := GenLineitemRow(rng, 5, 2, scale)
	if len(lr) != 16 {
		t.Fatalf("lineitem row arity %d", len(lr))
	}
	if lr[0].Int() != 5 || lr[3].Int() != 2 {
		t.Errorf("orderkey/linenumber: %v, %v", lr[0], lr[3])
	}
	ship := lr[10].Int()
	commit := lr[11].Int()
	receipt := lr[12].Int()
	if commit < ship || receipt < ship {
		t.Errorf("date ordering violated: ship %d commit %d receipt %d", ship, commit, receipt)
	}
	or := GenOrderRow(rng, 9, scale)
	if len(or) != 9 || or[0].Int() != 9 {
		t.Errorf("orders row: %v", or)
	}
	if or[4].Kind() != value.Date {
		t.Errorf("orderdate kind %v", or[4].Kind())
	}
}

func TestScaledTPCDFloorsAtOne(t *testing.T) {
	s := ScaledTPCD(0.000001)
	if s.Region < 1 || s.Nation < 1 || s.Lineitem < 1 {
		t.Errorf("scaled below 1: %+v", s)
	}
	if math.IsNaN(float64(s.Lineitem)) {
		t.Error("NaN rows")
	}
}
