package datagen

import (
	"fmt"
	"math/rand"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

// TPC-D date domain: day numbers spanning 1992-01-01 .. 1998-08-02,
// roughly 2406 days, mirroring the benchmark's order/ship dates.
const (
	TPCDDateLo = 8036  // days since 1970-01-01 for 1992-01-01
	TPCDDateHi = 10440 // 1998-08-02
)

// TPCDScale holds per-table row counts. The paper ran TPC-D at 1 GB
// (SF 1: 6M lineitem rows); we default to a microscale that preserves
// the benchmark's relative table sizes — the merging results depend on
// statistics and page arithmetic, both of which scale.
type TPCDScale struct {
	Lineitem int
	Orders   int
	Customer int
	Part     int
	Supplier int
	PartSupp int
	Nation   int
	Region   int
}

// DefaultTPCDScale is roughly SF 1/500.
func DefaultTPCDScale() TPCDScale {
	return TPCDScale{
		Lineitem: 12000,
		Orders:   3000,
		Customer: 300,
		Part:     400,
		Supplier: 20,
		PartSupp: 1600,
		Nation:   25,
		Region:   5,
	}
}

// ScaledTPCD multiplies the default scale by f (minimum 1 row/table).
func ScaledTPCD(f float64) TPCDScale {
	s := DefaultTPCDScale()
	mul := func(n int) int {
		m := int(float64(n) * f)
		if m < 1 {
			m = 1
		}
		return m
	}
	return TPCDScale{
		Lineitem: mul(s.Lineitem),
		Orders:   mul(s.Orders),
		Customer: mul(s.Customer),
		Part:     mul(s.Part),
		Supplier: mul(s.Supplier),
		PartSupp: mul(s.PartSupp),
		Nation:   mul(s.Nation),
		Region:   mul(s.Region),
	}
}

func col(name string, kind value.Kind, width int) catalog.Column {
	return catalog.Column{Name: name, Type: kind, Width: width}
}

// TPCDSchema returns the eight TPC-D tables with authentic columns and
// declared string widths.
func TPCDSchema() []*catalog.Table {
	return []*catalog.Table{
		catalog.MustNewTable("region", []catalog.Column{
			col("r_regionkey", value.Int, 0),
			col("r_name", value.String, 25),
			col("r_comment", value.String, 152),
		}),
		catalog.MustNewTable("nation", []catalog.Column{
			col("n_nationkey", value.Int, 0),
			col("n_name", value.String, 25),
			col("n_regionkey", value.Int, 0),
			col("n_comment", value.String, 152),
		}),
		catalog.MustNewTable("supplier", []catalog.Column{
			col("s_suppkey", value.Int, 0),
			col("s_name", value.String, 25),
			col("s_address", value.String, 40),
			col("s_nationkey", value.Int, 0),
			col("s_phone", value.String, 15),
			col("s_acctbal", value.Float, 0),
			col("s_comment", value.String, 101),
		}),
		catalog.MustNewTable("customer", []catalog.Column{
			col("c_custkey", value.Int, 0),
			col("c_name", value.String, 25),
			col("c_address", value.String, 40),
			col("c_nationkey", value.Int, 0),
			col("c_phone", value.String, 15),
			col("c_acctbal", value.Float, 0),
			col("c_mktsegment", value.String, 10),
			col("c_comment", value.String, 117),
		}),
		catalog.MustNewTable("part", []catalog.Column{
			col("p_partkey", value.Int, 0),
			col("p_name", value.String, 55),
			col("p_mfgr", value.String, 25),
			col("p_brand", value.String, 10),
			col("p_type", value.String, 25),
			col("p_size", value.Int, 0),
			col("p_container", value.String, 10),
			col("p_retailprice", value.Float, 0),
			col("p_comment", value.String, 23),
		}),
		catalog.MustNewTable("partsupp", []catalog.Column{
			col("ps_partkey", value.Int, 0),
			col("ps_suppkey", value.Int, 0),
			col("ps_availqty", value.Int, 0),
			col("ps_supplycost", value.Float, 0),
			col("ps_comment", value.String, 199),
		}),
		catalog.MustNewTable("orders", []catalog.Column{
			col("o_orderkey", value.Int, 0),
			col("o_custkey", value.Int, 0),
			col("o_orderstatus", value.String, 1),
			col("o_totalprice", value.Float, 0),
			col("o_orderdate", value.Date, 0),
			col("o_orderpriority", value.String, 15),
			col("o_clerk", value.String, 15),
			col("o_shippriority", value.Int, 0),
			col("o_comment", value.String, 79),
		}),
		catalog.MustNewTable("lineitem", []catalog.Column{
			col("l_orderkey", value.Int, 0),
			col("l_partkey", value.Int, 0),
			col("l_suppkey", value.Int, 0),
			col("l_linenumber", value.Int, 0),
			col("l_quantity", value.Float, 0),
			col("l_extendedprice", value.Float, 0),
			col("l_discount", value.Float, 0),
			col("l_tax", value.Float, 0),
			col("l_returnflag", value.String, 1),
			col("l_linestatus", value.String, 1),
			col("l_shipdate", value.Date, 0),
			col("l_commitdate", value.Date, 0),
			col("l_receiptdate", value.Date, 0),
			col("l_shipinstruct", value.String, 25),
			col("l_shipmode", value.String, 10),
			col("l_comment", value.String, 44),
		}),
	}
}

var (
	regionNames     = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	shipModes       = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	shipInstructs   = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
	containers      = []string{"JUMBO BAG", "LG BOX", "MED CASE", "SM PKG", "WRAP JAR"}
	brands          = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}
	types           = []string{"ECONOMY BRASS", "LARGE PLATED", "MEDIUM POLISHED", "SMALL BURNISHED", "STANDARD ANODIZED", "PROMO BURNISHED"}
	returnFlags     = []string{"R", "A", "N"}
	lineStatuses    = []string{"O", "F"}
)

func pick(rng *rand.Rand, opts []string) value.Value {
	return value.NewString(opts[rng.Intn(len(opts))])
}

func comment(rng *rand.Rand, width int) value.Value {
	words := []string{"final", "pending", "quick", "silent", "ironic", "furious", "careful", "express", "regular", "special", "bold", "even"}
	s := ""
	for len(s) < width/3 {
		if s != "" {
			s += " "
		}
		s += words[rng.Intn(len(words))]
	}
	if len(s) > width {
		s = s[:width]
	}
	return value.NewString(s)
}

func money(rng *rand.Rand, lo, hi float64) value.Value {
	v := lo + rng.Float64()*(hi-lo)
	return value.NewFloat(float64(int(v*100)) / 100)
}

func dateIn(rng *rand.Rand, lo, hi int64) value.Value {
	return value.NewDate(lo + rng.Int63n(hi-lo+1))
}

// BuildTPCD creates and loads a TPC-D database at the given scale, and
// analyzes it. The generator is deterministic in seed.
func BuildTPCD(scale TPCDScale, seed int64) (*engine.Database, error) {
	db := engine.NewDatabase()
	for _, t := range TPCDSchema() {
		if err := db.CreateTable(t); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < scale.Region; i++ {
		name := regionNames[i%len(regionNames)]
		if err := db.Insert("region", value.Row{
			value.NewInt(int64(i)), value.NewString(name), comment(rng, 152),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Nation; i++ {
		if err := db.Insert("nation", value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("NATION_%02d", i)),
			value.NewInt(int64(rng.Intn(scale.Region))),
			comment(rng, 152),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Supplier; i++ {
		if err := db.Insert("supplier", value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Supplier#%09d", i)),
			comment(rng, 40),
			value.NewInt(int64(rng.Intn(scale.Nation))),
			value.NewString(fmt.Sprintf("%02d-%03d-%03d", rng.Intn(35), rng.Intn(1000), rng.Intn(1000))),
			money(rng, -999, 9999),
			comment(rng, 101),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Customer; i++ {
		if err := db.Insert("customer", value.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Customer#%09d", i)),
			comment(rng, 40),
			value.NewInt(int64(rng.Intn(scale.Nation))),
			value.NewString(fmt.Sprintf("%02d-%03d-%03d", rng.Intn(35), rng.Intn(1000), rng.Intn(1000))),
			money(rng, -999, 9999),
			pick(rng, mktSegments),
			comment(rng, 117),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Part; i++ {
		if err := db.Insert("part", value.Row{
			value.NewInt(int64(i)),
			comment(rng, 55),
			value.NewString(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
			pick(rng, brands),
			pick(rng, types),
			value.NewInt(int64(1 + rng.Intn(50))),
			pick(rng, containers),
			money(rng, 900, 2000),
			comment(rng, 23),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.PartSupp; i++ {
		if err := db.Insert("partsupp", value.Row{
			value.NewInt(int64(i % scale.Part)),
			value.NewInt(int64(i % scale.Supplier)),
			value.NewInt(int64(1 + rng.Intn(9999))),
			money(rng, 1, 1000),
			comment(rng, 199),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Orders; i++ {
		if err := db.Insert("orders", GenOrderRow(rng, int64(i), scale)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scale.Lineitem; i++ {
		if err := db.Insert("lineitem", GenLineitemRow(rng, int64(i%scale.Orders), int64(i%7), scale)); err != nil {
			return nil, err
		}
	}

	db.AnalyzeAll()
	return db, nil
}

// GenOrderRow generates one orders row; exported for the batch-insert
// maintenance experiments.
func GenOrderRow(rng *rand.Rand, orderkey int64, scale TPCDScale) value.Row {
	return value.Row{
		value.NewInt(orderkey),
		value.NewInt(rng.Int63n(int64(scale.Customer))),
		pick(rng, []string{"O", "F", "P"}),
		money(rng, 1000, 400000),
		dateIn(rng, TPCDDateLo, TPCDDateHi-90),
		pick(rng, orderPriorities),
		value.NewString(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))),
		value.NewInt(0),
		comment(rng, 79),
	}
}

// GenLineitemRow generates one lineitem row; exported for the
// batch-insert maintenance experiments.
func GenLineitemRow(rng *rand.Rand, orderkey, linenumber int64, scale TPCDScale) value.Row {
	ship := dateIn(rng, TPCDDateLo, TPCDDateHi-60)
	return value.Row{
		value.NewInt(orderkey),
		value.NewInt(rng.Int63n(int64(scale.Part))),
		value.NewInt(rng.Int63n(int64(scale.Supplier))),
		value.NewInt(linenumber),
		value.NewFloat(float64(1 + rng.Intn(50))),
		money(rng, 900, 100000),
		value.NewFloat(float64(rng.Intn(11)) / 100),
		value.NewFloat(float64(rng.Intn(9)) / 100),
		pick(rng, returnFlags),
		pick(rng, lineStatuses),
		ship,
		value.NewDate(ship.Int() + int64(rng.Intn(30))),
		value.NewDate(ship.Int() + 30 + int64(rng.Intn(30))),
		pick(rng, shipInstructs),
		pick(rng, shipModes),
		comment(rng, 44),
	}
}
