package datagen

import (
	"fmt"
	"math/rand"

	"indexmerge/internal/catalog"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

// stringDomains maps TPC-D columns to their value domains, used to
// re-draw string parameters the way the benchmark's QGEN substitutes
// them.
var stringDomains = map[string][]string{
	"c_mktsegment":    mktSegments,
	"p_brand":         brands,
	"p_type":          types,
	"p_container":     containers,
	"l_shipmode":      shipModes,
	"l_shipinstruct":  shipInstructs,
	"l_returnflag":    returnFlags,
	"l_linestatus":    lineStatuses,
	"o_orderpriority": orderPriorities,
}

// TPCDWorkloadVariants generates an n-query workload by drawing the 17
// benchmark templates with randomized substitution parameters — QGEN's
// role. Dates shift uniformly inside the data's date domain (window
// lengths preserved), numeric parameters jitter around the template's
// value, and string parameters re-draw from their column's domain.
// Identical draws are possible, exactly like a real query log; use
// Workload.Compress to deduplicate with adjusted frequencies.
func TPCDWorkloadVariants(sc *catalog.Schema, n int, seed int64) (*sql.Workload, error) {
	base, err := TPCDWorkload(sc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	w := &sql.Workload{}
	// Append raw entries rather than Add-folding duplicates: this
	// generator deliberately produces an uncompressed query log, so
	// repeated draws of the same variant stay as separate statements
	// for Compress / wscale to collapse.
	for len(w.Queries) < n {
		tmpl := base.Queries[rng.Intn(base.Len())].Stmt
		variant, err := varyStatement(sc, tmpl, rng)
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, sql.WorkloadQuery{Stmt: variant, Freq: 1})
	}
	return w, nil
}

// varyStatement deep-copies the template via its canonical text and
// perturbs every literal parameter.
func varyStatement(sc *catalog.Schema, tmpl *sql.SelectStmt, rng *rand.Rand) (*sql.SelectStmt, error) {
	stmt, err := sql.ParseSelect(tmpl.String())
	if err != nil {
		return nil, fmt.Errorf("datagen: template failed to reparse: %w", err)
	}
	if err := stmt.Resolve(sc); err != nil {
		return nil, err
	}
	for i := range stmt.Where {
		p := &stmt.Where[i]
		switch p.Op {
		case sql.OpBetween:
			p.Lo, p.Hi = varyRange(p.Col.Column, p.Lo, p.Hi, rng)
		default:
			p.Val = varyValue(p.Col.Column, p.Val, rng)
		}
	}
	return stmt, nil
}

// varyValue perturbs one literal according to its type and column.
func varyValue(col string, v value.Value, rng *rand.Rand) value.Value {
	switch v.Kind() {
	case value.Date:
		// Shift anywhere in the benchmark date domain.
		span := int64(TPCDDateHi - TPCDDateLo - 120)
		return value.NewDate(TPCDDateLo + rng.Int63n(span))
	case value.Int:
		base := v.Int()
		if base <= 0 {
			return value.NewInt(int64(1 + rng.Intn(50)))
		}
		lo := base/2 + 1
		return value.NewInt(lo + rng.Int63n(base))
	case value.Float:
		f := v.Float() * (0.5 + rng.Float64())
		return value.NewFloat(float64(int(f*100)) / 100)
	case value.String:
		if domain, ok := stringDomains[col]; ok {
			return value.NewString(domain[rng.Intn(len(domain))])
		}
		return v
	}
	return v
}

// varyRange shifts a BETWEEN window, preserving its width for dates.
func varyRange(col string, lo, hi value.Value, rng *rand.Rand) (value.Value, value.Value) {
	if lo.Kind() == value.Date && hi.Kind() == value.Date {
		width := hi.Int() - lo.Int()
		if width < 0 {
			width = 0
		}
		maxStart := int64(TPCDDateHi) - width - int64(TPCDDateLo)
		if maxStart < 1 {
			maxStart = 1
		}
		start := int64(TPCDDateLo) + rng.Int63n(maxStart)
		return value.NewDate(start), value.NewDate(start + width)
	}
	a := varyValue(col, lo, rng)
	b := varyValue(col, hi, rng)
	if a.Compare(b) > 0 {
		a, b = b, a
	}
	return a, b
}
