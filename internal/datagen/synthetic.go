package datagen

import (
	"fmt"
	"math/rand"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

// SyntheticSpec describes one of the paper's synthetic databases
// (§4.2.1): a number of tables with column counts varied over a range,
// mixed column widths between 4 and 128 bytes, and per-column Zipfian
// skew drawn from {0, 1, 2, 3, 4}.
type SyntheticSpec struct {
	Name       string
	Tables     int
	MinCols    int
	MaxCols    int
	RowsPer    int // rows per table (paper sizes scaled down)
	Seed       int64
	ZipfLevels []float64
}

// Synthetic1Spec mirrors the paper's Synthetic1: 5 tables, 5–25
// columns each (~200 MB there; scaled here).
func Synthetic1Spec() SyntheticSpec {
	return SyntheticSpec{
		Name:       "Synthetic1",
		Tables:     5,
		MinCols:    5,
		MaxCols:    25,
		RowsPer:    6000,
		Seed:       101,
		ZipfLevels: []float64{0, 1, 2, 3, 4},
	}
}

// Synthetic2Spec mirrors the paper's Synthetic2: 10 tables, 5–45
// columns each (~1.2 GB there; scaled here).
func Synthetic2Spec() SyntheticSpec {
	return SyntheticSpec{
		Name:       "Synthetic2",
		Tables:     10,
		MinCols:    5,
		MaxCols:    45,
		RowsPer:    4000,
		Seed:       202,
		ZipfLevels: []float64{0, 1, 2, 3, 4},
	}
}

// syntheticColumn is the generation recipe for one column.
type syntheticColumn struct {
	col     catalog.Column
	theta   float64
	domain  int
	strBase string
}

// BuildSynthetic creates and loads a synthetic database per the spec.
// Column types alternate among INT, FLOAT and STRING; string widths
// cycle through 4..128 bytes; every column gets independent Zipfian
// skew drawn from the spec's levels — all matching §4.2.1.
func BuildSynthetic(spec SyntheticSpec) (*engine.Database, error) {
	db := engine.NewDatabase()
	rng := rand.New(rand.NewSource(spec.Seed))

	widths := []int{4, 8, 16, 32, 64, 128}
	var allCols [][]syntheticColumn

	for t := 0; t < spec.Tables; t++ {
		nCols := spec.MinCols
		if spec.Tables > 1 {
			nCols += (spec.MaxCols - spec.MinCols) * t / (spec.Tables - 1)
		}
		tname := fmt.Sprintf("t%d", t+1)
		var cols []catalog.Column
		var recipes []syntheticColumn
		for c := 0; c < nCols; c++ {
			name := fmt.Sprintf("c%02d", c+1)
			theta := spec.ZipfLevels[rng.Intn(len(spec.ZipfLevels))]
			domain := 10 + rng.Intn(spec.RowsPer)
			var col catalog.Column
			switch c % 3 {
			case 0:
				col = catalog.Column{Name: name, Type: value.Int}
			case 1:
				col = catalog.Column{Name: name, Type: value.Float}
			default:
				col = catalog.Column{Name: name, Type: value.String, Width: widths[(t+c)%len(widths)]}
			}
			cols = append(cols, col)
			recipes = append(recipes, syntheticColumn{col: col, theta: theta, domain: domain, strBase: fmt.Sprintf("%s_%s_", tname, name)})
		}
		tab, err := catalog.NewTable(tname, cols)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(tab); err != nil {
			return nil, err
		}
		allCols = append(allCols, recipes)
	}

	for t := 0; t < spec.Tables; t++ {
		tname := fmt.Sprintf("t%d", t+1)
		recipes := allCols[t]
		gens := make([]*Zipf, len(recipes))
		for i, r := range recipes {
			gens[i] = NewZipf(rng, r.domain, r.theta)
		}
		for rix := 0; rix < spec.RowsPer; rix++ {
			row := make(value.Row, len(recipes))
			for i, r := range recipes {
				row[i] = SynthValue(r.col, gens[i].Next(), r.strBase)
			}
			if err := db.Insert(tname, row); err != nil {
				return nil, err
			}
		}
	}
	db.AnalyzeAll()
	return db, nil
}

// SynthValue maps a Zipf draw to a typed column value.
func SynthValue(col catalog.Column, draw int, strBase string) value.Value {
	switch col.Type {
	case value.Int:
		return value.NewInt(int64(draw))
	case value.Float:
		return value.NewFloat(float64(draw) + 0.5)
	case value.Date:
		return value.NewDate(int64(draw))
	default:
		s := fmt.Sprintf("%s%06d", strBase, draw)
		if len(s) > col.Width {
			s = s[len(s)-col.Width:]
		}
		return value.NewString(s)
	}
}

// SyntheticInsertRows generates n fresh rows for a synthetic table,
// used by the batch-insert maintenance experiments. The distributions
// match the loader's.
func SyntheticInsertRows(db *engine.Database, table string, n int, seed int64) ([]value.Row, error) {
	t, ok := db.Schema().Table(table)
	if !ok {
		return nil, fmt.Errorf("datagen: unknown table %q", table)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([]value.Row, n)
	rowCount := int(db.TableRowCount(table))
	if rowCount < 10 {
		rowCount = 10
	}
	for i := range rows {
		row := make(value.Row, len(t.Columns))
		for c, col := range t.Columns {
			draw := 1 + rng.Intn(rowCount)
			row[c] = SynthValue(col, draw, fmt.Sprintf("%s_%s_", table, col.Name))
		}
		rows[i] = row
	}
	return rows, nil
}
