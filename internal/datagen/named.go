package datagen

import (
	"fmt"
	"strings"

	"indexmerge/internal/engine"
)

// BuildNamed builds a database from a spec string shared by every
// entry point (both CLIs, idxmerged sessions, and what-if workers):
// "tpcd", "synthetic1", "synthetic2" — scaled and seeded — or
// "file:PATH" for a saved snapshot. The build is deterministic in
// (name, scale, seed), so a coordinator and its workers constructing
// the same spec independently agree on data, statistics, and
// therefore what-if costs (engine.Database.Fingerprint checks this).
func BuildNamed(name string, scale float64, seed int64) (*engine.Database, error) {
	if strings.HasPrefix(name, "file:") {
		return engine.LoadSnapshotFile(strings.TrimPrefix(name, "file:"))
	}
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "tpcd":
		return BuildTPCD(ScaledTPCD(scale), seed)
	case "synthetic1":
		spec := Synthetic1Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		spec.Seed += seed
		return BuildSynthetic(spec)
	case "synthetic2":
		spec := Synthetic2Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		spec.Seed += seed
		return BuildSynthetic(spec)
	}
	return nil, fmt.Errorf("unknown database %q (want tpcd, synthetic1, synthetic2 or file:PATH)", name)
}
