package catalog

import (
	"strings"
	"testing"

	"indexmerge/internal/value"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	tab := MustNewTable("t", []Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.String, Width: 10},
		{Name: "c", Type: value.Float},
		{Name: "d", Type: value.Date},
	})
	if err := s.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		name string
		tn   string
		cols []Column
		want string // error substring; empty = ok
	}{
		{"ok", "t", []Column{{Name: "a", Type: value.Int}}, ""},
		{"empty name", "", []Column{{Name: "a", Type: value.Int}}, "empty table name"},
		{"no columns", "t", nil, "no columns"},
		{"empty column name", "t", []Column{{Name: "", Type: value.Int}}, "empty name"},
		{"dup column", "t", []Column{{Name: "a", Type: value.Int}, {Name: "a", Type: value.Int}}, "duplicate column"},
		{"string no width", "t", []Column{{Name: "s", Type: value.String}}, "positive width"},
		{"bad type", "t", []Column{{Name: "x", Type: value.Null}}, "invalid type"},
	}
	for _, c := range cases {
		_, err := NewTable(c.tn, c.cols)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestNumericWidthsNormalized(t *testing.T) {
	tab := MustNewTable("t", []Column{
		{Name: "a", Type: value.Int, Width: 3}, // ignored
		{Name: "b", Type: value.Float},
		{Name: "c", Type: value.Date, Width: 100},
	})
	for _, c := range tab.Columns {
		if c.Width != 8 {
			t.Errorf("column %s width %d, want 8", c.Name, c.Width)
		}
	}
	if tab.RowWidth() != 24 {
		t.Errorf("RowWidth = %d, want 24", tab.RowWidth())
	}
}

func TestColumnLookups(t *testing.T) {
	s := testSchema(t)
	tab, _ := s.Table("t")
	if i := tab.ColumnIndex("b"); i != 1 {
		t.Errorf("ColumnIndex(b) = %d", i)
	}
	if i := tab.ColumnIndex("zz"); i != -1 {
		t.Errorf("ColumnIndex(zz) = %d", i)
	}
	if c, ok := tab.Column("b"); !ok || c.Width != 10 {
		t.Errorf("Column(b) = %+v, %v", c, ok)
	}
	if _, ok := tab.Column("zz"); ok {
		t.Error("Column(zz) found")
	}
	if !tab.HasColumn("d") || tab.HasColumn("e") {
		t.Error("HasColumn wrong")
	}
	names := tab.ColumnNames()
	if len(names) != 4 || names[0] != "a" || names[3] != "d" {
		t.Errorf("ColumnNames = %v", names)
	}
	if w := tab.WidthOf([]string{"a", "b"}); w != 18 {
		t.Errorf("WidthOf(a,b) = %d, want 18", w)
	}
	if w := tab.WidthOf([]string{"a", "nope"}); w != 8 {
		t.Errorf("WidthOf with unknown = %d, want 8", w)
	}
}

func TestSchemaTables(t *testing.T) {
	s := testSchema(t)
	if err := s.AddTable(MustNewTable("u", []Column{{Name: "x", Type: value.Int}})); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(MustNewTable("t", []Column{{Name: "x", Type: value.Int}})); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := s.TableNames(); len(got) != 2 || got[0] != "t" || got[1] != "u" {
		t.Errorf("TableNames = %v", got)
	}
	if got := s.Tables(); len(got) != 2 || got[0].Name != "t" {
		t.Errorf("Tables order wrong")
	}
	if _, ok := s.Table("nope"); ok {
		t.Error("found nonexistent table")
	}
}

func TestNewIndexDefValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewIndexDef(s, "i", "nope", []string{"a"}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := NewIndexDef(s, "i", "t", nil); err == nil {
		t.Error("empty columns accepted")
	}
	if _, err := NewIndexDef(s, "i", "t", []string{"zz"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := NewIndexDef(s, "i", "t", []string{"a", "a"}); err == nil {
		t.Error("repeated column accepted")
	}
	def, err := NewIndexDef(s, "", "t", []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "ix_t_b_a" {
		t.Errorf("auto name = %q", def.Name)
	}
	if def.Key() != "t(b,a)" {
		t.Errorf("Key = %q", def.Key())
	}
}

func TestIndexDefPrefixAndCovers(t *testing.T) {
	ab := IndexDef{Table: "t", Columns: []string{"a", "b"}}
	abc := IndexDef{Table: "t", Columns: []string{"a", "b", "c"}}
	ba := IndexDef{Table: "t", Columns: []string{"b", "a"}}
	other := IndexDef{Table: "u", Columns: []string{"a"}}

	if !abc.HasPrefix(ab) {
		t.Error("abc should have prefix ab")
	}
	if ab.HasPrefix(abc) {
		t.Error("ab cannot have longer prefix abc")
	}
	if abc.HasPrefix(ba) {
		t.Error("abc should not have prefix ba (order matters)")
	}
	if !ab.HasPrefix(ab) {
		t.Error("index should be a prefix of itself")
	}
	if abc.HasPrefix(other) {
		t.Error("prefix across tables")
	}

	if !abc.CoversColumns([]string{"c", "a"}) {
		t.Error("abc covers {c,a}")
	}
	if abc.CoversColumns([]string{"a", "z"}) {
		t.Error("abc does not cover z")
	}
	if !ab.CoversColumns(nil) {
		t.Error("empty set is always covered")
	}
}

func TestIndexDefSignatures(t *testing.T) {
	ab := IndexDef{Table: "t", Columns: []string{"a", "b"}}
	ba := IndexDef{Table: "t", Columns: []string{"b", "a"}}
	if ab.Key() == ba.Key() {
		t.Error("Key must be order sensitive")
	}
	if ab.SortedColumnSignature() != ba.SortedColumnSignature() {
		t.Error("SortedColumnSignature must be order insensitive")
	}
	set := ab.ColumnSet()
	if !set["a"] || !set["b"] || len(set) != 2 {
		t.Errorf("ColumnSet = %v", set)
	}
}

func TestIndexDefString(t *testing.T) {
	d := IndexDef{Name: "ix", Table: "t", Columns: []string{"a"}}
	if got := d.String(); got != "ix ON t(a)" {
		t.Errorf("String = %q", got)
	}
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewTable did not panic on invalid input")
		}
	}()
	MustNewTable("", nil)
}
