// Package catalog holds schema metadata: tables, columns, and index
// definitions. The catalog is the shared vocabulary between the storage
// engine, the optimizer, the advisor, and the index-merging core.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"indexmerge/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type value.Kind
	// Width is the stored width in bytes. For String columns it is the
	// declared (fixed) width; for numeric columns it is 8. Index size
	// estimation (paper §3.3) sums these widths.
	Width int
}

// Table describes a relation: its name and ordered columns.
type Table struct {
	Name    string
	Columns []Column

	byName map[string]int
}

// NewTable builds a table descriptor, normalizing numeric widths.
func NewTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q has no columns", name)
	}
	t := &Table{Name: name, Columns: make([]Column, len(cols)), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("catalog: table %q column %d has empty name", name, i)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("catalog: table %q has duplicate column %q", name, c.Name)
		}
		switch c.Type {
		case value.Int, value.Float, value.Date:
			c.Width = 8
		case value.String:
			if c.Width <= 0 {
				return nil, fmt.Errorf("catalog: table %q string column %q needs a positive width", name, c.Name)
			}
		default:
			return nil, fmt.Errorf("catalog: table %q column %q has invalid type %v", name, c.Name, c.Type)
		}
		t.Columns[i] = c
		t.byName[c.Name] = i
	}
	return t, nil
}

// MustNewTable is NewTable, panicking on error; for statically known schemas.
func MustNewTable(name string, cols []Column) *Table {
	t, err := NewTable(name, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column descriptor.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// HasColumn reports whether the table defines the named column.
func (t *Table) HasColumn(name string) bool { return t.ColumnIndex(name) >= 0 }

// RowWidth is the stored width of one row in bytes (sum of column widths).
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// ColumnNames returns the table's column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// WidthOf sums the stored widths of the named columns. Unknown columns
// contribute zero; callers validate column existence separately.
func (t *Table) WidthOf(cols []string) int {
	w := 0
	for _, name := range cols {
		if i := t.ColumnIndex(name); i >= 0 {
			w += t.Columns[i].Width
		}
	}
	return w
}

// SchemaHolder is anything that exposes a schema (e.g. the engine's
// Database); small consumers accept this instead of the full database.
type SchemaHolder interface {
	Schema() *Schema
}

// Schema is a set of tables.
type Schema struct {
	tables map[string]*Table
	order  []string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: make(map[string]*Table)}
}

// AddTable registers a table; table names must be unique.
func (s *Schema) AddTable(t *Table) error {
	if _, dup := s.tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	s.tables[t.Name] = t
	s.order = append(s.order, t.Name)
	return nil
}

// Table looks up a table by name.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the tables in registration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.tables[name])
	}
	return out
}

// TableNames returns the registered table names in registration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// IndexDef identifies an index: a table and an ordered list of key
// columns. Column order is semantically significant — it determines
// which predicates the index can serve with a seek (paper Definition 1,
// Example 1). IndexDef carries no storage; the storage engine and the
// what-if machinery attach size and statistics separately.
type IndexDef struct {
	Name    string
	Table   string
	Columns []string
}

// NewIndexDef validates the definition against a schema and returns it.
func NewIndexDef(s *Schema, name, table string, columns []string) (IndexDef, error) {
	t, ok := s.Table(table)
	if !ok {
		return IndexDef{}, fmt.Errorf("catalog: index %q references unknown table %q", name, table)
	}
	if len(columns) == 0 {
		return IndexDef{}, fmt.Errorf("catalog: index %q has no columns", name)
	}
	seen := make(map[string]bool, len(columns))
	for _, c := range columns {
		if !t.HasColumn(c) {
			return IndexDef{}, fmt.Errorf("catalog: index %q references unknown column %s.%s", name, table, c)
		}
		if seen[c] {
			return IndexDef{}, fmt.Errorf("catalog: index %q repeats column %q", name, c)
		}
		seen[c] = true
	}
	if name == "" {
		name = AutoIndexName(table, columns)
	}
	return IndexDef{Name: name, Table: table, Columns: append([]string(nil), columns...)}, nil
}

// AutoIndexName derives a deterministic name from table and columns.
func AutoIndexName(table string, columns []string) string {
	return "ix_" + table + "_" + strings.Join(columns, "_")
}

// Key returns a canonical identity string: table plus ordered columns.
// Two IndexDefs with equal Key are the same index regardless of Name.
func (d IndexDef) Key() string {
	return d.Table + "(" + strings.Join(d.Columns, ",") + ")"
}

// String implements fmt.Stringer.
func (d IndexDef) String() string { return d.Name + " ON " + d.Key() }

// HasPrefix reports whether other's column list is a leading prefix of
// d's (order-sensitive). Every index is a prefix of itself.
func (d IndexDef) HasPrefix(other IndexDef) bool {
	if d.Table != other.Table || len(other.Columns) > len(d.Columns) {
		return false
	}
	for i, c := range other.Columns {
		if d.Columns[i] != c {
			return false
		}
	}
	return true
}

// ColumnSet returns the index's columns as a set.
func (d IndexDef) ColumnSet() map[string]bool {
	set := make(map[string]bool, len(d.Columns))
	for _, c := range d.Columns {
		set[c] = true
	}
	return set
}

// CoversColumns reports whether the index contains every column in cols
// (order-insensitive) — the covering-index test from the paper's intro.
func (d IndexDef) CoversColumns(cols []string) bool {
	set := d.ColumnSet()
	for _, c := range cols {
		if !set[c] {
			return false
		}
	}
	return true
}

// SortedColumnSignature returns the column set sorted and joined — a
// canonical signature that ignores order, used to detect duplicate
// column sets across differently ordered indexes.
func (d IndexDef) SortedColumnSignature() string {
	cols := append([]string(nil), d.Columns...)
	sort.Strings(cols)
	return d.Table + "{" + strings.Join(cols, ",") + "}"
}
