// Package engine ties the substrates together into a database: tables
// with heap storage, materialized B+-tree indexes, per-column
// statistics, and the what-if configuration support the optimizer and
// the index-merging core consume. It plays the role Microsoft SQL
// Server 7.0 plays in the paper's architecture (Figure 1, "Database
// Server").
package engine

import (
	"fmt"
	"sync/atomic"

	"indexmerge/internal/catalog"
	"indexmerge/internal/faults"
	"indexmerge/internal/stats"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

// Database is an in-memory database instance.
//
// Concurrency contract: the read path — Schema, Heap, Index(es),
// TableStats, TableRowCount, DataBytes, EstimateIndexBytes,
// ConfigurationBytes — is safe for concurrent use provided no mutator
// (CreateTable, CreateIndex, DropIndex, Insert, DeleteWhere, BulkLoad,
// Materialize, Analyze*) runs at the same time. The parallel merge
// search only ever uses the read path; experiments that materialize
// configurations do so strictly between searches.
type Database struct {
	schema  *catalog.Schema
	heaps   map[string]*storage.Heap
	indexes map[string]*storage.Index // keyed by IndexDef.Key()
	tstats  map[string]*stats.TableStats

	statsOpts stats.BuildOptions

	// statsVersion counts statistics rebuilds (Analyze calls). Prepared
	// query descriptors bake selectivities in at prepare time and use
	// the version to detect staleness (optimizer.StatsVersioner).
	statsVersion atomic.Uint64

	// frozen is set permanently by Snapshot(): every mutator fails from
	// then on, making concurrent Fork() and read-path use safe. fork
	// marks a copy-on-write fork (set at construction, never cleared),
	// whose row/schema mutators fail because heaps and schema are
	// shared with the frozen origin (see cow.go).
	frozen atomic.Bool
	fork   bool
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{
		schema:  catalog.NewSchema(),
		heaps:   make(map[string]*storage.Heap),
		indexes: make(map[string]*storage.Index),
		tstats:  make(map[string]*stats.TableStats),
	}
}

// SetStatsOptions configures how AnalyzeAll builds statistics (bucket
// count, sampling rate, seed).
func (db *Database) SetStatsOptions(opt stats.BuildOptions) { db.statsOpts = opt }

// Schema returns the database schema.
func (db *Database) Schema() *catalog.Schema { return db.schema }

// CreateTable registers a table and allocates its heap.
func (db *Database) CreateTable(t *catalog.Table) error {
	if err := db.mutableRows(); err != nil {
		return err
	}
	if err := db.schema.AddTable(t); err != nil {
		return err
	}
	db.heaps[t.Name] = storage.NewHeap(t)
	return nil
}

// Heap returns the named table's heap.
func (db *Database) Heap(table string) (*storage.Heap, error) {
	h, ok := db.heaps[table]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	return h, nil
}

// Insert appends one row, maintaining every materialized index on the
// table. Maintenance page writes accrue to each index's counters.
func (db *Database) Insert(table string, r value.Row) error {
	if err := db.mutableRows(); err != nil {
		return err
	}
	h, err := db.Heap(table)
	if err != nil {
		return err
	}
	id, err := h.Insert(r)
	if err != nil {
		return err
	}
	for _, ix := range db.indexes {
		if ix.Def().Table == table {
			ix.InsertRow(id, r)
		}
	}
	return nil
}

// DeleteWhere removes every live row the predicate matches, keeping
// all indexes maintained (each index delete is charged to maintenance
// like a ghost-record removal). It returns the number of rows deleted.
func (db *Database) DeleteWhere(table string, match func(value.Row) bool) (int, error) {
	if err := db.mutableRows(); err != nil {
		return 0, err
	}
	h, err := db.Heap(table)
	if err != nil {
		return 0, err
	}
	var victims []storage.RowID
	h.Scan(func(id storage.RowID, r value.Row) bool {
		if match(r) {
			victims = append(victims, id)
		}
		return true
	})
	for _, id := range victims {
		row, err := h.Get(id)
		if err != nil {
			return 0, err
		}
		for _, ix := range db.indexes {
			if ix.Def().Table == table {
				ix.DeleteRow(id, row)
			}
		}
		if err := h.Delete(id); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// BulkLoad appends rows without index maintenance accounting; indexes
// created afterwards are built from the heap.
func (db *Database) BulkLoad(table string, rows []value.Row) error {
	if err := db.mutableRows(); err != nil {
		return err
	}
	h, err := db.Heap(table)
	if err != nil {
		return err
	}
	for _, r := range rows {
		id, err := h.Insert(r)
		if err != nil {
			return err
		}
		for _, ix := range db.indexes {
			if ix.Def().Table == table {
				ix.InsertRow(id, r)
			}
		}
	}
	return nil
}

// CreateIndex materializes an index over the table's current contents.
// Creating an index whose definition (table + ordered columns) already
// exists is an error.
func (db *Database) CreateIndex(def catalog.IndexDef) (*storage.Index, error) {
	if err := db.mutableIndexes(); err != nil {
		return nil, err
	}
	def, err := catalog.NewIndexDef(db.schema, def.Name, def.Table, def.Columns)
	if err != nil {
		return nil, err
	}
	key := def.Key()
	if _, dup := db.indexes[key]; dup {
		return nil, fmt.Errorf("engine: index on %s already exists", key)
	}
	h := db.heaps[def.Table]
	ix, err := storage.BuildIndex(def, h)
	if err != nil {
		return nil, err
	}
	db.indexes[key] = ix
	return ix, nil
}

// DropIndex removes the index with the given definition key.
func (db *Database) DropIndex(defKey string) error {
	if err := db.mutableIndexes(); err != nil {
		return err
	}
	if _, ok := db.indexes[defKey]; !ok {
		return fmt.Errorf("engine: no index on %s", defKey)
	}
	delete(db.indexes, defKey)
	return nil
}

// DropAllIndexes removes every materialized index. It panics on a
// frozen database (callers that can observe freezing use DropIndex
// and get ErrFrozen); a fork only replaces its private map.
func (db *Database) DropAllIndexes() {
	if db.frozen.Load() {
		panic("engine: DropAllIndexes on a frozen database")
	}
	db.indexes = make(map[string]*storage.Index)
}

// Index returns the materialized index with the given definition key.
func (db *Database) Index(defKey string) (*storage.Index, bool) {
	ix, ok := db.indexes[defKey]
	return ix, ok
}

// Indexes returns all materialized indexes.
func (db *Database) Indexes() []*storage.Index {
	out := make([]*storage.Index, 0, len(db.indexes))
	for _, ix := range db.indexes {
		out = append(out, ix)
	}
	return out
}

// IndexesOn returns the materialized indexes on one table.
func (db *Database) IndexesOn(table string) []*storage.Index {
	var out []*storage.Index
	for _, ix := range db.indexes {
		if ix.Def().Table == table {
			out = append(out, ix)
		}
	}
	return out
}

// AnalyzeAll (re)builds statistics for every table. Statistics back
// both real-index costing and hypothetical-index costing; they are the
// whole substance of a what-if index (paper §3.5.3).
func (db *Database) AnalyzeAll() {
	for _, t := range db.schema.Tables() {
		db.Analyze(t.Name)
	}
}

// Analyze rebuilds statistics for one table. It panics on a frozen
// database (a programming error — snapshots pin their statistics
// version); on a fork it replaces entries in the fork's private stats
// map and only reads the shared heap.
func (db *Database) Analyze(table string) {
	if db.frozen.Load() {
		panic("engine: Analyze on a frozen database")
	}
	faults.Hit(faults.StatsSample)
	h, err := db.Heap(table)
	if err != nil {
		return
	}
	t := h.Table()
	ts := &stats.TableStats{RowCount: h.RowCount(), Columns: make(map[string]*stats.ColumnStats, len(t.Columns))}
	cols := make([][]value.Value, len(t.Columns))
	for i := range cols {
		cols[i] = make([]value.Value, 0, h.RowCount())
	}
	h.Scan(func(_ storage.RowID, r value.Row) bool {
		for i, v := range r {
			cols[i] = append(cols[i], v)
		}
		return true
	})
	for i, c := range t.Columns {
		opt := db.statsOpts
		opt.Seed = db.statsOpts.Seed + int64(i)*7919
		ts.Columns[c.Name] = stats.Build(cols[i], opt)
	}
	db.tstats[table] = ts
	db.statsVersion.Add(1)
}

// StatsVersion returns the statistics rebuild counter; it implements
// optimizer.StatsVersioner so prepared workloads detect stale
// selectivities after Analyze reruns.
func (db *Database) StatsVersion() uint64 { return db.statsVersion.Load() }

// TableStats returns statistics for a table (nil when not analyzed).
func (db *Database) TableStats(table string) *stats.TableStats { return db.tstats[table] }

// TableRowCount returns the live row count of a table.
func (db *Database) TableRowCount(table string) int64 {
	if h, ok := db.heaps[table]; ok {
		return h.RowCount()
	}
	return 0
}

// DataBytes returns the total heap size across tables — "the data
// size" against which the paper reports index storage multiples.
func (db *Database) DataBytes() int64 {
	var total int64
	for _, h := range db.heaps {
		total += h.Bytes()
	}
	return total
}

// EstimateIndexBytes predicts the size of an index (materialized or
// hypothetical) over the current table contents.
func (db *Database) EstimateIndexBytes(def catalog.IndexDef) int64 {
	t, ok := db.schema.Table(def.Table)
	if !ok {
		return 0
	}
	return storage.EstimateIndexBytes(db.TableRowCount(def.Table), t.WidthOf(def.Columns))
}

// ConfigurationBytes sums the estimated storage of a configuration
// (paper §3.1: "The storage of a configuration C is the sum of the
// storage of indexes in C").
func (db *Database) ConfigurationBytes(cfg []catalog.IndexDef) int64 {
	var total int64
	for _, def := range cfg {
		total += db.EstimateIndexBytes(def)
	}
	return total
}

// Materialize drops all indexes and creates exactly the given
// configuration — used by experiments that need real page counts and
// maintenance costs rather than estimates.
func (db *Database) Materialize(cfg []catalog.IndexDef) error {
	if err := db.mutableIndexes(); err != nil {
		return err
	}
	db.DropAllIndexes()
	for _, def := range cfg {
		if _, err := db.CreateIndex(def); err != nil {
			return err
		}
	}
	return nil
}

// ResetMaintenance starts a fresh maintenance accounting window on all
// materialized indexes. It panics on frozen databases and forks:
// maintenance counters live on the index objects, which forks share
// with their origin.
func (db *Database) ResetMaintenance() {
	if db.fork || db.frozen.Load() {
		panic("engine: ResetMaintenance on a frozen database or fork")
	}
	for _, ix := range db.indexes {
		ix.ResetMaintenance()
	}
}

// MaintenanceCost totals maintenance page writes across all indexes
// since the last reset.
func (db *Database) MaintenanceCost() int64 {
	var total int64
	for _, ix := range db.indexes {
		total += ix.MaintenanceCost()
	}
	return total
}
