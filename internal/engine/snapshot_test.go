package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

func snapshotFixture(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("t", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "s", Type: value.String, Width: 12},
		{Name: "f", Type: value.Float},
		{Name: "d", Type: value.Date},
	})); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		row := value.Row{value.NewInt(i), value.NewString("str"), value.NewFloat(float64(i) / 3), value.NewDate(i % 30)}
		if i%50 == 0 {
			row[1] = value.NewNull()
		}
		if err := db.Insert("t", row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "ix", Table: "t", Columns: []string{"a", "d"}}); err != nil {
		t.Fatal(err)
	}
	// Deleted rows must not survive a snapshot round trip.
	if _, err := db.DeleteWhere("t", func(r value.Row) bool { return r[0].Int() >= 490 }); err != nil {
		t.Fatal(err)
	}
	db.AnalyzeAll()
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotFixture(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TableRowCount("t") != 490 {
		t.Errorf("loaded rows = %d, want 490 (tombstones dropped)", loaded.TableRowCount("t"))
	}
	// Rows round trip exactly, nulls included.
	h1, _ := db.Heap("t")
	h2, _ := loaded.Heap("t")
	rows1 := map[int64]value.Row{}
	h1.Scan(func(_ storage.RowID, r value.Row) bool { rows1[r[0].Int()] = r; return true })
	h2.Scan(func(_ storage.RowID, r value.Row) bool {
		orig, ok := rows1[r[0].Int()]
		if !ok {
			t.Fatalf("loaded row %v absent from original", r[0])
		}
		for i := range r {
			if orig[i].Compare(r[i]) != 0 || orig[i].Kind() != r[i].Kind() {
				t.Fatalf("column %d differs: %v (%v) vs %v (%v)", i, orig[i], orig[i].Kind(), r[i], r[i].Kind())
			}
		}
		return true
	})
	// The index was rebuilt and is usable.
	ix, ok := loaded.Index("t(a,d)")
	if !ok {
		t.Fatal("index missing after load")
	}
	if ix.Len() != 490 {
		t.Errorf("index entries = %d", ix.Len())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// Statistics were rebuilt.
	if loaded.TableStats("t") == nil {
		t.Error("statistics missing after load")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	db := snapshotFixture(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TableRowCount("t") != db.TableRowCount("t") {
		t.Errorf("row counts differ: %d vs %d", loaded.TableRowCount("t"), db.TableRowCount("t"))
	}
	if _, err := LoadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
