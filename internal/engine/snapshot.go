package engine

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"indexmerge/internal/catalog"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

// Snapshot wire format: a gob-encoded, gzip-compressed dump of the
// schema, all live rows, and the materialized index definitions.
// Statistics are rebuilt on load (they are derived state). The format
// lets dbgen materialize a database once and reuse it across tool runs.

type wireColumn struct {
	Name  string
	Kind  uint8
	Width int
}

type wireValue struct {
	Kind uint8
	I    int64
	F    float64
	S    string
}

type wireTable struct {
	Name    string
	Columns []wireColumn
	Rows    [][]wireValue
}

type wireIndex struct {
	Name    string
	Table   string
	Columns []string
}

type wireSnapshot struct {
	Magic   string
	Tables  []wireTable
	Indexes []wireIndex
}

const snapshotMagic = "indexmerge-snapshot-v1"

func toWire(v value.Value) wireValue {
	switch v.Kind() {
	case value.Int, value.Date:
		return wireValue{Kind: uint8(v.Kind()), I: v.Int()}
	case value.Float:
		return wireValue{Kind: uint8(v.Kind()), F: v.Float()}
	case value.String:
		return wireValue{Kind: uint8(v.Kind()), S: v.Str()}
	}
	return wireValue{Kind: uint8(value.Null)}
}

func fromWire(w wireValue) value.Value {
	switch value.Kind(w.Kind) {
	case value.Int:
		return value.NewInt(w.I)
	case value.Date:
		return value.NewDate(w.I)
	case value.Float:
		return value.NewFloat(w.F)
	case value.String:
		return value.NewString(w.S)
	}
	return value.NewNull()
}

// SaveSnapshot writes the database (schema, live rows, index
// definitions) to w.
func (db *Database) SaveSnapshot(w io.Writer) error {
	gz := gzip.NewWriter(w)
	enc := gob.NewEncoder(gz)
	snap := wireSnapshot{Magic: snapshotMagic}
	for _, t := range db.schema.Tables() {
		h, err := db.Heap(t.Name)
		if err != nil {
			return err
		}
		wt := wireTable{Name: t.Name}
		for _, c := range t.Columns {
			wt.Columns = append(wt.Columns, wireColumn{Name: c.Name, Kind: uint8(c.Type), Width: c.Width})
		}
		h.Scan(func(_ storage.RowID, r value.Row) bool {
			row := make([]wireValue, len(r))
			for i, v := range r {
				row[i] = toWire(v)
			}
			wt.Rows = append(wt.Rows, row)
			return true
		})
		snap.Tables = append(snap.Tables, wt)
	}
	for _, ix := range db.Indexes() {
		d := ix.Def()
		snap.Indexes = append(snap.Indexes, wireIndex{Name: d.Name, Table: d.Table, Columns: d.Columns})
	}
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("engine: encoding snapshot: %w", err)
	}
	return gz.Close()
}

// LoadSnapshot reconstructs a database from a snapshot written by
// SaveSnapshot: tables, rows, materialized indexes, fresh statistics.
func LoadSnapshot(r io.Reader) (*Database, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot is not gzip: %w", err)
	}
	defer gz.Close()
	var snap wireSnapshot
	if err := gob.NewDecoder(gz).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if snap.Magic != snapshotMagic {
		return nil, fmt.Errorf("engine: bad snapshot magic %q", snap.Magic)
	}
	db := NewDatabase()
	for _, wt := range snap.Tables {
		cols := make([]catalog.Column, len(wt.Columns))
		for i, c := range wt.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: value.Kind(c.Kind), Width: c.Width}
		}
		t, err := catalog.NewTable(wt.Name, cols)
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable(t); err != nil {
			return nil, err
		}
		for _, wr := range wt.Rows {
			row := make(value.Row, len(wr))
			for i, wv := range wr {
				row[i] = fromWire(wv)
			}
			if err := db.Insert(wt.Name, row); err != nil {
				return nil, err
			}
		}
	}
	for _, wi := range snap.Indexes {
		if _, err := db.CreateIndex(catalog.IndexDef{Name: wi.Name, Table: wi.Table, Columns: wi.Columns}); err != nil {
			return nil, err
		}
	}
	db.AnalyzeAll()
	return db, nil
}

// SaveSnapshotFile and LoadSnapshotFile are path-based conveniences.
func (db *Database) SaveSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := db.SaveSnapshot(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSnapshotFile loads a snapshot from disk.
func LoadSnapshotFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(bufio.NewReader(f))
}
