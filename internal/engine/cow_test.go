package engine

import (
	"errors"
	"sync"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/value"
)

func buildCOWTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	tbl, err := catalog.NewTable("t", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "s", Type: value.String, Width: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		r := value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 17)), value.NewString("x")}
		if err := db.Insert("t", r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "t_a", Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	db.AnalyzeAll()
	return db
}

func TestSnapshotFreezesOrigin(t *testing.T) {
	db := buildCOWTestDB(t)
	snap := db.Snapshot()
	if snap.StatsVersion() != db.StatsVersion() {
		t.Fatalf("snapshot version %d != db version %d", snap.StatsVersion(), db.StatsVersion())
	}
	if err := db.Insert("t", value.Row{value.NewInt(1), value.NewInt(1), value.NewString("x")}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Insert on frozen origin: got %v, want ErrFrozen", err)
	}
	if _, err := db.DeleteWhere("t", func(value.Row) bool { return true }); !errors.Is(err, ErrFrozen) {
		t.Fatalf("DeleteWhere on frozen origin: got %v, want ErrFrozen", err)
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "t_b", Table: "t", Columns: []string{"b"}}); !errors.Is(err, ErrFrozen) {
		t.Fatalf("CreateIndex on frozen origin: got %v, want ErrFrozen", err)
	}
	if err := db.DropIndex("t(a)"); !errors.Is(err, ErrFrozen) && err == nil {
		t.Fatalf("DropIndex on frozen origin: got %v", err)
	}
	if err := db.Materialize(nil); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Materialize on frozen origin: got %v, want ErrFrozen", err)
	}
	tbl, _ := catalog.NewTable("u", []catalog.Column{{Name: "a", Type: value.Int}})
	if err := db.CreateTable(tbl); !errors.Is(err, ErrFrozen) {
		t.Fatalf("CreateTable on frozen origin: got %v, want ErrFrozen", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Analyze on frozen origin did not panic")
			}
		}()
		db.Analyze("t")
	}()
	// The read path stays fully usable after freezing.
	if db.TableRowCount("t") != 200 {
		t.Fatalf("row count = %d", db.TableRowCount("t"))
	}
	if db.TableStats("t") == nil {
		t.Fatal("stats gone after freeze")
	}
}

func TestForkSharesDataAndIsolatesIndexDDL(t *testing.T) {
	db := buildCOWTestDB(t)
	snap := db.Snapshot()
	f1 := snap.Fork()
	f2 := snap.Fork()

	if f1.DataBytes() != db.DataBytes() {
		t.Fatalf("fork data bytes %d != origin %d", f1.DataBytes(), db.DataBytes())
	}
	if f1.StatsVersion() != snap.StatsVersion() {
		t.Fatalf("fork stats version %d != snapshot %d", f1.StatsVersion(), snap.StatsVersion())
	}
	if f1.TableStats("t") != db.TableStats("t") {
		t.Fatal("fork does not share the origin's statistics objects")
	}

	// Index DDL on one fork is invisible to the origin and siblings.
	if _, err := f1.CreateIndex(catalog.IndexDef{Name: "t_b", Table: "t", Columns: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	if len(f1.Indexes()) != 2 {
		t.Fatalf("f1 has %d indexes, want 2", len(f1.Indexes()))
	}
	if len(db.Indexes()) != 1 || len(f2.Indexes()) != 1 {
		t.Fatalf("index DDL leaked: origin %d, sibling %d", len(db.Indexes()), len(f2.Indexes()))
	}
	if err := f2.Materialize([]catalog.IndexDef{{Name: "t_ba", Table: "t", Columns: []string{"b", "a"}}}); err != nil {
		t.Fatal(err)
	}
	if len(db.Indexes()) != 1 {
		t.Fatal("Materialize on fork leaked into origin")
	}

	// Row and schema mutation on a fork is rejected: heaps are shared.
	if err := f1.Insert("t", value.Row{value.NewInt(1), value.NewInt(1), value.NewString("x")}); !errors.Is(err, ErrForkMutation) {
		t.Fatalf("Insert on fork: got %v, want ErrForkMutation", err)
	}
	if err := f1.BulkLoad("t", nil); !errors.Is(err, ErrForkMutation) {
		t.Fatalf("BulkLoad on fork: got %v, want ErrForkMutation", err)
	}
	tbl, _ := catalog.NewTable("u", []catalog.Column{{Name: "a", Type: value.Int}})
	if err := f1.CreateTable(tbl); !errors.Is(err, ErrForkMutation) {
		t.Fatalf("CreateTable on fork: got %v, want ErrForkMutation", err)
	}

	// Analyze on a fork replaces entries in its private map only.
	f1.Analyze("t")
	if f1.TableStats("t") == db.TableStats("t") {
		t.Fatal("fork Analyze overwrote the shared stats object")
	}
	if f2.TableStats("t") != db.TableStats("t") {
		t.Fatal("fork Analyze leaked into sibling")
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	a := buildCOWTestDB(t)
	b := buildCOWTestDB(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical builds fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	snap := a.Snapshot()
	if snap.Fingerprint() != b.Fingerprint() {
		t.Fatal("snapshot fingerprint differs from origin's")
	}
	if snap.Fork().Fingerprint() != b.Fingerprint() {
		t.Fatal("fork fingerprint differs from origin's")
	}
	// Extra data changes the fingerprint.
	if err := b.Insert("t", value.Row{value.NewInt(999), value.NewInt(0), value.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignored a row-count change")
	}
}

func TestConcurrentForks(t *testing.T) {
	db := buildCOWTestDB(t)
	snap := db.Snapshot()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := snap.Fork()
			if _, err := f.CreateIndex(catalog.IndexDef{Name: "t_b", Table: "t", Columns: []string{"b"}}); err != nil {
				t.Error(err)
			}
			f.Analyze("t")
			if f.TableRowCount("t") != 200 {
				t.Errorf("fork sees %d rows", f.TableRowCount("t"))
			}
		}()
	}
	wg.Wait()
	if len(db.Indexes()) != 1 {
		t.Fatalf("concurrent fork DDL leaked: %d indexes on origin", len(db.Indexes()))
	}
}
