// Copy-on-write snapshots. A Snapshot freezes a Database into an
// immutable view; Fork then derives cheap private copies that share
// every heap page, index and statistics object with the frozen origin
// while keeping their own catalog-of-indexes and statistics maps. One
// loaded database can this way serve many concurrent idxmerged
// sessions — and ship to stateless what-if workers — without rebuilds
// (ROADMAP item 3).
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"maps"
	"sort"
)

// ErrFrozen is returned by mutators invoked on a database that has
// been frozen by Snapshot().
var ErrFrozen = errors.New("engine: database is frozen by a snapshot")

// ErrForkMutation is returned by row/schema mutators invoked on a
// copy-on-write fork, which shares heaps and schema with its origin.
var ErrForkMutation = errors.New("engine: copy-on-write fork forbids row and schema mutation")

// Snapshot is an immutable view of a Database, keyed by the
// statistics version captured at freeze time. Creating a snapshot
// freezes the origin permanently: every mutator on it fails from then
// on, which is what makes concurrent Fork() calls and concurrent
// read-path use safe.
type Snapshot struct {
	origin  *Database
	version uint64
	fp      uint64
}

// Snapshot freezes the database and returns an immutable view of it.
// Freezing is permanent and idempotent; the read path (costing,
// scans) remains fully usable on the origin.
func (db *Database) Snapshot() *Snapshot {
	if db.fork {
		panic("engine: Snapshot on a copy-on-write fork")
	}
	db.frozen.Store(true)
	return &Snapshot{origin: db, version: db.statsVersion.Load(), fp: db.Fingerprint()}
}

// StatsVersion returns the statistics version captured at freeze time.
func (s *Snapshot) StatsVersion() uint64 { return s.version }

// Fingerprint returns the origin's fingerprint (see
// Database.Fingerprint) captured at freeze time.
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// DB returns the frozen origin for read-only use (costing, scans).
func (s *Snapshot) DB() *Database { return s.origin }

// Fork returns a copy-on-write database derived from the snapshot.
// The fork shares the origin's schema, heaps, materialized indexes
// and statistics objects, but owns its maps: CreateIndex, DropIndex,
// Materialize and Analyze act on the fork alone, while Insert,
// DeleteWhere, BulkLoad and CreateTable — which would mutate shared
// state — return ErrForkMutation. Forking is safe concurrently with
// other forks and with read-path use of the origin.
func (s *Snapshot) Fork() *Database {
	o := s.origin
	f := &Database{
		schema:    o.schema,
		heaps:     maps.Clone(o.heaps),
		indexes:   maps.Clone(o.indexes),
		tstats:    maps.Clone(o.tstats),
		statsOpts: o.statsOpts,
		fork:      true,
	}
	f.statsVersion.Store(s.version)
	return f
}

// mutableRows guards mutators that write rows or schema (shared with
// the origin on forks, immutable on frozen databases).
func (db *Database) mutableRows() error {
	if db.fork {
		return ErrForkMutation
	}
	if db.frozen.Load() {
		return ErrFrozen
	}
	return nil
}

// mutableIndexes guards index DDL and Analyze: forbidden on frozen
// origins, allowed on forks (their index/stats maps are private and
// building an index only reads the shared heap).
func (db *Database) mutableIndexes() error {
	if db.frozen.Load() {
		return ErrFrozen
	}
	return nil
}

// Fingerprint summarizes the database for coordinator/worker
// compatibility checks: FNV-1a over the sorted schema (table, column
// names/types/widths), per-table row counts and heap bytes, the
// sorted materialized index keys, and the statistics build options
// and version. Two processes that build the same database through the
// same deterministic path (a snapshot file, or a named generator with
// identical scale and seed) agree on it; a worker whose fingerprint
// differs from the coordinator's must not be trusted to return
// identical what-if costs.
func (db *Database) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	tables := db.schema.Tables()
	names := make([]string, 0, len(tables))
	byName := make(map[string]int, len(tables))
	for i, t := range tables {
		names = append(names, t.Name)
		byName[t.Name] = i
	}
	sort.Strings(names)
	for _, name := range names {
		t := tables[byName[name]]
		str(t.Name)
		u64(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			str(c.Name)
			u64(uint64(c.Type))
			u64(uint64(c.Width))
		}
		u64(uint64(db.TableRowCount(t.Name)))
		if hp, ok := db.heaps[t.Name]; ok {
			u64(uint64(hp.Bytes()))
		}
	}
	keys := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	u64(uint64(len(keys)))
	for _, k := range keys {
		str(k)
	}
	u64(uint64(db.statsOpts.Buckets))
	u64(uint64(int64(db.statsOpts.SampleRate * 1e9)))
	u64(uint64(db.statsOpts.Seed))
	u64(db.statsVersion.Load())
	return h.Sum64()
}

// FingerprintString renders a fingerprint the way the worker protocol
// transports it (hexadecimal, to survive JSON's float64 numbers).
func FingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }
