package engine

import (
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/stats"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

func newDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("t", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.String, Width: 10},
	})); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableAndInsert(t *testing.T) {
	db := newDB(t)
	if err := db.CreateTable(catalog.MustNewTable("t", []catalog.Column{{Name: "x", Type: value.Int}})); err == nil {
		t.Error("duplicate table accepted")
	}
	for i := int64(0); i < 10; i++ {
		if err := db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")}); err != nil {
			t.Fatal(err)
		}
	}
	if db.TableRowCount("t") != 10 {
		t.Errorf("rows = %d", db.TableRowCount("t"))
	}
	if db.TableRowCount("missing") != 0 {
		t.Error("missing table row count != 0")
	}
	if err := db.Insert("missing", value.Row{}); err == nil {
		t.Error("insert into missing table accepted")
	}
	if _, err := db.Heap("missing"); err == nil {
		t.Error("Heap(missing) succeeded")
	}
}

func TestIndexLifecycle(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 100; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	def := catalog.IndexDef{Name: "ix", Table: "t", Columns: []string{"a"}}
	ix, err := db.CreateIndex(def)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Errorf("index entries = %d", ix.Len())
	}
	if _, err := db.CreateIndex(def); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, ok := db.Index(def.Key()); !ok {
		t.Error("index not found by key")
	}
	if got := db.IndexesOn("t"); len(got) != 1 {
		t.Errorf("IndexesOn = %d", len(got))
	}
	// Inserts maintain the index.
	db.Insert("t", value.Row{value.NewInt(1000), value.NewString("z")})
	if ix.Len() != 101 {
		t.Errorf("index not maintained: %d entries", ix.Len())
	}
	if err := db.DropIndex(def.Key()); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex(def.Key()); err == nil {
		t.Error("double drop accepted")
	}
	if len(db.Indexes()) != 0 {
		t.Error("indexes remain after drop")
	}
}

func TestCreateIndexValidates(t *testing.T) {
	db := newDB(t)
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "i", Table: "nope", Columns: []string{"a"}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "i", Table: "t", Columns: []string{"zz"}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestMaterialize(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 50; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	cfg := []catalog.IndexDef{
		{Name: "i1", Table: "t", Columns: []string{"a"}},
		{Name: "i2", Table: "t", Columns: []string{"b", "a"}},
	}
	if err := db.Materialize(cfg); err != nil {
		t.Fatal(err)
	}
	if len(db.Indexes()) != 2 {
		t.Errorf("materialized %d indexes", len(db.Indexes()))
	}
	// Re-materializing a different config replaces everything.
	if err := db.Materialize(cfg[:1]); err != nil {
		t.Fatal(err)
	}
	if len(db.Indexes()) != 1 {
		t.Errorf("after re-materialize: %d indexes", len(db.Indexes()))
	}
}

func TestAnalyzeAndStats(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 500; i++ {
		db.Insert("t", value.Row{value.NewInt(i % 10), value.NewString("s")})
	}
	if db.TableStats("t") != nil {
		t.Error("stats exist before Analyze")
	}
	db.AnalyzeAll()
	ts := db.TableStats("t")
	if ts == nil || ts.RowCount != 500 {
		t.Fatalf("stats: %+v", ts)
	}
	cs := ts.Column("a")
	if cs == nil || cs.Distinct != 10 {
		t.Errorf("column a distinct = %v", cs.Distinct)
	}
}

func TestEstimateIndexBytesTracksActual(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 20000; i++ {
		db.Insert("t", value.Row{value.NewInt(i * 37 % 97), value.NewString("abcdefgh")})
	}
	def := catalog.IndexDef{Name: "ix", Table: "t", Columns: []string{"a", "b"}}
	est := db.EstimateIndexBytes(def)
	ix, err := db.CreateIndex(def)
	if err != nil {
		t.Fatal(err)
	}
	actual := ix.Bytes()
	ratio := float64(actual) / float64(est)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("estimate %d vs actual %d (ratio %.2f)", est, actual, ratio)
	}
}

func TestConfigurationBytesSums(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 1000; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	a := catalog.IndexDef{Name: "i1", Table: "t", Columns: []string{"a"}}
	b := catalog.IndexDef{Name: "i2", Table: "t", Columns: []string{"b"}}
	if db.ConfigurationBytes([]catalog.IndexDef{a, b}) != db.EstimateIndexBytes(a)+db.EstimateIndexBytes(b) {
		t.Error("ConfigurationBytes is not the sum of parts")
	}
	if db.EstimateIndexBytes(catalog.IndexDef{Table: "missing"}) != 0 {
		t.Error("estimate for unknown table != 0")
	}
}

func TestMaintenanceAccounting(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 5000; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "i1", Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	db.ResetMaintenance()
	if db.MaintenanceCost() != 0 {
		t.Error("cost after reset not 0")
	}
	for i := int64(0); i < 100; i++ {
		db.Insert("t", value.Row{value.NewInt(i * 31), value.NewString("z")})
	}
	if db.MaintenanceCost() == 0 {
		t.Error("no maintenance recorded for indexed inserts")
	}
}

func TestDataBytes(t *testing.T) {
	db := newDB(t)
	before := db.DataBytes()
	for i := int64(0); i < 10000; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	if db.DataBytes() <= before {
		t.Error("DataBytes did not grow")
	}
	// Heap pages must match the storage estimator exactly.
	h, _ := db.Heap("t")
	if h.Pages() != storage.EstimateHeapPages(10000, 18) {
		t.Errorf("heap pages %d vs estimate %d", h.Pages(), storage.EstimateHeapPages(10000, 18))
	}
}

func TestBulkLoad(t *testing.T) {
	db := newDB(t)
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "i1", Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Row, 100)
	for i := range rows {
		rows[i] = value.Row{value.NewInt(int64(i)), value.NewString("s")}
	}
	if err := db.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	if db.TableRowCount("t") != 100 {
		t.Errorf("rows = %d", db.TableRowCount("t"))
	}
	ix, _ := db.Index("t(a)")
	if ix.Len() != 100 {
		t.Errorf("index entries = %d", ix.Len())
	}
}

func TestSetStatsOptionsSampling(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 20000; i++ {
		db.Insert("t", value.Row{value.NewInt(i % 500), value.NewString("s")})
	}
	db.SetStatsOptions(stats.BuildOptions{SampleRate: 0.05, Seed: 3, Buckets: 32})
	db.AnalyzeAll()
	cs := db.TableStats("t").Column("a")
	if cs == nil {
		t.Fatal("no stats")
	}
	if cs.RowCount != 20000 {
		t.Errorf("sampled stats RowCount = %v, want full count", cs.RowCount)
	}
	// Distinct estimate within 3x of truth (500) despite 5% sampling.
	if cs.Distinct < 150 || cs.Distinct > 1500 {
		t.Errorf("sampled Distinct = %v, truth 500", cs.Distinct)
	}
}

func TestDeleteWhereEngine(t *testing.T) {
	db := newDB(t)
	for i := int64(0); i < 200; i++ {
		db.Insert("t", value.Row{value.NewInt(i), value.NewString("s")})
	}
	if _, err := db.CreateIndex(catalog.IndexDef{Name: "i", Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	n, err := db.DeleteWhere("t", func(r value.Row) bool { return r[0].Int() < 50 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 || db.TableRowCount("t") != 150 {
		t.Fatalf("deleted %d, rows %d", n, db.TableRowCount("t"))
	}
	ix, _ := db.Index("t(a)")
	if ix.Len() != 150 {
		t.Errorf("index entries = %d", ix.Len())
	}
	if _, err := db.DeleteWhere("missing", func(value.Row) bool { return true }); err == nil {
		t.Error("unknown table accepted")
	}
	// Rebuilding an index over a heap with tombstones skips them.
	if err := db.Materialize([]catalog.IndexDef{{Name: "i2", Table: "t", Columns: []string{"b", "a"}}}); err != nil {
		t.Fatal(err)
	}
	ix2, _ := db.Index("t(b,a)")
	if ix2.Len() != 150 {
		t.Errorf("rebuilt index entries = %d, want 150", ix2.Len())
	}
}
