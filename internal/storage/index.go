package storage

import (
	"fmt"

	"indexmerge/internal/catalog"
	"indexmerge/internal/value"
)

// Index is a materialized secondary index: a B+-tree over the key
// columns named by its definition, with RowIDs as payload.
type Index struct {
	def      catalog.IndexDef
	tree     *BTree
	colIdx   []int // ordinals of key columns within the table row
	keyWidth int
}

// BuildIndex materializes an index over the heap's current contents.
func BuildIndex(def catalog.IndexDef, h *Heap) (*Index, error) {
	t := h.Table()
	if def.Table != t.Name {
		return nil, fmt.Errorf("storage: index %q is on table %q, heap holds %q", def.Name, def.Table, t.Name)
	}
	colIdx := make([]int, len(def.Columns))
	keyWidth := 0
	for i, c := range def.Columns {
		ord := t.ColumnIndex(c)
		if ord < 0 {
			return nil, fmt.Errorf("storage: index %q references unknown column %s.%s", def.Name, t.Name, c)
		}
		colIdx[i] = ord
		keyWidth += t.Columns[ord].Width
	}
	ix := &Index{def: def, tree: NewBTree(keyWidth), colIdx: colIdx, keyWidth: keyWidth}
	h.Scan(func(id RowID, r value.Row) bool {
		ix.tree.Insert(ix.keyOf(r), id)
		return true
	})
	// Building is not maintenance; start accounting fresh.
	ix.tree.Maint.Reset()
	return ix, nil
}

// keyOf extracts the index key from a table row.
func (ix *Index) keyOf(r value.Row) value.Key {
	k := make(value.Key, len(ix.colIdx))
	for i, ord := range ix.colIdx {
		k[i] = r[ord]
	}
	return k
}

// Def returns the index definition.
func (ix *Index) Def() catalog.IndexDef { return ix.def }

// KeyWidth returns the summed stored width of the key columns.
func (ix *Index) KeyWidth() int { return ix.keyWidth }

// Pages returns the number of pages the index occupies.
func (ix *Index) Pages() int64 { return ix.tree.Pages() }

// Bytes returns the index size in bytes.
func (ix *Index) Bytes() int64 { return ix.tree.Bytes() }

// Height returns the B+-tree height.
func (ix *Index) Height() int { return ix.tree.Height() }

// Len returns the entry count.
func (ix *Index) Len() int64 { return ix.tree.Len() }

// InsertRow maintains the index for a newly inserted heap row. The
// page writes it causes are recorded in the maintenance counters.
func (ix *Index) InsertRow(id RowID, r value.Row) {
	ix.tree.Insert(ix.keyOf(r), id)
}

// DeleteRow removes a heap row's entry from the index, returning
// whether it was present. The page write is charged to maintenance.
func (ix *Index) DeleteRow(id RowID, r value.Row) bool {
	return ix.tree.Delete(ix.keyOf(r), id)
}

// ResetMaintenance starts a new maintenance accounting window.
func (ix *Index) ResetMaintenance() { ix.tree.Maint.Reset() }

// MaintenanceCost returns the page writes recorded since the last reset.
func (ix *Index) MaintenanceCost() int64 { return ix.tree.Maint.Cost() }

// Seek returns a cursor over entries in [lo, hi] using prefix-bound
// semantics (see BTree.Seek).
func (ix *Index) Seek(lo, hi value.Key, hiIncl bool) *Cursor {
	return ix.tree.Seek(lo, hi, hiIncl)
}

// ScanAll returns a cursor over the whole index in key order.
func (ix *Index) ScanAll() *Cursor { return ix.tree.SeekFirst() }

// Validate checks B+-tree invariants.
func (ix *Index) Validate() error { return ix.tree.Validate() }
