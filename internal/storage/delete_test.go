package storage

import (
	"math/rand"
	"testing"

	"indexmerge/internal/value"
)

func TestBTreeDeleteBasic(t *testing.T) {
	bt := NewBTree(8)
	for i := 0; i < 100; i++ {
		bt.Insert(intKey(int64(i)), RowID(i))
	}
	if !bt.Delete(intKey(50), 50) {
		t.Fatal("existing entry not found")
	}
	if bt.Delete(intKey(50), 50) {
		t.Fatal("double delete succeeded")
	}
	if bt.Delete(intKey(1000), 1) {
		t.Fatal("missing key deleted")
	}
	if bt.Len() != 99 {
		t.Errorf("Len = %d", bt.Len())
	}
	if c := bt.Seek(intKey(50), intKey(50), true); c.Valid() {
		t.Error("deleted entry still visible")
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDeleteDuplicatesByRID(t *testing.T) {
	bt := NewBTree(8)
	// 10 duplicates of the same key with distinct RIDs.
	for i := 0; i < 10; i++ {
		bt.Insert(intKey(7), RowID(i))
	}
	if !bt.Delete(intKey(7), 4) {
		t.Fatal("duplicate with rid 4 not found")
	}
	count := 0
	for c := bt.Seek(intKey(7), intKey(7), true); c.Valid(); c.Next() {
		if c.RID() == 4 {
			t.Fatal("rid 4 still present")
		}
		count++
	}
	if count != 9 {
		t.Errorf("remaining duplicates = %d", count)
	}
}

func TestBTreeDeleteAcrossLeafBoundaries(t *testing.T) {
	bt := NewBTree(8)
	// Enough duplicates of one key to span several leaves.
	const dup = 3000
	for i := 0; i < dup; i++ {
		bt.Insert(intKey(42), RowID(i))
	}
	// Delete a late RID that lives in a later leaf than the descent
	// lands on.
	if !bt.Delete(intKey(42), RowID(dup-1)) {
		t.Fatal("entry in later leaf not found")
	}
	if bt.Len() != dup-1 {
		t.Errorf("Len = %d", bt.Len())
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeInsertDeleteChurnModel runs random interleaved inserts and
// deletes against a reference multiset and checks the tree agrees on
// every equality count afterwards.
func TestBTreeInsertDeleteChurnModel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 10; round++ {
		bt := NewBTree(8)
		type entryID struct {
			k   int64
			rid RowID
		}
		live := map[entryID]bool{}
		nextRID := RowID(0)
		const domain = 40
		for op := 0; op < 3000; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 { // 2/3 inserts
				k := rng.Int63n(domain)
				bt.Insert(intKey(k), nextRID)
				live[entryID{k, nextRID}] = true
				nextRID++
			} else {
				// Delete a random live entry.
				var pick entryID
				n := rng.Intn(len(live))
				for e := range live {
					if n == 0 {
						pick = e
						break
					}
					n--
				}
				if !bt.Delete(intKey(pick.k), pick.rid) {
					t.Fatalf("round %d: live entry %v not deletable", round, pick)
				}
				delete(live, pick)
			}
		}
		if bt.Len() != int64(len(live)) {
			t.Fatalf("round %d: Len %d, model %d", round, bt.Len(), len(live))
		}
		if err := bt.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k := int64(0); k < domain; k++ {
			want := 0
			for e := range live {
				if e.k == k {
					want++
				}
			}
			got := 0
			for c := bt.Seek(intKey(k), intKey(k), true); c.Valid(); c.Next() {
				got++
			}
			if got != want {
				t.Fatalf("round %d key %d: tree %d, model %d", round, k, got, want)
			}
		}
	}
}

func TestHeapDeleteTombstones(t *testing.T) {
	h := NewHeap(testTable(t))
	for i := int64(0); i < 10; i++ {
		h.Insert(row(i, "x", 0))
	}
	if err := h.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(3); err == nil {
		t.Error("double delete accepted")
	}
	if err := h.Delete(99); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if h.RowCount() != 9 {
		t.Errorf("RowCount = %d", h.RowCount())
	}
	if _, err := h.Get(3); err == nil {
		t.Error("deleted row readable")
	}
	seen := 0
	h.Scan(func(id RowID, r value.Row) bool {
		if id == 3 {
			t.Error("scan visited deleted row")
		}
		seen++
		return true
	})
	if seen != 9 {
		t.Errorf("scan visited %d rows", seen)
	}
	// TruncateTo past a tombstone restores the deleted counter.
	h.TruncateTo(2)
	if h.RowCount() != 2 {
		t.Errorf("RowCount after truncate = %d", h.RowCount())
	}
}
