// Package storage implements the on-disk-shaped substrate the paper's
// experiments run against: page-based heap files and B+-tree indexes
// with page-level accounting. The paper measured index storage and
// batch-insert maintenance cost on SQL Server 7.0; here both are
// derived from the same quantity — 8 KiB pages — so that estimated and
// measured sizes can be cross-checked in tests.
package storage

import "math"

const (
	// PageSize is the page size in bytes (SQL Server 7.0 used 8 KiB pages).
	PageSize = 8192

	// FillFactor is the assumed page fullness for B+-tree leaves after
	// bulk load / steady state. 0.69 is the classical random-insert
	// B+-tree occupancy (ln 2 ≈ 0.693).
	FillFactor = 0.69

	// RIDWidth is the width of a row identifier (the "row pointer"
	// appended to every secondary-index entry).
	RIDWidth = 8

	// pageHeader is the per-page overhead in bytes.
	pageHeader = 96
)

// usablePageBytes is the per-page payload capacity.
func usablePageBytes() int { return PageSize - pageHeader }

// EntriesPerLeaf returns how many index entries of the given key width
// fit in one leaf page at the steady-state fill factor.
func EntriesPerLeaf(keyWidth int) int {
	entry := keyWidth + RIDWidth
	if entry <= 0 {
		entry = 1
	}
	n := int(float64(usablePageBytes()) * FillFactor / float64(entry))
	if n < 2 {
		n = 2
	}
	return n
}

// EstimateIndexPages predicts the total page count of a B+-tree index
// holding rowCount entries of the given key width. This is the size
// estimator from paper §3.3 ("the size of an index can be accurately
// predicted if we know the on-disk structure used to store the index");
// the MergePair module and what-if costing both use it, and tests check
// it against pages actually allocated by the B+-tree.
func EstimateIndexPages(rowCount int64, keyWidth int) int64 {
	if rowCount <= 0 {
		return 1
	}
	epl := int64(EntriesPerLeaf(keyWidth))
	leaves := (rowCount + epl - 1) / epl
	// Internal levels: separators are key-width entries with child
	// pointers; fanout is close to the leaf entry count.
	total := leaves
	level := leaves
	for level > 1 {
		level = (level + epl - 1) / epl
		total += level
	}
	return total
}

// EstimateIndexBytes is EstimateIndexPages scaled to bytes.
func EstimateIndexBytes(rowCount int64, keyWidth int) int64 {
	return EstimateIndexPages(rowCount, keyWidth) * PageSize
}

// EstimateHeapPages predicts the page count of a heap file of rowCount
// rows of the given row width (heaps pack to full pages).
func EstimateHeapPages(rowCount int64, rowWidth int) int64 {
	if rowCount <= 0 {
		return 1
	}
	rpp := int64(usablePageBytes() / maxInt(rowWidth, 1))
	if rpp < 1 {
		rpp = 1
	}
	return (rowCount + rpp - 1) / rpp
}

// EstimateIndexHeight predicts the number of B+-tree levels, used by
// the optimizer to cost a root-to-leaf traversal per seek.
func EstimateIndexHeight(rowCount int64, keyWidth int) int {
	if rowCount <= 0 {
		return 1
	}
	epl := int64(EntriesPerLeaf(keyWidth))
	h := 1
	level := (rowCount + epl - 1) / epl
	for level > 1 {
		level = (level + epl - 1) / epl
		h++
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PagesToBytes converts a page count to bytes.
func PagesToBytes(pages int64) int64 { return pages * PageSize }

// BytesToMB converts bytes to megabytes for reporting.
func BytesToMB(b int64) float64 { return float64(b) / (1 << 20) }

// Ceil64 is ceiling division for positive operands.
func Ceil64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return int64(math.Ceil(float64(a) / float64(b)))
}
