package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"indexmerge/internal/value"
)

func intKey(vals ...int64) value.Key {
	k := make(value.Key, len(vals))
	for i, v := range vals {
		k[i] = value.NewInt(v)
	}
	return k
}

func TestBTreeEmpty(t *testing.T) {
	bt := NewBTree(8)
	if bt.Len() != 0 {
		t.Errorf("Len = %d", bt.Len())
	}
	if bt.Pages() != 1 {
		t.Errorf("Pages = %d, want 1 (root)", bt.Pages())
	}
	if c := bt.SeekFirst(); c.Valid() {
		t.Error("empty tree cursor valid")
	}
	if c := bt.Seek(intKey(1), nil, true); c.Valid() {
		t.Error("empty tree seek valid")
	}
	if err := bt.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBTreeInsertAndFullScan(t *testing.T) {
	bt := NewBTree(8)
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		bt.Insert(intKey(int64(v)), RowID(v))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for c := bt.SeekFirst(); c.Valid(); c.Next() {
		if c.Key()[0].Int() != want {
			t.Fatalf("scan out of order: got %d, want %d", c.Key()[0].Int(), want)
		}
		if int64(c.RID()) != want {
			t.Fatalf("wrong rid: %d for key %d", c.RID(), want)
		}
		want++
	}
	if want != n {
		t.Fatalf("scanned %d entries, want %d", want, n)
	}
	if bt.Height() < 2 {
		t.Errorf("height %d suspiciously small for %d entries", bt.Height(), n)
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := NewBTree(8)
	const n = 5000
	for i := 0; i < n; i++ {
		bt.Insert(intKey(int64(i%7)), RowID(i))
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	// All duplicates must be retrievable via a bounded seek.
	c := bt.Seek(intKey(3), intKey(3), true)
	count := 0
	for ; c.Valid(); c.Next() {
		if c.Key()[0].Int() != 3 {
			t.Fatalf("seek [3,3] returned key %v", c.Key())
		}
		count++
	}
	if count != n/7 {
		t.Errorf("found %d duplicates of key 3, want %d", count, n/7)
	}
}

func TestBTreeRangeSeek(t *testing.T) {
	bt := NewBTree(8)
	for i := 0; i < 1000; i++ {
		bt.Insert(intKey(int64(i)), RowID(i))
	}
	// [100, 199] inclusive.
	c := bt.Seek(intKey(100), intKey(199), true)
	got := 0
	for ; c.Valid(); c.Next() {
		v := c.Key()[0].Int()
		if v < 100 || v > 199 {
			t.Fatalf("range seek returned %d", v)
		}
		got++
	}
	if got != 100 {
		t.Errorf("range [100,199] returned %d entries, want 100", got)
	}
	// Exclusive upper bound.
	c = bt.Seek(intKey(100), intKey(199), false)
	got = 0
	for ; c.Valid(); c.Next() {
		got++
	}
	if got != 99 {
		t.Errorf("range [100,199) returned %d entries, want 99", got)
	}
	// Unbounded above.
	c = bt.Seek(intKey(990), nil, true)
	got = 0
	for ; c.Valid(); c.Next() {
		got++
	}
	if got != 10 {
		t.Errorf("range [990,∞) returned %d entries, want 10", got)
	}
}

func TestBTreePrefixSeekCompositeKey(t *testing.T) {
	bt := NewBTree(16)
	// Keys (a, b) for a in 0..9, b in 0..99.
	rid := RowID(0)
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 100; b++ {
			bt.Insert(intKey(a, b), rid)
			rid++
		}
	}
	// Prefix seek on a=4: lo = (4), hi = (4) inclusive with prefix compare.
	c := bt.Seek(intKey(4), intKey(4), true)
	got := 0
	var prev value.Key
	for ; c.Valid(); c.Next() {
		if c.Key()[0].Int() != 4 {
			t.Fatalf("prefix seek leaked key %v", c.Key())
		}
		if prev != nil && prev.Compare(c.Key()) > 0 {
			t.Fatal("prefix range not sorted")
		}
		prev = c.Key()
		got++
	}
	if got != 100 {
		t.Errorf("prefix a=4 returned %d entries, want 100", got)
	}
	// Composite range: a=4 AND b in [10,19].
	c = bt.Seek(intKey(4, 10), intKey(4, 19), true)
	got = 0
	for ; c.Valid(); c.Next() {
		got++
	}
	if got != 10 {
		t.Errorf("composite range returned %d, want 10", got)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTree(20)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		bt.Insert(value.Key{value.NewString(w)}, RowID(i))
	}
	var got []string
	for c := bt.SeekFirst(); c.Valid(); c.Next() {
		got = append(got, c.Key()[0].Str())
	}
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("string order: got %v", got)
		}
	}
}

// TestBTreeMatchesReferenceModel is the core property test: a B+-tree
// and a sorted slice must agree on every range query, under random
// interleavings of inserts.
func TestBTreeMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		bt := NewBTree(8)
		var ref []int64
		n := 200 + rng.Intn(2000)
		domain := int64(1 + rng.Intn(500))
		for i := 0; i < n; i++ {
			v := rng.Int63n(domain)
			bt.Insert(intKey(v), RowID(i))
			ref = append(ref, v)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if err := bt.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for q := 0; q < 50; q++ {
			lo := rng.Int63n(domain)
			hi := lo + rng.Int63n(domain-lo+1)
			want := 0
			for _, v := range ref {
				if v >= lo && v <= hi {
					want++
				}
			}
			got := 0
			for c := bt.Seek(intKey(lo), intKey(hi), true); c.Valid(); c.Next() {
				got++
			}
			if got != want {
				t.Fatalf("round %d: range [%d,%d] got %d want %d", round, lo, hi, got, want)
			}
		}
	}
}

func TestBTreeQuickProperty(t *testing.T) {
	f := func(vals []int16, probe int16) bool {
		bt := NewBTree(8)
		count := 0
		for i, v := range vals {
			bt.Insert(intKey(int64(v)), RowID(i))
			count++
		}
		if bt.Len() != int64(count) {
			return false
		}
		if err := bt.Validate(); err != nil {
			return false
		}
		// Equality lookup agrees with a linear count.
		want := 0
		for _, v := range vals {
			if v == probe {
				want++
			}
		}
		got := 0
		for c := bt.Seek(intKey(int64(probe)), intKey(int64(probe)), true); c.Valid(); c.Next() {
			got++
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEstimateMatchesActualPages checks that the analytic size
// estimator used for hypothetical indexes tracks the pages the real
// B+-tree allocates — within tolerance, since the estimator assumes
// steady-state fill while the tree's actual occupancy depends on
// insertion order.
func TestEstimateMatchesActualPages(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n        int
		keyWidth int
	}{
		{1000, 8}, {10000, 8}, {5000, 40}, {20000, 16}, {3000, 120},
	} {
		bt := NewBTree(tc.keyWidth)
		for i := 0; i < tc.n; i++ {
			// Random inserts give the classic ~69% occupancy the
			// estimator assumes.
			k := make(value.Key, 0, 2)
			k = append(k, value.NewInt(rng.Int63()))
			bt.Insert(k, RowID(i))
		}
		est := EstimateIndexPages(int64(tc.n), tc.keyWidth)
		actual := bt.Pages()
		ratio := float64(actual) / float64(est)
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("n=%d kw=%d: actual %d pages vs estimate %d (ratio %.2f)", tc.n, tc.keyWidth, actual, est, ratio)
		}
	}
}

func TestEstimatorsMonotone(t *testing.T) {
	// More rows or wider keys must never shrink the estimate.
	prev := int64(0)
	for _, n := range []int64{0, 1, 10, 1000, 100000, 10000000} {
		e := EstimateIndexPages(n, 16)
		if e < prev {
			t.Errorf("estimate decreased at n=%d: %d < %d", n, e, prev)
		}
		prev = e
	}
	if EstimateIndexPages(100000, 8) > EstimateIndexPages(100000, 80) {
		t.Error("wider keys should not shrink the index")
	}
	if EstimateIndexHeight(1000000, 8) < EstimateIndexHeight(100, 8) {
		t.Error("height must grow with rows")
	}
	if EstimateHeapPages(1000, 100) <= 0 {
		t.Error("heap pages must be positive")
	}
	if EstimateIndexBytes(1000, 8) != EstimateIndexPages(1000, 8)*PageSize {
		t.Error("bytes/pages inconsistent")
	}
}

func TestMaintenanceCounters(t *testing.T) {
	bt := NewBTree(8)
	for i := 0; i < 1000; i++ {
		bt.Insert(intKey(int64(i)), RowID(i))
	}
	if bt.Maint.Inserts != 1000 {
		t.Errorf("Inserts = %d", bt.Maint.Inserts)
	}
	if bt.Maint.LeafPagesDirtied == 0 || bt.Maint.SplitPages == 0 {
		t.Errorf("counters not accumulating: %+v", bt.Maint)
	}
	if bt.Maint.Cost() != bt.Maint.LeafPagesDirtied+bt.Maint.SplitPages {
		t.Error("Cost() mismatch")
	}
	cost1 := bt.Maint.Cost()
	bt.Maint.Reset()
	if bt.Maint.Cost() != 0 || bt.Maint.Inserts != 0 {
		t.Error("Reset did not clear counters")
	}
	// A small batch after reset dirties far fewer pages than the
	// original full build.
	for i := 0; i < 10; i++ {
		bt.Insert(intKey(int64(5000+i)), RowID(i))
	}
	if bt.Maint.Cost() >= cost1 {
		t.Errorf("small batch cost %d not below build cost %d", bt.Maint.Cost(), cost1)
	}
}

func TestMaintenanceBatchDedupesLeafWrites(t *testing.T) {
	// Sequential inserts into one region should dirty each leaf once.
	bt := NewBTree(8)
	for i := 0; i < 10000; i++ {
		bt.Insert(intKey(int64(i)), RowID(i))
	}
	bt.Maint.Reset()
	// Insert 100 keys that all land on the same (rightmost) leaf area.
	for i := 0; i < 100; i++ {
		bt.Insert(intKey(int64(100000+i)), RowID(i))
	}
	if bt.Maint.LeafPagesDirtied > 5 {
		t.Errorf("sequential batch dirtied %d leaves, expected heavy dedupe", bt.Maint.LeafPagesDirtied)
	}
}

func TestWiderIndexCostsMoreMaintenance(t *testing.T) {
	// The Figure 8 premise at the storage level: for the same inserts,
	// a wide index dirties more pages than a narrow one, but one wide
	// index costs less than two overlapping narrower ones.
	narrow1 := NewBTree(16)
	narrow2 := NewBTree(24)
	wide := NewBTree(32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := intKey(rng.Int63n(100000))
		narrow1.Insert(k, RowID(i))
		narrow2.Insert(k, RowID(i))
		wide.Insert(k, RowID(i))
	}
	narrow1.Maint.Reset()
	narrow2.Maint.Reset()
	wide.Maint.Reset()
	for i := 0; i < 200; i++ {
		k := intKey(rng.Int63n(100000))
		narrow1.Insert(k, RowID(i))
		narrow2.Insert(k, RowID(i))
		wide.Insert(k, RowID(i))
	}
	two := narrow1.Maint.Cost() + narrow2.Maint.Cost()
	one := wide.Maint.Cost()
	if one >= two {
		t.Errorf("one wide index cost %d, two narrow cost %d — merging should save maintenance", one, two)
	}
}
