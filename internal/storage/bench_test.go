package storage

import (
	"math/rand"
	"testing"

	"indexmerge/internal/value"
)

func BenchmarkBTreeInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bt := NewBTree(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(value.Key{value.NewInt(rng.Int63())}, RowID(i))
	}
}

func BenchmarkBTreeInsertSequential(b *testing.B) {
	bt := NewBTree(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(value.Key{value.NewInt(int64(i))}, RowID(i))
	}
}

func BenchmarkBTreeSeek(b *testing.B) {
	bt := NewBTree(8)
	const n = 100000
	for i := 0; i < n; i++ {
		bt.Insert(value.Key{value.NewInt(int64(i))}, RowID(i))
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := value.Key{value.NewInt(rng.Int63n(n))}
		c := bt.Seek(k, k, true)
		if !c.Valid() {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkBTreeRangeScan100(b *testing.B) {
	bt := NewBTree(8)
	const n = 100000
	for i := 0; i < n; i++ {
		bt.Insert(value.Key{value.NewInt(int64(i))}, RowID(i))
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(n - 100)
		count := 0
		for c := bt.Seek(value.Key{value.NewInt(lo)}, value.Key{value.NewInt(lo + 99)}, true); c.Valid(); c.Next() {
			count++
		}
		if count != 100 {
			b.Fatalf("count %d", count)
		}
	}
}

func BenchmarkEstimateIndexPages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EstimateIndexPages(int64(i%10000000)+1, 8+(i%200))
	}
}
