package storage

import (
	"fmt"

	"indexmerge/internal/faults"
	"indexmerge/internal/value"
)

// RowID identifies a heap row; it is the "row pointer" stored in every
// secondary-index entry.
type RowID int64

// entry is one leaf slot: a key and the row it points at.
type entry struct {
	key value.Key
	rid RowID
}

// node is one B+-tree page. Leaves hold entries and are chained through
// next; internal nodes hold separator keys and child pointers with the
// usual invariant len(children) == len(keys)+1.
type node struct {
	id       int64
	leaf     bool
	entries  []entry     // leaves only
	keys     []value.Key // internal only: separators
	children []*node     // internal only
	next     *node       // leaf chain
}

// MaintenanceCounters accumulates the page traffic caused by index
// maintenance. The paper's final experiment (Figure 8) measures batch
// insertion cost; here that cost is the number of distinct leaf pages
// dirtied plus pages allocated/written by splits — the same work a
// buffer manager would flush.
type MaintenanceCounters struct {
	// LeafPagesDirtied counts distinct leaf pages written during the
	// current accounting window (a batch insert dirties each touched
	// leaf once no matter how many rows land on it).
	LeafPagesDirtied int64
	// SplitPages counts pages written due to node splits (the new page,
	// the old page re-write beyond its dirty mark, and the parent).
	SplitPages int64
	// Inserts counts entries inserted.
	Inserts int64

	dirty map[int64]struct{}
}

// Cost is the total page writes attributed to maintenance in the window.
func (m *MaintenanceCounters) Cost() int64 { return m.LeafPagesDirtied + m.SplitPages }

// Reset starts a new accounting window.
func (m *MaintenanceCounters) Reset() {
	m.LeafPagesDirtied = 0
	m.SplitPages = 0
	m.Inserts = 0
	m.dirty = nil
}

func (m *MaintenanceCounters) markDirty(id int64) {
	if m.dirty == nil {
		m.dirty = make(map[int64]struct{})
	}
	if _, seen := m.dirty[id]; !seen {
		m.dirty[id] = struct{}{}
		m.LeafPagesDirtied++
	}
}

// BTree is an in-memory B+-tree shaped like an on-disk one: node
// capacities are derived from the page size and the key width, so page
// counts match what EstimateIndexPages predicts.
type BTree struct {
	root      *node
	height    int
	keyWidth  int
	maxLeaf   int // max entries per leaf
	maxInner  int // max children per internal node
	nextID    int64
	pageCount int64
	count     int64

	Maint MaintenanceCounters
}

// NewBTree creates an empty tree for keys of the given stored width.
func NewBTree(keyWidth int) *BTree {
	t := &BTree{keyWidth: keyWidth}
	// Capacity at 100% fill; FillFactor governs steady-state occupancy,
	// which emerges from the split policy below.
	entry := keyWidth + RIDWidth
	t.maxLeaf = maxInt(usablePageBytes()/maxInt(entry, 1), 4)
	t.maxInner = maxInt(usablePageBytes()/maxInt(keyWidth+8, 1), 4)
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *BTree) newNode(leaf bool) *node {
	t.nextID++
	t.pageCount++
	return &node{id: t.nextID, leaf: leaf}
}

// Len returns the number of entries.
func (t *BTree) Len() int64 { return t.count }

// Pages returns the number of pages (nodes) allocated.
func (t *BTree) Pages() int64 { return t.pageCount }

// Bytes returns the tree's size in bytes (pages × page size).
func (t *BTree) Bytes() int64 { return t.pageCount * PageSize }

// Height returns the number of levels.
func (t *BTree) Height() int { return t.height }

// KeyWidth returns the stored key width the tree was created with.
func (t *BTree) KeyWidth() int { return t.keyWidth }

// Insert adds an entry. Duplicate keys are allowed (secondary index
// semantics); ties break on RowID to keep the order deterministic.
func (t *BTree) Insert(key value.Key, rid RowID) {
	t.Maint.Inserts++
	split, sepKey, right := t.insert(t.root, key, rid)
	if split {
		newRoot := t.newNode(false)
		newRoot.keys = append(newRoot.keys, sepKey)
		newRoot.children = append(newRoot.children, t.root, right)
		t.root = newRoot
		t.height++
		t.Maint.SplitPages++ // new root write
	}
	t.count++
}

// insert descends to the leaf, returning split info when the child split.
func (t *BTree) insert(n *node, key value.Key, rid RowID) (split bool, sep value.Key, right *node) {
	if n.leaf {
		pos := t.leafSearch(n, key, rid)
		n.entries = append(n.entries, entry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = entry{key: key, rid: rid}
		t.Maint.markDirty(n.id)
		if len(n.entries) > t.maxLeaf {
			return t.splitLeaf(n)
		}
		return false, nil, nil
	}
	ci := t.childIndex(n, key)
	childSplit, sepKey, newChild := t.insert(n.children[ci], key, rid)
	if !childSplit {
		return false, nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sepKey
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	t.Maint.SplitPages++ // parent page write
	if len(n.children) > t.maxInner {
		return t.splitInternal(n)
	}
	return false, nil, nil
}

func (t *BTree) splitLeaf(n *node) (bool, value.Key, *node) {
	mid := len(n.entries) / 2
	right := t.newNode(true)
	right.entries = append(right.entries, n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	right.next = n.next
	n.next = right
	t.Maint.SplitPages += 2 // old page rewrite + new page write
	t.Maint.markDirty(right.id)
	return true, right.entries[0].key, right
}

func (t *BTree) splitInternal(n *node) (bool, value.Key, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	t.Maint.SplitPages += 2
	return true, sep, right
}

// leafSearch finds the insertion position within a leaf.
func (t *BTree) leafSearch(n *node, key value.Key, rid RowID) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		m := (lo + hi) / 2
		c := n.entries[m].key.Compare(key)
		if c < 0 || (c == 0 && n.entries[m].rid < rid) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// childIndex picks the child to descend into for key.
func (t *BTree) childIndex(n *node, key value.Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		m := (lo + hi) / 2
		if n.keys[m].Compare(key) <= 0 {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// Delete removes the entry with exactly this key and RowID, returning
// whether it was found. Deletion is lazy (no rebalancing or page
// merging), like ghost-record deletion in commercial engines: pages
// stay allocated until the index is rebuilt. The leaf write is charged
// to the maintenance counters.
func (t *BTree) Delete(key value.Key, rid RowID) bool {
	// Descend to the leftmost leaf that can hold the key: duplicates of
	// a separator key may live on its left side, so the rid-blind
	// rightward descent used for inserts would overshoot.
	n := t.root
	for !n.leaf {
		n = n.children[t.lowerChildIndex(n, key)]
	}
	// Walk the leaf chain; entries are globally sorted by (key, rid),
	// so the first entry ≥ (key, rid) decides.
	for n != nil {
		pos := t.leafSearch(n, key, rid)
		if pos < len(n.entries) {
			e := n.entries[pos]
			c := e.key.Compare(key)
			if c == 0 && e.rid == rid {
				copy(n.entries[pos:], n.entries[pos+1:])
				n.entries = n.entries[:len(n.entries)-1]
				t.count--
				t.Maint.markDirty(n.id)
				return true
			}
			if c > 0 || (c == 0 && e.rid > rid) {
				return false // first entry past the target: absent
			}
		}
		n = n.next
	}
	return false
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	n      *node
	pos    int
	hi     value.Key // exclusive upper bound prefix; nil = unbounded
	hiIncl bool
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.n != nil && c.pos < len(c.n.entries) }

// Key returns the current key.
func (c *Cursor) Key() value.Key { return c.n.entries[c.pos].key }

// RID returns the current row id.
func (c *Cursor) RID() RowID { return c.n.entries[c.pos].rid }

// Next advances; it returns false once past the end or the upper bound.
func (c *Cursor) Next() bool {
	c.pos++
	for c.n != nil && c.pos >= len(c.n.entries) {
		c.n = c.n.next
		c.pos = 0
	}
	return c.checkBound()
}

func (c *Cursor) checkBound() bool {
	if !c.Valid() {
		c.n = nil
		return false
	}
	if c.hi == nil {
		return true
	}
	// Compare only the bound's prefix length, giving prefix-range scans.
	k := c.Key()
	if len(k) > len(c.hi) {
		k = k[:len(c.hi)]
	}
	cmp := k.Compare(c.hi)
	if cmp < 0 || (cmp == 0 && c.hiIncl) {
		return true
	}
	c.n = nil
	return false
}

// SeekFirst positions a cursor at the smallest entry.
func (t *BTree) SeekFirst() *Cursor {
	faults.Hit(faults.StorageIndexSeek)
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	c := &Cursor{n: n, pos: 0}
	for c.n != nil && len(c.n.entries) == 0 {
		c.n = c.n.next
	}
	if c.n == nil {
		return &Cursor{}
	}
	return c
}

// Seek positions a cursor at the first entry with key >= lo (comparing
// the full key against the possibly shorter lo prefix) and bounds the
// scan at hi (prefix compare; inclusive when hiIncl). Passing nil lo
// starts at the beginning; nil hi leaves the scan unbounded.
func (t *BTree) Seek(lo, hi value.Key, hiIncl bool) *Cursor {
	var c *Cursor
	if lo == nil {
		c = t.SeekFirst()
	} else {
		faults.Hit(faults.StorageIndexSeek)
		n := t.root
		for !n.leaf {
			n = n.children[t.lowerChildIndex(n, lo)]
		}
		pos := lowerBound(n.entries, lo)
		c = &Cursor{n: n, pos: pos}
		for c.n != nil && c.pos >= len(c.n.entries) {
			c.n = c.n.next
			c.pos = 0
		}
	}
	c.hi = hi
	c.hiIncl = hiIncl
	c.checkBound()
	return c
}

// lowerChildIndex descends toward the first key >= lo.
func (t *BTree) lowerChildIndex(n *node, lo value.Key) int {
	i, hi := 0, len(n.keys)
	for i < hi {
		m := (i + hi) / 2
		// Separator < lo prefix ⇒ go right of it.
		sep := n.keys[m]
		cmp := comparePrefix(sep, lo)
		if cmp < 0 {
			i = m + 1
		} else {
			hi = m
		}
	}
	return i
}

// comparePrefix compares k against the prefix bound b: only the first
// len(b) components of k participate.
func comparePrefix(k, b value.Key) int {
	if len(k) > len(b) {
		k = k[:len(b)]
	}
	return k.Compare(b)
}

func lowerBound(es []entry, lo value.Key) int {
	i, hi := 0, len(es)
	for i < hi {
		m := (i + hi) / 2
		if comparePrefix(es[m].key, lo) < 0 {
			i = m + 1
		} else {
			hi = m
		}
	}
	return i
}

// Validate checks structural invariants; used by property tests.
func (t *BTree) Validate() error {
	leafDepth := -1
	var walk func(n *node, depth int, lo, hi value.Key) (int64, error)
	walk = func(n *node, depth int, lo, hi value.Key) (int64, error) {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return 0, fmt.Errorf("btree: leaves at different depths %d vs %d", leafDepth, depth)
			}
			for i := 1; i < len(n.entries); i++ {
				if n.entries[i-1].key.Compare(n.entries[i].key) > 0 {
					return 0, fmt.Errorf("btree: leaf %d entries out of order", n.id)
				}
			}
			for _, e := range n.entries {
				if lo != nil && e.key.Compare(lo) < 0 {
					return 0, fmt.Errorf("btree: leaf %d key below separator", n.id)
				}
				if hi != nil && e.key.Compare(hi) >= 0 && comparePrefix(e.key, hi) != 0 {
					// Keys equal to the separator may legally spill right
					// on duplicate-heavy data; require prefix-equality.
					return 0, fmt.Errorf("btree: leaf %d key above separator", n.id)
				}
			}
			return int64(len(n.entries)), nil
		}
		if len(n.children) != len(n.keys)+1 {
			return 0, fmt.Errorf("btree: node %d has %d children for %d keys", n.id, len(n.children), len(n.keys))
		}
		var total int64
		for i, ch := range n.children {
			var clo, chi value.Key
			if i > 0 {
				clo = n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			} else {
				chi = hi
			}
			sub, err := walk(ch, depth+1, clo, chi)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	total, err := walk(t.root, 1, nil, nil)
	if err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("btree: count %d but %d entries reachable", t.count, total)
	}
	return nil
}
