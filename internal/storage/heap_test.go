package storage

import (
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/value"
)

func testTable(t *testing.T) *catalog.Table {
	t.Helper()
	return catalog.MustNewTable("t", []catalog.Column{
		{Name: "id", Type: value.Int},
		{Name: "name", Type: value.String, Width: 20},
		{Name: "score", Type: value.Float},
	})
}

func row(id int64, name string, score float64) value.Row {
	return value.Row{value.NewInt(id), value.NewString(name), value.NewFloat(score)}
}

func TestHeapInsertGetScan(t *testing.T) {
	h := NewHeap(testTable(t))
	for i := int64(0); i < 100; i++ {
		id, err := h.Insert(row(i, "x", float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if id != RowID(i) {
			t.Fatalf("RowID %d, want %d", id, i)
		}
	}
	if h.RowCount() != 100 {
		t.Fatalf("RowCount = %d", h.RowCount())
	}
	r, err := h.Get(50)
	if err != nil || r[0].Int() != 50 {
		t.Fatalf("Get(50) = %v, %v", r, err)
	}
	if _, err := h.Get(1000); err == nil {
		t.Error("Get out of range succeeded")
	}
	if _, err := h.Get(-1); err == nil {
		t.Error("Get(-1) succeeded")
	}
	count := 0
	h.Scan(func(id RowID, r value.Row) bool {
		if int64(id) != r[0].Int() {
			t.Fatalf("scan id mismatch")
		}
		count++
		return count < 10 // early stop
	})
	if count != 10 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestHeapInsertValidation(t *testing.T) {
	h := NewHeap(testTable(t))
	if _, err := h.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := h.Insert(value.Row{value.NewString("x"), value.NewString("y"), value.NewFloat(1)}); err == nil {
		t.Error("wrong type accepted")
	}
	// Nulls are allowed anywhere.
	if _, err := h.Insert(value.Row{value.NewNull(), value.NewNull(), value.NewNull()}); err != nil {
		t.Errorf("null row rejected: %v", err)
	}
}

func TestHeapInsertCopiesRow(t *testing.T) {
	h := NewHeap(testTable(t))
	r := row(1, "a", 2)
	id, _ := h.Insert(r)
	r[0] = value.NewInt(99)
	got, _ := h.Get(id)
	if got[0].Int() != 1 {
		t.Error("heap aliases caller's row")
	}
}

func TestHeapPages(t *testing.T) {
	h := NewHeap(testTable(t))
	if h.Pages() != 1 {
		t.Errorf("empty heap pages = %d", h.Pages())
	}
	for i := int64(0); i < 10000; i++ {
		if _, err := h.Insert(row(i, "x", 0)); err != nil {
			t.Fatal(err)
		}
	}
	want := EstimateHeapPages(10000, h.Table().RowWidth())
	if h.Pages() != want {
		t.Errorf("Pages = %d, estimate %d — heap and estimator must agree exactly", h.Pages(), want)
	}
	if h.Bytes() != h.Pages()*PageSize {
		t.Error("Bytes inconsistent with Pages")
	}
}

func TestHeapTruncateTo(t *testing.T) {
	h := NewHeap(testTable(t))
	for i := int64(0); i < 100; i++ {
		h.Insert(row(i, "x", 0))
	}
	h.TruncateTo(40)
	if h.RowCount() != 40 {
		t.Errorf("RowCount after truncate = %d", h.RowCount())
	}
	h.TruncateTo(100) // growing is a no-op
	if h.RowCount() != 40 {
		t.Errorf("TruncateTo larger changed count: %d", h.RowCount())
	}
	h.TruncateTo(-5)
	if h.RowCount() != 0 {
		t.Errorf("TruncateTo(-5) = %d rows", h.RowCount())
	}
}

func TestBuildIndexAndSeek(t *testing.T) {
	h := NewHeap(testTable(t))
	for i := int64(0); i < 1000; i++ {
		h.Insert(row(i%50, "x", float64(i)))
	}
	def := catalog.IndexDef{Name: "ix", Table: "t", Columns: []string{"id", "score"}}
	ix, err := BuildIndex(def, h)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 {
		t.Errorf("index Len = %d", ix.Len())
	}
	if ix.KeyWidth() != 16 {
		t.Errorf("KeyWidth = %d", ix.KeyWidth())
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	// Building must not count as maintenance.
	if ix.MaintenanceCost() != 0 {
		t.Errorf("fresh index maintenance cost = %d", ix.MaintenanceCost())
	}
	// Seek on id = 7 returns exactly the 20 matching rows.
	count := 0
	for c := ix.Seek(value.Key{value.NewInt(7)}, value.Key{value.NewInt(7)}, true); c.Valid(); c.Next() {
		r, err := h.Get(c.RID())
		if err != nil {
			t.Fatal(err)
		}
		if r[0].Int() != 7 {
			t.Fatalf("seek returned row with id %d", r[0].Int())
		}
		count++
	}
	if count != 20 {
		t.Errorf("seek matched %d rows, want 20", count)
	}
	// Full index scan is sorted.
	var prev value.Key
	n := 0
	for c := ix.ScanAll(); c.Valid(); c.Next() {
		if prev != nil && prev.Compare(c.Key()) > 0 {
			t.Fatal("index scan out of order")
		}
		prev = c.Key()
		n++
	}
	if n != 1000 {
		t.Errorf("scan visited %d entries", n)
	}
}

func TestBuildIndexErrors(t *testing.T) {
	h := NewHeap(testTable(t))
	if _, err := BuildIndex(catalog.IndexDef{Name: "i", Table: "other", Columns: []string{"id"}}, h); err == nil {
		t.Error("wrong table accepted")
	}
	if _, err := BuildIndex(catalog.IndexDef{Name: "i", Table: "t", Columns: []string{"nope"}}, h); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIndexInsertRowMaintenance(t *testing.T) {
	h := NewHeap(testTable(t))
	for i := int64(0); i < 500; i++ {
		h.Insert(row(i, "x", 0))
	}
	def := catalog.IndexDef{Name: "ix", Table: "t", Columns: []string{"id"}}
	ix, err := BuildIndex(def, h)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := h.Insert(row(777, "y", 1))
	ix.InsertRow(id, row(777, "y", 1))
	if ix.MaintenanceCost() == 0 {
		t.Error("insert recorded no maintenance")
	}
	if ix.Len() != 501 {
		t.Errorf("Len = %d", ix.Len())
	}
	ix.ResetMaintenance()
	if ix.MaintenanceCost() != 0 {
		t.Error("reset failed")
	}
}
