package storage

import (
	"fmt"

	"indexmerge/internal/catalog"
	"indexmerge/internal/faults"
	"indexmerge/internal/value"
)

// Heap is a table's base storage: rows appended in arrival order,
// addressed by RowID. Page accounting mirrors a slotted-page heap file.
type Heap struct {
	table       *catalog.Table
	rows        []value.Row // nil slot = deleted (tombstone)
	deleted     int64
	rowsPerPage int
}

// NewHeap creates an empty heap for the table.
func NewHeap(t *catalog.Table) *Heap {
	rpp := usablePageBytes() / maxInt(t.RowWidth(), 1)
	if rpp < 1 {
		rpp = 1
	}
	return &Heap{table: t, rowsPerPage: rpp}
}

// Table returns the schema the heap stores.
func (h *Heap) Table() *catalog.Table { return h.table }

// Insert appends a row and returns its RowID. The row must match the
// table's column count and types (Null is allowed anywhere).
func (h *Heap) Insert(r value.Row) (RowID, error) {
	if len(r) != len(h.table.Columns) {
		return 0, fmt.Errorf("storage: table %q expects %d columns, row has %d", h.table.Name, len(h.table.Columns), len(r))
	}
	for i, v := range r {
		if v.IsNull() {
			continue
		}
		want := h.table.Columns[i].Type
		if v.Kind() != want {
			return 0, fmt.Errorf("storage: table %q column %q expects %v, got %v", h.table.Name, h.table.Columns[i].Name, want, v.Kind())
		}
	}
	h.rows = append(h.rows, r.Clone())
	return RowID(len(h.rows) - 1), nil
}

// Get fetches a row by id; deleted rows return an error.
func (h *Heap) Get(id RowID) (value.Row, error) {
	if err := faults.Inject(faults.StorageHeapGet); err != nil {
		return nil, err
	}
	if id < 0 || int64(id) >= int64(len(h.rows)) {
		return nil, fmt.Errorf("storage: table %q has no row %d", h.table.Name, id)
	}
	if h.rows[id] == nil {
		return nil, fmt.Errorf("storage: table %q row %d is deleted", h.table.Name, id)
	}
	return h.rows[id], nil
}

// Delete tombstones a row (slot stays allocated, like a ghost record).
// Deleting a missing or already-deleted row is an error.
func (h *Heap) Delete(id RowID) error {
	if id < 0 || int64(id) >= int64(len(h.rows)) {
		return fmt.Errorf("storage: table %q has no row %d", h.table.Name, id)
	}
	if h.rows[id] == nil {
		return fmt.Errorf("storage: table %q row %d already deleted", h.table.Name, id)
	}
	h.rows[id] = nil
	h.deleted++
	return nil
}

// RowCount returns the number of live rows.
func (h *Heap) RowCount() int64 { return int64(len(h.rows)) - h.deleted }

// Pages returns the heap's page count.
func (h *Heap) Pages() int64 {
	if len(h.rows) == 0 {
		return 1
	}
	return Ceil64(int64(len(h.rows)), int64(h.rowsPerPage))
}

// Bytes returns the heap's size in bytes.
func (h *Heap) Bytes() int64 { return h.Pages() * PageSize }

// TruncateTo discards rows with RowID >= n, restoring the heap to an
// earlier state. Experiments use this to roll back batch inserts;
// indexes built before the truncation must be rebuilt by the caller.
func (h *Heap) TruncateTo(n int64) {
	if n < 0 {
		n = 0
	}
	if n < int64(len(h.rows)) {
		for _, r := range h.rows[n:] {
			if r == nil {
				h.deleted--
			}
		}
		h.rows = h.rows[:n]
	}
}

// Scan calls fn for every live row in RowID order; fn returning false
// stops the scan early. Tombstoned slots are skipped.
func (h *Heap) Scan(fn func(id RowID, r value.Row) bool) {
	faults.Hit(faults.StorageHeapScan)
	for i, r := range h.rows {
		if r == nil {
			continue
		}
		if !fn(RowID(i), r) {
			return
		}
	}
}
