package oracle

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

// restrictionIndexes builds one single-column index per restricted
// column in the workload — simple predicates and the members of OR/IN
// disjunctions alike — so the optimizer has the narrow indexes that
// RID-intersection and RID-union paths are made of.
func restrictionIndexes(t *testing.T, db *engine.Database, w *sql.Workload) []catalog.IndexDef {
	t.Helper()
	seen := map[string]bool{}
	var defs []catalog.IndexDef
	add := func(c sql.ColumnRef) {
		if c.Column == "" || seen[c.Table+"."+c.Column] {
			return
		}
		seen[c.Table+"."+c.Column] = true
		def, err := catalog.NewIndexDef(db.Schema(), "", c.Table, []string{c.Column})
		if err != nil {
			t.Fatal(err)
		}
		defs = append(defs, def)
	}
	for _, q := range w.Queries {
		for _, p := range q.Stmt.Where {
			if ds := p.Disjuncts(); ds != nil {
				for _, d := range ds {
					add(d.Col)
				}
				continue
			}
			add(p.Col)
		}
	}
	return defs
}

// targetedMergeQueries crafts one union-shaped and one
// intersection-shaped query against the database's largest table, from
// its own statistics: equality predicates on the two most selective
// restrictable columns, projecting a third column so no narrow index
// covers the query. These are the shapes where RID merging beats both
// the heap scan and any single-index seek, guaranteeing the sweep
// exercises both IndexMerge operators on every database.
func targetedMergeQueries(t *testing.T, db *engine.Database) []*sql.SelectStmt {
	t.Helper()
	var big *catalog.Table
	var bigW int64
	for _, tb := range db.Schema().Tables() {
		w := db.TableRowCount(tb.Name) * int64(tb.RowWidth())
		if w > bigW {
			big, bigW = tb, w
		}
	}
	if big == nil {
		t.Fatal("no tables")
	}
	ts := db.TableStats(big.Name)
	if ts == nil {
		t.Fatalf("no stats for %s", big.Name)
	}
	// Rank columns by distinct count, descending.
	type ranked struct {
		name     string
		distinct float64
	}
	var cols []ranked
	for _, c := range big.Columns {
		if cs := ts.Column(c.Name); cs != nil && cs.Distinct > 1 {
			cols = append(cols, ranked{c.Name, cs.Distinct})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].distinct > cols[j].distinct })
	if len(cols) < 3 {
		t.Fatalf("table %s too narrow for merge queries", big.Name)
	}
	proj := cols[len(cols)-1].name
	h, err := db.Heap(big.Name)
	if err != nil {
		t.Fatal(err)
	}
	row, err := h.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	eqPred := func(col string) sql.Predicate {
		v := row[big.ColumnIndex(col)]
		if v.IsNull() {
			t.Fatalf("sampled NULL key value in %s.%s", big.Name, col)
		}
		return sql.Predicate{Col: sql.ColumnRef{Table: big.Name, Column: col}, Op: sql.OpEq, Val: v}
	}

	// Union wants highly selective arms: each disjunct fetches a few
	// rows, so two probes plus the lookups undercut a heap scan.
	union := &sql.SelectStmt{
		From:   []string{big.Name},
		Select: []sql.SelectItem{{Col: sql.ColumnRef{Table: big.Name, Column: proj}}},
		Where: []sql.Predicate{{Op: sql.OpOr, Or: []sql.Predicate{
			eqPred(cols[0].name), eqPred(cols[1].name),
		}}},
	}

	// Intersection wants moderately selective arms — each matching many
	// rows (so a single seek pays a RID lookup per match) while the
	// conjunction matches almost none. Which column pair lands in that
	// regime depends on the data distribution, so search: try pairs in
	// ranked order and keep the first conjunction the optimizer answers
	// with an IndexIntersect plan. Finding none is a genuine failure —
	// the access path would be dead on this database.
	o := optimizer.New(db)
	var intersect *sql.SelectStmt
search:
	for i := 0; i < len(cols) && intersect == nil; i++ {
		for j := i + 1; j < len(cols); j++ {
			cand := &sql.SelectStmt{
				From:   []string{big.Name},
				Select: []sql.SelectItem{{Col: sql.ColumnRef{Table: big.Name, Column: proj}}},
				Where: []sql.Predicate{
					eqPred(cols[i].name), eqPred(cols[j].name),
				},
			}
			if err := cand.Resolve(db.Schema()); err != nil {
				t.Fatal(err)
			}
			ia, err := catalog.NewIndexDef(db.Schema(), "", big.Name, []string{cols[i].name})
			if err != nil {
				t.Fatal(err)
			}
			ib, err := catalog.NewIndexDef(db.Schema(), "", big.Name, []string{cols[j].name})
			if err != nil {
				t.Fatal(err)
			}
			plan, err := o.Optimize(cand, optimizer.Configuration{ia, ib})
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(plan.Explain(), "IndexIntersect(") {
				intersect = cand
				break search
			}
		}
	}
	if intersect == nil {
		t.Fatalf("no column pair on %s yields an IndexIntersect plan", big.Name)
	}
	for _, s := range []*sql.SelectStmt{union, intersect} {
		if err := s.Resolve(db.Schema()); err != nil {
			t.Fatal(err)
		}
	}
	return []*sql.SelectStmt{union, intersect}
}

// TestIndexMergePlansMatchNoMergePlans is the differential check for
// the IndexMerge access paths on all three experimental databases:
// wherever the optimizer picks a RID-union or RID-intersection plan,
// that plan's rows must be multiset-identical to the rows of the plan
// chosen with both IndexMerge paths disabled, and to the reference
// evaluator's answer. The sweep mixes generated disjunction-bearing
// queries with targeted union- and intersection-shaped ones, and
// insists it is not vacuous — each database must surface at least one
// union plan and at least one intersection plan.
func TestIndexMergePlansMatchNoMergePlans(t *testing.T) {
	for _, name := range []string{"tpcd", "synthetic1", "synthetic2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			scale := 0.2
			if strings.HasPrefix(name, "synthetic") {
				scale = 0.5
			}
			db, err := BuildDB(name, scale, 42)
			if err != nil {
				t.Fatal(err)
			}
			w, err := workload.Generate(db, workload.Options{
				Class: workload.Complex, Disjunctions: true, Queries: 40, Seed: 321,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, stmt := range targetedMergeQueries(t, db) {
				w.Add(stmt, 1)
			}
			defs := restrictionIndexes(t, db, w)
			if err := db.Materialize(defs); err != nil {
				t.Fatal(err)
			}
			cfg := optimizer.Configuration(defs)

			merged := optimizer.New(db)
			noMerge := optimizer.New(db)
			noMerge.DisableIndexUnion = true
			noMerge.DisableIndexIntersection = true

			unions, intersections := 0, 0
			for i, q := range w.Queries {
				plan, err := merged.Optimize(q.Stmt, cfg)
				if err != nil {
					t.Fatalf("q%d optimize: %v\nsql: %s", i, err, q.Stmt)
				}
				explain := plan.Explain()
				hasUnion := strings.Contains(explain, "IndexUnion(")
				hasIntersect := strings.Contains(explain, "IndexIntersect(")
				if hasUnion {
					unions++
				}
				if hasIntersect {
					intersections++
				}
				if !hasUnion && !hasIntersect {
					continue // identical plans; nothing to differentiate
				}
				got, err := exec.Run(db, plan)
				if err != nil {
					t.Fatalf("q%d exec: %v\nsql: %s\nplan:\n%s", i, err, q.Stmt, explain)
				}
				base, err := noMerge.Optimize(q.Stmt, cfg)
				if err != nil {
					t.Fatalf("q%d no-merge optimize: %v", i, err)
				}
				if be := base.Explain(); strings.Contains(be, "IndexUnion(") || strings.Contains(be, "IndexIntersect(") {
					t.Fatalf("q%d: disabled optimizer still emitted an IndexMerge plan:\n%s", i, be)
				}
				want, err := exec.Run(db, base)
				if err != nil {
					t.Fatalf("q%d no-merge exec: %v\nplan:\n%s", i, err, base.Explain())
				}
				if diff := DiffResults(&Result{Columns: want.Columns, Rows: want.Rows}, got); diff != "" {
					t.Errorf("q%d: IndexMerge plan diverges from no-merge plan: %s\nsql: %s\nplan:\n%s",
						i, diff, q.Stmt, explain)
				}
				ref, err := ReferenceBudget(db, q.Stmt, fuzzRefBudget)
				if errors.Is(err, ErrBudget) {
					continue
				}
				if err != nil {
					t.Fatalf("q%d reference: %v", i, err)
				}
				if diff := DiffResults(ref, got); diff != "" {
					t.Errorf("q%d: IndexMerge plan diverges from reference: %s\nsql: %s\nplan:\n%s",
						i, diff, q.Stmt, explain)
				}
			}
			if unions == 0 {
				t.Errorf("sweep vacuous: no IndexUnion plan chosen across %d queries", w.Len())
			}
			if intersections == 0 {
				t.Errorf("sweep vacuous: no IndexIntersect plan chosen across %d queries", w.Len())
			}
			t.Logf("%s: %d union plans, %d intersection plans over %d queries", name, unions, intersections, w.Len())
		})
	}
}
