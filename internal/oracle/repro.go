package oracle

import (
	"bufio"
	"fmt"
	"sort"
	"strings"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// Repro is a minimized, replayable witness for a correctness
// violation: a built-in database recipe, an index configuration and a
// single query. Replaying it rebuilds the database deterministically,
// materializes the configuration, and diffs the executed plan against
// the reference evaluator.
//
// The on-disk format is line-oriented plain text:
//
//	oracle repro v1
//	db tpcd scale=0.05 seed=1
//	index lineitem(l_okey,l_pkey)
//	index order(o_okey)
//	query SELECT ... FROM ... WHERE ...
//	# free-form comment lines are ignored
type Repro struct {
	DB     string
	Scale  float64
	Seed   int64
	Config [][2]string // table, comma-joined columns
	Query  string
}

// Marshal renders the repro file.
func (r *Repro) Marshal() []byte {
	var b strings.Builder
	b.WriteString("oracle repro v1\n")
	fmt.Fprintf(&b, "db %s scale=%g seed=%d\n", r.DB, r.Scale, r.Seed)
	for _, ix := range r.Config {
		fmt.Fprintf(&b, "index %s(%s)\n", ix[0], ix[1])
	}
	fmt.Fprintf(&b, "query %s\n", r.Query)
	return []byte(b.String())
}

// ParseRepro parses the repro file format.
func ParseRepro(data []byte) (*Repro, error) {
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	r := &Repro{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first {
			if line != "oracle repro v1" {
				return nil, fmt.Errorf("oracle: not a repro file (header %q)", line)
			}
			first = false
			continue
		}
		switch {
		case strings.HasPrefix(line, "db "):
			fields := strings.Fields(line[3:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("oracle: malformed db line %q", line)
			}
			r.DB = fields[0]
			r.Scale = 1
			for _, f := range fields[1:] {
				if _, err := fmt.Sscanf(f, "scale=%g", &r.Scale); err == nil {
					continue
				}
				if _, err := fmt.Sscanf(f, "seed=%d", &r.Seed); err == nil {
					continue
				}
				return nil, fmt.Errorf("oracle: malformed db attribute %q", f)
			}
		case strings.HasPrefix(line, "index "):
			spec := strings.TrimSpace(line[6:])
			open := strings.IndexByte(spec, '(')
			if open <= 0 || !strings.HasSuffix(spec, ")") {
				return nil, fmt.Errorf("oracle: malformed index line %q", line)
			}
			r.Config = append(r.Config, [2]string{spec[:open], spec[open+1 : len(spec)-1]})
		case strings.HasPrefix(line, "query "):
			r.Query = strings.TrimSpace(line[6:])
		default:
			return nil, fmt.Errorf("oracle: unrecognized repro line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if r.DB == "" || r.Query == "" {
		return nil, fmt.Errorf("oracle: repro missing db or query")
	}
	return r, nil
}

// Defs resolves the repro's index specs against a schema.
func (r *Repro) Defs(sc *catalog.Schema) ([]catalog.IndexDef, error) {
	var defs []catalog.IndexDef
	for _, ix := range r.Config {
		cols := strings.Split(ix[1], ",")
		for i := range cols {
			cols[i] = strings.TrimSpace(cols[i])
		}
		def, err := catalog.NewIndexDef(sc, "", ix[0], cols)
		if err != nil {
			return nil, fmt.Errorf("oracle: repro index %s(%s): %w", ix[0], ix[1], err)
		}
		defs = append(defs, def)
	}
	return defs, nil
}

// Check replays the repro: rebuild the database, materialize the
// configuration, run the query's optimized plan and diff it against
// the reference evaluator. A nil Violation means the repro no longer
// reproduces a divergence.
func (r *Repro) Check() (*Violation, error) {
	db, err := BuildDB(r.DB, r.Scale, r.Seed)
	if err != nil {
		return nil, err
	}
	return r.checkAgainst(db)
}

func (r *Repro) checkAgainst(db *engine.Database) (*Violation, error) {
	stmt, err := sql.ParseSelect(r.Query)
	if err != nil {
		return nil, fmt.Errorf("oracle: repro query: %w", err)
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		return nil, fmt.Errorf("oracle: repro query: %w", err)
	}
	defs, err := r.Defs(db.Schema())
	if err != nil {
		return nil, err
	}
	ref, err := Reference(db, stmt)
	if err != nil {
		return nil, err
	}
	if err := db.Materialize(defs); err != nil {
		return nil, err
	}
	opz := optimizer.New(db)
	keys := configKeys(defs)
	plan, err := opz.Optimize(stmt, optimizer.Configuration(defs))
	if err != nil {
		return &Violation{Kind: "error", Query: r.Query, Config: keys,
			Detail: fmt.Sprintf("optimize: %v", err)}, nil
	}
	got, err := exec.Run(db, plan)
	if err != nil {
		return &Violation{Kind: "error", Query: r.Query, Config: keys,
			Detail: fmt.Sprintf("exec: %v\nplan:\n%s", err, plan.Explain())}, nil
	}
	if diff := DiffResults(ref, got); diff != "" {
		return &Violation{Kind: "result-diff", Query: r.Query, Config: keys,
			Detail: diff + "\nplan:\n" + plan.Explain()}, nil
	}
	if msg := checkOrdered(got, stmt.OrderBy); msg != "" {
		return &Violation{Kind: "order", Query: r.Query, Config: keys,
			Detail: msg + "\nplan:\n" + plan.Explain()}, nil
	}
	return nil, nil
}

// Minimize shrinks a reproducing repro by dropping configuration
// indexes one at a time while the violation persists (greedy delta
// debugging over the index set; the query is already a single
// statement). It returns the smallest still-reproducing repro; if the
// input does not reproduce, it is returned unchanged.
func Minimize(r *Repro) (*Repro, error) {
	db, err := BuildDB(r.DB, r.Scale, r.Seed)
	if err != nil {
		return nil, err
	}
	v, err := r.checkAgainst(db)
	if err != nil || v == nil {
		return r, err
	}
	cur := *r
	for changed := true; changed; {
		changed = false
		for i := range cur.Config {
			cand := cur
			cand.Config = append(append([][2]string{}, cur.Config[:i]...), cur.Config[i+1:]...)
			v, err := cand.checkAgainst(db)
			if err != nil {
				return nil, err
			}
			if v != nil {
				cur = cand
				changed = true
				break
			}
		}
	}
	return &cur, nil
}

// NewRepro builds a repro from a violation found during a sweep. The
// violation's config keys ("table(a,b,c)") convert directly to index
// specs.
func NewRepro(dbName string, scale float64, seed int64, v Violation) *Repro {
	r := &Repro{DB: dbName, Scale: scale, Seed: seed, Query: v.Query}
	for _, key := range v.Config {
		open := strings.IndexByte(key, '(')
		if open <= 0 || !strings.HasSuffix(key, ")") {
			continue
		}
		r.Config = append(r.Config, [2]string{key[:open], key[open+1 : len(key)-1]})
	}
	sort.Slice(r.Config, func(i, j int) bool {
		if r.Config[i][0] != r.Config[j][0] {
			return r.Config[i][0] < r.Config[j][0]
		}
		return r.Config[i][1] < r.Config[j][1]
	})
	return r
}
