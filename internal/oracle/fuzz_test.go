package oracle

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"indexmerge/internal/advisor"
	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

// fuzzDBCount bounds how many distinct fuzz databases are built per
// process; each is a few hundred KB and building dominates iteration
// time, so seeds map onto a small cached pool.
const fuzzDBCount = 4

// fuzzRefBudget caps row combinations per reference evaluation inside
// the fuzz targets. Generated queries are occasionally unselective
// cross joins whose naive evaluation is cubic in the table size and
// whose results run to millions of rows; those are correct but slow
// enough (in both evaluators and in the differ) to trip the fuzz
// worker's hang timeout, so they are skipped rather than evaluated.
// The budget also bounds the executed plan's work: a result can have
// at most as many rows as the reference visits combinations.
const fuzzRefBudget = 200_000

var (
	fuzzDBMu    sync.Mutex
	fuzzDBCache = map[int64]*engine.Database{}
)

// fuzzDB builds (or reuses) a small synthetic database derived from
// the seed. Databases are shared across fuzz iterations; iterations
// re-materialize whatever configuration they need, so sharing is safe
// as long as the target itself runs serially (fuzz workers are
// separate processes, each calling the target sequentially).
func fuzzDB(t *testing.T, seed int64) *engine.Database {
	t.Helper()
	key := ((seed % fuzzDBCount) + fuzzDBCount) % fuzzDBCount
	fuzzDBMu.Lock()
	defer fuzzDBMu.Unlock()
	if db, ok := fuzzDBCache[key]; ok {
		return db
	}
	spec := datagen.SyntheticSpec{
		Name:       fmt.Sprintf("fuzz%d", key),
		Tables:     4,
		MinCols:    4,
		MaxCols:    10,
		RowsPer:    250,
		Seed:       300 + key,
		ZipfLevels: []float64{0, 1, 2},
	}
	db, err := datagen.BuildSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	fuzzDBCache[key] = db
	return db
}

// reportFuzzViolation fails the fuzz target with a replayable repro
// attached, so any finding can be minimized and checked in under
// testdata/repro.
func reportFuzzViolation(t *testing.T, dbKey int64, v Violation) {
	t.Helper()
	r := NewRepro(fmt.Sprintf("fuzz-synthetic-%d", dbKey), 1, dbKey, v)
	t.Errorf("%s\nreplayable repro (rebuild via fuzzDB(%d)):\n%s", v, dbKey, r.Marshal())
}

// FuzzParseOptimizeExec drives the full front-to-back pipeline with
// generated queries: canonical-SQL parse round-trip, optimization
// under the empty and an advisor-recommended configuration, execution,
// and a differential diff against the reference evaluator.
func FuzzParseOptimizeExec(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(1), int64(7))
	f.Add(int64(2), int64(23))
	f.Add(int64(3), int64(101))
	f.Fuzz(func(t *testing.T, dbSeed, querySeed int64) {
		db := fuzzDB(t, dbSeed)
		w, err := workload.Generate(db, workload.Options{Class: workload.Complex, Disjunctions: true, Queries: 1, Seed: querySeed})
		if err != nil {
			t.Skip() // generator could not produce a query for this seed
		}
		stmt := w.Queries[0].Stmt

		// Parse round-trip: the canonical rendering must re-parse and
		// re-render to the same text.
		text := stmt.String()
		stmt2, err := sql.ParseSelect(text)
		if err != nil {
			t.Fatalf("canonical SQL does not re-parse: %q: %v", text, err)
		}
		if err := stmt2.Resolve(db.Schema()); err != nil {
			t.Fatalf("canonical SQL does not re-resolve: %q: %v", text, err)
		}
		if got := stmt2.String(); got != text {
			t.Fatalf("parse round trip changed the query:\n in: %s\nout: %s", text, got)
		}

		ref, err := ReferenceBudget(db, stmt, fuzzRefBudget)
		if errors.Is(err, ErrBudget) {
			t.Skip() // unselective cross join: correct but too slow to evaluate
		}
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		opz := optimizer.New(db)
		adv := advisor.New(db, opz)
		recs, err := adv.TuneQuery(stmt)
		if err != nil {
			t.Fatalf("tune: %v", err)
		}
		for _, defs := range [][]catalog.IndexDef{nil, recs} {
			if err := db.Materialize(defs); err != nil {
				t.Fatal(err)
			}
			cfg := optimizer.Configuration(defs)
			plan, err := opz.Optimize(stmt, cfg)
			if err != nil {
				t.Fatalf("optimize under %v: %v", configKeys(defs), err)
			}
			for _, u := range plan.Uses {
				if !defsContain(defs, u.Index) {
					reportFuzzViolation(t, dbSeed, Violation{Kind: "explain-unknown", Query: text,
						Config: configKeys(defs), Detail: "plan uses " + u.Index.Key()})
				}
			}
			got, err := exec.Run(db, plan)
			if err != nil {
				t.Fatalf("exec under %v: %v\nplan:\n%s", configKeys(defs), err, plan.Explain())
			}
			if diff := DiffResults(ref, got); diff != "" {
				reportFuzzViolation(t, dbSeed, Violation{Kind: "result-diff", Query: text,
					Config: configKeys(defs), Detail: diff + "\nplan:\n" + plan.Explain()})
			}
			if msg := checkOrdered(got, stmt.OrderBy); msg != "" {
				reportFuzzViolation(t, dbSeed, Violation{Kind: "order", Query: text,
					Config: configKeys(defs), Detail: msg + "\nplan:\n" + plan.Explain()})
			}
		}
	})
}

// FuzzMergeSearch drives the merge search with generated workloads and
// initial configurations, then checks the metamorphic invariants: the
// final configuration is a minimal merged configuration of the initial
// one (Definitions 1–3), and every query still computes its reference
// answer under it.
func FuzzMergeSearch(f *testing.F) {
	f.Add(int64(0), int64(5), byte(3))
	f.Add(int64(1), int64(11), byte(4))
	f.Add(int64(2), int64(17), byte(6))
	f.Fuzz(func(t *testing.T, dbSeed, wSeed int64, n byte) {
		db := fuzzDB(t, dbSeed)
		w, err := workload.Generate(db, workload.Options{Class: workload.Complex, Disjunctions: true, Queries: 5, Seed: wSeed})
		if err != nil {
			t.Skip()
		}
		opz := optimizer.New(db)
		adv := advisor.New(db, opz)
		size := int(n%6) + 2
		initialDefs, err := advisor.BuildInitialConfiguration(adv, w, size, wSeed)
		if err != nil {
			t.Fatalf("initial configuration: %v", err)
		}
		if len(initialDefs) == 0 {
			t.Skip() // nothing recommended, nothing to merge
		}
		initial := core.NewConfiguration(initialDefs)
		pw, err := opz.PrepareWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		baseCost, err := opz.WorkloadCostPrepared(pw, optimizer.Configuration(initialDefs))
		if err != nil {
			t.Fatal(err)
		}
		check := core.NewOptimizerChecker(opz, w, baseCost, 0.10)
		check.Prepared = pw
		rec := &recordingChecker{inner: check}
		seek, err := core.ComputeSeekCostsPrepared(opz, pw, initial)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Greedy(initial, &core.MergePairCost{Seek: seek}, rec, db)
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		if err := core.ValidateMinimalMerged(initial, res.Final); err != nil {
			t.Errorf("final configuration violates Definitions 1-3: %v", err)
		}
		for _, cfg := range rec.visited {
			if err := core.ValidateMinimalMerged(initial, cfg); err != nil {
				t.Errorf("visited configuration violates Definitions 1-3: %v", err)
			}
		}

		refs := make([]*Result, w.Len())
		for i, q := range w.Queries {
			refs[i], err = ReferenceBudget(db, q.Stmt, fuzzRefBudget)
			if errors.Is(err, ErrBudget) {
				t.Skip() // unselective cross join: correct but too slow to evaluate
			}
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
		}
		vs, _, err := CheckConfig(db, opz, pw, w, refs, res.Final.Defs())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			reportFuzzViolation(t, dbSeed, v)
		}
	})
}
