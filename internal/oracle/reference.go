// Package oracle is an execution-backed correctness harness for the
// what-if optimizer and the merge search. It answers the question the
// paper takes on faith: do the plans the optimizer picks — under the
// initial configuration, under every configuration the search visits,
// and under the final merged configuration — actually compute the
// right rows?
//
// The harness has three parts: a naive reference evaluator
// (this file) that computes query answers straight off the AST with
// full scans and nested loops, sharing no code with the planner or the
// plan interpreter; a differential sweep (oracle.go) that diffs
// exec.Run row-multisets against the reference and checks metamorphic
// invariants over merged configurations; and a replayable repro-file
// format (repro.go) for any divergence found, including by the fuzz
// targets (fuzz_test.go).
package oracle

import (
	"errors"
	"fmt"
	"strings"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

// ErrBudget is returned by ReferenceBudget when evaluating a query
// would exceed the row-combination budget. Fuzz targets skip such
// inputs instead of hanging the worker on an unselective cross join.
var ErrBudget = errors.New("oracle: reference evaluation budget exceeded")

// Result is a materialized reference answer. Rows carry no meaningful
// order unless the query has ORDER BY — callers compare multisets and
// check ordering separately.
type Result struct {
	Columns []string
	Rows    []value.Row
}

// Reference evaluates a resolved SELECT with full table scans and
// nested-loop joins directly over the database's heaps. It is
// deliberately independent of the optimizer and executor: no plan
// nodes, no indexes, no cost estimates — only the SQL semantics the
// engine defines (NULL fails every predicate, null join keys never
// match, BETWEEN is inclusive, aggregates skip NULLs).
func Reference(db *engine.Database, stmt *sql.SelectStmt) (*Result, error) {
	return reference(db, stmt, 0)
}

// ReferenceBudget is Reference with a cap on the number of row
// combinations the nested loop may visit (0 means unlimited). When the
// cap is exceeded it returns ErrBudget. Fuzz targets use it so a
// generated query that is an unselective cross join — correct but
// quadratic-or-worse — cannot stall a fuzz worker past its hang
// timeout.
func ReferenceBudget(db *engine.Database, stmt *sql.SelectStmt, maxOps int64) (*Result, error) {
	return reference(db, stmt, maxOps)
}

func reference(db *engine.Database, stmt *sql.SelectStmt, maxOps int64) (*Result, error) {
	tables := stmt.TablesReferenced()

	// Load each table's rows, filtered by its own restriction
	// predicates up front (a conjunction commutes, so pre-filtering is
	// just the naive loop with its iterations reordered).
	schema := make([]sql.ColumnRef, 0, 8)
	offsets := make(map[string]int, len(tables))
	filtered := make([][]value.Row, len(tables))
	for ti, tname := range tables {
		t, ok := db.Schema().Table(tname)
		if !ok {
			return nil, fmt.Errorf("oracle: unknown table %q", tname)
		}
		offsets[tname] = len(schema)
		for _, c := range t.Columns {
			schema = append(schema, sql.ColumnRef{Table: tname, Column: c.Name})
		}
		h, err := db.Heap(tname)
		if err != nil {
			return nil, err
		}
		preds := stmt.PredicatesOn(tname)
		var rows []value.Row
		var perr error
		h.Scan(func(_ storage.RowID, r value.Row) bool {
			keep := true
			for _, p := range preds {
				ok, err := refPredicate(t, r, p)
				if err != nil {
					perr = err
					return false
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				rows = append(rows, r)
			}
			return true
		})
		if perr != nil {
			return nil, perr
		}
		filtered[ti] = rows
	}

	// Index join predicates by the later of their two tables, so each
	// one is applied as soon as the nested loop has bound both sides.
	type joinCheck struct {
		li, ri int // combined-schema ordinals
	}
	joinsAt := make([][]joinCheck, len(tables))
	pos := func(tname string) int {
		for i, t := range tables {
			if t == tname {
				return i
			}
		}
		return -1
	}
	for _, j := range stmt.Joins {
		li := colOffset(db, offsets, j.Left)
		ri := colOffset(db, offsets, j.Right)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("oracle: join %s references unknown column", j)
		}
		lp, rp := pos(j.Left.Table), pos(j.Right.Table)
		later := lp
		if rp > later {
			later = rp
		}
		joinsAt[later] = append(joinsAt[later], joinCheck{li: li, ri: ri})
	}

	// Nested loops in FROM order over the pre-filtered rows.
	var matched []value.Row
	var ops int64
	combined := make(value.Row, len(schema))
	var descend func(depth int) bool
	descend = func(depth int) bool {
		if depth == len(tables) {
			matched = append(matched, combined.Clone())
			return true
		}
		base := offsets[tables[depth]]
	rows:
		for _, r := range filtered[depth] {
			ops++
			if maxOps > 0 && ops > maxOps {
				return false
			}
			copy(combined[base:base+len(r)], r)
			for _, jc := range joinsAt[depth] {
				l, r := combined[jc.li], combined[jc.ri]
				// SQL equality: NULL = anything is not true.
				if l.IsNull() || r.IsNull() || l.Compare(r) != 0 {
					continue rows
				}
			}
			if !descend(depth + 1) {
				return false
			}
		}
		return true
	}
	if !descend(0) {
		return nil, ErrBudget
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Select {
		if it.Agg != sql.AggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		return refAggregate(schema, matched, stmt)
	}
	return refProject(schema, matched, stmt)
}

// refPredicate evaluates one restriction predicate against a single
// table row. Disjunctions (OR, IN) are expanded through Disjuncts()
// and recursed: a row passes if any member passes, so a NULL column
// failing one disjunct does not veto the others — the same
// three-valued logic the engine defines.
func refPredicate(t *catalog.Table, r value.Row, p sql.Predicate) (bool, error) {
	if p.Op == sql.OpOr || p.Op == sql.OpIn {
		for _, d := range p.Disjuncts() {
			ok, err := refPredicate(t, r, d)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	ci := t.ColumnIndex(p.Col.Column)
	if ci < 0 {
		return false, fmt.Errorf("oracle: column %s not in table", p.Col)
	}
	v := r[ci]
	if v.IsNull() {
		return false, nil // three-valued logic: NULL fails predicates
	}
	switch p.Op {
	case sql.OpEq:
		return v.Compare(p.Val) == 0, nil
	case sql.OpNe:
		return v.Compare(p.Val) != 0, nil
	case sql.OpLt:
		return v.Compare(p.Val) < 0, nil
	case sql.OpLe:
		return v.Compare(p.Val) <= 0, nil
	case sql.OpGt:
		return v.Compare(p.Val) > 0, nil
	case sql.OpGe:
		return v.Compare(p.Val) >= 0, nil
	case sql.OpBetween:
		return v.Compare(p.Lo) >= 0 && v.Compare(p.Hi) <= 0, nil
	}
	return false, fmt.Errorf("oracle: unsupported operator %v", p.Op)
}

// colOffset maps a qualified column reference to its ordinal in the
// combined nested-loop schema.
func colOffset(db *engine.Database, offsets map[string]int, c sql.ColumnRef) int {
	base, ok := offsets[c.Table]
	if !ok {
		return -1
	}
	t, ok := db.Schema().Table(c.Table)
	if !ok {
		return -1
	}
	ci := t.ColumnIndex(c.Column)
	if ci < 0 {
		return -1
	}
	return base + ci
}

// refColIndex finds a qualified reference in the combined schema.
func refColIndex(schema []sql.ColumnRef, ref sql.ColumnRef) int {
	for i, c := range schema {
		if c.Column == ref.Column && (ref.Table == "" || c.Table == ref.Table) {
			return i
		}
	}
	return -1
}

// refProject narrows matched rows to the select list.
func refProject(schema []sql.ColumnRef, rows []value.Row, stmt *sql.SelectStmt) (*Result, error) {
	res := &Result{}
	idx := make([]int, len(stmt.Select))
	for i, it := range stmt.Select {
		ci := refColIndex(schema, it.Col)
		if ci < 0 {
			return nil, fmt.Errorf("oracle: projected column %s not in scope", it.Col)
		}
		idx[i] = ci
		res.Columns = append(res.Columns, it.Col.String())
	}
	for _, r := range rows {
		out := make(value.Row, len(idx))
		for i, ci := range idx {
			out[i] = r[ci]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// refAcc accumulates one aggregate, reimplementing the engine's
// semantics from the spec: COUNT(*) counts rows, other aggregates skip
// NULLs, SUM over integer kinds stays integral, AVG is always a float,
// and a scalar aggregate over no rows still yields one row.
type refAcc struct {
	fn       sql.AggFunc
	count    int64
	sum      float64
	intKind  bool
	min, max value.Value
}

func (a *refAcc) add(v value.Value) {
	if a.fn == sql.AggCountStar {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	a.intKind = v.Kind() == value.Int || v.Kind() == value.Date
	a.sum += v.Float()
	if a.min.IsNull() || v.Compare(a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || v.Compare(a.max) > 0 {
		a.max = v
	}
}

func (a *refAcc) result() value.Value {
	switch a.fn {
	case sql.AggCount, sql.AggCountStar:
		return value.NewInt(a.count)
	case sql.AggSum:
		if a.count == 0 {
			return value.NewNull()
		}
		if a.intKind {
			return value.NewInt(int64(a.sum))
		}
		return value.NewFloat(a.sum)
	case sql.AggAvg:
		if a.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(a.sum / float64(a.count))
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	}
	return value.NewNull()
}

// refAggregate groups matched rows by the GROUP BY columns and
// evaluates the select list's aggregates per group.
func refAggregate(schema []sql.ColumnRef, rows []value.Row, stmt *sql.SelectStmt) (*Result, error) {
	groupIdx := make([]int, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		ci := refColIndex(schema, g)
		if ci < 0 {
			return nil, fmt.Errorf("oracle: group column %s not in scope", g)
		}
		groupIdx[i] = ci
	}
	itemIdx := make([]int, len(stmt.Select))
	res := &Result{}
	for i, it := range stmt.Select {
		switch it.Agg {
		case sql.AggCountStar:
			itemIdx[i] = -1
			res.Columns = append(res.Columns, it.String())
		case sql.AggNone:
			// Plain select items must be grouped.
			gi := -1
			for g, gcol := range stmt.GroupBy {
				if gcol == it.Col {
					gi = g
					break
				}
			}
			if gi < 0 {
				return nil, fmt.Errorf("oracle: select column %s is not grouped", it.Col)
			}
			itemIdx[i] = gi // index into the group key
			res.Columns = append(res.Columns, it.Col.String())
		default:
			ci := refColIndex(schema, it.Col)
			if ci < 0 {
				return nil, fmt.Errorf("oracle: aggregate input %s not in scope", it.Col)
			}
			itemIdx[i] = ci
			res.Columns = append(res.Columns, it.String())
		}
	}

	type group struct {
		key  value.Row
		accs []*refAcc
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rows {
		var kb strings.Builder
		for _, gi := range groupIdx {
			kb.WriteString(r[gi].String())
			kb.WriteByte('\x00')
		}
		k := kb.String()
		g := groups[k]
		if g == nil {
			key := make(value.Row, len(groupIdx))
			for i, gi := range groupIdx {
				key[i] = r[gi]
			}
			g = &group{key: key, accs: make([]*refAcc, len(stmt.Select))}
			for i, it := range stmt.Select {
				g.accs[i] = &refAcc{fn: it.Agg, min: value.NewNull(), max: value.NewNull()}
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, it := range stmt.Select {
			switch it.Agg {
			case sql.AggNone:
			case sql.AggCountStar:
				g.accs[i].add(value.NewNull())
			default:
				g.accs[i].add(r[itemIdx[i]])
			}
		}
	}
	// A scalar aggregate over empty input still yields one row.
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		g := &group{accs: make([]*refAcc, len(stmt.Select))}
		for i, it := range stmt.Select {
			g.accs[i] = &refAcc{fn: it.Agg, min: value.NewNull(), max: value.NewNull()}
		}
		groups[""] = g
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		out := make(value.Row, len(stmt.Select))
		for i, it := range stmt.Select {
			if it.Agg == sql.AggNone {
				out[i] = g.key[itemIdx[i]]
			} else {
				out[i] = g.accs[i].result()
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
