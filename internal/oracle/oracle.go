package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"indexmerge/internal/advisor"
	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

// Violation is one correctness finding. Kind is one of:
//
//	result-diff        executed rows differ from the reference answer
//	order              executed rows violate the query's ORDER BY
//	explain-unknown    the plan reports an index outside the configuration
//	prepared-mismatch  prepared and unprepared optimization disagree
//	merge-invariant    a visited configuration breaks Definition 1–3
//	error              optimization or execution failed outright
type Violation struct {
	Kind   string   `json:"kind"`
	Query  string   `json:"query"`
	Config []string `json:"config"`
	Detail string   `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] query=%q config={%s}: %s",
		v.Kind, v.Query, strings.Join(v.Config, ", "), v.Detail)
}

// Report summarizes one differential sweep.
type Report struct {
	DB             string      `json:"db"`
	Queries        int         `json:"queries"`
	Configs        int         `json:"configs"`
	Checks         int         `json:"checks"`
	VisitedSampled int         `json:"visited_sampled"`
	MergeSteps     int         `json:"merge_steps"`
	Violations     []Violation `json:"violations"`
}

// Ok reports whether the sweep found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// SweepOptions configures a differential sweep.
type SweepOptions struct {
	// Seed drives the initial-configuration draw and visited-config
	// sampling.
	Seed int64
	// InitialIndexes is the initial configuration size n (default 8).
	InitialIndexes int
	// MaxVisited bounds how many of the search's visited candidate
	// configurations are differentially executed (default 5, sampled
	// by Seed; the search typically visits far more than can be
	// executed affordably).
	MaxVisited int
	// MaxPairMerges bounds the explicit MergeOrdered metamorphic
	// checks over same-table pairs of the initial configuration
	// (default 4).
	MaxPairMerges int
	// CostConstraint is the search's cost-increase bound (default 0.10).
	CostConstraint float64
}

func (o *SweepOptions) defaults() {
	if o.InitialIndexes <= 0 {
		o.InitialIndexes = 8
	}
	if o.MaxVisited <= 0 {
		o.MaxVisited = 5
	}
	if o.MaxPairMerges <= 0 {
		o.MaxPairMerges = 4
	}
	if o.CostConstraint <= 0 {
		o.CostConstraint = 0.10
	}
}

// recordingChecker wraps a constraint checker, keeping every candidate
// configuration the search submitted — the "visited configurations"
// the differential sweep samples from.
type recordingChecker struct {
	inner core.ConstraintChecker

	mu      sync.Mutex
	visited []*core.Configuration
}

func (r *recordingChecker) record(cfg *core.Configuration) {
	r.mu.Lock()
	r.visited = append(r.visited, cfg)
	r.mu.Unlock()
}

func (r *recordingChecker) Accepts(cfg *core.Configuration, m, a, b *core.Index) (bool, error) {
	r.record(cfg)
	return r.inner.Accepts(cfg, m, a, b)
}

func (r *recordingChecker) AcceptsContext(ctx context.Context, cfg *core.Configuration, m, a, b *core.Index) (bool, error) {
	r.record(cfg)
	if cc, ok := r.inner.(core.ContextChecker); ok {
		return cc.AcceptsContext(ctx, cfg, m, a, b)
	}
	return r.inner.Accepts(cfg, m, a, b)
}

func (r *recordingChecker) Description() string { return r.inner.Description() }
func (r *recordingChecker) Evaluations() int64  { return r.inner.Evaluations() }

// Sweep runs the full differential harness over one database and
// workload: reference answers are computed once per query, then diffed
// against executed plans under the empty configuration, the initial
// (advisor-built) configuration, a seed-sampled subset of every
// configuration the Greedy search visits, the final merged
// configuration, and explicit MergeOrdered pair merges. Metamorphic
// invariants (Definition 1–3 well-formedness, prepared-vs-unprepared
// agreement, Explain naming only configuration indexes) are checked
// along the way.
//
// Sweep materializes indexes as it goes and leaves the database with
// the last checked configuration materialized.
func Sweep(dbName string, db *engine.Database, w *sql.Workload, opt SweepOptions) (*Report, error) {
	opt.defaults()
	rep := &Report{DB: dbName, Queries: w.Len()}

	// Reference answers are configuration-independent: compute once.
	refs := make([]*Result, w.Len())
	for i, q := range w.Queries {
		ref, err := Reference(db, q.Stmt)
		if err != nil {
			return nil, fmt.Errorf("oracle: reference evaluation of %q: %w", q.Stmt, err)
		}
		refs[i] = ref
	}

	opz := optimizer.New(db)
	pw, err := opz.PrepareWorkload(w)
	if err != nil {
		return nil, err
	}

	// Initial configuration, the paper's §4.2.3 seed.
	adv := advisor.New(db, opz)
	initialDefs, err := advisor.BuildInitialConfiguration(adv, w, opt.InitialIndexes, opt.Seed)
	if err != nil {
		return nil, err
	}
	initial := core.NewConfiguration(initialDefs)

	// Greedy merge search with a recording checker.
	baseCost, err := opz.WorkloadCostPrepared(pw, optimizer.Configuration(initialDefs))
	if err != nil {
		return nil, err
	}
	inner := core.NewOptimizerChecker(opz, w, baseCost, opt.CostConstraint)
	inner.Prepared = pw
	rec := &recordingChecker{inner: inner}
	seek, err := core.ComputeSeekCostsPrepared(opz, pw, initial)
	if err != nil {
		return nil, err
	}
	res, err := core.Greedy(initial, &core.MergePairCost{Seek: seek}, rec, db)
	if err != nil {
		return nil, err
	}
	rep.MergeSteps = len(res.Steps)

	// Configurations to execute differentially: empty, initial, a
	// seed-sampled subset of visited candidates, the final merged
	// configuration, and explicit pairwise MergeOrdered results.
	type namedConfig struct {
		name string
		cfg  *core.Configuration
	}
	configs := []namedConfig{
		{"empty", core.NewConfiguration(nil)},
		{"initial", initial},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, vi := range sampleIndexes(len(rec.visited), opt.MaxVisited, rng) {
		configs = append(configs, namedConfig{fmt.Sprintf("visited[%d]", vi), rec.visited[vi]})
		rep.VisitedSampled++
	}
	configs = append(configs, namedConfig{"final", res.Final})
	for i, mc := range pairMergeConfigs(initial, opt.MaxPairMerges, rng) {
		configs = append(configs, namedConfig{fmt.Sprintf("pair-merge[%d]", i), mc})
	}

	seen := map[string]bool{}
	for _, nc := range configs {
		sig := nc.cfg.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		rep.Configs++

		// Metamorphic invariant: every configuration derived from the
		// initial one by index-preserving merges must satisfy
		// Definitions 1–3.
		if nc.name != "empty" && nc.name != "initial" {
			if err := core.ValidateMinimalMerged(initial, nc.cfg); err != nil {
				rep.Violations = append(rep.Violations, Violation{
					Kind:   "merge-invariant",
					Config: configKeys(nc.cfg.Defs()),
					Detail: fmt.Sprintf("%s: %v", nc.name, err),
				})
			}
		}

		vs, checks, err := CheckConfig(db, opz, pw, w, refs, nc.cfg.Defs())
		if err != nil {
			return nil, err
		}
		rep.Checks += checks
		rep.Violations = append(rep.Violations, vs...)
	}
	return rep, nil
}

// CheckConfig materializes one configuration and differentially checks
// every workload query under it: executed rows against the reference
// answers, ORDER BY satisfaction, prepared-vs-unprepared plan
// agreement, and the Explain invariant. pw and refs must parallel w's
// queries; refs entries may be nil to skip the result diff.
func CheckConfig(db *engine.Database, opz *optimizer.Optimizer, pw *optimizer.PreparedWorkload,
	w *sql.Workload, refs []*Result, defs []catalog.IndexDef) ([]Violation, int, error) {

	if err := db.Materialize(defs); err != nil {
		return nil, 0, err
	}
	cfg := optimizer.Configuration(defs)
	keys := configKeys(defs)
	var out []Violation
	checks := 0
	for i, q := range w.Queries {
		checks++
		stmt := q.Stmt
		add := func(kind, detail string) {
			out = append(out, Violation{Kind: kind, Query: stmt.String(), Config: keys, Detail: detail})
		}

		plan, err := opz.Optimize(stmt, cfg)
		if err != nil {
			add("error", fmt.Sprintf("optimize: %v", err))
			continue
		}

		// Explain invariant: a plan may only name configuration indexes.
		for _, u := range plan.Uses {
			if !defsContain(defs, u.Index) {
				add("explain-unknown", fmt.Sprintf("plan %s-uses index %s not in configuration",
					u.Mode, u.Index.Key()))
			}
		}

		// Prepared invariant: prepared optimization must agree with
		// unprepared in shape and cost (and hence in answer).
		if pw != nil && i < len(pw.Queries) {
			pplan, perr := opz.OptimizePrepared(pw.Queries[i], cfg)
			switch {
			case perr != nil:
				add("prepared-mismatch", fmt.Sprintf("prepared optimize failed: %v", perr))
			case pplan.Explain() != plan.Explain():
				add("prepared-mismatch", fmt.Sprintf("plans differ:\nprepared:\n%s\nunprepared:\n%s",
					pplan.Explain(), plan.Explain()))
			case pplan.Cost != plan.Cost:
				add("prepared-mismatch", fmt.Sprintf("costs differ: prepared %v, unprepared %v",
					pplan.Cost, plan.Cost))
			}
		}

		got, err := exec.Run(db, plan)
		if err != nil {
			add("error", fmt.Sprintf("exec: %v\nplan:\n%s", err, plan.Explain()))
			continue
		}
		if refs != nil && refs[i] != nil {
			if diff := DiffResults(refs[i], got); diff != "" {
				add("result-diff", diff+"\nplan:\n"+plan.Explain())
			}
		}
		if msg := checkOrdered(got, stmt.OrderBy); msg != "" {
			add("order", msg+"\nplan:\n"+plan.Explain())
		}
	}
	return out, checks, nil
}

// DiffResults compares a reference answer against an executed result
// as a column-list equality plus a row multiset equality. It returns
// "" when they agree, else a description of the first divergence.
// Floats are compared at reduced precision to absorb accumulation-
// order differences between plans.
func DiffResults(want *Result, got *exec.Result) string {
	if len(want.Columns) != len(got.Columns) {
		return fmt.Sprintf("column counts differ: reference %v, executed %v", want.Columns, got.Columns)
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			return fmt.Sprintf("column %d differs: reference %q, executed %q", i, want.Columns[i], got.Columns[i])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row counts differ: reference %d, executed %d", len(want.Rows), len(got.Rows))
	}
	counts := make(map[string]int, len(want.Rows))
	for _, r := range want.Rows {
		counts[encodeRow(r)]++
	}
	for _, r := range got.Rows {
		k := encodeRow(r)
		counts[k]--
		if counts[k] < 0 {
			return fmt.Sprintf("executed row %s not in reference answer (or too many copies)", k)
		}
	}
	// Counts sum to zero and never went negative, so they are all zero.
	return ""
}

// encodeRow renders a row canonically for multiset comparison. Floats
// are formatted at 6 significant digits so sums accumulated in
// different orders by different plans still encode identically.
func encodeRow(r value.Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x00')
		}
		if v.Kind() == value.Float {
			fmt.Fprintf(&b, "%.6g", v.Float())
		} else {
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// checkOrdered verifies executed rows satisfy the ORDER BY keys. Keys
// not present in the output columns cannot be checked from the result
// alone and are skipped.
func checkOrdered(res *exec.Result, keys []sql.OrderItem) string {
	if len(keys) == 0 || len(res.Rows) < 2 {
		return ""
	}
	type keyIdx struct {
		idx  int
		desc bool
	}
	var kis []keyIdx
	for _, k := range keys {
		idx := -1
		for i, c := range res.Columns {
			if c == k.Col.String() || c == k.Col.Column || strings.HasSuffix(c, "."+k.Col.Column) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return "" // key not in output; ordering unobservable
		}
		kis = append(kis, keyIdx{idx: idx, desc: k.Desc})
	}
	for i := 1; i < len(res.Rows); i++ {
		for _, ki := range kis {
			c := res.Rows[i-1][ki.idx].Compare(res.Rows[i][ki.idx])
			if ki.desc {
				c = -c
			}
			if c < 0 {
				break // strictly ordered on this key
			}
			if c > 0 {
				return fmt.Sprintf("rows %d and %d violate ORDER BY", i-1, i)
			}
		}
	}
	return ""
}

// pairMergeConfigs builds configurations that replace one same-table
// pair of the initial configuration with its index-preserving
// MergeOrdered result — the metamorphic subjects for "a merged
// configuration answers every query its parents did".
func pairMergeConfigs(initial *core.Configuration, max int, rng *rand.Rand) []*core.Configuration {
	var pairs [][2]*core.Index
	for i, a := range initial.Indexes {
		for _, b := range initial.Indexes[i+1:] {
			if a.Def.Table == b.Def.Table {
				pairs = append(pairs, [2]*core.Index{a, b})
			}
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if len(pairs) > max {
		pairs = pairs[:max]
	}
	var out []*core.Configuration
	for _, p := range pairs {
		m, err := core.MergeOrdered(p[0], p[1])
		if err != nil {
			continue
		}
		out = append(out, initial.ReplacePair(p[0], p[1], m))
	}
	return out
}

// sampleIndexes picks up to max distinct indexes from [0, n), sorted.
func sampleIndexes(n, max int, rng *rand.Rand) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)[:max]
	sort.Ints(perm)
	return perm
}

func configKeys(defs []catalog.IndexDef) []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Key()
	}
	sort.Strings(out)
	return out
}

func defsContain(defs []catalog.IndexDef, d catalog.IndexDef) bool {
	for _, e := range defs {
		if e.Key() == d.Key() {
			return true
		}
	}
	return false
}

// BuildDB constructs one of the built-in experimental databases by
// name — the same names cmd/idxmerge and the repro format use.
func BuildDB(name string, scale float64, seed int64) (*engine.Database, error) {
	switch name {
	case "tpcd":
		return datagen.BuildTPCD(datagen.ScaledTPCD(scale), seed)
	case "synthetic1":
		spec := datagen.Synthetic1Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		spec.Seed += seed
		return datagen.BuildSynthetic(spec)
	case "synthetic2":
		spec := datagen.Synthetic2Spec()
		spec.RowsPer = int(float64(spec.RowsPer) * scale)
		spec.Seed += seed
		return datagen.BuildSynthetic(spec)
	}
	return nil, fmt.Errorf("oracle: unknown database %q (want tpcd, synthetic1 or synthetic2)", name)
}
