package oracle

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"indexmerge/internal/faults"
)

// TestReplayCheckedInReprosUnderLatencyFaults replays every checked-in
// witness with latency faults armed on all injection points — storage
// page reads, index seeks, heap scans, stats sampling and what-if
// costing. Latency rules fire on the real hot paths but inject no
// errors, so the replay must behave exactly like the fault-free one:
// no witness may start reproducing (plans and row results unchanged).
// This pins down that the fault wiring itself is behavior-neutral.
func TestReplayCheckedInReprosUnderLatencyFaults(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in repro files")
	}

	installed := faults.Install(
		faults.Rule{ID: "lat-heap-get", Point: faults.StorageHeapGet, Mode: faults.ModeLatency, Latency: time.Microsecond, Count: 200},
		faults.Rule{ID: "lat-heap-scan", Point: faults.StorageHeapScan, Mode: faults.ModeLatency, Latency: time.Microsecond, Count: 200},
		faults.Rule{ID: "lat-seek", Point: faults.StorageIndexSeek, Mode: faults.ModeLatency, Latency: time.Microsecond, Count: 200},
		faults.Rule{ID: "lat-stats", Point: faults.StatsSample, Mode: faults.ModeLatency, Latency: time.Microsecond, Count: 50},
		faults.Rule{ID: "lat-cost", Point: faults.OptimizerCost, Mode: faults.ModeLatency, Latency: time.Microsecond, Count: 200},
	)
	defer faults.Reset()

	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			v, err := r.Check()
			if err != nil {
				t.Fatalf("replay under latency faults errored: %v", err)
			}
			if v != nil {
				t.Errorf("latency faults changed behavior; witness reproduces: %s", v)
			}
		})
	}

	var fired int64
	for _, r := range installed {
		fired += faults.Fired(r.ID)
	}
	if fired == 0 {
		t.Fatal("no latency fault fired; the wiring was not exercised")
	}
}
