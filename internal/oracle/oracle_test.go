package oracle

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/workload"
)

func tinyTPCD(t testing.TB) *engine.Database {
	t.Helper()
	db, err := datagen.BuildTPCD(datagen.ScaledTPCD(0.05), 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func tinySynthetic2(t testing.TB) *engine.Database {
	t.Helper()
	spec := datagen.Synthetic2Spec()
	spec.RowsPer = 300
	spec.Seed += 42
	db, err := datagen.BuildSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func genWorkload(t testing.TB, db *engine.Database, n int, seed int64) *sql.Workload {
	t.Helper()
	w, err := workload.Generate(db, workload.Options{Class: workload.Complex, Queries: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestReferenceMatchesExecNoIndexes cross-validates the reference
// evaluator against the executor on unindexed plans: two independent
// implementations of the same semantics over many generated queries.
func TestReferenceMatchesExecNoIndexes(t *testing.T) {
	db := tinyTPCD(t)
	w := genWorkload(t, db, 20, 7)
	opz := optimizer.New(db)
	for _, q := range w.Queries {
		ref, err := Reference(db, q.Stmt)
		if err != nil {
			t.Fatalf("reference %q: %v", q.Stmt, err)
		}
		plan, err := opz.Optimize(q.Stmt, nil)
		if err != nil {
			t.Fatalf("optimize %q: %v", q.Stmt, err)
		}
		got, err := exec.Run(db, plan)
		if err != nil {
			t.Fatalf("exec %q: %v", q.Stmt, err)
		}
		if diff := DiffResults(ref, got); diff != "" {
			t.Errorf("%q: %s", q.Stmt, diff)
		}
	}
}

// TestReferenceHandWrittenQueries pins reference semantics on queries
// with known answers.
func TestReferenceHandWrittenQueries(t *testing.T) {
	db := tinyTPCD(t)
	cases := []struct {
		query string
		check func(t *testing.T, r *Result)
	}{
		{
			// COUNT(*) over a whole table equals its row count.
			query: "SELECT COUNT(*) FROM region",
			check: func(t *testing.T, r *Result) {
				if len(r.Rows) != 1 || r.Rows[0][0].Int() != db.TableRowCount("region") {
					t.Errorf("got %v, want [[%d]]", r.Rows, db.TableRowCount("region"))
				}
			},
		},
		{
			// An always-false range yields no rows, but a scalar
			// aggregate over it still yields one.
			query: "SELECT COUNT(o_orderkey) FROM orders WHERE o_orderkey < -1",
			check: func(t *testing.T, r *Result) {
				if len(r.Rows) != 1 || r.Rows[0][0].Int() != 0 {
					t.Errorf("got %v, want [[0]]", r.Rows)
				}
			},
		},
		{
			// A join with its equality predicate must only pair
			// matching keys.
			query: "SELECT o_orderkey, c_custkey FROM orders, customer WHERE o_custkey = c_custkey AND c_custkey <= 3",
			check: func(t *testing.T, r *Result) {
				if len(r.Rows) == 0 {
					t.Error("expected join matches")
				}
			},
		},
	}
	for _, tc := range cases {
		stmt, err := sql.ParseSelect(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if err := stmt.Resolve(db.Schema()); err != nil {
			t.Fatal(err)
		}
		r, err := Reference(db, stmt)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		tc.check(t, r)
	}
}

// TestSweepTPCD runs the full differential sweep on a tiny TPC-D and
// expects a clean report: no result diffs, no invariant violations.
func TestSweepTPCD(t *testing.T) {
	db := tinyTPCD(t)
	w := genWorkload(t, db, 10, 13)
	rep, err := Sweep("tpcd", db, w, SweepOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s", v)
	}
	if rep.Configs < 3 || rep.Checks < rep.Configs*w.Len() {
		t.Errorf("sweep too shallow: %+v", rep)
	}
}

// TestSweepSynthetic2 does the same on the paper's Synthetic2 schema.
func TestSweepSynthetic2(t *testing.T) {
	db := tinySynthetic2(t)
	w := genWorkload(t, db, 8, 29)
	rep, err := Sweep("synthetic2", db, w, SweepOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s", v)
	}
}

// TestDiffResultsDetectsDivergence makes sure the differ is not
// vacuously green: perturbed results must be flagged.
func TestDiffResultsDetectsDivergence(t *testing.T) {
	db := tinyTPCD(t)
	stmt, err := sql.ParseSelect("SELECT c_custkey, c_name FROM customer ORDER BY c_custkey")
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	opz := optimizer.New(db)
	plan, err := opz.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffResults(ref, got); diff != "" {
		t.Fatalf("unexpected baseline diff: %s", diff)
	}
	// Drop a row.
	mut := &exec.Result{Columns: got.Columns, Rows: got.Rows[1:]}
	if DiffResults(ref, mut) == "" {
		t.Error("dropped row not detected")
	}
	// Duplicate a row (same cardinality, different multiset).
	rows := append(append(got.Rows[:0:0], got.Rows[1:]...), got.Rows[1])
	if DiffResults(ref, &exec.Result{Columns: got.Columns, Rows: rows}) == "" {
		t.Error("duplicated row not detected")
	}
	// Rename a column.
	cols := append(append([]string(nil), got.Columns[1:]...), "bogus")
	if DiffResults(ref, &exec.Result{Columns: cols, Rows: got.Rows}) == "" {
		t.Error("column rename not detected")
	}
}

// TestReproRoundTripAndMinimize exercises the repro file format: a
// synthetic violation marshals, parses back identically, replays clean
// (no divergence on a healthy build), and Minimize leaves a
// non-reproducing repro unchanged.
func TestReproRoundTripAndMinimize(t *testing.T) {
	r := &Repro{
		DB: "tpcd", Scale: 0.05, Seed: 42,
		Config: [][2]string{{"orders", "o_custkey,o_orderkey"}, {"lineitem", "l_orderkey"}},
		Query:  "SELECT o_orderkey, c_custkey FROM orders, customer WHERE o_custkey = c_custkey AND c_custkey <= 3",
	}
	parsed, err := ParseRepro(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.DB != r.DB || parsed.Scale != r.Scale || parsed.Seed != r.Seed ||
		parsed.Query != r.Query || len(parsed.Config) != len(r.Config) {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed, r)
	}
	v, err := parsed.Check()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("healthy build reproduced a violation: %s", v)
	}
	min, err := Minimize(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Config) != len(parsed.Config) {
		t.Errorf("Minimize shrank a non-reproducing repro")
	}
}

// TestReplayCheckedInRepros replays every repro under testdata/repro.
// These are the minimized witnesses of bugs found while building the
// oracle; a healthy build must not reproduce any of them.
func TestReplayCheckedInRepros(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "repro", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in repro files")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			v, err := r.Check()
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Errorf("repro still reproduces: %s", v)
			}
		})
	}
}

// TestParseReproRejectsGarbage covers the parser's error paths.
func TestParseReproRejectsGarbage(t *testing.T) {
	bad := []string{
		"not a repro",
		"oracle repro v1\nquery SELECT 1",                        // missing db
		"oracle repro v1\ndb tpcd scale=0.05 seed=1",             // missing query
		"oracle repro v1\ndb tpcd\nindex broken\nquery SELECT 1", // malformed index
		"oracle repro v1\ndb tpcd bogus=1\nquery SELECT 1",       // unknown attribute
		"oracle repro v1\ndb tpcd\nwat is this\nquery SELECT 1",  // unknown line
	}
	for _, src := range bad {
		if _, err := ParseRepro([]byte(src)); err == nil {
			t.Errorf("ParseRepro accepted %q", src)
		}
	}
	ok := "oracle repro v1\n# comment\ndb tpcd scale=0.05 seed=9\nindex region(r_regionkey)\nquery SELECT r_regionkey FROM region\n"
	r, err := ParseRepro([]byte(ok))
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 9 || len(r.Config) != 1 || !strings.Contains(r.Query, "region") {
		t.Errorf("parsed repro wrong: %+v", r)
	}
}
