package distrib

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/wscale"
)

// workerMaxBodyBytes caps worker request bodies. Registration ships
// the full serialized workload (10k statements ≈ 1 MB), so the cap is
// far above idxmerged's public-API 1 MiB.
const workerMaxBodyBytes = 64 << 20

// Worker serves batched what-if costing over one immutable database.
// It is stateless beyond its workload registry: every cost request
// names a registered workload and carries the full configuration to
// cost under, so any worker in a pool can serve any batch. Costing
// runs the exact code the coordinator would run locally — CostPrepared
// over identically-built statistics — which is what makes remote costs
// bit-identical to local ones.
type Worker struct {
	db  *engine.Database
	opt *optimizer.Optimizer
	fp  uint64
	mux *http.ServeMux

	mu        sync.RWMutex
	workloads map[string]*workerWorkload

	costRequests  atomic.Int64
	queriesCosted atomic.Int64
	atomsCosted   atomic.Int64
}

// workerWorkload is one registered workload: the parsed queries, the
// prepared descriptors, and the deterministic template compression
// (identical to the coordinator's — sql.Fingerprint and first-seen
// ordering depend only on the canonical text).
type workerWorkload struct {
	text string
	w    *sql.Workload
	pw   *optimizer.PreparedWorkload
	comp *wscale.Compressed
}

// NewWorker builds a worker over db, which must be analyzed and is
// treated as immutable from here on (freeze it with db.Snapshot() or
// pass a fork).
func NewWorker(db *engine.Database) *Worker {
	wk := &Worker{
		db:        db,
		opt:       optimizer.New(db),
		fp:        db.Fingerprint(),
		workloads: make(map[string]*workerWorkload),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", wk.handleHealthz)
	mux.HandleFunc("/v1/info", wk.handleInfo)
	mux.HandleFunc("/v1/workloads", wk.handleRegister)
	mux.HandleFunc("/v1/cost", wk.handleCost)
	mux.HandleFunc("/metrics", wk.handleMetrics)
	wk.mux = mux
	return wk
}

// Handler returns the worker's HTTP handler.
func (wk *Worker) Handler() http.Handler { return wk.mux }

// Fingerprint returns the worker database's fingerprint.
func (wk *Worker) Fingerprint() uint64 { return wk.fp }

func workerJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func workerErr(w http.ResponseWriter, code int, format string, args ...any) {
	workerJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (wk *Worker) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workerJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (wk *Worker) handleInfo(w http.ResponseWriter, r *http.Request) {
	wk.mu.RLock()
	n := len(wk.workloads)
	wk.mu.RUnlock()
	workerJSON(w, http.StatusOK, InfoResponse{
		Protocol:     protocolVersion,
		Fingerprint:  engine.FingerprintString(wk.fp),
		StatsVersion: wk.db.StatsVersion(),
		Tables:       len(wk.db.Schema().Tables()),
		DataBytes:    wk.db.DataBytes(),
		GoVersion:    runtime.Version(),
		Workloads:    n,
	})
}

func (wk *Worker) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		workerErr(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, workerMaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		workerErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// handleRegister parses, prepares and compresses a workload once.
// Idempotent for identical text; a name collision with different text
// is a conflict (bindings namespace names per session, so collisions
// mean a coordinator bug).
func (wk *Worker) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterWorkloadRequest
	if !wk.decode(w, r, &req) {
		return
	}
	if req.Name == "" || req.SQL == "" {
		workerErr(w, http.StatusBadRequest, "name and sql are required")
		return
	}
	wk.mu.RLock()
	existing := wk.workloads[req.Name]
	wk.mu.RUnlock()
	if existing != nil && existing.text != req.SQL {
		workerErr(w, http.StatusConflict, "workload %q already registered with different text", req.Name)
		return
	}
	if existing == nil {
		wl, err := sql.ParseWorkload(strings.NewReader(req.SQL), wk.db.Schema())
		if err != nil {
			workerErr(w, http.StatusBadRequest, "parse workload: %v", err)
			return
		}
		pw, err := optimizer.PrepareWorkload(wl, wk.db)
		if err != nil {
			workerErr(w, http.StatusInternalServerError, "prepare workload: %v", err)
			return
		}
		ww := &workerWorkload{text: req.SQL, w: wl, pw: pw, comp: wscale.Compress(wl)}
		wk.mu.Lock()
		// Recheck under the write lock: a concurrent identical
		// registration may have won; keep whichever landed first.
		if cur := wk.workloads[req.Name]; cur == nil {
			wk.workloads[req.Name] = ww
		}
		existing = wk.workloads[req.Name]
		wk.mu.Unlock()
	}
	workerJSON(w, http.StatusOK, RegisterWorkloadResponse{
		Name:      req.Name,
		Queries:   existing.w.Len(),
		Templates: len(existing.comp.Templates),
	})
}

// handleCost prices one batch. Items evaluate serially — a worker is
// one what-if stream; run more workers for more throughput — and any
// failed item fails the whole batch (the coordinator falls back to
// local costing, so partial results are useless to it).
func (wk *Worker) handleCost(w http.ResponseWriter, r *http.Request) {
	var req CostRequest
	if !wk.decode(w, r, &req) {
		return
	}
	wk.mu.RLock()
	ww := wk.workloads[req.Workload]
	wk.mu.RUnlock()
	if ww == nil {
		workerErr(w, http.StatusNotFound, "workload %q not registered", req.Workload)
		return
	}
	wk.costRequests.Add(1)
	var resp CostResponse
	if len(req.Queries) > 0 {
		defs, err := wk.resolveDefs(req.Indexes)
		if err != nil {
			workerErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		ocfg := optimizer.Configuration(defs)
		resp.QueryCosts = make([]float64, len(req.Queries))
		for i, qi := range req.Queries {
			if qi < 0 || qi >= len(ww.pw.Queries) {
				workerErr(w, http.StatusBadRequest, "query index %d out of range", qi)
				return
			}
			c, err := wk.opt.CostPrepared(ww.pw.Queries[qi], ocfg)
			if err != nil {
				workerErr(w, http.StatusInternalServerError, "cost query %d: %v", qi, err)
				return
			}
			resp.QueryCosts[i] = c
		}
		wk.queriesCosted.Add(int64(len(req.Queries)))
	}
	if len(req.Atoms) > 0 {
		resp.AtomCosts = make([]float64, len(req.Atoms))
		for i, a := range req.Atoms {
			if a.Template < 0 || a.Template >= len(ww.comp.Templates) {
				workerErr(w, http.StatusBadRequest, "template index %d out of range", a.Template)
				return
			}
			defs, err := wk.resolveDefs(a.Indexes)
			if err != nil {
				workerErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			ocfg := optimizer.Configuration(defs)
			t := ww.comp.Templates[a.Template]
			var sum float64
			for _, mi := range t.Members {
				c, err := wk.opt.CostPrepared(ww.pw.Queries[mi], ocfg)
				if err != nil {
					workerErr(w, http.StatusInternalServerError, "cost template %d member %d: %v", a.Template, mi, err)
					return
				}
				sum += c * ww.comp.W.Queries[mi].Freq
			}
			resp.AtomCosts[i] = sum
		}
		wk.atomsCosted.Add(int64(len(req.Atoms)))
	}
	workerJSON(w, http.StatusOK, resp)
}

func (wk *Worker) resolveDefs(wire []IndexDefWire) ([]catalog.IndexDef, error) {
	defs := make([]catalog.IndexDef, len(wire))
	for i, d := range wire {
		def, err := catalog.NewIndexDef(wk.db.Schema(), d.Name, d.Table, d.Columns)
		if err != nil {
			return nil, fmt.Errorf("resolve index %q: %w", d.Name, err)
		}
		defs[i] = def
	}
	return defs, nil
}

func (wk *Worker) handleMetrics(w http.ResponseWriter, r *http.Request) {
	wk.mu.RLock()
	n := len(wk.workloads)
	wk.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "idxmergew_workloads %d\n", n)
	fmt.Fprintf(w, "idxmergew_cost_requests_total %d\n", wk.costRequests.Load())
	fmt.Fprintf(w, "idxmergew_queries_costed_total %d\n", wk.queriesCosted.Load())
	fmt.Fprintf(w, "idxmergew_atoms_costed_total %d\n", wk.atomsCosted.Load())
}
