package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/engine"
	"indexmerge/internal/faults"
	"indexmerge/internal/sql"
	"indexmerge/internal/wscale"
)

// ErrNoWorkers is returned when every pool endpoint is down or
// incompatible; callers respond by costing locally.
var ErrNoWorkers = errors.New("distrib: no healthy workers")

// Options tunes a Pool. The zero value picks the defaults.
type Options struct {
	// Timeout bounds each worker RPC. Default 30s.
	Timeout time.Duration
	// HedgeAfter re-dispatches a still-unanswered chunk to a second
	// worker after this delay — results are identical, first answer
	// wins, so hedging stragglers is free of determinism concerns.
	// Default 2s; negative disables hedging.
	HedgeAfter time.Duration
	// Cooldown keeps a failed worker out of rotation before it is
	// retried. Default 5s.
	Cooldown time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Pool fans batched cost requests out over a fixed set of worker
// endpoints. Failed workers are benched for a cooldown and retried;
// workers whose database fingerprint or workload shape disagrees with
// the coordinator's are benched permanently. The pool itself never
// decides costs — it only transports them — so every error path
// simply surfaces to the checker, which falls back to local costing.
type Pool struct {
	eps        []*endpoint
	client     *http.Client
	timeout    time.Duration
	hedgeAfter time.Duration
	cooldown   time.Duration

	rr atomic.Int64 // rotates chunk→worker assignment across batches

	batches   atomic.Int64 // scatter calls (one per checker batch)
	items     atomic.Int64 // queries+atoms shipped
	rpcs      atomic.Int64 // chunk RPCs issued (includes hedges)
	rpcErrors atomic.Int64 // chunk RPCs failed
	hedges    atomic.Int64 // straggler re-dispatches
}

type endpoint struct {
	url string

	mu        sync.Mutex
	downUntil time.Time
	bad       bool // permanent: wrong fingerprint/protocol/workload shape
	checked   bool // /v1/info verified against the coordinator DB
}

// NewPool builds a pool over worker base URLs ("http://host:port").
func NewPool(urls []string, opts Options) *Pool {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = 2 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	p := &Pool{
		client:     opts.Client,
		timeout:    opts.Timeout,
		hedgeAfter: opts.HedgeAfter,
		cooldown:   opts.Cooldown,
	}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			p.eps = append(p.eps, &endpoint{url: u})
		}
	}
	return p
}

// Size returns the number of configured endpoints.
func (p *Pool) Size() int { return len(p.eps) }

// Stats is a snapshot of pool activity for /metrics and reports.
type Stats struct {
	Workers   int
	Healthy   int
	Batches   int64
	Items     int64
	RPCs      int64
	RPCErrors int64
	Hedges    int64
}

// PoolStats snapshots the pool's counters and health.
func (p *Pool) PoolStats() Stats {
	return Stats{
		Workers:   len(p.eps),
		Healthy:   len(p.healthy()),
		Batches:   p.batches.Load(),
		Items:     p.items.Load(),
		RPCs:      p.rpcs.Load(),
		RPCErrors: p.rpcErrors.Load(),
		Hedges:    p.hedges.Load(),
	}
}

func (p *Pool) healthy() []*endpoint {
	now := time.Now()
	out := make([]*endpoint, 0, len(p.eps))
	for _, ep := range p.eps {
		ep.mu.Lock()
		ok := !ep.bad && !now.Before(ep.downUntil)
		ep.mu.Unlock()
		if ok {
			out = append(out, ep)
		}
	}
	return out
}

func (p *Pool) markDown(ep *endpoint) {
	ep.mu.Lock()
	ep.downUntil = time.Now().Add(p.cooldown)
	ep.mu.Unlock()
}

func markBad(ep *endpoint) {
	ep.mu.Lock()
	ep.bad = true
	ep.mu.Unlock()
}

// post issues one JSON RPC under the pool's per-RPC timeout.
func (p *Pool) post(ctx context.Context, ep *endpoint, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.url+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("distrib: %s%s: %s: %s", ep.url, path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (p *Pool) get(ctx context.Context, ep *endpoint, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.url+path, nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distrib: %s%s: %s", ep.url, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// checkInfo verifies an endpoint's database fingerprint and protocol
// once. A mismatch benches the worker permanently: it would return
// valid-looking but wrong costs.
func (p *Pool) checkInfo(ctx context.Context, ep *endpoint, fp uint64) error {
	ep.mu.Lock()
	checked := ep.checked
	ep.mu.Unlock()
	if checked {
		return nil
	}
	var info InfoResponse
	if err := p.get(ctx, ep, "/v1/info", &info); err != nil {
		p.markDown(ep)
		return err
	}
	if info.Protocol != protocolVersion {
		markBad(ep)
		return fmt.Errorf("distrib: %s speaks protocol %d, want %d", ep.url, info.Protocol, protocolVersion)
	}
	if info.Fingerprint != engine.FingerprintString(fp) {
		markBad(ep)
		return fmt.Errorf("distrib: %s database fingerprint %s != coordinator %s",
			ep.url, info.Fingerprint, engine.FingerprintString(fp))
	}
	ep.mu.Lock()
	ep.checked = true
	ep.mu.Unlock()
	return nil
}

// Bind registers a workload on every reachable, fingerprint-compatible
// worker and returns a Binding that costs batches against it. The
// serialized text round-trips exactly (canonical SQL, shortest-float
// frequencies), and each worker's parsed query and template counts
// must match the coordinator's — a mismatched worker is benched
// permanently. Bind succeeds if at least one worker accepted the
// workload; others can rejoin later (EnsureWorker re-registers on
// first use after recovery is not attempted — a benched worker
// returning serves 404 and the batch falls back locally, so
// correctness never depends on registration coverage).
func (p *Pool) Bind(ctx context.Context, name string, fp uint64, w *sql.Workload, templates int) (*Binding, error) {
	var sb strings.Builder
	if err := sql.WriteWorkload(&sb, w); err != nil {
		return nil, err
	}
	req := RegisterWorkloadRequest{Name: name, SQL: sb.String()}
	ok := 0
	var firstErr error
	for _, ep := range p.eps {
		if err := p.checkInfo(ctx, ep, fp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var resp RegisterWorkloadResponse
		if err := p.post(ctx, ep, "/v1/workloads", req, &resp); err != nil {
			p.markDown(ep)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.Queries != w.Len() || (templates > 0 && resp.Templates != templates) {
			markBad(ep)
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: %s parsed workload %q as %d queries / %d templates, coordinator has %d / %d",
					ep.url, name, resp.Queries, resp.Templates, w.Len(), templates)
			}
			continue
		}
		ok++
	}
	if ok == 0 {
		if firstErr == nil {
			firstErr = ErrNoWorkers
		}
		return nil, firstErr
	}
	return &Binding{pool: p, name: name}, nil
}

// scatter splits n items into contiguous chunks across the healthy
// workers and runs them concurrently; run fills the caller's output
// slice for [lo, hi) so results reassemble in request order
// regardless of which worker answered. Any chunk error fails the
// whole batch — the checkers' local fallback re-costs everything, and
// partial remote results would still be installed cache-identically,
// so nothing is wasted but nothing is ambiguous either.
func (p *Pool) scatter(ctx context.Context, n int, run func(lo, hi int, primary, alt *endpoint) error) error {
	if n == 0 {
		return nil
	}
	if err := faults.Inject(faults.DistribRPC); err != nil {
		p.rpcErrors.Add(1)
		return err
	}
	eps := p.healthy()
	if len(eps) == 0 {
		return ErrNoWorkers
	}
	chunks := len(eps)
	if chunks > n {
		chunks = n
	}
	base := int(p.rr.Add(1) - 1)
	per, rem := n/chunks, n%chunks
	errs := make([]error, chunks)
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < chunks; i++ {
		sz := per
		if i < rem {
			sz++
		}
		hi := lo + sz
		primary := eps[(base+i)%len(eps)]
		var alt *endpoint
		if len(eps) > 1 {
			alt = eps[(base+i+1)%len(eps)]
		}
		wg.Add(1)
		go func(i, lo, hi int, primary, alt *endpoint) {
			defer wg.Done()
			errs[i] = run(lo, hi, primary, alt)
		}(i, lo, hi, primary, alt)
		lo = hi
	}
	wg.Wait()
	p.batches.Add(1)
	p.items.Add(int64(n))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChunk posts one chunk to its primary worker, hedging to alt if
// the primary has not answered after hedgeAfter (or failed outright).
// First successful response wins; a duplicate response computes
// identical floats, so discarding it is harmless.
func (p *Pool) runChunk(ctx context.Context, req *CostRequest, primary, alt *endpoint) (*CostResponse, error) {
	type result struct {
		ep   *endpoint
		resp *CostResponse
		err  error
	}
	ch := make(chan result, 2)
	call := func(ep *endpoint) {
		p.rpcs.Add(1)
		var resp CostResponse
		err := p.post(ctx, ep, "/v1/cost", req, &resp)
		ch <- result{ep: ep, resp: &resp, err: err}
	}
	go call(primary)
	inflight := 1
	altLaunched := alt == nil
	var hedge <-chan time.Time
	if !altLaunched && p.hedgeAfter > 0 {
		t := time.NewTimer(p.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.resp, nil
			}
			p.rpcErrors.Add(1)
			p.markDown(r.ep)
			if firstErr == nil {
				firstErr = r.err
			}
			if !altLaunched {
				// Primary failed before the hedge fired: retry on the
				// alternate immediately.
				altLaunched = true
				hedge = nil
				inflight++
				go call(alt)
				continue
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-hedge:
			hedge = nil
			altLaunched = true
			p.hedges.Add(1)
			inflight++
			go call(alt)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Binding ties a pool to one registered workload. It implements both
// batch contracts — core.BatchCostServer for the per-query checker
// and wscale.RemoteCoster for the compressed cost table — so one
// binding serves either cost model.
type Binding struct {
	pool *Pool
	name string
}

var (
	_ core.BatchCostServer = (*Binding)(nil)
	_ wscale.RemoteCoster  = (*Binding)(nil)
)

// Pool returns the underlying pool (metrics).
func (b *Binding) Pool() *Pool { return b.pool }

// CostQueryBatch implements core.BatchCostServer: the queries are
// costed under one shared configuration, sharded across workers.
func (b *Binding) CostQueryBatch(ctx context.Context, queries []int, defs []catalog.IndexDef) ([]float64, error) {
	wireDefs := toWire(defs)
	out := make([]float64, len(queries))
	err := b.pool.scatter(ctx, len(queries), func(lo, hi int, primary, alt *endpoint) error {
		req := &CostRequest{Workload: b.name, Indexes: wireDefs, Queries: queries[lo:hi]}
		resp, err := b.pool.runChunk(ctx, req, primary, alt)
		if err != nil {
			return err
		}
		if len(resp.QueryCosts) != hi-lo {
			return fmt.Errorf("distrib: got %d query costs, want %d", len(resp.QueryCosts), hi-lo)
		}
		copy(out[lo:hi], resp.QueryCosts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CostTemplateBatch implements wscale.RemoteCoster: each atom carries
// its own configuration; the batch is sharded across workers.
func (b *Binding) CostTemplateBatch(ctx context.Context, atoms []wscale.RemoteAtom) ([]float64, error) {
	out := make([]float64, len(atoms))
	err := b.pool.scatter(ctx, len(atoms), func(lo, hi int, primary, alt *endpoint) error {
		wa := make([]AtomWire, hi-lo)
		for i, a := range atoms[lo:hi] {
			wa[i] = AtomWire{Template: a.Template, Indexes: toWire(a.Defs)}
		}
		req := &CostRequest{Workload: b.name, Atoms: wa}
		resp, err := b.pool.runChunk(ctx, req, primary, alt)
		if err != nil {
			return err
		}
		if len(resp.AtomCosts) != hi-lo {
			return fmt.Errorf("distrib: got %d atom costs, want %d", len(resp.AtomCosts), hi-lo)
		}
		copy(out[lo:hi], resp.AtomCosts)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
