// Package distrib shards what-if costing over a pool of stateless
// worker processes (ROADMAP item 3, the paper's §3.4.2 observation
// that optimizer invocations dominate merge-search running time made
// horizontal). A worker (cmd/idxmergew) loads the same database the
// coordinator uses — a snapshot file or a deterministic named build —
// prepares registered workloads once, and serves batched cost RPCs
// over HTTP. The coordinator-side Pool scatters each batch of
// cache-missed (query, configuration) or (template, atom) costings
// across healthy workers, hedges stragglers, and reassembles results
// in request order; the checkers install them through the exact same
// cache/counter paths as local evaluation, so search results are
// byte-identical at any worker count and any failure falls back to
// local costing.
package distrib

import "indexmerge/internal/catalog"

// protocolVersion guards coordinator/worker wire compatibility.
const protocolVersion = 1

// InfoResponse describes a worker (GET /v1/info). Fingerprint is
// engine.FingerprintString of the worker's database; a coordinator
// must not dispatch to a worker whose fingerprint differs from its
// own database's.
type InfoResponse struct {
	Protocol     int    `json:"protocol"`
	Fingerprint  string `json:"fingerprint"`
	StatsVersion uint64 `json:"stats_version"`
	Tables       int    `json:"tables"`
	DataBytes    int64  `json:"data_bytes"`
	GoVersion    string `json:"go_version"`
	Workloads    int    `json:"workloads"`
}

// RegisterWorkloadRequest registers a workload by its serialized text
// (sql.WriteWorkload format: "freq|SQL" lines) under a name (POST
// /v1/workloads). Registration is idempotent for identical text;
// re-registering a name with different text is a conflict.
type RegisterWorkloadRequest struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// RegisterWorkloadResponse echoes what the worker parsed. Queries and
// Templates let the coordinator verify both sides agree on workload
// positions and fingerprint-template numbering before any costing.
type RegisterWorkloadResponse struct {
	Name      string `json:"name"`
	Queries   int    `json:"queries"`
	Templates int    `json:"templates"`
}

// IndexDefWire is a hypothetical index definition on the wire. Order
// matters and is preserved: the worker costs against the defs exactly
// as sent, matching the local evaluation it replaces.
type IndexDefWire struct {
	Name    string   `json:"name"`
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
}

// AtomWire is one (template, atomic-configuration) pair to cost: the
// exact member sum Σ Freq × CostPrepared over the template's members
// in member order.
type AtomWire struct {
	Template int            `json:"t"`
	Indexes  []IndexDefWire `json:"indexes"`
}

// CostRequest is one batched costing call (POST /v1/cost). Queries
// are workload positions costed individually under the shared Indexes
// configuration (the per-query checker path); Atoms carry their own
// configurations (the compressed cost-table path). A request may use
// either or both.
type CostRequest struct {
	Workload string         `json:"workload"`
	Indexes  []IndexDefWire `json:"indexes,omitempty"`
	Queries  []int          `json:"queries,omitempty"`
	Atoms    []AtomWire     `json:"atoms,omitempty"`
}

// CostResponse carries costs positionally matching the request.
// float64 survives JSON exactly (encoding/json emits the shortest
// representation that parses back to the same bits), so remote costs
// are bit-identical to locally computed ones.
type CostResponse struct {
	QueryCosts []float64 `json:"query_costs,omitempty"`
	AtomCosts  []float64 `json:"atom_costs,omitempty"`
}

// ErrorResponse is the worker's error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

func toWire(defs []catalog.IndexDef) []IndexDefWire {
	out := make([]IndexDefWire, len(defs))
	for i, d := range defs {
		out[i] = IndexDefWire{Name: d.Name, Table: d.Table, Columns: d.Columns}
	}
	return out
}
