package distrib

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/wscale"
)

// workerFixture builds a frozen TPC-D database, its workload and a
// worker over a fork, plus the canonical workload text a coordinator
// would register.
func workerFixture(t *testing.T) (*engine.Database, *sql.Workload, *Worker, string) {
	t.Helper()
	db, err := datagen.BuildTPCD(datagen.ScaledTPCD(0.12), 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := datagen.TPCDWorkload(db.Schema())
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	var sb strings.Builder
	if err := sql.WriteWorkload(&sb, w); err != nil {
		t.Fatal(err)
	}
	return db, w, NewWorker(snap.Fork()), sb.String()
}

// do runs one request against the worker handler and decodes the JSON
// response into out (when non-nil), returning the status code.
func do(t *testing.T, wk *Worker, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	wk.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestWorkerInfo(t *testing.T) {
	db, _, wk, _ := workerFixture(t)
	var info InfoResponse
	if code := do(t, wk, http.MethodGet, "/v1/info", nil, &info); code != http.StatusOK {
		t.Fatalf("info: status %d", code)
	}
	if info.Protocol != protocolVersion {
		t.Errorf("protocol = %d, want %d", info.Protocol, protocolVersion)
	}
	if want := engine.FingerprintString(db.Fingerprint()); info.Fingerprint != want {
		t.Errorf("fingerprint = %s, want %s (fork must not change it)", info.Fingerprint, want)
	}
	if info.Workloads != 0 || info.Tables == 0 || info.DataBytes == 0 {
		t.Errorf("unexpected info: %+v", info)
	}
}

func TestWorkerRegisterIdempotentAndConflict(t *testing.T) {
	_, w, wk, text := workerFixture(t)
	req := RegisterWorkloadRequest{Name: "s/w", SQL: text}
	var first, second RegisterWorkloadResponse
	if code := do(t, wk, http.MethodPost, "/v1/workloads", req, &first); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if first.Queries != w.Len() {
		t.Errorf("echoed %d queries, workload has %d", first.Queries, w.Len())
	}
	if first.Templates == 0 {
		t.Error("expected deterministic compression to find templates")
	}
	// Same name, same text: idempotent.
	if code := do(t, wk, http.MethodPost, "/v1/workloads", req, &second); code != http.StatusOK {
		t.Fatalf("re-register: status %d", code)
	}
	if first != second {
		t.Errorf("re-registration changed the echo: %+v vs %+v", first, second)
	}
	// Same name, different text: a coordinator bug, refused.
	conflict := RegisterWorkloadRequest{Name: "s/w", SQL: "1|SELECT l_orderkey FROM lineitem WHERE l_orderkey = 1\n"}
	if code := do(t, wk, http.MethodPost, "/v1/workloads", conflict, nil); code != http.StatusConflict {
		t.Errorf("conflicting re-registration: status %d, want 409", code)
	}
	if code := do(t, wk, http.MethodPost, "/v1/workloads", RegisterWorkloadRequest{}, nil); code != http.StatusBadRequest {
		t.Error("empty registration accepted")
	}
	if code := do(t, wk, http.MethodGet, "/v1/workloads", nil, nil); code != http.StatusMethodNotAllowed {
		t.Error("GET registration accepted")
	}
}

// TestWorkerCostMatchesLocal is the wire-determinism core: costs served
// over HTTP must be bit-identical to CostPrepared run locally on
// another fork of the same snapshot.
func TestWorkerCostMatchesLocal(t *testing.T) {
	db, w, wk, text := workerFixture(t)
	if code := do(t, wk, http.MethodPost, "/v1/workloads", RegisterWorkloadRequest{Name: "w", SQL: text}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}

	// Local twin: fresh fork, same deterministic preparation.
	local := db.Snapshot().Fork()
	opt := optimizer.New(local)
	pw, err := optimizer.PrepareWorkload(w, local)
	if err != nil {
		t.Fatal(err)
	}
	comp := wscale.Compress(w)

	cfg := []IndexDefWire{
		{Name: "ix_l", Table: "lineitem", Columns: []string{"l_orderkey"}},
		{Name: "ix_o", Table: "orders", Columns: []string{"o_orderkey", "o_orderdate"}},
	}
	queries := make([]int, w.Len())
	for i := range queries {
		queries[i] = i
	}
	atoms := []AtomWire{{Template: 0, Indexes: cfg}, {Template: 1, Indexes: nil}}
	var resp CostResponse
	creq := CostRequest{Workload: "w", Indexes: cfg, Queries: queries, Atoms: atoms}
	if code := do(t, wk, http.MethodPost, "/v1/cost", creq, &resp); code != http.StatusOK {
		t.Fatalf("cost: status %d", code)
	}
	if len(resp.QueryCosts) != len(queries) || len(resp.AtomCosts) != len(atoms) {
		t.Fatalf("response lengths %d/%d, want %d/%d", len(resp.QueryCosts), len(resp.AtomCosts), len(queries), len(atoms))
	}

	localDefs, err := resolveLocal(local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := optimizer.Configuration(localDefs)
	for i, qi := range queries {
		want, err := opt.CostPrepared(pw.Queries[qi], ocfg)
		if err != nil {
			t.Fatal(err)
		}
		if resp.QueryCosts[i] != want {
			t.Errorf("query %d: remote %v != local %v", qi, resp.QueryCosts[i], want)
		}
	}
	for i, a := range atoms {
		defs, err := resolveLocal(local, a.Indexes)
		if err != nil {
			t.Fatal(err)
		}
		acfg := optimizer.Configuration(defs)
		var want float64
		for _, mi := range comp.Templates[a.Template].Members {
			c, err := opt.CostPrepared(pw.Queries[mi], acfg)
			if err != nil {
				t.Fatal(err)
			}
			want += c * w.Queries[mi].Freq
		}
		if resp.AtomCosts[i] != want {
			t.Errorf("atom %d: remote %v != local %v", i, resp.AtomCosts[i], want)
		}
	}
}

// resolveLocal mirrors the worker's wire-def resolution on a local
// database.
func resolveLocal(db *engine.Database, wire []IndexDefWire) ([]catalog.IndexDef, error) {
	defs := make([]catalog.IndexDef, len(wire))
	for i, d := range wire {
		def, err := catalog.NewIndexDef(db.Schema(), d.Name, d.Table, d.Columns)
		if err != nil {
			return nil, err
		}
		defs[i] = def
	}
	return defs, nil
}

func TestWorkerCostErrors(t *testing.T) {
	_, w, wk, text := workerFixture(t)
	if code := do(t, wk, http.MethodPost, "/v1/workloads", RegisterWorkloadRequest{Name: "w", SQL: text}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	cases := []struct {
		name string
		req  CostRequest
		want int
	}{
		{"unknown workload", CostRequest{Workload: "nope", Queries: []int{0}}, http.StatusNotFound},
		{"query out of range", CostRequest{Workload: "w", Queries: []int{w.Len()}}, http.StatusBadRequest},
		{"negative query", CostRequest{Workload: "w", Queries: []int{-1}}, http.StatusBadRequest},
		{"template out of range", CostRequest{Workload: "w", Atoms: []AtomWire{{Template: 1 << 20}}}, http.StatusBadRequest},
		{"unknown table", CostRequest{Workload: "w", Queries: []int{0},
			Indexes: []IndexDefWire{{Name: "ix", Table: "no_such_table", Columns: []string{"c"}}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := do(t, wk, http.MethodPost, "/v1/cost", tc.req, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}
	// Malformed body and wrong method.
	req := httptest.NewRequest(http.MethodPost, "/v1/cost", strings.NewReader("not json"))
	rec := httptest.NewRecorder()
	wk.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", rec.Code)
	}
	if code := do(t, wk, http.MethodGet, "/v1/cost", nil, nil); code != http.StatusMethodNotAllowed {
		t.Error("GET cost accepted")
	}
}
