package sql

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"indexmerge/internal/catalog"
)

// WorkloadQuery is one workload entry: a query and its frequency
// (weight). Frequencies arise from log compression and from business
// knowledge about how often a query runs.
type WorkloadQuery struct {
	Stmt *SelectStmt
	Freq float64
}

// Workload is the set of queries the index-merging algorithm optimizes
// for (paper §3.1: "A workload W of queries {Q1, Q2, ... QP}").
type Workload struct {
	Queries []WorkloadQuery

	// byText indexes Queries by canonical text so Add can fold
	// duplicates. Rebuilt lazily whenever it disagrees with Queries, so
	// zero-value and literal-constructed workloads keep working.
	byText map[string]int
}

// Add folds the query into the workload: a statement whose canonical
// text already appears has the frequency (minimum 1) added to the
// existing entry instead of being appended — and costed — twice.
func (w *Workload) Add(stmt *SelectStmt, freq float64) {
	if freq <= 0 {
		freq = 1
	}
	if w.byText == nil || len(w.byText) != len(w.Queries) {
		w.byText = make(map[string]int, len(w.Queries)+1)
		for i, q := range w.Queries {
			text := q.Stmt.String()
			if _, ok := w.byText[text]; !ok {
				w.byText[text] = i
			}
		}
	}
	text := stmt.String()
	if i, ok := w.byText[text]; ok {
		w.Queries[i].Freq += freq
		return
	}
	w.byText[text] = len(w.Queries)
	w.Queries = append(w.Queries, WorkloadQuery{Stmt: stmt, Freq: freq})
}

// Len returns the number of (distinct) workload entries.
func (w *Workload) Len() int { return len(w.Queries) }

// TotalFreq returns the summed statement frequency — the number of
// statements the workload represents, counting folded duplicates.
func (w *Workload) TotalFreq() float64 {
	var sum float64
	for _, q := range w.Queries {
		sum += q.Freq
	}
	return sum
}

// TablesReferenced returns all tables any query touches, sorted.
func (w *Workload) TablesReferenced() []string {
	seen := make(map[string]bool)
	for _, q := range w.Queries {
		for _, t := range q.Stmt.TablesReferenced() {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Compress applies the paper's simplest workload compression (§3.5.3):
// syntactically identical queries collapse into one entry with summed
// frequency. Canonical String() rendering makes identity a string test.
func (w *Workload) Compress() *Workload {
	byText := make(map[string]int)
	out := &Workload{}
	for _, q := range w.Queries {
		text := q.Stmt.String()
		if i, ok := byText[text]; ok {
			out.Queries[i].Freq += q.Freq
			continue
		}
		byText[text] = len(out.Queries)
		out.Queries = append(out.Queries, q)
	}
	return out
}

// TopK keeps the k most expensive queries by the supplied per-query
// cost function — the second compression technique from §3.5.3. The
// retained entries keep their original order.
func (w *Workload) TopK(k int, cost func(*SelectStmt) float64) *Workload {
	if k >= len(w.Queries) {
		cp := &Workload{Queries: append([]WorkloadQuery(nil), w.Queries...)}
		return cp
	}
	type scored struct {
		idx  int
		cost float64
	}
	all := make([]scored, len(w.Queries))
	for i, q := range w.Queries {
		all[i] = scored{idx: i, cost: cost(q.Stmt) * q.Freq}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].cost > all[j].cost })
	keep := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		keep[all[i].idx] = true
	}
	out := &Workload{}
	for i, q := range w.Queries {
		if keep[i] {
			out.Queries = append(out.Queries, q)
		}
	}
	return out
}

// ParseWorkload reads a workload file: one query per line (blank lines
// and -- comments ignored), optionally prefixed by "<freq>|". Queries
// are resolved against the schema.
func ParseWorkload(r io.Reader, sc *catalog.Schema) (*Workload, error) {
	w := &Workload{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		freq := 1.0
		if i := strings.Index(line, "|"); i > 0 {
			var f float64
			if _, err := fmt.Sscanf(line[:i], "%g", &f); err == nil && f > 0 {
				freq = f
				line = strings.TrimSpace(line[i+1:])
			}
		}
		stmt, err := ParseSelect(line)
		if err != nil {
			return nil, fmt.Errorf("workload line %d: %w", lineNo, err)
		}
		if err := stmt.Resolve(sc); err != nil {
			return nil, fmt.Errorf("workload line %d: %w", lineNo, err)
		}
		w.Add(stmt, freq)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteWorkload renders the workload in ParseWorkload's format.
func WriteWorkload(w io.Writer, wl *Workload) error {
	for _, q := range wl.Queries {
		var line string
		if q.Freq != 1 {
			line = fmt.Sprintf("%g|%s\n", q.Freq, q.Stmt.String())
		} else {
			line = q.Stmt.String() + "\n"
		}
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}
