package sql

import (
	"fmt"
	"strconv"
	"strings"

	"indexmerge/internal/value"
)

// Parse parses one statement (SELECT or INSERT).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.peekKeyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("sql: expected SELECT, INSERT or DELETE, got %q", p.peek().text)
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

// ParseSelect parses a single SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q at offset %d", kw, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) peekSymbol(sym string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peekSymbol(sym) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, got %q at offset %d", sym, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %q at offset %d", t.text, t.pos)
	}
	p.pos++
	return t.text, nil
}

// parseColumnRef parses ident [ '.' ident ].
func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Column: second}, nil
	}
	return ColumnRef{Column: first}, nil
}

var aggKeywords = map[string]AggFunc{
	"COUNT": AggCount,
	"SUM":   AggSum,
	"AVG":   AggAvg,
	"MIN":   AggMin,
	"MAX":   AggMax,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, t)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if err := p.parseConjunction(stmt); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggKeywords[strings.ToUpper(t.text)]; ok && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // agg name and '('
			if agg == AggCount && p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCountStar}, nil
			}
			col, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: col}, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

// parseConjunction parses term (AND term)*, where a term is either a
// predicate (column=column comparisons classify as joins), a
// parenthesized OR disjunction, or — when the whole clause is one
// disjunction — a bare pred OR pred chain. OR mixed with AND must be
// parenthesized; there is no operator-precedence climbing.
func (p *parser) parseConjunction(stmt *SelectStmt) error {
	for first := true; ; first = false {
		if p.peekSymbol("(") {
			pred, err := p.parseDisjunctionGroup()
			if err != nil {
				return err
			}
			stmt.Where = append(stmt.Where, pred)
		} else {
			nWhere := len(stmt.Where)
			if err := p.parsePredicate(stmt); err != nil {
				return err
			}
			if p.peekKeyword("OR") {
				if !first || len(stmt.Where) != nWhere+1 {
					return fmt.Errorf("sql: parenthesize OR disjunctions mixed with AND or joins at offset %d", p.peek().pos)
				}
				disj := []Predicate{stmt.Where[nWhere]}
				stmt.Where = stmt.Where[:nWhere]
				for p.acceptKeyword("OR") {
					d, err := p.parseSimplePredicate()
					if err != nil {
						return err
					}
					disj = append(disj, d)
				}
				stmt.Where = append(stmt.Where, Predicate{Op: OpOr, Or: disj})
				if p.peekKeyword("AND") {
					return fmt.Errorf("sql: parenthesize OR disjunctions mixed with AND at offset %d", p.peek().pos)
				}
			}
		}
		if !p.acceptKeyword("AND") {
			return nil
		}
	}
}

// parseDisjunctionGroup parses '(' pred (OR pred)* ')'. A single
// parenthesized predicate collapses to the predicate itself, so the
// canonical printer (which parenthesizes only true disjunctions)
// round-trips.
func (p *parser) parseDisjunctionGroup() (Predicate, error) {
	if err := p.expectSymbol("("); err != nil {
		return Predicate{}, err
	}
	var disj []Predicate
	for {
		d, err := p.parseSimplePredicate()
		if err != nil {
			return Predicate{}, err
		}
		disj = append(disj, d)
		if !p.acceptKeyword("OR") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return Predicate{}, err
	}
	if len(disj) == 1 {
		return disj[0], nil
	}
	return Predicate{Op: OpOr, Or: disj}, nil
}

// parseSimplePredicate parses one column-vs-literal restriction
// (comparison, BETWEEN, or IN). Join predicates are rejected — the
// callers use it inside OR disjunctions, which restrict one table.
func (p *parser) parseSimplePredicate() (Predicate, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: OpBetween, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		vals, err := p.parseInList()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: OpIn, Vals: vals}, nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return Predicate{}, err
	}
	if p.peek().kind == tokIdent && !p.peekLiteralKeyword() {
		return Predicate{}, fmt.Errorf("sql: join predicates cannot appear in OR disjunctions (offset %d)", p.peek().pos)
	}
	val, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Col: col, Op: op, Val: val}, nil
}

// parseInList parses '(' literal (',' literal)* ')'.
func (p *parser) parseInList() ([]value.Value, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var vals []value.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return vals, nil
}

func (p *parser) parsePredicate(stmt *SelectStmt) error {
	col, err := p.parseColumnRef()
	if err != nil {
		return err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return err
		}
		stmt.Where = append(stmt.Where, Predicate{Col: col, Op: OpBetween, Lo: lo, Hi: hi})
		return nil
	}
	if p.acceptKeyword("IN") {
		vals, err := p.parseInList()
		if err != nil {
			return err
		}
		stmt.Where = append(stmt.Where, Predicate{Col: col, Op: OpIn, Vals: vals})
		return nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return err
	}
	// Column on the right side means a join predicate.
	if p.peek().kind == tokIdent && !p.peekLiteralKeyword() {
		right, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		if op != OpEq {
			return fmt.Errorf("sql: only equality joins are supported, got %s", op)
		}
		stmt.Joins = append(stmt.Joins, JoinPred{Left: col, Right: right})
		return nil
	}
	val, err := p.parseLiteral()
	if err != nil {
		return err
	}
	stmt.Where = append(stmt.Where, Predicate{Col: col, Op: op, Val: val})
	return nil
}

// peekLiteralKeyword reports whether the next identifier token is a
// literal-introducing keyword (DATE or NULL) rather than a column name.
func (p *parser) peekLiteralKeyword() bool {
	t := p.peek()
	return t.kind == tokIdent && (strings.EqualFold(t.text, "DATE") || strings.EqualFold(t.text, "NULL"))
}

func (p *parser) parseCompareOp() (CompareOp, error) {
	t := p.peek()
	if t.kind != tokSymbol {
		return 0, fmt.Errorf("sql: expected comparison operator, got %q at offset %d", t.text, t.pos)
	}
	var op CompareOp
	switch t.text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return 0, fmt.Errorf("sql: unknown operator %q at offset %d", t.text, t.pos)
	}
	p.pos++
	return op, nil
}

// parseLiteral parses a number, string, NULL, or DATE(n).
func (p *parser) parseLiteral() (value.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("sql: bad number %q: %v", t.text, err)
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sql: bad number %q: %v", t.text, err)
		}
		return value.NewInt(i), nil
	case t.kind == tokString:
		p.pos++
		return value.NewString(t.text), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NULL"):
		p.pos++
		return value.NewNull(), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "DATE"):
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return value.Value{}, err
		}
		n := p.peek()
		if n.kind != tokNumber {
			return value.Value{}, fmt.Errorf("sql: DATE() needs a day number at offset %d", n.pos)
		}
		p.pos++
		day, err := strconv.ParseInt(n.text, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("sql: bad day number %q: %v", n.text, err)
		}
		if err := p.expectSymbol(")"); err != nil {
			return value.Value{}, err
		}
		return value.NewDate(day), nil
	}
	return value.Value{}, fmt.Errorf("sql: expected literal, got %q at offset %d", t.text, t.pos)
}

// parseDelete parses DELETE FROM table [WHERE conj]. Join predicates
// are rejected — deletes target one table.
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		// Reuse the SELECT predicate machinery via a scratch statement.
		scratch := &SelectStmt{From: []string{table}}
		if err := p.parseConjunction(scratch); err != nil {
			return nil, err
		}
		if len(scratch.Joins) > 0 {
			return nil, fmt.Errorf("sql: DELETE cannot contain join predicates")
		}
		stmt.Where = scratch.Where
	}
	return stmt, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row value.Row
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}
