// Package sql defines the query language subset the engine speaks:
// single-block SELECT statements with conjunctive predicates,
// equi-joins, grouping, ordering and aggregation, plus INSERT for the
// maintenance experiments. It includes a lexer, parser, resolver and
// printer so workloads can live in plain-text files the way the
// paper's server-side workload logs do.
package sql

import (
	"fmt"
	"sort"
	"strings"

	"indexmerge/internal/catalog"
	"indexmerge/internal/value"
)

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// CompareOp enumerates predicate comparison operators.
type CompareOp int

// Comparison operators. Between is represented by its own Predicate
// fields rather than an operator pair.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn // Col IN (Vals...)
	OpOr // disjunction of the Or predicates, all on one table
)

// String renders the operator in SQL syntax.
func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	case OpOr:
		return "OR"
	}
	return "?"
}

// IsEquality reports whether the operator is =.
func (o CompareOp) IsEquality() bool { return o == OpEq }

// IsRange reports whether the operator restricts a contiguous range
// usable by an index seek (<, <=, >, >=, BETWEEN).
func (o CompareOp) IsRange() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpBetween:
		return true
	}
	return false
}

// Predicate is a restriction: Col Op Val, Col BETWEEN Lo AND Hi,
// Col IN (Vals...), or — for OpOr — a disjunction of simple predicates
// that must all restrict columns of one table. A disjunction is one
// Predicate so conjunction-shaped plumbing (residual lists, filters,
// selectivity products) treats it as a single opaque condition.
type Predicate struct {
	Col  ColumnRef
	Op   CompareOp
	Val  value.Value   // for non-BETWEEN ops
	Lo   value.Value   // BETWEEN lower bound
	Hi   value.Value   // BETWEEN upper bound
	Vals []value.Value // IN list members
	Or   []Predicate   // OpOr disjuncts (simple or IN, never nested OR)
}

// String renders the predicate.
func (p Predicate) String() string {
	var b strings.Builder
	p.render(&b, false)
	return b.String()
}

// render writes the predicate's canonical text. With abstract set,
// literal constants render as '?', and an IN list collapses to a
// single '?' regardless of arity: IN members differ only in constants,
// so which indexes are relevant (and which union arms exist) depends
// only on the column — all arities belong to one template.
func (p Predicate) render(b *strings.Builder, abstract bool) {
	lit := func(v value.Value) string {
		if abstract {
			return "?"
		}
		return v.String()
	}
	switch p.Op {
	case OpBetween:
		fmt.Fprintf(b, "%s BETWEEN %s AND %s", p.Col, lit(p.Lo), lit(p.Hi))
	case OpIn:
		b.WriteString(p.Col.String())
		b.WriteString(" IN (")
		if abstract {
			b.WriteString("?")
		} else {
			for i, v := range p.Vals {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
		}
		b.WriteString(")")
	case OpOr:
		b.WriteString("(")
		for i, d := range p.Or {
			if i > 0 {
				b.WriteString(" OR ")
			}
			d.render(b, abstract)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "%s %s %s", p.Col, p.Op, lit(p.Val))
	}
}

// Disjuncts normalizes a disjunctive predicate into its member
// predicates: IN lists expand to one equality per value, and IN
// members inside an OR expand the same way. Simple predicates return
// nil. The result never contains OpIn or OpOr — this is the
// normalization the optimizer's union paths and the reference
// evaluator both consume.
func (p Predicate) Disjuncts() []Predicate {
	switch p.Op {
	case OpIn:
		out := make([]Predicate, len(p.Vals))
		for i, v := range p.Vals {
			out[i] = Predicate{Col: p.Col, Op: OpEq, Val: v}
		}
		return out
	case OpOr:
		var out []Predicate
		for _, d := range p.Or {
			if d.Op == OpIn {
				out = append(out, d.Disjuncts()...)
			} else {
				out = append(out, d)
			}
		}
		return out
	}
	return nil
}

// JoinPred is an equality join between two columns of different tables.
type JoinPred struct {
	Left  ColumnRef
	Right ColumnRef
}

// String renders the join predicate.
func (j JoinPred) String() string { return j.Left.String() + " = " + j.Right.String() }

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions; AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the aggregate keyword.
func (a AggFunc) String() string {
	switch a {
	case AggCount, AggCountStar:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return ""
}

// SelectItem is one output expression: a column or an aggregate.
type SelectItem struct {
	Agg AggFunc
	Col ColumnRef // unused for AggCountStar
}

// String renders the item.
func (s SelectItem) String() string {
	switch s.Agg {
	case AggNone:
		return s.Col.String()
	case AggCountStar:
		return "COUNT(*)"
	default:
		return fmt.Sprintf("%s(%s)", s.Agg, s.Col)
	}
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// String renders the order key.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// SelectStmt is a single-block query:
//
//	SELECT items FROM tables WHERE joins AND predicates
//	GROUP BY cols ORDER BY keys
type SelectStmt struct {
	Select  []SelectItem
	From    []string
	Joins   []JoinPred
	Where   []Predicate
	GroupBy []ColumnRef
	OrderBy []OrderItem
}

// InsertStmt appends literal rows to a table.
type InsertStmt struct {
	Table string
	Rows  []value.Row
}

// DeleteStmt removes the rows of one table matching a conjunction of
// simple predicates (no joins).
type DeleteStmt struct {
	Table string
	Where []Predicate
}

// Resolve validates the delete's table and predicate columns.
func (s *DeleteStmt) Resolve(sc *catalog.Schema) error {
	t, ok := sc.Table(s.Table)
	if !ok {
		return fmt.Errorf("sql: unknown table %q", s.Table)
	}
	check := func(c *ColumnRef) error {
		if c.Table == "" {
			c.Table = s.Table
		}
		if c.Table != s.Table {
			return fmt.Errorf("sql: DELETE predicate references table %q", c.Table)
		}
		if !t.HasColumn(c.Column) {
			return fmt.Errorf("sql: unknown column %s", c)
		}
		return nil
	}
	for i := range s.Where {
		p := &s.Where[i]
		if p.Op == OpOr {
			for j := range p.Or {
				if err := check(&p.Or[j].Col); err != nil {
					return err
				}
			}
			p.Col = ColumnRef{Table: s.Table}
			continue
		}
		if err := check(&p.Col); err != nil {
			return err
		}
	}
	return nil
}

// Statement is any parsed statement.
type Statement interface{ isStatement() }

func (*SelectStmt) isStatement() {}
func (*InsertStmt) isStatement() {}
func (*DeleteStmt) isStatement() {}

// String renders the query as canonical SQL text. Canonical rendering
// makes syntactic workload compression (paper §3.5.3) a string-equality
// test.
func (s *SelectStmt) String() string { return s.render(false) }

// Fingerprint returns the canonical rendering with every literal
// constant abstracted to '?'. Two queries share a fingerprint exactly
// when they differ only in predicate constants, so fingerprint-equal
// queries reference the same tables, columns and operators — they
// share candidate indexes, relevant-index sets and access-path shapes,
// which is the equivalence template-level workload compression
// clusters on.
func (s *SelectStmt) Fingerprint() string { return s.render(true) }

func (s *SelectStmt) render(abstract bool) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.From, ", "))
	var conds []string
	for _, j := range s.Joins {
		conds = append(conds, j.String())
	}
	for _, p := range s.Where {
		var pb strings.Builder
		p.render(&pb, abstract)
		conds = append(conds, pb.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(s.GroupBy) > 0 {
		cols := make([]string, len(s.GroupBy))
		for i, c := range s.GroupBy {
			cols[i] = c.String()
		}
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(cols, ", "))
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = k.String()
		}
		b.WriteString(" ORDER BY ")
		b.WriteString(strings.Join(keys, ", "))
	}
	return b.String()
}

// TablesReferenced returns the distinct tables in FROM order.
func (s *SelectStmt) TablesReferenced() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range s.From {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// ColumnsOf returns the distinct columns of the given table referenced
// anywhere in the query (select list, predicates, joins, grouping,
// ordering), sorted by name. This is the per-table "vertical slice" a
// covering index must contain.
func (s *SelectStmt) ColumnsOf(table string) []string {
	set := make(map[string]bool)
	add := func(c ColumnRef) {
		if c.Table == table && c.Column != "" {
			set[c.Column] = true
		}
	}
	for _, it := range s.Select {
		if it.Agg != AggCountStar {
			add(it.Col)
		}
	}
	for _, p := range s.Where {
		add(p.Col)
		for _, d := range p.Or {
			add(d.Col)
		}
	}
	for _, j := range s.Joins {
		add(j.Left)
		add(j.Right)
	}
	for _, g := range s.GroupBy {
		add(g)
	}
	for _, o := range s.OrderBy {
		add(o.Col)
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// PredicatesOn returns the restriction predicates on the given table.
func (s *SelectStmt) PredicatesOn(table string) []Predicate {
	var out []Predicate
	for _, p := range s.Where {
		if p.Col.Table == table {
			out = append(out, p)
		}
	}
	return out
}

// JoinColumnsOf returns this table's columns that participate in joins.
func (s *SelectStmt) JoinColumnsOf(table string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, j := range s.Joins {
		for _, c := range []ColumnRef{j.Left, j.Right} {
			if c.Table == table && !seen[c.Column] {
				seen[c.Column] = true
				out = append(out, c.Column)
			}
		}
	}
	return out
}

// Resolve qualifies unqualified column references against the schema,
// validates every reference, and normalizes join predicates so that
// restriction predicates comparing two columns of different tables are
// classified as joins. It mutates the statement in place.
func (s *SelectStmt) Resolve(sc *catalog.Schema) error {
	if len(s.From) == 0 {
		return fmt.Errorf("sql: query has no FROM tables")
	}
	for _, t := range s.From {
		if _, ok := sc.Table(t); !ok {
			return fmt.Errorf("sql: unknown table %q", t)
		}
	}
	resolve := func(c *ColumnRef) error {
		if c.Table != "" {
			t, ok := sc.Table(c.Table)
			if !ok {
				return fmt.Errorf("sql: unknown table %q in %s", c.Table, c)
			}
			if !t.HasColumn(c.Column) {
				return fmt.Errorf("sql: unknown column %s", c)
			}
			found := false
			for _, ft := range s.From {
				if ft == c.Table {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sql: column %s references table not in FROM", c)
			}
			return nil
		}
		var owner string
		for _, ft := range s.From {
			t, _ := sc.Table(ft)
			if t != nil && t.HasColumn(c.Column) {
				if owner != "" {
					return fmt.Errorf("sql: ambiguous column %q (in %q and %q)", c.Column, owner, ft)
				}
				owner = ft
			}
		}
		if owner == "" {
			return fmt.Errorf("sql: unknown column %q", c.Column)
		}
		c.Table = owner
		return nil
	}
	for i := range s.Select {
		if s.Select[i].Agg == AggCountStar {
			continue
		}
		if err := resolve(&s.Select[i].Col); err != nil {
			return err
		}
	}
	for i := range s.Where {
		p := &s.Where[i]
		if p.Op == OpOr {
			if len(p.Or) < 2 {
				return fmt.Errorf("sql: OR predicate needs at least two disjuncts")
			}
			for j := range p.Or {
				d := &p.Or[j]
				if d.Op == OpOr {
					return fmt.Errorf("sql: nested OR predicates are not supported")
				}
				if err := resolve(&d.Col); err != nil {
					return err
				}
				if d.Col.Table != p.Or[0].Col.Table {
					return fmt.Errorf("sql: OR disjuncts must restrict one table (%q vs %q)",
						p.Or[0].Col.Table, d.Col.Table)
				}
			}
			// The parent carries the common table so PredicatesOn and
			// per-table planning see the disjunction as one predicate.
			p.Col = ColumnRef{Table: p.Or[0].Col.Table}
			continue
		}
		if err := resolve(&p.Col); err != nil {
			return err
		}
	}
	for i := range s.Joins {
		if err := resolve(&s.Joins[i].Left); err != nil {
			return err
		}
		if err := resolve(&s.Joins[i].Right); err != nil {
			return err
		}
		if s.Joins[i].Left.Table == s.Joins[i].Right.Table {
			return fmt.Errorf("sql: self-join predicate %s not supported", s.Joins[i])
		}
	}
	for i := range s.GroupBy {
		if err := resolve(&s.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range s.OrderBy {
		if err := resolve(&s.OrderBy[i].Col); err != nil {
			return err
		}
	}
	return nil
}
