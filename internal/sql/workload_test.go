package sql

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWorkloadAddAndLen(t *testing.T) {
	w := &Workload{}
	stmt := parseOK(t, "SELECT a FROM t")
	w.Add(stmt, 0) // clamps to 1
	w.Add(stmt, 2.5)
	// The duplicate folds into the first entry instead of being costed
	// twice.
	if w.Len() != 1 {
		t.Errorf("Len = %d, want 1", w.Len())
	}
	if w.Queries[0].Freq != 3.5 {
		t.Errorf("folded freq = %v, want 3.5", w.Queries[0].Freq)
	}
	w.Add(parseOK(t, "SELECT b FROM t"), 1)
	if w.Len() != 2 {
		t.Errorf("distinct query did not append: Len = %d", w.Len())
	}
}

func TestWorkloadAddFoldsIntoLiteralWorkload(t *testing.T) {
	// Add must fold against entries that were constructed literally,
	// without ever going through Add.
	w := &Workload{Queries: []WorkloadQuery{{Stmt: parseOK(t, "SELECT a FROM t"), Freq: 2}}}
	w.Add(parseOK(t, "SELECT a FROM t"), 3)
	if w.Len() != 1 || w.Queries[0].Freq != 5 {
		t.Errorf("Len = %d, freq = %v; want 1, 5", w.Len(), w.Queries[0].Freq)
	}
}

func TestWorkloadCompress(t *testing.T) {
	// Build duplicates literally: Add folds them on its own, but
	// Compress must also handle workloads assembled by hand.
	w := &Workload{Queries: []WorkloadQuery{
		{Stmt: parseOK(t, "SELECT a FROM t WHERE a = 1"), Freq: 1},
		{Stmt: parseOK(t, "SELECT a FROM t WHERE a = 2"), Freq: 1},
		{Stmt: parseOK(t, "SELECT a FROM t WHERE a = 1"), Freq: 3},
	}}
	c := w.Compress()
	if c.Len() != 2 {
		t.Fatalf("compressed Len = %d, want 2", c.Len())
	}
	if c.Queries[0].Freq != 4 {
		t.Errorf("merged freq = %v, want 4", c.Queries[0].Freq)
	}
	if w.Len() != 3 {
		t.Error("Compress mutated the original")
	}
}

func TestWorkloadTopK(t *testing.T) {
	w := &Workload{}
	for i := 0; i < 5; i++ {
		w.Add(parseOK(t, fmt.Sprintf("SELECT a FROM t WHERE a = %d", i)), 1)
	}
	// Cost by position: later queries are more expensive.
	idx := 0
	costs := map[*SelectStmt]float64{}
	for i, q := range w.Queries {
		costs[q.Stmt] = float64(i)
		_ = idx
	}
	top := w.TopK(2, func(s *SelectStmt) float64 { return costs[s] })
	if top.Len() != 2 {
		t.Fatalf("TopK = %d entries", top.Len())
	}
	if costs[top.Queries[0].Stmt] != 3 || costs[top.Queries[1].Stmt] != 4 {
		t.Errorf("TopK kept wrong queries")
	}
	// k larger than the workload keeps everything.
	if w.TopK(100, func(*SelectStmt) float64 { return 0 }).Len() != 5 {
		t.Error("TopK(100) dropped queries")
	}
}

func TestParseWriteWorkloadRoundTrip(t *testing.T) {
	s := resolveSchema(t)
	src := `-- comment line
SELECT a FROM t WHERE a = 1

2|SELECT b FROM t
SELECT t.a, u.c FROM t, u WHERE t.a = u.c
`
	w, err := ParseWorkload(strings.NewReader(src), s)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("parsed %d queries", w.Len())
	}
	if w.Queries[1].Freq != 2 {
		t.Errorf("freq prefix: %v", w.Queries[1].Freq)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWorkload(&buf, s)
	if err != nil {
		t.Fatalf("reparse: %v\ntext:\n%s", err, buf.String())
	}
	if w2.Len() != w.Len() {
		t.Fatalf("round trip lost queries: %d vs %d", w2.Len(), w.Len())
	}
	for i := range w.Queries {
		if w.Queries[i].Stmt.String() != w2.Queries[i].Stmt.String() {
			t.Errorf("query %d diverged", i)
		}
		if w.Queries[i].Freq != w2.Queries[i].Freq {
			t.Errorf("freq %d diverged", i)
		}
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	s := resolveSchema(t)
	if _, err := ParseWorkload(strings.NewReader("SELECT zz FROM t\n"), s); err == nil {
		t.Error("unresolvable query accepted")
	}
	if _, err := ParseWorkload(strings.NewReader("NOT SQL AT ALL\n"), s); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWorkloadTablesReferenced(t *testing.T) {
	s := resolveSchema(t)
	w, err := ParseWorkload(strings.NewReader("SELECT a FROM t\nSELECT c FROM u\nSELECT a FROM t\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	got := w.TablesReferenced()
	if len(got) != 2 || got[0] != "t" || got[1] != "u" {
		t.Errorf("TablesReferenced = %v", got)
	}
}
