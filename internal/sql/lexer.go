package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string. Keywords are returned as tokIdent; the
// parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),.*=", rune(c)):
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		case c == '<':
			if l.peekAt(1) == '=' || l.peekAt(1) == '>' {
				l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[l.pos : l.pos+2], pos: l.pos})
				l.pos += 2
			} else {
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<", pos: l.pos})
				l.pos++
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.toks = append(l.toks, token{kind: tokSymbol, text: ">=", pos: l.pos})
				l.pos += 2
			} else {
				l.toks = append(l.toks, token{kind: tokSymbol, text: ">", pos: l.pos})
				l.pos++
			}
		case c == '!':
			if l.peekAt(1) == '=' {
				l.toks = append(l.toks, token{kind: tokSymbol, text: "<>", pos: l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected %q at offset %d", c, l.pos)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected %q at offset %d", c, l.pos)
		}
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.peekAt(1) == '-' {
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peekAt(1) == '\'' { // escaped quote
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at offset %d", start)
}
