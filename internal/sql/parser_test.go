package sql

import (
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/value"
)

func parseOK(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := parseOK(t, "SELECT a, b FROM t WHERE a = 5")
	if len(stmt.Select) != 2 || stmt.Select[0].Col.Column != "a" {
		t.Errorf("select list: %v", stmt.Select)
	}
	if len(stmt.From) != 1 || stmt.From[0] != "t" {
		t.Errorf("from: %v", stmt.From)
	}
	if len(stmt.Where) != 1 || stmt.Where[0].Op != OpEq || stmt.Where[0].Val.Int() != 5 {
		t.Errorf("where: %v", stmt.Where)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]CompareOp{
		"a = 1": OpEq, "a <> 1": OpNe, "a != 1": OpNe,
		"a < 1": OpLt, "a <= 1": OpLe, "a > 1": OpGt, "a >= 1": OpGe,
	}
	for cond, op := range cases {
		stmt := parseOK(t, "SELECT a FROM t WHERE "+cond)
		if stmt.Where[0].Op != op {
			t.Errorf("%q parsed op %v, want %v", cond, stmt.Where[0].Op, op)
		}
	}
}

func TestParseBetween(t *testing.T) {
	stmt := parseOK(t, "SELECT a FROM t WHERE a BETWEEN 3 AND 7 AND b = 'x'")
	if len(stmt.Where) != 2 {
		t.Fatalf("where: %v", stmt.Where)
	}
	p := stmt.Where[0]
	if p.Op != OpBetween || p.Lo.Int() != 3 || p.Hi.Int() != 7 {
		t.Errorf("between: %+v", p)
	}
	if stmt.Where[1].Val.Str() != "x" {
		t.Errorf("second pred: %+v", stmt.Where[1])
	}
}

func TestParseLiterals(t *testing.T) {
	stmt := parseOK(t, "SELECT a FROM t WHERE a = -3 AND b = 2.75 AND c = 'o''brien' AND d = DATE(123) AND e = NULL")
	vals := []value.Value{
		stmt.Where[0].Val, stmt.Where[1].Val, stmt.Where[2].Val, stmt.Where[3].Val, stmt.Where[4].Val,
	}
	if vals[0].Int() != -3 {
		t.Errorf("int literal: %v", vals[0])
	}
	if vals[1].Float() != 2.75 {
		t.Errorf("float literal: %v", vals[1])
	}
	if vals[2].Str() != "o'brien" {
		t.Errorf("string literal: %v", vals[2])
	}
	if vals[3].Kind() != value.Date || vals[3].Int() != 123 {
		t.Errorf("date literal: %v", vals[3])
	}
	if !vals[4].IsNull() {
		t.Errorf("null literal: %v", vals[4])
	}
}

func TestParseJoins(t *testing.T) {
	stmt := parseOK(t, "SELECT t.a FROM t, u WHERE t.a = u.b AND t.c = 5")
	if len(stmt.Joins) != 1 {
		t.Fatalf("joins: %v", stmt.Joins)
	}
	j := stmt.Joins[0]
	if j.Left.Table != "t" || j.Right.Table != "u" {
		t.Errorf("join: %v", j)
	}
	if len(stmt.Where) != 1 {
		t.Errorf("where: %v", stmt.Where)
	}
}

func TestParseAggregatesAndGrouping(t *testing.T) {
	stmt := parseOK(t, "SELECT a, COUNT(*), SUM(b), AVG(c), MIN(d), MAX(e), COUNT(f) FROM t GROUP BY a ORDER BY a DESC")
	wantAggs := []AggFunc{AggNone, AggCountStar, AggSum, AggAvg, AggMin, AggMax, AggCount}
	for i, want := range wantAggs {
		if stmt.Select[i].Agg != want {
			t.Errorf("item %d agg = %v, want %v", i, stmt.Select[i].Agg, want)
		}
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "a" {
		t.Errorf("group by: %v", stmt.GroupBy)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("order by: %v", stmt.OrderBy)
	}
}

func TestParseComments(t *testing.T) {
	stmt := parseOK(t, "SELECT a FROM t -- trailing comment\nWHERE a = 1")
	if len(stmt.Where) != 1 {
		t.Errorf("comment handling broke where: %v", stmt.Where)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"UPDATE t SET a = 1",
		"DELETE t",
		"DELETE FROM t WHERE",
		"DELETE FROM t WHERE a = b AND c = 1", // join predicate in DELETE
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a < b AND 1 = 1", // non-equality join
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t trailing",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a = DATE(x)",
		"SELECT SUM( FROM t",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := stmt.(*InsertStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Errorf("insert: %+v", ins)
	}
	if !ins.Rows[1][2].IsNull() {
		t.Errorf("null value: %v", ins.Rows[1][2])
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM t WHERE a = 1 AND b BETWEEN 2 AND 3")
	if err != nil {
		t.Fatal(err)
	}
	del, ok := stmt.(*DeleteStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if del.Table != "t" || len(del.Where) != 2 {
		t.Errorf("delete: %+v", del)
	}
	// No WHERE deletes everything.
	stmt, err = Parse("DELETE FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if del := stmt.(*DeleteStmt); len(del.Where) != 0 {
		t.Errorf("where: %v", del.Where)
	}
}

func TestDeleteResolve(t *testing.T) {
	s := resolveSchema(t)
	del := &DeleteStmt{Table: "t", Where: []Predicate{{Col: ColumnRef{Column: "a"}, Op: OpEq}}}
	if err := del.Resolve(s); err != nil {
		t.Fatal(err)
	}
	if del.Where[0].Col.Table != "t" {
		t.Error("column not qualified")
	}
	bad := &DeleteStmt{Table: "missing"}
	if err := bad.Resolve(s); err == nil {
		t.Error("unknown table accepted")
	}
	bad2 := &DeleteStmt{Table: "t", Where: []Predicate{{Col: ColumnRef{Table: "u", Column: "c"}, Op: OpEq}}}
	if err := bad2.Resolve(s); err == nil {
		t.Error("cross-table predicate accepted")
	}
	bad3 := &DeleteStmt{Table: "t", Where: []Predicate{{Col: ColumnRef{Column: "zz"}, Op: OpEq}}}
	if err := bad3.Resolve(s); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() must render canonical SQL that reparses to the same text.
	srcs := []string{
		"SELECT a, b FROM t WHERE a = 5",
		"SELECT t.a, SUM(u.b) FROM t, u WHERE t.a = u.a AND t.c BETWEEN 1 AND 2 GROUP BY t.a ORDER BY t.a",
		"SELECT COUNT(*) FROM t",
		"SELECT a FROM t WHERE b = 'x''y' ORDER BY a DESC",
		"SELECT a FROM t WHERE d >= DATE(8401)",
	}
	for _, src := range srcs {
		s1 := parseOK(t, src)
		text1 := s1.String()
		s2 := parseOK(t, text1)
		if text2 := s2.String(); text2 != text1 {
			t.Errorf("round trip diverged:\n  1: %s\n  2: %s", text1, text2)
		}
	}
}

func resolveSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	if err := s.AddTable(catalog.MustNewTable("t", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.String, Width: 8},
		{Name: "shared", Type: value.Int},
	})); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(catalog.MustNewTable("u", []catalog.Column{
		{Name: "c", Type: value.Int},
		{Name: "shared", Type: value.Int},
	})); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResolveQualifiesColumns(t *testing.T) {
	s := resolveSchema(t)
	stmt := parseOK(t, "SELECT a, c FROM t, u WHERE a = c")
	if err := stmt.Resolve(s); err != nil {
		t.Fatal(err)
	}
	if stmt.Select[0].Col.Table != "t" || stmt.Select[1].Col.Table != "u" {
		t.Errorf("resolution: %v", stmt.Select)
	}
	if len(stmt.Joins) != 1 || stmt.Joins[0].Left.Table != "t" || stmt.Joins[0].Right.Table != "u" {
		t.Errorf("join resolution: %v", stmt.Joins)
	}
}

func TestResolveErrors(t *testing.T) {
	s := resolveSchema(t)
	cases := []struct {
		src  string
		want string
	}{
		{"SELECT a FROM missing", "unknown table"},
		{"SELECT zz FROM t", "unknown column"},
		{"SELECT shared FROM t, u", "ambiguous"},
		{"SELECT u.c FROM t", "not in FROM"},
		{"SELECT t.zz FROM t", "unknown column"},
		{"SELECT t.a FROM t, u WHERE t.a = t.shared", "self-join"},
	}
	for _, c := range cases {
		stmt := parseOK(t, c.src)
		err := stmt.Resolve(s)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%q) = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestColumnsOfAndPredicatesOn(t *testing.T) {
	s := resolveSchema(t)
	stmt := parseOK(t, "SELECT t.a, COUNT(*) FROM t, u WHERE t.a = u.c AND t.b = 'x' GROUP BY t.a ORDER BY t.a")
	if err := stmt.Resolve(s); err != nil {
		t.Fatal(err)
	}
	cols := stmt.ColumnsOf("t")
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("ColumnsOf(t) = %v", cols)
	}
	if got := stmt.ColumnsOf("u"); len(got) != 1 || got[0] != "c" {
		t.Errorf("ColumnsOf(u) = %v", got)
	}
	preds := stmt.PredicatesOn("t")
	if len(preds) != 1 || preds[0].Col.Column != "b" {
		t.Errorf("PredicatesOn(t) = %v", preds)
	}
	if got := stmt.JoinColumnsOf("u"); len(got) != 1 || got[0] != "c" {
		t.Errorf("JoinColumnsOf(u) = %v", got)
	}
	if got := stmt.TablesReferenced(); len(got) != 2 {
		t.Errorf("TablesReferenced = %v", got)
	}
}
