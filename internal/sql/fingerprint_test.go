package sql

import (
	"strings"
	"testing"
)

// TestFingerprintAbstractsConstants: queries differing only in literal
// constants share a fingerprint; queries differing in structure don't.
func TestFingerprintAbstractsConstants(t *testing.T) {
	same := [][2]string{
		{"SELECT a FROM t WHERE a = 1", "SELECT a FROM t WHERE a = 99"},
		{"SELECT a FROM t WHERE a BETWEEN 1 AND 5", "SELECT a FROM t WHERE a BETWEEN 7 AND 9"},
		{"SELECT a FROM t WHERE a IN (1, 2)", "SELECT a FROM t WHERE a IN (3, 4, 5)"},
		{"SELECT a FROM t WHERE (a = 1 OR b = 2)", "SELECT a FROM t WHERE (a = 7 OR b = 8)"},
		{
			"SELECT t.a, u.c FROM t, u WHERE t.a = u.c AND t.b < 3",
			"SELECT t.a, u.c FROM t, u WHERE t.a = u.c AND t.b < 42",
		},
	}
	for _, pair := range same {
		a, b := parseOK(t, pair[0]), parseOK(t, pair[1])
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("fingerprints differ:\n  %s -> %s\n  %s -> %s",
				pair[0], a.Fingerprint(), pair[1], b.Fingerprint())
		}
	}
	diff := [][2]string{
		{"SELECT a FROM t WHERE a = 1", "SELECT a FROM t WHERE b = 1"},
		{"SELECT a FROM t WHERE a = 1", "SELECT a FROM t WHERE a < 1"},
		{"SELECT a FROM t WHERE a = 1", "SELECT b FROM t WHERE a = 1"},
		{"SELECT a FROM t WHERE (a = 1 OR b = 2)", "SELECT a FROM t WHERE (a = 1 OR a = 2)"},
	}
	for _, pair := range diff {
		a, b := parseOK(t, pair[0]), parseOK(t, pair[1])
		if a.Fingerprint() == b.Fingerprint() {
			t.Errorf("structurally different queries share fingerprint %q:\n  %s\n  %s",
				a.Fingerprint(), pair[0], pair[1])
		}
	}
}

// TestFingerprintINArity: IN lists collapse to a single '?' regardless
// of arity — index relevance depends only on the column.
func TestFingerprintINArity(t *testing.T) {
	a := parseOK(t, "SELECT a FROM t WHERE a IN (1, 2)")
	b := parseOK(t, "SELECT a FROM t WHERE a IN (1, 2, 3, 4)")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("IN arity leaked into fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if !strings.Contains(a.Fingerprint(), "IN (?)") {
		t.Errorf("IN fingerprint = %q, want collapsed IN (?)", a.Fingerprint())
	}
}

// TestFingerprintRoundTrip: the fingerprint is stable under a
// parse(String()) round trip, so reloading a workload from its
// canonical text never re-clusters templates.
func TestFingerprintRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT a, b FROM t WHERE a BETWEEN 2 AND 9 ORDER BY a",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE (a = 1 OR b < 2) GROUP BY a",
		"SELECT t.a, u.c FROM t, u WHERE t.a = u.c AND t.b >= 5",
	}
	for _, src := range srcs {
		stmt := parseOK(t, src)
		again, err := ParseSelect(stmt.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", stmt.String(), err)
		}
		if got, want := again.Fingerprint(), stmt.Fingerprint(); got != want {
			t.Errorf("round-trip fingerprint drifted:\n  %q\n  %q", want, got)
		}
	}
}

// TestFingerprintUnresolvedVsResolved: resolution qualifies column
// references, so fingerprints are computed on resolved statements;
// two resolved copies of the same text always agree.
func TestFingerprintResolvedStable(t *testing.T) {
	sc := resolveSchema(t)
	a, err := ParseSelect("SELECT a FROM t WHERE b = 3")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Resolve(sc); err != nil {
		t.Fatal(err)
	}
	b, err := ParseSelect(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Resolve(sc); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("resolved fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}
