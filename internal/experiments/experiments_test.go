package experiments

import (
	"os"
	"testing"
)

// smallLabs builds fast, reduced-scale labs shared by the tests in
// this file. Shapes (who wins, roughly by how much) are asserted, not
// absolute numbers.
func smallLabs(t testing.TB) []*Lab {
	t.Helper()
	labs, err := StandardLabs(LabOptions{Scale: 0.25, WorkloadQueries: 20, Seed: 3})
	if err != nil {
		t.Fatalf("StandardLabs: %v", err)
	}
	return labs
}

func TestSearchComparisonShapes(t *testing.T) {
	labs := smallLabs(t)
	rows, err := RunSearchComparison(labs, Fig5N, Fig5Constraint)
	if err != nil {
		t.Fatalf("RunSearchComparison: %v", err)
	}
	RenderSearchComparison(os.Stderr, rows)
	for _, r := range rows {
		// Figure 5 shape: Greedy-Cost-Opt close to Exhaustive; both
		// bounded by it; meaningful reduction somewhere.
		if r.GreedyOptReduction > r.ExhaustiveReduction+1e-9 {
			t.Errorf("%s: greedy (%v) beat exhaustive (%v) — exhaustive must dominate", r.Database, r.GreedyOptReduction, r.ExhaustiveReduction)
		}
		if r.ExhaustiveReduction-r.GreedyOptReduction > 0.15 {
			t.Errorf("%s: greedy trails exhaustive by %.1f points (paper: within a few points)", r.Database, 100*(r.ExhaustiveReduction-r.GreedyOptReduction))
		}
		// Figure 6 shape: greedy evaluates far fewer configurations.
		if r.ExhaustiveEvals > 0 && r.GreedyOptEvals > r.ExhaustiveEvals {
			t.Errorf("%s: greedy used more cost evaluations (%d) than exhaustive (%d)", r.Database, r.GreedyOptEvals, r.ExhaustiveEvals)
		}
		// Cost constraint honored.
		if r.FinalCostIncrease > Fig5Constraint+1e-6 {
			t.Errorf("%s: cost increase %v exceeds constraint %v", r.Database, r.FinalCostIncrease, Fig5Constraint)
		}
	}
}

func TestMergePairComparisonShapes(t *testing.T) {
	labs := smallLabs(t)
	rows, err := RunMergePairComparison(labs, Fig5N, Fig5Constraint)
	if err != nil {
		t.Fatalf("RunMergePairComparison: %v", err)
	}
	RenderMergePairComparison(os.Stderr, rows)
	var costTotal, synTotal float64
	for _, r := range rows {
		costTotal += r.CostReduction
		synTotal += r.SyntacticReduction
	}
	// Figure 7 shape: across databases, MergePair-Cost at least matches
	// MergePair-Syntactic (paper: substantially better).
	if costTotal < synTotal-1e-9 {
		t.Errorf("MergePair-Cost total reduction %.3f below MergePair-Syntactic %.3f", costTotal, synTotal)
	}
}

func TestMaintenanceComparisonShapes(t *testing.T) {
	labs := smallLabs(t)
	rows, err := RunMaintenanceComparison(labs[:1], []int{5, 10}, Fig8Constraint)
	if err != nil {
		t.Fatalf("RunMaintenanceComparison: %v", err)
	}
	RenderMaintenanceComparison(os.Stderr, rows)
	for _, r := range rows {
		if r.InitialCost <= 0 {
			t.Errorf("%s N=%d: no maintenance cost recorded", r.Database, r.N)
		}
		if r.MergedCost > r.InitialCost {
			t.Errorf("%s N=%d: merged maintenance (%d) above initial (%d)", r.Database, r.N, r.MergedCost, r.InitialCost)
		}
	}
}

func TestIntroExperiments(t *testing.T) {
	lab, err := NewTPCDLab(LabOptions{Scale: 0.5, Seed: 3})
	if err != nil {
		t.Fatalf("NewTPCDLab: %v", err)
	}
	q13, err := RunIntroQ1Q3(lab)
	if err != nil {
		t.Fatalf("RunIntroQ1Q3: %v", err)
	}
	RenderIntroQ1Q3(os.Stderr, q13)
	if q13.StorageReduction() < 0.15 || q13.StorageReduction() > 0.60 {
		t.Errorf("Q1/Q3 storage reduction %v far from paper's 38%%", q13.StorageReduction())
	}
	if q13.MaintenanceReduction() <= 0 {
		t.Errorf("Q1/Q3 maintenance reduction %v not positive (paper: 22%%)", q13.MaintenanceReduction())
	}
	if q13.QueryCostIncrease() < -1e-9 || q13.QueryCostIncrease() > 0.25 {
		t.Errorf("Q1/Q3 cost increase %v out of plausible range (paper: 3%%)", q13.QueryCostIncrease())
	}

	t17, err := RunIntroTPCD17(lab, 0.10)
	if err != nil {
		t.Fatalf("RunIntroTPCD17: %v", err)
	}
	RenderIntroTPCD17(os.Stderr, t17)
	if t17.MergedRatio >= t17.TunedRatio {
		t.Errorf("merging did not shrink index storage: %.2fx -> %.2fx", t17.TunedRatio, t17.MergedRatio)
	}
	if t17.CostIncrease > 0.10+1e-6 {
		t.Errorf("cost increase %v exceeds the 10%% constraint", t17.CostIncrease)
	}
}
