package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "col1", "longer-column", "c3")
	tb.Add("a", 0.5, 42)
	tb.Add("bbbb", "text", time.Duration(1500)*time.Millisecond)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Title", "col1", "longer-column", "0.5", "42", "bbbb", "1.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var sb strings.Builder
	RenderSearchComparison(&sb, []SearchComparisonRow{{
		Database: "X", ExhaustiveReduction: 0.3, GreedyOptReduction: 0.29,
		GreedyNoneReduction: 0.1, ExhaustiveTime: time.Second, GreedyOptTime: time.Millisecond,
	}})
	if !strings.Contains(sb.String(), "Figure 5") || !strings.Contains(sb.String(), "Figure 6") {
		t.Error("search comparison rendering incomplete")
	}
	sb.Reset()
	RenderMergePairComparison(&sb, []MergePairComparisonRow{{Database: "X"}})
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Error("merge-pair rendering incomplete")
	}
	sb.Reset()
	RenderMaintenanceComparison(&sb, []MaintenanceRow{{Database: "X", N: 5, InitialCost: 10, MergedCost: 5}})
	if !strings.Contains(sb.String(), "Figure 8") || !strings.Contains(sb.String(), "50.0%") {
		t.Errorf("maintenance rendering incomplete:\n%s", sb.String())
	}
	sb.Reset()
	RenderCostMinimal(&sb, []DualRow{{Database: "X", BudgetFrac: 0.5, MetBudget: true}})
	if !strings.Contains(sb.String(), "Cost-Minimal") {
		t.Error("dual rendering incomplete")
	}
	sb.Reset()
	RenderAblation(&sb, "T", []AblationRow{{Database: "X"}})
	RenderCompression(&sb, []CompressionRow{{Database: "X"}})
	if sb.Len() == 0 {
		t.Error("ablation/compression rendering empty")
	}
}

func TestMaintenanceRowReduction(t *testing.T) {
	r := MaintenanceRow{InitialCost: 100, MergedCost: 25}
	if r.Reduction() != 0.75 {
		t.Errorf("Reduction = %v", r.Reduction())
	}
	zero := MaintenanceRow{}
	if zero.Reduction() != 0 {
		t.Errorf("zero-cost Reduction = %v", zero.Reduction())
	}
}
