package experiments

import (
	"testing"
)

// TestExperimentsDeterministic: the whole pipeline (data generation,
// workload generation, tuning, merging) is seeded; the same options
// must reproduce identical figures run-to-run.
func TestExperimentsDeterministic(t *testing.T) {
	opt := LabOptions{Scale: 0.2, WorkloadQueries: 12, Seed: 5}
	run := func() []SearchComparisonRow {
		labs, err := StandardLabs(opt)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RunSearchComparison(labs, Fig5N, Fig5Constraint)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ExhaustiveReduction != b[i].ExhaustiveReduction ||
			a[i].GreedyOptReduction != b[i].GreedyOptReduction ||
			a[i].GreedyNoneReduction != b[i].GreedyNoneReduction ||
			a[i].FinalCostIncrease != b[i].FinalCostIncrease {
			t.Errorf("row %d differs across identical runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestExperimentsParallelismInvariant: the same figures with parallel
// candidate costing must match a fully serial run in every reported
// quantity except running time and optimizer-call counts.
func TestExperimentsParallelismInvariant(t *testing.T) {
	run := func(parallelism int) []SearchComparisonRow {
		labs, err := StandardLabs(LabOptions{Scale: 0.2, WorkloadQueries: 12, Seed: 5, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RunSearchComparison(labs, Fig5N, Fig5Constraint)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, parallel := run(1), run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ExhaustiveReduction != p.ExhaustiveReduction ||
			s.GreedyOptReduction != p.GreedyOptReduction ||
			s.GreedyNoneReduction != p.GreedyNoneReduction ||
			s.FinalCostIncrease != p.FinalCostIncrease ||
			s.NoCostCostIncrease != p.NoCostCostIncrease {
			t.Errorf("row %d figures differ between serial and parallel:\n  %+v\n  %+v", i, s, p)
		}
		if s.ExhaustiveEvals != p.ExhaustiveEvals || s.GreedyOptEvals != p.GreedyOptEvals {
			t.Errorf("row %d consumed evaluation counts differ: serial %d/%d, parallel %d/%d",
				i, s.GreedyOptEvals, s.ExhaustiveEvals, p.GreedyOptEvals, p.ExhaustiveEvals)
		}
	}
}

func TestCostMinimalSweepShapes(t *testing.T) {
	labs, err := StandardLabs(LabOptions{Scale: 0.2, WorkloadQueries: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunCostMinimal(labs[:1], 8, []float64{0.9, 0.6, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tighter budgets: storage non-increasing, cost non-decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].StorageFrac > rows[i-1].StorageFrac+1e-9 {
			t.Errorf("storage grew with tighter budget: %v -> %v", rows[i-1].StorageFrac, rows[i].StorageFrac)
		}
		if rows[i].CostIncrease < rows[i-1].CostIncrease-1e-9 {
			t.Errorf("cost shrank with tighter budget: %v -> %v", rows[i-1].CostIncrease, rows[i].CostIncrease)
		}
	}
	// A met budget must actually be met.
	for _, r := range rows {
		if r.MetBudget && r.StorageFrac > r.BudgetFrac+1e-9 {
			t.Errorf("budget %v claimed met at storage %v", r.BudgetFrac, r.StorageFrac)
		}
	}
}

func TestProjectionFigureVariant(t *testing.T) {
	labs, err := StandardLabs(LabOptions{Scale: 0.2, WorkloadQueries: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunSearchComparisonOpt(labs[:1], FigureOptions{N: 5, Constraint: 0.10, Projection: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GreedyOptReduction > r.ExhaustiveReduction+1e-9 {
			t.Errorf("%s: greedy beat exhaustive on projection workload", r.Database)
		}
		if r.GreedyOptReduction < -1e-9 {
			t.Errorf("%s: negative storage reduction %v", r.Database, r.GreedyOptReduction)
		}
		if r.FinalCostIncrease > 0.10+1e-6 {
			t.Errorf("%s: constraint violated: %v", r.Database, r.FinalCostIncrease)
		}
	}
}

func TestIntersectionAblationRuns(t *testing.T) {
	labs, err := StandardLabs(LabOptions{Scale: 0.2, WorkloadQueries: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunAblationIntersection(labs[:1], 5, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The optimizer must be restored afterwards.
	if labs[0].Opt.DisableIndexIntersection {
		t.Error("ablation left intersection disabled")
	}
}
