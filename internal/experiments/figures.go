package experiments

import (
	"fmt"
	"time"

	"indexmerge/internal/core"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// Paper parameter defaults (§4.3).
const (
	// Fig5Constraint is the Figure 5/6/7 cost constraint (10%).
	Fig5Constraint = 0.10
	// Fig8Constraint is the Figure 8 cost constraint (20%).
	Fig8Constraint = 0.20
	// Fig5N is the initial index count for Figures 5-7.
	Fig5N = 5
	// NoCostF and NoCostP are the No-Cost model thresholds that worked
	// best in the paper (f=60%, p=25%).
	NoCostF = 0.60
	NoCostP = 0.25
	// InsertPct is the batch-insert fraction for Figure 8 (1%).
	InsertPct = 0.01
)

// SearchComparisonRow holds one database's numbers for Figures 5 and 6.
type SearchComparisonRow struct {
	Database string

	ExhaustiveReduction float64
	GreedyOptReduction  float64
	GreedyNoneReduction float64

	ExhaustiveTime time.Duration
	GreedyOptTime  time.Duration
	GreedyNoneTime time.Duration

	// *Evals count constraint checks the search consumed; *OptCalls
	// count actual optimizer invocations the checker issued (§3.4.2's
	// expensive quantity). Cache hits keep the latter well below the
	// former.
	ExhaustiveEvals    int64
	GreedyOptEvals     int64
	ExhaustiveOptCalls int64
	GreedyOptOptCalls  int64

	// FinalCostIncrease is Greedy-Cost-Opt's achieved workload cost
	// increase over the initial configuration.
	FinalCostIncrease float64
	// NoCostCostIncrease is the cost increase Greedy-Cost-None actually
	// incurred — the No-Cost model never checks it (§3.5.1), so this
	// may exceed the constraint.
	NoCostCostIncrease float64
}

// setup prepares the shared experiment state for one lab: an initial
// configuration of n indexes over the complex workload, its cost, and
// seek-cost statistics.
type setup struct {
	lab      *Lab
	w        *sql.Workload
	initial  *core.Configuration
	baseCost float64
	seek     *core.SeekCosts
}

func newSetup(lab *Lab, w *sql.Workload, n int) (*setup, error) {
	defs, err := lab.InitialConfiguration(w, n)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("experiments: no initial indexes for %s", lab.Name)
	}
	initial := core.NewConfiguration(defs)
	baseCost, err := lab.WorkloadCost(w, defs)
	if err != nil {
		return nil, err
	}
	seek, err := core.ComputeSeekCosts(lab.Opt, w, initial)
	if err != nil {
		return nil, err
	}
	return &setup{lab: lab, w: w, initial: initial, baseCost: baseCost, seek: seek}, nil
}

func (s *setup) optChecker(constraint float64) *core.OptimizerChecker {
	c := core.NewOptimizerChecker(s.lab.Opt, s.w, s.baseCost, constraint)
	c.Parallelism = s.lab.Parallelism
	return c
}

// greedyOpts and exhaustiveOpts carry the lab's parallelism into the
// search strategies.
func (s *setup) greedyOpts() core.GreedyOptions {
	return core.GreedyOptions{Parallelism: s.lab.Parallelism}
}

func (s *setup) exhaustiveOpts() core.ExhaustiveOptions {
	return core.ExhaustiveOptions{Parallelism: s.lab.Parallelism}
}

// FigureOptions parameterizes the Figure 5-7 experiments. The paper
// generated both workload classes at 30 and 50 queries (§4.2.2); the
// class is selected here while the query count is fixed at lab
// construction.
type FigureOptions struct {
	N          int
	Constraint float64
	// Projection switches from the complex workload to the
	// projection-only one, where indexes act as covering indexes.
	Projection bool
}

func (o FigureOptions) workload(lab *Lab) *sql.Workload {
	if o.Projection {
		return lab.Projection
	}
	return lab.Complex
}

// RunSearchComparison produces the data behind Figures 5 and 6:
// Exhaustive, Greedy-Cost-Opt and Greedy-Cost-None on each database,
// complex workload, N initial indexes, the given cost constraint.
func RunSearchComparison(labs []*Lab, n int, constraint float64) ([]SearchComparisonRow, error) {
	return RunSearchComparisonOpt(labs, FigureOptions{N: n, Constraint: constraint})
}

// RunSearchComparisonOpt is RunSearchComparison with workload-class
// selection.
func RunSearchComparisonOpt(labs []*Lab, opt FigureOptions) ([]SearchComparisonRow, error) {
	n, constraint := opt.N, opt.Constraint
	var rows []SearchComparisonRow
	for _, lab := range labs {
		s, err := newSetup(lab, opt.workload(lab), n)
		if err != nil {
			return nil, err
		}
		mp := &core.MergePairCost{Seek: s.seek}

		exCheck := s.optChecker(constraint)
		exRes, err := core.Exhaustive(s.initial, mp, exCheck, lab.DB, s.exhaustiveOpts())
		if err != nil {
			return nil, err
		}

		goCheck := s.optChecker(constraint)
		goRes, err := core.GreedyWithOptions(s.initial, mp, goCheck, lab.DB, s.greedyOpts())
		if err != nil {
			return nil, err
		}

		gnCheck := &core.NoCostChecker{F: NoCostF, P: NoCostP, Tables: lab.DB}
		gnRes, err := core.GreedyWithOptions(s.initial, mp, gnCheck, lab.DB, s.greedyOpts())
		if err != nil {
			return nil, err
		}

		finalCost, err := lab.WorkloadCost(s.w, goRes.Final.Defs())
		if err != nil {
			return nil, err
		}
		noneCost, err := lab.WorkloadCost(s.w, gnRes.Final.Defs())
		if err != nil {
			return nil, err
		}
		rows = append(rows, SearchComparisonRow{
			Database:            lab.Name,
			ExhaustiveReduction: exRes.StorageReduction(),
			GreedyOptReduction:  goRes.StorageReduction(),
			GreedyNoneReduction: gnRes.StorageReduction(),
			ExhaustiveTime:      exRes.Elapsed,
			GreedyOptTime:       goRes.Elapsed,
			GreedyNoneTime:      gnRes.Elapsed,
			ExhaustiveEvals:     exRes.CostEvaluations,
			GreedyOptEvals:      goRes.CostEvaluations,
			ExhaustiveOptCalls:  exRes.OptimizerCalls,
			GreedyOptOptCalls:   goRes.OptimizerCalls,
			FinalCostIncrease:   finalCost/s.baseCost - 1,
			NoCostCostIncrease:  noneCost/s.baseCost - 1,
		})
	}
	return rows, nil
}

// MergePairComparisonRow holds one database's numbers for Figure 7.
type MergePairComparisonRow struct {
	Database            string
	ExhaustiveReduction float64 // MergePair-Exhaustive
	CostReduction       float64 // MergePair-Cost
	SyntacticReduction  float64 // MergePair-Syntactic
}

// RunMergePairComparison produces Figure 7: Greedy-Cost-Opt with each
// MergePair procedure.
func RunMergePairComparison(labs []*Lab, n int, constraint float64) ([]MergePairComparisonRow, error) {
	return RunMergePairComparisonOpt(labs, FigureOptions{N: n, Constraint: constraint})
}

// RunMergePairComparisonOpt is RunMergePairComparison with workload-
// class selection.
func RunMergePairComparisonOpt(labs []*Lab, opt FigureOptions) ([]MergePairComparisonRow, error) {
	n, constraint := opt.N, opt.Constraint
	var rows []MergePairComparisonRow
	for _, lab := range labs {
		s, err := newSetup(lab, opt.workload(lab), n)
		if err != nil {
			return nil, err
		}

		mpe := &core.MergePairExhaustive{Server: lab.Opt, W: s.w, Base: s.initial, MaxCols: 7}
		exRes, err := core.GreedyWithOptions(s.initial, mpe, s.optChecker(constraint), lab.DB, s.greedyOpts())
		if err != nil {
			return nil, err
		}

		mpc := &core.MergePairCost{Seek: s.seek}
		costRes, err := core.GreedyWithOptions(s.initial, mpc, s.optChecker(constraint), lab.DB, s.greedyOpts())
		if err != nil {
			return nil, err
		}

		mps := &core.MergePairSyntactic{Freq: core.LeadingColumnFrequencies(s.w)}
		synRes, err := core.GreedyWithOptions(s.initial, mps, s.optChecker(constraint), lab.DB, s.greedyOpts())
		if err != nil {
			return nil, err
		}

		rows = append(rows, MergePairComparisonRow{
			Database:            lab.Name,
			ExhaustiveReduction: exRes.StorageReduction(),
			CostReduction:       costRes.StorageReduction(),
			SyntacticReduction:  synRes.StorageReduction(),
		})
	}
	return rows, nil
}

// MaintenanceRow holds one (database, N) cell of Figure 8.
type MaintenanceRow struct {
	Database string
	N        int
	// InitialCost and MergedCost are maintenance page writes for the
	// 1% batch insert under each configuration.
	InitialCost int64
	MergedCost  int64
	// StorageReductionPct tracks the storage the merge saved.
	StorageReduction float64
	// IndexesBefore/After count configuration sizes.
	IndexesBefore, IndexesAfter int
}

// Reduction is the fractional maintenance-cost saving.
func (r MaintenanceRow) Reduction() float64 {
	if r.InitialCost == 0 {
		return 0
	}
	return 1 - float64(r.MergedCost)/float64(r.InitialCost)
}

// RunMaintenanceComparison produces Figure 8: for each database and
// each initial configuration size N, measure the page-write cost of
// inserting 1% of the two largest tables' rows under the initial and
// the Greedy-Cost-Opt merged configurations.
func RunMaintenanceComparison(labs []*Lab, ns []int, constraint float64) ([]MaintenanceRow, error) {
	var rows []MaintenanceRow
	for _, lab := range labs {
		targets := lab.TwoLargestTables()
		for _, n := range ns {
			s, err := newSetup(lab, lab.Complex, n)
			if err != nil {
				return nil, err
			}
			res, err := core.GreedyWithOptions(s.initial, &core.MergePairCost{Seek: s.seek}, s.optChecker(constraint), lab.DB, s.greedyOpts())
			if err != nil {
				return nil, err
			}

			if err := lab.DB.Materialize(s.initial.Defs()); err != nil {
				return nil, err
			}
			initCost, err := lab.BatchInsert(targets, InsertPct, lab.seed+int64(n))
			if err != nil {
				return nil, err
			}
			if err := lab.DB.Materialize(res.Final.Defs()); err != nil {
				return nil, err
			}
			mergedCost, err := lab.BatchInsert(targets, InsertPct, lab.seed+int64(n))
			if err != nil {
				return nil, err
			}
			lab.DB.DropAllIndexes()

			rows = append(rows, MaintenanceRow{
				Database:         lab.Name,
				N:                n,
				InitialCost:      initCost,
				MergedCost:       mergedCost,
				StorageReduction: res.StorageReduction(),
				IndexesBefore:    s.initial.Len(),
				IndexesAfter:     res.Final.Len(),
			})
		}
	}
	return rows, nil
}

// WorkloadCostOf is a small helper used by reports.
func WorkloadCostOf(lab *Lab, w *sql.Workload, cfg *core.Configuration) (float64, error) {
	return lab.Opt.WorkloadCost(w, optimizer.Configuration(cfg.Defs()))
}
