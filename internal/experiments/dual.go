package experiments

import (
	"io"

	"indexmerge/internal/core"
)

// DualRow reports one point of the Cost-Minimal Index Merging study —
// the dual formulation the paper states but leaves unexplored (§3.1):
// minimize Cost(W, C') subject to storage(C') ≤ budget.
type DualRow struct {
	Database string
	// BudgetFrac is the storage budget as a fraction of the initial
	// configuration's storage.
	BudgetFrac float64
	MetBudget  bool
	// StorageFrac is the achieved storage as a fraction of initial.
	StorageFrac float64
	// CostIncrease is the achieved workload-cost growth.
	CostIncrease float64
	Merges       int
}

// RunCostMinimal sweeps storage budgets and reports the cost the dual
// greedy pays to reach each one.
func RunCostMinimal(labs []*Lab, n int, budgetFracs []float64) ([]DualRow, error) {
	var rows []DualRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		coster := core.NewOptimizerChecker(lab.Opt, s.w, s.baseCost, 0)
		initialBytes := s.initial.Bytes(lab.DB)
		for _, frac := range budgetFracs {
			budget := int64(float64(initialBytes) * frac)
			res, err := core.CostMinimal(s.initial, &core.MergePairCost{Seek: s.seek}, coster, lab.DB, budget)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DualRow{
				Database:     lab.Name,
				BudgetFrac:   frac,
				MetBudget:    res.MetBudget,
				StorageFrac:  float64(res.FinalBytes) / float64(initialBytes),
				CostIncrease: res.FinalCost/res.InitialCost - 1,
				Merges:       len(res.Steps),
			})
		}
	}
	return rows, nil
}

// RenderCostMinimal prints the dual study.
func RenderCostMinimal(w io.Writer, rows []DualRow) {
	t := NewTable("Extension — Cost-Minimal Index Merging (the paper's unexplored dual): minimize cost under a storage budget",
		"Database", "Budget (x initial)", "Achieved storage", "Met", "Cost increase", "Merges")
	for _, r := range rows {
		met := "yes"
		if !r.MetBudget {
			met = "no"
		}
		t.Add(r.Database, Pct(r.BudgetFrac), Pct(r.StorageFrac), met, Pct(r.CostIncrease), r.Merges)
	}
	t.Render(w)
}
