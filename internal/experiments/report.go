package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple aligned-text table for experiment reports.
type Table struct {
	Title   string
	Header  []string
	RowsOut [][]string
}

// NewTable creates a titled table.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row (values are stringified).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.RowsOut = append(t.RowsOut, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.RowsOut {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.RowsOut {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// RenderSearchComparison prints Figures 5 and 6 from shared rows.
func RenderSearchComparison(w io.Writer, rows []SearchComparisonRow) {
	f5 := NewTable("Figure 5 — Quality of Greedy (storage reduction, cost constraint 10%, N=5, complex workload)",
		"Database", "Exhaustive", "Greedy-Cost-Opt", "Greedy-Cost-None", "GCO cost+", "GCN cost+ (unchecked)")
	for _, r := range rows {
		f5.Add(r.Database, Pct(r.ExhaustiveReduction), Pct(r.GreedyOptReduction), Pct(r.GreedyNoneReduction),
			Pct(r.FinalCostIncrease), Pct(r.NoCostCostIncrease))
	}
	f5.Render(w)
	fmt.Fprintln(w)

	f6 := NewTable("Figure 6 — Running time of Greedy as % of Exhaustive (evals = constraint checks consumed; opt calls = optimizer invocations issued)",
		"Database", "Greedy-Cost-Opt", "Greedy-Cost-None", "Exhaustive time",
		"GCO evals", "GCO opt calls", "Exh evals", "Exh opt calls")
	for _, r := range rows {
		f6.Add(r.Database,
			Pct(ratioDur(r.GreedyOptTime, r.ExhaustiveTime)),
			Pct(ratioDur(r.GreedyNoneTime, r.ExhaustiveTime)),
			r.ExhaustiveTime,
			r.GreedyOptEvals, r.GreedyOptOptCalls,
			r.ExhaustiveEvals, r.ExhaustiveOptCalls)
	}
	f6.Render(w)
}

func ratioDur(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderMergePairComparison prints Figure 7.
func RenderMergePairComparison(w io.Writer, rows []MergePairComparisonRow) {
	t := NewTable("Figure 7 — MergePair procedures (Greedy-Cost-Opt, N=5, cost constraint 10%)",
		"Database", "MergePair-Exhaustive", "MergePair-Cost", "MergePair-Syntactic")
	for _, r := range rows {
		t.Add(r.Database, Pct(r.ExhaustiveReduction), Pct(r.CostReduction), Pct(r.SyntacticReduction))
	}
	t.Render(w)
}

// RenderMaintenanceComparison prints Figure 8.
func RenderMaintenanceComparison(w io.Writer, rows []MaintenanceRow) {
	t := NewTable("Figure 8 — Reduction in index maintenance cost (cost constraint 20%, 1% batch insert into two largest tables)",
		"Database", "N", "Initial writes", "Merged writes", "Reduction", "Indexes", "Storage saved")
	for _, r := range rows {
		t.Add(r.Database, r.N, r.InitialCost, r.MergedCost, Pct(r.Reduction()),
			fmt.Sprintf("%d->%d", r.IndexesBefore, r.IndexesAfter), Pct(r.StorageReduction))
	}
	t.Render(w)
}

// RenderIntroQ1Q3 prints the introduction's Q1/Q3 example.
func RenderIntroQ1Q3(w io.Writer, r *IntroQ1Q3Result) {
	fmt.Fprintln(w, "Intro example — merging the TPC-D Q1 and Q3 covering indexes (paper: storage -38%, maintenance -22%, query cost +3%)")
	fmt.Fprintf(w, "  I1     = %s\n", r.I1)
	fmt.Fprintf(w, "  I2     = %s\n", r.I2)
	fmt.Fprintf(w, "  merged = %s\n", r.Merged)
	fmt.Fprintf(w, "  storage:     %d -> %d bytes (%s saved)\n", r.StorageBefore, r.StorageAfter, Pct(r.StorageReduction()))
	fmt.Fprintf(w, "  maintenance: %d -> %d page writes (%s saved)\n", r.MaintenanceBefore, r.MaintenanceAfter, Pct(r.MaintenanceReduction()))
	fmt.Fprintf(w, "  Q1+Q3 cost:  %.2f -> %.2f (%s increase)\n", r.QueryCostBefore, r.QueryCostAfter, Pct(r.QueryCostIncrease()))
}

// RenderIntroTPCD17 prints the introduction's 17-query study.
func RenderIntroTPCD17(w io.Writer, r *IntroTPCD17Result) {
	fmt.Fprintln(w, "Intro study — TPC-D 17 queries tuned individually, then merged (paper: 5x data -> 2.3x data, ~5% cost increase)")
	fmt.Fprintf(w, "  data size:            %d bytes\n", r.DataBytes)
	fmt.Fprintf(w, "  tuned index storage:  %d bytes (%.2fx data, %d indexes)\n", r.TunedIndexBytes, r.TunedRatio, r.IndexesBefore)
	fmt.Fprintf(w, "  merged index storage: %d bytes (%.2fx data, %d indexes)\n", r.MergedIndexBytes, r.MergedRatio, r.IndexesAfter)
	fmt.Fprintf(w, "  workload cost change: %s\n", Pct(r.CostIncrease))
}

// RenderAblation prints one ablation study.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	t := NewTable(title, "Database", "Baseline saved", "Variant saved", "Baseline cost+", "Variant cost+", "Base extra", "Var extra")
	for _, r := range rows {
		t.Add(r.Database, Pct(r.BaselineReduction), Pct(r.VariantReduction),
			Pct(r.BaselineCostIncrease), Pct(r.VariantCostIncrease), r.BaselineExtra, r.VariantExtra)
	}
	t.Render(w)
}

// RenderCompression prints the workload-compression study.
func RenderCompression(w io.Writer, rows []CompressionRow) {
	t := NewTable("Workload compression (§3.5.3) — dedup + top-k most expensive queries",
		"Database", "Full queries", "Top-k", "Full opt calls", "Top-k opt calls", "Full saved", "Top-k saved")
	for _, r := range rows {
		t.Add(r.Database, r.FullQueries, r.CompressedQueries, r.FullCalls, r.CompressedCalls,
			Pct(r.FullReduction), Pct(r.CompressedReduction))
	}
	t.Render(w)
}
