// Package experiments reproduces every table and figure in the
// paper's evaluation (§4) plus the introduction's motivating numbers:
// Figure 5 (search-strategy quality), Figure 6 (running time), Figure 7
// (MergePair procedures), Figure 8 (index maintenance cost), the Q1/Q3
// merge example, and the 17-query TPC-D storage study. It also hosts
// ablation studies for the design choices DESIGN.md calls out.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"indexmerge/internal/advisor"
	"indexmerge/internal/catalog"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
	"indexmerge/internal/workload"
)

// Lab bundles one experimental database with its optimizer, advisor
// and workloads — the environment every experiment runs in.
type Lab struct {
	Name string
	DB   *engine.Database
	Opt  *optimizer.Optimizer
	Adv  *advisor.Advisor

	// Complex is the RAGS-style complex workload (30 queries unless
	// configured otherwise); Projection is the projection-only one.
	Complex    *sql.Workload
	Projection *sql.Workload

	// Parallelism bounds concurrent candidate costing in searches and
	// advisor runs driven from this lab; results are identical for any
	// value (see core.GreedyOptions).
	Parallelism int

	// insertRow generates one fresh row for a table (batch updates).
	insertRow func(table string, rng *rand.Rand) (value.Row, error)
	seed      int64
}

// LabOptions scales lab construction.
type LabOptions struct {
	// Scale multiplies the default database size (1.0 = defaults
	// documented in datagen). Smaller is faster.
	Scale float64
	// WorkloadQueries sets queries per workload class (default 30,
	// matching the paper's primary workload size).
	WorkloadQueries int
	// Seed drives data and workload generation.
	Seed int64
	// Parallelism bounds concurrent candidate costing in the searches
	// the labs run (<= 1 = serial). Reported figures are identical for
	// any value; only running time and optimizer-call counts vary.
	Parallelism int
}

func (o *LabOptions) fill() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.WorkloadQueries <= 0 {
		o.WorkloadQueries = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// NewTPCDLab builds the TPC-D lab.
func NewTPCDLab(opt LabOptions) (*Lab, error) {
	opt.fill()
	scale := datagen.ScaledTPCD(opt.Scale)
	db, err := datagen.BuildTPCD(scale, opt.Seed)
	if err != nil {
		return nil, err
	}
	lab, err := newLab("TPC-D", db, opt)
	if err != nil {
		return nil, err
	}
	lab.insertRow = func(table string, rng *rand.Rand) (value.Row, error) {
		switch table {
		case "lineitem":
			return datagen.GenLineitemRow(rng, rng.Int63n(int64(scale.Orders)), rng.Int63n(7), scale), nil
		case "orders":
			return datagen.GenOrderRow(rng, int64(scale.Orders)+rng.Int63n(1<<30), scale), nil
		default:
			rows, err := datagen.SyntheticInsertRows(db, table, 1, rng.Int63())
			if err != nil {
				return nil, err
			}
			return rows[0], nil
		}
	}
	return lab, nil
}

// NewSynthetic1Lab builds the Synthetic1 lab (5 tables, 5–25 columns).
func NewSynthetic1Lab(opt LabOptions) (*Lab, error) {
	opt.fill()
	spec := datagen.Synthetic1Spec()
	spec.RowsPer = int(float64(spec.RowsPer) * opt.Scale)
	spec.Seed += opt.Seed
	return newSyntheticLab(spec, opt)
}

// NewSynthetic2Lab builds the Synthetic2 lab (10 tables, 5–45 columns).
func NewSynthetic2Lab(opt LabOptions) (*Lab, error) {
	opt.fill()
	spec := datagen.Synthetic2Spec()
	spec.RowsPer = int(float64(spec.RowsPer) * opt.Scale)
	spec.Seed += opt.Seed
	return newSyntheticLab(spec, opt)
}

func newSyntheticLab(spec datagen.SyntheticSpec, opt LabOptions) (*Lab, error) {
	db, err := datagen.BuildSynthetic(spec)
	if err != nil {
		return nil, err
	}
	lab, err := newLab(spec.Name, db, opt)
	if err != nil {
		return nil, err
	}
	lab.insertRow = func(table string, rng *rand.Rand) (value.Row, error) {
		rows, err := datagen.SyntheticInsertRows(db, table, 1, rng.Int63())
		if err != nil {
			return nil, err
		}
		return rows[0], nil
	}
	return lab, nil
}

func newLab(name string, db *engine.Database, opt LabOptions) (*Lab, error) {
	o := optimizer.New(db)
	adv := advisor.New(db, o)
	adv.Parallelism = opt.Parallelism
	lab := &Lab{
		Name:        name,
		DB:          db,
		Opt:         o,
		Adv:         adv,
		Parallelism: opt.Parallelism,
		seed:        opt.Seed,
	}
	var err error
	lab.Complex, err = workload.Generate(db, workload.Options{
		Class: workload.Complex, Queries: opt.WorkloadQueries, Seed: opt.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	lab.Projection, err = workload.Generate(db, workload.Options{
		Class: workload.ProjectionOnly, Queries: opt.WorkloadQueries, Seed: opt.Seed + 13,
	})
	if err != nil {
		return nil, err
	}
	return lab, nil
}

// InitialConfiguration reproduces §4.2.3: random per-query tuning
// until n distinct indexes accumulate.
func (lab *Lab) InitialConfiguration(w *sql.Workload, n int) ([]catalog.IndexDef, error) {
	return advisor.BuildInitialConfiguration(lab.Adv, w, n, lab.seed+int64(n)*31)
}

// WorkloadCost evaluates Cost(W, C) with the lab's optimizer.
func (lab *Lab) WorkloadCost(w *sql.Workload, defs []catalog.IndexDef) (float64, error) {
	return lab.Opt.WorkloadCost(w, optimizer.Configuration(defs))
}

// TwoLargestTables returns the two largest tables by bytes — the
// targets of the paper's batch-insert maintenance experiment. Byte
// size (rows × row width) matters: in the synthetic schemas every
// table holds the same row count and size differences come entirely
// from column counts and widths.
func (lab *Lab) TwoLargestTables() []string {
	names := lab.DB.Schema().TableNames()
	bytesOf := func(name string) int64 {
		t, ok := lab.DB.Schema().Table(name)
		if !ok {
			return 0
		}
		return lab.DB.TableRowCount(name) * int64(t.RowWidth())
	}
	sort.Slice(names, func(i, j int) bool {
		return bytesOf(names[i]) > bytesOf(names[j])
	})
	if len(names) > 2 {
		names = names[:2]
	}
	return names
}

// BatchInsert inserts pct (e.g. 0.01) of each target table's rows,
// maintaining all materialized indexes, returns the maintenance
// page-write cost incurred, and rolls the heaps back so repeated
// measurements see identical base data. Indexes are left stale; the
// caller re-materializes the next configuration before reuse.
func (lab *Lab) BatchInsert(tables []string, pct float64, seed int64) (int64, error) {
	if lab.insertRow == nil {
		return 0, fmt.Errorf("experiments: lab %q has no insert generator", lab.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	lab.DB.ResetMaintenance()
	saved := make(map[string]int64, len(tables))
	for _, t := range tables {
		saved[t] = lab.DB.TableRowCount(t)
	}
	for _, t := range tables {
		n := int(float64(lab.DB.TableRowCount(t)) * pct)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			row, err := lab.insertRow(t, rng)
			if err != nil {
				return 0, err
			}
			if err := lab.DB.Insert(t, row); err != nil {
				return 0, err
			}
		}
	}
	cost := lab.DB.MaintenanceCost()
	for _, t := range tables {
		h, err := lab.DB.Heap(t)
		if err != nil {
			return 0, err
		}
		h.TruncateTo(saved[t])
	}
	return cost, nil
}

// tpcdWorkload parses the 17 TPC-D benchmark queries for the schema.
func tpcdWorkload(sc *catalog.Schema) (*sql.Workload, error) {
	return datagen.TPCDWorkload(sc)
}

// StandardLabs builds all three labs at the given options.
func StandardLabs(opt LabOptions) ([]*Lab, error) {
	t, err := NewTPCDLab(opt)
	if err != nil {
		return nil, err
	}
	s1, err := NewSynthetic1Lab(opt)
	if err != nil {
		return nil, err
	}
	s2, err := NewSynthetic2Lab(opt)
	if err != nil {
		return nil, err
	}
	return []*Lab{t, s1, s2}, nil
}
