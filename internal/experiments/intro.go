package experiments

import (
	"fmt"

	"indexmerge/internal/catalog"
	"indexmerge/internal/core"
	"indexmerge/internal/sql"
)

// IntroQ1Q3Result reproduces the introduction's motivating example:
// merging the covering indexes for TPC-D Q1 and Q3 on lineitem. The
// paper reports storage −38%, batch-insert maintenance −22%, combined
// Q1+Q3 cost +3%.
type IntroQ1Q3Result struct {
	I1, I2, Merged catalog.IndexDef

	StorageBefore, StorageAfter         int64
	MaintenanceBefore, MaintenanceAfter int64
	QueryCostBefore, QueryCostAfter     float64
}

// StorageReduction is the fractional storage saving.
func (r *IntroQ1Q3Result) StorageReduction() float64 {
	return 1 - float64(r.StorageAfter)/float64(r.StorageBefore)
}

// MaintenanceReduction is the fractional batch-insert saving.
func (r *IntroQ1Q3Result) MaintenanceReduction() float64 {
	if r.MaintenanceBefore == 0 {
		return 0
	}
	return 1 - float64(r.MaintenanceAfter)/float64(r.MaintenanceBefore)
}

// QueryCostIncrease is the fractional Q1+Q3 cost growth.
func (r *IntroQ1Q3Result) QueryCostIncrease() float64 {
	return r.QueryCostAfter/r.QueryCostBefore - 1
}

// RunIntroQ1Q3 builds the paper's I1 and I2 on the TPC-D lab, merges
// them (index-preserving, I1 leading — exactly the paper's I), and
// measures storage, maintenance and the Q1+Q3 cost under both
// configurations.
func RunIntroQ1Q3(lab *Lab) (*IntroQ1Q3Result, error) {
	sc := lab.DB.Schema()
	i1, err := catalog.NewIndexDef(sc, "i1_q1_covering", "lineitem",
		[]string{"l_shipdate", "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"})
	if err != nil {
		return nil, err
	}
	i2, err := catalog.NewIndexDef(sc, "i2_q3_covering", "lineitem",
		[]string{"l_shipdate", "l_orderkey", "l_extendedprice", "l_discount"})
	if err != nil {
		return nil, err
	}
	merged, err := core.MergeOrdered(core.NewIndex(i1), core.NewIndex(i2))
	if err != nil {
		return nil, err
	}

	res := &IntroQ1Q3Result{I1: i1, I2: i2, Merged: merged.Def}
	res.StorageBefore = lab.DB.EstimateIndexBytes(i1) + lab.DB.EstimateIndexBytes(i2)
	res.StorageAfter = lab.DB.EstimateIndexBytes(merged.Def)

	// Q1 and Q3 from the benchmark workload.
	w, err := q1q3Workload(sc)
	if err != nil {
		return nil, err
	}
	res.QueryCostBefore, err = lab.WorkloadCost(w, []catalog.IndexDef{i1, i2})
	if err != nil {
		return nil, err
	}
	res.QueryCostAfter, err = lab.WorkloadCost(w, []catalog.IndexDef{merged.Def})
	if err != nil {
		return nil, err
	}

	// Batch-insert maintenance: 1% of lineitem rows under each config.
	if err := lab.DB.Materialize([]catalog.IndexDef{i1, i2}); err != nil {
		return nil, err
	}
	res.MaintenanceBefore, err = lab.BatchInsert([]string{"lineitem"}, InsertPct, lab.seed+101)
	if err != nil {
		return nil, err
	}
	if err := lab.DB.Materialize([]catalog.IndexDef{merged.Def}); err != nil {
		return nil, err
	}
	res.MaintenanceAfter, err = lab.BatchInsert([]string{"lineitem"}, InsertPct, lab.seed+101)
	if err != nil {
		return nil, err
	}
	lab.DB.DropAllIndexes()
	return res, nil
}

// q1q3Workload extracts Q1 and Q3 from the TPC-D query set.
func q1q3Workload(sc *catalog.Schema) (*sql.Workload, error) {
	all, err := tpcdWorkload(sc)
	if err != nil {
		return nil, err
	}
	w := &sql.Workload{}
	w.Add(all.Queries[0].Stmt, 1) // Q1
	w.Add(all.Queries[2].Stmt, 1) // Q3
	return w, nil
}

// IntroTPCD17Result reproduces the introduction's 17-query TPC-D
// study: per-query tuning inflates index storage to ~5× the data size;
// merging brings it to ~2.3× at ~5% average query cost increase.
type IntroTPCD17Result struct {
	DataBytes int64

	TunedIndexBytes  int64
	MergedIndexBytes int64

	TunedRatio  float64 // index bytes / data bytes before merging
	MergedRatio float64 // after merging

	CostIncrease                float64 // workload cost growth due to merging
	IndexesBefore, IndexesAfter int
}

// RunIntroTPCD17 tunes each of the 17 benchmark queries individually,
// unions the recommendations, then applies Greedy-Cost-Opt merging.
func RunIntroTPCD17(lab *Lab, constraint float64) (*IntroTPCD17Result, error) {
	w, err := tpcdWorkload(lab.DB.Schema())
	if err != nil {
		return nil, err
	}
	defs, err := lab.Adv.TuneWorkload(w)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("experiments: per-query tuning produced no indexes")
	}
	initial := core.NewConfiguration(defs)
	baseCost, err := lab.WorkloadCost(w, defs)
	if err != nil {
		return nil, err
	}
	seek, err := core.ComputeSeekCosts(lab.Opt, w, initial)
	if err != nil {
		return nil, err
	}
	check := core.NewOptimizerChecker(lab.Opt, w, baseCost, constraint)
	res, err := core.Greedy(initial, &core.MergePairCost{Seek: seek}, check, lab.DB)
	if err != nil {
		return nil, err
	}
	finalCost, err := lab.WorkloadCost(w, res.Final.Defs())
	if err != nil {
		return nil, err
	}

	out := &IntroTPCD17Result{
		DataBytes:        lab.DB.DataBytes(),
		TunedIndexBytes:  res.InitialBytes,
		MergedIndexBytes: res.FinalBytes,
		CostIncrease:     finalCost/baseCost - 1,
		IndexesBefore:    initial.Len(),
		IndexesAfter:     res.Final.Len(),
	}
	out.TunedRatio = float64(out.TunedIndexBytes) / float64(out.DataBytes)
	out.MergedRatio = float64(out.MergedIndexBytes) / float64(out.DataBytes)
	return out, nil
}
