package experiments

import (
	"indexmerge/internal/core"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// AblationRow compares a design choice (on/off) on one database.
type AblationRow struct {
	Database string
	Name     string
	// BaselineReduction is the storage reduction with the paper's
	// choice; VariantReduction with the alternative.
	BaselineReduction float64
	VariantReduction  float64
	// BaselineCostIncrease / VariantCostIncrease are the achieved
	// workload cost growths.
	BaselineCostIncrease float64
	VariantCostIncrease  float64
	// Extra carries strategy-specific counters (e.g. optimizer calls).
	BaselineExtra, VariantExtra int64
}

// RunAblationPrefixChoice tests MergePair-Cost's core heuristic: the
// higher-Seek-Cost parent becomes the leading prefix. The variant
// reverses the preference. Expectation: reversing hurts the achieved
// cost (merges get rejected or degrade queries), shrinking reduction.
func RunAblationPrefixChoice(labs []*Lab, n int, constraint float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		base, err := core.Greedy(s.initial, &core.MergePairCost{Seek: s.seek}, s.optChecker(constraint), lab.DB)
		if err != nil {
			return nil, err
		}
		variant, err := core.Greedy(s.initial, &core.MergePairCost{Seek: s.seek, ReversePreference: true}, s.optChecker(constraint), lab.DB)
		if err != nil {
			return nil, err
		}
		row, err := ablationRow(lab, s, "prefix-choice", base, variant)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationGreedyOrder tests the greedy inner-loop ranking: the
// paper orders candidate merges by descending storage reduction; the
// variant orders by ascending width growth (a cost-increase proxy).
func RunAblationGreedyOrder(labs []*Lab, n int, constraint float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		mp := &core.MergePairCost{Seek: s.seek}
		base, err := core.GreedyWithOptions(s.initial, mp, s.optChecker(constraint), lab.DB,
			core.GreedyOptions{Order: core.OrderByStorageReduction})
		if err != nil {
			return nil, err
		}
		variant, err := core.GreedyWithOptions(s.initial, mp, s.optChecker(constraint), lab.DB,
			core.GreedyOptions{Order: core.OrderByWidthGrowth})
		if err != nil {
			return nil, err
		}
		row, err := ablationRow(lab, s, "greedy-order", base, variant)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationPrefilter measures the §3.5.3 external-cost pre-filter:
// same search, with and without the cheap veto in front of the
// optimizer-backed checker. Extra counts optimizer invocations.
func RunAblationPrefilter(labs []*Lab, n int, constraint float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		mp := &core.MergePairCost{Seek: s.seek}

		before := lab.Opt.InvocationCount()
		base, err := core.Greedy(s.initial, mp, s.optChecker(constraint), lab.DB)
		if err != nil {
			return nil, err
		}
		baseCalls := lab.Opt.InvocationCount() - before

		ext := &core.ExternalCostModel{Meta: lab.DB, W: s.w}
		ext.SetBaseline(s.initial)
		pre := &core.PrefilteredChecker{
			External: ext,
			Inner:    s.optChecker(constraint),
			SlackPct: constraint,
		}
		before = lab.Opt.InvocationCount()
		variant, err := core.Greedy(s.initial, mp, pre, lab.DB)
		if err != nil {
			return nil, err
		}
		variantCalls := lab.Opt.InvocationCount() - before

		row, err := ablationRow(lab, s, "external-prefilter", base, variant)
		if err != nil {
			return nil, err
		}
		row.BaselineExtra = baseCalls
		row.VariantExtra = variantCalls
		rows = append(rows, row)
	}
	return rows, nil
}

// RunAblationIntersection measures how optimizer sophistication
// affects merge quality: the same search with index-intersection
// access paths on (baseline) and off (variant). §3.5.2 argues external
// cost models fail precisely because techniques like index
// intersection change which configurations are good; this quantifies
// the sensitivity. Extra reports the final workload cost (scaled) so
// absolute plan quality is visible too.
func RunAblationIntersection(labs []*Lab, n int, constraint float64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		mp := &core.MergePairCost{Seek: s.seek}
		base, err := core.Greedy(s.initial, mp, s.optChecker(constraint), lab.DB)
		if err != nil {
			return nil, err
		}

		lab.Opt.DisableIndexIntersection = true
		// Re-derive the baseline cost and seek costs under the weaker
		// optimizer so its constraint is self-consistent.
		weakBase, err := lab.WorkloadCost(s.w, s.initial.Defs())
		if err != nil {
			lab.Opt.DisableIndexIntersection = false
			return nil, err
		}
		weakSeek, err := core.ComputeSeekCosts(lab.Opt, s.w, s.initial)
		if err != nil {
			lab.Opt.DisableIndexIntersection = false
			return nil, err
		}
		weakCheck := core.NewOptimizerChecker(lab.Opt, s.w, weakBase, constraint)
		variant, err := core.Greedy(s.initial, &core.MergePairCost{Seek: weakSeek}, weakCheck, lab.DB)
		lab.Opt.DisableIndexIntersection = false
		if err != nil {
			return nil, err
		}

		row, err := ablationRow(lab, s, "index-intersection", base, variant)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CompressionRow reports the workload-compression study (§3.5.3):
// optimizer invocations and merge quality with the full workload vs a
// top-k compressed one.
type CompressionRow struct {
	Database            string
	FullQueries         int
	CompressedQueries   int
	FullCalls           int64
	CompressedCalls     int64
	FullReduction       float64
	CompressedReduction float64
}

// RunWorkloadCompression compares merging driven by the full complex
// workload against merging driven by its k most expensive queries
// (both §3.5.3 compression techniques: dedup then top-k). Quality is
// judged on the full workload either way.
func RunWorkloadCompression(labs []*Lab, n, k int, constraint float64) ([]CompressionRow, error) {
	var rows []CompressionRow
	for _, lab := range labs {
		s, err := newSetup(lab, lab.Complex, n)
		if err != nil {
			return nil, err
		}
		mp := &core.MergePairCost{Seek: s.seek}

		before := lab.Opt.InvocationCount()
		full, err := core.Greedy(s.initial, mp, s.optChecker(constraint), lab.DB)
		if err != nil {
			return nil, err
		}
		fullCalls := lab.Opt.InvocationCount() - before

		// Compress: dedup identical queries, then keep the k most
		// expensive under the initial configuration.
		initialDefs := s.initial.Defs()
		costOf := func(stmt *sql.SelectStmt) float64 {
			c, err := lab.Opt.Cost(stmt, optimizer.Configuration(initialDefs))
			if err != nil {
				return 0
			}
			return c
		}
		smallW := s.w.Compress().TopK(k, costOf)
		smallBase, err := lab.WorkloadCost(smallW, initialDefs)
		if err != nil {
			return nil, err
		}
		seek, err := core.ComputeSeekCosts(lab.Opt, smallW, s.initial)
		if err != nil {
			return nil, err
		}
		check := core.NewOptimizerChecker(lab.Opt, smallW, smallBase, constraint)
		before = lab.Opt.InvocationCount()
		small, err := core.Greedy(s.initial, &core.MergePairCost{Seek: seek}, check, lab.DB)
		if err != nil {
			return nil, err
		}
		smallCalls := lab.Opt.InvocationCount() - before

		rows = append(rows, CompressionRow{
			Database:            lab.Name,
			FullQueries:         s.w.Len(),
			CompressedQueries:   smallW.Len(),
			FullCalls:           fullCalls,
			CompressedCalls:     smallCalls,
			FullReduction:       full.StorageReduction(),
			CompressedReduction: small.StorageReduction(),
		})
	}
	return rows, nil
}

// ablationRow assembles the shared fields.
func ablationRow(lab *Lab, s *setup, name string, base, variant *core.SearchResult) (AblationRow, error) {
	baseCost, err := lab.WorkloadCost(s.w, base.Final.Defs())
	if err != nil {
		return AblationRow{}, err
	}
	varCost, err := lab.WorkloadCost(s.w, variant.Final.Defs())
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Database:             lab.Name,
		Name:                 name,
		BaselineReduction:    base.StorageReduction(),
		VariantReduction:     variant.StorageReduction(),
		BaselineCostIncrease: baseCost/s.baseCost - 1,
		VariantCostIncrease:  varCost/s.baseCost - 1,
	}, nil
}
