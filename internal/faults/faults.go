// Package faults is a deterministic fault-injection layer for chaos
// testing the advisor stack. Hot paths declare named injection points
// (storage page reads, stats sampling, what-if costing, the cost
// cache); tests and the chaos CI job install rules that make those
// points return typed errors, add latency, or panic on addressable
// call windows. With no rules installed a point costs one atomic load,
// so the hooks stay in production builds.
//
// Determinism: every rule carries its own match counter, and firing
// windows are expressed in match counts (fire on matched calls
// (After, After+Count]), so a serial run injects the exact same faults
// every time. Probabilistic rules draw from a per-rule seeded
// generator; use count windows when a test asserts byte-identical
// results.
//
// Rules are addressable: each has an ID (assigned when empty), and
// Fired reports how many times a rule has triggered, so a test can
// assert its faults actually fired rather than silently missing the
// code path.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site. Sites pass their point to Inject
// (error-capable paths) or Hit (paths that cannot propagate an error,
// where only latency and panic rules apply).
type Point string

// The injection points wired into the engine. The constants are the
// single source of truth for rule specs ("point=optimizer.cost").
const (
	// OptimizerCost fires on every what-if optimizer invocation — both
	// the ad-hoc Optimize path and the prepared CostPrepared fast path.
	OptimizerCost Point = "optimizer.cost"
	// StatsSample fires when a table's statistics are (re)built.
	// Latency/panic only: Analyze cannot propagate an error.
	StatsSample Point = "stats.sample"
	// StorageHeapGet fires on heap page reads (row fetch by RID).
	StorageHeapGet Point = "storage.heap.get"
	// StorageHeapScan fires at the start of a heap scan. Latency/panic
	// only.
	StorageHeapScan Point = "storage.heap.scan"
	// StorageIndexSeek fires on B+-tree seeks. Latency/panic only.
	StorageIndexSeek Point = "storage.index.seek"
	// CostCacheDo fires on cost-cache lookup-or-compute calls.
	CostCacheDo Point = "costcache.do"
	// DistribRPC fires on every coordinator→worker cost-batch RPC
	// (internal/distrib), before the request leaves the pool.
	DistribRPC Point = "distrib.rpc"
	// ContinuousObserve fires when the continuous advisor measures an
	// ingested batch's observed cost against the applied estimate.
	// Scale rules here inflate the observation — the deterministic way
	// to force a guardrail rollback in chaos tests and CI.
	ContinuousObserve Point = "continuous.observe"
	// QuotaAdmit fires on every tenant admission decision (session
	// create, job submit, ingest). An error rule here sheds the request
	// deterministically — the chaos way to exercise 429 paths without
	// actually saturating a quota.
	QuotaAdmit Point = "quota.admit"
	// QuotaMemory fires when a tenant's byte-accounted memory usage is
	// checked against its budget. An error rule forces the memory
	// rejection path.
	QuotaMemory Point = "quota.memory"
	// BrownoutStage fires when the server computes global overload
	// pressure. Scale rules multiply the measured pressure — the
	// deterministic way to force the brownout ladder through its stages
	// in chaos tests and CI.
	BrownoutStage Point = "brownout.stage"
)

// Mode selects what a rule does when it fires.
type Mode int

const (
	// ModeError makes the point return a typed *Error.
	ModeError Mode = iota
	// ModeLatency sleeps for Rule.Latency before the point proceeds.
	ModeLatency
	// ModePanic panics with a *Error.
	ModePanic
	// ModeScale multiplies a site-reported measurement by Rule.Scale.
	// Scale rules apply only at sites that consult Factor; Inject and
	// Hit skip them entirely (they neither fire nor consume windows).
	ModeScale
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	case ModeScale:
		return "scale"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule describes one injection behavior. The zero window (After == 0,
// Count == 0) fires on every matching call.
type Rule struct {
	// ID addresses the rule in Fired; auto-assigned ("rule-N") when
	// empty.
	ID string
	// Point restricts the rule to one injection point; empty matches
	// every point.
	Point Point
	// Mode is what happens when the rule fires.
	Mode Mode
	// After skips the first After matching calls.
	After int64
	// Count bounds how many matching calls fire (0 = forever). The rule
	// fires on matched calls number After+1 .. After+Count.
	Count int64
	// Prob, when in (0, 1), gates each in-window call on a draw from
	// the rule's seeded generator. 0 or >= 1 means always fire.
	Prob float64
	// Seed seeds the rule's generator for Prob draws.
	Seed int64
	// Latency is the added delay for ModeLatency.
	Latency time.Duration
	// Scale is the measurement multiplier for ModeScale (values <= 0
	// are treated as 1, i.e. inert).
	Scale float64
	// Transient marks injected errors as retryable; the resilient
	// costing path retries transient faults and treats the rest as
	// permanent. Defaults to false (permanent).
	Transient bool
	// Msg customizes the injected error text.
	Msg string
}

// Error is the typed error (and panic value) injected by ModeError and
// ModePanic rules.
type Error struct {
	Point     Point
	RuleID    string
	Panicked  bool
	Retryable bool
	Msg       string
}

// Error implements error.
func (e *Error) Error() string {
	kind := "injected fault"
	if e.Panicked {
		kind = "injected panic"
	}
	msg := e.Msg
	if msg == "" {
		msg = kind
	}
	return fmt.Sprintf("faults: %s at %s (rule %s, transient=%v)", msg, e.Point, e.RuleID, e.Retryable)
}

// Transient reports whether the fault models a retryable condition;
// the resilient costing path consults it through an interface check,
// so this package stays import-free of core.
func (e *Error) Transient() bool { return e.Retryable }

// ruleState is an installed rule plus its counters.
type ruleState struct {
	Rule
	hits  atomic.Int64 // matching calls seen
	fired atomic.Int64 // calls that actually triggered

	rngMu sync.Mutex
	rng   *rand.Rand
}

// fire decides whether this matching call triggers.
func (r *ruleState) fire() bool {
	n := r.hits.Add(1)
	if n <= r.After {
		return false
	}
	if r.Count > 0 && n > r.After+r.Count {
		return false
	}
	if r.Prob > 0 && r.Prob < 1 {
		r.rngMu.Lock()
		ok := r.rng.Float64() < r.Prob
		r.rngMu.Unlock()
		if !ok {
			return false
		}
	}
	r.fired.Add(1)
	return true
}

var (
	armed  atomic.Bool
	mu     sync.RWMutex
	rules  []*ruleState
	nextID atomic.Int64
)

// Enabled reports whether any rules are installed. Sites may use it to
// skip work; Inject and Hit check it themselves.
func Enabled() bool { return armed.Load() }

// Install adds rules to the active set (appending to any already
// installed) and arms the injection points. Rules with an empty ID get
// one assigned; the (possibly updated) rules are returned so callers
// can address them in Fired.
func Install(rs ...Rule) []Rule {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Rule, len(rs))
	for i, r := range rs {
		if r.ID == "" {
			r.ID = fmt.Sprintf("rule-%d", nextID.Add(1))
		}
		st := &ruleState{Rule: r}
		if r.Prob > 0 && r.Prob < 1 {
			st.rng = rand.New(rand.NewSource(r.Seed))
		}
		rules = append(rules, st)
		out[i] = r
	}
	armed.Store(len(rules) > 0)
	return out
}

// Reset removes every installed rule and disarms the points.
func Reset() {
	mu.Lock()
	rules = nil
	armed.Store(false)
	mu.Unlock()
}

// Fired reports how many times the identified rule has triggered
// (0 for unknown IDs).
func Fired(id string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	for _, r := range rules {
		if r.ID == id {
			return r.fired.Load()
		}
	}
	return 0
}

// Inject is the full injection hook for error-capable sites: matching
// latency rules sleep, a matching panic rule panics with *Error, and a
// matching error rule returns a typed *Error. Returns nil when nothing
// fires — the common case, costing one atomic load.
func Inject(p Point) error {
	if !armed.Load() {
		return nil
	}
	return apply(p, true)
}

// Hit is the injection hook for sites that cannot propagate an error
// (stats builds, heap scans, index seeks): latency and panic rules
// apply; error rules are skipped entirely — they neither fire nor
// consume their windows, so installing an error rule against a
// Hit-only point is inert by design.
func Hit(p Point) {
	if !armed.Load() {
		return
	}
	_ = apply(p, false)
}

// Factor is the injection hook for sites that report a measurement
// (observed costs, latencies): matching scale rules fire and their
// factors multiply. Returns 1 when nothing fires. Non-scale rules are
// ignored — they neither fire nor consume their windows here.
func Factor(p Point) float64 {
	if !armed.Load() {
		return 1
	}
	mu.RLock()
	matched := make([]*ruleState, 0, len(rules))
	for _, r := range rules {
		if r.Mode == ModeScale && (r.Point == "" || r.Point == p) {
			matched = append(matched, r)
		}
	}
	mu.RUnlock()
	f := 1.0
	for _, r := range matched {
		if r.Scale > 0 && r.fire() {
			f *= r.Scale
		}
	}
	return f
}

func apply(p Point, errCapable bool) error {
	mu.RLock()
	matched := make([]*ruleState, 0, len(rules))
	for _, r := range rules {
		if r.Point == "" || r.Point == p {
			matched = append(matched, r)
		}
	}
	mu.RUnlock()

	var injected error
	for _, r := range matched {
		if r.Mode == ModeScale {
			continue // only Factor consults scale rules
		}
		if r.Mode == ModeError && !errCapable {
			continue
		}
		if injected != nil && r.Mode == ModeError {
			// First error rule wins; don't consume later error windows.
			continue
		}
		if !r.fire() {
			continue
		}
		switch r.Mode {
		case ModeLatency:
			time.Sleep(r.Latency)
		case ModePanic:
			panic(&Error{Point: p, RuleID: r.ID, Panicked: true, Retryable: r.Transient, Msg: r.Msg})
		case ModeError:
			injected = &Error{Point: p, RuleID: r.ID, Retryable: r.Transient, Msg: r.Msg}
		}
	}
	return injected
}

// ParseRules parses a rule-spec string: rules separated by ';', fields
// within a rule by ','. Fields are key=value pairs (booleans may omit
// =value):
//
//	point=optimizer.cost,mode=error,transient,after=3,count=2
//	point=storage.heap.get,mode=latency,latency=5ms
//	mode=panic,prob=0.01,seed=7
//
// Recognized keys: id, point, mode (error|latency|panic|scale), after,
// count, prob, seed, latency (Go duration), scale (multiplier),
// transient, msg.
func ParseRules(spec string) ([]Rule, error) {
	var out []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		for _, f := range strings.Split(rs, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			key, val, hasVal := strings.Cut(f, "=")
			var err error
			switch key {
			case "id":
				r.ID = val
			case "point":
				r.Point = Point(val)
			case "mode":
				switch val {
				case "error":
					r.Mode = ModeError
				case "latency":
					r.Mode = ModeLatency
				case "panic":
					r.Mode = ModePanic
				case "scale":
					r.Mode = ModeScale
				default:
					return nil, fmt.Errorf("faults: unknown mode %q (want error, latency, panic or scale)", val)
				}
			case "after":
				r.After, err = strconv.ParseInt(val, 10, 64)
			case "count":
				r.Count, err = strconv.ParseInt(val, 10, 64)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case "seed":
				r.Seed, err = strconv.ParseInt(val, 10, 64)
			case "latency":
				r.Latency, err = time.ParseDuration(val)
			case "scale":
				r.Scale, err = strconv.ParseFloat(val, 64)
			case "transient":
				if !hasVal {
					r.Transient = true
				} else {
					r.Transient, err = strconv.ParseBool(val)
				}
			case "msg":
				r.Msg = val
			default:
				return nil, fmt.Errorf("faults: unknown rule field %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: bad value for %q: %v", key, err)
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: empty rule spec")
	}
	return out, nil
}
