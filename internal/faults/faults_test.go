package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCountWindow(t *testing.T) {
	defer Reset()
	rs := Install(Rule{Point: OptimizerCost, Mode: ModeError, After: 2, Count: 3, Transient: true})
	id := rs[0].ID

	var errsSeen int
	for i := 0; i < 10; i++ {
		if err := Inject(OptimizerCost); err != nil {
			errsSeen++
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("injected error is not *Error: %v", err)
			}
			if !fe.Transient() {
				t.Fatalf("expected transient fault")
			}
			if i < 2 || i > 4 {
				t.Fatalf("fault fired on call %d, want window [2,5)", i)
			}
		}
	}
	if errsSeen != 3 {
		t.Fatalf("fired %d times, want 3", errsSeen)
	}
	if got := Fired(id); got != 3 {
		t.Fatalf("Fired(%s) = %d, want 3", id, got)
	}
}

func TestPointAddressing(t *testing.T) {
	defer Reset()
	Install(Rule{Point: StorageHeapGet, Mode: ModeError})
	if err := Inject(OptimizerCost); err != nil {
		t.Fatalf("rule on %s fired at %s", StorageHeapGet, OptimizerCost)
	}
	if err := Inject(StorageHeapGet); err == nil {
		t.Fatalf("rule did not fire at its own point")
	}
}

func TestHitSkipsErrorRules(t *testing.T) {
	defer Reset()
	rs := Install(Rule{Point: StatsSample, Mode: ModeError})
	Hit(StatsSample) // must not panic, must not consume the window
	if got := Fired(rs[0].ID); got != 0 {
		t.Fatalf("error rule fired %d times at a Hit-only site", got)
	}
	if err := Inject(StatsSample); err == nil {
		t.Fatalf("window consumed by Hit")
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Install(Rule{Point: CostCacheDo, Mode: ModePanic, Msg: "boom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic")
		}
		fe, ok := r.(*Error)
		if !ok || !fe.Panicked {
			t.Fatalf("panic value %v, want *Error with Panicked", r)
		}
	}()
	_ = Inject(CostCacheDo)
}

func TestLatencyMode(t *testing.T) {
	defer Reset()
	Install(Rule{Point: OptimizerCost, Mode: ModeLatency, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject(OptimizerCost); err != nil {
		t.Fatalf("latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("no latency injected (took %v)", d)
	}
}

func TestSeededProbDeterminism(t *testing.T) {
	run := func() []bool {
		defer Reset()
		Install(Rule{Point: OptimizerCost, Mode: ModeError, Prob: 0.5, Seed: 42})
		out := make([]bool, 40)
		for i := range out {
			out[i] = Inject(OptimizerCost) != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded probabilistic rule diverged at call %d", i)
		}
	}
}

func TestConcurrentInject(t *testing.T) {
	defer Reset()
	rs := Install(Rule{Point: OptimizerCost, Mode: ModeError, After: 50, Count: 25, Transient: true})
	var wg sync.WaitGroup
	var fired sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := Inject(OptimizerCost); err != nil {
					fired.Store([2]int{g, i}, true)
				}
			}
		}(g)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 25 {
		t.Fatalf("fired %d times under concurrency, want exactly 25", n)
	}
	if got := Fired(rs[0].ID); got != 25 {
		t.Fatalf("Fired = %d, want 25", got)
	}
}

func TestParseRules(t *testing.T) {
	rs, err := ParseRules("point=optimizer.cost,mode=error,transient,after=3,count=2 ; mode=latency,latency=5ms,prob=0.25,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rs))
	}
	r := rs[0]
	if r.Point != OptimizerCost || r.Mode != ModeError || !r.Transient || r.After != 3 || r.Count != 2 {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	r = rs[1]
	if r.Point != "" || r.Mode != ModeLatency || r.Latency != 5*time.Millisecond || r.Prob != 0.25 || r.Seed != 7 {
		t.Fatalf("rule 1 parsed wrong: %+v", r)
	}
	for _, bad := range []string{"", "mode=nope", "after=x", "wat=1", "latency=zzz"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

// TestScaleMode: Factor multiplies the firing scale rules' factors,
// respects count windows, and defaults to 1; Inject ignores scale
// rules entirely — they neither fire nor consume their windows there.
func TestScaleMode(t *testing.T) {
	defer Reset()
	if got := Factor(ContinuousObserve); got != 1 {
		t.Fatalf("Factor with no rules = %v, want 1", got)
	}
	rs := Install(
		Rule{ID: "s2", Point: ContinuousObserve, Mode: ModeScale, Scale: 2, Count: 2},
		Rule{ID: "s3", Point: ContinuousObserve, Mode: ModeScale, Scale: 3, Count: 1},
		Rule{ID: "other", Point: OptimizerCost, Mode: ModeScale, Scale: 100},
	)

	// Error-capable injection at the same point must not consume the
	// scale windows (and must not inject anything).
	for i := 0; i < 5; i++ {
		if err := Inject(ContinuousObserve); err != nil {
			t.Fatalf("Inject fired a scale rule: %v", err)
		}
	}
	for _, id := range []string{"s2", "s3"} {
		if n := Fired(id); n != 0 {
			t.Fatalf("Inject consumed scale rule %s's window (%d fires)", id, n)
		}
	}

	// Call 1: both in-window rules fire and multiply; the other-point
	// rule never matches.
	if got := Factor(ContinuousObserve); got != 6 {
		t.Fatalf("Factor call 1 = %v, want 2*3 = 6", got)
	}
	// Call 2: s3's window (count 1) is spent.
	if got := Factor(ContinuousObserve); got != 2 {
		t.Fatalf("Factor call 2 = %v, want 2", got)
	}
	// Call 3: both spent.
	if got := Factor(ContinuousObserve); got != 1 {
		t.Fatalf("Factor call 3 = %v, want 1", got)
	}
	if Fired("s2") != 2 || Fired("s3") != 1 {
		t.Fatalf("fired counts = %d/%d, want 2/1", Fired("s2"), Fired("s3"))
	}
	if rs[2].ID != "other" || Fired("other") != 0 {
		t.Fatalf("other-point scale rule fired %d times at the wrong point", Fired("other"))
	}

	// A zero/negative scale is inert rather than zeroing measurements.
	Reset()
	Install(Rule{Point: ContinuousObserve, Mode: ModeScale, Scale: 0})
	if got := Factor(ContinuousObserve); got != 1 {
		t.Fatalf("Factor with inert scale = %v, want 1", got)
	}
}

// TestParseRulesScale: the flag syntax round-trips scale rules.
func TestParseRulesScale(t *testing.T) {
	rs, err := ParseRules("point=continuous.observe,mode=scale,scale=25,count=1")
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Point != ContinuousObserve || r.Mode != ModeScale || r.Scale != 25 || r.Count != 1 {
		t.Fatalf("scale rule parsed wrong: %+v", r)
	}
	if _, err := ParseRules("mode=scale,scale=zzz"); err == nil {
		t.Error("bad scale value accepted")
	}
}
