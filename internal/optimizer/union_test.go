package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

// unionFixture: a wide table where two highly selective equality
// disjuncts each have their own narrow index, neither covering — the
// regime where OR-ing RID sets beats both the heap scan (which must
// read every page) and any single seek (which cannot serve a
// disjunction at all).
func unionFixture(t testing.TB) (*engine.Database, Configuration) {
	t.Helper()
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
		{Name: "more", Type: value.String, Width: 120},
	})); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 30000; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewString("p"),
			value.NewString("q"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	ia, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	return db, Configuration{ia, ib}
}

func TestIndexUnionChosenForOr(t *testing.T) {
	db, cfg := unionFixture(t)
	o := New(db)
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE (a = 7 OR b = 13)")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "IndexUnion(") {
		t.Fatalf("expected index union:\n%s", plan.Explain())
	}
	// Both arms report seek usage, so merging's Seek-Cost sees them.
	seeks := 0
	for _, u := range plan.Uses {
		if u.Mode == UsageSeek {
			seeks++
		}
	}
	if seeks != 2 {
		t.Errorf("union should report 2 seek usages, got %v", plan.Uses)
	}
	// It must beat the full scan the disjunction otherwise forces.
	scan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost >= scan.Cost {
		t.Errorf("union (%v) not cheaper than scan plan (%v)", plan.Cost, scan.Cost)
	}
}

func TestIndexUnionChosenForIn(t *testing.T) {
	db, cfg := unionFixture(t)
	o := New(db)
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a IN (7, 13, 21)")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "IndexUnion(") {
		t.Fatalf("expected index union for IN list:\n%s", plan.Explain())
	}
	// One arm per IN member, all over the same index.
	if n := strings.Count(plan.Explain(), "IndexSeek("); n != 3 {
		t.Errorf("expected 3 union arms, got %d:\n%s", n, plan.Explain())
	}
}

func TestIndexUnionDisabled(t *testing.T) {
	db, cfg := unionFixture(t)
	o := New(db)
	o.DisableIndexUnion = true
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE (a = 7 OR b = 13)")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "IndexUnion(") {
		t.Errorf("union chosen despite being disabled:\n%s", plan.Explain())
	}
}

func TestIndexUnionNeedsEveryArm(t *testing.T) {
	db, cfg := unionFixture(t)
	o := New(db)
	// Only a is indexed: the b disjunct has no arm, so no union — a
	// partial union would miss rows.
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE (a = 7 OR b = 13)")
	plan, err := o.Optimize(stmt, cfg[:1])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "IndexUnion(") {
		t.Errorf("union built with an unindexed disjunct:\n%s", plan.Explain())
	}
}

// armOrderFixture: six equality predicates where the two selective
// columns' indexes come LAST in configuration order. Regression for the
// arm-truncation bug: intersectionPaths used to cap candidate arms at
// maxIntersectArms in enumeration order, so a cheap pair past position
// four was never paired.
func armOrderFixture(t testing.TB) (*engine.Database, Configuration) {
	t.Helper()
	cols := []catalog.Column{
		{Name: "u0", Type: value.Int},
		{Name: "u1", Type: value.Int},
		{Name: "u2", Type: value.Int},
		{Name: "u3", Type: value.Int},
		{Name: "s1", Type: value.Int},
		{Name: "s2", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
	}
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", cols)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 30000; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(rng.Int63n(4)),
			value.NewInt(rng.Int63n(4)),
			value.NewInt(rng.Int63n(4)),
			value.NewInt(rng.Int63n(4)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewString("p"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	var cfg Configuration
	for _, c := range []string{"u0", "u1", "u2", "u3", "s1", "s2"} {
		def, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{c})
		if err != nil {
			t.Fatal(err)
		}
		cfg = append(cfg, def)
	}
	return db, cfg
}

func TestIntersectionPairsMostSelectiveArms(t *testing.T) {
	db, cfg := armOrderFixture(t)
	o := New(db)
	stmt := mustSelect(t, db,
		"SELECT payload FROM wide WHERE u0 = 1 AND u1 = 2 AND u2 = 3 AND u3 = 0 AND s1 = 77 AND s2 = 191")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	explain := plan.Explain()
	if !strings.Contains(explain, "IndexIntersect(") {
		t.Fatalf("expected an intersection of the selective arms:\n%s", explain)
	}
	if !strings.Contains(explain, "ix_wide_s1") || !strings.Contains(explain, "ix_wide_s2") {
		t.Errorf("intersection skipped the selective pair enumerated past the arm cap:\n%s", explain)
	}
}

// TestIntersectionRowEstimateMonotonic pins the floor-final fix in
// buildIntersection: the row-count flooring that protects the cost
// formulas must not leak into the cardinality estimate, so an
// intersection's estimated rows can never exceed either arm's own
// estimate — even when the conjunction selects less than one row.
func TestIntersectionRowEstimateMonotonic(t *testing.T) {
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
	})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(int64(i)),
			value.NewInt(int64(i)),
			value.NewString("p"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	cfg := Configuration{
		mustIndex(t, db, "wide", "a"),
		mustIndex(t, db, "wide", "b"),
	}
	o := New(db)
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a = 5 AND b = 5")
	ctx, err := o.newContext(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ti := ctx.tables[0]
	paths := enumerateAccessPaths(ti, cfg.ForTable("wide"), false, false, false)
	minSeek := ti.rowCount
	var inter *IndexIntersectNode
	for _, p := range paths {
		switch n := p.node.(type) {
		case *IndexSeekNode:
			if n.Rows() < minSeek {
				minSeek = n.Rows()
			}
		case *IndexIntersectNode:
			inter = n
		}
	}
	if inter == nil {
		t.Fatal("no intersection path enumerated")
	}
	if inter.Rows() > minSeek {
		t.Errorf("intersection estimates %v rows, more than its cheapest arm's %v", inter.Rows(), minSeek)
	}
	if inter.Rows() >= 1 {
		t.Errorf("sub-row conjunction floored up: estimated %v rows", inter.Rows())
	}
}
