package optimizer

import "math"

// Cost model constants. Units are arbitrary "cost units" anchored at
// one sequential page read = 1.0; only relative costs matter to the
// merging algorithm, as with the optimizer-estimated costs the paper
// consumes through Showplan.
const (
	// SeqPageCost is the cost of one sequential page read.
	SeqPageCost = 1.0
	// RandPageCost is the cost of one random page read (seek-dominated).
	RandPageCost = 4.0
	// CPURowCost is the CPU cost of processing one row.
	CPURowCost = 0.01
	// CPUOpCost is the CPU cost of one primitive operation (compare/hash).
	CPUOpCost = 0.0025
	// SortMemRows approximates the number of rows that sort in memory;
	// larger inputs pay a spill pass.
	SortMemRows = 1 << 20
)

// scanCost prices a full heap scan.
func scanCost(pages int64, rows float64) float64 {
	return float64(pages)*SeqPageCost + rows*CPURowCost
}

// indexScanCost prices a full covering-index scan.
func indexScanCost(idxPages int64, entries float64) float64 {
	return float64(idxPages)*SeqPageCost + entries*CPURowCost
}

// seekCost prices an index seek returning matchRows of the index's
// entries, plus RID lookups when not covering.
func seekCost(height int, leafPages int64, totalEntries, matchRows float64, covering bool, heapPages int64) float64 {
	// Root-to-leaf descent.
	c := float64(height) * RandPageCost
	// Contiguous leaf range for the matches.
	frac := 0.0
	if totalEntries > 0 {
		frac = matchRows / totalEntries
	}
	touched := math.Ceil(frac * float64(leafPages))
	if touched < 1 {
		touched = 1
	}
	c += touched * SeqPageCost
	c += matchRows * CPURowCost
	if !covering {
		// Each match fetches its heap row at a random page. Cap at a
		// small multiple of the heap size: beyond that a buffer pool
		// would stop re-reading pages.
		lookup := matchRows * RandPageCost
		cap := 2 * float64(heapPages) * RandPageCost
		if lookup > cap && cap > 0 {
			lookup = cap
		}
		c += lookup + matchRows*CPURowCost
	}
	return c
}

// sortCost prices sorting rows tuples.
func sortCost(rows float64) float64 {
	if rows < 2 {
		return CPUOpCost
	}
	c := rows * math.Log2(rows) * CPUOpCost * 2
	if rows > SortMemRows {
		// External pass: write + read the run files.
		pages := rows / 64 // ~64 rows/page at an assumed 128B row
		c += 2 * pages * SeqPageCost
	}
	return c
}

// hashJoinCost prices building on the smaller input and probing with
// the larger, excluding child costs.
func hashJoinCost(buildRows, probeRows float64) float64 {
	return buildRows*(CPURowCost+2*CPUOpCost) + probeRows*(CPURowCost+CPUOpCost)
}

// hashAggCost prices hash aggregation, excluding child cost.
func hashAggCost(inRows, groups float64) float64 {
	return inRows*(CPURowCost+CPUOpCost) + groups*CPURowCost
}

// streamAggCost prices aggregation over sorted input.
func streamAggCost(inRows float64) float64 {
	return inRows * CPURowCost
}
