package optimizer

import (
	"fmt"
	"math"
	"strings"

	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
)

// IndexIntersectNode ANDs two index seeks by intersecting their RID
// sets, then fetches the surviving heap rows — the "index
// intersection" technique §3.5.2 cites as something modern query
// processors do and external cost models cannot track. Each child is
// an IndexSeekNode used purely as a RID producer.
type IndexIntersectNode struct {
	baseNode
	Table    string
	Residual []sql.Predicate
}

// Describe implements Node.
func (n *IndexIntersectNode) Describe() string {
	names := make([]string, len(n.children))
	for i, c := range n.children {
		names[i] = c.(*IndexSeekNode).Index.Name
	}
	s := fmt.Sprintf("IndexIntersect(%s) +RIDLookup", strings.Join(names, " ∩ "))
	if len(n.Residual) > 0 {
		s += " residual=" + predList(n.Residual)
	}
	return s
}

// maxIntersectArms bounds how many seek paths are paired.
const maxIntersectArms = 4

// seekArm is a candidate intersection arm: a seek path together with
// its seek-predicate selectivity (matchSeek's clamped product, in
// index-column order — the same value the cost-only planner computes).
type seekArm struct {
	seek *IndexSeekNode
	sel  float64
}

// sortSeekArms stable-sorts arms by ascending selectivity (most
// selective first) with an insertion sort: the slices are tiny and the
// cost-only twin must stay allocation-free, so no sort.SliceStable.
func sortSeekArms(arms []seekArm) {
	for i := 1; i < len(arms); i++ {
		for j := i; j > 0 && arms[j].sel < arms[j-1].sel; j-- {
			arms[j], arms[j-1] = arms[j-1], arms[j]
		}
	}
}

// intersectionPaths builds index-intersection access paths from the
// enumerated single-index seeks: pairs with different leading columns,
// each moderately selective on its own, whose conjunction is selective
// enough to pay for two B+-tree probes plus RID lookups.
func intersectionPaths(ti *tableInfo, arms []seekArm) []accessPath {
	if len(arms) < 2 {
		return nil
	}
	// Keep the most selective few seeks as candidate arms.
	sortSeekArms(arms)
	if len(arms) > maxIntersectArms {
		arms = arms[:maxIntersectArms]
	}

	var out []accessPath
	for i := 0; i < len(arms); i++ {
		for j := i + 1; j < len(arms); j++ {
			a, b := arms[i].seek, arms[j].seek
			if a.Index.Columns[0] == b.Index.Columns[0] {
				continue // same leading column: the arms consume the same predicate
			}
			if sharesSeekPredicate(a, b) {
				continue // a predicate consumed twice would double-count selectivity
			}
			node := buildIntersection(ti, a, b, arms[i].sel, arms[j].sel)
			if node != nil {
				out = append(out, accessPath{node: node, rows: node.Rows()})
			}
		}
	}
	return out
}

// sharesSeekPredicate reports whether the two seeks consume a common
// predicate (same column and operator).
func sharesSeekPredicate(a, b *IndexSeekNode) bool {
	key := func(p sql.Predicate) string { return p.Col.Column + "/" + p.Op.String() }
	seen := make(map[string]bool)
	for _, p := range a.SeekEq {
		seen[key(p)] = true
	}
	if a.SeekRng != nil {
		seen[key(*a.SeekRng)] = true
	}
	for _, p := range b.SeekEq {
		if seen[key(p)] {
			return true
		}
	}
	if b.SeekRng != nil && seen[key(*b.SeekRng)] {
		return true
	}
	return false
}

// buildIntersection assembles and costs the intersection node from
// two arms and their seek selectivities.
func buildIntersection(ti *tableInfo, a, b *IndexSeekNode, selA, selB float64) *IndexIntersectNode {
	matchA := ti.rowCount * selA
	matchB := ti.rowCount * selB
	interRows := ti.rowCount * selA * selB

	// Residual: table predicates not consumed by either arm.
	consumed := make(map[string]bool)
	mark := func(s *IndexSeekNode) {
		for _, p := range s.SeekEq {
			consumed[p.String()] = true
		}
		if s.SeekRng != nil {
			consumed[s.SeekRng.String()] = true
		}
	}
	mark(a)
	mark(b)
	var residual []sql.Predicate
	resSel := 1.0
	for _, sp := range ti.preds {
		if !consumed[sp.p.String()] {
			residual = append(residual, sp.p)
			resSel *= sp.sel
		}
	}

	// Cost: two index-only probes + RID set operations + heap lookups
	// for the intersection + residual evaluation.
	probe := func(s *IndexSeekNode, matched float64) float64 {
		kw := ti.table.WidthOf(s.Index.Columns)
		pages := storage.EstimateIndexPages(int64(ti.rowCount), kw)
		h := storage.EstimateIndexHeight(int64(ti.rowCount), kw)
		return seekCost(h, pages, ti.rowCount, matched, true /* rid-only */, ti.heapPages)
	}
	cost := probe(a, matchA) + probe(b, matchB)
	cost += (matchA + matchB) * CPUOpCost // hash the RID sets
	// Heap fetches price at least one row; the row *estimate* below
	// stays unfloored so residual selectivity scales the true
	// intersection cardinality (flooring first would inflate highly
	// selective intersections).
	fetchRows := interRows
	if fetchRows < 1 {
		fetchRows = 1
	}
	lookup := fetchRows * RandPageCost
	if cap := 2 * float64(ti.heapPages) * RandPageCost; lookup > cap {
		lookup = cap
	}
	cost += lookup + fetchRows*CPURowCost

	n := &IndexIntersectNode{Table: ti.name, Residual: residual}
	n.children = []Node{a, b}
	n.cost = cost
	n.rows = math.Max(interRows*clampSel(resSel), 0)
	return n
}
