package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

// intersectFixture: a wide table with two independently selective
// predicates on different columns, each with its own narrow index,
// neither covering — the sweet spot for RID intersection.
func intersectFixture(t testing.TB) (*engine.Database, Configuration) {
	t.Helper()
	db := engine.NewDatabase()
	if err := db.CreateTable(catalog.MustNewTable("wide", []catalog.Column{
		{Name: "a", Type: value.Int},
		{Name: "b", Type: value.Int},
		{Name: "payload", Type: value.String, Width: 120},
		{Name: "more", Type: value.String, Width: 120},
	})); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30000; i++ {
		if err := db.Insert("wide", value.Row{
			value.NewInt(rng.Int63n(100)),
			value.NewInt(rng.Int63n(100)),
			value.NewString("p"),
			value.NewString("q"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	ia, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	ib, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	return db, Configuration{ia, ib}
}

func TestIndexIntersectionChosen(t *testing.T) {
	db, cfg := intersectFixture(t)
	o := New(db)
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a = 7 AND b = 13")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "IndexIntersect") {
		t.Fatalf("expected index intersection:\n%s", plan.Explain())
	}
	// Both arms report seek usage — merging's Seek-Cost sees them.
	seeks := 0
	for _, u := range plan.Uses {
		if u.Mode == UsageSeek {
			seeks++
		}
	}
	if seeks != 2 {
		t.Errorf("intersection should report 2 seek usages, got %v", plan.Uses)
	}
	// It must beat both the table scan and either single-index seek.
	single, err := o.Optimize(stmt, cfg[:1])
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost >= single.Cost {
		t.Errorf("intersection (%v) not cheaper than single-index plan (%v)", plan.Cost, single.Cost)
	}
}

func TestIndexIntersectionDisabled(t *testing.T) {
	db, cfg := intersectFixture(t)
	o := New(db)
	o.DisableIndexIntersection = true
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a = 7 AND b = 13")
	plan, err := o.Optimize(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "IndexIntersect") {
		t.Errorf("intersection chosen despite being disabled:\n%s", plan.Explain())
	}
}

func TestIndexIntersectionNotUsedWhenCoveringWins(t *testing.T) {
	db, cfg := intersectFixture(t)
	// A covering composite index dominates intersection.
	comp, err := catalog.NewIndexDef(db.Schema(), "", "wide", []string{"a", "b", "payload"})
	if err != nil {
		t.Fatal(err)
	}
	o := New(db)
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a = 7 AND b = 13")
	plan, err := o.Optimize(stmt, append(cfg.Clone(), comp))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), comp.Name) {
		t.Errorf("composite covering index should win:\n%s", plan.Explain())
	}
}

func TestIndexIntersectionSkipsSameLeadingColumn(t *testing.T) {
	db, _ := intersectFixture(t)
	o := New(db)
	// Two indexes both leading with a: no valid intersection pair.
	i1, _ := catalog.NewIndexDef(db.Schema(), "x1", "wide", []string{"a"})
	i2, _ := catalog.NewIndexDef(db.Schema(), "x2", "wide", []string{"a", "b"})
	stmt := mustSelect(t, db, "SELECT payload FROM wide WHERE a = 7 AND b = 13")
	plan, err := o.Optimize(stmt, Configuration{i1, i2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "IndexIntersect") {
		t.Errorf("intersection built from same-leading-column arms:\n%s", plan.Explain())
	}
}
