// Package optimizer implements a cost-based query optimizer with
// what-if (hypothetical) index support. It is the stand-in for the SQL
// Server 7.0 optimizer + Showplan interface the paper builds on: given
// a query and a *configuration* (a set of index definitions that need
// not be materialized), it returns the cheapest plan it can find, its
// estimated cost, and a report of which indexes the plan uses and how
// (seek vs scan) — everything the index-merging core consumes.
package optimizer

import (
	"indexmerge/internal/catalog"
	"indexmerge/internal/stats"
)

// Meta is the read-only database metadata the optimizer needs. The
// engine's Database satisfies it.
//
// Implementations must be safe for concurrent calls as long as the
// underlying database is not mutated — the parallel merge search
// issues Schema/TableRowCount/TableStats reads from many goroutines
// at once.
type Meta interface {
	Schema() *catalog.Schema
	TableRowCount(table string) int64
	TableStats(table string) *stats.TableStats
}

// Configuration is a set of index definitions to optimize against.
// Indexes in a configuration are hypothetical from the optimizer's
// point of view: only their definitions and the base tables'
// statistics matter, exactly as with the what-if interface of [CN98].
type Configuration []catalog.IndexDef

// ForTable returns the configuration's indexes on one table.
func (c Configuration) ForTable(table string) []catalog.IndexDef {
	var out []catalog.IndexDef
	for _, d := range c {
		if d.Table == table {
			out = append(out, d)
		}
	}
	return out
}

// Contains reports whether an index with the same identity
// (table + ordered columns) is present.
func (c Configuration) Contains(def catalog.IndexDef) bool {
	key := def.Key()
	for _, d := range c {
		if d.Key() == key {
			return true
		}
	}
	return false
}

// Clone returns a copy of the configuration.
func (c Configuration) Clone() Configuration {
	return append(Configuration(nil), c...)
}
