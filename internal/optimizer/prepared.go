package optimizer

import (
	"fmt"
	"math"
	"sync"

	"indexmerge/internal/faults"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
	"indexmerge/internal/value"
)

// StatsVersioner is an optional extension of Meta: metadata providers
// that report a monotonically increasing statistics version enable
// staleness detection for prepared queries. engine.Database implements
// it (the version bumps on every Analyze), so prepared planning errors
// out instead of silently costing against superseded selectivities
// after statistics are rebuilt.
type StatsVersioner interface {
	StatsVersion() uint64
}

// PreparedQuery is a compact, immutable descriptor of one resolved
// query: everything planning derives from the statement and the
// statistics alone — referenced tables in FROM order, per-table
// required columns, predicates with histogram-probed selectivities,
// the conjunction selectivity, join selectivities, group/order
// satisfaction metadata, and heap-page estimates — computed once so
// the per-configuration fast paths (OptimizePrepared, CostPrepared)
// never re-walk the AST or re-probe histograms.
//
// A PreparedQuery is read-only after PrepareQuery returns and safe for
// concurrent use by any number of goroutines.
type PreparedQuery struct {
	// Stmt is the resolved statement the descriptor was built from.
	Stmt *sql.SelectStmt

	tables []*tableInfo          // FROM order, with prefilter metadata
	byName map[string]*tableInfo // built once at prepare, shared by every call
	cost   []costTable           // cost-only planner extras, aligned with tables
	joins  []preparedJoin        // Stmt.Joins with resolved table positions

	groupDistinct  []float64 // per GROUP BY column: distinctOf (0 = unknown table, skipped)
	groupCols      []string  // distinct GROUP BY column names, first-occurrence order
	groupSameTable bool      // every GROUP BY column is on tables[0]
	hasAggs        bool

	// simple marks queries whose predicate lists (including synthetic
	// join probes) fit CostPrepared's bitmask fast path; the rest fall
	// back to full prepared planning.
	simple bool

	versioner    StatsVersioner
	statsVersion uint64
}

// costTable carries the query-invariant numbers the allocation-free
// cost-only planner needs for one referenced table.
type costTable struct {
	ti           *tableInfo
	allSel       float64 // product of predicate selectivities in predicate order (unclamped)
	filteredRows float64 // rowCount × clampSel(allSel)
	scanCost     float64 // full heap scan cost
	// predColOp/predStr assign each predicate an equivalence class —
	// by (column, operator) and by rendered text respectively — so the
	// intersection planner's "arms share a predicate" and "predicate
	// consumed by an arm" set tests become bitmask operations.
	predColOp []uint8
	predStr   []uint8
	// synth holds the synthetic join-column equality probes (selectivity
	// from column density) used by parameterized inner seeks, in the
	// statement's join-predicate order.
	synth []scoredPred
}

// preparedJoin is one join predicate with its endpoints resolved to
// table positions and its selectivity precomputed. joinSelectivity is
// symmetric in its arguments, so one value serves both orientations.
type preparedJoin struct {
	left, right       int // positions in tables; -1 when the table is not in FROM
	leftCol, rightCol string
	sel               float64
}

// connects reports whether the join predicate links table t to the
// joined subset rest — the prepared mirror of connectingPreds.
func (j *preparedJoin) connects(rest, t int) bool {
	if j.left == t && j.right >= 0 && rest&(1<<uint(j.right)) != 0 {
		return true
	}
	return j.right == t && j.left >= 0 && rest&(1<<uint(j.left)) != 0
}

// myCol returns the join column on table t's side.
func (j *preparedJoin) myCol(t int) string {
	if j.left == t {
		return j.leftCol
	}
	return j.rightCol
}

// PreparedWorkload pairs a workload with its prepared query
// descriptors, aligned by position. Prepare once per (workload,
// statistics) pair and reuse across every configuration probe.
type PreparedWorkload struct {
	W       *sql.Workload
	Queries []*PreparedQuery
}

// Len returns the number of prepared queries.
func (pw *PreparedWorkload) Len() int { return len(pw.Queries) }

// PrepareWorkload resolves every workload query into its prepared
// descriptor against the given metadata. The returned workload is
// immutable and safe for concurrent use.
func PrepareWorkload(w *sql.Workload, meta Meta) (*PreparedWorkload, error) {
	pw := &PreparedWorkload{W: w, Queries: make([]*PreparedQuery, len(w.Queries))}
	for i, q := range w.Queries {
		pq, err := PrepareQuery(q.Stmt, meta)
		if err != nil {
			return nil, fmt.Errorf("optimizer: prepare query %d: %w", i+1, err)
		}
		pw.Queries[i] = pq
	}
	return pw, nil
}

// PrepareWorkload prepares against the optimizer's own metadata.
func (o *Optimizer) PrepareWorkload(w *sql.Workload) (*PreparedWorkload, error) {
	return PrepareWorkload(w, o.meta)
}

// PrepareQuery prepares a single statement against the optimizer's own
// metadata.
func (o *Optimizer) PrepareQuery(stmt *sql.SelectStmt) (*PreparedQuery, error) {
	return PrepareQuery(stmt, o.meta)
}

// PrepareQuery builds the query-invariant descriptor for one resolved
// statement: the same derivations newContext performs per Optimize
// call, plus the precomputed products, predicate equivalence classes,
// join metadata and relevant-index prefilter sets the fast paths need.
func PrepareQuery(stmt *sql.SelectStmt, meta Meta) (*PreparedQuery, error) {
	pq := &PreparedQuery{Stmt: stmt, simple: true}
	if v, ok := meta.(StatsVersioner); ok {
		pq.versioner = v
		pq.statsVersion = v.StatsVersion()
	}
	sc := meta.Schema()
	names := stmt.TablesReferenced()
	pq.byName = make(map[string]*tableInfo, len(names))
	for _, name := range names {
		t, ok := sc.Table(name)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", name)
		}
		ti := &tableInfo{
			name:     name,
			table:    t,
			ts:       meta.TableStats(name),
			rowCount: float64(meta.TableRowCount(name)),
			required: stmt.ColumnsOf(name),
			filtered: true,
		}
		ti.heapPages = storage.EstimateHeapPages(int64(ti.rowCount), t.RowWidth())
		ti.initPreds(stmt)
		// Relevant-index prefilter: only a predicate with an equality or
		// range operator can start a seek on an index whose leading
		// column it restricts. (Union arms are exempt from the filter —
		// unionPath consults the full configuration — so disjunct
		// columns need not extend the lead set.)
		for _, sp := range ti.preds {
			if sp.p.Op.IsEquality() || sp.p.Op.IsRange() {
				ti.seekLead = appendDistinct(ti.seekLead, sp.p.Col.Column)
			}
		}
		ti.seekLeadJoin = ti.seekLead
		pq.tables = append(pq.tables, ti)
		pq.byName[name] = ti
	}

	// Join metadata: resolved table positions and the symmetric
	// selectivity, computed once per join predicate.
	for _, j := range stmt.Joins {
		pj := preparedJoin{
			left:     tablePos(pq.tables, j.Left.Table),
			right:    tablePos(pq.tables, j.Right.Table),
			leftCol:  j.Left.Column,
			rightCol: j.Right.Column,
		}
		if pj.left >= 0 && pj.right >= 0 {
			lt, rt := pq.tables[pj.left], pq.tables[pj.right]
			pj.sel = joinSelectivity(lt.ts, j.Left.Column, lt.rowCount, rt.ts, j.Right.Column, rt.rowCount)
		}
		pq.joins = append(pq.joins, pj)
	}

	// Per-table cost extras and synthetic join probes. Join columns also
	// extend the seekable-lead set: an index useless for base predicates
	// can still serve a parameterized inner seek.
	for _, ti := range pq.tables {
		ct := costTable{ti: ti, allSel: 1.0}
		for _, sp := range ti.preds {
			ct.allSel *= sp.sel
		}
		ct.filteredRows = ti.rowCount * clampSel(ct.allSel)
		ct.scanCost = scanCost(ti.heapPages, ti.rowCount)
		ct.predColOp, ct.predStr = predClasses(ti.preds)
		for _, j := range stmt.Joins {
			for _, side := range [2]sql.ColumnRef{j.Left, j.Right} {
				if side.Table != ti.name {
					continue
				}
				ti.seekLeadJoin = appendDistinct(ti.seekLeadJoin, side.Column)
				if hasSynth(ct.synth, side.Column) {
					continue
				}
				d := distinctOf(ti.ts, side.Column, ti.rowCount)
				ct.synth = append(ct.synth, scoredPred{
					p:   sql.Predicate{Col: side, Op: sql.OpEq, Val: value.NewNull()},
					sel: 1 / math.Max(d, 1),
				})
			}
		}
		if len(ti.preds)+len(ct.synth) > 64 {
			pq.simple = false
		}
		pq.cost = append(pq.cost, ct)
	}

	for _, it := range stmt.Select {
		if it.Agg != sql.AggNone {
			pq.hasAggs = true
			break
		}
	}
	pq.groupSameTable = true
	for _, c := range stmt.GroupBy {
		if ti := pq.byName[c.Table]; ti != nil {
			pq.groupDistinct = append(pq.groupDistinct, distinctOf(ti.ts, c.Column, ti.rowCount))
		} else {
			pq.groupDistinct = append(pq.groupDistinct, 0)
		}
		if c.Table != pq.tables[0].name {
			pq.groupSameTable = false
		}
		pq.groupCols = appendDistinct(pq.groupCols, c.Column)
	}
	if len(pq.groupCols) > 64 {
		pq.simple = false
	}
	return pq, nil
}

// IndexRelevant reports whether an index on the given table with the
// given key columns could contribute any access path to this prepared
// query: a covering scan (the columns contain every required column),
// a seek (the leading column carries an equality/range predicate or a
// join column a parameterized inner seek can bind — intersections are
// built from these same seeks), or an index-union arm (the leading
// column carries one of the query's normalized disjuncts, which the
// prefilter exempts because unionPath consults the full
// configuration). An index failing every test yields no path at all,
// so adding or removing it can never change CostPrepared — the
// invariant template-level cost tables rely on to price a
// configuration by its per-table relevant subsets alone.
func (pq *PreparedQuery) IndexRelevant(table string, cols []string) bool {
	ti, ok := pq.byName[table]
	if !ok || len(cols) == 0 {
		return false
	}
	if indexRelevant(cols, ti.seekLeadJoin, ti.required) {
		return true
	}
	for _, op := range ti.orPreds {
		for _, d := range op.disjuncts {
			if d.p.Col.Column == cols[0] {
				return true
			}
		}
	}
	return false
}

// checkFresh errors when the statistics the descriptor was prepared
// against have been rebuilt since (Analyze ran). Selectivities,
// cardinalities and page estimates are all baked in at prepare time,
// so a stale descriptor must be re-prepared, not silently reused.
func (pq *PreparedQuery) checkFresh() error {
	if pq.versioner != nil && pq.versioner.StatsVersion() != pq.statsVersion {
		return fmt.Errorf("optimizer: prepared query is stale: statistics were rebuilt after PrepareWorkload (re-prepare after Analyze)")
	}
	return nil
}

// OptimizePrepared is Optimize on the prepared fast path: the full
// node-building planner over the precomputed descriptor. Plans (cost,
// shape, index uses) are byte-identical to Optimize(pq.Stmt, cfg).
func (o *Optimizer) OptimizePrepared(pq *PreparedQuery, cfg Configuration) (*Plan, error) {
	o.invocations.Add(1)
	o.preparedCalls.Add(1)
	if err := faults.Inject(faults.OptimizerCost); err != nil {
		return nil, err
	}
	if err := pq.checkFresh(); err != nil {
		return nil, err
	}
	return o.planPrepared(pq, cfg)
}

// WorkloadCostPrepared computes Cost(W, C) over a prepared workload via
// the cost-only fast path; totals are bit-identical to WorkloadCost.
func (o *Optimizer) WorkloadCostPrepared(pw *PreparedWorkload, cfg Configuration) (float64, error) {
	total := 0.0
	for i, q := range pw.W.Queries {
		c, err := o.CostPrepared(pw.Queries[i], cfg)
		if err != nil {
			return 0, err
		}
		total += c * q.Freq
	}
	return total, nil
}

// ctxPool recycles planning contexts for the prepared node path; the
// descriptor supplies tables and byName, so a prepared Optimize call
// allocates no per-call planning state beyond the plan itself.
var ctxPool = sync.Pool{New: func() any { return new(optContext) }}

// planPrepared runs the shared node-building planner over the
// descriptor's immutable per-table state.
func (o *Optimizer) planPrepared(pq *PreparedQuery, cfg Configuration) (*Plan, error) {
	ctx := ctxPool.Get().(*optContext)
	ctx.opt, ctx.stmt, ctx.cfg = o, pq.Stmt, cfg
	ctx.tables, ctx.byName = pq.tables, pq.byName
	ctx.noIntersect = o.DisableIndexIntersection
	ctx.noUnion = o.DisableIndexUnion
	ctx.filter = !o.DisableRelevantIndexFilter
	var root Node
	var err error
	if len(ctx.tables) == 1 {
		root, err = ctx.planSingleTable()
	} else {
		root, err = ctx.planJoin()
	}
	ctx.release()
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Cost: root.Cost(), Uses: collectUses(root)}, nil
}

// release clears the context (dropping references into the descriptor
// and the configuration) and returns it to the pool.
func (ctx *optContext) release() {
	for i := range ctx.basePaths {
		ctx.basePaths[i] = accessPath{}
	}
	base := ctx.basePaths[:0]
	*ctx = optContext{basePaths: base}
	ctxPool.Put(ctx)
}

// predClasses computes the per-predicate equivalence classes used by
// the cost-only intersection planner: class representatives are the
// smallest predicate position with the same (column, operator) — and,
// separately, the same rendered text.
func predClasses(preds []scoredPred) (colOp, str []uint8) {
	if len(preds) == 0 {
		return nil, nil
	}
	colOp = make([]uint8, len(preds))
	str = make([]uint8, len(preds))
	strs := make([]string, len(preds))
	for i := range preds {
		strs[i] = preds[i].p.String()
		colOp[i] = uint8(i)
		str[i] = uint8(i)
		for j := 0; j < i; j++ {
			if preds[j].p.Col.Column == preds[i].p.Col.Column && preds[j].p.Op == preds[i].p.Op {
				colOp[i] = colOp[j]
				break
			}
		}
		for j := 0; j < i; j++ {
			if strs[j] == strs[i] {
				str[i] = str[j]
				break
			}
		}
	}
	return colOp, str
}

func appendDistinct(s []string, v string) []string {
	for _, c := range s {
		if c == v {
			return s
		}
	}
	return append(s, v)
}

func hasSynth(synth []scoredPred, col string) bool {
	for i := range synth {
		if synth[i].p.Col.Column == col {
			return true
		}
	}
	return false
}

func tablePos(tables []*tableInfo, name string) int {
	for i, ti := range tables {
		if ti.name == name {
			return i
		}
	}
	return -1
}
