package optimizer

import (
	"indexmerge/internal/catalog"
	"indexmerge/internal/sql"
	"indexmerge/internal/stats"
	"indexmerge/internal/storage"
)

// tableInfo caches everything the optimizer needs about one referenced
// table.
type tableInfo struct {
	name      string
	table     *catalog.Table
	ts        *stats.TableStats
	rowCount  float64
	heapPages int64
	preds     []scoredPred // restrictions with precomputed selectivities
	orPreds   []orPred     // disjunctive members of preds, normalized
	required  []string     // columns the query needs from this table
	// Prepared-planning metadata (zero for ad-hoc contexts): seekLead
	// holds the distinct columns carrying a seekable (equality or
	// range) predicate; seekLeadJoin additionally includes the table's
	// join columns, which parameterized inner seeks can bind. filtered
	// marks the metadata as populated, enabling the relevant-index
	// prefilter.
	seekLead     []string
	seekLeadJoin []string
	filtered     bool
}

// scoredPred pairs a predicate with its estimated selectivity. Join-
// parameterized equality predicates (inner side of an index nested-loop
// join) get their selectivity from column density rather than a literal.
type scoredPred struct {
	p   sql.Predicate
	sel float64
}

// orPred is one disjunctive predicate (OR or IN) in its normalized
// form: the position of the parent in tableInfo.preds plus the scored
// member predicates Disjuncts() expands to — the inputs the union
// access paths consume.
type orPred struct {
	pos       int
	disjuncts []scoredPred
}

// initPreds populates the table's scored predicates, and the
// normalized disjunct lists for the disjunctive ones, from the
// statement's restrictions. Shared by ad-hoc contexts and PrepareQuery
// so both derive identical selectivities in identical order.
func (ti *tableInfo) initPreds(stmt *sql.SelectStmt) {
	for _, p := range stmt.PredicatesOn(ti.name) {
		if ds := p.Disjuncts(); ds != nil {
			op := orPred{pos: len(ti.preds)}
			for _, d := range ds {
				op.disjuncts = append(op.disjuncts, scoredPred{p: d, sel: predicateSelectivity(ti.ts, d)})
			}
			ti.orPreds = append(ti.orPreds, op)
		}
		ti.preds = append(ti.preds, scoredPred{p: p, sel: predicateSelectivity(ti.ts, p)})
	}
}

// accessPath is one way to produce a table's (filtered) rows.
type accessPath struct {
	node    Node
	index   *catalog.IndexDef // nil for heap scan
	eqBound map[string]bool   // columns fixed by equality seek
	ordered []string          // column order the output is sorted by
	rows    float64
}

// enumerateAccessPaths returns every access path worth considering for
// the table: heap scan, covering index scans, and index seeks (covering
// or with RID lookups) for every index in the configuration. When
// filter is set (prepared planning), indexes that can contribute
// neither a covering scan nor a seek are skipped before costing; the
// skip provably never changes the chosen plan because such indexes
// yield no path at all.
func enumerateAccessPaths(ti *tableInfo, indexes []catalog.IndexDef, noIntersect, noUnion, filter bool) []accessPath {
	var paths []accessPath
	var arms []seekArm // intersection candidates, with seek selectivities
	filter = filter && ti.filtered

	// Heap scan with all predicates as residual filter.
	allSel := 1.0
	var rawPreds []sql.Predicate
	for _, sp := range ti.preds {
		allSel *= sp.sel
		rawPreds = append(rawPreds, sp.p)
	}
	outRows := ti.rowCount * clampSel(allSel)
	scan := &TableScanNode{Table: ti.name, Filter: rawPreds}
	scan.cost = scanCost(ti.heapPages, ti.rowCount)
	scan.rows = outRows
	paths = append(paths, accessPath{node: scan, rows: outRows})

	for i := range indexes {
		idx := indexes[i]
		if filter && !indexRelevant(idx.Columns, ti.seekLead, ti.required) {
			continue
		}
		keyWidth := ti.table.WidthOf(idx.Columns)
		idxPages := storage.EstimateIndexPages(int64(ti.rowCount), keyWidth)
		height := storage.EstimateIndexHeight(int64(ti.rowCount), keyWidth)
		covering := coversRequired(idx.Columns, ti.required)

		// Covering full scan: a narrow vertical slice of the table.
		if covering {
			n := &IndexScanNode{Index: idx, Filter: rawPreds}
			n.cost = indexScanCost(idxPages, ti.rowCount)
			n.rows = outRows
			paths = append(paths, accessPath{node: n, index: &indexes[i], ordered: idx.Columns, rows: outRows})
		}

		// Seek: equality prefix plus at most one range predicate.
		seekEq, seekRng, residual, seekSel := matchSeek(idx.Columns, ti.preds)
		if len(seekEq) == 0 && seekRng == nil {
			continue
		}
		matchRows := ti.rowCount * seekSel
		n := &IndexSeekNode{Index: idx, Covering: covering}
		eqBound := make(map[string]bool, len(seekEq))
		for _, sp := range seekEq {
			n.SeekEq = append(n.SeekEq, sp.p)
			eqBound[sp.p.Col.Column] = true
		}
		if seekRng != nil {
			rp := seekRng.p
			n.SeekRng = &rp
		}
		resSel := 1.0
		for _, sp := range residual {
			n.Residual = append(n.Residual, sp.p)
			resSel *= sp.sel
		}
		n.cost = seekCost(height, idxPages, ti.rowCount, matchRows, covering, ti.heapPages)
		n.rows = matchRows * clampSel(resSel)
		paths = append(paths, accessPath{node: n, index: &indexes[i], eqBound: eqBound, ordered: idx.Columns, rows: n.rows})
		arms = append(arms, seekArm{seek: n, sel: seekSel})
	}

	// Index intersection: AND two seeks through their RID sets (§3.5.2's
	// "innovative technique"). Only worthwhile with multiple seekable
	// predicates on different leading columns.
	if !noIntersect {
		paths = append(paths, intersectionPaths(ti, arms)...)
	}

	// Index union: OR several seeks through their RID sets — the dual
	// technique for disjunctions, one arm per normalized disjunct.
	if !noUnion && len(ti.orPreds) > 0 {
		paths = append(paths, unionPaths(ti, indexes)...)
	}
	return paths
}

// indexRelevant reports whether an index can contribute any access
// path: it must either cover the required columns (covering scan) or
// have a seekable predicate on its leading column (index seek —
// matchSeek stops at the first index column without an equality match,
// so nothing else can start a seek). Indexes failing both tests are
// skipped before costing; they could never appear in a plan.
func indexRelevant(idxCols, seekLeads, required []string) bool {
	if len(idxCols) == 0 {
		return false
	}
	for _, c := range seekLeads {
		if c == idxCols[0] {
			return true
		}
	}
	return coversRequired(idxCols, required)
}

// coversRequired is IndexDef.CoversColumns without the per-call set
// allocation: every required column must appear among the index
// columns.
func coversRequired(idxCols, required []string) bool {
	for _, r := range required {
		found := false
		for _, c := range idxCols {
			if c == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchSeek matches predicates against the index's column order:
// equality predicates bind leading columns; the first non-equality
// column may take one range predicate; everything else is residual.
func matchSeek(idxCols []string, preds []scoredPred) (seekEq []scoredPred, seekRng *scoredPred, residual []scoredPred, sel float64) {
	used := make([]bool, len(preds))
	sel = 1.0
	for _, col := range idxCols {
		foundEq := false
		for i, sp := range preds {
			if used[i] || sp.p.Col.Column != col {
				continue
			}
			if sp.p.Op.IsEquality() {
				seekEq = append(seekEq, sp)
				used[i] = true
				sel *= sp.sel
				foundEq = true
				break
			}
		}
		if foundEq {
			continue
		}
		// No equality on this column: try one range predicate, then stop.
		for i, sp := range preds {
			if used[i] || sp.p.Col.Column != col {
				continue
			}
			if sp.p.Op.IsRange() {
				cp := sp
				seekRng = &cp
				used[i] = true
				sel *= sp.sel
				break
			}
		}
		break
	}
	for i, sp := range preds {
		if !used[i] {
			residual = append(residual, sp)
		}
	}
	return seekEq, seekRng, residual, clampSel(sel)
}

// bestPath returns the minimum-cost access path.
func bestPath(paths []accessPath) accessPath {
	best := paths[0]
	for _, p := range paths[1:] {
		if p.node.Cost() < best.node.Cost() {
			best = p
		}
	}
	return best
}

// orderSatisfied reports whether the access path's sort order satisfies
// the ORDER BY keys for a single-table query: each ASC key must match
// the next index column, where columns bound by equality may be
// skipped (they are constant in the output).
func orderSatisfied(order []sql.OrderItem, path accessPath, table string) bool {
	if len(order) == 0 {
		return true
	}
	if path.ordered == nil {
		return false
	}
	pos := 0
	for _, key := range order {
		if key.Desc || key.Col.Table != table {
			return false
		}
		matched := false
		for pos < len(path.ordered) {
			col := path.ordered[pos]
			pos++
			if col == key.Col.Column {
				matched = true
				break
			}
			if path.eqBound[col] {
				continue // constant column, transparent to ordering
			}
			return false
		}
		if !matched {
			return false
		}
	}
	return true
}

// groupSatisfied reports whether the access path delivers rows
// clustered by the GROUP BY columns (any order), enabling streaming
// aggregation: the leading non-equality-bound index columns must be
// exactly the group-by column set.
func groupSatisfied(group []sql.ColumnRef, path accessPath, table string) bool {
	if len(group) == 0 {
		return false
	}
	if path.ordered == nil {
		return false
	}
	want := make(map[string]bool, len(group))
	for _, g := range group {
		if g.Table != table {
			return false
		}
		want[g.Column] = true
	}
	need := len(want)
	for _, col := range path.ordered {
		if need == 0 {
			return true
		}
		if want[col] {
			want[col] = false
			need--
			continue
		}
		if path.eqBound[col] {
			continue
		}
		return false
	}
	return need == 0
}
