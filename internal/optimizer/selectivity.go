package optimizer

import (
	"indexmerge/internal/sql"
	"indexmerge/internal/stats"
	"indexmerge/internal/value"
)

// Fallback selectivities when statistics are missing.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 1.0 / 3.0
	defaultNeSel    = 0.995
)

// predicateSelectivity estimates the fraction of a table's rows that
// satisfy one predicate.
func predicateSelectivity(ts *stats.TableStats, p sql.Predicate) float64 {
	if p.Op == sql.OpIn || p.Op == sql.OpOr {
		return disjunctionSelectivity(ts, p)
	}
	var cs *stats.ColumnStats
	if ts != nil {
		cs = ts.Column(p.Col.Column)
	}
	if cs == nil {
		switch {
		case p.Op == sql.OpEq:
			return defaultEqSel
		case p.Op == sql.OpNe:
			return defaultNeSel
		default:
			return defaultRangeSel
		}
	}
	switch p.Op {
	case sql.OpEq:
		return cs.SelectivityEq(p.Val)
	case sql.OpNe:
		return clampSel(1 - cs.SelectivityEq(p.Val))
	case sql.OpLt:
		return cs.SelectivityRange(value.NewNull(), p.Val, false, false)
	case sql.OpLe:
		return cs.SelectivityRange(value.NewNull(), p.Val, false, true)
	case sql.OpGt:
		return cs.SelectivityRange(p.Val, value.NewNull(), false, false)
	case sql.OpGe:
		return cs.SelectivityRange(p.Val, value.NewNull(), true, false)
	case sql.OpBetween:
		return cs.SelectivityRange(p.Lo, p.Hi, true, true)
	}
	return defaultRangeSel
}

// disjunctionSelectivity estimates an IN list or OR disjunction.
// IN members are disjoint point restrictions on one column, so their
// selectivities add. OR disjuncts may overlap; assuming independence,
// inclusion–exclusion gives sel(a OR b) = 1 - (1-sel(a))(1-sel(b)),
// generalized over all disjuncts. Both are clamped to [0, 1].
func disjunctionSelectivity(ts *stats.TableStats, p sql.Predicate) float64 {
	if p.Op == sql.OpIn {
		sum := 0.0
		for _, d := range p.Disjuncts() {
			sum += predicateSelectivity(ts, d)
		}
		return clampSel(sum)
	}
	miss := 1.0
	for _, d := range p.Or {
		miss *= 1 - clampSel(predicateSelectivity(ts, d))
	}
	return clampSel(1 - miss)
}

// conjunctionSelectivity multiplies predicate selectivities assuming
// independence, as classical optimizers do.
func conjunctionSelectivity(ts *stats.TableStats, preds []sql.Predicate) float64 {
	sel := 1.0
	for _, p := range preds {
		sel *= predicateSelectivity(ts, p)
	}
	return clampSel(sel)
}

// distinctOf returns the estimated distinct count of a column, with a
// floor of 1.
func distinctOf(ts *stats.TableStats, col string, rowCount float64) float64 {
	if ts != nil {
		if cs := ts.Column(col); cs != nil && cs.Distinct >= 1 {
			return cs.Distinct
		}
	}
	// Unknown: assume moderately distinct.
	d := rowCount / 10
	if d < 1 {
		d = 1
	}
	return d
}

// joinSelectivity estimates the selectivity of an equi-join between
// two columns using 1/max(ndv_left, ndv_right).
func joinSelectivity(lts *stats.TableStats, lcol string, lrows float64, rts *stats.TableStats, rcol string, rrows float64) float64 {
	ld := distinctOf(lts, lcol, lrows)
	rd := distinctOf(rts, rcol, rrows)
	m := ld
	if rd > m {
		m = rd
	}
	if m < 1 {
		m = 1
	}
	return 1 / m
}

// groupCount estimates the number of groups a GROUP BY produces from
// inRows input rows: the product of per-column distinct counts capped
// by the input cardinality.
func groupCount(ts *stats.TableStats, cols []sql.ColumnRef, tableRows map[string]float64, inRowsByTable map[string]*stats.TableStats, inRows float64) float64 {
	groups := 1.0
	for _, c := range cols {
		var cts *stats.TableStats
		if inRowsByTable != nil {
			cts = inRowsByTable[c.Table]
		}
		if cts == nil {
			cts = ts
		}
		rows := inRows
		if tableRows != nil {
			if r, ok := tableRows[c.Table]; ok {
				rows = r
			}
		}
		groups *= distinctOf(cts, c.Column, rows)
		if groups > inRows {
			return inRows
		}
	}
	if groups > inRows {
		groups = inRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

func clampSel(s float64) float64 {
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	}
	return s
}
