package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

// fixtureDB builds a two-table database with skewless data and
// statistics: orders (big) and customers (small), joined on cust_id.
func fixtureDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.NewDatabase()
	orders := catalog.MustNewTable("orders", []catalog.Column{
		{Name: "oid", Type: value.Int},
		{Name: "cust_id", Type: value.Int},
		{Name: "odate", Type: value.Date},
		{Name: "amount", Type: value.Float},
		{Name: "status", Type: value.String, Width: 4},
		{Name: "note", Type: value.String, Width: 100},
	})
	customers := catalog.MustNewTable("customers", []catalog.Column{
		{Name: "cust_id", Type: value.Int},
		{Name: "name", Type: value.String, Width: 24},
		{Name: "segment", Type: value.String, Width: 10},
	})
	if err := db.CreateTable(orders); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(customers); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	statuses := []string{"new", "paid", "ship", "done"}
	segs := []string{"gold", "silver", "bronze"}
	for i := 0; i < 500; i++ {
		if err := db.Insert("customers", value.Row{
			value.NewInt(int64(i)),
			value.NewString("cust"),
			value.NewString(segs[rng.Intn(len(segs))]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20000; i++ {
		if err := db.Insert("orders", value.Row{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(500)),
			value.NewDate(1000 + rng.Int63n(1000)),
			value.NewFloat(rng.Float64() * 1000),
			value.NewString(statuses[rng.Intn(len(statuses))]),
			value.NewString("note"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.AnalyzeAll()
	return db
}

func mustSelect(t testing.TB, db *engine.Database, src string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Resolve(db.Schema()); err != nil {
		t.Fatal(err)
	}
	return stmt
}

func mustIndex(t testing.TB, db *engine.Database, table string, cols ...string) catalog.IndexDef {
	t.Helper()
	def, err := catalog.NewIndexDef(db.Schema(), "", table, cols)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func rootOf(p *Plan) Node {
	n := p.Root
	for {
		if pj, ok := n.(*ProjectNode); ok {
			n = pj.Children()[0]
			continue
		}
		return n
	}
}

func TestTableScanWithoutIndexes(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	plan, err := o.Optimize(mustSelect(t, db, "SELECT oid FROM orders WHERE oid = 5"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rootOf(plan).(*TableScanNode); !ok {
		t.Errorf("expected table scan, got:\n%s", plan.Explain())
	}
	if len(plan.Uses) != 0 {
		t.Errorf("no indexes exist, but usage reported: %v", plan.Uses)
	}
	if o.InvocationCount() != 1 {
		t.Errorf("Invocations = %d", o.InvocationCount())
	}
}

func TestSeekChosenForSelectivePredicate(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "oid")
	plan, err := o.Optimize(mustSelect(t, db, "SELECT oid, amount FROM orders WHERE oid = 5"), Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	seek, ok := rootOf(plan).(*IndexSeekNode)
	if !ok {
		t.Fatalf("expected index seek, got:\n%s", plan.Explain())
	}
	if seek.Covering {
		t.Error("oid index cannot cover amount")
	}
	if !plan.UsesIndexForSeek(ix.Key()) {
		t.Errorf("usage should report seek: %v", plan.Uses)
	}
	// The seek must be far cheaper than the scan.
	noIdx, _ := o.Optimize(mustSelect(t, db, "SELECT oid, amount FROM orders WHERE oid = 5"), nil)
	if plan.Cost > noIdx.Cost/10 {
		t.Errorf("seek cost %v vs scan %v — too close", plan.Cost, noIdx.Cost)
	}
}

func TestCoveringIndexPreferred(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	narrow := mustIndex(t, db, "orders", "odate")
	covering := mustIndex(t, db, "orders", "odate", "amount")
	stmt := mustSelect(t, db, "SELECT odate, amount FROM orders WHERE odate BETWEEN DATE(1100) AND DATE(1200)")
	plan, err := o.Optimize(stmt, Configuration{narrow, covering})
	if err != nil {
		t.Fatal(err)
	}
	seek, ok := rootOf(plan).(*IndexSeekNode)
	if !ok {
		t.Fatalf("expected seek, got:\n%s", plan.Explain())
	}
	if seek.Index.Key() != covering.Key() {
		t.Errorf("picked %s, want covering index", seek.Index)
	}
	if !seek.Covering {
		t.Error("covering flag unset")
	}
}

func TestCoveringScanBeatsTableScanForNarrowSlices(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "status", "amount")
	// No usable predicate: the narrow covering index scan should still
	// beat scanning the wide heap.
	stmt := mustSelect(t, db, "SELECT status, amount FROM orders")
	plan, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rootOf(plan).(*IndexScanNode); !ok {
		t.Fatalf("expected covering index scan, got:\n%s", plan.Explain())
	}
	hasScanUse := false
	for _, u := range plan.Uses {
		if u.Mode == UsageScan && u.Index.Key() == ix.Key() {
			hasScanUse = true
		}
	}
	if !hasScanUse {
		t.Errorf("usage should report scan: %v", plan.Uses)
	}
}

func TestColumnOrderMattersForSeek(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	good := mustIndex(t, db, "orders", "odate", "oid")
	bad := mustIndex(t, db, "orders", "oid", "odate") // odate not leading
	stmt := mustSelect(t, db, "SELECT odate, oid FROM orders WHERE odate = DATE(1500)")

	goodPlan, err := o.Optimize(stmt, Configuration{good})
	if err != nil {
		t.Fatal(err)
	}
	badPlan, err := o.Optimize(stmt, Configuration{bad})
	if err != nil {
		t.Fatal(err)
	}
	if goodPlan.Cost >= badPlan.Cost {
		t.Errorf("leading-column seek (%v) not cheaper than wrong order (%v)", goodPlan.Cost, badPlan.Cost)
	}
	if _, ok := rootOf(goodPlan).(*IndexSeekNode); !ok {
		t.Errorf("good order should seek:\n%s", goodPlan.Explain())
	}
	// The bad order can still serve the query as a covering scan —
	// exactly the paper's M2 example (§3.1, Example 1).
	if _, ok := rootOf(badPlan).(*IndexScanNode); !ok {
		t.Errorf("bad order should degrade to covering scan:\n%s", badPlan.Explain())
	}
}

func TestOrderByAvoidsSortWithIndex(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "odate", "amount")
	stmt := mustSelect(t, db, "SELECT odate, amount FROM orders ORDER BY odate")
	with, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(with.Explain(), "Sort(") {
		t.Errorf("sort present despite ordering index:\n%s", with.Explain())
	}
	without, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(without.Explain(), "Sort(") {
		t.Errorf("sort missing without index:\n%s", without.Explain())
	}
	if with.Cost >= without.Cost {
		t.Errorf("index order plan (%v) not cheaper than sort plan (%v)", with.Cost, without.Cost)
	}
}

func TestEqualityPrefixTransparentToOrder(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "status", "odate", "amount")
	stmt := mustSelect(t, db, "SELECT odate, amount FROM orders WHERE status = 'paid' ORDER BY odate")
	plan, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "Sort(") {
		t.Errorf("equality-bound prefix should satisfy ORDER BY:\n%s", plan.Explain())
	}
}

func TestStreamingAggregationWithIndex(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "status", "amount")
	stmt := mustSelect(t, db, "SELECT status, SUM(amount) FROM orders GROUP BY status")
	plan, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "StreamAggregate") {
		t.Errorf("expected streaming aggregation:\n%s", plan.Explain())
	}
}

func TestJoinPlans(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	stmt := mustSelect(t, db, `SELECT name, amount FROM orders, customers
		WHERE orders.cust_id = customers.cust_id AND segment = 'gold'`)

	// Without indexes: hash join.
	plan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "HashJoin") {
		t.Errorf("expected hash join:\n%s", plan.Explain())
	}

	// With a selective outer and an index on the join column of the big
	// table, index nested-loop should win for a selective enough query.
	ix := mustIndex(t, db, "orders", "cust_id", "amount")
	sel := mustSelect(t, db, `SELECT name, amount FROM orders, customers
		WHERE orders.cust_id = customers.cust_id AND customers.cust_id = 7`)
	plan2, err := o.Optimize(sel, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.Explain(), "IndexNLJoin") {
		t.Errorf("expected index nested-loop join:\n%s", plan2.Explain())
	}
	if !plan2.UsesIndexForSeek(ix.Key()) {
		t.Errorf("inner seek usage missing: %v", plan2.Uses)
	}
}

func TestWhatIfCostIndependentOfMaterialization(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	ix := mustIndex(t, db, "orders", "odate", "amount")
	stmt := mustSelect(t, db, "SELECT odate, amount FROM orders WHERE odate = DATE(1500)")
	hyp, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Materialize([]catalog.IndexDef{ix}); err != nil {
		t.Fatal(err)
	}
	real, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if hyp.Cost != real.Cost {
		t.Errorf("what-if cost %v differs from materialized cost %v — the optimizer must only use statistics", hyp.Cost, real.Cost)
	}
}

func TestWorkloadCostWeightsFrequencies(t *testing.T) {
	db := fixtureDB(t)
	o := New(db)
	stmt := mustSelect(t, db, "SELECT oid FROM orders WHERE oid = 5")
	single, err := o.Cost(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := &sql.Workload{}
	w.Add(stmt, 3)
	total, err := o.WorkloadCost(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3*single {
		t.Errorf("WorkloadCost = %v, want %v", total, 3*single)
	}
}

func TestFiveWayJoinPlans(t *testing.T) {
	// The DP must handle the widest TPC-D query (5 tables).
	db := fixtureDB(t)
	o := New(db)
	// Same two tables joined twice won't work (self-joins rejected), so
	// just verify a 2-table DP result is connected and costed.
	stmt := mustSelect(t, db, `SELECT COUNT(*) FROM orders, customers WHERE orders.cust_id = customers.cust_id`)
	plan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost <= 0 {
		t.Error("non-positive cost")
	}
}

func TestConfigurationHelpers(t *testing.T) {
	db := fixtureDB(t)
	a := mustIndex(t, db, "orders", "oid")
	b := mustIndex(t, db, "customers", "cust_id")
	cfg := Configuration{a, b}
	if got := cfg.ForTable("orders"); len(got) != 1 || got[0].Key() != a.Key() {
		t.Errorf("ForTable = %v", got)
	}
	if !cfg.Contains(a) {
		t.Error("Contains(a) false")
	}
	if cfg.Contains(mustIndex(t, db, "orders", "odate")) {
		t.Error("Contains(missing) true")
	}
	cl := cfg.Clone()
	cl[0] = b
	if cfg[0].Key() != a.Key() {
		t.Error("Clone aliases")
	}
}
