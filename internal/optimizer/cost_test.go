package optimizer

import (
	"testing"

	"indexmerge/internal/sql"
	"indexmerge/internal/stats"
	"indexmerge/internal/value"
)

func TestSeekCostMonotone(t *testing.T) {
	base := seekCost(3, 100, 10000, 100, true, 1000)
	if got := seekCost(3, 100, 10000, 1000, true, 1000); got <= base {
		t.Errorf("more matches should cost more: %v vs %v", got, base)
	}
	if got := seekCost(4, 100, 10000, 100, true, 1000); got <= base {
		t.Errorf("taller tree should cost more: %v vs %v", got, base)
	}
	if got := seekCost(3, 100, 10000, 100, false, 1000); got <= base {
		t.Errorf("RID lookups should cost more than covering: %v vs %v", got, base)
	}
}

func TestSeekCostLookupCap(t *testing.T) {
	// Unselective non-covering seeks must not cost unboundedly more
	// than re-reading the whole heap a few times.
	heapPages := int64(100)
	c := seekCost(3, 1000, 1e6, 1e6, false, heapPages)
	cap := 2*float64(heapPages)*RandPageCost + float64(3)*RandPageCost + 1000*SeqPageCost + 2e6*CPURowCost
	if c > cap+1 {
		t.Errorf("lookup cost %v above cap %v", c, cap)
	}
}

func TestScanAndSortCosts(t *testing.T) {
	if scanCost(100, 1000) <= scanCost(10, 1000) {
		t.Error("more pages must cost more")
	}
	if sortCost(1e6) <= sortCost(1e3) {
		t.Error("bigger sorts must cost more")
	}
	if sortCost(0) <= 0 || sortCost(1) <= 0 {
		t.Error("degenerate sorts must have positive cost")
	}
	if indexScanCost(50, 1000) >= scanCost(500, 1000) {
		t.Error("narrow index scan should beat wide heap scan")
	}
	if hashJoinCost(100, 1000) <= 0 || hashAggCost(1000, 10) <= 0 || streamAggCost(1000) <= 0 {
		t.Error("non-positive operator costs")
	}
	if streamAggCost(1000) >= hashAggCost(1000, 500) {
		t.Error("streaming aggregation should be cheaper than hashing")
	}
}

func buildStats(vals []value.Value) *stats.TableStats {
	return &stats.TableStats{
		RowCount: int64(len(vals)),
		Columns:  map[string]*stats.ColumnStats{"c": stats.Build(vals, stats.BuildOptions{})},
	}
}

func TestPredicateSelectivityOperators(t *testing.T) {
	vals := make([]value.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.NewInt(int64(i%100)))
	}
	ts := buildStats(vals)
	col := sql.ColumnRef{Table: "t", Column: "c"}
	cases := []struct {
		p      sql.Predicate
		lo, hi float64
	}{
		{sql.Predicate{Col: col, Op: sql.OpEq, Val: value.NewInt(5)}, 0.005, 0.05},
		{sql.Predicate{Col: col, Op: sql.OpNe, Val: value.NewInt(5)}, 0.95, 1.0},
		{sql.Predicate{Col: col, Op: sql.OpLt, Val: value.NewInt(50)}, 0.4, 0.6},
		{sql.Predicate{Col: col, Op: sql.OpLe, Val: value.NewInt(50)}, 0.4, 0.6},
		{sql.Predicate{Col: col, Op: sql.OpGt, Val: value.NewInt(89)}, 0.05, 0.15},
		{sql.Predicate{Col: col, Op: sql.OpGe, Val: value.NewInt(90)}, 0.05, 0.15},
		{sql.Predicate{Col: col, Op: sql.OpBetween, Lo: value.NewInt(10), Hi: value.NewInt(19)}, 0.05, 0.15},
	}
	for _, c := range cases {
		got := predicateSelectivity(ts, c.p)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: selectivity %v outside [%v, %v]", c.p, got, c.lo, c.hi)
		}
	}
}

func TestPredicateSelectivityFallbacks(t *testing.T) {
	col := sql.ColumnRef{Table: "t", Column: "c"}
	if got := predicateSelectivity(nil, sql.Predicate{Col: col, Op: sql.OpEq, Val: value.NewInt(1)}); got != defaultEqSel {
		t.Errorf("no-stats eq = %v", got)
	}
	if got := predicateSelectivity(nil, sql.Predicate{Col: col, Op: sql.OpLt, Val: value.NewInt(1)}); got != defaultRangeSel {
		t.Errorf("no-stats range = %v", got)
	}
	if got := predicateSelectivity(nil, sql.Predicate{Col: col, Op: sql.OpNe, Val: value.NewInt(1)}); got != defaultNeSel {
		t.Errorf("no-stats ne = %v", got)
	}
}

func TestConjunctionSelectivityIndependence(t *testing.T) {
	vals := make([]value.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.NewInt(int64(i%10)))
	}
	ts := buildStats(vals)
	col := sql.ColumnRef{Table: "t", Column: "c"}
	p := sql.Predicate{Col: col, Op: sql.OpEq, Val: value.NewInt(3)}
	one := conjunctionSelectivity(ts, []sql.Predicate{p})
	two := conjunctionSelectivity(ts, []sql.Predicate{p, p})
	if two >= one {
		t.Errorf("conjunction must multiply: %v vs %v", two, one)
	}
	if got := conjunctionSelectivity(ts, nil); got != 1 {
		t.Errorf("empty conjunction = %v", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	mk := func(mod int) *stats.TableStats {
		vals := make([]value.Value, 0, 1000)
		for i := 0; i < 1000; i++ {
			vals = append(vals, value.NewInt(int64(i%mod)))
		}
		return buildStats(vals)
	}
	// join on columns with ndv 100 and 10: selectivity ≈ 1/100.
	got := joinSelectivity(mk(100), "c", 1000, mk(10), "c", 1000)
	if got < 0.005 || got > 0.02 {
		t.Errorf("join selectivity = %v, want ≈0.01", got)
	}
	// Missing stats fall back to a sane default.
	if got := joinSelectivity(nil, "c", 1000, nil, "c", 1000); got <= 0 || got > 1 {
		t.Errorf("fallback join selectivity = %v", got)
	}
}

func TestMatchSeekShapes(t *testing.T) {
	col := func(name string) sql.ColumnRef { return sql.ColumnRef{Table: "t", Column: name} }
	eq := func(name string) scoredPred {
		return scoredPred{p: sql.Predicate{Col: col(name), Op: sql.OpEq, Val: value.NewInt(1)}, sel: 0.1}
	}
	rng := func(name string) scoredPred {
		return scoredPred{p: sql.Predicate{Col: col(name), Op: sql.OpLt, Val: value.NewInt(1)}, sel: 0.3}
	}

	// eq on leading two columns, range on third, residual on unrelated.
	seekEq, seekRng, residual, sel := matchSeek([]string{"a", "b", "c", "d"},
		[]scoredPred{eq("a"), eq("b"), rng("c"), eq("z")})
	if len(seekEq) != 2 || seekRng == nil || len(residual) != 1 {
		t.Fatalf("shape: eq=%d rng=%v res=%d", len(seekEq), seekRng != nil, len(residual))
	}
	if diff := sel - 0.1*0.1*0.3; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sel = %v, want 0.003", sel)
	}

	// Gap in the prefix stops the seek.
	seekEq, seekRng, _, _ = matchSeek([]string{"a", "b"}, []scoredPred{eq("b")})
	if len(seekEq) != 0 || seekRng != nil {
		t.Errorf("non-leading predicate must not seek: eq=%d", len(seekEq))
	}

	// Range on the leading column works alone.
	seekEq, seekRng, _, _ = matchSeek([]string{"a", "b"}, []scoredPred{rng("a"), eq("b")})
	if len(seekEq) != 0 || seekRng == nil {
		t.Errorf("leading range must seek")
	}
	// ... and stops the prefix: b's equality becomes residual.
	_, _, residual, _ = matchSeek([]string{"a", "b"}, []scoredPred{rng("a"), eq("b")})
	if len(residual) != 1 {
		t.Errorf("after-range predicate must be residual, got %d residuals", len(residual))
	}
}
