package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"indexmerge/internal/catalog"
	"indexmerge/internal/engine"
	"indexmerge/internal/value"
)

// chainDB builds a three-table star: facts -> mid -> dim, with strongly
// different sizes so join order matters.
func chainDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.NewDatabase()
	mk := func(name string, cols ...catalog.Column) {
		if err := db.CreateTable(catalog.MustNewTable(name, cols)); err != nil {
			t.Fatal(err)
		}
	}
	mk("facts",
		catalog.Column{Name: "fid", Type: value.Int},
		catalog.Column{Name: "mid_id", Type: value.Int},
		catalog.Column{Name: "v", Type: value.Float})
	mk("mid",
		catalog.Column{Name: "mid_id", Type: value.Int},
		catalog.Column{Name: "dim_id", Type: value.Int})
	mk("dim",
		catalog.Column{Name: "dim_id", Type: value.Int},
		catalog.Column{Name: "tag", Type: value.String, Width: 6})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		db.Insert("dim", value.Row{value.NewInt(int64(i)), value.NewString("t")})
	}
	for i := 0; i < 400; i++ {
		db.Insert("mid", value.Row{value.NewInt(int64(i)), value.NewInt(rng.Int63n(20))})
	}
	for i := 0; i < 20000; i++ {
		db.Insert("facts", value.Row{value.NewInt(int64(i)), value.NewInt(rng.Int63n(400)), value.NewFloat(1)})
	}
	db.AnalyzeAll()
	return db
}

func TestThreeWayJoinChain(t *testing.T) {
	db := chainDB(t)
	o := New(db)
	stmt := mustSelect(t, db, `SELECT tag, SUM(v) FROM facts, mid, dim
		WHERE facts.mid_id = mid.mid_id AND mid.dim_id = dim.dim_id
		GROUP BY tag`)
	plan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := plan.Explain()
	// Connected joins only: a cartesian NLJoin would be a planning bug.
	if strings.Contains(ex, "NLJoin on []") {
		t.Errorf("cartesian product in a fully connected query:\n%s", ex)
	}
	if strings.Count(ex, "Join") != 2 {
		t.Errorf("expected exactly 2 joins:\n%s", ex)
	}
	if plan.Cost <= 0 {
		t.Error("non-positive cost")
	}
}

func TestJoinCardinalityOrdering(t *testing.T) {
	// The estimated output of facts ⋈ mid must be near |facts| (FK
	// join), not |facts|×|mid|.
	db := chainDB(t)
	o := New(db)
	stmt := mustSelect(t, db, `SELECT COUNT(*) FROM facts, mid WHERE facts.mid_id = mid.mid_id`)
	plan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var joinRows float64
	var walk func(n Node)
	walk = func(n Node) {
		if j, ok := n.(*JoinNode); ok {
			joinRows = j.Rows()
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan.Root)
	if joinRows < 5000 || joinRows > 80000 {
		t.Errorf("FK join cardinality estimate %v, want ≈20000", joinRows)
	}
}

func TestCartesianFallbackWhenUnconnected(t *testing.T) {
	db := chainDB(t)
	o := New(db)
	// dim and facts share no join predicate here.
	stmt := mustSelect(t, db, `SELECT COUNT(*) FROM dim, mid`)
	plan, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "NLJoin") {
		t.Errorf("unconnected pair should use a nested-loop product:\n%s", plan.Explain())
	}
}

func TestIndexNLJoinPreferredForSelectiveOuter(t *testing.T) {
	db := chainDB(t)
	ix, err := catalog.NewIndexDef(db.Schema(), "", "facts", []string{"mid_id", "v"})
	if err != nil {
		t.Fatal(err)
	}
	o := New(db)
	stmt := mustSelect(t, db, `SELECT v FROM facts, mid
		WHERE facts.mid_id = mid.mid_id AND mid.mid_id = 7`)
	plan, err := o.Optimize(stmt, Configuration{ix})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Explain(), "IndexNLJoin") {
		t.Errorf("selective outer should drive an index nested-loop join:\n%s", plan.Explain())
	}
	// And the whole plan must be far cheaper than the index-less one.
	bare, err := o.Optimize(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost > bare.Cost/3 {
		t.Errorf("index NL join not cheap enough: %v vs %v", plan.Cost, bare.Cost)
	}
}

func TestTooManyTablesRejected(t *testing.T) {
	db := engine.NewDatabase()
	names := make([]string, 0, maxDPTables+1)
	for i := 0; i <= maxDPTables; i++ {
		name := string(rune('a' + i))
		if err := db.CreateTable(catalog.MustNewTable(name, []catalog.Column{{Name: "k", Type: value.Int}})); err != nil {
			t.Fatal(err)
		}
		db.Insert(name, value.Row{value.NewInt(1)})
		names = append(names, name)
	}
	db.AnalyzeAll()
	src := "SELECT COUNT(*) FROM " + strings.Join(names, ", ")
	stmt := mustSelect(t, db, src)
	if _, err := New(db).Optimize(stmt, nil); err == nil {
		t.Errorf("%d-way join accepted (max %d)", maxDPTables+1, maxDPTables)
	}
}
