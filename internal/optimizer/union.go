package optimizer

import (
	"fmt"
	"math"
	"strings"

	"indexmerge/internal/catalog"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
)

// IndexUnionNode ORs several index seeks by unioning their RID sets,
// deduplicating, and fetching the surviving heap rows once — the
// union-over-OR IndexMerge technique (TiDB's `IndexMerge type: union`)
// that lets several narrow indexes answer a disjunction no single
// B+-tree can seek. Each child is an IndexSeekNode used purely as a
// RID producer, one per normalized disjunct.
type IndexUnionNode struct {
	baseNode
	Table    string
	Residual []sql.Predicate
}

// Describe implements Node.
func (n *IndexUnionNode) Describe() string {
	names := make([]string, len(n.children))
	for i, c := range n.children {
		names[i] = c.(*IndexSeekNode).Index.Name
	}
	s := fmt.Sprintf("IndexUnion(%s) +RIDLookup", strings.Join(names, " ∪ "))
	if len(n.Residual) > 0 {
		s += " residual=" + predList(n.Residual)
	}
	return s
}

// maxUnionArms bounds how many disjuncts a union path may fan out to;
// IN lists beyond it fall back to residual filtering on a scan.
const maxUnionArms = 8

// unionPath computes the cost and output cardinality of a RID-union
// access path for one disjunctive predicate: per normalized disjunct,
// a covering probe of the cheapest configuration index whose leading
// column the disjunct restricts; then RID-set union/dedup priced per
// probed entry; then heap fetches for the union (floored at one row
// and capped at the buffer-pool bound, like every fetch cost here) and
// residual evaluation. The row estimate uses the disjunction's own
// inclusion–exclusion selectivity, so it is never larger than the sum
// of the arms. arms receives the chosen positions in indexes (one per
// disjunct, reusing the given backing array); ok is false when any
// disjunct lacks a seekable index. Both the node-building and the
// cost-only enumerations call this one function, which is what keeps
// prepared and unprepared costing bit-identical.
func unionPath(ti *tableInfo, d *orPred, indexes []catalog.IndexDef, arms []int) (_ []int, cost, rows float64, ok bool) {
	arms = arms[:0]
	if len(d.disjuncts) == 0 || len(d.disjuncts) > maxUnionArms {
		return arms, 0, 0, false
	}
	matchSum := 0.0
	for di := range d.disjuncts {
		q := &d.disjuncts[di]
		if !q.p.Op.IsEquality() && !q.p.Op.IsRange() {
			return arms, 0, 0, false
		}
		match := ti.rowCount * q.sel
		bestI := -1
		bestCost := 0.0
		for ii := range indexes {
			idx := &indexes[ii]
			if idx.Table != ti.name || len(idx.Columns) == 0 || idx.Columns[0] != q.p.Col.Column {
				continue
			}
			c := armProbeCost(ti, idx.Columns, match)
			if bestI < 0 || c < bestCost {
				bestI, bestCost = ii, c
			}
		}
		if bestI < 0 {
			return arms, 0, 0, false
		}
		arms = append(arms, bestI)
		cost += bestCost
		matchSum += match
	}
	cost += matchSum * CPUOpCost // hash the RID sets
	fetch := ti.rowCount * ti.preds[d.pos].sel
	fetchRows := fetch
	if fetchRows < 1 {
		fetchRows = 1
	}
	lookup := fetchRows * RandPageCost
	if lim := 2 * float64(ti.heapPages) * RandPageCost; lookup > lim {
		lookup = lim
	}
	cost += lookup + fetchRows*CPURowCost
	resSel := 1.0
	for pi := range ti.preds {
		if pi != d.pos {
			resSel *= ti.preds[pi].sel
		}
	}
	rows = math.Max(fetch*clampSel(resSel), 0)
	return arms, cost, rows, true
}

// armProbeCost prices one covering (RID-only) probe of an index for
// matched entries.
func armProbeCost(ti *tableInfo, idxCols []string, match float64) float64 {
	kw := ti.table.WidthOf(idxCols)
	pages := storage.EstimateIndexPages(int64(ti.rowCount), kw)
	h := storage.EstimateIndexHeight(int64(ti.rowCount), kw)
	return seekCost(h, pages, ti.rowCount, match, true /* rid-only */, ti.heapPages)
}

// unionPaths builds IndexUnionNode access paths for every disjunctive
// predicate on the table. Arm indexes are chosen from the full
// configuration (no relevance prefilter: a disjunct column never
// enters seekLead, so an arm-only index would otherwise be skipped on
// the prepared path but not the ad-hoc one).
func unionPaths(ti *tableInfo, indexes []catalog.IndexDef) []accessPath {
	var out []accessPath
	var arms []int
	for oi := range ti.orPreds {
		d := &ti.orPreds[oi]
		var cost, rows float64
		var ok bool
		arms, cost, rows, ok = unionPath(ti, d, indexes, arms)
		if !ok {
			continue
		}
		n := &IndexUnionNode{Table: ti.name}
		for di, ii := range arms {
			q := d.disjuncts[di]
			arm := &IndexSeekNode{Index: indexes[ii], Covering: true}
			if q.p.Op.IsEquality() {
				arm.SeekEq = []sql.Predicate{q.p}
			} else {
				rp := q.p
				arm.SeekRng = &rp
			}
			arm.rows = ti.rowCount * q.sel
			arm.cost = armProbeCost(ti, indexes[ii].Columns, arm.rows)
			n.children = append(n.children, arm)
		}
		for pi := range ti.preds {
			if pi != d.pos {
				n.Residual = append(n.Residual, ti.preds[pi].p)
			}
		}
		n.cost = cost
		n.rows = rows
		out = append(out, accessPath{node: n, rows: rows})
	}
	return out
}
