package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"indexmerge/internal/sql"
	"indexmerge/internal/value"
)

// maxDPTables bounds the dynamic-programming join search; wider joins
// would need a greedy fallback, which the workloads here never hit.
const maxDPTables = 10

type dpEntry struct {
	node Node
	rows float64
}

// planJoin performs left-deep join-order search over the query's
// tables, considering hash joins and index nested-loop joins (the
// inner side parameterized by the join columns), then finishes with
// aggregation/sort/projection.
func (ctx *optContext) planJoin() (Node, error) {
	n := len(ctx.tables)
	if n > maxDPTables {
		return nil, fmt.Errorf("optimizer: %d-way joins unsupported (max %d)", n, maxDPTables)
	}
	best := make([]*dpEntry, 1<<n)

	// Base: cheapest access path per table, cached on the context —
	// joinStep reuses it for the join's right side instead of
	// re-enumerating the identical path set per DP extension.
	if cap(ctx.basePaths) < n {
		ctx.basePaths = make([]accessPath, n)
	}
	ctx.basePaths = ctx.basePaths[:n]
	for i, ti := range ctx.tables {
		paths := enumerateAccessPaths(ti, ctx.cfg.ForTable(ti.name), ctx.noIntersect, ctx.noUnion, ctx.filter)
		bp := bestPath(paths)
		ctx.basePaths[i] = bp
		best[1<<i] = &dpEntry{node: bp.node, rows: bp.rows}
	}

	for mask := 3; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		var entry *dpEntry
		for t := 0; t < n; t++ {
			bit := 1 << t
			if mask&bit == 0 {
				continue
			}
			rest := mask &^ bit
			if best[rest] == nil {
				continue
			}
			cand := ctx.joinStep(best[rest], rest, t)
			if cand != nil && (entry == nil || cand.node.Cost() < entry.node.Cost()) {
				entry = cand
			}
		}
		best[mask] = entry
	}

	full := best[(1<<n)-1]
	if full == nil {
		return nil, fmt.Errorf("optimizer: no join plan found")
	}
	return ctx.finish(full.node, accessPath{}, nil), nil
}

// joinStep joins the best plan for subset `rest` with table index t,
// returning the cheapest of hash join and index nested-loop join.
func (ctx *optContext) joinStep(left *dpEntry, rest, t int) *dpEntry {
	ti := ctx.tables[t]
	conns := ctx.connectingPreds(rest, t)

	// Right-side filtered cardinality and combined join selectivity.
	rightSel := 1.0
	for _, sp := range ti.preds {
		rightSel *= sp.sel
	}
	rightRows := ti.rowCount * clampSel(rightSel)
	jsel := 1.0
	for _, c := range conns {
		other := ctx.lookup(c.otherCol.Table)
		jsel *= joinSelectivity(other.ts, c.otherCol.Column, other.rowCount, ti.ts, c.myCol.Column, ti.rowCount)
	}
	outRows := left.rows * rightRows * clampSel(jsel)
	if outRows < 1 {
		outRows = 1
	}

	var bestNode Node
	bestCost := math.Inf(1)

	// Hash join (or nested-loop cross product when unconnected). The
	// right side reuses the table's base access path computed once in
	// planJoin.
	rightBest := ctx.basePaths[t]
	if len(conns) > 0 {
		buildRows, probeRows := rightRows, left.rows
		if left.rows < rightRows {
			buildRows, probeRows = left.rows, rightRows
		}
		hj := &JoinNode{Kind: HashJoin, On: ctx.joinPredsOf(conns)}
		hj.children = []Node{left.node, rightBest.node}
		hj.rows = outRows
		hj.cost = left.node.Cost() + rightBest.node.Cost() + hashJoinCost(buildRows, probeRows) + outRows*CPUOpCost
		bestNode, bestCost = hj, hj.cost
	} else {
		outer := left.rows
		if outer < 1 {
			outer = 1
		}
		nl := &JoinNode{Kind: NLJoin}
		nl.children = []Node{left.node, rightBest.node}
		nl.rows = left.rows * rightRows
		nl.cost = left.node.Cost() + outer*rightBest.node.Cost() + nl.rows*CPUOpCost
		bestNode, bestCost = nl, nl.cost
	}

	// Index nested-loop join: parameterize the inner by the join columns.
	if len(conns) > 0 {
		if inner := ctx.innerSeekPath(ti, conns); inner != nil {
			outer := left.rows
			if outer < 1 {
				outer = 1
			}
			inl := &JoinNode{Kind: IndexNLJoin, On: ctx.joinPredsOf(conns)}
			inl.children = []Node{left.node, inner}
			inl.rows = outRows
			inl.cost = left.node.Cost() + outer*inner.Cost() + outRows*CPUOpCost
			if inl.cost < bestCost {
				bestNode, bestCost = inl, inl.cost
			}
		}
	}

	if bestNode == nil {
		return nil
	}
	return &dpEntry{node: bestNode, rows: outRows}
}

// connection describes one join predicate linking table t to the
// already-joined subset.
type connection struct {
	pred     sql.JoinPred
	myCol    sql.ColumnRef // column on table t
	otherCol sql.ColumnRef // column on the joined subset
}

// connectingPreds finds the join predicates linking table t to subset rest.
func (ctx *optContext) connectingPreds(rest, t int) []connection {
	ti := ctx.tables[t]
	inRest := func(table string) bool {
		for i, o := range ctx.tables {
			if o.name == table {
				return rest&(1<<i) != 0
			}
		}
		return false
	}
	var out []connection
	for _, j := range ctx.stmt.Joins {
		switch {
		case j.Left.Table == ti.name && inRest(j.Right.Table):
			out = append(out, connection{pred: j, myCol: j.Left, otherCol: j.Right})
		case j.Right.Table == ti.name && inRest(j.Left.Table):
			out = append(out, connection{pred: j, myCol: j.Right, otherCol: j.Left})
		}
	}
	return out
}

func (ctx *optContext) joinPredsOf(conns []connection) []sql.JoinPred {
	out := make([]sql.JoinPred, len(conns))
	for i, c := range conns {
		out[i] = c.pred
	}
	return out
}

// innerSeekPath builds the cheapest parameterized inner access for an
// index nested-loop join: a seek whose equality prefix includes at
// least one join column. Synthetic join-column equality predicates use
// column density as selectivity (the average outer binding).
func (ctx *optContext) innerSeekPath(ti *tableInfo, conns []connection) Node {
	joinCols := make(map[string]bool, len(conns))
	preds := append([]scoredPred(nil), ti.preds...)
	for _, c := range conns {
		if joinCols[c.myCol.Column] {
			continue
		}
		joinCols[c.myCol.Column] = true
		d := distinctOf(ti.ts, c.myCol.Column, ti.rowCount)
		preds = append(preds, scoredPred{
			p:   sql.Predicate{Col: c.myCol, Op: sql.OpEq, Val: value.NewNull()},
			sel: 1 / math.Max(d, 1),
		})
	}
	probe := *ti
	probe.preds = preds
	// Join columns extend the seekable-lead set for the prefilter; and
	// intersection and union paths can be skipped outright — only plain
	// seeks qualify as parameterized inners below.
	probe.seekLead = ti.seekLeadJoin
	paths := enumerateAccessPaths(&probe, ctx.cfg.ForTable(ti.name), true, true, ctx.filter)
	var best Node
	for _, p := range paths {
		seek, ok := p.node.(*IndexSeekNode)
		if !ok {
			continue
		}
		usesJoinCol := false
		for _, ep := range seek.SeekEq {
			if joinCols[ep.Col.Column] && ep.Val.IsNull() {
				usesJoinCol = true
				break
			}
		}
		if !usesJoinCol {
			continue
		}
		if best == nil || seek.Cost() < best.Cost() {
			best = seek
		}
	}
	return best
}
