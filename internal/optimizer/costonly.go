package optimizer

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"indexmerge/internal/faults"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
)

// costScratch is pooled per-call state for CostPrepared: candidate
// paths, intersection arms, extended predicate lists for inner seeks,
// and the join DP arrays. Reusing it makes a steady-state cost probe
// allocation-free.
type costScratch struct {
	paths    []costPath
	arms     []costArm
	uArms    []int // union arm choices, reused across disjunctions
	ext      []scoredPred
	baseCost []float64
	baseRows []float64
	dpCost   []float64
	dpRows   []float64
	dpHas    []bool
}

var costScratchPool = sync.Pool{New: func() any { return new(costScratch) }}

// costPath is an access path reduced to the numbers the cost-only
// planner needs: cost, output rows, and — for order/group satisfaction
// — the index column order plus a bitmask of equality-bound column
// positions. ordered aliases the index definition's Columns slice; nil
// means the path produces no useful order (heap scan, intersection).
type costPath struct {
	cost, rows float64
	ordered    []string
	eqCols     uint64
}

// costArm is a seek path in its role as an intersection arm: leading
// column, bitmask equivalence classes of its consumed predicates, its
// seek selectivity and matched rows, and its covering probe cost.
type costArm struct {
	lead      string
	colOp     uint64
	strs      uint64
	sel       float64
	match     float64
	probeCost float64
}

// CostPrepared is the allocation-free fast path for plan costing: it
// plans the prepared query under cfg computing costs only — no plan
// nodes, no per-call maps — and returns a total bit-identical to
// Optimize(pq.Stmt, cfg).Cost. Queries whose predicate lists overflow
// the bitmask representation fall back to full prepared planning
// (same result, more work).
func (o *Optimizer) CostPrepared(pq *PreparedQuery, cfg Configuration) (float64, error) {
	if err := pq.checkFresh(); err != nil {
		return 0, err
	}
	o.invocations.Add(1)
	o.preparedCalls.Add(1)
	if err := faults.Inject(faults.OptimizerCost); err != nil {
		return 0, err
	}
	if !pq.simple {
		plan, err := o.planPrepared(pq, cfg)
		if err != nil {
			return 0, err
		}
		return plan.Cost, nil
	}
	sc := costScratchPool.Get().(*costScratch)
	defer costScratchPool.Put(sc)
	noInter := o.DisableIndexIntersection
	noUnion := o.DisableIndexUnion
	filter := !o.DisableRelevantIndexFilter
	if len(pq.tables) == 1 {
		paths := enumerateCostPaths(&pq.cost[0], cfg, noInter, noUnion, filter, sc)
		if len(paths) == 0 {
			return 0, fmt.Errorf("optimizer: no plan for table %q", pq.tables[0].name)
		}
		best := math.Inf(1)
		for i := range paths {
			c := pq.finishCostOrdered(paths[i].cost, paths[i].rows, paths[i].ordered, paths[i].eqCols)
			if c < best {
				best = c
			}
		}
		return best, nil
	}
	return o.costJoinPrepared(pq, cfg, noInter, noUnion, filter, sc)
}

// matchSeekMask is matchSeek on bitmasks: identical matching rules and
// selectivity multiplication order, but the consumed-predicate set is
// a uint64 (PrepareQuery guarantees ≤ 64 predicates on this path) and
// equality-bound index column positions come back as a mask.
func matchSeekMask(idxCols []string, preds []scoredPred) (sel float64, used, eqCols uint64, nEq int, hasRng bool) {
	sel = 1.0
	for ci, col := range idxCols {
		foundEq := false
		for i := range preds {
			if used&(1<<uint(i)) != 0 || preds[i].p.Col.Column != col {
				continue
			}
			if preds[i].p.Op.IsEquality() {
				used |= 1 << uint(i)
				eqCols |= 1 << uint(ci)
				sel *= preds[i].sel
				nEq++
				foundEq = true
				break
			}
		}
		if foundEq {
			continue
		}
		for i := range preds {
			if used&(1<<uint(i)) != 0 || preds[i].p.Col.Column != col {
				continue
			}
			if preds[i].p.Op.IsRange() {
				used |= 1 << uint(i)
				sel *= preds[i].sel
				hasRng = true
				break
			}
		}
		break
	}
	return clampSel(sel), used, eqCols, nEq, hasRng
}

// enumerateCostPaths mirrors enumerateAccessPaths computing only
// (cost, rows, ordering) per path, in the same candidate order and
// with the same floating-point operation sequence — the identity
// tests hold the two enumerations together bit for bit.
func enumerateCostPaths(ct *costTable, cfg Configuration, noInter, noUnion, filter bool, sc *costScratch) []costPath {
	ti := ct.ti
	paths := sc.paths[:0]
	arms := sc.arms[:0]
	paths = append(paths, costPath{cost: ct.scanCost, rows: ct.filteredRows})

	for i := range cfg {
		idx := &cfg[i]
		if idx.Table != ti.name {
			continue
		}
		if filter && !indexRelevant(idx.Columns, ti.seekLead, ti.required) {
			continue
		}
		keyWidth := ti.table.WidthOf(idx.Columns)
		idxPages := storage.EstimateIndexPages(int64(ti.rowCount), keyWidth)
		height := storage.EstimateIndexHeight(int64(ti.rowCount), keyWidth)
		covering := coversRequired(idx.Columns, ti.required)
		if covering {
			paths = append(paths, costPath{
				cost:    indexScanCost(idxPages, ti.rowCount),
				rows:    ct.filteredRows,
				ordered: idx.Columns,
			})
		}
		sel, used, eqCols, nEq, hasRng := matchSeekMask(idx.Columns, ti.preds)
		if nEq == 0 && !hasRng {
			continue
		}
		matchRows := ti.rowCount * sel
		resSel := 1.0
		for pi := range ti.preds {
			if used&(1<<uint(pi)) == 0 {
				resSel *= ti.preds[pi].sel
			}
		}
		paths = append(paths, costPath{
			cost:    seekCost(height, idxPages, ti.rowCount, matchRows, covering, ti.heapPages),
			rows:    matchRows * clampSel(resSel),
			ordered: idx.Columns,
			eqCols:  eqCols,
		})
		var colOp, strs uint64
		for pi := range ti.preds {
			if used&(1<<uint(pi)) != 0 {
				colOp |= 1 << ct.predColOp[pi]
				strs |= 1 << ct.predStr[pi]
			}
		}
		arms = append(arms, costArm{
			lead:      idx.Columns[0],
			colOp:     colOp,
			strs:      strs,
			sel:       sel,
			match:     matchRows,
			probeCost: seekCost(height, idxPages, ti.rowCount, matchRows, true, ti.heapPages),
		})
	}

	if !noInter && len(arms) >= 2 {
		// Keep the most selective few arms — the same stable sort and
		// cap intersectionPaths applies on the node side.
		sortCostArms(arms)
		capped := arms
		if len(capped) > maxIntersectArms {
			capped = capped[:maxIntersectArms]
		}
		for i := 0; i < len(capped); i++ {
			for j := i + 1; j < len(capped); j++ {
				a, b := &capped[i], &capped[j]
				if a.lead == b.lead || a.colOp&b.colOp != 0 {
					continue
				}
				// a.match*b.sel == (rowCount*selA)*selB: the same
				// left-associated product buildIntersection computes.
				interRows := a.match * b.sel
				consumed := a.strs | b.strs
				resSel := 1.0
				for pi := range ti.preds {
					if consumed&(1<<ct.predStr[pi]) == 0 {
						resSel *= ti.preds[pi].sel
					}
				}
				cost := a.probeCost + b.probeCost
				cost += (a.match + b.match) * CPUOpCost
				// Floor the fetch cost, not the row estimate — mirror of
				// buildIntersection.
				fetchRows := interRows
				if fetchRows < 1 {
					fetchRows = 1
				}
				lookup := fetchRows * RandPageCost
				if lim := 2 * float64(ti.heapPages) * RandPageCost; lookup > lim {
					lookup = lim
				}
				cost += lookup + fetchRows*CPURowCost
				paths = append(paths, costPath{
					cost: cost,
					rows: math.Max(interRows*clampSel(resSel), 0),
				})
			}
		}
	}

	// Index union over disjunctions — the numeric core is shared with
	// the node-building path, so costs match bit for bit.
	if !noUnion && len(ti.orPreds) > 0 {
		uArms := sc.uArms
		for oi := range ti.orPreds {
			d := &ti.orPreds[oi]
			var cost, rows float64
			var ok bool
			uArms, cost, rows, ok = unionPath(ti, d, cfg, uArms)
			if !ok {
				continue
			}
			paths = append(paths, costPath{cost: cost, rows: rows})
		}
		sc.uArms = uArms
	}
	sc.paths = paths
	sc.arms = arms
	return paths
}

// sortCostArms is sortSeekArms for the cost-only arm representation:
// the same stable insertion sort on the same selectivity keys, so both
// enumerations cap the same arm set.
func sortCostArms(arms []costArm) {
	for i := 1; i < len(arms); i++ {
		for j := i; j > 0 && arms[j].sel < arms[j-1].sel; j-- {
			arms[j], arms[j-1] = arms[j-1], arms[j]
		}
	}
}

// finishCostOrdered applies finish's aggregation/sort/projection
// arithmetic to a single-table access path, using the prepared order
// and group metadata in place of a node tree.
func (pq *PreparedQuery) finishCostOrdered(cost, rows float64, orderedCols []string, eqCols uint64) float64 {
	stmt := pq.Stmt
	ordered := orderSatisfiedCols(stmt.OrderBy, orderedCols, eqCols, pq.tables[0].name)
	if len(stmt.GroupBy) > 0 || pq.hasAggs {
		inRows := rows
		groups := 1.0
		if len(stmt.GroupBy) > 0 {
			groups = groupCard(pq.groupDistinct, inRows)
		}
		streaming := pq.groupSameTable && len(stmt.GroupBy) > 0 &&
			groupSatisfiedCols(pq.groupCols, orderedCols, eqCols)
		if streaming {
			cost += streamAggCost(inRows)
		} else {
			cost += hashAggCost(inRows, groups)
			ordered = false
		}
		rows = groups
	}
	if len(stmt.OrderBy) > 0 && !ordered {
		cost += sortCost(rows)
	}
	return cost + rows*CPUOpCost
}

// finishCostJoin is finishCostOrdered for join roots, which never
// produce a useful order: aggregation always hashes, ORDER BY always
// sorts.
func (pq *PreparedQuery) finishCostJoin(cost, rows float64) float64 {
	stmt := pq.Stmt
	if len(stmt.GroupBy) > 0 || pq.hasAggs {
		inRows := rows
		groups := 1.0
		if len(stmt.GroupBy) > 0 {
			groups = groupCard(pq.groupDistinct, inRows)
		}
		cost += hashAggCost(inRows, groups)
		rows = groups
	}
	if len(stmt.OrderBy) > 0 {
		cost += sortCost(rows)
	}
	return cost + rows*CPUOpCost
}

// groupCard is groupCardinality over the prepared per-column distinct
// counts (0 marks a column on an unknown table, which the original
// skips).
func groupCard(distinct []float64, inRows float64) float64 {
	groups := 1.0
	for _, d := range distinct {
		if d == 0 {
			continue
		}
		groups *= d
		if groups > inRows {
			break
		}
	}
	if groups > inRows {
		groups = inRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

// orderSatisfiedCols is orderSatisfied over (index columns, eq mask)
// instead of an accessPath.
func orderSatisfiedCols(order []sql.OrderItem, orderedCols []string, eqCols uint64, table string) bool {
	if len(order) == 0 {
		return true
	}
	if orderedCols == nil {
		return false
	}
	pos := 0
	for _, key := range order {
		if key.Desc || key.Col.Table != table {
			return false
		}
		matched := false
		for pos < len(orderedCols) {
			col := orderedCols[pos]
			if col == key.Col.Column {
				matched = true
				pos++
				break
			}
			if eqCols&(1<<uint(pos)) != 0 {
				pos++
				continue
			}
			return false
		}
		if !matched {
			return false
		}
	}
	return true
}

// groupSatisfiedCols is groupSatisfied over (index columns, eq mask);
// groupCols must already be distinct and on the probe table.
func groupSatisfiedCols(groupCols, orderedCols []string, eqCols uint64) bool {
	if len(groupCols) == 0 {
		return false
	}
	if orderedCols == nil {
		return false
	}
	need := len(groupCols)
	var seen uint64
	for pos, col := range orderedCols {
		if need == 0 {
			return true
		}
		wanted := false
		for gi, g := range groupCols {
			if g == col {
				if seen&(1<<uint(gi)) == 0 {
					seen |= 1 << uint(gi)
					need--
					wanted = true
				}
				break
			}
		}
		if wanted {
			continue
		}
		if eqCols&(1<<uint(pos)) != 0 {
			continue
		}
		return false
	}
	return need == 0
}

// costJoinPrepared is planJoin on costs alone: the same DP over table
// subsets, with per-table best access paths computed once and plan
// nodes replaced by (cost, rows) pairs.
func (o *Optimizer) costJoinPrepared(pq *PreparedQuery, cfg Configuration, noInter, noUnion, filter bool, sc *costScratch) (float64, error) {
	n := len(pq.tables)
	if n > maxDPTables {
		return 0, fmt.Errorf("optimizer: %d-way joins unsupported (max %d)", n, maxDPTables)
	}
	size := 1 << uint(n)
	sc.baseCost = growF(sc.baseCost, n)
	sc.baseRows = growF(sc.baseRows, n)
	sc.dpCost = growF(sc.dpCost, size)
	sc.dpRows = growF(sc.dpRows, size)
	sc.dpHas = growB(sc.dpHas, size)
	for i := range sc.dpHas {
		sc.dpHas[i] = false
	}
	for i := range pq.tables {
		paths := enumerateCostPaths(&pq.cost[i], cfg, noInter, noUnion, filter, sc)
		bc, br := paths[0].cost, paths[0].rows
		for _, p := range paths[1:] {
			if p.cost < bc {
				bc, br = p.cost, p.rows
			}
		}
		sc.baseCost[i], sc.baseRows[i] = bc, br
		bit := 1 << uint(i)
		sc.dpHas[bit] = true
		sc.dpCost[bit] = bc
		sc.dpRows[bit] = br
	}
	for mask := 3; mask < size; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		has := false
		var eCost, eRows float64
		for t := 0; t < n; t++ {
			bit := 1 << uint(t)
			if mask&bit == 0 {
				continue
			}
			rest := mask &^ bit
			if !sc.dpHas[rest] {
				continue
			}
			cCost, cRows := o.costJoinStep(pq, cfg, sc.dpCost[rest], sc.dpRows[rest], rest, t, filter, sc)
			if !has || cCost < eCost {
				has = true
				eCost, eRows = cCost, cRows
			}
		}
		sc.dpHas[mask] = has
		sc.dpCost[mask] = eCost
		sc.dpRows[mask] = eRows
	}
	if !sc.dpHas[size-1] {
		return 0, fmt.Errorf("optimizer: no join plan found")
	}
	return pq.finishCostJoin(sc.dpCost[size-1], sc.dpRows[size-1]), nil
}

// costJoinStep is joinStep on costs alone, consuming the precomputed
// per-table base access path instead of re-enumerating it.
func (o *Optimizer) costJoinStep(pq *PreparedQuery, cfg Configuration, leftCost, leftRows float64, rest, t int, filter bool, sc *costScratch) (float64, float64) {
	ct := &pq.cost[t]
	jsel := 1.0
	nconns := 0
	for k := range pq.joins {
		if pq.joins[k].connects(rest, t) {
			jsel *= pq.joins[k].sel
			nconns++
		}
	}
	rightRows := ct.filteredRows
	outRows := leftRows * rightRows * clampSel(jsel)
	if outRows < 1 {
		outRows = 1
	}
	var best float64
	if nconns > 0 {
		buildRows, probeRows := rightRows, leftRows
		if leftRows < rightRows {
			buildRows, probeRows = leftRows, rightRows
		}
		best = leftCost + sc.baseCost[t] + hashJoinCost(buildRows, probeRows) + outRows*CPUOpCost
	} else {
		outer := leftRows
		if outer < 1 {
			outer = 1
		}
		nlRows := leftRows * rightRows
		best = leftCost + outer*sc.baseCost[t] + nlRows*CPUOpCost
	}
	if nconns > 0 {
		if innerCost, ok := o.innerSeekCostPrepared(pq, ct, cfg, rest, t, filter, sc); ok {
			outer := leftRows
			if outer < 1 {
				outer = 1
			}
			if c := leftCost + outer*innerCost + outRows*CPUOpCost; c < best {
				best = c
			}
		}
	}
	return best, outRows
}

// innerSeekCostPrepared is innerSeekPath on costs alone: extend the
// table's predicates with the prepared synthetic join probes for the
// connecting joins (deduplicated by column, connection order), then
// find the cheapest index seek that consumes at least one probe.
func (o *Optimizer) innerSeekCostPrepared(pq *PreparedQuery, ct *costTable, cfg Configuration, rest, t int, filter bool, sc *costScratch) (float64, bool) {
	ti := ct.ti
	ext := sc.ext[:0]
	ext = append(ext, ti.preds...)
	nbase := len(ext)
	for k := range pq.joins {
		j := &pq.joins[k]
		if !j.connects(rest, t) {
			continue
		}
		col := j.myCol(t)
		dup := false
		for pi := nbase; pi < len(ext); pi++ {
			if ext[pi].p.Col.Column == col {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for si := range ct.synth {
			if ct.synth[si].p.Col.Column == col {
				ext = append(ext, ct.synth[si])
				break
			}
		}
	}
	sc.ext = ext

	best := 0.0
	found := false
	for i := range cfg {
		idx := &cfg[i]
		if idx.Table != ti.name {
			continue
		}
		if filter && !indexRelevant(idx.Columns, ti.seekLeadJoin, ti.required) {
			continue
		}
		sel, used, _, nEq, hasRng := matchSeekMask(idx.Columns, ext)
		if nEq == 0 && !hasRng {
			continue
		}
		// The seek must consume a join probe: an equality on a null
		// placeholder value whose column one of the connecting joins
		// supplies — the same test innerSeekPath applies to SeekEq.
		uses := false
		for pi := 0; pi < len(ext); pi++ {
			if used&(1<<uint(pi)) == 0 {
				continue
			}
			if !ext[pi].p.Op.IsEquality() || !ext[pi].p.Val.IsNull() {
				continue
			}
			if pq.isConnJoinCol(rest, t, ext[pi].p.Col.Column) {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		keyWidth := ti.table.WidthOf(idx.Columns)
		idxPages := storage.EstimateIndexPages(int64(ti.rowCount), keyWidth)
		height := storage.EstimateIndexHeight(int64(ti.rowCount), keyWidth)
		covering := coversRequired(idx.Columns, ti.required)
		matchRows := ti.rowCount * sel
		c := seekCost(height, idxPages, ti.rowCount, matchRows, covering, ti.heapPages)
		if !found || c < best {
			found = true
			best = c
		}
	}
	return best, found
}

// isConnJoinCol reports whether col is table t's side of a join
// predicate connecting t to rest.
func (pq *PreparedQuery) isConnJoinCol(rest, t int, col string) bool {
	for k := range pq.joins {
		if pq.joins[k].connects(rest, t) && pq.joins[k].myCol(t) == col {
			return true
		}
	}
	return false
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
