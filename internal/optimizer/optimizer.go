package optimizer

import (
	"fmt"
	"math"
	"sync/atomic"

	"indexmerge/internal/faults"
	"indexmerge/internal/sql"
	"indexmerge/internal/storage"
)

// Optimizer produces plans and cost estimates for queries against a
// configuration of (possibly hypothetical) indexes.
//
// Concurrency contract: Optimize and Cost are safe for concurrent use
// — planning state is per-call, metadata access is read-only, and the
// invocation counter is atomic. The caller must not mutate the
// underlying database (inserts, index creation, Analyze) or toggle
// DisableIndexIntersection while concurrent optimizations run; the
// parallel merge search relies on exactly this read-only contract.
type Optimizer struct {
	meta Meta

	// invocations counts Optimize calls — the quantity the paper's
	// §3.5.3 optimizations (workload compression, external-cost
	// pre-filtering) aim to reduce. Read it with InvocationCount.
	invocations atomic.Int64

	// preparedCalls counts the subset of invocations that went through
	// the prepared fast paths (OptimizePrepared, CostPrepared). Read it
	// with PreparedCallCount; the facade's bypass guard asserts it
	// tracks invocations once a workload is prepared.
	preparedCalls atomic.Int64

	// DisableIndexIntersection turns off RID-intersection access paths;
	// used by the ablation that measures how optimizer sophistication
	// affects merge quality. Must not be toggled while Optimize calls
	// are in flight.
	DisableIndexIntersection bool

	// DisableIndexUnion turns off RID-union access paths for OR/IN
	// disjunctions — the ablation showing how IndexMerge awareness
	// changes which merged indexes the search recommends. Must not be
	// toggled while Optimize calls are in flight.
	DisableIndexUnion bool

	// DisableRelevantIndexFilter turns off the prepared fast paths'
	// relevant-index prefilter (cost every index as the unprepared path
	// does); the guard test uses it to prove the skip never changes a
	// chosen plan. Must not be toggled while Optimize calls are in
	// flight.
	DisableRelevantIndexFilter bool
}

// New creates an optimizer over the given metadata provider.
func New(meta Meta) *Optimizer {
	return &Optimizer{meta: meta}
}

// InvocationCount returns the number of Optimize calls performed.
func (o *Optimizer) InvocationCount() int64 { return o.invocations.Load() }

// PreparedCallCount returns how many invocations used the prepared
// fast paths.
func (o *Optimizer) PreparedCallCount() int64 { return o.preparedCalls.Load() }

// Optimize returns the cheapest plan found for the statement under the
// configuration. The statement must already be resolved.
func (o *Optimizer) Optimize(stmt *sql.SelectStmt, cfg Configuration) (*Plan, error) {
	o.invocations.Add(1)
	if err := faults.Inject(faults.OptimizerCost); err != nil {
		return nil, err
	}
	ctx, err := o.newContext(stmt, cfg)
	if err != nil {
		return nil, err
	}
	var root Node
	if len(ctx.tables) == 1 {
		root, err = ctx.planSingleTable()
	} else {
		root, err = ctx.planJoin()
	}
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Cost: root.Cost(), Uses: collectUses(root)}, nil
}

// Cost is a convenience for Optimize().Cost.
func (o *Optimizer) Cost(stmt *sql.SelectStmt, cfg Configuration) (float64, error) {
	p, err := o.Optimize(stmt, cfg)
	if err != nil {
		return 0, err
	}
	return p.Cost, nil
}

// WorkloadCost computes Cost(W, C): the frequency-weighted sum of
// optimizer-estimated query costs (paper §3.1).
func (o *Optimizer) WorkloadCost(w *sql.Workload, cfg Configuration) (float64, error) {
	total := 0.0
	for _, q := range w.Queries {
		c, err := o.Cost(q.Stmt, cfg)
		if err != nil {
			return 0, err
		}
		total += c * q.Freq
	}
	return total, nil
}

// optContext is per-query planning state. Prepared planning pools
// contexts and points tables/byName into the immutable descriptor;
// ad-hoc planning builds them per call.
type optContext struct {
	opt    *Optimizer
	stmt   *sql.SelectStmt
	cfg    Configuration
	tables []*tableInfo
	byName map[string]*tableInfo // nil for single-table ad-hoc contexts
	// noIntersect/noUnion/filter snapshot the optimizer knobs for this
	// call.
	noIntersect bool
	noUnion     bool
	filter      bool
	// basePaths caches each table's best standalone access path during
	// join planning (indexed like tables); joinStep reuses it instead
	// of re-enumerating per DP extension.
	basePaths []accessPath
}

func (o *Optimizer) newContext(stmt *sql.SelectStmt, cfg Configuration) (*optContext, error) {
	ctx := &optContext{opt: o, stmt: stmt, cfg: cfg, noIntersect: o.DisableIndexIntersection, noUnion: o.DisableIndexUnion}
	sc := o.meta.Schema()
	names := stmt.TablesReferenced()
	if len(names) > 1 {
		ctx.byName = make(map[string]*tableInfo, len(names))
	}
	for _, name := range names {
		t, ok := sc.Table(name)
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown table %q", name)
		}
		ti := &tableInfo{
			name:     name,
			table:    t,
			ts:       o.meta.TableStats(name),
			rowCount: float64(o.meta.TableRowCount(name)),
			required: stmt.ColumnsOf(name),
		}
		ti.heapPages = storage.EstimateHeapPages(int64(ti.rowCount), t.RowWidth())
		ti.initPreds(stmt)
		ctx.tables = append(ctx.tables, ti)
		if ctx.byName != nil {
			ctx.byName[name] = ti
		}
	}
	return ctx, nil
}

// lookup resolves a referenced table by name without requiring the
// byName map (absent for single-table ad-hoc contexts).
func (ctx *optContext) lookup(name string) *tableInfo {
	if ctx.byName != nil {
		return ctx.byName[name]
	}
	for _, ti := range ctx.tables {
		if ti.name == name {
			return ti
		}
	}
	return nil
}

// hasAggregates reports whether the select list aggregates.
func (ctx *optContext) hasAggregates() bool {
	for _, it := range ctx.stmt.Select {
		if it.Agg != sql.AggNone {
			return true
		}
	}
	return false
}

// planSingleTable enumerates access paths and finishes each with
// aggregation/sort, keeping the cheapest complete plan. Enumerating
// complete plans (rather than the cheapest access path only) lets an
// index that provides order win even when a bare scan is cheaper.
func (ctx *optContext) planSingleTable() (Node, error) {
	ti := ctx.tables[0]
	paths := enumerateAccessPaths(ti, ctx.cfg.ForTable(ti.name), ctx.noIntersect, ctx.noUnion, ctx.filter)
	var best Node
	bestCost := math.Inf(1)
	for _, path := range paths {
		plan := ctx.finish(path.node, path, ti)
		if plan.Cost() < bestCost {
			bestCost = plan.Cost()
			best = plan
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no plan for table %q", ti.name)
	}
	return best, nil
}

// finish layers aggregation, sort, and projection over an input node.
// path carries the input's ordering properties (zero value when the
// input is a join).
func (ctx *optContext) finish(n Node, path accessPath, orderTable *tableInfo) Node {
	stmt := ctx.stmt
	ordered := false
	if orderTable != nil {
		ordered = orderSatisfied(stmt.OrderBy, path, orderTable.name)
	}

	if len(stmt.GroupBy) > 0 || ctx.hasAggregates() {
		inRows := n.Rows()
		groups := 1.0
		if len(stmt.GroupBy) > 0 {
			groups = ctx.groupCardinality(stmt.GroupBy, inRows)
		}
		streaming := false
		if orderTable != nil && groupSatisfied(stmt.GroupBy, path, orderTable.name) {
			streaming = true
		}
		agg := &AggNode{GroupBy: stmt.GroupBy, Aggs: stmt.Select, Streaming: streaming}
		agg.children = []Node{n}
		agg.rows = groups
		if streaming {
			agg.cost = n.Cost() + streamAggCost(inRows)
		} else {
			agg.cost = n.Cost() + hashAggCost(inRows, groups)
			ordered = false // hash aggregation destroys input order
		}
		n = agg
	}

	if len(stmt.OrderBy) > 0 && !ordered {
		srt := &SortNode{Keys: stmt.OrderBy}
		srt.children = []Node{n}
		srt.rows = n.Rows()
		srt.cost = n.Cost() + sortCost(n.Rows())
		n = srt
	}

	proj := &ProjectNode{Items: stmt.Select}
	proj.children = []Node{n}
	proj.rows = n.Rows()
	proj.cost = n.Cost() + n.Rows()*CPUOpCost
	return proj
}

// groupCardinality estimates result groups across the query's tables.
func (ctx *optContext) groupCardinality(cols []sql.ColumnRef, inRows float64) float64 {
	groups := 1.0
	for _, c := range cols {
		ti := ctx.lookup(c.Table)
		if ti == nil {
			continue
		}
		groups *= distinctOf(ti.ts, c.Column, ti.rowCount)
		if groups > inRows {
			break
		}
	}
	if groups > inRows {
		groups = inRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}
