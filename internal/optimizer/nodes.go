package optimizer

import (
	"fmt"
	"strings"

	"indexmerge/internal/catalog"
	"indexmerge/internal/sql"
)

// Node is a physical plan operator. Costs are cumulative (include
// children); Rows is the estimated output cardinality.
type Node interface {
	Cost() float64
	Rows() float64
	Children() []Node
	Describe() string
}

type baseNode struct {
	cost     float64
	rows     float64
	children []Node
}

func (b *baseNode) Cost() float64    { return b.cost }
func (b *baseNode) Rows() float64    { return b.rows }
func (b *baseNode) Children() []Node { return b.children }

// TableScanNode reads the whole heap, applying residual predicates.
type TableScanNode struct {
	baseNode
	Table  string
	Filter []sql.Predicate
}

// Describe implements Node.
func (n *TableScanNode) Describe() string {
	s := "TableScan(" + n.Table + ")"
	if len(n.Filter) > 0 {
		s += " filter=" + predList(n.Filter)
	}
	return s
}

// IndexScanNode reads an entire index as a narrow vertical slice — the
// "index scan" usage mode from paper §3.3.1. It only arises when the
// index covers the query's column slice for the table.
type IndexScanNode struct {
	baseNode
	Index  catalog.IndexDef
	Filter []sql.Predicate
}

// Describe implements Node.
func (n *IndexScanNode) Describe() string {
	s := "IndexScan(" + n.Index.Name + ")"
	if len(n.Filter) > 0 {
		s += " filter=" + predList(n.Filter)
	}
	return s
}

// IndexSeekNode descends the B+-tree using an equality prefix plus at
// most one range predicate — the "index seek" usage mode. When the
// index does not cover the needed columns, each match costs a RID
// lookup into the heap.
type IndexSeekNode struct {
	baseNode
	Index    catalog.IndexDef
	SeekEq   []sql.Predicate // equality predicates on the leading columns
	SeekRng  *sql.Predicate  // optional range predicate on the next column
	Residual []sql.Predicate // remaining predicates applied after fetch
	Covering bool            // no RID lookups needed
}

// Describe implements Node.
func (n *IndexSeekNode) Describe() string {
	var seeks []string
	for _, p := range n.SeekEq {
		seeks = append(seeks, p.String())
	}
	if n.SeekRng != nil {
		seeks = append(seeks, n.SeekRng.String())
	}
	s := fmt.Sprintf("IndexSeek(%s) seek=[%s]", n.Index.Name, strings.Join(seeks, " AND "))
	if !n.Covering {
		s += " +RIDLookup"
	}
	if len(n.Residual) > 0 {
		s += " residual=" + predList(n.Residual)
	}
	return s
}

// JoinKind enumerates physical join algorithms.
type JoinKind int

// Physical join algorithms.
const (
	HashJoin JoinKind = iota
	IndexNLJoin
	NLJoin
)

func (k JoinKind) String() string {
	switch k {
	case HashJoin:
		return "HashJoin"
	case IndexNLJoin:
		return "IndexNLJoin"
	case NLJoin:
		return "NLJoin"
	}
	return "Join"
}

// JoinNode joins two inputs on equality predicates. For IndexNLJoin
// the right child is the parameterized inner seek.
type JoinNode struct {
	baseNode
	Kind JoinKind
	On   []sql.JoinPred
}

// Describe implements Node.
func (n *JoinNode) Describe() string {
	var conds []string
	for _, j := range n.On {
		conds = append(conds, j.String())
	}
	return fmt.Sprintf("%s on [%s]", n.Kind, strings.Join(conds, " AND "))
}

// SortNode orders its input.
type SortNode struct {
	baseNode
	Keys []sql.OrderItem
}

// Describe implements Node.
func (n *SortNode) Describe() string {
	keys := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		keys[i] = k.String()
	}
	return "Sort(" + strings.Join(keys, ", ") + ")"
}

// AggNode groups and aggregates. Streaming requires sorted input.
type AggNode struct {
	baseNode
	GroupBy   []sql.ColumnRef
	Aggs      []sql.SelectItem
	Streaming bool
}

// Describe implements Node.
func (n *AggNode) Describe() string {
	mode := "HashAggregate"
	if n.Streaming {
		mode = "StreamAggregate"
	}
	if len(n.GroupBy) == 0 {
		return mode + " (scalar)"
	}
	keys := make([]string, len(n.GroupBy))
	for i, g := range n.GroupBy {
		keys[i] = g.String()
	}
	return mode + " by (" + strings.Join(keys, ", ") + ")"
}

// ProjectNode trims the output to the select list.
type ProjectNode struct {
	baseNode
	Items []sql.SelectItem
}

// Describe implements Node.
func (n *ProjectNode) Describe() string {
	items := make([]string, len(n.Items))
	for i, it := range n.Items {
		items[i] = it.String()
	}
	return "Project(" + strings.Join(items, ", ") + ")"
}

func predList(ps []sql.Predicate) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, " AND ") + "]"
}

// UsageMode says how a plan used an index — the distinction at the
// heart of MergePair-Cost (paper §3.3.1).
type UsageMode int

// Index usage modes.
const (
	UsageSeek UsageMode = iota
	UsageScan
)

func (m UsageMode) String() string {
	if m == UsageSeek {
		return "seek"
	}
	return "scan"
}

// IndexUse records one index's participation in a plan.
type IndexUse struct {
	Index catalog.IndexDef
	Mode  UsageMode
}

// Plan is the optimizer's output: root operator, total estimated cost,
// and the Showplan-style index usage report.
type Plan struct {
	Root Node
	Cost float64
	Uses []IndexUse
}

// UsesIndexForSeek reports whether the plan seeks on the given index.
func (p *Plan) UsesIndexForSeek(defKey string) bool {
	for _, u := range p.Uses {
		if u.Mode == UsageSeek && u.Index.Key() == defKey {
			return true
		}
	}
	return false
}

// Explain renders the plan tree as indented text (Showplan analogue).
func (p *Plan) Explain() string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (cost=%.2f rows=%.0f)\n", strings.Repeat("  ", depth), n.Describe(), n.Cost(), n.Rows())
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}

// collectUses walks a plan tree gathering index usage. Deduplication
// compares (mode, table, columns) directly — the same identity
// IndexDef.Key encodes — with a linear scan instead of a map+string
// key: plans use a handful of indexes at most.
func collectUses(n Node) []IndexUse {
	var uses []IndexUse
	var walk func(Node)
	add := func(def catalog.IndexDef, mode UsageMode) {
		for _, u := range uses {
			if u.Mode == mode && u.Index.Table == def.Table && sameCols(u.Index.Columns, def.Columns) {
				return
			}
		}
		uses = append(uses, IndexUse{Index: def, Mode: mode})
	}
	walk = func(n Node) {
		switch t := n.(type) {
		case *IndexSeekNode:
			add(t.Index, UsageSeek)
		case *IndexScanNode:
			add(t.Index, UsageScan)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return uses
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
