// Package internal_test exercises the full pipeline end to end: data
// generation → optimizer → executor → advisor → index merging.
package internal_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"indexmerge/internal/advisor"
	"indexmerge/internal/core"
	"indexmerge/internal/datagen"
	"indexmerge/internal/engine"
	"indexmerge/internal/exec"
	"indexmerge/internal/optimizer"
	sqlpkg "indexmerge/internal/sql"
	"indexmerge/internal/value"
	"indexmerge/internal/workload"
)

func buildTinyTPCD(t testing.TB) *engine.Database {
	t.Helper()
	db, err := datagen.BuildTPCD(datagen.ScaledTPCD(0.25), 42)
	if err != nil {
		t.Fatalf("BuildTPCD: %v", err)
	}
	return db
}

func TestEndToEndTPCD(t *testing.T) {
	db := buildTinyTPCD(t)
	w, err := datagen.TPCDWorkload(db.Schema())
	if err != nil {
		t.Fatalf("TPCDWorkload: %v", err)
	}
	if w.Len() != datagen.TPCDQueryCount {
		t.Fatalf("expected %d queries, got %d", datagen.TPCDQueryCount, w.Len())
	}
	opt := optimizer.New(db)

	// Every query must plan and execute with no indexes.
	for i, q := range w.Queries {
		plan, err := opt.Optimize(q.Stmt, nil)
		if err != nil {
			t.Fatalf("q%d optimize: %v", i+1, err)
		}
		if plan.Cost <= 0 {
			t.Errorf("q%d: non-positive cost %v", i+1, plan.Cost)
		}
		if _, err := exec.Run(db, plan); err != nil {
			t.Fatalf("q%d execute: %v\nplan:\n%s", i+1, err, plan.Explain())
		}
	}

	// Per-query tuning must strictly improve some queries.
	adv := advisor.New(db, opt)
	defs, err := adv.TuneWorkload(w)
	if err != nil {
		t.Fatalf("TuneWorkload: %v", err)
	}
	if len(defs) == 0 {
		t.Fatal("advisor recommended no indexes for the TPC-D workload")
	}

	baseCost, err := opt.WorkloadCost(w, nil)
	if err != nil {
		t.Fatalf("WorkloadCost(no indexes): %v", err)
	}
	tunedCost, err := opt.WorkloadCost(w, optimizer.Configuration(defs))
	if err != nil {
		t.Fatalf("WorkloadCost(tuned): %v", err)
	}
	if tunedCost >= baseCost {
		t.Fatalf("tuned cost %v not below base cost %v", tunedCost, baseCost)
	}

	// Greedy merging must reduce storage while respecting the bound.
	initial := core.NewConfiguration(defs)
	seek, err := core.ComputeSeekCosts(opt, w, initial)
	if err != nil {
		t.Fatalf("ComputeSeekCosts: %v", err)
	}
	check := core.NewOptimizerChecker(opt, w, tunedCost, 0.10)
	res, err := core.Greedy(initial, &core.MergePairCost{Seek: seek}, check, db)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if res.FinalBytes > res.InitialBytes {
		t.Errorf("merged configuration grew: %d -> %d", res.InitialBytes, res.FinalBytes)
	}
	if err := core.ValidateMinimalMerged(initial, res.Final); err != nil {
		t.Errorf("result not a minimal merged configuration: %v", err)
	}
	finalCost, err := opt.WorkloadCost(w, optimizer.Configuration(res.Final.Defs()))
	if err != nil {
		t.Fatalf("WorkloadCost(final): %v", err)
	}
	if finalCost > check.U*1.0000001 {
		t.Errorf("final cost %v exceeds bound %v", finalCost, check.U)
	}
	t.Logf("initial: %d indexes, %d bytes; final: %d indexes, %d bytes (%.1f%% saved); cost %.1f -> %.1f (bound %.1f)",
		initial.Len(), res.InitialBytes, res.Final.Len(), res.FinalBytes, 100*res.StorageReduction(), tunedCost, finalCost, check.U)
}

func TestEndToEndSyntheticComplexWorkload(t *testing.T) {
	spec := datagen.Synthetic1Spec()
	spec.RowsPer = 1500
	db, err := datagen.BuildSynthetic(spec)
	if err != nil {
		t.Fatalf("BuildSynthetic: %v", err)
	}
	w, err := workload.Generate(db, workload.Options{Class: workload.Complex, Queries: 15, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	opt := optimizer.New(db)
	for i, q := range w.Queries {
		plan, err := opt.Optimize(q.Stmt, nil)
		if err != nil {
			t.Fatalf("q%d optimize: %v\nsql: %s", i, err, q.Stmt)
		}
		if _, err := exec.Run(db, plan); err != nil {
			t.Fatalf("q%d execute: %v\nsql: %s\nplan:\n%s", i, err, q.Stmt, plan.Explain())
		}
	}
}

// TestPlanMatchesNaiveEvaluation cross-checks optimizer plans (with
// indexes materialized) against the no-index table-scan plan: same
// query, same rows.
func TestPlanMatchesNaiveEvaluation(t *testing.T) {
	db := buildTinyTPCD(t)
	w, err := datagen.TPCDWorkload(db.Schema())
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(db)
	adv := advisor.New(db, opt)
	defs, err := adv.TuneWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Materialize(defs); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	cfg := optimizer.Configuration(defs)
	for i, q := range w.Queries {
		fancy, err := opt.Optimize(q.Stmt, cfg)
		if err != nil {
			t.Fatalf("q%d optimize: %v", i+1, err)
		}
		naive, err := opt.Optimize(q.Stmt, nil)
		if err != nil {
			t.Fatalf("q%d naive optimize: %v", i+1, err)
		}
		got, err := exec.Run(db, fancy)
		if err != nil {
			t.Fatalf("q%d run indexed plan: %v\nplan:\n%s", i+1, err, fancy.Explain())
		}
		want, err := exec.Run(db, naive)
		if err != nil {
			t.Fatalf("q%d run naive plan: %v", i+1, err)
		}
		// Multiset comparison: ties under ORDER BY may legally appear in
		// any relative order, so sortedness is verified separately.
		if !sameResults(got, want, false) {
			t.Errorf("q%d: indexed plan returned %d rows, naive %d rows\nsql: %s\nindexed plan:\n%s",
				i+1, len(got.Rows), len(want.Rows), q.Stmt, fancy.Explain())
		}
		if err := checkOrdered(got, q.Stmt.OrderBy); err != nil {
			t.Errorf("q%d: %v\nsql: %s", i+1, err, q.Stmt)
		}
	}
}

// checkOrdered verifies a result respects its ORDER BY keys.
func checkOrdered(res *exec.Result, order []sqlpkg.OrderItem) error {
	if len(order) == 0 {
		return nil
	}
	idx := make([]int, 0, len(order))
	desc := make([]bool, 0, len(order))
	for _, o := range order {
		found := -1
		for i, c := range res.Columns {
			if c == o.Col.String() || strings.HasSuffix(c, "."+o.Col.Column) || c == o.Col.Column {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("order column %s missing from result columns %v", o.Col, res.Columns)
		}
		idx = append(idx, found)
		desc = append(desc, o.Desc)
	}
	for r := 1; r < len(res.Rows); r++ {
		for k, ci := range idx {
			c := res.Rows[r-1][ci].Compare(res.Rows[r][ci])
			if desc[k] {
				c = -c
			}
			if c < 0 {
				break // strictly ordered on this key
			}
			if c > 0 {
				return fmt.Errorf("rows %d and %d out of order on key %d", r-1, r, k)
			}
		}
	}
	return nil
}

// sameResults compares result sets; when ordered is false the rows are
// compared as multisets.
func sameResults(a, b *exec.Result, ordered bool) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	toStrings := func(res *exec.Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			s := ""
			for _, v := range r {
				// Round floats: different plans sum in different orders
				// and float addition is not associative.
				if v.Kind() == value.Float {
					s += fmt.Sprintf("%.3f|", v.Float())
				} else {
					s += v.String() + "|"
				}
			}
			out[i] = s
		}
		return out
	}
	as, bs := toStrings(a), toStrings(b)
	if !ordered {
		sort.Strings(as)
		sort.Strings(bs)
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
