package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTransientErr models a retryable failure from any layer.
type fakeTransientErr struct{ transient bool }

func (e fakeTransientErr) Error() string   { return "fake fault" }
func (e fakeTransientErr) Transient() bool { return e.transient }

// scriptedChecker is a resilientInner whose attempts follow a script:
// entry i is the error (or nil) returned by the i-th call; entries
// equal to panicSentinel panic instead. Past the end of the script it
// returns the steady decision.
type scriptedChecker struct {
	mu     sync.Mutex
	script []error
	calls  int
	accept bool
	evals  atomic.Int64
}

var panicSentinel = errors.New("panic now")

func (s *scriptedChecker) Accepts(cfg *Configuration, m, a, b *Index) (bool, error) {
	return s.AcceptsContext(context.Background(), cfg, m, a, b)
}

func (s *scriptedChecker) AcceptsContext(ctx context.Context, cfg *Configuration, m, a, b *Index) (bool, error) {
	s.evals.Add(1)
	s.mu.Lock()
	var step error
	if s.calls < len(s.script) {
		step = s.script[s.calls]
	}
	s.calls++
	s.mu.Unlock()
	if step == panicSentinel {
		panic("scripted costing panic")
	}
	if step != nil {
		return false, step
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return s.accept, nil
}

func (s *scriptedChecker) Description() string { return "scripted" }
func (s *scriptedChecker) Evaluations() int64  { return s.evals.Load() }

func (s *scriptedChecker) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(fakeTransientErr{transient: true}) {
		t.Error("transient error not classified transient")
	}
	if IsTransient(fakeTransientErr{transient: false}) {
		t.Error("permanent error classified transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	// Wrapped chains must still classify.
	wrapped := &CostingError{Attempts: 3, Err: fakeTransientErr{transient: true}}
	if !IsTransient(wrapped) {
		t.Error("wrapped transient error not classified")
	}
}

func TestPanicErrorTransient(t *testing.T) {
	if !(&PanicError{Value: "boom"}).Transient() {
		t.Error("plain panic should default to transient")
	}
	if (&PanicError{Value: fakeTransientErr{transient: false}}).Transient() {
		t.Error("panic carrying a permanent error must stay permanent")
	}
	if !(&PanicError{Value: fakeTransientErr{transient: true}}).Transient() {
		t.Error("panic carrying a transient error must stay transient")
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Hour}
	for i := 0; i < 2; i++ {
		if allow, _ := b.Allow(); !allow {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure(false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state after %d failures = %v, want closed", i+1, got)
		}
	}
	b.Allow()
	b.Failure(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if allow, _ := b.Allow(); allow {
		t.Error("open breaker allowed a call inside cooldown")
	}
	if got := b.Transitions(); got != 1 {
		t.Errorf("transitions = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := &Breaker{Threshold: 2, Cooldown: time.Hour}
	b.Failure(false)
	b.Success(false)
	b.Failure(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: time.Millisecond}
	b.Failure(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	time.Sleep(5 * time.Millisecond)

	allow, probe := b.Allow()
	if !allow || !probe {
		t.Fatalf("post-cooldown Allow = (%v, %v), want probe", allow, probe)
	}
	// Only one probe at a time.
	if allow, _ := b.Allow(); allow {
		t.Error("second call allowed while probe in flight")
	}
	// Failed probe reopens immediately.
	b.Failure(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	time.Sleep(5 * time.Millisecond)
	_, probe = b.Allow()
	if !probe {
		t.Fatal("expected a second probe after re-cooldown")
	}
	b.Success(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if allow, probe := b.Allow(); !allow || probe {
		t.Errorf("reclosed breaker Allow = (%v, %v), want plain allow", allow, probe)
	}
}

func TestBreakerReleaseKeepsHalfOpen(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: time.Millisecond}
	b.Failure(false)
	time.Sleep(5 * time.Millisecond)
	if _, probe := b.Allow(); !probe {
		t.Fatal("expected probe")
	}
	// Parent cancellation: the probe is released without judgment and
	// the slot becomes available to the next caller instead of
	// deadlocking half-open forever.
	b.Release(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after release = %v, want half-open", got)
	}
	allow, probe := b.Allow()
	if !allow || !probe {
		t.Fatalf("Allow after release = (%v, %v), want a fresh probe", allow, probe)
	}
}

func TestBreakerConcurrentProbeExclusive(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: time.Millisecond}
	b.Failure(false)
	time.Sleep(5 * time.Millisecond)
	var probes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if allow, probe := b.Allow(); allow && probe {
				probes.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := probes.Load(); got != 1 {
		t.Fatalf("%d concurrent probes allowed, want exactly 1", got)
	}
}

func TestResilientRetriesAbsorbTransientFaults(t *testing.T) {
	inner := &scriptedChecker{
		script: []error{fakeTransientErr{transient: true}, fakeTransientErr{transient: true}},
		accept: true,
	}
	rc := &ResilientChecker{Inner: inner, Backoff: time.Microsecond}
	ok, err := rc.Accepts(nil, nil, nil, nil)
	if err != nil || !ok {
		t.Fatalf("Accepts = (%v, %v), want (true, nil)", ok, err)
	}
	if got := rc.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if rc.Degraded() {
		t.Error("retry-absorbed faults must not mark the result degraded")
	}
	if got := inner.callCount(); got != 3 {
		t.Errorf("inner calls = %d, want 3", got)
	}
}

func TestResilientPermanentErrorWithoutFallback(t *testing.T) {
	permanent := errors.New("optimizer exploded")
	inner := &scriptedChecker{script: []error{permanent}}
	rc := &ResilientChecker{Inner: inner, Backoff: time.Microsecond}
	_, err := rc.Accepts(nil, nil, nil, nil)
	var ce *CostingError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CostingError", err)
	}
	if ce.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (permanent errors are not retried)", ce.Attempts)
	}
	if !errors.Is(err, permanent) {
		t.Error("CostingError must unwrap to the last attempt error")
	}
	if got := inner.callCount(); got != 1 {
		t.Errorf("inner calls = %d, want 1", got)
	}
}

func TestResilientRetryBudgetExhausted(t *testing.T) {
	tr := fakeTransientErr{transient: true}
	inner := &scriptedChecker{script: []error{tr, tr, tr, tr, tr, tr}}
	rc := &ResilientChecker{Inner: inner, MaxRetries: 2, Backoff: time.Microsecond}
	_, err := rc.Accepts(nil, nil, nil, nil)
	var ce *CostingError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CostingError", err)
	}
	if ce.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + MaxRetries)", ce.Attempts)
	}
}

func TestResilientNegativeMaxRetriesDisables(t *testing.T) {
	inner := &scriptedChecker{script: []error{fakeTransientErr{transient: true}}, accept: true}
	rc := &ResilientChecker{Inner: inner, MaxRetries: -1, Backoff: time.Microsecond}
	if _, err := rc.Accepts(nil, nil, nil, nil); err == nil {
		t.Fatal("MaxRetries<0 must disable retries, got success")
	}
	if got := inner.callCount(); got != 1 {
		t.Errorf("inner calls = %d, want 1", got)
	}
}

func TestResilientRecoversPanics(t *testing.T) {
	inner := &scriptedChecker{script: []error{panicSentinel}, accept: true}
	rc := &ResilientChecker{Inner: inner, Backoff: time.Microsecond}
	ok, err := rc.Accepts(nil, nil, nil, nil)
	if err != nil || !ok {
		t.Fatalf("Accepts = (%v, %v), want (true, nil)", ok, err)
	}
	if got := rc.PanicsRecovered(); got != 1 {
		t.Errorf("panics recovered = %d, want 1", got)
	}
	if got := rc.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

func TestResilientParentCancellationPropagates(t *testing.T) {
	inner := &scriptedChecker{accept: true}
	b := &Breaker{Threshold: 1, Cooldown: time.Hour}
	rc := &ResilientChecker{Inner: inner, Breaker: b, Backoff: time.Microsecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rc.AcceptsContext(ctx, nil, nil, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is not a costing failure: the breaker must stay
	// closed (Threshold is 1, so a Failure would have opened it).
	if got := b.State(); got != BreakerClosed {
		t.Errorf("breaker state after cancellation = %v, want closed", got)
	}
}

func TestResilientDegradedDecision(t *testing.T) {
	f := newSearchFixture(t)
	ext := &ExternalCostModel{Meta: f.db, W: f.w}
	ext.SetBaseline(f.initial)

	permanent := errors.New("optimizer down")
	// Inner fails every call permanently.
	script := make([]error, 64)
	for i := range script {
		script[i] = permanent
	}
	inner := &scriptedChecker{script: script}
	rc := &ResilientChecker{
		Inner:    inner,
		External: ext,
		SlackPct: 0.10,
		Backoff:  time.Microsecond,
	}
	// The initial configuration's external cost equals the baseline, so
	// the degraded decision must accept it (slack 10%).
	ok, err := rc.Accepts(f.initial, nil, nil, nil)
	if err != nil {
		t.Fatalf("degraded Accepts error: %v", err)
	}
	if !ok {
		t.Fatal("degraded decision rejected the baseline configuration")
	}
	if !rc.Degraded() {
		t.Error("Degraded flag not set")
	}
	if got := rc.DegradedChecks(); got != 1 {
		t.Errorf("degraded checks = %d, want 1", got)
	}
	// An empty configuration (all heap scans) must cost more than
	// baseline × 1.1 and be rejected by the degraded path too.
	empty := NewConfiguration(nil)
	ok, err = rc.Accepts(empty, nil, nil, nil)
	if err != nil {
		t.Fatalf("degraded Accepts error: %v", err)
	}
	if ok {
		t.Error("degraded decision accepted the index-free configuration")
	}
	// Evaluations include degraded decisions.
	if got := rc.Evaluations(); got < 2 {
		t.Errorf("evaluations = %d, want >= 2", got)
	}
}

func TestResilientCircuitOpenServesDegraded(t *testing.T) {
	f := newSearchFixture(t)
	ext := &ExternalCostModel{Meta: f.db, W: f.w}
	ext.SetBaseline(f.initial)

	inner := &scriptedChecker{accept: true}
	b := &Breaker{Threshold: 1, Cooldown: time.Hour}
	b.Failure(false) // force open
	rc := &ResilientChecker{Inner: inner, External: ext, SlackPct: 0.10, Breaker: b}

	ok, err := rc.Accepts(f.initial, nil, nil, nil)
	if err != nil || !ok {
		t.Fatalf("Accepts under open breaker = (%v, %v), want degraded accept", ok, err)
	}
	if got := inner.callCount(); got != 0 {
		t.Errorf("open breaker still reached the inner checker (%d calls)", got)
	}
	if !rc.Degraded() {
		t.Error("open-breaker decision must be degraded")
	}
}

func TestResilientCircuitOpenWithoutFallbackFails(t *testing.T) {
	inner := &scriptedChecker{accept: true}
	b := &Breaker{Threshold: 1, Cooldown: time.Hour}
	b.Failure(false)
	rc := &ResilientChecker{Inner: inner, Breaker: b}
	_, err := rc.Accepts(nil, nil, nil, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
}

func TestResilientBreakerTripsOnRepeatedFailures(t *testing.T) {
	permanent := errors.New("optimizer down")
	script := make([]error, 64)
	for i := range script {
		script[i] = permanent
	}
	inner := &scriptedChecker{script: script}
	b := &Breaker{Threshold: 3, Cooldown: time.Hour}
	rc := &ResilientChecker{Inner: inner, Breaker: b, Backoff: time.Microsecond}
	for i := 0; i < 3; i++ {
		if _, err := rc.Accepts(nil, nil, nil, nil); err == nil {
			t.Fatal("expected error")
		}
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("breaker after 3 permanent failures = %v, want open", got)
	}
	calls := inner.callCount()
	// Next check short-circuits: no new inner calls.
	if _, err := rc.Accepts(nil, nil, nil, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := inner.callCount(); got != calls {
		t.Errorf("open breaker reached inner checker: %d -> %d calls", calls, got)
	}
}

func TestResilientAttemptTimeout(t *testing.T) {
	// An inner checker that honors its context: the per-attempt
	// deadline converts a hang into a retryable timeout.
	var calls atomic.Int64
	inner := &ctxWaitChecker{calls: &calls}
	rc := &ResilientChecker{
		Inner:          inner,
		MaxRetries:     1,
		Backoff:        time.Microsecond,
		AttemptTimeout: 5 * time.Millisecond,
	}
	start := time.Now()
	_, err := rc.Accepts(nil, nil, nil, nil)
	var ce *CostingError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CostingError", err)
	}
	if !errors.Is(ce.Err, context.DeadlineExceeded) {
		t.Fatalf("last attempt error = %v, want DeadlineExceeded", ce.Err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (timeout is retryable)", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hung for %v; per-attempt deadline not applied", elapsed)
	}
}

// ctxWaitChecker blocks until its context is done.
type ctxWaitChecker struct{ calls *atomic.Int64 }

func (c *ctxWaitChecker) Accepts(cfg *Configuration, m, a, b *Index) (bool, error) {
	return c.AcceptsContext(context.Background(), cfg, m, a, b)
}

func (c *ctxWaitChecker) AcceptsContext(ctx context.Context, cfg *Configuration, m, a, b *Index) (bool, error) {
	c.calls.Add(1)
	<-ctx.Done()
	return false, ctx.Err()
}

func (c *ctxWaitChecker) Description() string { return "ctx-wait" }
func (c *ctxWaitChecker) Evaluations() int64  { return c.calls.Load() }

func TestResilientConcurrentAccepts(t *testing.T) {
	// Hammer a resilient checker (transient faults mixed in) from many
	// goroutines; run under -race this validates the locking story.
	tr := fakeTransientErr{transient: true}
	script := make([]error, 128)
	for i := 0; i < len(script); i += 4 {
		script[i] = tr
	}
	inner := &scriptedChecker{script: script, accept: true}
	// Interleaving means one goroutine's retry chain can consume several
	// scripted faults; give it budget to always outlast the script.
	rc := &ResilientChecker{Inner: inner, Breaker: &Breaker{}, MaxRetries: len(script), Backoff: time.Microsecond}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := rc.Accepts(nil, nil, nil, nil)
			if err != nil {
				errs <- err
				return
			}
			if !ok {
				errs <- errors.New("unexpected reject")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Accepts: %v", err)
	}
	if rc.Degraded() {
		t.Error("transient-only faults must not degrade")
	}
}
