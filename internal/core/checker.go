package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"indexmerge/internal/catalog"
	"indexmerge/internal/core/costcache"
	"indexmerge/internal/optimizer"
	"indexmerge/internal/sql"
)

// ConstraintChecker decides whether a candidate merged configuration
// satisfies the cost constraint (Step 7 of the Greedy algorithm,
// paper Figure 4). The candidate's newly merged index and its
// immediate pair are supplied for syntactic models that never consult
// a cost function.
//
// Implementations in this package are safe for concurrent Accepts
// calls, which the parallel search strategies rely on.
type ConstraintChecker interface {
	// Accepts reports whether cfg (obtained by replacing pair a,b with
	// merged index m) satisfies the constraint.
	Accepts(cfg *Configuration, m, a, b *Index) (bool, error)
	// Description names the strategy in reports.
	Description() string
	// Evaluations counts how many constraint evaluations have been
	// performed. A constraint evaluation is one Accepts/WorkloadCost
	// call; it is NOT necessarily an optimizer invocation — see
	// OptimizerCallCounter for the expensive count.
	Evaluations() int64
}

// OptimizerCallCounter is implemented by checkers that can report how
// many actual optimizer invocations (Server.Optimize calls) they have
// issued. The distinction matters for replicating §3.4.2: constraint
// checks that are fully served from the what-if cost cache are cheap,
// while optimizer invocations dominate running time.
type OptimizerCallCounter interface {
	OptimizerCalls() int64
}

// Schema provides table metadata for syntactic checks; the engine's
// Database satisfies it.
type SchemaProvider interface {
	Schema() *catalog.Schema
}

// Cache-key separators. Index keys are built from SQL identifiers and
// "(),", so the ASCII unit/record separators can never occur inside
// them; they make the concatenated key unambiguous (no two distinct
// relevant-configuration states can collide).
const (
	keySepIndex = '\x1f' // terminates each index key
	keySepTable = '\x1e' // terminates each table group
	keySepNS    = '\x1d' // terminates the checker's key namespace
)

// checkerQuery is per-query metadata precomputed once so the hot
// cache-key path does no parsing or formatting.
type checkerQuery struct {
	prefix string   // "q<idx>|"
	tables []string // distinct referenced tables, FROM order
}

// OptimizerChecker implements the optimizer-estimated cost evaluation
// (§3.5.3): Cost(W, C) is computed by invoking the query optimizer
// against the hypothetical configuration, and the constraint is
// Cost(W, C') ≤ U. Per-query costs are cached keyed by the subset of
// the configuration relevant to the query (the paper's "cost needs to
// be obtained only for relevant queries" shortcut).
//
// The checker is safe for concurrent use: the cache is sharded and
// deduplicates in-flight computations so two workers never optimize
// the same (query, relevant-config) key twice, and all counters are
// atomic. Server must be safe for concurrent Optimize calls
// (optimizer.Optimizer is) and Parallelism must be set before the
// first evaluation.
type OptimizerChecker struct {
	Server CostServer
	W      *sql.Workload
	U      float64 // absolute workload-cost upper bound

	// Parallelism bounds concurrent Server.Optimize calls issued by
	// this checker across all concurrent WorkloadCost invocations.
	// <= 1 means fully serial per-query costing.
	Parallelism int

	// Cache, when non-nil, supplies an external what-if cost cache to
	// use instead of a private one — the advisor service shares one
	// bounded cache across all of a session's jobs. Set before the
	// first evaluation. When the cache is shared across checkers built
	// over *different* workloads, KeyNamespace must distinguish them:
	// per-query keys embed only the query's position in the workload.
	Cache *costcache.Cache
	// KeyNamespace is prepended (with a reserved separator) to every
	// cache key. Choose one distinct namespace per workload when
	// sharing Cache.
	KeyNamespace string

	// Prepared, when non-nil, must be W prepared against the Server's
	// statistics (optimizer.PrepareWorkload); cache misses then cost
	// queries through the allocation-free prepared fast path instead of
	// Server.Optimize, with bit-identical totals. Set before the first
	// evaluation; requires Server to implement PreparedCostServer
	// (optimizer.Optimizer does).
	Prepared *optimizer.PreparedWorkload

	// Batch, when non-nil, offloads cache-missed per-query costings to
	// a pool of what-if worker processes in one batched round trip
	// before the local evaluation path runs (internal/distrib provides
	// the implementation). Workers run the same costing code over
	// identically-built statistics, so remote costs are bit-identical
	// to local ones; results are installed through the same cache path
	// with the same counter accounting, and any RPC failure falls back
	// to local costing — the search result never depends on whether or
	// where a batch was dispatched. Set before the first evaluation.
	Batch BatchCostServer

	once    sync.Once
	cache   *costcache.Cache
	sem     chan struct{} // tokens for actual optimizer invocations
	queries []checkerQuery
	prepSrv PreparedCostServer

	checks   atomic.Int64 // constraint checks (Accepts/WorkloadCost calls)
	optCalls atomic.Int64 // actual Server.Optimize invocations

	remoteBatches   atomic.Int64 // batched RPCs dispatched to workers
	remoteItems     atomic.Int64 // queries costed remotely
	remoteFallbacks atomic.Int64 // batches that fell back to local costing
}

// BatchCostServer costs a batch of workload queries (by position)
// under one hypothetical configuration in a single round trip —
// the coordinator→worker-pool contract for distributed what-if
// costing. Implementations must return exactly len(queries) finite
// costs, each bit-identical to what the local prepared fast path
// would produce for the same (query, configuration); on any doubt
// they should return an error and let the caller cost locally.
type BatchCostServer interface {
	CostQueryBatch(ctx context.Context, queries []int, defs []catalog.IndexDef) ([]float64, error)
}

// NewOptimizerChecker builds a checker with U = baseCost × (1 + slackPct).
// baseCost should be Cost(W, C) for the initial configuration; slackPct
// is the paper's "cost constraint" percentage (e.g. 0.10 for 10%).
func NewOptimizerChecker(server CostServer, w *sql.Workload, baseCost, slackPct float64) *OptimizerChecker {
	return &OptimizerChecker{
		Server: server,
		W:      w,
		U:      baseCost * (1 + slackPct),
	}
}

// lazyInit builds the cache, the worker semaphore and the per-query
// key metadata on first use.
func (c *OptimizerChecker) lazyInit() {
	c.once.Do(func() {
		if c.Cache != nil {
			c.cache = c.Cache
		} else {
			c.cache = costcache.New(0)
		}
		p := c.Parallelism
		if p < 1 {
			p = 1
		}
		c.sem = make(chan struct{}, p)
		if c.Prepared != nil && len(c.Prepared.Queries) == len(c.W.Queries) {
			if ps, ok := c.Server.(PreparedCostServer); ok {
				c.prepSrv = ps
			}
		}
		c.queries = make([]checkerQuery, len(c.W.Queries))
		for qi, q := range c.W.Queries {
			c.queries[qi] = checkerQuery{
				prefix: fmt.Sprintf("%s%cq%d|", c.KeyNamespace, keySepNS, qi),
				tables: q.Stmt.TablesReferenced(),
			}
		}
	})
}

// Description implements ConstraintChecker.
func (c *OptimizerChecker) Description() string { return "Cost-Opt" }

// Evaluations implements ConstraintChecker: the number of constraint
// checks (WorkloadCost calls), cached or not.
func (c *OptimizerChecker) Evaluations() int64 { return c.checks.Load() }

// OptimizerCalls implements OptimizerCallCounter: the number of actual
// Server.Optimize invocations — the expensive quantity §3.4.2 says
// dominates Greedy's running time. Cache hits never count here.
func (c *OptimizerChecker) OptimizerCalls() int64 { return c.optCalls.Load() }

// CacheStats exposes the underlying cost-cache counters (lookup hits,
// computed misses, deduplicated in-flight waits).
func (c *OptimizerChecker) CacheStats() (hits, misses, dedups int64) {
	c.lazyInit()
	return c.cache.Stats()
}

// Accepts implements ConstraintChecker.
func (c *OptimizerChecker) Accepts(cfg *Configuration, m, a, b *Index) (bool, error) {
	return c.AcceptsContext(context.Background(), cfg, m, a, b)
}

// AcceptsContext implements ContextChecker: cancellation is observed
// between the per-query optimizer invocations of the workload costing.
func (c *OptimizerChecker) AcceptsContext(ctx context.Context, cfg *Configuration, _, _, _ *Index) (bool, error) {
	cost, err := c.WorkloadCostContext(ctx, cfg)
	if err != nil {
		return false, err
	}
	return cost <= c.U, nil
}

// WorkloadCost computes Cost(W, C) with per-query caching. Cache
// misses are optimized concurrently (up to Parallelism at a time);
// the total is summed in query order so results are byte-identical to
// a serial evaluation.
func (c *OptimizerChecker) WorkloadCost(cfg *Configuration) (float64, error) {
	return c.WorkloadCostContext(context.Background(), cfg)
}

// WorkloadCostContext is WorkloadCost under a context: ctx is checked
// before every actual optimizer invocation, so a canceled caller stops
// after at most one in-flight per-query optimization. Cached entries
// are still served after cancellation begins; a cancellation error is
// never cached.
func (c *OptimizerChecker) WorkloadCostContext(ctx context.Context, cfg *Configuration) (float64, error) {
	c.lazyInit()
	c.checks.Add(1)
	if err := ctx.Err(); err != nil {
		return 0, err
	}

	groups := c.groupKeysByTable(cfg)
	nq := len(c.W.Queries)
	sc := checkScratchPool.Get().(*checkScratch)
	defer func() { checkScratchPool.Put(sc) }()
	if cap(sc.keys) < nq {
		sc.keys = make([]string, nq)
		sc.costs = make([]float64, nq)
	}
	keys, costs := sc.keys[:nq], sc.costs[:nq]
	misses := sc.misses[:0]

	// Build every query key into one shared buffer (one allocation for
	// the backing string instead of one per query); keys are substrings.
	// A query's key is its prefix plus its tables' groups in FROM order,
	// each group terminated by keySepTable, so distinct relevant-
	// configuration states can never produce the same key.
	size := 0
	for qi := range c.queries {
		q := &c.queries[qi]
		size += len(q.prefix) + len(q.tables)
		for _, t := range q.tables {
			size += len(groups[t])
		}
	}
	if cap(sc.buf) < size {
		sc.buf = make([]byte, 0, size)
	}
	buf := sc.buf[:0]
	for qi := range c.queries {
		q := &c.queries[qi]
		buf = append(buf, q.prefix...)
		for _, t := range q.tables {
			buf = append(buf, groups[t]...)
			buf = append(buf, keySepTable)
		}
	}
	sc.buf = buf
	all := string(buf)
	off := 0
	for qi := range c.queries {
		q := &c.queries[qi]
		n := len(q.prefix)
		for _, t := range q.tables {
			n += len(groups[t]) + 1
		}
		keys[qi] = all[off : off+n]
		off += n
	}

	for qi := range c.W.Queries {
		if v, ok := c.cache.Get(keys[qi]); ok {
			costs[qi] = v
		} else {
			misses = append(misses, qi)
		}
	}
	sc.misses = misses

	if len(misses) > 0 && c.Batch != nil && c.batchMisses(ctx, misses, keys, costs, cfg.Defs()) {
		misses = misses[:0]
	}
	if len(misses) > 0 {
		ocfg := optimizer.Configuration(cfg.Defs())
		eval := func(qi int) error {
			// Clone the key on the miss path so a cached entry pins only
			// its own bytes, not the whole per-check key buffer.
			v, err := c.cache.Do(strings.Clone(keys[qi]), func() (float64, error) {
				select {
				case c.sem <- struct{}{}:
				case <-ctx.Done():
					return 0, ctx.Err()
				}
				defer func() { <-c.sem }()
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				c.optCalls.Add(1)
				if c.prepSrv != nil {
					return c.prepSrv.CostPrepared(c.Prepared.Queries[qi], ocfg)
				}
				plan, err := c.Server.Optimize(c.W.Queries[qi].Stmt, ocfg)
				if err != nil {
					return 0, err
				}
				return plan.Cost, nil
			})
			if err != nil {
				return err
			}
			costs[qi] = v
			return nil
		}
		if err := c.evalMisses(misses, eval); err != nil {
			return 0, err
		}
	}

	total := 0.0
	for qi, q := range c.W.Queries {
		total += costs[qi] * q.Freq
	}
	return total, nil
}

// batchMisses offloads the cache-missed queries to the worker pool in
// one batched RPC. Results are installed through the same cache Do
// path as local evaluation — counting one optimizer call per computed
// query — so cache contents and counters stay byte-identical to a
// local run. Any RPC error, short response, or non-finite cost
// returns false with costs untouched; the caller then costs locally.
func (c *OptimizerChecker) batchMisses(ctx context.Context, misses []int, keys []string, costs []float64, defs []catalog.IndexDef) bool {
	vals, err := c.Batch.CostQueryBatch(ctx, misses, defs)
	if err != nil || len(vals) != len(misses) {
		c.remoteFallbacks.Add(1)
		return false
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			c.remoteFallbacks.Add(1)
			return false
		}
	}
	for i, qi := range misses {
		v, err := c.cache.Do(strings.Clone(keys[qi]), func() (float64, error) {
			c.optCalls.Add(1)
			return vals[i], nil
		})
		if err != nil {
			c.remoteFallbacks.Add(1)
			return false
		}
		costs[qi] = v
	}
	c.remoteBatches.Add(1)
	c.remoteItems.Add(int64(len(misses)))
	return true
}

// RemoteStats reports distributed-costing activity: batched RPCs
// dispatched, queries costed remotely, and batches that fell back to
// local costing.
func (c *OptimizerChecker) RemoteStats() (batches, items, fallbacks int64) {
	return c.remoteBatches.Load(), c.remoteItems.Load(), c.remoteFallbacks.Load()
}

// queryKey builds the cache key for query qi from a configuration's
// per-table groups: the query's namespace prefix followed by its
// tables' groups in FROM order, each terminated by keySepTable. The
// hot path batches all queries' keys into one pooled buffer
// (WorkloadCostContext) with this exact layout; the method states the
// format in one place for tests.
func (c *OptimizerChecker) queryKey(qi int, groups map[string]string) string {
	q := &c.queries[qi]
	var sb strings.Builder
	sb.WriteString(q.prefix)
	for _, t := range q.tables {
		sb.WriteString(groups[t])
		sb.WriteByte(keySepTable)
	}
	return sb.String()
}

// evalMisses runs eval for every missed query index, concurrently when
// Parallelism > 1. On failure it returns the error of the
// smallest-indexed failing query, matching serial evaluation order.
// Each evaluation runs through safeEval, so a panicking cost server
// fails one constraint check (as a typed *PanicError) instead of
// killing a worker goroutine — and with it the process.
func (c *OptimizerChecker) evalMisses(misses []int, eval func(int) error) error {
	workers := c.Parallelism
	if workers > len(misses) {
		workers = len(misses)
	}
	if workers <= 1 {
		for _, qi := range misses {
			if err := safeEval(eval, qi); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(misses))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(misses) {
					return
				}
				errs[i] = safeEval(eval, misses[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeEval converts a panic during one per-query evaluation into a
// *PanicError. Crucially this runs on the goroutine that calls eval —
// parallel costing workers included — which is the only place a
// recover can catch it.
func safeEval(eval func(int) error, qi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return eval(qi)
}

// checkScratch is pooled per-constraint-check state: the per-query key
// and cost arrays plus the shared key-building buffer. One constraint
// check allocates one backing string for all query keys (plus cache
// entries for misses) instead of a string per query.
type checkScratch struct {
	keys   []string
	costs  []float64
	misses []int
	buf    []byte
}

var checkScratchPool = sync.Pool{New: func() any { return new(checkScratch) }}

// groupScratch is pooled per-call state for groupKeysByTable: a shared
// byte buffer and per-table slot bookkeeping replace the per-call map
// of strings.Builders, so a constraint check allocates one backing
// string for all groups plus the returned map.
type groupScratch struct {
	buf  []byte
	slot map[string]int // table -> index into tabs
	tabs []tableSlot
}

// tableSlot tracks one table's group within the shared buffer.
type tableSlot struct {
	size, off, cur int
}

var groupScratchPool = sync.Pool{New: func() any {
	return &groupScratch{slot: make(map[string]int)}
}}

// groupKeysByTable concatenates the configuration's index keys per
// table (configuration order, each key terminated by keySepIndex), so
// building a query's cache key is a few map lookups instead of a scan
// over every index for every query. Groups are substrings of a single
// shared backing string built through a pooled scratch buffer.
func (c *OptimizerChecker) groupKeysByTable(cfg *Configuration) map[string]string {
	sc := groupScratchPool.Get().(*groupScratch)
	// Pass 1: per-table group sizes (index keys are memoized on Index).
	for _, ix := range cfg.Indexes {
		i, ok := sc.slot[ix.Def.Table]
		if !ok {
			i = len(sc.tabs)
			sc.tabs = append(sc.tabs, tableSlot{})
			sc.slot[ix.Def.Table] = i
		}
		sc.tabs[i].size += len(ix.Key()) + 1
	}
	total := 0
	for i := range sc.tabs {
		sc.tabs[i].off = total
		sc.tabs[i].cur = total
		total += sc.tabs[i].size
	}
	// Pass 2: copy each key into its table's region, configuration order.
	if cap(sc.buf) < total {
		sc.buf = make([]byte, total)
	}
	buf := sc.buf[:total]
	for _, ix := range cfg.Indexes {
		i := sc.slot[ix.Def.Table]
		n := copy(buf[sc.tabs[i].cur:], ix.Key())
		buf[sc.tabs[i].cur+n] = keySepIndex
		sc.tabs[i].cur += n + 1
	}
	all := string(buf)
	groups := make(map[string]string, len(sc.tabs))
	for t, i := range sc.slot {
		groups[t] = all[sc.tabs[i].off : sc.tabs[i].off+sc.tabs[i].size]
	}
	for t := range sc.slot {
		delete(sc.slot, t)
	}
	sc.tabs = sc.tabs[:0]
	groupScratchPool.Put(sc)
	return groups
}

// NoCostChecker implements the No-Cost model (§3.5.1): a merged index
// is acceptable iff (a) its width is at most fraction F of its table's
// row width and (b) it does not exceed its wider immediate parent's
// width by more than fraction P. No cost function is ever consulted,
// so the final configuration carries no cost guarantee — exactly the
// drawback §3.5.1 notes.
//
// Safe for concurrent Accepts calls (the schema is read-only and the
// counter is atomic).
type NoCostChecker struct {
	F      float64 // max merged-index width as a fraction of table width
	P      float64 // max growth over either immediate parent
	Tables SchemaProvider

	evals atomic.Int64
}

// Description implements ConstraintChecker.
func (c *NoCostChecker) Description() string { return "Cost-None" }

// Evaluations implements ConstraintChecker.
func (c *NoCostChecker) Evaluations() int64 { return c.evals.Load() }

// Accepts implements ConstraintChecker.
func (c *NoCostChecker) Accepts(_ *Configuration, m, a, b *Index) (bool, error) {
	c.evals.Add(1)
	t, ok := c.Tables.Schema().Table(m.Def.Table)
	if !ok {
		return false, fmt.Errorf("core: unknown table %q", m.Def.Table)
	}
	mw := float64(t.WidthOf(m.Def.Columns))
	if mw > c.F*float64(t.RowWidth()) {
		return false, nil
	}
	wider := float64(t.WidthOf(a.Def.Columns))
	if bw := float64(t.WidthOf(b.Def.Columns)); bw > wider {
		wider = bw
	}
	if wider > 0 && mw > (1+c.P)*wider {
		return false, nil
	}
	return true, nil
}

// PrefilteredChecker consults an inexpensive external cost model first
// and invokes the optimizer-backed checker only when the external
// model predicts the constraint can be met (§3.5.3, last paragraph).
// The external bound is calibrated against the initial configuration:
// a candidate is vetoed only when its external cost exceeds the
// external baseline by more than the slack allowance times Margin.
//
// Safe for concurrent Accepts calls: the external model is read-only
// after SetBaseline, the rejection counter is atomic, and Inner is
// itself concurrency-safe.
type PrefilteredChecker struct {
	External *ExternalCostModel
	Inner    *OptimizerChecker
	// SlackPct mirrors the cost constraint used to build Inner.
	SlackPct float64
	// Margin loosens the external prediction so the coarse model only
	// vetoes clearly hopeless candidates; >1 means permissive.
	Margin float64

	prefilterHits atomic.Int64
}

// Description implements ConstraintChecker.
func (c *PrefilteredChecker) Description() string { return "Cost-Opt+Prefilter" }

// Evaluations implements ConstraintChecker.
func (c *PrefilteredChecker) Evaluations() int64 { return c.Inner.Evaluations() }

// OptimizerCalls implements OptimizerCallCounter.
func (c *PrefilteredChecker) OptimizerCalls() int64 { return c.Inner.OptimizerCalls() }

// PrefilterRejections counts candidates the external model vetoed
// without an optimizer call.
func (c *PrefilteredChecker) PrefilterRejections() int64 { return c.prefilterHits.Load() }

// Accepts implements ConstraintChecker.
func (c *PrefilteredChecker) Accepts(cfg *Configuration, m, a, b *Index) (bool, error) {
	return c.AcceptsContext(context.Background(), cfg, m, a, b)
}

// AcceptsContext implements ContextChecker; the cheap external
// prefilter runs unconditionally, the optimizer-backed inner check
// observes ctx.
func (c *PrefilteredChecker) AcceptsContext(ctx context.Context, cfg *Configuration, m, a, b *Index) (bool, error) {
	margin := c.Margin
	if margin <= 0 {
		margin = 2.0
	}
	extBase := c.External.BaselineCost()
	if extBase > 0 {
		extCost := c.External.WorkloadCost(cfg)
		if extCost > extBase*(1+c.SlackPct*margin) {
			c.prefilterHits.Add(1)
			return false, nil
		}
	}
	return c.Inner.AcceptsContext(ctx, cfg, m, a, b)
}
